// Package across is the public API of the Across-FTL reproduction: a
// trace-driven flash SSD simulator with three flash-translation-layer
// schemes — the conventional page-level FTL, the MRSM sub-page comparator,
// and Across-FTL, which re-aligns across-page requests (requests no larger
// than one flash page that span two logical pages) onto single physical
// pages via a two-level mapping table.
//
// The typical flow is:
//
//	cfg := across.ExperimentConfig()                   // Table 1, scaled
//	prof, _ := across.Profile("lun1")                  // Table 2 workload
//	reqs, _ := across.GenerateTrace(prof.Scale(0.05), cfg.LogicalSectors())
//	res, _ := across.Run(across.AcrossFTL, cfg, reqs, true)
//	fmt.Println(res.AvgWriteLatency(), res.Counters.Erases)
//
// The experiment harness that regenerates every table and figure of the
// paper is exposed through RunExperiment / RunAllExperiments.
package across

import (
	"fmt"
	"io"

	"across/internal/acrossftl"
	"across/internal/check"
	"across/internal/experiments"
	"across/internal/fleet"
	"across/internal/ftl"
	"across/internal/hostcache"
	"across/internal/obs"
	"across/internal/scenario"
	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// Config describes the simulated SSD: geometry (channel → chip → die →
// plane → block → page), NAND timing, and FTL parameters. See the ssdconf
// field documentation for the full list.
type Config = ssdconf.Config

// Request is one block-level I/O in 512 B sectors.
type Request = trace.Request

// RequestClass is the alignment classification of a request against the
// flash page size (Request.Classify).
type RequestClass = trace.Class

// The alignment classes of RequestClass.
const (
	// ClassAligned starts and ends on page boundaries.
	ClassAligned = trace.ClassAligned
	// ClassAcross is the paper's special case: no larger than one page but
	// spanning two logical pages.
	ClassAcross = trace.ClassAcross
	// ClassUnaligned is any other request touching a partial page.
	ClassUnaligned = trace.ClassUnaligned
)

// WorkloadProfile parameterises a synthetic enterprise-VDI trace
// (request count, write ratio, mean write size, across-page ratio, locality,
// arrival rate).
type WorkloadProfile = workload.Profile

// Result carries everything a replay measures: per-direction latencies,
// flash operation counters split Map/Data/GC, erase counts, per-alignment-
// class buckets, table sizes and the Across-FTL operation census.
type Result = sim.Result

// Scheme selects the FTL design to simulate.
type Scheme = sim.SchemeKind

// The three compared schemes.
const (
	// BaselineFTL is the conventional dynamic page-level mapping FTL.
	BaselineFTL = sim.KindFTL
	// MRSM is the sub-page multiregional space management comparator.
	MRSM = sim.KindMRSM
	// AcrossFTL is the paper's contribution.
	AcrossFTL = sim.KindAcross
	// DFTL is a demand-paged page-mapping baseline (extension scheme,
	// outside the paper's comparison).
	DFTL = sim.KindDFTL
)

// Schemes returns the comparison order used throughout the paper.
func Schemes() []Scheme { return sim.Kinds() }

// Table1Config returns the paper's full-scale Table 1 device (128 GiB raw).
func Table1Config() Config { return ssdconf.Table1() }

// ExperimentConfig returns the shape-preserving scaled device (2 GiB raw)
// the experiment harness defaults to.
func ExperimentConfig() Config { return ssdconf.Experiment() }

// ScaledConfig returns Table 1 with the block count divided by factor.
func ScaledConfig(factor int) Config { return ssdconf.Scaled(factor) }

// Profiles returns the six Table 2 trace profiles (lun1–lun6).
func Profiles() []WorkloadProfile { return workload.LunProfiles() }

// Profile returns one Table 2 profile by name ("lun1".."lun6").
func Profile(name string) (WorkloadProfile, error) { return workload.LunProfile(name) }

// Collection returns n Fig 2-style profiles with spread across-page ratios.
func Collection(n int) []WorkloadProfile { return workload.Collection(n) }

// GenerateTrace synthesises the request stream of a profile for a device
// with the given number of logical sectors.
func GenerateTrace(p WorkloadProfile, logicalSectors int64) ([]Request, error) {
	return workload.Generate(p, logicalSectors)
}

// ReadTrace parses a SYSTOR '17-format CSV block trace
// (timestamp,response,io_type,lun,offset,size).
func ReadTrace(r io.Reader) ([]Request, error) { return trace.ReadAll(r) }

// ReadMSRTrace parses an MSR Cambridge-format CSV block trace
// (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime).
func ReadMSRTrace(r io.Reader) ([]Request, error) { return trace.ReadAllMSR(r) }

// ReadTraceAuto sniffs the format from the first non-empty line (SYSTOR '17
// or MSR Cambridge) and parses accordingly.
func ReadTraceAuto(r io.Reader) ([]Request, error) {
	return trace.ReadAllAuto(r)
}

// WriteTrace emits requests in the SYSTOR '17 CSV format.
func WriteTrace(w io.Writer, lun int, reqs []Request) error {
	tw := trace.NewWriter(w, lun)
	for _, r := range reqs {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// TraceStats computes Table 2-style statistics (write ratio, mean write
// size, across-page ratio) for a trace at a page size of pageBytes.
func TraceStats(reqs []Request, pageBytes int) *trace.Stats {
	return trace.Measure(reqs, pageBytes/ssdconf.SectorBytes)
}

// ShiftTrace adds delta sectors to every request's offset — used to place
// several traces in disjoint regions of one address space.
func ShiftTrace(reqs []Request, delta int64) []Request {
	return trace.ShiftOffsets(reqs, delta)
}

// InterleaveTraces merges traces by arrival time into one stream (the
// multi-tenant view of several LUNs sharing one device).
func InterleaveTraces(traces ...[]Request) []Request {
	return trace.Interleave(traces...)
}

// ConcatTraces joins traces back to back in time, separated by gap ms.
func ConcatTraces(gap float64, traces ...[]Request) []Request {
	return trace.Concat(gap, traces...)
}

// WindowTrace returns the requests with arrival time in [from, to) ms,
// rebased to start at zero.
func WindowTrace(reqs []Request, from, to float64) []Request {
	return trace.Window(reqs, from, to)
}

// Run replays a trace against a freshly built scheme; when age is true the
// device is first warmed to the paper's §4.1 state (90% used, ~40% valid).
func Run(s Scheme, cfg Config, reqs []Request, age bool) (*Result, error) {
	return sim.Run(s, cfg, reqs, age)
}

// RunWithHostCache replays a trace like Run, with the scheme wrapped in a
// DRAM data buffer of cachePages logical pages (the Table 1 "cache size"
// knob). Writes are write-through, so flush counts and erase counts are
// unaffected; repeated reads of resident pages are served at DRAM speed.
func RunWithHostCache(s Scheme, cfg Config, cachePages int, reqs []Request, age bool) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := sim.NewScheme(s, &cfg)
	if err != nil {
		return nil, err
	}
	r := &sim.Runner{Conf: &cfg, Kind: s, Scheme: hostcache.Wrap(inner, cachePages)}
	if age {
		if err := r.Age(sim.DefaultAging()); err != nil {
			return nil, err
		}
	}
	return r.Replay(reqs)
}

// RecoverFromCrash simulates power loss on a runner's device and remounts
// it: all in-DRAM mapping state is discarded and rebuilt from the flash
// array's out-of-band metadata (open blocks are sealed first, as real
// controllers do). Supported for AcrossFTL and BaselineFTL. The returned
// runner owns the same physical device; the old runner must not be used.
func RecoverFromCrash(r *Runner) (*Runner, error) {
	dev := r.Scheme.Device()
	switch r.Kind {
	case AcrossFTL:
		s, err := acrossftl.Recover(dev)
		if err != nil {
			return nil, err
		}
		return &sim.Runner{Conf: r.Conf, Kind: r.Kind, Scheme: s}, nil
	case BaselineFTL:
		s, err := ftl.RecoverBaseline(dev)
		if err != nil {
			return nil, err
		}
		return &sim.Runner{Conf: r.Conf, Kind: r.Kind, Scheme: s}, nil
	default:
		return nil, fmt.Errorf("across: crash recovery is not implemented for %s", r.Kind)
	}
}

// Aging parameterises the §4.1 device warm-up (used/valid fractions, seed).
type Aging = sim.Aging

// DefaultAging returns the paper's warm-up setting: 90% of capacity used
// with ~39.8% valid.
func DefaultAging() Aging { return sim.DefaultAging() }

// Runner gives step-by-step control (build, age, replay several traces
// against the same aged device).
type Runner = sim.Runner

// ParallelOptions tunes Runner.ReplayParallel: worker count and epoch
// sizing. The parallel engine is bit-identical to the serial one — options
// only change speed, never the Result.
type ParallelOptions = sim.ParallelOptions

// NewRunner builds a scheme of the given kind on a fresh device.
func NewRunner(s Scheme, cfg Config) (*Runner, error) { return sim.NewRunner(s, cfg) }

// NewRunnerWithHostCache builds a runner whose scheme is wrapped in a DRAM
// data buffer of cachePages logical pages — the step-by-step sibling of
// RunWithHostCache, for callers that also need to age the device, attach
// observability, or replay several traces.
func NewRunnerWithHostCache(s Scheme, cfg Config, cachePages int) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := sim.NewScheme(s, &cfg)
	if err != nil {
		return nil, err
	}
	return &sim.Runner{Conf: &cfg, Kind: s, Scheme: hostcache.Wrap(inner, cachePages)}, nil
}

// RestoreRunner reconstructs a replay-ready Runner from a warm-state
// snapshot produced by Runner.Snapshot (DESIGN §13). The snapshot embeds
// the scheme kind, device configuration and host-cache size, so no other
// arguments are needed; the restored state is audited before the runner is
// returned, and a tampered or truncated blob fails with a typed error.
func RestoreRunner(blob []byte) (*Runner, error) { return sim.Restore(blob) }

// Tracer receives span-style observability events from a replay: request
// arrivals and completions, flash command service spans, GC victim and
// collection spans, Across-FTL plan decisions, and cache accesses. Install
// one with Runner.SetTracer. The zero-cost default is no tracer at all;
// NopTracer exists to measure the instrumentation overhead itself.
type Tracer = obs.Tracer

// Sampler snapshots time-series metrics (queue depth, per-chip busy
// fraction, WAF, GC debt, mapping-cache hit rate) on a simulated-clock
// interval; install one with Runner.SetSampler.
type Sampler = obs.Sampler

// MetricSample is one periodic snapshot taken by a Sampler.
type MetricSample = obs.Sample

// NewSampler builds a metrics sampler with the given simulated-ms interval.
func NewSampler(intervalMs float64) (*Sampler, error) { return obs.NewSampler(intervalMs) }

// NopTracer returns the no-op tracer (overhead measurement only).
func NopTracer() Tracer { return obs.NopTracer() }

// OpenTraceFile creates an event-trace file for a device with the given
// chip count: a path ending in .jsonl gets the line-oriented event stream;
// anything else gets Chrome trace_event JSON, which Perfetto and
// chrome://tracing open directly. Close the returned closer after the
// replay to finalise the file.
func OpenTraceFile(path string, chips int) (Tracer, io.Closer, error) {
	return obs.OpenTrace(path, chips)
}

// OpenMetricsFile creates a metrics JSONL sink at path and returns it
// attached-ready for Sampler.SetSink; the closer flushes and closes.
func OpenMetricsFile(path string) (*obs.JSONLMetrics, io.Closer, error) {
	return obs.OpenMetrics(path)
}

// Checker drives the correctness-verification layer during a replay: a
// data-integrity shadow model consulted after every host request and a
// device-wide invariant audit run periodically and at end of run. Install one
// with Runner.EnableChecks; any violation aborts the replay with a
// descriptive error.
type Checker = check.Checker

// CheckOptions configures a Checker: Shadow enables the per-request shadow
// model, AuditEvery sets the audit period in requests (0 = end of run only).
type CheckOptions = check.Options

// ExperimentConfigDefaults returns the default harness configuration:
// scaled Table 1 geometry, 5% trace lengths, aged device, 61-trace Fig 2
// collection.
func ExperimentConfigDefaults() experiments.Config { return experiments.DefaultConfig() }

// ExperimentIDs lists the regenerable paper artifacts
// (table1, table2, fig2, fig4, fig8–fig14).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table/figure, writing it to w.
func RunExperiment(id string, cfg experiments.Config, w io.Writer) error {
	s, err := experiments.NewSession(cfg)
	if err != nil {
		return err
	}
	return experiments.RunOne(id, s, w)
}

// RunAllExperiments regenerates every table and figure in paper order.
func RunAllExperiments(cfg experiments.Config, w io.Writer) error {
	s, err := experiments.NewSession(cfg)
	if err != nil {
		return err
	}
	return experiments.RunAll(s, w)
}

// Fleet is a host-level volume composed of N independent simulated SSDs
// behind one logical address space: logical requests are split into
// per-device sub-requests by the volume's layout and complete when the
// slowest sub-request lands (DESIGN §14).
type Fleet = fleet.Volume

// FleetSpec describes a fleet volume: device count, layout, and stripe
// chunk size in sectors (0 picks the 64 KiB default; concat ignores it).
type FleetSpec = fleet.Spec

// FleetOptions tunes a fleet replay (open-loop device parallelism). Like
// ParallelOptions, it only changes speed, never the Result.
type FleetOptions = fleet.Options

// FleetResult is everything one fleet replay measures: logical-request
// latencies (join of the slowest fragment), fan-out, re-fragmentation
// classes, and per-device balance reports.
type FleetResult = fleet.Result

// FleetLayout selects how a fleet volume maps logical addresses to devices.
type FleetLayout = fleet.Layout

// The supported fleet layouts.
const (
	// FleetConcat appends device address spaces back to back (no striping).
	FleetConcat = fleet.LayoutConcat
	// FleetRAID0 stripes the volume across all devices in fixed-size chunks.
	FleetRAID0 = fleet.LayoutRAID0
	// FleetRAID10 stripes across mirror pairs; writes hit both mirrors,
	// reads alternate between them by stripe row.
	FleetRAID10 = fleet.LayoutRAID10
)

// FleetLayouts returns every supported layout in comparison order.
func FleetLayouts() []FleetLayout { return fleet.Layouts() }

// ParseFleetLayout converts a CLI/JSON layout name into a FleetLayout.
func ParseFleetLayout(s string) (FleetLayout, error) { return fleet.ParseLayout(s) }

// NewFleet builds a fleet of fresh devices of one scheme and configuration;
// age it with Fleet.Age (device 0 ages, the rest fork from its checkpoint).
func NewFleet(s Scheme, cfg Config, spec FleetSpec) (*Fleet, error) {
	return fleet.New(s, cfg, spec)
}

// RestoreFleet builds a fleet by forking every device from one warm
// single-device snapshot produced by Runner.Snapshot or Fleet.WarmSnapshot.
func RestoreFleet(blob []byte, spec FleetSpec) (*Fleet, error) {
	return fleet.FromSnapshot(blob, spec)
}

// Scenario composes time-varying, multi-cohort workloads (DESIGN §15):
// temporal arrival patterns modulating each cohort's rate over simulated
// time, tenant cohorts (synthetic profiles or parsed real traces) confined
// to disjoint LBA partitions of one device, merged into one deterministic
// arrival-ordered stream.
type Scenario = scenario.Scenario

// ScenarioCohort is one tenant of a Scenario: a workload source, an LBA
// partition, a temporal pattern, and an activation offset.
type ScenarioCohort = scenario.Cohort

// ScenarioPattern modulates a cohort's arrival rate over simulated time
// (constant, ramp, spike/burst, day-night).
type ScenarioPattern = scenario.Pattern

// ScenarioStream is a generated scenario workload: the merged request
// stream plus per-cohort metadata, storable as a trace-v2 container.
type ScenarioStream = scenario.Stream

// The temporal pattern kinds of ScenarioPattern.
const (
	// PatternConstant keeps the cohort at its profile rate.
	PatternConstant = scenario.PatternConstant
	// PatternRamp climbs from Base to Peak over PeriodMs, then holds.
	PatternRamp = scenario.PatternRamp
	// PatternSpike alternates a baseline with short bursts each period.
	PatternSpike = scenario.PatternSpike
	// PatternDayNight swings the rate through a discretised diurnal cycle.
	PatternDayNight = scenario.PatternDayNight
)

// ScenarioNames lists the builtin scenarios (stationary, burst, daynight,
// mixed) in sorted order.
func ScenarioNames() []string { return scenario.Names() }

// BuiltinScenario returns a named builtin scenario.
func BuiltinScenario(name string) (Scenario, error) { return scenario.Builtin(name) }

// ScenarioFromTrace wraps a parsed real trace (ReadTrace/ReadMSRTrace) as a
// single-cohort scenario replaying at its recorded pacing.
func ScenarioFromTrace(name string, reqs []Request) Scenario {
	return scenario.FromTrace(name, reqs)
}

// EncodeScenarioStream seals a generated stream into the versioned trace-v2
// binary container (deterministic bytes, self-describing workload header).
func EncodeScenarioStream(s *ScenarioStream) ([]byte, error) {
	return scenario.EncodeStream(s)
}

// DecodeScenarioStream opens a trace-v2 container produced by
// EncodeScenarioStream, rejecting truncated, tampered or incompatible
// containers with typed errors.
func DecodeScenarioStream(blob []byte) (*ScenarioStream, error) {
	return scenario.DecodeStream(blob)
}

module across

go 1.22

package across

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps the public-API tests fast.
func tinyConfig() Config {
	c := Table1Config()
	c.Channels = 4
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 64
	c.PagesPerBlock = 32
	return c
}

func TestPublicEndToEnd(t *testing.T) {
	cfg := tinyConfig()
	prof, err := Profile("lun1")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := GenerateTrace(prof.Scale(0.005), cfg.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	results := map[Scheme]*Result{}
	for _, s := range Schemes() {
		res, err := Run(s, cfg, reqs, true)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		results[s] = res
	}
	if results[AcrossFTL].Counters.FlashWrites() >= results[BaselineFTL].Counters.FlashWrites() {
		t.Error("Across-FTL did not reduce flash writes vs baseline")
	}
	if results[MRSM].Counters.Erases <= results[AcrossFTL].Counters.Erases {
		t.Error("MRSM should erase most")
	}
}

func TestTraceRoundTripThroughPublicAPI(t *testing.T) {
	cfg := tinyConfig()
	prof, _ := Profile("lun2")
	reqs, err := GenerateTrace(prof.Scale(0.001), cfg.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, 3, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("round trip lost requests: %d != %d", len(back), len(reqs))
	}
	st := TraceStats(back, 8192)
	if st.Requests != int64(len(reqs)) {
		t.Fatal("stats mismatch")
	}
}

func TestProfilesAndCollection(t *testing.T) {
	if len(Profiles()) != 6 {
		t.Error("want 6 lun profiles")
	}
	if len(Collection(10)) != 10 {
		t.Error("collection size mismatch")
	}
	if _, err := Profile("bogus"); err == nil {
		t.Error("bogus profile accepted")
	}
}

func TestConfigConstructors(t *testing.T) {
	full := Table1Config()
	if full.BlocksTotal() != 262144 {
		t.Error("Table1Config wrong")
	}
	exp := ExperimentConfig()
	if exp.BlocksTotal() >= full.BlocksTotal() {
		t.Error("ExperimentConfig not scaled")
	}
	half := ScaledConfig(2)
	if half.BlocksTotal() != full.BlocksTotal()/2 {
		t.Error("ScaledConfig wrong")
	}
}

// extensionIDs mirrors the extension registry for the count check.
func extensionIDs() []string {
	return []string{"ext-tail", "ext-wear", "ext-dftl", "ext-util", "ext-timeline"}
}

func TestExperimentIDsAndRunner(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 11+len(extensionIDs()) {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	cfg := ExperimentConfigDefaults()
	cfg.SSD = tinyConfig()
	cfg.Scale = 0.002
	cfg.CollectionSize = 4
	var buf bytes.Buffer
	if err := RunExperiment("table2", cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lun6") {
		t.Error("table2 output incomplete")
	}
	if err := RunExperiment("nope", cfg, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunWithHostCache(t *testing.T) {
	cfg := tinyConfig()
	prof, _ := Profile("lun1")
	reqs, err := GenerateTrace(prof.Scale(0.005), cfg.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(BaselineFTL, cfg, reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunWithHostCache(BaselineFTL, cfg, 4096, reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Counters.DataReads >= plain.Counters.DataReads {
		t.Errorf("host cache did not reduce flash reads: %d vs %d",
			cached.Counters.DataReads, plain.Counters.DataReads)
	}
	if cached.Counters.DataWrites != plain.Counters.DataWrites {
		t.Errorf("host cache changed flash writes: %d vs %d",
			cached.Counters.DataWrites, plain.Counters.DataWrites)
	}
	bad := cfg
	bad.Channels = 0
	if _, err := RunWithHostCache(BaselineFTL, bad, 16, reqs, false); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestTraceToolsThroughPublicAPI(t *testing.T) {
	a := []Request{{Time: 0, Op: 1, Offset: 0, Count: 8}}
	b := []Request{{Time: 5, Op: 0, Offset: 100, Count: 8}}
	if got := len(InterleaveTraces(a, b)); got != 2 {
		t.Errorf("Interleave len = %d", got)
	}
	cat := ConcatTraces(10, a, b)
	if cat[1].Time != 15 {
		t.Errorf("Concat time = %v, want 15", cat[1].Time)
	}
	if ShiftTrace(a, 50)[0].Offset != 50 {
		t.Error("ShiftTrace failed")
	}
	if got := len(WindowTrace(cat, 0, 1)); got != 1 {
		t.Errorf("Window len = %d", got)
	}
}

func TestRunnerReplaysSequentially(t *testing.T) {
	cfg := tinyConfig()
	r, err := NewRunner(AcrossFTL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := Profile("lun3")
	reqs, err := GenerateTrace(prof.Scale(0.001), cfg.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	res1, err := r.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// The second replay hits an already-populated mapping: fewer first-write
	// paths, so flash writes can differ, but both must be well-formed.
	if res1.Requests != res2.Requests {
		t.Error("request counts differ across replays")
	}
}

func TestRecoverFromCrashPublicAPI(t *testing.T) {
	cfg := tinyConfig()
	r, err := NewRunner(AcrossFTL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := Profile("lun1")
	reqs, err := GenerateTrace(prof.Scale(0.003), cfg.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	before, err := r.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverFromCrash(r)
	if err != nil {
		t.Fatal(err)
	}
	after, err := rec.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if after.Requests != before.Requests {
		t.Fatal("recovered runner dropped requests")
	}
	// MRSM recovery is unsupported and must say so.
	m, err := NewRunner(MRSM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverFromCrash(m); err == nil {
		t.Fatal("MRSM recovery should be unsupported")
	}
}

func TestReadTraceAutoDetectsFormats(t *testing.T) {
	systor := "100.0,0,W,0,1052672,6144\n"
	msr := "1000000000,h,0,Write,1052672,6144,0\n"
	a, err := ReadTraceAuto(strings.NewReader(systor))
	if err != nil || len(a) != 1 || a[0].Count != 12 {
		t.Fatalf("systor auto-parse = (%v, %v)", a, err)
	}
	b, err := ReadMSRTrace(strings.NewReader(msr))
	if err != nil || len(b) != 1 || b[0].Count != 12 {
		t.Fatalf("msr parse = (%v, %v)", b, err)
	}
	c, err := ReadTraceAuto(strings.NewReader(msr))
	if err != nil || len(c) != 1 || c[0].Op != a[0].Op {
		t.Fatalf("msr auto-parse = (%v, %v)", c, err)
	}
	if _, err := ReadTraceAuto(strings.NewReader("one,two\n")); err == nil {
		t.Fatal("bogus format accepted")
	}
}

func TestDefaultAgingExported(t *testing.T) {
	a := DefaultAging()
	if a.ValidFrac != 0.398 || a.UsedFrac != 0.90 {
		t.Fatalf("DefaultAging = %+v, want the paper's §4.1 setting", a)
	}
}

package across_test

import (
	"fmt"
	"log"

	"across"
)

// The paper's worked example: write(1028K, 6K) on 8 KB pages spans logical
// pages 128 and 129 although it is smaller than one page. The conventional
// FTL programs two flash pages; Across-FTL re-aligns the request onto one.
func Example() {
	cfg := across.ScaledConfig(512) // Table 1 timing, small array

	reqs := []across.Request{
		{Time: 0, Op: 1, Offset: 2056, Count: 12}, // write(1028K, 6K)
		{Time: 10, Op: 0, Offset: 2060, Count: 8}, // read(1030K, 4K)
	}
	for _, scheme := range []across.Scheme{across.BaselineFTL, across.AcrossFTL} {
		res, err := across.Run(scheme, cfg, reqs, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d programs, %d reads\n",
			res.Scheme, res.Counters.FlashWrites(), res.Counters.FlashReads())
	}
	// Output:
	// FTL: 2 programs, 2 reads
	// Across-FTL: 1 programs, 1 reads
}

// Classify tells the three request classes of the paper's Fig 1 apart.
func ExampleRequest() {
	pageBytes := 8192
	for _, r := range []across.Request{
		{Op: 1, Offset: 2048, Count: 48}, // write(1024K, 24K)
		{Op: 1, Offset: 2056, Count: 40}, // write(1028K, 20K)
		{Op: 1, Offset: 2056, Count: 16}, // write(1028K, 8K)
	} {
		fmt.Printf("%v -> %v\n", r, r.Classify(pageBytes/512))
	}
	// Output:
	// write(1024K, 24K)@0.000ms -> aligned
	// write(1028K, 20K)@0.000ms -> unaligned
	// write(1028K, 8K)@0.000ms -> across-page
}

// GenerateTrace reproduces the Table 2 workload statistics.
func ExampleGenerateTrace() {
	cfg := across.ExperimentConfig()
	prof, _ := across.Profile("lun6")
	reqs, err := across.GenerateTrace(prof.Scale(0.05), cfg.LogicalSectors())
	if err != nil {
		log.Fatal(err)
	}
	st := across.TraceStats(reqs, cfg.PageBytes)
	fmt.Printf("write ratio ~%.2f (target %.3f)\n", st.WriteRatio(), prof.WriteRatio)
	fmt.Printf("across ratio ~%.2f (target %.3f)\n", st.AcrossRatio(), prof.AcrossRatio)
	// Output:
	// write ratio ~0.34 (target 0.347)
	// across ratio ~0.27 (target 0.275)
}

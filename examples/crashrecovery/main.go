// crashrecovery: power-loss recovery of the two-level mapping table.
//
// Across-FTL's AMT raises an obvious operational question the paper leaves
// open: what happens to the re-aligned areas on power loss? This example
// shows the answer this implementation takes — every area page carries its
// full mapping entry (first LPN, sector offset, size, AMT index) in its
// out-of-band metadata, so one mount-time scan rebuilds both levels of the
// table with no journalling.
//
// The example runs a workload, "crashes" (discards all DRAM state), remounts
// from flash alone, and verifies the recovered device serves the same data
// and keeps running.
//
// Run with: go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	"across"
)

func main() {
	cfg := across.ScaledConfig(256)
	r, err := across.NewRunner(across.AcrossFTL, cfg)
	if err != nil {
		log.Fatal(err)
	}

	prof, _ := across.Profile("lun1")
	reqs, err := across.GenerateTrace(prof.Scale(0.01), cfg.LogicalSectors())
	if err != nil {
		log.Fatal(err)
	}
	before, err := r.Replay(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before crash: %d requests serviced, %d re-aligned areas live, %d flash writes\n",
		before.Requests, before.Across.AreasTouched()-before.Across.Rollbacks-before.Across.Superseded,
		before.Counters.FlashWrites())

	// Power loss: all controller DRAM state is gone. Remount from flash.
	rec, err := across.RecoverFromCrash(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("crash + remount: mapping tables rebuilt from OOB metadata, open blocks sealed")

	// Re-read the same ranges the workload wrote: every request must still
	// be serviceable from the recovered tables (the audit inside recovery
	// has already verified referential integrity).
	reads := make([]across.Request, 0, len(reqs))
	for _, w := range reqs {
		if w.Op == 1 {
			reads = append(reads, across.Request{Time: w.Time, Op: 0, Offset: w.Offset, Count: w.Count})
		}
	}
	after, err := rec.Replay(reads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery: %d re-reads serviced (%d direct area reads), avg %.3f ms\n",
		after.Requests, after.Across.DirectReads, after.AvgReadLatency())
	fmt.Println("\nThe across-page areas survived the crash: the OOB record (AMT index +")
	fmt.Println("packed LPN/offset/size) is sufficient to rebuild the two-level table.")
}

// vdireplay: the paper's headline comparison on one enterprise-VDI trace.
//
// It generates the lun1 workload of Table 2 (61.5% writes, 8.9 KB mean
// writes, 24.7% across-page requests), ages the device to the §4.1 state,
// replays the trace under all three FTL schemes, and prints the Fig 9/10/11
// metrics side by side.
//
// Run with: go run ./examples/vdireplay [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"across"
)

func main() {
	scale := flag.Float64("scale", 0.05, "fraction of the full 749,806-request trace")
	flag.Parse()

	cfg := across.ExperimentConfig()
	prof, err := across.Profile("lun1")
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := across.GenerateTrace(prof.Scale(*scale), cfg.LogicalSectors())
	if err != nil {
		log.Fatal(err)
	}
	st := across.TraceStats(reqs, cfg.PageBytes)
	fmt.Printf("replaying %d requests (%.1f%% writes, %.1f%% across-page) on %s\n\n",
		st.Requests, 100*st.WriteRatio(), 100*st.AcrossRatio(), cfg.String())

	results := map[across.Scheme]*across.Result{}
	for _, s := range across.Schemes() {
		res, err := across.Run(s, cfg, reqs, true)
		if err != nil {
			log.Fatal(err)
		}
		results[s] = res
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "metric\tFTL\tMRSM\tAcross-FTL")
	row := func(name string, f func(*across.Result) string) {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", name,
			f(results[across.BaselineFTL]), f(results[across.MRSM]), f(results[across.AcrossFTL]))
	}
	row("write latency (ms)", func(r *across.Result) string { return fmt.Sprintf("%.3f", r.AvgWriteLatency()) })
	row("read latency (ms)", func(r *across.Result) string { return fmt.Sprintf("%.3f", r.AvgReadLatency()) })
	row("total I/O time (s)", func(r *across.Result) string { return fmt.Sprintf("%.2f", r.TotalIOTime()/1000) })
	row("flash writes", func(r *across.Result) string { return fmt.Sprintf("%d", r.Counters.FlashWrites()) })
	row("flash reads", func(r *across.Result) string { return fmt.Sprintf("%d", r.Counters.FlashReads()) })
	row("erase count", func(r *across.Result) string { return fmt.Sprintf("%d", r.Counters.Erases) })
	row("map-write share", func(r *across.Result) string {
		t := r.Counters.FlashWrites()
		if t == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(r.Counters.MapWrites)/float64(t))
	})
	row("mapping table (MB)", func(r *across.Result) string { return fmt.Sprintf("%.2f", float64(r.TableBytes)/(1<<20)) })
	w.Flush()

	f, a := results[across.BaselineFTL], results[across.AcrossFTL]
	fmt.Printf("\nAcross-FTL vs FTL: write latency %+.1f%%, erases %+.1f%% (paper: -8.9%% and -13.3%% on average)\n",
		100*(a.AvgWriteLatency()/f.AvgWriteLatency()-1),
		100*(float64(a.Counters.Erases)/float64(f.Counters.Erases)-1))
	if a.Across != nil {
		d, p, u := a.Across.ComponentShares()
		fmt.Printf("across-page census: direct %.1f%%, profitable merges %.1f%%, unprofitable %.1f%%, rollback ratio %.1f%%\n",
			100*d, 100*p, 100*u, 100*a.Across.RollbackRatio())
	}
}

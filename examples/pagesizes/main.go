// pagesizes: the §4.3 case study — how the across-page ratio and
// Across-FTL's advantage vary with the flash page size.
//
// One fixed workload is analysed and replayed against 4, 8 and 16 KB-page
// devices of identical capacity. Two things should be visible (Figs 13/14):
// the across-page ratio falls as pages grow, and Across-FTL's improvement
// over the baseline persists at every page size.
//
// Run with: go run ./examples/pagesizes [-profile lun6] [-scale 0.03]
package main

import (
	"flag"
	"fmt"
	"log"

	"across"
)

func main() {
	name := flag.String("profile", "lun6", "Table 2 profile (lun6 has the highest across ratio)")
	scale := flag.Float64("scale", 0.03, "fraction of the profile's request count")
	flag.Parse()

	base := across.ExperimentConfig()
	prof, err := across.Profile(*name)
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := across.GenerateTrace(prof.Scale(*scale), base.LogicalSectors())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d requests\n\n", *name, len(reqs))
	fmt.Println("page  across-ratio  FTL erases  Across erases  saving   FTL IO(s)  Across IO(s)  saving")

	for _, pageBytes := range []int{4096, 8192, 16384} {
		cfg := base.WithPageBytes(pageBytes)
		st := across.TraceStats(reqs, pageBytes)

		ftlRes, err := across.Run(across.BaselineFTL, cfg, reqs, true)
		if err != nil {
			log.Fatal(err)
		}
		acrossRes, err := across.Run(across.AcrossFTL, cfg, reqs, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2dKB  %12.3f  %10d  %13d  %+6.1f%%  %9.2f  %12.2f  %+6.1f%%\n",
			pageBytes/1024, st.AcrossRatio(),
			ftlRes.Counters.Erases, acrossRes.Counters.Erases,
			100*(float64(acrossRes.Counters.Erases)/float64(ftlRes.Counters.Erases)-1),
			ftlRes.TotalIOTime()/1000, acrossRes.TotalIOTime()/1000,
			100*(acrossRes.TotalIOTime()/ftlRes.TotalIOTime()-1))
	}

	fmt.Println("\nThe across-page ratio decreases with page size (Fig 13), while the")
	fmt.Println("erase/IO-time savings persist at every size (Fig 14) — the paper's")
	fmt.Println("scalability argument for Across-FTL.")
}

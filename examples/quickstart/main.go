// Quickstart: simulate the paper's worked example (Figs 3 and 5).
//
// A single across-page write — write(1028K, 6K) on an 8 KB-page SSD — costs
// the conventional FTL two flash programs (it spans logical pages 128 and
// 129) but Across-FTL only one, because the request is re-aligned onto a
// single physical page through the across-page mapping table. The follow-up
// read(1030K, 4K) is a "direct read": one flash read instead of two.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"across"
)

func main() {
	// A small device keeps the example instant; timing and page geometry
	// are the paper's Table 1 values.
	cfg := across.ScaledConfig(512)

	// write(1028K, 6K): sectors are 512 B, so offset 2056, length 12.
	write := across.Request{Time: 0, Op: 1, Offset: 2056, Count: 12}
	read := across.Request{Time: 10, Op: 0, Offset: 2060, Count: 8} // read(1030K, 4K)
	trace := []across.Request{write, read}

	fmt.Printf("request %v is %v on 8KB pages (logical pages %d..%d)\n\n",
		write, whatClass(write), write.FirstLPN(16), write.LastLPN(16))

	for _, scheme := range []across.Scheme{across.BaselineFTL, across.AcrossFTL} {
		res, err := across.Run(scheme, cfg, trace, false)
		if err != nil {
			log.Fatal(err)
		}
		c := res.Counters
		fmt.Printf("%-11s flash programs=%d flash reads=%d  (write latency %.3f ms, read latency %.3f ms)\n",
			res.Scheme+":", c.FlashWrites(), c.FlashReads(),
			res.AvgWriteLatency(), res.AvgReadLatency())
		if res.Across != nil {
			fmt.Printf("            across census: %d direct write(s), %d direct read(s)\n",
				res.Across.DirectWrites, res.Across.DirectReads)
		}
	}
	fmt.Println("\nAcross-FTL serviced both the across-page write and the read with one")
	fmt.Println("flash operation each — the re-alignment the paper proposes.")
}

func whatClass(r across.Request) string {
	switch r.Classify(16) {
	case 1:
		return "an across-page request"
	case 0:
		return "an aligned request"
	}
	return "an unaligned request"
}

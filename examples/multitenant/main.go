// multitenant: an extension study beyond the paper — several VDI LUNs
// consolidated onto one SSD.
//
// The paper replays each LUN trace on its own device. Real VDI hosts pack
// many LUNs onto one drive, so this example places three Table 2 workloads
// in disjoint regions of a single address space, interleaves them by
// arrival time, and compares the schemes on the combined stream. Across-page
// requests from different tenants compete for the same chips, making the
// re-alignment savings — and the latency tail — more pronounced.
//
// Run with: go run ./examples/multitenant [-scale 0.02]
package main

import (
	"flag"
	"fmt"
	"log"

	"across"
)

func main() {
	scale := flag.Float64("scale", 0.02, "fraction of each LUN's request count")
	flag.Parse()

	cfg := across.ExperimentConfig()
	tenants := []string{"lun1", "lun3", "lun6"}
	region := cfg.LogicalSectors() / int64(len(tenants))

	var traces [][]across.Request
	for i, name := range tenants {
		p, err := across.Profile(name)
		if err != nil {
			log.Fatal(err)
		}
		// Confine each tenant to its own third of the address space.
		p.FootprintFrac = 0.30
		reqs, err := across.GenerateTrace(p.Scale(*scale), region)
		if err != nil {
			log.Fatal(err)
		}
		traces = append(traces, across.ShiftTrace(reqs, int64(i)*region))
	}
	combined := across.InterleaveTraces(traces...)
	st := across.TraceStats(combined, cfg.PageBytes)
	fmt.Printf("combined stream: %d requests from %d tenants, %.1f%% across-page\n\n",
		st.Requests, len(tenants), 100*st.AcrossRatio())

	fmt.Println("scheme       write-lat(ms)  p99-write(ms)  read-lat(ms)  erases")
	for _, scheme := range across.Schemes() {
		res, err := across.Run(scheme, cfg, combined, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s  %13.3f  %13.3f  %12.3f  %6d\n",
			res.Scheme, res.AvgWriteLatency(), res.WriteLat.P99(),
			res.AvgReadLatency(), res.Counters.Erases)
	}
	fmt.Println("\nConsolidation preserves the paper's ordering: Across-FTL still wins")
	fmt.Println("on latency and endurance when tenants share the flash array.")
}

// agingstudy: how device aging (the §4.1 warm-up to 90% used capacity)
// changes the comparison, and what the GC victim policy contributes.
//
// The same workload is replayed on a fresh device and on an aged one, for
// the baseline FTL and Across-FTL, and then once more with the ablated
// FIFO garbage collector. An aged device is where across-page re-alignment
// pays: garbage collection amplifies every extra flash write the baseline
// performs.
//
// Run with: go run ./examples/agingstudy
package main

import (
	"flag"
	"fmt"
	"log"

	"across"
)

func main() {
	scale := flag.Float64("scale", 0.03, "fraction of the lun3 request count")
	flag.Parse()

	cfg := across.ExperimentConfig()
	prof, err := across.Profile("lun3")
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := across.GenerateTrace(prof.Scale(*scale), cfg.LogicalSectors())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload lun3 (%d requests) on %s\n\n", len(reqs), cfg.String())
	fmt.Println("state  scheme       erases  gc-writes  write-lat(ms)  io-time(s)")
	for _, aged := range []bool{false, true} {
		for _, scheme := range []across.Scheme{across.BaselineFTL, across.AcrossFTL} {
			res, err := across.Run(scheme, cfg, reqs, aged)
			if err != nil {
				log.Fatal(err)
			}
			state := "fresh"
			if aged {
				state = "aged "
			}
			fmt.Printf("%s  %-11s  %6d  %9d  %13.3f  %10.2f\n",
				state, res.Scheme, res.Counters.Erases, res.Counters.GCWrites,
				res.AvgWriteLatency(), res.TotalIOTime()/1000)
		}
	}

	fmt.Println("\nAging floods the device with stale pages, so every host write can")
	fmt.Println("trigger garbage collection; the across-page savings compound there.")
	fmt.Println("\nFor GC-policy ablations (greedy vs FIFO victim selection, AMerge")
	fmt.Println("disabled, AMT cache sweeps), see `go test -bench Ablation .`")
}

package across

import (
	"os"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

// checkedDocs are the navigational documents whose internal links and
// anchors must resolve; CI's docs job runs this test, so a renamed heading
// or moved file breaks the build instead of silently orphaning a link.
var checkedDocs = []string{"README.md", "ARCHITECTURE.md", "DESIGN.md", "EXPERIMENTS.md"}

var (
	mdLink  = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	mdFence = regexp.MustCompile("(?s)```.*?```")
)

// TestMarkdownLinksResolve checks every relative [text](target) link in
// checkedDocs: the target file must exist, and a #fragment must match a
// heading slug (GitHub slugging rules) in the target document.
func TestMarkdownLinksResolve(t *testing.T) {
	anchors := map[string]map[string]bool{}
	for _, doc := range checkedDocs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		anchors[doc] = headingSlugs(string(body))
	}
	for _, doc := range checkedDocs {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		text := mdFence.ReplaceAllString(string(body), "")
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			if path != "" {
				if _, err := os.Stat(path); err != nil {
					t.Errorf("%s: link target %q does not exist", doc, target)
					continue
				}
			}
			if frag == "" {
				continue
			}
			dest := path
			if dest == "" {
				dest = doc
			}
			destAnchors, ok := anchors[dest]
			if !ok {
				// Anchor into a file outside the checked set: existence of
				// the file is all we can assert.
				continue
			}
			if !destAnchors[frag] {
				t.Errorf("%s: anchor %q not found in %s", doc, "#"+frag, dest)
			}
		}
	}
}

// headingSlugs collects the GitHub anchor slugs of every markdown heading
// outside code fences.
func headingSlugs(body string) map[string]bool {
	slugs := map[string]bool{}
	for _, line := range strings.Split(mdFence.ReplaceAllString(body, ""), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimSpace(strings.TrimLeft(line, "#"))
		slugs[githubSlug(text)] = true
	}
	return slugs
}

// githubSlug reproduces GitHub's heading-anchor slugging: lowercase, keep
// letters/digits/hyphens/underscores, spaces become hyphens, everything
// else is dropped.
func githubSlug(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Command experiments regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	experiments                      # run everything at the default scale
//	experiments -run fig9,fig11      # selected artifacts only
//	experiments -scale 0.2           # replay 20% of the Table 2 trace lengths
//	experiments -full                # full Table 1 geometry and trace lengths
//	experiments -out results.txt     # also write the report to a file
//
// Artifacts: table1 table2 fig2 fig4 fig8 fig9 fig10 fig11 fig12 fig13 fig14.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"across"
	"across/internal/profiling"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment ids (default: all)")
		scale   = flag.Float64("scale", 0, "fraction of Table 2 request counts to replay (default 0.05; 1.0 with -full)")
		full    = flag.Bool("full", false, "use the full 128 GiB Table 1 geometry and full trace lengths")
		noAge   = flag.Bool("no-age", false, "skip the 90%-used device warm-up (faster, less faithful)")
		workers = flag.Int("workers", 0, "parallel replays (default GOMAXPROCS)")
		out     = flag.String("out", "", "also write the report to this file")
		ext     = flag.Bool("ext", false, "also run the extension studies (ext-tail, ext-wear, ext-dftl, ext-util, ext-timeline)")
		seed    = flag.Int64("seed", 0, "workload seed offset (stability checks)")
		format  = flag.String("format", "text", "table format: text, markdown, csv")
		list    = flag.Bool("list", false, "list experiment ids and exit")

		traceOut   = flag.String("trace-out", "", "write the ext-timeline Across-FTL replay's execution trace here (.jsonl = event lines, else Chrome trace_event)")
		metricsOut = flag.String("metrics-out", "", "write the ext-timeline sampled metrics as JSONL here")
		metricsInt = flag.Float64("metrics-interval-ms", 0, "ext-timeline sampling interval in simulated ms (0 = auto)")
	)
	prof := profiling.Register()
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	if *list {
		for _, id := range across.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := across.ExperimentConfigDefaults()
	if *full {
		cfg.SSD = across.Table1Config()
		cfg.Scale = 1.0
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	cfg.Age = !*noAge
	cfg.Workers = *workers
	cfg.SeedOffset = *seed
	cfg.Format = *format
	cfg.TraceOut = *traceOut
	cfg.MetricsOut = *metricsOut
	cfg.MetricsIntervalMs = *metricsInt

	var w io.Writer = os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "Across-FTL experiment harness — device %s, trace scale %.3f, aged=%v\n\n",
		cfg.SSD.String(), cfg.Scale, cfg.Age)

	start := time.Now()
	var err error
	if *runList == "" {
		err = across.RunAllExperiments(cfg, w)
		if err == nil && *ext {
			for _, id := range []string{"ext-tail", "ext-wear", "ext-dftl", "ext-util", "ext-timeline"} {
				if err = across.RunExperiment(id, cfg, w); err != nil {
					break
				}
			}
		}
	} else {
		for _, id := range strings.Split(*runList, ",") {
			if err = across.RunExperiment(strings.TrimSpace(id), cfg, w); err != nil {
				break
			}
		}
	}
	if err != nil {
		if outFile != nil {
			outFile.Close()
		}
		fatal(err)
	}
	fmt.Fprintf(w, "completed in %s\n", time.Since(start).Round(time.Millisecond))
	// A failed close means the -out report is truncated on disk even though
	// stdout looked complete; that must not exit 0.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(fmt.Errorf("writing -out %s: %w", *out, err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

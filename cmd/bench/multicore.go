package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// MulticoreReport is the JSON document of -multicore mode: how replay
// throughput scales with cores, both inside one replay (the parallel
// engine's lane/merge pipeline) and across a sweep of independent replays
// (the scheduler-style per-worker runner pool). NumCPU is recorded because
// speedups are only meaningful relative to the cores the host actually has
// — on a single-core machine every ratio legitimately sits near 1.
type MulticoreReport struct {
	Benchmark     string          `json:"benchmark"`
	GoVersion     string          `json:"go_version"`
	GitRevision   string          `json:"git_revision,omitempty"`
	NumCPU        int             `json:"num_cpu"`
	Device        string          `json:"device"`
	TraceRequests int             `json:"trace_requests"`
	Engine        []EngineSection `json:"engine"`
	Sweep         []SweepSection  `json:"sweep"`
}

// EngineSection is one scheme × worker-count measurement of the parallel
// replay engine on a single trace. SpeedupVsSerial is against the same
// scheme's workers=1 (serial engine) row at the same GOMAXPROCS policy.
type EngineSection struct {
	Scheme          string  `json:"scheme"`
	Workers         int     `json:"workers"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Iterations      int     `json:"iterations"`
	NsPerOp         int64   `json:"ns_per_op"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// SweepSection is one scheme × pool-width measurement of sweep-level
// parallelism: Jobs independent replays (seed-varied traces) drained by
// PoolWorkers workers, each owning a pre-aged Runner — the shape in which
// acrossd exploits multiple cores. SpeedupVsSerial is against the
// PoolWorkers=1 row.
type SweepSection struct {
	Scheme          string  `json:"scheme"`
	PoolWorkers     int     `json:"pool_workers"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Jobs            int     `json:"jobs"`
	WallSeconds     float64 `json:"wall_seconds"`
	JobsPerSec      float64 `json:"jobs_per_sec"`
	RequestsPerSec  float64 `json:"requests_per_sec"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// parseWorkersList parses "-workers-list" ("1,2,4,8") into worker counts.
func parseWorkersList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad workers list entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty workers list")
	}
	return out, nil
}

// engineBench measures one scheme replaying the trace with the given worker
// count: workers=1 is the serial engine, more the parallel one. Constructing
// and aging the runner stays outside the timed region.
func engineBench(kind sim.SchemeKind, conf ssdconf.Config, reqs []trace.Request, workers int) (testing.BenchmarkResult, error) {
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		r, err := sim.NewRunner(kind, conf)
		if err != nil {
			runErr = err
			return
		}
		if err := r.Age(sim.DefaultAging()); err != nil {
			runErr = err
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if workers > 1 {
				_, err = r.ReplayParallel(reqs, 0, sim.ParallelOptions{Workers: workers})
			} else {
				_, err = r.Replay(reqs)
			}
			if err != nil {
				runErr = err
				return
			}
		}
	})
	return res, runErr
}

// sweepBench runs jobs independent replays over a pool of poolWorkers
// workers, each worker owning its own pre-aged Runner (built and aged
// before the clock starts). Traces are seed-varied per job so the sweep
// mirrors a parameter study rather than one replay repeated.
func sweepBench(kind sim.SchemeKind, conf ssdconf.Config, traces [][]trace.Request, poolWorkers int) (wall time.Duration, err error) {
	runners := make([]*sim.Runner, poolWorkers)
	for i := range runners {
		r, rerr := sim.NewRunner(kind, conf)
		if rerr != nil {
			return 0, rerr
		}
		if aerr := r.Age(sim.DefaultAging()); aerr != nil {
			return 0, aerr
		}
		runners[i] = r
	}
	jobCh := make(chan int)
	errCh := make(chan error, poolWorkers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < poolWorkers; w++ {
		wg.Add(1)
		go func(r *sim.Runner) {
			defer wg.Done()
			for idx := range jobCh {
				if _, rerr := r.Replay(traces[idx]); rerr != nil {
					errCh <- rerr
					return
				}
			}
		}(runners[w])
	}
	for i := range traces {
		jobCh <- i
	}
	close(jobCh)
	wg.Wait()
	wall = time.Since(start)
	select {
	case err = <-errCh:
	default:
	}
	return wall, err
}

// runMulticore builds and emits the multi-core scaling report.
func runMulticore(workersList string, sweepJobs int, out string) error {
	workers, err := parseWorkersList(workersList)
	if err != nil {
		return err
	}
	conf := benchSSD()
	reqs, err := benchTrace(conf)
	if err != nil {
		return err
	}
	if sweepJobs < 1 {
		sweepJobs = 2 * workers[len(workers)-1]
	}
	traces := make([][]trace.Request, sweepJobs)
	for i := range traces {
		p, perr := workload.LunProfile("lun1")
		if perr != nil {
			return perr
		}
		p = p.Scale(0.004)
		p.Seed += int64(i)
		traces[i], err = workload.Generate(p, conf.LogicalSectors())
		if err != nil {
			return err
		}
	}
	var sweepReqs int
	for _, tr := range traces {
		sweepReqs += len(tr)
	}

	rep := MulticoreReport{
		Benchmark:     "MulticoreReplay",
		GoVersion:     runtime.Version(),
		GitRevision:   gitRevision(),
		NumCPU:        runtime.NumCPU(),
		Device:        conf.String(),
		TraceRequests: len(reqs),
	}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	for _, kind := range sim.Kinds() {
		var serialNs int64
		for _, w := range workers {
			runtime.GOMAXPROCS(w)
			fmt.Fprintf(os.Stderr, "bench: multicore engine %s workers=%d...\n", kind, w)
			r, err := engineBench(kind, conf, reqs, w)
			if err != nil {
				return err
			}
			sec := EngineSection{
				Scheme:         string(kind),
				Workers:        w,
				GOMAXPROCS:     w,
				Iterations:     r.N,
				NsPerOp:        r.NsPerOp(),
				RequestsPerSec: float64(len(reqs)) * float64(r.N) / r.T.Seconds(),
			}
			if w == 1 {
				serialNs = sec.NsPerOp
			}
			if serialNs > 0 && sec.NsPerOp > 0 {
				sec.SpeedupVsSerial = float64(serialNs) / float64(sec.NsPerOp)
			}
			rep.Engine = append(rep.Engine, sec)
		}

		var serialWall float64
		for _, w := range workers {
			runtime.GOMAXPROCS(w)
			fmt.Fprintf(os.Stderr, "bench: multicore sweep %s pool=%d (%d jobs)...\n", kind, w, sweepJobs)
			wall, err := sweepBench(kind, conf, traces, w)
			if err != nil {
				return err
			}
			sec := SweepSection{
				Scheme:         string(kind),
				PoolWorkers:    w,
				GOMAXPROCS:     w,
				Jobs:           sweepJobs,
				WallSeconds:    wall.Seconds(),
				JobsPerSec:     float64(sweepJobs) / wall.Seconds(),
				RequestsPerSec: float64(sweepReqs) / wall.Seconds(),
			}
			if w == 1 {
				serialWall = sec.WallSeconds
			}
			if serialWall > 0 && sec.WallSeconds > 0 {
				sec.SpeedupVsSerial = serialWall / sec.WallSeconds
			}
			rep.Sweep = append(rep.Sweep, sec)
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// ForkSweepReport is the JSON document of -forksweep mode: the wall-clock
// amortisation a parameter sweep gains by warming a device once,
// snapshotting it, and forking every variant from the stored checkpoint —
// versus the naive sweep that builds and warms a fresh device per variant.
// This is the same age-once/fork-many shape acrossd applies to jobs sharing
// an aging key, measured in isolation. Warm-up follows the paper's §4.1
// recipe — a fill to the target utilisation, then an untimed aging-trace
// replay — so its cost reflects real preconditioning, not just the fill.
// ResultsIdentical guards the optimisation's whole premise: a forked replay
// must be indistinguishable from a fresh-aged one.
type ForkSweepReport struct {
	Benchmark     string  `json:"benchmark"`
	GoVersion     string  `json:"go_version"`
	GitRevision   string  `json:"git_revision,omitempty"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Device        string  `json:"device"`
	Scheme        string  `json:"scheme"`
	TraceRequests int     `json:"trace_requests"`
	AgingRequests int     `json:"aging_trace_requests"`
	AgeMs         float64 `json:"age_ms"`
	SnapshotMs    float64 `json:"snapshot_ms"`
	SnapshotBytes int     `json:"snapshot_bytes"`

	Variants []ForkVariant `json:"variants"`

	BaselineTotalMs  float64 `json:"baseline_total_ms"`
	ForkTotalMs      float64 `json:"fork_total_ms"`
	Speedup          float64 `json:"speedup"`
	ResultsIdentical bool    `json:"results_identical"`
}

// ForkVariant is one sweep point (a queue-depth setting): the naive cost
// (fresh device + age + replay) against the forked cost (restore + replay).
type ForkVariant struct {
	QD         int     `json:"qd"`
	BaselineMs float64 `json:"baseline_ms"`
	RestoreMs  float64 `json:"restore_ms"`
	ReplayMs   float64 `json:"replay_ms"`
	ForkMs     float64 `json:"fork_ms"`
	Identical  bool    `json:"identical"`
}

// parseQDList parses "-forksweep-qds" ("0,4,8") into queue depths.
func parseQDList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad qd list entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty qd list")
	}
	return out, nil
}

// forkResultsEqual compares the simulation-visible outcome of two replays:
// every flash/DRAM counter, the request tally, total simulated I/O time and
// the wear distribution. Bit-identical results here mean the forked device
// was in exactly the fresh-aged device's state.
func forkResultsEqual(a, b *sim.Result) bool {
	return a.Counters == b.Counters &&
		a.Requests == b.Requests &&
		a.ReadCount == b.ReadCount &&
		a.WriteCount == b.WriteCount &&
		a.TotalIOTime() == b.TotalIOTime() &&
		a.Wear == b.Wear
}

// warmRunner builds a fresh runner and runs the full §4.1 warm-up on it:
// the utilisation-targeted fill, then the untimed aging-trace replay.
func warmRunner(kind sim.SchemeKind, conf ssdconf.Config, agingReqs []trace.Request) (*sim.Runner, error) {
	r, err := sim.NewRunner(kind, conf)
	if err != nil {
		return nil, err
	}
	if err := r.Age(sim.DefaultAging()); err != nil {
		return nil, err
	}
	if err := r.AgeWithTrace(agingReqs); err != nil {
		return nil, err
	}
	return r, nil
}

// runForkSweep builds and emits the fork-from-snapshot amortisation report.
func runForkSweep(schemeName, qdList string, agingScale float64, out string) error {
	kind := sim.SchemeKind(schemeName)
	qds, err := parseQDList(qdList)
	if err != nil {
		return err
	}
	conf := benchSSD()
	reqs, err := benchTrace(conf)
	if err != nil {
		return err
	}
	// The §4.1 aging trace: the write-heavy lun6 profile, generated once and
	// shared by both legs so warm-up is identical work either way.
	agingProf, err := workload.LunProfile("lun6")
	if err != nil {
		return err
	}
	agingReqs, err := workload.Generate(agingProf.Scale(agingScale), conf.LogicalSectors())
	if err != nil {
		return err
	}

	rep := ForkSweepReport{
		Benchmark:        "ForkSweep",
		GoVersion:        runtime.Version(),
		GitRevision:      gitRevision(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Device:           conf.String(),
		Scheme:           schemeName,
		TraceRequests:    len(reqs),
		AgingRequests:    len(agingReqs),
		ResultsIdentical: true,
	}

	// Fork leg: warm once, snapshot, then restore+replay per variant.
	fmt.Fprintf(os.Stderr, "bench: forksweep %s warming once (%d aging requests)...\n", kind, len(agingReqs))
	start := time.Now()
	warm, err := warmRunner(kind, conf, agingReqs)
	if err != nil {
		return err
	}
	rep.AgeMs = msSince(start)

	start = time.Now()
	blob, err := warm.Snapshot()
	if err != nil {
		return err
	}
	rep.SnapshotMs = msSince(start)
	rep.SnapshotBytes = len(blob)

	forked := make([]*sim.Result, len(qds))
	for i, qd := range qds {
		fmt.Fprintf(os.Stderr, "bench: forksweep fork qd=%d...\n", qd)
		v := ForkVariant{QD: qd}
		start = time.Now()
		r, err := sim.Restore(blob)
		if err != nil {
			return err
		}
		v.RestoreMs = msSince(start)
		start = time.Now()
		res, err := r.ReplayQD(reqs, qd)
		if err != nil {
			return err
		}
		v.ReplayMs = msSince(start)
		v.ForkMs = v.RestoreMs + v.ReplayMs
		forked[i] = res
		rep.Variants = append(rep.Variants, v)
		rep.ForkTotalMs += v.ForkMs
	}
	rep.ForkTotalMs += rep.AgeMs + rep.SnapshotMs

	// Baseline leg: fresh device, full warm-up, then replay — per variant.
	for i, qd := range qds {
		fmt.Fprintf(os.Stderr, "bench: forksweep baseline qd=%d...\n", qd)
		start = time.Now()
		r, err := warmRunner(kind, conf, agingReqs)
		if err != nil {
			return err
		}
		res, err := r.ReplayQD(reqs, qd)
		if err != nil {
			return err
		}
		rep.Variants[i].BaselineMs = msSince(start)
		rep.BaselineTotalMs += rep.Variants[i].BaselineMs
		rep.Variants[i].Identical = forkResultsEqual(res, forked[i])
		if !rep.Variants[i].Identical {
			rep.ResultsIdentical = false
		}
	}
	if rep.ForkTotalMs > 0 {
		rep.Speedup = rep.BaselineTotalMs / rep.ForkTotalMs
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

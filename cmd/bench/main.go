// Command bench measures raw simulator replay throughput for each FTL
// scheme and writes a machine-readable JSON report, so performance work on
// the replay hot path can be tracked across commits.
//
// Usage:
//
//	bench                    # print the report to stdout
//	bench -o BENCH_PR1.json  # also write it to a file
//
// The benchmark device and workload mirror BenchmarkReplayThroughput in the
// repository's bench suite: Table 1 flash timing on a 4-chip 256 MiB array,
// replaying the lun1 profile at 0.4% scale against an aged device.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// Report is the top-level JSON document.
type Report struct {
	Benchmark     string         `json:"benchmark"`
	GoVersion     string         `json:"go_version"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Device        string         `json:"device"`
	TraceRequests int            `json:"trace_requests"`
	Schemes       []SchemeReport `json:"schemes"`
}

// SchemeReport is one scheme's measured replay performance.
type SchemeReport struct {
	Scheme         string  `json:"scheme"`
	Iterations     int     `json:"iterations"`
	NsPerOp        int64   `json:"ns_per_op"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
}

func benchSSD() ssdconf.Config {
	c := ssdconf.Table1()
	c.Channels = 4
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 128
	c.PagesPerBlock = 32
	return c
}

func benchTrace(conf ssdconf.Config) ([]trace.Request, error) {
	p, err := workload.LunProfile("lun1")
	if err != nil {
		return nil, err
	}
	return workload.Generate(p.Scale(0.004), conf.LogicalSectors())
}

// replayResult benchmarks one scheme: per iteration, replay the whole trace
// on a pre-aged runner (aging and construction are outside the timed region).
func replayResult(kind sim.SchemeKind, conf ssdconf.Config, reqs []trace.Request) (testing.BenchmarkResult, error) {
	var runErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		r, err := sim.NewRunner(kind, conf)
		if err != nil {
			runErr = err
			return
		}
		if err := r.Age(sim.DefaultAging()); err != nil {
			runErr = err
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Replay(reqs); err != nil {
				runErr = err
				return
			}
		}
	})
	return res, runErr
}

func main() {
	out := flag.String("o", "", "also write the JSON report to this file")
	flag.Parse()

	conf := benchSSD()
	reqs, err := benchTrace(conf)
	if err != nil {
		fatal(err)
	}

	rep := Report{
		Benchmark:     "ReplayThroughput",
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Device:        conf.String(),
		TraceRequests: len(reqs),
	}
	for _, kind := range sim.Kinds() {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", kind)
		r, err := replayResult(kind, conf, reqs)
		if err != nil {
			fatal(err)
		}
		rep.Schemes = append(rep.Schemes, SchemeReport{
			Scheme:         string(kind),
			Iterations:     r.N,
			NsPerOp:        r.NsPerOp(),
			RequestsPerSec: float64(len(reqs)) * float64(r.N) / r.T.Seconds(),
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
		})
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// Command bench measures raw simulator replay throughput for each FTL
// scheme and writes a machine-readable JSON report, so performance work on
// the replay hot path can be tracked across commits.
//
// Usage:
//
//	bench                    # print the report to stdout
//	bench -o BENCH_PR1.json  # also write it to a file
//
// The benchmark device and workload mirror BenchmarkReplayThroughput in the
// repository's bench suite: Table 1 flash timing on a 4-chip 256 MiB array,
// replaying the lun1 profile at 0.4% scale against an aged device.
//
// With -loadgen the command instead acts as a closed-loop load generator
// against a running acrossd daemon: N concurrent clients each submit a
// distinct replay job, poll it to completion and fetch its result, and the
// report captures end-to-end job throughput and latency percentiles:
//
//	bench -loadgen -addr http://127.0.0.1:8377 -clients 100 -jobs 200
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"

	"across/internal/obs"
	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// Report is the top-level JSON document.
type Report struct {
	Benchmark     string         `json:"benchmark"`
	GoVersion     string         `json:"go_version"`
	GitRevision   string         `json:"git_revision,omitempty"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Device        string         `json:"device"`
	TraceRequests int            `json:"trace_requests"`
	Schemes       []SchemeReport `json:"schemes"`
}

// SchemeReport is one scheme's measured replay performance, plus the
// replay's simulation-side outcome (wear distribution and chip-load
// balance) so a perf regression that trades speed for simulation behaviour
// is visible in the same artifact.
type SchemeReport struct {
	Scheme         string  `json:"scheme"`
	Iterations     int     `json:"iterations"`
	NsPerOp        int64   `json:"ns_per_op"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`

	Wear    sim.WearSummary `json:"wear"`
	UtilMin float64         `json:"utilisation_min"`
	UtilMax float64         `json:"utilisation_max"`
}

// gitRevision identifies the benched commit: the build info's vcs.revision
// when the binary was built from a checkout, falling back to git itself
// (go run strips VCS stamping).
func gitRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func benchSSD() ssdconf.Config {
	c := ssdconf.Table1()
	c.Channels = 4
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 128
	c.PagesPerBlock = 32
	return c
}

func benchTrace(conf ssdconf.Config) ([]trace.Request, error) {
	p, err := workload.LunProfile("lun1")
	if err != nil {
		return nil, err
	}
	return workload.Generate(p.Scale(0.004), conf.LogicalSectors())
}

// replayResult benchmarks one scheme: per iteration, replay the whole trace
// on a pre-aged runner (aging and construction are outside the timed
// region). It also returns the last iteration's simulation Result.
func replayResult(kind sim.SchemeKind, conf ssdconf.Config, reqs []trace.Request) (testing.BenchmarkResult, *sim.Result, error) {
	var runErr error
	var last *sim.Result
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		r, err := sim.NewRunner(kind, conf)
		if err != nil {
			runErr = err
			return
		}
		if err := r.Age(sim.DefaultAging()); err != nil {
			runErr = err
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sr, err := r.Replay(reqs)
			if err != nil {
				runErr = err
				return
			}
			last = sr
		}
	})
	return res, last, runErr
}

// instrumentedReplay runs one untimed, fully observed replay of a scheme —
// the benchmark artifact then ships with an inspectable execution trace and
// metrics series from the same workload.
func instrumentedReplay(kind sim.SchemeKind, conf ssdconf.Config, reqs []trace.Request, traceOut, metricsOut string, intervalMs float64) (err error) {
	r, rerr := sim.NewRunner(kind, conf)
	if rerr != nil {
		return rerr
	}
	if aerr := r.Age(sim.DefaultAging()); aerr != nil {
		return aerr
	}
	// Every opened writer is closed exactly once on every path, and a failed
	// close (lost buffered output) surfaces even when the replay succeeded.
	var closers []interface{ Close() error }
	defer func() {
		var cerrs []error
		for _, c := range closers {
			if cerr := c.Close(); cerr != nil {
				cerrs = append(cerrs, cerr)
			}
		}
		err = errors.Join(append([]error{err}, cerrs...)...)
	}()
	if traceOut != "" {
		trc, c, oerr := obs.OpenTrace(traceOut, conf.Chips())
		if oerr != nil {
			return oerr
		}
		r.SetTracer(trc)
		closers = append(closers, c)
	}
	if metricsOut != "" {
		smp, serr := obs.NewSampler(intervalMs)
		if serr != nil {
			return serr
		}
		sink, c, oerr := obs.OpenMetrics(metricsOut)
		if oerr != nil {
			return oerr
		}
		smp.SetSink(sink)
		r.SetSampler(smp)
		closers = append(closers, c)
	}
	_, err = r.Replay(reqs)
	return err
}

func main() {
	out := flag.String("o", "", "also write the JSON report to this file")
	traceOut := flag.String("trace-out", "", "also run one instrumented replay writing an execution trace here (.jsonl = event lines, else Chrome trace_event)")
	metricsOut := flag.String("metrics-out", "", "also run one instrumented replay writing metrics JSONL here")
	metricsInt := flag.Float64("metrics-interval-ms", 50, "sampling interval for -metrics-out in simulated ms")
	obsScheme := flag.String("obs-scheme", "Across-FTL", "scheme for the instrumented replay (with -trace-out / -metrics-out)")
	loadgen := flag.Bool("loadgen", false, "closed-loop load-generator mode against a running acrossd daemon")
	addr := flag.String("addr", "http://127.0.0.1:8377", "acrossd base URL (with -loadgen)")
	clients := flag.Int("clients", 100, "concurrent closed-loop clients (with -loadgen)")
	jobsN := flag.Int("jobs", 200, "total distinct jobs to push (with -loadgen)")
	loadScale := flag.Float64("loadgen-scale", 0.001, "per-job workload scale (with -loadgen)")
	multicore := flag.Bool("multicore", false, "multi-core scaling mode: parallel engine + runner-pool sweep across GOMAXPROCS settings")
	workersList := flag.String("workers-list", "1,2,4,8", "comma-separated worker counts to sweep (with -multicore)")
	sweepJobs := flag.Int("sweep-jobs", 0, "independent replay jobs per sweep measurement (with -multicore; 0 = 2x max workers)")
	forksweep := flag.Bool("forksweep", false, "fork-from-snapshot amortisation mode: age once + snapshot, fork every sweep variant from the checkpoint, versus fresh aging per variant")
	forksweepScheme := flag.String("forksweep-scheme", "Across-FTL", "scheme to sweep (with -forksweep)")
	forksweepQDs := flag.String("forksweep-qds", "0,2,4,8", "comma-separated queue-depth variants (with -forksweep)")
	forksweepAging := flag.Float64("forksweep-aging-scale", 1.0, "scale of the lun6 aging trace replayed during warm-up (with -forksweep)")
	fleetsweep := flag.Bool("fleetsweep", false, "fleet saturation mode: sweep every scheme over layout x chunk cells of an N-device volume with a closed-loop QD ladder, reporting the saturation knee per cell")
	fleetDevices := flag.Int("fleet-devices", 4, "devices per fleet volume (with -fleetsweep)")
	fleetScale := flag.Float64("fleet-scale", 0.002, "per-cell workload scale (with -fleetsweep)")
	scenariosweep := flag.Bool("scenariosweep", false, "scenario matrix mode: replay every scheme against every builtin scenario plus the MSR trace on two page sizes, with a serial-vs-parallel determinism check per cell")
	scenarioScale := flag.Float64("scenario-scale", 0.002, "builtin-scenario scale (with -scenariosweep)")
	scenarioTrace := flag.String("scenario-trace", "internal/trace/testdata/msr_sample.csv", "real-trace file for the msr-trace cells (with -scenariosweep)")
	flag.Parse()

	if *loadgen {
		if err := runLoadgen(*addr, *clients, *jobsN, *loadScale, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *multicore {
		if err := runMulticore(*workersList, *sweepJobs, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *forksweep {
		if err := runForkSweep(*forksweepScheme, *forksweepQDs, *forksweepAging, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *fleetsweep {
		if err := runFleetSweep(*fleetDevices, *fleetScale, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *scenariosweep {
		if err := runScenarioSweep(*scenarioScale, *scenarioTrace, *out); err != nil {
			fatal(err)
		}
		return
	}

	conf := benchSSD()
	reqs, err := benchTrace(conf)
	if err != nil {
		fatal(err)
	}

	rep := Report{
		Benchmark:     "ReplayThroughput",
		GoVersion:     runtime.Version(),
		GitRevision:   gitRevision(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Device:        conf.String(),
		TraceRequests: len(reqs),
	}
	for _, kind := range sim.Kinds() {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", kind)
		r, last, err := replayResult(kind, conf, reqs)
		if err != nil {
			fatal(err)
		}
		sr := SchemeReport{
			Scheme:         string(kind),
			Iterations:     r.N,
			NsPerOp:        r.NsPerOp(),
			RequestsPerSec: float64(len(reqs)) * float64(r.N) / r.T.Seconds(),
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
		}
		if last != nil {
			sr.Wear = last.Wear
			sr.UtilMin, sr.UtilMax = last.UtilisationSpread()
		}
		rep.Schemes = append(rep.Schemes, sr)
	}

	if *traceOut != "" || *metricsOut != "" {
		fmt.Fprintf(os.Stderr, "bench: instrumented replay (%s)...\n", *obsScheme)
		if err := instrumentedReplay(sim.SchemeKind(*obsScheme), conf, reqs, *traceOut, *metricsOut, *metricsInt); err != nil {
			fatal(err)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"

	"across/internal/report"
	"across/internal/scenario"
	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
)

// ScenarioSweepReport is the JSON document of -scenariosweep mode: every
// scheme replayed against every scenario (the temporal builtins plus the
// checked-in MSR Cambridge trace wrapped as a scenario) on two device page
// sizes. Each cell is one open-loop arrival-paced replay of the scenario
// stream on a pre-aged device forked from a per-(scheme, device) snapshot,
// so cells differ only in the workload's temporal and tenant structure.
// ResultsIdentical guards the scenario determinism contract: the parallel
// engine must reproduce the serial Result byte for byte on every cell.
type ScenarioSweepReport struct {
	Benchmark   string  `json:"benchmark"`
	GoVersion   string  `json:"go_version"`
	GitRevision string  `json:"git_revision,omitempty"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Scale       float64 `json:"scale"`
	Trace       string  `json:"trace"`

	Cells []ScenarioCell `json:"cells"`

	ResultsIdentical bool `json:"results_identical"`
}

// ScenarioCell is one (scheme, scenario, device) measurement.
type ScenarioCell struct {
	Scheme   string `json:"scheme"`
	Scenario string `json:"scenario"`
	Device   string `json:"device"`
	PageKB   int    `json:"page_kb"`
	Cohorts  int    `json:"cohorts"`
	Requests int64  `json:"requests"`

	// ThroughputRPS is requests completed per simulated second of the
	// measured makespan (arrival span plus service/GC drain).
	ThroughputRPS float64 `json:"throughput_rps"`
	AvgReadMs     float64 `json:"avg_read_ms"`
	AvgWriteMs    float64 `json:"avg_write_ms"`
	ReadP99Ms     float64 `json:"read_p99_ms"`
	WriteP99Ms    float64 `json:"write_p99_ms"`

	// WAF is flash data programs (host plus GC) per host-written page.
	// Across-FTL can land below 1.0: realignment merges neighbouring
	// partial-page writes into fewer programs than the page-granular
	// host count.
	WAF    float64 `json:"waf"`
	Erases int64   `json:"erases"`
}

// scenarioSweepWorkers is the parallel-engine lane count of the
// determinism pair; more lanes than chips exercises the worker scheduler.
const scenarioSweepWorkers = 4

// scenarioSweepDevices returns the device matrix: the bench device at its
// native 8 KB page and a 16 KB variant, the page-size axis the paper's
// across-page mechanism is sensitive to.
func scenarioSweepDevices() []ssdconf.Config {
	return []ssdconf.Config{benchSSD(), benchSSD().WithPageBytes(16384)}
}

// scenarioSweepStreams generates every scenario for one device: the
// builtins at the given scale plus the real trace as a single-cohort
// scenario (never scaled — the fixture is already small).
func scenarioSweepStreams(conf ssdconf.Config, scale float64, tracePath string) ([]*scenario.Stream, error) {
	var streams []*scenario.Stream
	for _, name := range scenario.Names() {
		sc, err := scenario.Builtin(name)
		if err != nil {
			return nil, err
		}
		st, err := sc.Scale(scale).Generate(conf.LogicalSectors())
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		streams = append(streams, st)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	reqs, err := trace.ReadAllAuto(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", tracePath, err)
	}
	st, err := scenario.FromTrace("msr-trace", reqs).Generate(conf.LogicalSectors())
	if err != nil {
		return nil, fmt.Errorf("scenario msr-trace: %w", err)
	}
	return append(streams, st), nil
}

// hostPagesWritten is the WAF denominator: flash pages touched by host
// writes at the device's page granularity.
func hostPagesWritten(reqs []trace.Request, spp int) int64 {
	var pages int64
	for _, r := range reqs {
		if r.Op == trace.OpWrite {
			pages += r.LastLPN(spp) - r.FirstLPN(spp) + 1
		}
	}
	return pages
}

// runScenarioCell measures one (scheme, scenario, device) cell: a serial
// replay for the metrics plus a parallel replay for the determinism check,
// each on a fresh fork of the aged snapshot.
func runScenarioCell(kind sim.SchemeKind, blob []byte, conf ssdconf.Config, st *scenario.Stream) (*ScenarioCell, bool, error) {
	rs, err := sim.Restore(blob)
	if err != nil {
		return nil, false, err
	}
	serial, err := rs.Replay(st.Requests)
	if err != nil {
		return nil, false, err
	}
	rp, err := sim.Restore(blob)
	if err != nil {
		return nil, false, err
	}
	parallel, err := rp.ReplayParallel(st.Requests, 0, sim.ParallelOptions{Workers: scenarioSweepWorkers})
	if err != nil {
		return nil, false, err
	}

	cell := &ScenarioCell{
		Scheme:     string(kind),
		Scenario:   st.Scenario,
		Device:     conf.String(),
		PageKB:     conf.PageBytes / 1024,
		Cohorts:    len(st.Cohorts),
		Requests:   serial.Requests,
		AvgReadMs:  serial.AvgReadLatency(),
		AvgWriteMs: serial.AvgWriteLatency(),
		ReadP99Ms:  serial.ReadLat.P99(),
		WriteP99Ms: serial.WriteLat.P99(),
		Erases:     serial.Counters.Erases,
	}
	if serial.MeasuredSpanMs > 0 {
		cell.ThroughputRPS = float64(serial.Requests) / (serial.MeasuredSpanMs / 1000)
	}
	if host := hostPagesWritten(st.Requests, conf.SectorsPerPage()); host > 0 {
		cell.WAF = float64(serial.Counters.DataWrites+serial.Counters.GCWrites) / float64(host)
	}
	return cell, reflect.DeepEqual(serial, parallel), nil
}

// runScenarioSweep executes -scenariosweep and writes the report.
func runScenarioSweep(scale float64, tracePath, out string) error {
	kinds := append(sim.Kinds(), sim.KindDFTL)
	rep := ScenarioSweepReport{
		Benchmark:        "ScenarioMatrixSweep",
		GoVersion:        runtime.Version(),
		GitRevision:      gitRevision(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Scale:            scale,
		Trace:            tracePath,
		ResultsIdentical: true,
	}

	for _, conf := range scenarioSweepDevices() {
		streams, err := scenarioSweepStreams(conf, scale, tracePath)
		if err != nil {
			return err
		}
		for _, kind := range kinds {
			fmt.Fprintf(os.Stderr, "bench: scenariosweep %s page=%dKB: aging...\n", kind, conf.PageBytes/1024)
			seed, err := sim.NewRunner(kind, conf)
			if err != nil {
				return err
			}
			if err := seed.Age(sim.DefaultAging()); err != nil {
				return err
			}
			blob, err := seed.Snapshot()
			if err != nil {
				return err
			}
			for _, st := range streams {
				cell, identical, err := runScenarioCell(kind, blob, conf, st)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", kind, st.Scenario, err)
				}
				rep.Cells = append(rep.Cells, *cell)
				rep.ResultsIdentical = rep.ResultsIdentical && identical
			}
		}
	}

	tbl := report.New("scenario matrix sweep",
		"scheme", "scenario", "page", "reqs", "tput (req/s)", "rd avg", "wr avg", "wr p99", "WAF", "erases")
	for _, c := range rep.Cells {
		tbl.Addf(c.Scheme, c.Scenario, fmt.Sprintf("%dK", c.PageKB), report.N(c.Requests),
			report.F(c.ThroughputRPS, 0), report.F(c.AvgReadMs, 3), report.F(c.AvgWriteMs, 3),
			report.F(c.WriteP99Ms, 3), report.F(c.WAF, 3), report.N(c.Erases))
	}
	tbl.Render(os.Stderr)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if out != "" {
		return os.WriteFile(out, enc, 0o644)
	}
	return nil
}

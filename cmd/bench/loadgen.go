package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadgenReport is the JSON document produced by -loadgen: end-to-end job
// throughput and latency as seen by closed-loop clients of a running
// acrossd daemon.
type LoadgenReport struct {
	Addr    string `json:"addr"`
	Clients int    `json:"clients"`
	Jobs    int    `json:"jobs"`

	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`

	ElapsedSec    float64 `json:"elapsed_sec"`
	JobsPerSec    float64 `json:"jobs_per_sec"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	MaxInFlight   int     `json:"max_in_flight"`

	Errors []string `json:"errors,omitempty"`
}

// loadgenJob is one client's end-to-end observation.
type loadgenJob struct {
	ok      bool
	latency time.Duration
	err     string
}

// waitHealthy polls the daemon's /healthz until it answers or the deadline
// passes.
func waitHealthy(client *http.Client, addr string, deadline time.Duration) error {
	stop := time.Now().Add(deadline)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(stop) {
			if err != nil {
				return fmt.Errorf("daemon at %s not healthy after %v: %w", addr, deadline, err)
			}
			return fmt.Errorf("daemon at %s not healthy after %v", addr, deadline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runOneJob drives a single job through its full client-visible lifecycle:
// submit, poll to a terminal state, fetch the result. The returned latency
// spans the whole round trip, which is what a sweep script experiences.
func runOneJob(client *http.Client, addr, spec string) loadgenJob {
	start := time.Now()
	fail := func(format string, args ...any) loadgenJob {
		return loadgenJob{latency: time.Since(start), err: fmt.Sprintf(format, args...)}
	}

	resp, err := client.Post(addr+"/api/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		return fail("submit: %v", err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return fail("submit decode: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return fail("submit: HTTP %d: %s", resp.StatusCode, st.Error)
	}

	for st.State != "succeeded" {
		switch st.State {
		case "failed", "cancelled":
			return fail("job %s %s: %s", st.ID, st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := client.Get(addr + "/api/v1/jobs/" + st.ID)
		if err != nil {
			return fail("poll: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return fail("poll decode: %v", err)
		}
	}

	resp, err = client.Get(addr + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		return fail("result: %v", err)
	}
	var doc struct {
		Result json.RawMessage `json:"result"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(doc.Result) == 0 {
		return fail("result: HTTP %d err=%v", resp.StatusCode, err)
	}
	return loadgenJob{ok: true, latency: time.Since(start)}
}

// runLoadgen points `clients` closed-loop clients at a running acrossd and
// pushes `jobsN` distinct replay jobs through them (each spec varies the
// workload seed, so deduplication cannot collapse the load). It reports
// end-to-end throughput and latency percentiles as JSON on stdout.
func runLoadgen(addr string, clients, jobsN int, scale float64, outPath string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	if err := waitHealthy(client, addr, 15*time.Second); err != nil {
		return err
	}

	work := make(chan int)
	results := make(chan loadgenJob, jobsN)
	var inFlight, maxInFlight atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				cur := inFlight.Add(1)
				for {
					prev := maxInFlight.Load()
					if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
						break
					}
				}
				spec := fmt.Sprintf(
					`{"type":"replay","scheme":"Across-FTL","profile":"lun1","scale":%g,"seed":%d}`,
					scale, 10_000+i)
				results <- runOneJob(client, addr, spec)
				inFlight.Add(-1)
			}
		}()
	}

	start := time.Now()
	for i := 0; i < jobsN; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	rep := LoadgenReport{
		Addr:        addr,
		Clients:     clients,
		Jobs:        jobsN,
		ElapsedSec:  elapsed.Seconds(),
		MaxInFlight: int(maxInFlight.Load()),
	}
	var lats []float64
	for r := range results {
		if r.ok {
			rep.Succeeded++
			lats = append(lats, float64(r.latency)/float64(time.Millisecond))
		} else {
			rep.Failed++
			if len(rep.Errors) < 10 {
				rep.Errors = append(rep.Errors, r.err)
			}
		}
	}
	if elapsed > 0 {
		rep.JobsPerSec = float64(rep.Succeeded) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		var sum float64
		for _, l := range lats {
			sum += l
		}
		rep.LatencyMeanMs = sum / float64(len(lats))
		rep.LatencyP50Ms = quantile(lats, 0.50)
		rep.LatencyP99Ms = quantile(lats, 0.99)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if outPath != "" {
		if err := os.WriteFile(outPath, enc, 0o644); err != nil {
			return err
		}
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", rep.Failed, jobsN)
	}
	return nil
}

// quantile reads the q-quantile from an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

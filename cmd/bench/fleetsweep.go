package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"

	"across/internal/fleet"
	"across/internal/report"
	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// FleetSweepReport is the JSON document of -fleetsweep mode: the headline
// fleet experiment of DESIGN §14. Every scheme is swept over every layout x
// stripe-chunk cell on an N-device volume; each cell is a closed-loop queue-
// depth sweep over a burst trace, from which the saturation knee (kneedle
// over throughput vs QD) is extracted. Chunk sizes straddle the flash page
// size on purpose: a chunk below the page re-fragments across-page requests
// into partial-page fragments, which is exactly the traffic shape the
// schemes differ on. ResultsIdentical guards the fleet determinism
// contract: an open-loop replay must be byte-identical for any worker
// count.
type FleetSweepReport struct {
	Benchmark     string `json:"benchmark"`
	GoVersion     string `json:"go_version"`
	GitRevision   string `json:"git_revision,omitempty"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Device        string `json:"device"`
	Devices       int    `json:"devices"`
	TraceRequests int    `json:"trace_requests"`
	PageKB        int    `json:"page_kb"`

	Cells []report.FleetCell `json:"cells"`

	ResultsIdentical bool `json:"results_identical"`
}

// fleetSweepQDs is the closed-loop queue-depth ladder of each cell.
var fleetSweepQDs = []int{1, 2, 4, 8, 16, 32}

// fleetSweepChunksKB straddles the 8 KB bench page size: 4 KB re-fragments
// page-aligned traffic, 8 KB matches it, 64 KB is the common RAID default.
var fleetSweepChunksKB = []int{4, 8, 64}

// fleetCellSpecs enumerates the layout x chunk cells: concat ignores the
// chunk, so it contributes one cell.
func fleetCellSpecs(devices int) []fleet.Spec {
	specs := []fleet.Spec{{Devices: devices, Layout: fleet.LayoutConcat}}
	for _, l := range []fleet.Layout{fleet.LayoutRAID0, fleet.LayoutRAID10} {
		for _, kb := range fleetSweepChunksKB {
			specs = append(specs, fleet.Spec{
				Devices:      devices,
				Layout:       l,
				ChunkSectors: int64(kb) * 1024 / ssdconf.SectorBytes,
			})
		}
	}
	return specs
}

// fleetSweepTrace generates the cell workload: a lun1-profile trace sized to
// the volume, with every arrival squashed to t=0 so the closed-loop gate —
// not the arrival process — sets the offered load and the QD ladder can
// actually saturate the devices.
func fleetSweepTrace(v *fleet.Volume, scale float64) ([]trace.Request, error) {
	p, err := workload.LunProfile("lun1")
	if err != nil {
		return nil, err
	}
	reqs, err := workload.Generate(p.Scale(scale), v.LogicalSectors())
	if err != nil {
		return nil, err
	}
	for i := range reqs {
		reqs[i].Time = 0
	}
	return reqs, nil
}

// runFleetSweep executes -fleetsweep and writes the report.
func runFleetSweep(devices int, scale float64, out string) error {
	conf := benchSSD()
	kinds := append(sim.Kinds(), sim.KindDFTL)
	specs := fleetCellSpecs(devices)

	rep := FleetSweepReport{
		Benchmark:        "FleetSaturationSweep",
		GoVersion:        runtime.Version(),
		GitRevision:      gitRevision(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Device:           conf.String(),
		Devices:          devices,
		PageKB:           conf.PageBytes / 1024,
		ResultsIdentical: true,
	}

	for _, kind := range kinds {
		// Age one device per scheme and snapshot it; every cell and every
		// QD point forks a fresh volume from the blob (replays mutate
		// device state, so points must not share devices).
		fmt.Fprintf(os.Stderr, "bench: fleetsweep %s: aging...\n", kind)
		seed, err := sim.NewRunner(kind, conf)
		if err != nil {
			return err
		}
		if err := seed.Age(sim.DefaultAging()); err != nil {
			return err
		}
		blob, err := seed.Snapshot()
		if err != nil {
			return err
		}
		for _, spec := range specs {
			cell, nreqs, identical, err := runFleetCell(kind, blob, spec, scale)
			if err != nil {
				return err
			}
			rep.Cells = append(rep.Cells, *cell)
			rep.ResultsIdentical = rep.ResultsIdentical && identical
			// The request count only varies with the volume's usable
			// capacity (raid10 halves it); record the largest.
			if nreqs > rep.TraceRequests {
				rep.TraceRequests = nreqs
			}
		}
	}

	report.SaturationTable("fleet saturation sweep", rep.Cells, os.Stderr)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	os.Stdout.Write(enc)
	if out != "" {
		return os.WriteFile(out, enc, 0o644)
	}
	return nil
}

// runFleetCell measures one (scheme, layout, chunk) cell: the QD ladder plus
// the open-loop determinism pair (serial vs parallel workers).
func runFleetCell(kind sim.SchemeKind, blob []byte, spec fleet.Spec, scale float64) (*report.FleetCell, int, bool, error) {
	fork := func() (*fleet.Volume, error) { return fleet.FromSnapshot(blob, spec) }
	v0, err := fork()
	if err != nil {
		return nil, 0, false, err
	}
	reqs, err := fleetSweepTrace(v0, scale)
	if err != nil {
		return nil, 0, false, err
	}
	chips := v0.Conf.Chips()
	chunkKB := 0 // concat does not stripe
	if spec.Layout != fleet.LayoutConcat {
		chunkKB = int(v0.ChunkSectors() * ssdconf.SectorBytes / 1024)
	}
	cell := &report.FleetCell{
		Scheme:  string(kind),
		Layout:  string(spec.Layout),
		Devices: spec.Devices,
		ChunkKB: chunkKB,
	}
	fmt.Fprintf(os.Stderr, "bench: fleetsweep %s %s chunk=%dKB...\n", kind, spec.Layout, chunkKB)

	for _, qd := range fleetSweepQDs {
		v, err := fork()
		if err != nil {
			return nil, 0, false, err
		}
		res, err := v.ReplayQD(reqs, qd, fleet.Options{})
		if err != nil {
			return nil, 0, false, err
		}
		lo, hi := res.UtilisationSpread(chips)
		cell.Points = append(cell.Points, report.QDPoint{
			QD:         qd,
			Throughput: res.Throughput(),
			ReadP99:    res.ReadLat.P99(),
			WriteP99:   res.WriteLat.P99(),
			AvgRead:    res.AvgReadLatency(),
			AvgWrite:   res.AvgWriteLatency(),
			UtilMin:    lo,
			UtilMax:    hi,
		})
		if qd == fleetSweepQDs[len(fleetSweepQDs)-1] {
			cell.Fanout = res.Fanout()
			cell.AcrossRatio = res.LogicalClasses.Ratio(trace.ClassAcross)
			cell.SubAcross = res.SubClasses.Ratio(trace.ClassAcross)
			cell.SubUnaligned = res.SubClasses.Ratio(trace.ClassUnaligned)
		}
	}
	if k := report.Knee(cell.Points); k >= 0 {
		cell.KneeQD = cell.Points[k].QD
	}

	// Determinism pair: one open-loop replay serial, one with a worker per
	// device, compared structurally (histograms included).
	vs, err := fork()
	if err != nil {
		return nil, 0, false, err
	}
	serial, err := vs.Replay(reqs, fleet.Options{Workers: 1})
	if err != nil {
		return nil, 0, false, err
	}
	vp, err := fork()
	if err != nil {
		return nil, 0, false, err
	}
	parallel, err := vp.Replay(reqs, fleet.Options{Workers: spec.Devices})
	if err != nil {
		return nil, 0, false, err
	}
	return cell, len(reqs), reflect.DeepEqual(serial, parallel), nil
}

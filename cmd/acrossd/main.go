// Command acrossd runs the simulator as a long-lived HTTP service: clients
// submit replay and experiment jobs, poll their status, stream progress, and
// fetch results. Identical submissions are deduplicated against running jobs
// and against the content-addressed result store on disk, so repeated sweeps
// over the same configurations are served from cache — including across
// daemon restarts.
//
//	acrossd -addr 127.0.0.1:8377 -store /var/tmp/across-results
//
// then:
//
//	curl -s -X POST localhost:8377/api/v1/jobs \
//	  -d '{"type":"replay","scheme":"Across-FTL","profile":"lun1","scale":0.05}'
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, queued and
// running jobs drain (bounded by -drain-timeout), and completed results are
// already on disk for the next process.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"across/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks a free port)")
		storeDir     = flag.String("store", "across-results", "result store directory")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queueCap     = flag.Int("queue", 1024, "queued-job capacity")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job timeout (0 = none; specs may override)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for outstanding jobs")
		retries      = flag.Int("retries", 2, "retry attempts for transiently failing jobs")
		sampleMs     = flag.Float64("sample-interval-ms", 50, "progress sampling interval in simulated ms")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof profiling endpoints under /debug/pprof/")
	)
	flag.Parse()

	if err := run(*addr, service.Config{
		StoreDir:         *storeDir,
		Workers:          *workers,
		QueueCap:         *queueCap,
		DefaultTimeout:   *jobTimeout,
		Retries:          *retries,
		SampleIntervalMs: *sampleMs,
		EnablePprof:      *pprofFlag,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "acrossd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg service.Config, drainTimeout time.Duration) error {
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	// Listen explicitly (rather than ListenAndServe) so ":0" reports the
	// bound port before any client needs it.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// The readiness line goes to stdout so scripts (and the smoke test) can
	// scrape the bound address.
	fmt.Printf("acrossd: listening on %s (store %s)\n", ln.Addr(), cfg.StoreDir)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us
	fmt.Println("acrossd: shutting down, draining jobs")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "acrossd: http shutdown:", err)
	}
	if err := svc.Drain(shutdownCtx); err != nil {
		return fmt.Errorf("draining jobs: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("acrossd: drained, bye")
	return nil
}

package main

import (
	"fmt"
	"os"

	"across"
	"across/internal/report"
	"across/internal/ssdconf"
)

// fleetOpts carries the parsed fleet-mode flags from main to runFleet.
type fleetOpts struct {
	devices int
	layout  string
	chunkKB int

	scheme     across.Scheme
	cfg        across.Config
	scenario   scenarioOpts
	traceFile  string
	profile    string
	scale      float64
	pageBytes  int
	noAge      bool
	qd         int
	workers    int
	snapIn     string
	snapOut    string
	check      bool
	cachePages int
	traceOut   string
	metricsOut string
	timeline   string
}

// runFleet is the -fleet mode of acrosssim: build (or fork from a snapshot)
// an N-device volume, replay the trace through the layout, and print the
// fleet summary plus the per-device balance table.
func runFleet(o fleetOpts) {
	// Single-device observability artifacts have no fleet story yet: each
	// device would need its own tracer/sampler file. Reject rather than
	// silently produce a device-0-only artifact.
	switch {
	case o.cachePages > 0:
		fatal(fmt.Errorf("-cachepages is not supported with -fleet"))
	case o.traceOut != "":
		fatal(fmt.Errorf("-trace-out is not supported with -fleet"))
	case o.metricsOut != "":
		fatal(fmt.Errorf("-metrics-out is not supported with -fleet"))
	case o.timeline != "":
		fatal(fmt.Errorf("-timeline is not supported with -fleet"))
	}
	layout, err := across.ParseFleetLayout(o.layout)
	if err != nil {
		fatal(err)
	}
	spec := across.FleetSpec{
		Devices:      o.devices,
		Layout:       layout,
		ChunkSectors: int64(o.chunkKB) * 1024 / ssdconf.SectorBytes,
	}

	var v *across.Fleet
	if o.snapIn != "" {
		// The snapshot fixes each device: scheme kind and geometry come from
		// the blob, every device forks from the same warm state.
		blob, err := os.ReadFile(o.snapIn)
		if err != nil {
			fatal(err)
		}
		v, err = across.RestoreFleet(blob, spec)
		if err != nil {
			fatal(err)
		}
	} else {
		v, err = across.NewFleet(o.scheme, o.cfg, spec)
		if err != nil {
			fatal(err)
		}
		if !o.noAge {
			if err := v.Age(across.DefaultAging()); err != nil {
				fatal(err)
			}
		}
	}
	cfg := *v.Conf

	var reqs []across.Request
	if o.scenario.active() {
		reqs = loadScenarioStream(o.scenario, v.LogicalSectors())
	} else {
		reqs = loadTrace(o.traceFile, o.profile, o.scale, v.LogicalSectors())
	}
	st := across.TraceStats(reqs, o.pageBytes)
	fmt.Printf("device : %s\n", cfg.String())
	fmt.Printf("fleet  : %d devices, %s, chunk %d KB, %.1f GiB logical\n",
		v.Devices(), v.Layout(), v.ChunkSectors()*ssdconf.SectorBytes/1024,
		float64(v.LogicalSectors())*ssdconf.SectorBytes/(1<<30))
	fmt.Printf("trace  : %d requests, write ratio %.1f%%, avg write %.1f KB, across-page %.1f%%\n",
		st.Requests, 100*st.WriteRatio(), st.AvgWriteKB(), 100*st.AcrossRatio())

	if o.snapOut != "" {
		blob, err := v.WarmSnapshot()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(o.snapOut, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot: %d bytes (device 0; RestoreFleet forks all devices from it) -> %s\n", len(blob), o.snapOut)
	}

	res, err := v.ReplayQD(reqs, o.qd, across.FleetOptions{Workers: o.workers})
	if err != nil {
		fatal(err)
	}
	if o.check {
		if err := v.Audit(); err != nil {
			fatal(err)
		}
	}

	c := res.Counters()
	fmt.Printf("scheme : %s\n", res.Scheme)
	fmt.Printf("latency: read %.3f ms (p50 %.3f, p99 %.3f), write %.3f ms (p50 %.3f, p99 %.3f)\n",
		res.AvgReadLatency(), res.ReadLat.P50(), res.ReadLat.P99(),
		res.AvgWriteLatency(), res.WriteLat.P50(), res.WriteLat.P99())
	fmt.Printf("volume : %.0f req/s over %.1f s makespan, fan-out %.2f sub-requests/request\n",
		res.Throughput(), res.MeasuredSpanMs/1000, res.Fanout())
	fmt.Printf("classes: across-page %.1f%% of logical requests -> %.1f%% of sub-requests (unaligned %.1f%% -> %.1f%%)\n",
		100*res.LogicalClasses.Ratio(across.ClassAcross), 100*res.SubClasses.Ratio(across.ClassAcross),
		100*res.LogicalClasses.Ratio(across.ClassUnaligned), 100*res.SubClasses.Ratio(across.ClassUnaligned))
	fmt.Printf("writes : %d flash programs (data %d, gc %d, map %d)\n",
		c.FlashWrites(), c.DataWrites, c.GCWrites, c.MapWrites)
	fmt.Printf("erases : %d across the fleet\n", c.Erases)
	if o.check {
		fmt.Printf("verify : clean — all %d devices audited\n", v.Devices())
	}
	fmt.Println()
	report.FleetDeviceTable("per-device balance", fleetDeviceRows(res, cfg.Chips()), res.Fanout(), os.Stdout)
}

// fleetDeviceRows adapts a fleet Result to the report renderer's rows.
func fleetDeviceRows(res *across.FleetResult, chips int) []report.FleetDeviceRow {
	rows := make([]report.FleetDeviceRow, len(res.PerDevice))
	for i, d := range res.PerDevice {
		rows[i] = report.FleetDeviceRow{
			Device:      d.Device,
			SubRequests: d.SubRequests,
			Sectors:     d.Sectors,
			BusyMs:      d.BusyMs,
			Util:        res.DeviceUtilisation(d.Device, chips),
			Erases:      d.Counters.Erases,
			GCRuns:      d.Counters.GCInvocations,
		}
	}
	return rows
}

// loadTrace reads a CSV trace file or synthesises a profile trace sized to
// logicalSectors (the fleet volume's capacity in fleet mode).
func loadTrace(traceFile, profile string, scale float64, logicalSectors int64) []across.Request {
	switch {
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		reqs, err := across.ReadTraceAuto(f)
		if err != nil {
			fatal(err)
		}
		return reqs
	case profile != "":
		p, err := across.Profile(profile)
		if err != nil {
			fatal(err)
		}
		reqs, err := across.GenerateTrace(p.Scale(scale), logicalSectors)
		if err != nil {
			fatal(err)
		}
		return reqs
	}
	fatal(fmt.Errorf("need -trace FILE or -profile lunN"))
	return nil
}

// Command acrosssim replays a block trace against one FTL scheme and prints
// the measured metrics.
//
// The trace comes either from a SYSTOR '17-format CSV file (-trace) or from
// a built-in Table 2 workload profile (-profile lun1..lun6). Example:
//
//	acrosssim -profile lun1 -scheme Across-FTL -scale 0.05
//	acrosssim -trace mytrace.csv -scheme FTL -page 4096
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"across"
	"across/internal/fleet"
	"across/internal/profiling"
	"across/internal/report"
)

func main() {
	var (
		schemeName = flag.String("scheme", "Across-FTL", "FTL | MRSM | Across-FTL")
		traceFile  = flag.String("trace", "", "SYSTOR-format CSV trace file")
		profile    = flag.String("profile", "", "built-in workload profile (lun1..lun6)")
		scale      = flag.Float64("scale", 0.05, "fraction of the generated request count (with -profile or a builtin -scenario; -scenario trace replays the full trace unless -scale is given explicitly)")
		pageBytes  = flag.Int("page", 8192, "flash page size in bytes (4096, 8192, 16384)")
		full       = flag.Bool("full", false, "full 128 GiB Table 1 geometry")
		noAge      = flag.Bool("no-age", false, "skip device aging")
		qd         = flag.Int("qd", 0, "bound outstanding requests (0 = open loop)")
		workers    = flag.Int("workers", 1, "replay worker goroutines (>1 = parallel engine; results and every -trace-out/-metrics-out/-timeline artifact are bit-identical to -workers=1)")
		cachePages = flag.Int("cachepages", 0, "host DRAM data cache in pages (0 = none)")

		scenarioName = flag.String("scenario", "", "scenario workload: builtin name (stationary | burst | daynight | mixed) or \"trace\" to wrap -trace as a cohort")
		scenarioIn   = flag.String("scenario-in", "", "replay a stored trace-v2 scenario stream instead of generating one")
		scenarioOut  = flag.String("scenario-out", "", "write the generated scenario stream as a trace-v2 container to FILE")

		fleetN  = flag.Int("fleet", 0, "compose N devices into one logical volume (0 = single device)")
		layout  = flag.String("layout", "raid0", "fleet layout: concat | raid0 | raid10 (with -fleet)")
		chunkKB = flag.Int("chunk-kb", fleet.DefaultChunkKB, "fleet stripe chunk in KB (with -fleet; ignored by concat)")

		snapOut = flag.String("snapshot-out", "", "write a warm-state snapshot of the (aged) device to FILE before replaying")
		snapIn  = flag.String("snapshot-in", "", "restore the device from a warm-state snapshot instead of building and aging one (-scheme/-page/-full/-no-age/-cachepages come from the snapshot and are ignored)")

		checkFlag  = flag.Bool("check", false, "verify the replay: shadow model on every request, device audit at end of run")
		auditEvery = flag.Int64("audit-every", 0, "with -check: also run the device-wide audit every N requests (implies -check)")

		traceOut   = flag.String("trace-out", "", "write an execution trace (.jsonl = event lines; anything else = Chrome trace_event JSON for Perfetto)")
		metricsOut = flag.String("metrics-out", "", "write sampled time-series metrics as JSONL")
		metricsInt = flag.Float64("metrics-interval-ms", 50, "sampling interval in simulated ms (with -metrics-out or -timeline)")
		timeline   = flag.String("timeline", "", "print sampled timeline tables after the run (text | markdown | csv)")
	)
	prof := profiling.Register()
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "acrosssim:", err)
		}
	}()

	var scheme across.Scheme
	switch *schemeName {
	case "FTL":
		scheme = across.BaselineFTL
	case "MRSM":
		scheme = across.MRSM
	case "Across-FTL":
		scheme = across.AcrossFTL
	default:
		fatal(fmt.Errorf("unknown scheme %q (want FTL, MRSM or Across-FTL)", *schemeName))
	}

	cfg := across.ExperimentConfig()
	if *full {
		cfg = across.Table1Config()
	}
	cfg = cfg.WithPageBytes(*pageBytes)

	scaleSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "scale" {
			scaleSet = true
		}
	})
	scOpts := scenarioOpts{
		name: *scenarioName, inFile: *scenarioIn, outFile: *scenarioOut,
		trace: *traceFile, scale: *scale, scaleSet: scaleSet,
	}

	if *fleetN > 0 {
		runFleet(fleetOpts{
			devices: *fleetN, layout: *layout, chunkKB: *chunkKB,
			scheme: scheme, cfg: cfg, scenario: scOpts,
			traceFile: *traceFile, profile: *profile, scale: *scale, pageBytes: *pageBytes,
			noAge: *noAge, qd: *qd, workers: *workers,
			snapIn: *snapIn, snapOut: *snapOut,
			check: *checkFlag || *auditEvery > 0, cachePages: *cachePages,
			traceOut: *traceOut, metricsOut: *metricsOut, timeline: *timeline,
		})
		return
	}

	// A snapshot fixes the device: scheme kind, geometry and host cache all
	// come from the blob, so restore before trace generation and let the
	// embedded config drive workload sizing.
	var r *across.Runner
	var err error
	if *snapIn != "" {
		blob, rerr := os.ReadFile(*snapIn)
		if rerr != nil {
			fatal(rerr)
		}
		r, err = across.RestoreRunner(blob)
		if err != nil {
			fatal(err)
		}
		cfg = *r.Conf
	}

	var reqs []across.Request
	switch {
	case scOpts.active():
		reqs = loadScenarioStream(scOpts, cfg.LogicalSectors())
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		// Auto-detect SYSTOR '17 vs MSR Cambridge format.
		reqs, err = across.ReadTraceAuto(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *profile != "":
		p, err := across.Profile(*profile)
		if err != nil {
			fatal(err)
		}
		reqs, err = across.GenerateTrace(p.Scale(*scale), cfg.LogicalSectors())
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -trace FILE or -profile lunN"))
	}

	st := across.TraceStats(reqs, *pageBytes)
	fmt.Printf("device : %s\n", cfg.String())
	fmt.Printf("trace  : %d requests, write ratio %.1f%%, avg write %.1f KB, across-page %.1f%%\n",
		st.Requests, 100*st.WriteRatio(), st.AvgWriteKB(), 100*st.AcrossRatio())

	if r == nil {
		if *cachePages > 0 {
			r, err = across.NewRunnerWithHostCache(scheme, cfg, *cachePages)
		} else {
			r, err = across.NewRunner(scheme, cfg)
		}
		if err != nil {
			fatal(err)
		}
		if !*noAge {
			if err := r.Age(across.DefaultAging()); err != nil {
				fatal(err)
			}
		}
	}
	if *snapOut != "" {
		blob, err := r.Snapshot()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*snapOut, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot: %d bytes -> %s\n", len(blob), *snapOut)
	}

	var chk *across.Checker
	if *checkFlag || *auditEvery > 0 {
		chk, err = r.EnableChecks(across.CheckOptions{Shadow: true, AuditEvery: *auditEvery})
		if err != nil {
			fatal(err)
		}
	}

	var closers []io.Closer
	if *traceOut != "" {
		trc, c, err := across.OpenTraceFile(*traceOut, cfg.Chips())
		if err != nil {
			fatal(err)
		}
		r.SetTracer(trc)
		closers = append(closers, c)
	}
	var smp *across.Sampler
	if *metricsOut != "" || *timeline != "" {
		smp, err = across.NewSampler(*metricsInt)
		if err != nil {
			fatal(err)
		}
		if *metricsOut != "" {
			sink, c, err := across.OpenMetricsFile(*metricsOut)
			if err != nil {
				fatal(err)
			}
			smp.SetSink(sink)
			closers = append(closers, c)
		}
		r.SetSampler(smp)
	}

	var res *across.Result
	if *workers > 1 {
		res, err = r.ReplayParallel(reqs, *qd, across.ParallelOptions{Workers: *workers})
	} else {
		res, err = r.ReplayQD(reqs, *qd)
	}
	if err != nil {
		fatal(err)
	}
	// Close every artifact writer even if one fails: a failed close means a
	// truncated -trace-out/-metrics-out file, so report each and exit nonzero.
	closeFailed := false
	for _, c := range closers {
		if err := c.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "acrosssim:", err)
			closeFailed = true
		}
	}
	if closeFailed {
		os.Exit(1)
	}
	if smp != nil && smp.Err() != nil {
		fatal(smp.Err())
	}

	c := res.Counters
	fmt.Printf("scheme : %s\n", res.Scheme)
	fmt.Printf("latency: read %.3f ms (p50 %.3f, p99 %.3f), write %.3f ms (p50 %.3f, p99 %.3f), total I/O time %.3f s\n",
		res.AvgReadLatency(), res.ReadLat.P50(), res.ReadLat.P99(),
		res.AvgWriteLatency(), res.WriteLat.P50(), res.WriteLat.P99(),
		res.TotalIOTime()/1000)
	fmt.Printf("writes : %d flash programs (data %d, gc %d, map %d)\n",
		c.FlashWrites(), c.DataWrites, c.GCWrites, c.MapWrites)
	fmt.Printf("reads  : %d flash reads (data %d, gc %d, map %d)\n",
		c.FlashReads(), c.DataReads, c.GCReads, c.MapReads)
	fmt.Printf("erases : %d (endurance indicator); wear mean %.2f sd %.2f min %d max %d per block\n",
		c.Erases, res.Wear.Mean, res.Wear.StdDev, res.Wear.Min, res.Wear.Max)
	fmt.Printf("dram   : %d mapping accesses, table %.2f MB\n",
		c.DRAMAccesses, float64(res.TableBytes)/(1<<20))
	if chk != nil {
		fmt.Printf("verify : clean — %d device audits, %d sector checks\n",
			chk.Audits(), chk.SectorChecks())
	}
	if res.Across != nil {
		a := res.Across
		d, p, u := a.ComponentShares()
		fmt.Printf("across : %d areas written (direct %.1f%%, profitable-merge %.1f%%, unprofitable %.1f%%), rollback ratio %.1f%%\n",
			a.AreasTouched(), 100*d, 100*p, 100*u, 100*a.RollbackRatio())
		fmt.Printf("         %d direct reads, %d merged reads\n", a.DirectReads, a.MergedReads)
	}
	if smp != nil && *timeline != "" {
		fmt.Println()
		report.TimelineLatency(smp.Samples()).RenderTo(os.Stdout, *timeline)
		report.TimelineUtilisation(smp.Samples()).RenderTo(os.Stdout, *timeline)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "acrosssim:", err)
	os.Exit(1)
}

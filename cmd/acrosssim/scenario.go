package main

import (
	"fmt"
	"os"

	"across"
)

// scenarioOpts carries the parsed scenario flags from main to the loader.
type scenarioOpts struct {
	name     string  // builtin scenario name, or "trace" to wrap -trace
	inFile   string  // trace-v2 container to replay instead of generating
	outFile  string  // write the generated stream as a trace-v2 container
	trace    string  // real-trace CSV for name == "trace"
	scale    float64 // request-count scale applied before generation
	scaleSet bool    // -scale was given explicitly (not the 0.05 default)
}

func (o scenarioOpts) active() bool { return o.name != "" || o.inFile != "" }

// loadScenarioStream produces the request stream for scenario mode: either
// decoding a stored trace-v2 container (-scenario-in) or building the named
// scenario — a builtin, or a real trace wrapped as a cohort — and generating
// it for the device. The generated stream is optionally sealed back to a
// trace-v2 file (-scenario-out), and the scenario summary is printed.
func loadScenarioStream(o scenarioOpts, logicalSectors int64) []across.Request {
	var stream *across.ScenarioStream
	if o.inFile != "" {
		blob, err := os.ReadFile(o.inFile)
		if err != nil {
			fatal(err)
		}
		stream, err = across.DecodeScenarioStream(blob)
		if err != nil {
			fatal(err)
		}
		if stream.LogicalSectors != logicalSectors {
			fatal(fmt.Errorf("scenario stream %s was generated for %d logical sectors, device has %d",
				o.inFile, stream.LogicalSectors, logicalSectors))
		}
	} else {
		var sc across.Scenario
		if o.name == "trace" {
			if o.trace == "" {
				fatal(fmt.Errorf("-scenario trace needs -trace FILE"))
			}
			f, err := os.Open(o.trace)
			if err != nil {
				fatal(err)
			}
			reqs, err := across.ReadTraceAuto(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			sc = across.ScenarioFromTrace("trace", reqs)
			// A wrapped real trace replays in full by default, matching plain
			// -trace: the 0.05 -scale default is a synthetic-workload
			// quick-run knob, and silently truncating a recorded workload
			// would change the experiment. An explicit -scale still
			// truncates — loudly.
			if o.scaleSet {
				sc = sc.Scale(o.scale)
				if kept := len(sc.Cohorts[0].Trace); kept < len(reqs) {
					fmt.Printf("scale  : -scale %g keeps the trace's first %d of %d requests\n",
						o.scale, kept, len(reqs))
				}
			}
		} else {
			var err error
			sc, err = across.BuiltinScenario(o.name)
			if err != nil {
				fatal(err)
			}
			sc = sc.Scale(o.scale)
		}
		var err error
		stream, err = sc.Generate(logicalSectors)
		if err != nil {
			fatal(err)
		}
	}
	if o.outFile != "" {
		blob, err := across.EncodeScenarioStream(stream)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(o.outFile, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("tracev2 : %d bytes -> %s\n", len(blob), o.outFile)
	}
	fmt.Printf("scenario: %s, %d cohorts\n", stream.Scenario, len(stream.Cohorts))
	for _, c := range stream.Cohorts {
		fmt.Printf("  cohort: %-12s %8d requests, partition [%d, +%d) sectors\n",
			c.Name, c.Requests, c.StartSector, c.Sectors)
	}
	return stream.Requests
}

// Command tracegen emits synthetic enterprise-VDI block traces in the
// SYSTOR '17 CSV format, either one Table 2 profile or the whole Fig 2
// collection.
//
//	tracegen -profile lun1 -scale 0.1 > lun1.csv
//	tracegen -collection 61 -dir traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"across"
)

func main() {
	var (
		profile    = flag.String("profile", "", "built-in profile to emit (lun1..lun6)")
		collection = flag.Int("collection", 0, "emit N collection traces instead (Fig 2 style)")
		dir        = flag.String("dir", ".", "output directory for -collection")
		scale      = flag.Float64("scale", 1.0, "fraction of the profile's request count")
		full       = flag.Bool("full", false, "size offsets for the full 128 GiB device")
	)
	flag.Parse()

	cfg := across.ExperimentConfig()
	if *full {
		cfg = across.Table1Config()
	}

	switch {
	case *profile != "":
		p, err := across.Profile(*profile)
		if err != nil {
			fatal(err)
		}
		reqs, err := across.GenerateTrace(p.Scale(*scale), cfg.LogicalSectors())
		if err != nil {
			fatal(err)
		}
		if err := across.WriteTrace(os.Stdout, 0, reqs); err != nil {
			fatal(err)
		}
	case *collection > 0:
		for i, p := range across.Collection(*collection) {
			reqs, err := across.GenerateTrace(p.Scale(*scale), cfg.LogicalSectors())
			if err != nil {
				fatal(err)
			}
			name := filepath.Join(*dir, fmt.Sprintf("%s.csv", p.Name))
			f, err := os.Create(name)
			if err != nil {
				fatal(err)
			}
			if err := across.WriteTrace(f, i, reqs); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			st := across.TraceStats(reqs, 8192)
			fmt.Fprintf(os.Stderr, "%s: %d requests, across ratio %.3f\n",
				name, st.Requests, st.AcrossRatio())
		}
	default:
		fatal(fmt.Errorf("need -profile lunN or -collection N"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

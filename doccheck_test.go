package across

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// docCheckedDirs are the packages whose exported API must carry doc
// comments: the public facade and the packages its fleet, replay and
// scenario surfaces are built on. CI runs this test, so an undocumented
// export is a build break, not a review nit.
var docCheckedDirs = []string{".", "internal/sim", "internal/fleet", "internal/scenario"}

// TestExportedAPIDocumented fails for every exported top-level declaration
// (type, func, method, var, const) in docCheckedDirs that has no doc
// comment.
func TestExportedAPIDocumented(t *testing.T) {
	for _, dir := range docCheckedDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				checkFileDocs(t, fset, f)
			}
		}
	}
}

func checkFileDocs(t *testing.T, fset *token.FileSet, f *ast.File) {
	t.Helper()
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				t.Errorf("%s: exported %s %s has no doc comment",
					fset.Position(d.Pos()), declKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						t.Errorf("%s: exported type %s has no doc comment",
							fset.Position(s.Pos()), s.Name.Name)
					}
				case *ast.ValueSpec:
					// A group doc comment covers every member (the idiom
					// for enum-style const blocks); otherwise each
					// exported name needs its own.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							t.Errorf("%s: exported %s %s has no doc comment",
								fset.Position(s.Pos()), d.Tok, name.Name)
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not public API); plain functions pass.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr:
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

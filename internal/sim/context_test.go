package sim

import (
	"context"
	"errors"
	"testing"

	"across/internal/obs"
)

// cancelAtTracer cancels a context when the replay issues its trigger-th
// request, tying the cancellation to simulation progress instead of wall
// time.
type cancelAtTracer struct {
	obs.Nop
	fired   int
	trigger int
	cancel  context.CancelFunc
}

func (c *cancelAtTracer) RequestStart(id int64, write bool, class uint8, offsetSectors, sectors int64, pages int, at float64) {
	c.fired++
	if c.fired == c.trigger {
		c.cancel()
	}
}

// TestReplayCtxCancelledAborts: a pre-cancelled context must stop the
// replay at (or near) the first request, reporting the context cause.
func TestReplayCtxCancelledAborts(t *testing.T) {
	r, err := NewRunner(KindAcross, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	reqs := smallTrace(t, 0.01)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := r.ReplayCtx(ctx, reqs)
	if err == nil {
		t.Fatal("cancelled replay ran to completion")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled replay returned a result")
	}
}

// TestReplayCtxCancelMidway cancels after a fixed number of requests via a
// context hooked to the replay's own progress, and requires the abort to
// land within one cancellation-check interval of the trigger.
func TestReplayCtxCancelMidway(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	if len(reqs) < 4*(cancelCheckMask+1) {
		t.Fatalf("trace too short (%d) for a midway cancel", len(reqs))
	}
	r, err := NewRunner(KindFTL, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancelAtTracer{trigger: len(reqs) / 2, cancel: cancel}
	r.SetTracer(tr)
	_, err = r.ReplayCtx(ctx, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("midway cancel: err = %v", err)
	}
	// The replay checks the context every cancelCheckMask+1 requests, so it
	// must have stopped within one interval of the trigger.
	if tr.fired > tr.trigger+cancelCheckMask+1 {
		t.Fatalf("replay ran %d requests past the cancel (limit %d)", tr.fired-tr.trigger, cancelCheckMask+1)
	}
}

// TestAgeCtxCancelled: aging must honour cancellation too — it is the
// longest single phase of a daemon replay job.
func TestAgeCtxCancelled(t *testing.T) {
	r, err := NewRunner(KindFTL, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.AgeCtx(ctx, DefaultAging()); !errors.Is(err, context.Canceled) {
		t.Fatalf("AgeCtx on cancelled ctx: err = %v", err)
	}
}

// TestReplayCtxBackgroundMatchesReplay: threading a Background context
// through the cancellation checks must not change simulation results.
func TestReplayCtxBackgroundMatchesReplay(t *testing.T) {
	reqs := smallTrace(t, 0.005)
	run := func(viaCtx bool) *Result {
		r, err := NewRunner(KindAcross, smallConf())
		if err != nil {
			t.Fatal(err)
		}
		var res *Result
		if viaCtx {
			res, err = r.ReplayCtx(context.Background(), reqs)
		} else {
			res, err = r.Replay(reqs)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, viaCtx := run(false), run(true)
	if plain.Counters != viaCtx.Counters || plain.TotalIOTime() != viaCtx.TotalIOTime() {
		t.Fatalf("ReplayCtx(Background) diverged from Replay:\n%+v\nvs\n%+v", plain.Counters, viaCtx.Counters)
	}
}

package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"across/internal/obs"
	"across/internal/trace"
)

// replayObserved runs one aged replay with the given tracer and sampler
// installed and returns the Result.
func replayObserved(t *testing.T, kind SchemeKind, reqs []trace.Request, trc obs.Tracer, smp *obs.Sampler) *Result {
	t.Helper()
	r, err := NewRunner(kind, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Age(DefaultAging()); err != nil {
		t.Fatal(err)
	}
	r.SetTracer(trc)
	r.SetSampler(smp)
	res, err := r.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTracedReplayResultIdentical is the observation-only proof: attaching
// a tracer (both sink formats) and a sampler must not perturb the
// simulation — the Result must be bit-identical to an untraced replay.
func TestTracedReplayResultIdentical(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			base := replayObserved(t, kind, reqs, nil, nil)

			var jsonl, chrome bytes.Buffer
			smp, err := obs.NewSampler(100)
			if err != nil {
				t.Fatal(err)
			}
			conf := smallConf()
			withJSONL := replayObserved(t, kind, reqs, obs.NewJSONLTracer(&jsonl), smp)
			withChrome := replayObserved(t, kind, reqs, obs.NewChromeTracer(&chrome, conf.Chips()), nil)
			withNop := replayObserved(t, kind, reqs, obs.NopTracer(), nil)

			for name, got := range map[string]*Result{
				"jsonl+sampler": withJSONL, "chrome": withChrome, "nop": withNop,
			} {
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s: traced replay diverged from untraced:\nuntraced: %+v\ntraced:   %+v", name, base, got)
				}
			}
			if jsonl.Len() == 0 || chrome.Len() == 0 {
				t.Error("tracers attached but produced no output")
			}
			if len(smp.Samples()) == 0 {
				t.Error("sampler attached but took no samples")
			}
		})
	}
}

// TestNopTracerAddsNoAllocations proves the Tracer interface contract: with
// the no-op tracer installed (not merely a nil tracer), a steady-state
// replay performs exactly as many allocations as with tracing absent —
// every event signature is scalar-only, so the interface calls box nothing.
func TestNopTracerAddsNoAllocations(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			measure := func(trc obs.Tracer) float64 {
				r, err := NewRunner(kind, smallConf())
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Age(DefaultAging()); err != nil {
					t.Fatal(err)
				}
				r.SetTracer(trc)
				if _, err := r.Replay(reqs); err != nil { // warm scratch buffers
					t.Fatal(err)
				}
				var replayErr error
				allocs := testing.AllocsPerRun(3, func() {
					if _, err := r.Replay(reqs); err != nil {
						replayErr = err
					}
				})
				if replayErr != nil {
					t.Fatal(replayErr)
				}
				return allocs
			}
			bare := measure(nil)
			nop := measure(obs.NopTracer())
			t.Logf("%s: %.0f allocs untraced, %.0f with no-op tracer", kind, bare, nop)
			if nop > bare {
				t.Errorf("no-op tracer added %.0f allocations per replay (untraced %.0f)", nop-bare, bare)
			}
		})
	}
}

// TestNopTracerOverhead bounds the wall-time cost of the instrumentation
// branches: a steady-state replay with the no-op tracer must stay within
// 2% of the untraced replay. The guarantee is structural — SetTracer
// normalises the no-op tracer to nil, so both replays execute the same
// code — and the timing run confirms it. Timing is retried because the
// true ratio is 1.0 and any excess is measurement noise.
func TestNopTracerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	reqs := smallTrace(t, 0.05)
	// One runner, alternating tracers: comparing two runner instances
	// instead would measure their memory-layout luck, not the tracer.
	r, err := NewRunner(KindAcross, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Age(DefaultAging()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay(reqs); err != nil { // warm scratch buffers
		t.Fatal(err)
	}
	// Structural zero-overhead check: the no-op tracer must take the very
	// path an absent tracer takes.
	r.SetTracer(obs.NopTracer())
	if r.tracer != nil {
		t.Fatal("SetTracer did not normalise the no-op tracer to nil — the hot path would pay an interface call per event")
	}

	timeOne := func(trc obs.Tracer) time.Duration {
		r.SetTracer(trc)
		start := time.Now()
		if _, err := r.Replay(reqs); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	measure := func() float64 {
		minBare, minNop := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
		for i := 0; i < 16; i++ {
			// Swap the order every iteration so drift in device state or
			// machine load cannot systematically favour one side.
			first, second := obs.Tracer(nil), obs.NopTracer()
			if i%2 == 1 {
				first, second = second, first
			}
			d1, d2 := timeOne(first), timeOne(second)
			if i%2 == 1 {
				d1, d2 = d2, d1
			}
			if d1 < minBare {
				minBare = d1
			}
			if d2 < minNop {
				minNop = d2
			}
		}
		ratio := float64(minNop) / float64(minBare)
		t.Logf("untraced %v, no-op tracer %v (ratio %.4f)", minBare, minNop, ratio)
		return ratio
	}
	for attempt := 0; attempt < 3; attempt++ {
		if measure() <= 1.02 {
			return
		}
	}
	t.Error("no-op tracer measured above the 2% wall-time budget in every attempt")
}

// TestSamplerFinalSampleMatchesResult locks the sampler's contract: the
// closing sample's cumulative fields reproduce the end-of-run Result
// aggregates exactly (they read the same counters at the same instant).
func TestSamplerFinalSampleMatchesResult(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			smp, err := obs.NewSampler(50)
			if err != nil {
				t.Fatal(err)
			}
			res := replayObserved(t, kind, reqs, nil, smp)
			samples := smp.Samples()
			if len(samples) < 2 {
				t.Fatalf("only %d samples from a %d-request replay", len(samples), len(reqs))
			}
			last := samples[len(samples)-1]
			if last.CumRequests != res.Requests {
				t.Errorf("final sample requests %d, result %d", last.CumRequests, res.Requests)
			}
			if last.CumReads != res.ReadCount || last.CumWrites != res.WriteCount {
				t.Errorf("final sample reads/writes %d/%d, result %d/%d",
					last.CumReads, last.CumWrites, res.ReadCount, res.WriteCount)
			}
			if last.CumReadLatSumMs != res.ReadLatencySum || last.CumWriteLatSumMs != res.WriteLatencySum {
				t.Errorf("final sample latency sums %v/%v, result %v/%v",
					last.CumReadLatSumMs, last.CumWriteLatSumMs, res.ReadLatencySum, res.WriteLatencySum)
			}
			if last.CumFlashReads != res.Counters.FlashReads() || last.CumFlashWrites != res.Counters.FlashWrites() {
				t.Errorf("final sample flash ops %d/%d, result %d/%d",
					last.CumFlashReads, last.CumFlashWrites, res.Counters.FlashReads(), res.Counters.FlashWrites())
			}
			if last.CumErases != res.Counters.Erases {
				t.Errorf("final sample erases %d, result %d", last.CumErases, res.Counters.Erases)
			}
			if last.CumGCInvocations != res.Counters.GCInvocations {
				t.Errorf("final sample GC invocations %d, result %d", last.CumGCInvocations, res.Counters.GCInvocations)
			}
			if got, want := last.ChipBusyMs, res.ChipBusyMs; !reflect.DeepEqual(got, want) {
				t.Errorf("final sample chip busy %v, result %v", got, want)
			}
			if last.QueueDepth != 0 {
				t.Errorf("queue depth %d at the idle horizon, want 0", last.QueueDepth)
			}
			var sum int64
			for _, s := range samples {
				sum += s.Requests
			}
			if sum != res.Requests {
				t.Errorf("window request counts sum to %d, result %d", sum, res.Requests)
			}
		})
	}
}

// TestTracedReplayJSONLParses decodes every line a traced replay writes.
func TestTracedReplayJSONLParses(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	var buf bytes.Buffer
	trc := obs.NewJSONLTracer(&buf)
	replayObserved(t, KindAcross, reqs, trc, nil)
	if err := trc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	kinds := map[string]int{}
	for dec.More() {
		var ev obs.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("undecodable event line: %v", err)
		}
		kinds[ev.Ev]++
	}
	for _, want := range []string{"req_start", "req_end", "flash", "gc_victim", "gc", "across", "cache"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in an aged Across-FTL replay (got %v)", want, kinds)
		}
	}
	if kinds["req_start"] != len(reqs) || kinds["req_end"] != len(reqs) {
		t.Errorf("request span count %d/%d, want %d each", kinds["req_start"], kinds["req_end"], len(reqs))
	}
}

// TestChipUtilisationBurstArrival is the regression test for the
// utilisation denominator: a burst trace (all arrivals in the first
// millisecond, service stretching far past it) used to report busy
// fractions far above 1.0 because the arrival span was the denominator.
func TestChipUtilisationBurstArrival(t *testing.T) {
	conf := smallConf()
	spp := conf.SectorsPerPage()
	var reqs []trace.Request
	for i := 0; i < 256; i++ {
		reqs = append(reqs, trace.Request{
			Time:   float64(i) * 0.001, // all within 0.26 ms
			Op:     trace.OpWrite,
			Offset: int64(i*spp) % conf.LogicalSectors(),
			Count:  spp,
		})
	}
	r, err := NewRunner(KindFTL, conf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredSpanMs <= res.TraceSpanMs {
		t.Fatalf("measured span %v not beyond the arrival span %v: burst service did not extend past arrivals",
			res.MeasuredSpanMs, res.TraceSpanMs)
	}
	for i, u := range res.ChipUtilisation() {
		if u > 1.0 {
			t.Errorf("chip %d utilisation %.3f exceeds 1.0 — denominator regressed to the arrival span", i, u)
		}
	}
	// The old denominator reproduces the bug, proving the trace exercises it.
	for _, b := range res.ChipBusyMs {
		if b/res.TraceSpanMs > 1.0 {
			return
		}
	}
	t.Error("trace no longer reproduces >1.0 utilisation under the old arrival-span denominator")
}

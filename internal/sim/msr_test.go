package sim

import (
	"os"
	"testing"

	"across/internal/trace"
)

// loadMSRFixture reads the checked-in MSR Cambridge-format sample — the
// real-trace path the ROADMAP noted was parsed but never replayed.
func loadMSRFixture(t *testing.T) []trace.Request {
	t.Helper()
	f, err := os.Open("../trace/testdata/msr_sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reqs, err := trace.ReadAllMSR(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 50 {
		t.Fatalf("fixture too small: %d requests", len(reqs))
	}
	return reqs
}

// TestMSRTraceReplaySmoke wires the MSR Cambridge path end to end: parse the
// fixture, replay it through the serial and the parallel engine on every
// scheme, and assert the engines agree and the metrics are coherent.
func TestMSRTraceReplaySmoke(t *testing.T) {
	reqs := loadMSRFixture(t)
	conf := smallConf()
	for i, req := range reqs {
		if err := req.Validate(conf.LogicalSectors()); err != nil {
			t.Fatalf("fixture request %d invalid for test device: %v", i, err)
		}
	}
	st := trace.Measure(reqs, conf.SectorsPerPage())
	if st.AcrossRatio() == 0 {
		t.Error("fixture exercises no across-page requests")
	}
	for _, kind := range append(Kinds(), KindDFTL) {
		serial := replaySerial(t, kind, reqs, 0, false)
		par := replayParallel(t, kind, reqs, 0, 4, false, ParallelOptions{EpochSpanMs: 2, EpochMaxRequests: 16})
		assertIdentical(t, serial, par, string(kind)+"/msr")
		if serial.Requests != int64(len(reqs)) {
			t.Errorf("%s: replayed %d of %d MSR requests", kind, serial.Requests, len(reqs))
		}
		if serial.WriteCount == 0 || serial.ReadCount == 0 {
			t.Errorf("%s: MSR fixture should mix directions: %d reads, %d writes",
				kind, serial.ReadCount, serial.WriteCount)
		}
		if serial.Counters.FlashWrites() == 0 {
			t.Errorf("%s: no flash writes from MSR replay", kind)
		}
	}
}

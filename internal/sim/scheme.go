// Package sim is the replay engine: it ages a simulated SSD the way §4.1
// prescribes (90% of capacity used, ~39.8% valid after warm-up), replays a
// block trace against one of the three FTL schemes, and collects the metrics
// every figure of the evaluation is built from — per-request response times
// split by direction and alignment class, flash read/write/erase counts
// split into Map and Data components, DRAM accesses, and mapping-table
// footprints.
package sim

import (
	"fmt"

	"across/internal/acrossftl"
	"across/internal/ftl"
	"across/internal/mrsm"
	"across/internal/ssdconf"
)

// SchemeKind selects one of the compared FTL designs.
type SchemeKind string

const (
	// KindFTL is the conventional page-level mapping baseline.
	KindFTL SchemeKind = "FTL"
	// KindMRSM is the sub-page multiregional comparator.
	KindMRSM SchemeKind = "MRSM"
	// KindAcross is the paper's Across-FTL.
	KindAcross SchemeKind = "Across-FTL"
	// KindDFTL is a demand-paged page-mapping baseline — an extension
	// scheme outside the paper's comparison (see ftl.DFTL).
	KindDFTL SchemeKind = "DFTL"
)

// Kinds returns the comparison order used in every figure.
func Kinds() []SchemeKind { return []SchemeKind{KindFTL, KindMRSM, KindAcross} }

// NewScheme constructs the scheme on a fresh device.
func NewScheme(kind SchemeKind, conf *ssdconf.Config) (ftl.Scheme, error) {
	switch kind {
	case KindFTL:
		return ftl.NewBaseline(conf)
	case KindMRSM:
		return mrsm.New(conf)
	case KindAcross:
		return acrossftl.New(conf)
	case KindDFTL:
		return ftl.NewDFTL(conf)
	default:
		return nil, fmt.Errorf("sim: unknown scheme kind %q", kind)
	}
}

// statsResetter is implemented by schemes with scheme-level statistics that
// must be cleared between warm-up and measurement.
type statsResetter interface{ ResetStats() }

// Warm-state snapshots (DESIGN §13): Runner.Snapshot serialises the
// complete mutable simulator state — scheme mapping structures, flash
// array, allocator/GC state, DRAM caches, host cache, chip and bus clocks,
// and the aging bookkeeping — into a self-describing versioned container;
// Restore reconstructs a replay-ready Runner from it. A sweep can therefore
// age a device once per (config, aging) pair and fork every variant replay
// from the checkpoint instead of re-aging.
package sim

import (
	"encoding/json"
	"fmt"

	"across/internal/check"
	"across/internal/hostcache"
	"across/internal/snapshot"
	"across/internal/ssdconf"
)

// Snapshot serialises the runner's full simulator state. The scheme (and,
// when wrapped, the host cache and its inner scheme) must implement
// snapshot.Snapshotter; every scheme built by NewScheme does. Observers
// (tracer, sampler, checker) are replay-scoped and not captured.
func (r *Runner) Snapshot() ([]byte, error) {
	snap, ok := r.Scheme.(snapshot.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("sim: scheme %s does not support snapshots", r.Scheme.Name())
	}
	confJSON, err := json.Marshal(r.Conf)
	if err != nil {
		return nil, fmt.Errorf("sim: snapshot config: %w", err)
	}
	enc := snapshot.NewEncoder()
	enc.Tag("sim")
	enc.Str(string(r.Kind))
	enc.Str(string(confJSON))
	cachePages := 0
	if hc, ok := r.Scheme.(*hostcache.Scheme); ok {
		cachePages = hc.CachePages()
	}
	enc.I64(int64(cachePages))
	enc.Bool(r.warmed)
	enc.I64(r.warmupWrites)
	if err := snap.SnapshotState(enc); err != nil {
		return nil, err
	}
	return enc.Finish()
}

// Restore reconstructs a replay-ready Runner from a snapshot produced by
// Snapshot: it validates the container, rebuilds the scheme stack from the
// embedded configuration (including a host-cache wrap when one was
// captured), restores every component's state, and then runs the device
// auditor over the result — a snapshot whose state violates the mapping/
// flash invariants (tampered, or from a buggy writer) is rejected rather
// than replayed. Schemes that cannot be audited skip that final check.
//
// Restore supports schemes as built by NewScheme; a snapshot taken from a
// scheme constructed with non-default structural options (e.g. a custom
// DFTL resident-page budget) fails the shape validation cleanly.
func Restore(blob []byte) (*Runner, error) {
	dec, err := snapshot.NewDecoder(blob)
	if err != nil {
		return nil, err
	}
	dec.Tag("sim")
	kind := SchemeKind(dec.Str())
	confJSON := dec.Str()
	cachePages := dec.I64()
	warmed := dec.Bool()
	warmupWrites := dec.I64()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	var conf ssdconf.Config
	if err := json.Unmarshal([]byte(confJSON), &conf); err != nil {
		return nil, fmt.Errorf("sim: snapshot config: %w", err)
	}
	if err := conf.Validate(); err != nil {
		return nil, fmt.Errorf("sim: snapshot config: %w", err)
	}
	if warmupWrites < 0 {
		return nil, fmt.Errorf("sim: snapshot has negative warm-up writes %d", warmupWrites)
	}
	if cachePages < 0 || cachePages > conf.LogicalPages() {
		return nil, fmt.Errorf("sim: snapshot host cache of %d pages outside [0,%d]", cachePages, conf.LogicalPages())
	}
	scheme, err := NewScheme(kind, &conf)
	if err != nil {
		return nil, err
	}
	if cachePages > 0 {
		scheme = hostcache.Wrap(scheme, int(cachePages))
	}
	snap, ok := scheme.(snapshot.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("sim: scheme %s does not support snapshots", scheme.Name())
	}
	if err := snap.RestoreState(dec); err != nil {
		return nil, err
	}
	if err := dec.Finish(); err != nil {
		return nil, err
	}
	r := &Runner{
		Conf:         &conf,
		Kind:         kind,
		Scheme:       scheme,
		warmed:       warmed,
		warmupWrites: warmupWrites,
	}
	if chk, err := check.New(scheme, check.Options{}); err == nil {
		if err := chk.Audit(); err != nil {
			return nil, fmt.Errorf("sim: restored state failed audit: %w", err)
		}
	}
	return r, nil
}

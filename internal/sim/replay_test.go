package sim

import (
	"testing"

	"across/internal/trace"
	"across/internal/workload"
)

func TestAgeWithTraceWarmsDevice(t *testing.T) {
	c := smallConf()
	r, err := NewRunner(KindAcross, c)
	if err != nil {
		t.Fatal(err)
	}
	p := workload.LunProfiles()[5].Scale(0.01)
	aging, err := workload.Generate(p, c.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AgeWithTrace(aging); err != nil {
		t.Fatal(err)
	}
	used, valid := r.AgedState()
	if used <= 0 || valid <= 0 {
		t.Fatalf("trace aging left device fresh: used=%.3f valid=%.3f", used, valid)
	}
	if r.warmupWrites == 0 {
		t.Fatal("no warm-up writes counted")
	}
	// Trace aging marks the device warmed: Age must now refuse.
	if err := r.Age(DefaultAging()); err == nil {
		t.Fatal("Age accepted after AgeWithTrace")
	}
	// Replay still works and resets measurement.
	res, err := r.Replay(smallTrace(t, 0.002))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.FlashWrites() == 0 {
		t.Fatal("replay after trace aging produced nothing")
	}
}

func TestAgeWithTraceRejectsBadRequests(t *testing.T) {
	r, err := NewRunner(KindFTL, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AgeWithTrace([]trace.Request{{Op: trace.OpWrite, Offset: -1, Count: 4}}); err == nil {
		t.Fatal("bad aging request accepted")
	}
}

func TestReplayQDBoundsOutstanding(t *testing.T) {
	// A burst of simultaneous writes: open-loop issues all at t=0 and lets
	// the chips queue; QD=1 serialises them end to end, so the last
	// request's completion must be strictly later than open-loop's average
	// but the device work identical.
	c := smallConf()
	burst := make([]trace.Request, 32)
	for i := range burst {
		burst[i] = trace.Request{Op: trace.OpWrite, Offset: int64(i) * 16, Count: 16}
	}
	open, err := NewRunner(KindFTL, c)
	if err != nil {
		t.Fatal(err)
	}
	openRes, err := open.Replay(burst)
	if err != nil {
		t.Fatal(err)
	}
	qd1, err := NewRunner(KindFTL, c)
	if err != nil {
		t.Fatal(err)
	}
	qd1Res, err := qd1.ReplayQD(burst, 1)
	if err != nil {
		t.Fatal(err)
	}
	if qd1Res.Counters.FlashWrites() != openRes.Counters.FlashWrites() {
		t.Fatalf("QD changed device work: %d vs %d",
			qd1Res.Counters.FlashWrites(), openRes.Counters.FlashWrites())
	}
	// With QD=1 on an idle device, each write takes ~ProgramTime, strictly
	// serialised: total span ~32 * 2ms. Open-loop spreads across 4 chips:
	// ~16ms. QD=1 response times accumulate the host-queueing delay.
	if qd1Res.WriteLat.Max() <= openRes.WriteLat.Max() {
		t.Fatalf("QD=1 max latency %v <= open-loop %v (serialisation lost)",
			qd1Res.WriteLat.Max(), openRes.WriteLat.Max())
	}
	wantMin := 32 * c.ProgramTime * 0.9
	if qd1Res.WriteLat.Max() < wantMin {
		t.Fatalf("QD=1 last completion %v, want >= %v", qd1Res.WriteLat.Max(), wantMin)
	}
}

func TestReplayQDLargeEqualsOpenLoop(t *testing.T) {
	c := smallConf()
	reqs := smallTrace(t, 0.003)
	a, err := NewRunner(KindAcross, c)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(KindAcross, c)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.ReplayQD(reqs, 1<<20) // effectively unbounded
	if err != nil {
		t.Fatal(err)
	}
	if ra.TotalIOTime() != rb.TotalIOTime() {
		t.Fatalf("huge QD differs from open loop: %v vs %v", ra.TotalIOTime(), rb.TotalIOTime())
	}
	if ra.Counters != rb.Counters {
		t.Fatal("counters differ between open loop and huge QD")
	}
}

package sim

import (
	"testing"

	"across/internal/ssdconf"
)

// FuzzSnapshotDecode hardens Restore against arbitrary inputs: truncated,
// bit-flipped, version-skewed and wholly hostile blobs must come back as
// typed errors — never a panic, out-of-memory allocation, or a silently
// restored wrong state (the post-restore audit guards the last case for
// structurally valid bodies).
func FuzzSnapshotDecode(f *testing.F) {
	conf := ssdconf.Table1()
	conf.Channels = 2
	conf.ChipsPerChan = 1
	conf.DiesPerChip = 1
	conf.PlanesPerDie = 1
	conf.BlocksPerPlane = 16
	conf.PagesPerBlock = 8
	r, err := NewRunner(KindFTL, conf)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := r.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:headerLen(blob)])
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	skewed := append([]byte(nil), blob...)
	skewed[4] = 0xFE
	f.Add(skewed)
	f.Add([]byte("AXSN"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := Restore(data)
		if err != nil {
			return
		}
		if restored == nil {
			t.Fatal("Restore returned nil runner with nil error")
		}
		// An accepted blob must yield a usable runner: an empty replay
		// exercises the reset/collect paths without real traffic.
		if _, err := restored.ReplayQD(nil, 0); err != nil {
			t.Fatalf("restored runner cannot replay: %v", err)
		}
	})
}

// headerLen clips to the container header size without importing the
// snapshot package's internals (magic+version+flags+length+sha256).
func headerLen(blob []byte) int {
	const header = 4 + 4 + 4 + 8 + 32
	if len(blob) < header {
		return len(blob)
	}
	return header
}

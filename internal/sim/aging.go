package sim

import (
	"context"
	"fmt"
	"math/rand"

	"across/internal/trace"
)

// Aging parameterises the warm-up of §4.1: the paper replays a separate
// trace until 90% of SSD capacity has been used, at which point valid data
// occupies 39.8% of capacity.
type Aging struct {
	// ValidFrac is the fraction of *physical* capacity holding valid data
	// after warm-up (paper: 0.398).
	ValidFrac float64
	// UsedFrac is the fraction of physical pages written (valid or stale)
	// at which warm-up stops (paper: 0.90). The GC threshold keeps the
	// device pinned near this level afterwards.
	UsedFrac float64
	// Seed drives the overwrite pattern.
	Seed int64
	// MaxWrites bounds the warm-up (0 = derived from device size).
	MaxWrites int64
}

// DefaultAging returns the paper's §4.1 setting.
func DefaultAging() Aging {
	return Aging{ValidFrac: 0.398, UsedFrac: 0.90, Seed: 20230801}
}

// Age warms the device: first a sequential fill creates the valid data set,
// then random overwrites inside it age the blocks until the used fraction is
// reached. All warm-up I/O flows through the scheme's ordinary write path
// (so mappings, areas and map caches age too), and is excluded from
// measurement by the counter reset in Replay.
func (r *Runner) Age(a Aging) error {
	return r.AgeCtx(context.Background(), a)
}

// AgeCtx is Age with cancellation: warm-up is the longest phase of a
// scheduled job, so a cancelled or timed-out context aborts it between
// batches of writes and returns the context's error.
func (r *Runner) AgeCtx(ctx context.Context, a Aging) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if r.warmed {
		return fmt.Errorf("sim: device already aged")
	}
	if a.ValidFrac <= 0 || a.ValidFrac >= 1 || a.UsedFrac <= a.ValidFrac || a.UsedFrac >= 1 {
		return fmt.Errorf("sim: implausible aging %+v", a)
	}
	dev := r.Scheme.Device()
	spp := r.Conf.SectorsPerPage()
	physPages := r.Conf.PagesTotal()
	logicalPages := r.Conf.LogicalPages()

	validPages := int64(float64(physPages) * a.ValidFrac)
	if validPages > logicalPages {
		validPages = logicalPages
	}
	maxWrites := a.MaxWrites
	if maxWrites == 0 {
		maxWrites = physPages * 4
	}

	// Phase 1: sequential fill of the valid set.
	done := ctx.Done()
	var wrote int64
	for lpn := int64(0); lpn < validPages; lpn++ {
		if lpn&1023 == 0 {
			select {
			case <-done:
				return fmt.Errorf("sim: aging cancelled at fill lpn %d: %w", lpn, ctx.Err())
			default:
			}
		}
		req := trace.Request{Op: trace.OpWrite, Offset: lpn * int64(spp), Count: spp}
		if _, err := r.Scheme.Write(req, 0); err != nil {
			return fmt.Errorf("sim: aging fill at lpn %d: %w", lpn, err)
		}
		wrote++
	}

	// Phase 2: random overwrites until the used fraction is reached. Once
	// GC starts cycling, the used fraction saturates just under the GC
	// threshold, so the loop also stops when further writes stop raising it
	// (plateau detection). State is sampled periodically — CountStates is a
	// full device scan.
	rng := rand.New(rand.NewSource(a.Seed))
	target := int64(float64(physPages) * a.UsedFrac)
	const checkEvery = 1024
	prevUsed, flat := int64(-1), 0
	for wrote < maxWrites {
		select {
		case <-done:
			return fmt.Errorf("sim: aging cancelled after %d warm-up writes: %w", wrote, ctx.Err())
		default:
		}
		free, _, _ := dev.Array.CountStates()
		used := physPages - free
		if used >= target {
			break
		}
		if used <= prevUsed {
			if flat++; flat >= 2 {
				break // GC is recycling space as fast as we dirty it
			}
		} else {
			flat = 0
		}
		prevUsed = used
		for i := 0; i < checkEvery && wrote < maxWrites; i++ {
			lpn := rng.Int63n(validPages)
			req := trace.Request{Op: trace.OpWrite, Offset: lpn * int64(spp), Count: spp}
			if _, err := r.Scheme.Write(req, 0); err != nil {
				return fmt.Errorf("sim: aging overwrite at lpn %d: %w", lpn, err)
			}
			wrote++
		}
	}
	r.warmed = true
	r.warmupWrites = wrote
	return nil
}

// AgeWithTrace warms the device by replaying a workload untimed (timestamps
// ignored, metrics discarded), the way §4.1 ages with the
// additional-02-2016021710-LUN6 trace. It can be combined with Age: the
// paper first fills, then replays.
func (r *Runner) AgeWithTrace(reqs []trace.Request) error {
	for i, req := range reqs {
		var err error
		switch req.Op {
		case trace.OpWrite:
			_, err = r.Scheme.Write(req, 0)
		case trace.OpRead:
			_, err = r.Scheme.Read(req, 0)
		default:
			err = fmt.Errorf("sim: aging request %d has unknown op", i)
		}
		if err != nil {
			return fmt.Errorf("sim: aging trace request %d: %w", i, err)
		}
		if req.Op == trace.OpWrite {
			r.warmupWrites++
		}
	}
	r.warmed = true
	return nil
}

// AgedState reports the post-warm-up state for verification: used and valid
// fractions of physical capacity.
func (r *Runner) AgedState() (usedFrac, validFrac float64) {
	dev := r.Scheme.Device()
	free, valid, _ := dev.Array.CountStates()
	total := float64(r.Conf.PagesTotal())
	return (total - float64(free)) / total, float64(valid) / total
}

package sim

import "testing"

// TestSteadyStateReplayAllocations locks in the replay loop's allocation
// behaviour: after one warm-up replay has grown every scratch buffer, a
// further replay of the same trace must stay under a small per-request
// allocation budget AND under an absolute per-replay ceiling. All three
// schemes are allocation-free per request: only the per-replay Result and
// its metric buckets remain. MRSM reached parity once its packed-page
// census, node-dirty ledger and pack-buffer index moved off maps (map
// delete/insert churn allocated overflow buckets indefinitely) and the LRU
// started recycling evicted nodes.
func TestSteadyStateReplayAllocations(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	const maxPerReplay = 32
	for _, tc := range []struct {
		kind      SchemeKind
		maxPerReq float64
	}{
		{KindFTL, 0.05},
		{KindAcross, 0.05},
		{KindMRSM, 0.05},
	} {
		t.Run(string(tc.kind), func(t *testing.T) {
			r, err := NewRunner(tc.kind, smallConf())
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Age(DefaultAging()); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Replay(reqs); err != nil { // warm scratch buffers
				t.Fatal(err)
			}
			var replayErr error
			allocs := testing.AllocsPerRun(3, func() {
				if _, err := r.Replay(reqs); err != nil {
					replayErr = err
				}
			})
			if replayErr != nil {
				t.Fatal(replayErr)
			}
			perReq := allocs / float64(len(reqs))
			t.Logf("%s: %.0f allocs per replay of %d requests (%.4f/request)",
				tc.kind, allocs, len(reqs), perReq)
			if perReq > tc.maxPerReq {
				t.Errorf("steady-state replay allocates %.4f/request, budget %.4f — hot path regressed",
					perReq, tc.maxPerReq)
			}
			if allocs > maxPerReplay {
				t.Errorf("steady-state replay allocates %.0f objects, ceiling %d — hot path regressed",
					allocs, maxPerReplay)
			}
		})
	}
}

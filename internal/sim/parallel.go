package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"across/internal/clock"
	"across/internal/obs"
	"across/internal/trace"
)

// ParallelOptions configures the parallel replay engine (see ReplayParallel).
type ParallelOptions struct {
	// Workers is the number of lane/merge goroutines servicing per-chip
	// event lanes. <= 0 means GOMAXPROCS; 1 selects the serial engine.
	Workers int
	// EpochSpanMs bounds one admission epoch in simulated arrival time:
	// requests whose trace arrival falls within the span join the epoch.
	// <= 0 uses the default (5 ms).
	EpochSpanMs float64
	// EpochMaxRequests bounds an epoch's size regardless of arrival times
	// (bursts can pack thousands of arrivals into one simulated
	// millisecond). <= 0 uses the default (1024).
	EpochMaxRequests int
}

// Default epoch sizing, exported so callers (the service layer's job
// spans) can report the effective epoch bounds of a default-configured run.
const (
	DefaultEpochSpanMs      = 5.0
	DefaultEpochMaxRequests = 1024
)

func (o ParallelOptions) withDefaults() ParallelOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.EpochSpanMs <= 0 {
		o.EpochSpanMs = DefaultEpochSpanMs
	}
	if o.EpochMaxRequests <= 0 {
		o.EpochMaxRequests = DefaultEpochMaxRequests
	}
	return o
}

// obsRecord is the per-request observation the merge stage needs to drive
// the sampler exactly as the serial engine would: the issue time (Tick
// argument and in-flight retirement threshold), the completion time (queue
// depth bookkeeping), the host pages of a write (WAF denominator), and the
// index of the device snapshot taken at this request's sample boundary
// (-1: no boundary crossed, the Tick is a cheap no-op).
type obsRecord struct {
	issue, done float64
	pages       int64
	snapIdx     int32
}

// epochBatch is one admission epoch in flight through the pipeline: the
// per-request records the merge stage folds, and the per-chip operation
// lanes the lane workers fold. laneWG synchronises the merge: an epoch's
// records fold only after every lane has advanced through the epoch. When a
// sampler is installed the batch also carries the observation stream: one
// obsRecord per request, plus the device snapshots and per-chip lane
// cursors taken at predicted sample boundaries.
type epochBatch struct {
	seq    int64
	recs   []reqRecord
	lanes  [][]clock.Op
	laneWG sync.WaitGroup

	obsRecs []obsRecord
	snaps   []obsSnap
	marks   []int32 // len(snaps) × chips lane cursors, flattened
}

// samplerGrid replicates obs.Sampler's boundary arithmetic on the FTL-pass
// goroutine, so the pass knows — without touching the sampler, which the
// merge goroutine owns — whether the Tick the merge will later issue for
// this request emits a sample and therefore needs a device snapshot and a
// lane mark. The replication is exact: crosses mirrors Sampler.Tick's
// anchor-then-advance logic over the identical issue-time sequence.
type samplerGrid struct {
	interval float64
	started  bool
	next     float64
}

func (g *samplerGrid) crosses(now float64) bool {
	if !g.started {
		g.started = true
		g.next = now + g.interval
		return false
	}
	if now < g.next {
		return false
	}
	for g.next <= now {
		g.next += g.interval
	}
	return true
}

// ReplayParallel replays with the parallel deterministic engine: flash
// operations are partitioned into per-chip event lanes executed by a worker
// pool, requests are admitted in bounded simulated-time epochs, and an
// epoch-synchronised merge folds lane results into the Result. The output is
// bit-identical to ReplayQDCtx for any worker count and GOMAXPROCS — the
// determinism matrix in the tests asserts this — so callers choose workers
// purely on resource grounds. Workers <= 1 selects the serial engine.
func (r *Runner) ReplayParallel(reqs []trace.Request, qd int, opt ParallelOptions) (*Result, error) {
	return r.ReplayParallelCtx(context.Background(), reqs, qd, opt)
}

// ReplayParallelCtx is ReplayParallel with cancellation (polled on epoch
// admission, like the serial engine's request polling).
//
// How determinism is preserved (the full argument is DESIGN.md §11–12):
//
//   - The FTL pass — scheme logic, GC, mapping-cache state — runs on the
//     calling goroutine in request order, exactly as the serial engine. It
//     is the only stage that mutates scheme state, so tracing and the
//     checker observe the identical serial event order.
//   - Every flash operation the pass schedules is captured into its chip's
//     event lane instead of being accounted inline. Lanes are pinned to
//     workers (chip modulo workers), so each chip's operations are folded
//     by one goroutine in epoch order — the same per-chip operation order,
//     and therefore the same float additions, as the serial path.
//   - The merge stage folds per-request records strictly in request-index
//     order using the same foldRecord the serial loop calls, after the
//     epoch's lanes have completed (epoch synchronisation). Lane
//     completions within an epoch are totalled in (completion time,
//     request index, ChipID) order by construction: per-chip order is
//     schedule order, and the cross-chip horizon is a max, which is
//     order-insensitive.
//   - A sampler, when installed, is driven by the merge stage with the
//     serial engine's exact call sequence: per-request lane cursors
//     (clock.Capture.Mark) and pre-dispatch device snapshots let the merge
//     reproduce, at every sample boundary, the busy times and counters the
//     serial engine would have observed — so the sample series (and the
//     -timeline tables derived from it) is byte-identical for any worker
//     count. With a sampler installed the merge goroutine also owns the
//     lane folds (it needs the per-chip prefix sums at mid-epoch
//     boundaries), trading lane-fold parallelism for observability.
func (r *Runner) ReplayParallelCtx(ctx context.Context, reqs []trace.Request, qd int, opt ParallelOptions) (*Result, error) {
	opt = opt.withDefaults()
	if opt.Workers <= 1 || len(reqs) == 0 {
		return r.ReplayQDCtx(ctx, reqs, qd)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	dev := r.Scheme.Device()
	res, buckets := r.beginReplay()
	spp := r.Conf.SectorsPerPage()
	var inflight []float64
	if qd > 0 {
		inflight = make([]float64, 0, qd)
	}

	trc := r.tracer
	dev.SetTracer(trc)
	chk := r.checker
	if chk != nil {
		if err := chk.BeginReplay(); err != nil {
			return nil, fmt.Errorf("sim: arming checker: %w", err)
		}
	}
	smp := r.sampler

	chips := dev.Sched.Chips()
	workers := opt.Workers
	if workers > chips {
		workers = chips
	}
	capture := clock.NewCapture(chips)
	dev.Sched.SetCapture(capture)
	defer dev.Sched.SetCapture(nil)

	// With a sampler installed the merge stage folds the lanes itself: it
	// needs each chip's busy-time prefix sum at arbitrary mid-epoch sample
	// boundaries, which only exist while folding in mark order.
	mergeFolds := smp != nil
	laneWorkers := workers
	if mergeFolds {
		laneWorkers = 0
	}

	// Pipeline plumbing. Each epoch batch visits every lane worker (each
	// folds its own chips) and the merge goroutine; the batch returns to
	// freeList once merge is done with it. Depth bounds memory: at most
	// depth epochs are in flight.
	depth := workers + 2
	laneChs := make([]chan *epochBatch, laneWorkers)
	for w := range laneChs {
		laneChs[w] = make(chan *epochBatch, depth)
	}
	mergeCh := make(chan *epochBatch, depth)
	freeList := make(chan *epochBatch, depth)
	for i := 0; i < depth; i++ {
		freeList <- &epochBatch{}
	}

	var (
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}

	// Lane workers: worker w owns chips w, w+workers, ... Each folds its
	// chips' operations epoch by epoch; disjoint ownership means no locks,
	// and fixed ownership means per-chip fold order equals epoch order.
	laneStates := make([]clock.LaneState, chips)
	var laneWG sync.WaitGroup
	for w := 0; w < laneWorkers; w++ {
		laneWG.Add(1)
		go func(w int) {
			defer laneWG.Done()
			for batch := range laneChs[w] {
				if !failed.Load() {
					for c := w; c < chips; c += laneWorkers {
						if err := laneStates[c].Fold(batch.lanes[c]); err != nil {
							fail(err)
							break
						}
					}
				}
				batch.laneWG.Done()
			}
		}(w)
	}

	// Observation state owned by the merge goroutine until mergeDone closes,
	// then read by the closing sample on this goroutine.
	var (
		obsInflight      []float64
		hostPagesWritten int64
		obsLastDone      float64
	)

	// Merge: folds each epoch's request records in request-index order once
	// the epoch's lanes are synchronised, drives the sampler with the serial
	// call sequence, and audits that the completion horizon advances
	// monotonically across epochs.
	mergeDone := make(chan struct{})
	go func() {
		defer close(mergeDone)
		var (
			horizon  float64
			folded   []int32   // per-chip fold cursor within the current epoch
			busyBuf  []float64 // scratch for the fill callback's busy snapshot
			curSnap  obsSnap
			haveSnap bool
		)
		var fill func(*obs.Sample)
		if mergeFolds {
			folded = make([]int32, chips)
			busyBuf = make([]float64, chips)
			fill = func(sm *obs.Sample) {
				if !haveSnap {
					fail(fmt.Errorf("sim: sampler emitted at a boundary the FTL pass did not predict (grid divergence)"))
				}
				for c := 0; c < chips; c++ {
					busyBuf[c] = laneStates[c].BusyTime
				}
				r.applyObsSnap(sm, res, curSnap, len(obsInflight), hostPagesWritten, busyBuf)
			}
		}
		// foldTo advances every chip's lane fold to the given flat cursor
		// row (nil: to end of epoch) — the same per-chip op order, and so
		// the same float additions, as the serial accumulation.
		foldTo := func(batch *epochBatch, row []int32) bool {
			for c := 0; c < chips; c++ {
				to := int32(len(batch.lanes[c]))
				if row != nil {
					to = row[c]
				}
				if to <= folded[c] {
					continue
				}
				if err := laneStates[c].Fold(batch.lanes[c][folded[c]:to]); err != nil {
					fail(err)
					return false
				}
				folded[c] = to
			}
			return true
		}
		for batch := range mergeCh {
			batch.laneWG.Wait() // epoch synchronisation: lanes first
			if !failed.Load() {
				if mergeFolds {
					for i := range folded {
						folded[i] = 0
					}
					for k := range batch.recs {
						rec, ob := batch.recs[k], batch.obsRecs[k]
						if ob.snapIdx >= 0 {
							if !foldTo(batch, batch.marks[int(ob.snapIdx)*chips:(int(ob.snapIdx)+1)*chips]) {
								break
							}
							curSnap, haveSnap = batch.snaps[ob.snapIdx], true
						}
						// The serial observation order per request: retire
						// the in-flight view, Tick (fill sees state before
						// this request), fold, Note, then record the
						// completion.
						kept := obsInflight[:0]
						for _, c := range obsInflight {
							if c > ob.issue {
								kept = append(kept, c)
							}
						}
						obsInflight = kept
						smp.Tick(ob.issue, fill)
						res.foldRecord(buckets, rec)
						smp.Note(rec.op == trace.OpWrite, rec.lat)
						if rec.op == trace.OpWrite {
							hostPagesWritten += ob.pages
						}
						obsInflight = append(obsInflight, ob.done)
						if ob.done > obsLastDone {
							obsLastDone = ob.done
						}
					}
					if !failed.Load() {
						foldTo(batch, nil)
					}
				} else {
					for _, rec := range batch.recs {
						res.foldRecord(buckets, rec)
					}
				}
			}
			if !failed.Load() {
				epochEnd := horizon
				for c := 0; c < chips; c++ {
					if n := len(batch.lanes[c]); n > 0 {
						if end := batch.lanes[c][n-1].End; end > epochEnd {
							epochEnd = end
						}
					}
				}
				if epochEnd < horizon {
					fail(fmt.Errorf("sim: epoch %d completion horizon moved backwards (%g < %g)",
						batch.seq, epochEnd, horizon))
				}
				horizon = epochEnd
			}
			freeList <- batch
		}
	}()

	// The FTL pass: identical request servicing to the serial engine, with
	// the fold deferred into per-epoch records.
	var (
		batch      *epochBatch
		epochStart float64
		seq        int64
		runErr     error
	)
	take := func() {
		batch = <-freeList
		if batch.lanes != nil {
			capture.Recycle(batch.lanes)
			batch.lanes = nil
		}
		batch.recs = batch.recs[:0]
		batch.obsRecs = batch.obsRecs[:0]
		batch.snaps = batch.snaps[:0]
		batch.marks = batch.marks[:0]
		batch.seq = seq
		seq++
	}
	dispatch := func() {
		batch.lanes = capture.Cut()
		batch.laneWG.Add(laneWorkers)
		for w := 0; w < laneWorkers; w++ {
			laneChs[w] <- batch
		}
		mergeCh <- batch
		batch = nil
	}
	var grid samplerGrid
	snapAlloc, snapCMT := r.obsSources()
	if smp != nil {
		grid = samplerGrid{interval: smp.IntervalMs()}
	}
	take()
	epochStart = reqs[0].Time
	done := ctx.Done()

loop:
	for i, req := range reqs {
		if i&cancelCheckMask == 0 {
			select {
			case <-done:
				runErr = fmt.Errorf("sim: replay cancelled at request %d/%d: %w", i, len(reqs), ctx.Err())
				break loop
			default:
			}
			if failed.Load() {
				break loop
			}
		}
		// Epoch admission: close the epoch when the arrival span or the
		// request bound is exceeded.
		if len(batch.recs) >= opt.EpochMaxRequests || req.Time-epochStart > opt.EpochSpanMs {
			dispatch()
			take()
			epochStart = req.Time
		}
		issue := req.Time
		if qd > 0 {
			for {
				kept := inflight[:0]
				earliest := -1.0
				for _, c := range inflight {
					if c > issue {
						kept = append(kept, c)
						if earliest < 0 || c < earliest {
							earliest = c
						}
					}
				}
				inflight = kept
				if len(inflight) < qd {
					break
				}
				issue = earliest
			}
		}
		// Sample-boundary prediction, at the serial engine's Tick point
		// (before dispatch): when the merge's Tick for this request will
		// emit, freeze the device scalars and the per-chip lane cursors it
		// must observe — state as of requests 0..i-1 only.
		snapIdx := int32(-1)
		if smp != nil && grid.crosses(issue) {
			snapIdx = int32(len(batch.snaps))
			batch.snaps = append(batch.snaps, r.takeObsSnap(snapAlloc, snapCMT))
			batch.marks = capture.Mark(batch.marks)
		}
		class := req.Classify(spp)
		if trc != nil {
			trc.RequestStart(int64(i), req.Op == trace.OpWrite, uint8(class),
				req.Offset, int64(req.Count), int(req.LastLPN(spp)-req.FirstLPN(spp))+1, issue)
		}
		var (
			reqDone float64
			err     error
		)
		wBefore := dev.Count.DataWrites + dev.Count.GCWrites
		rBefore := dev.Count.DataReads + dev.Count.GCReads
		switch req.Op {
		case trace.OpWrite:
			reqDone, err = r.Scheme.Write(req, issue)
		case trace.OpRead:
			reqDone, err = r.Scheme.Read(req, issue)
		default:
			err = fmt.Errorf("sim: request %d has unknown op %d", i, req.Op)
		}
		if err != nil {
			runErr = fmt.Errorf("sim: replaying request %d (%v): %w", i, req, err)
			break loop
		}
		if chk != nil {
			var cerr error
			if req.Op == trace.OpWrite {
				cerr = chk.OnWrite(req)
			} else {
				cerr = chk.OnRead(req)
			}
			if cerr != nil {
				runErr = fmt.Errorf("sim: verification failed after request %d (%v): %w", i, req, cerr)
				break loop
			}
		}
		if qd > 0 {
			inflight = append(inflight, reqDone)
		}
		if trc != nil {
			trc.RequestEnd(int64(i), req.Op == trace.OpWrite, reqDone)
		}
		if smp != nil {
			var pages int64
			if req.Op == trace.OpWrite {
				pages = req.LastLPN(spp) - req.FirstLPN(spp) + 1
			}
			batch.obsRecs = append(batch.obsRecs, obsRecord{issue: issue, done: reqDone, pages: pages, snapIdx: snapIdx})
		}
		batch.recs = append(batch.recs, reqRecord{
			op:      req.Op,
			class:   class,
			count:   int32(req.Count),
			lat:     reqDone - req.Time,
			flushes: (dev.Count.DataWrites + dev.Count.GCWrites) - wBefore,
			reads:   (dev.Count.DataReads + dev.Count.GCReads) - rBefore,
		})
	}

	// Flush the final (possibly partial) epoch, then shut the pipeline down
	// in dependency order: lanes and merge drain everything dispatched.
	if batch != nil {
		if len(batch.recs) > 0 || runErr == nil {
			dispatch()
		} else {
			freeList <- batch
		}
	}
	for w := 0; w < laneWorkers; w++ {
		close(laneChs[w])
	}
	laneWG.Wait()
	close(mergeCh)
	<-mergeDone
	dev.Sched.SetCapture(nil)

	if runErr != nil {
		return nil, runErr
	}
	if failed.Load() {
		return nil, fmt.Errorf("sim: parallel replay failed: %w", firstErr)
	}

	// Determinism self-audit: every lane's folded state must agree with the
	// scheduler's authoritative timeline before the Result is assembled.
	var laneOps int64
	chipBusy := make([]float64, chips)
	for c := 0; c < chips; c++ {
		st := &laneStates[c]
		laneOps += st.Ops
		chipBusy[c] = st.BusyTime
		if st.Busy() && st.LastEnd != dev.Sched.BusyUntil(c) {
			return nil, fmt.Errorf("sim: lane %d diverged from scheduler: last end %g, busy-until %g",
				c, st.LastEnd, dev.Sched.BusyUntil(c))
		}
	}
	if laneOps != dev.Sched.Ops() {
		return nil, fmt.Errorf("sim: lanes folded %d operations, scheduler booked %d", laneOps, dev.Sched.Ops())
	}

	if chk != nil {
		if err := chk.Finish(); err != nil {
			return nil, fmt.Errorf("sim: end-of-replay verification failed: %w", err)
		}
	}
	r.finishReplay(res, reqs, chipBusy)

	if smp != nil {
		// The closing sample, exactly as the serial engine takes it: the
		// series ends at the latest of the device idle horizon, the last
		// completion and the last arrival, with the in-flight view drained
		// to that point. The FTL pass has finished, so live device state is
		// final state — identical to what the serial engine reads — and the
		// busy times come from the audited lane folds (the scheduler's own
		// accumulators were bypassed by the capture).
		end := dev.Sched.Horizon()
		if obsLastDone > end {
			end = obsLastDone
		}
		if n := len(reqs); n > 0 && reqs[n-1].Time > end {
			end = reqs[n-1].Time
		}
		kept := obsInflight[:0]
		for _, c := range obsInflight {
			if c > end {
				kept = append(kept, c)
			}
		}
		obsInflight = kept
		smp.Finish(end, func(sm *obs.Sample) {
			r.applyObsSnap(sm, res, r.takeObsSnap(snapAlloc, snapCMT), len(obsInflight), hostPagesWritten, chipBusy)
		})
	}
	return res, nil
}

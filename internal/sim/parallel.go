package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"across/internal/clock"
	"across/internal/trace"
)

// ParallelOptions configures the parallel replay engine (see ReplayParallel).
type ParallelOptions struct {
	// Workers is the number of lane/merge goroutines servicing per-chip
	// event lanes. <= 0 means GOMAXPROCS; 1 selects the serial engine.
	Workers int
	// EpochSpanMs bounds one admission epoch in simulated arrival time:
	// requests whose trace arrival falls within the span join the epoch.
	// <= 0 uses the default (5 ms).
	EpochSpanMs float64
	// EpochMaxRequests bounds an epoch's size regardless of arrival times
	// (bursts can pack thousands of arrivals into one simulated
	// millisecond). <= 0 uses the default (1024).
	EpochMaxRequests int
}

const (
	defaultEpochSpanMs = 5.0
	defaultEpochMaxReq = 1024
)

func (o ParallelOptions) withDefaults() ParallelOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.EpochSpanMs <= 0 {
		o.EpochSpanMs = defaultEpochSpanMs
	}
	if o.EpochMaxRequests <= 0 {
		o.EpochMaxRequests = defaultEpochMaxReq
	}
	return o
}

// epochBatch is one admission epoch in flight through the pipeline: the
// per-request records the merge stage folds, and the per-chip operation
// lanes the lane workers fold. laneWG synchronises the merge: an epoch's
// records fold only after every lane has advanced through the epoch.
type epochBatch struct {
	seq    int64
	recs   []reqRecord
	lanes  [][]clock.Op
	laneWG sync.WaitGroup
}

// ReplayParallel replays with the parallel deterministic engine: flash
// operations are partitioned into per-chip event lanes executed by a worker
// pool, requests are admitted in bounded simulated-time epochs, and an
// epoch-synchronised merge folds lane results into the Result. The output is
// bit-identical to ReplayQDCtx for any worker count and GOMAXPROCS — the
// determinism matrix in the tests asserts this — so callers choose workers
// purely on resource grounds. Workers <= 1 selects the serial engine.
func (r *Runner) ReplayParallel(reqs []trace.Request, qd int, opt ParallelOptions) (*Result, error) {
	return r.ReplayParallelCtx(context.Background(), reqs, qd, opt)
}

// ReplayParallelCtx is ReplayParallel with cancellation (polled on epoch
// admission, like the serial engine's request polling).
//
// How determinism is preserved (the full argument is DESIGN.md §11):
//
//   - The FTL pass — scheme logic, GC, mapping-cache state — runs on the
//     calling goroutine in request order, exactly as the serial engine. It
//     is the only stage that mutates scheme state.
//   - Every flash operation the pass schedules is captured into its chip's
//     event lane instead of being accounted inline. Lanes are pinned to
//     workers (chip modulo workers), so each chip's operations are folded
//     by one goroutine in epoch order — the same per-chip operation order,
//     and therefore the same float additions, as the serial path.
//   - The merge stage folds per-request records strictly in request-index
//     order using the same foldRecord the serial loop calls, after the
//     epoch's lanes have completed (epoch synchronisation). Lane
//     completions within an epoch are totalled in (completion time,
//     request index, ChipID) order by construction: per-chip order is
//     schedule order, and the cross-chip horizon is a max, which is
//     order-insensitive.
//
// A replay with a sampler installed falls back to the serial engine: the
// sampler observes mid-replay aggregate state, which only exists coherently
// when fold and dispatch interleave. Tracing and verification are
// unaffected (both run inside the FTL pass, in the serial order).
func (r *Runner) ReplayParallelCtx(ctx context.Context, reqs []trace.Request, qd int, opt ParallelOptions) (*Result, error) {
	opt = opt.withDefaults()
	if opt.Workers <= 1 || r.sampler != nil || len(reqs) == 0 {
		return r.ReplayQDCtx(ctx, reqs, qd)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	dev := r.Scheme.Device()
	res, buckets := r.beginReplay()
	spp := r.Conf.SectorsPerPage()
	var inflight []float64
	if qd > 0 {
		inflight = make([]float64, 0, qd)
	}

	trc := r.tracer
	dev.SetTracer(trc)
	chk := r.checker
	if chk != nil {
		if err := chk.BeginReplay(); err != nil {
			return nil, fmt.Errorf("sim: arming checker: %w", err)
		}
	}

	chips := dev.Sched.Chips()
	workers := opt.Workers
	if workers > chips {
		workers = chips
	}
	capture := clock.NewCapture(chips)
	dev.Sched.SetCapture(capture)
	defer dev.Sched.SetCapture(nil)

	// Pipeline plumbing. Each epoch batch visits every lane worker (each
	// folds its own chips) and the merge goroutine; the batch returns to
	// freeList once merge is done with it. Depth bounds memory: at most
	// depth epochs are in flight.
	depth := workers + 2
	laneChs := make([]chan *epochBatch, workers)
	for w := range laneChs {
		laneChs[w] = make(chan *epochBatch, depth)
	}
	mergeCh := make(chan *epochBatch, depth)
	freeList := make(chan *epochBatch, depth)
	for i := 0; i < depth; i++ {
		freeList <- &epochBatch{}
	}

	var (
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}

	// Lane workers: worker w owns chips w, w+workers, ... Each folds its
	// chips' operations epoch by epoch; disjoint ownership means no locks,
	// and fixed ownership means per-chip fold order equals epoch order.
	laneStates := make([]clock.LaneState, chips)
	var laneWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		laneWG.Add(1)
		go func(w int) {
			defer laneWG.Done()
			for batch := range laneChs[w] {
				if !failed.Load() {
					for c := w; c < chips; c += workers {
						if err := laneStates[c].Fold(batch.lanes[c]); err != nil {
							fail(err)
							break
						}
					}
				}
				batch.laneWG.Done()
			}
		}(w)
	}

	// Merge: folds each epoch's request records in request-index order once
	// the epoch's lanes are synchronised, and audits that the completion
	// horizon advances monotonically across epochs.
	mergeDone := make(chan struct{})
	go func() {
		defer close(mergeDone)
		var horizon float64
		for batch := range mergeCh {
			batch.laneWG.Wait() // epoch synchronisation: lanes first
			if !failed.Load() {
				epochEnd := horizon
				for c := 0; c < chips; c++ {
					if n := len(batch.lanes[c]); n > 0 {
						if end := batch.lanes[c][n-1].End; end > epochEnd {
							epochEnd = end
						}
					}
				}
				if epochEnd < horizon {
					fail(fmt.Errorf("sim: epoch %d completion horizon moved backwards (%g < %g)",
						batch.seq, epochEnd, horizon))
				}
				horizon = epochEnd
				for _, rec := range batch.recs {
					res.foldRecord(buckets, rec)
				}
			}
			freeList <- batch
		}
	}()

	// The FTL pass: identical request servicing to the serial engine, with
	// the fold deferred into per-epoch records.
	var (
		batch      *epochBatch
		epochStart float64
		seq        int64
		runErr     error
	)
	take := func() {
		batch = <-freeList
		if batch.lanes != nil {
			capture.Recycle(batch.lanes)
			batch.lanes = nil
		}
		batch.recs = batch.recs[:0]
		batch.seq = seq
		seq++
	}
	dispatch := func() {
		batch.lanes = capture.Cut()
		batch.laneWG.Add(workers)
		for w := 0; w < workers; w++ {
			laneChs[w] <- batch
		}
		mergeCh <- batch
		batch = nil
	}
	take()
	epochStart = reqs[0].Time
	done := ctx.Done()

loop:
	for i, req := range reqs {
		if i&cancelCheckMask == 0 {
			select {
			case <-done:
				runErr = fmt.Errorf("sim: replay cancelled at request %d/%d: %w", i, len(reqs), ctx.Err())
				break loop
			default:
			}
			if failed.Load() {
				break loop
			}
		}
		// Epoch admission: close the epoch when the arrival span or the
		// request bound is exceeded.
		if len(batch.recs) >= opt.EpochMaxRequests || req.Time-epochStart > opt.EpochSpanMs {
			dispatch()
			take()
			epochStart = req.Time
		}
		issue := req.Time
		if qd > 0 {
			for {
				kept := inflight[:0]
				earliest := -1.0
				for _, c := range inflight {
					if c > issue {
						kept = append(kept, c)
						if earliest < 0 || c < earliest {
							earliest = c
						}
					}
				}
				inflight = kept
				if len(inflight) < qd {
					break
				}
				issue = earliest
			}
		}
		class := req.Classify(spp)
		if trc != nil {
			trc.RequestStart(int64(i), req.Op == trace.OpWrite, uint8(class),
				req.Offset, int64(req.Count), int(req.LastLPN(spp)-req.FirstLPN(spp))+1, issue)
		}
		var (
			reqDone float64
			err     error
		)
		wBefore := dev.Count.DataWrites + dev.Count.GCWrites
		rBefore := dev.Count.DataReads + dev.Count.GCReads
		switch req.Op {
		case trace.OpWrite:
			reqDone, err = r.Scheme.Write(req, issue)
		case trace.OpRead:
			reqDone, err = r.Scheme.Read(req, issue)
		default:
			err = fmt.Errorf("sim: request %d has unknown op %d", i, req.Op)
		}
		if err != nil {
			runErr = fmt.Errorf("sim: replaying request %d (%v): %w", i, req, err)
			break loop
		}
		if chk != nil {
			var cerr error
			if req.Op == trace.OpWrite {
				cerr = chk.OnWrite(req)
			} else {
				cerr = chk.OnRead(req)
			}
			if cerr != nil {
				runErr = fmt.Errorf("sim: verification failed after request %d (%v): %w", i, req, cerr)
				break loop
			}
		}
		if qd > 0 {
			inflight = append(inflight, reqDone)
		}
		if trc != nil {
			trc.RequestEnd(int64(i), req.Op == trace.OpWrite, reqDone)
		}
		batch.recs = append(batch.recs, reqRecord{
			op:      req.Op,
			class:   class,
			count:   int32(req.Count),
			lat:     reqDone - req.Time,
			flushes: (dev.Count.DataWrites + dev.Count.GCWrites) - wBefore,
			reads:   (dev.Count.DataReads + dev.Count.GCReads) - rBefore,
		})
	}

	// Flush the final (possibly partial) epoch, then shut the pipeline down
	// in dependency order: lanes and merge drain everything dispatched.
	if batch != nil {
		if len(batch.recs) > 0 || runErr == nil {
			dispatch()
		} else {
			freeList <- batch
		}
	}
	for w := 0; w < workers; w++ {
		close(laneChs[w])
	}
	laneWG.Wait()
	close(mergeCh)
	<-mergeDone
	dev.Sched.SetCapture(nil)

	if runErr != nil {
		return nil, runErr
	}
	if failed.Load() {
		return nil, fmt.Errorf("sim: parallel replay failed: %w", firstErr)
	}

	// Determinism self-audit: every lane's folded state must agree with the
	// scheduler's authoritative timeline before the Result is assembled.
	var laneOps int64
	chipBusy := make([]float64, chips)
	for c := 0; c < chips; c++ {
		st := &laneStates[c]
		laneOps += st.Ops
		chipBusy[c] = st.BusyTime
		if st.Busy() && st.LastEnd != dev.Sched.BusyUntil(c) {
			return nil, fmt.Errorf("sim: lane %d diverged from scheduler: last end %g, busy-until %g",
				c, st.LastEnd, dev.Sched.BusyUntil(c))
		}
	}
	if laneOps != dev.Sched.Ops() {
		return nil, fmt.Errorf("sim: lanes folded %d operations, scheduler booked %d", laneOps, dev.Sched.Ops())
	}

	if chk != nil {
		if err := chk.Finish(); err != nil {
			return nil, fmt.Errorf("sim: end-of-replay verification failed: %w", err)
		}
	}
	r.finishReplay(res, reqs, chipBusy)
	return res, nil
}

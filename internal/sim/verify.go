package sim

import "across/internal/check"

// SetChecker installs a verification checker driven by subsequent replays
// (nil disables). Like the tracer, verification is observation only — a
// checked replay produces a bit-identical Result to an unchecked one (the
// metamorphic tests assert this) — and the disabled path pays one branch per
// request and zero allocations.
func (r *Runner) SetChecker(c *check.Checker) { r.checker = c }

// Checker returns the installed checker (nil if none).
func (r *Runner) Checker() *check.Checker { return r.checker }

// EnableChecks builds a checker for the runner's scheme, installs it, and
// returns it. The scheme must support auditing (all the repository's schemes
// do, including hostcache-wrapped stacks).
func (r *Runner) EnableChecks(opts check.Options) (*check.Checker, error) {
	c, err := check.New(r.Scheme, opts)
	if err != nil {
		return nil, err
	}
	r.SetChecker(c)
	return c, nil
}

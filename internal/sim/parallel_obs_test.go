package sim

import (
	"bytes"
	"reflect"
	"testing"

	"across/internal/obs"
	"across/internal/report"
	"across/internal/trace"
)

// obsArtifacts is everything one observed replay emits: the serialized
// trace, the metrics NDJSON, the in-memory sample series, and the Result.
type obsArtifacts struct {
	res     *Result
	trace   []byte
	metrics []byte
	samples []obs.Sample
}

// replayWithArtifacts runs one aged-or-not replay with a JSONL (or Chrome)
// tracer and a metrics sampler attached, through either engine, and returns
// every artifact for byte comparison.
func replayWithArtifacts(t *testing.T, kind SchemeKind, reqs []trace.Request, qd, workers int, age, chrome bool, intervalMs float64, opt ParallelOptions) obsArtifacts {
	t.Helper()
	r, err := NewRunner(kind, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	if age {
		if err := r.Age(DefaultAging()); err != nil {
			t.Fatalf("%s: Age: %v", kind, err)
		}
	}
	var trcBuf, metBuf bytes.Buffer
	var trc obs.Tracer
	if chrome {
		conf := smallConf()
		trc = obs.NewChromeTracer(&trcBuf, conf.Chips())
	} else {
		trc = obs.NewJSONLTracer(&trcBuf)
	}
	r.SetTracer(trc)
	smp, err := obs.NewSampler(intervalMs)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLMetrics(&metBuf)
	smp.SetSink(sink)
	r.SetSampler(smp)

	var res *Result
	if workers > 1 {
		opt.Workers = workers
		res, err = r.ReplayParallel(reqs, qd, opt)
	} else {
		res, err = r.ReplayQD(reqs, qd)
	}
	if err != nil {
		t.Fatalf("%s: replay (workers=%d): %v", kind, workers, err)
	}
	if err := trc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if smp.Err() != nil {
		t.Fatal(smp.Err())
	}
	return obsArtifacts{res: res, trace: trcBuf.Bytes(), metrics: metBuf.Bytes(), samples: smp.Samples()}
}

// assertArtifactsIdentical diffs two observed replays byte for byte.
func assertArtifactsIdentical(t *testing.T, serial, parallel obsArtifacts, label string) {
	t.Helper()
	assertIdentical(t, serial.res, parallel.res, label)
	if !bytes.Equal(serial.trace, parallel.trace) {
		t.Errorf("%s: serialized trace diverged (%d vs %d bytes); first diff at offset %d",
			label, len(serial.trace), len(parallel.trace), firstDiff(serial.trace, parallel.trace))
	}
	if !bytes.Equal(serial.metrics, parallel.metrics) {
		t.Errorf("%s: metrics NDJSON diverged (%d vs %d bytes); first diff at offset %d",
			label, len(serial.metrics), len(parallel.metrics), firstDiff(serial.metrics, parallel.metrics))
	}
	if !reflect.DeepEqual(serial.samples, parallel.samples) {
		t.Errorf("%s: sample series diverged (%d vs %d samples)", label, len(serial.samples), len(parallel.samples))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestParallelObservabilityGolden is the deterministic-observability matrix:
// for every scheme × worker count × epoch sizing, a parallel replay with a
// JSONL tracer and a metrics sampler attached must produce the identical
// bytes — execution trace, metrics NDJSON, and in-memory sample series —
// as the serial engine, not merely the identical Result. A tight sampling
// interval forces many sample boundaries to land mid-epoch, exercising the
// merge-stage lane-cursor folds. This test runs under -race in CI's
// race-concurrency job (the whole internal/sim package does), which is the
// race check of the merged-sampler path.
func TestParallelObservabilityGolden(t *testing.T) {
	kinds := append(Kinds(), KindDFTL)
	workerCounts := []int{2, 4, 8}
	epochOpts := []ParallelOptions{
		{}, // defaults
		{EpochSpanMs: 0.5, EpochMaxRequests: 64},
	}
	scale := 0.02
	if testing.Short() {
		kinds = []SchemeKind{KindFTL, KindAcross}
		workerCounts = []int{4}
		scale = 0.01
	}
	reqs := smallTrace(t, scale)
	for _, kind := range kinds {
		serial := replayWithArtifacts(t, kind, reqs, 0, 1, false, false, 5, ParallelOptions{})
		if len(serial.samples) < 3 {
			t.Fatalf("%s: serial reference took only %d samples; matrix would prove nothing", kind, len(serial.samples))
		}
		for _, workers := range workerCounts {
			for oi, opt := range epochOpts {
				label := string(kind) + "/workers=" + itoa(int64(workers)) + "/epochs=" + itoa(int64(oi))
				par := replayWithArtifacts(t, kind, reqs, 0, workers, false, false, 5, opt)
				assertArtifactsIdentical(t, serial, par, label)
			}
		}
	}
}

// TestParallelObservabilityGoldenQDAged covers the harder corners in one
// pass: queue-depth backpressure (issue times diverge from arrivals, so the
// sampler's in-flight retirement is exercised) on an aged device (GC spans
// and map traffic in the trace), compared across both trace formats.
func TestParallelObservabilityGoldenQDAged(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	reqs := smallTrace(t, scale)
	for _, chrome := range []bool{false, true} {
		serial := replayWithArtifacts(t, KindAcross, reqs, 8, 1, true, chrome, 10, ParallelOptions{})
		par := replayWithArtifacts(t, KindAcross, reqs, 8, 4, true, chrome, 10, ParallelOptions{EpochSpanMs: 1, EpochMaxRequests: 128})
		label := "Across/qd=8/aged/chrome=" + map[bool]string{false: "no", true: "yes"}[chrome]
		assertArtifactsIdentical(t, serial, par, label)
	}
}

// TestParallelTimelineTablesIdentical locks the last rendering layer: the
// -timeline tables are a pure function of the sample series, so a parallel
// replay must render byte-identical latency and utilisation tables.
func TestParallelTimelineTablesIdentical(t *testing.T) {
	reqs := smallTrace(t, 0.02)
	serial := replayWithArtifacts(t, KindMRSM, reqs, 0, 1, false, false, 20, ParallelOptions{})
	par := replayWithArtifacts(t, KindMRSM, reqs, 0, 4, false, false, 20, ParallelOptions{})
	render := func(samples []obs.Sample) string {
		var buf bytes.Buffer
		report.TimelineLatency(samples).RenderTo(&buf, "text")
		report.TimelineUtilisation(samples).RenderTo(&buf, "text")
		return buf.String()
	}
	if s, p := render(serial.samples), render(par.samples); s != p {
		t.Errorf("timeline tables diverged:\nserial:\n%s\nparallel:\n%s", s, p)
	}
}

// TestParallelSamplerRepeatedReplays: a runner with a sampler must survive
// successive parallel replays (observation state, capture and measurement
// reset) and still agree with a serial re-run of the same sequence.
func TestParallelSamplerRepeatedReplays(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	run := func(workers int) []obs.Sample {
		r, err := NewRunner(KindFTL, smallConf())
		if err != nil {
			t.Fatal(err)
		}
		var series []obs.Sample
		for i := 0; i < 2; i++ {
			smp, err := obs.NewSampler(25)
			if err != nil {
				t.Fatal(err)
			}
			r.SetSampler(smp)
			if workers > 1 {
				if _, err := r.ReplayParallel(reqs, 0, ParallelOptions{Workers: workers}); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := r.ReplayQD(reqs, 0); err != nil {
					t.Fatal(err)
				}
			}
			series = append(series, smp.Samples()...)
		}
		return series
	}
	if s, p := run(1), run(4); !reflect.DeepEqual(s, p) {
		t.Errorf("repeated sampled replays diverged: %d vs %d samples", len(s), len(p))
	}
}

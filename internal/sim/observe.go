package sim

import (
	"across/internal/cache"
	"across/internal/ftl"
	"across/internal/obs"
)

// SetTracer installs an event tracer observed by subsequent replays (nil
// disables). The tracer is handed to the device at Replay entry — aging
// runs are never traced — and receives request, flash-command, GC, across
// and cache events. Tracing is observation only: a traced replay produces a
// bit-identical Result to an untraced one (the differential tests assert
// this). A no-op tracer is normalised to nil here, so with tracing
// effectively off the hot path pays one branch per event site and zero
// allocations (the alloc and overhead tests assert both).
func (r *Runner) SetTracer(t obs.Tracer) {
	if obs.IsNop(t) {
		t = nil
	}
	r.tracer = t
}

// SetSampler installs a metrics sampler driven by subsequent replays (nil
// disables). The engine advances it on every request arrival and closes the
// series at the device idle horizon, so the last sample's cumulative fields
// equal the end-of-run Result aggregates. Both engines host it: the serial
// engine drives it inline, the parallel engine from its merge stage with
// the identical call sequence (see parallel.go), so the sample series is
// byte-identical for any worker count.
func (r *Runner) SetSampler(s *obs.Sampler) { r.sampler = s }

// Sampler returns the installed sampler (nil if none).
func (r *Runner) Sampler() *obs.Sampler { return r.sampler }

// obsSnap freezes the device- and scheme-side scalars a metric sample
// reads. The serial engine takes and applies one inline at each emission;
// the parallel engine's FTL pass takes one at each predicted sample
// boundary (before dispatching the request, exactly where the serial
// engine's Tick runs) and the merge stage applies it later — the scalars
// are integers, so copying them preserves bit-identity.
type obsSnap struct {
	flashReads, flashWrites int64
	erases, gcInvocations   int64
	gcDebt                  int64
	cmtHits, cmtLookups     int64
}

// obsSources hoists the optional-capability assertions the snapshot needs,
// so per-snapshot cost is two calls, not two type switches.
func (r *Runner) obsSources() (alloc *ftl.Allocator, cmt func() cache.CMTStats) {
	if al, ok := r.Scheme.(interface{ Allocator() *ftl.Allocator }); ok {
		alloc = al.Allocator()
	}
	if cs, ok := r.Scheme.(interface{ CMTStats() cache.CMTStats }); ok {
		cmt = cs.CMTStats
	}
	return alloc, cmt
}

// takeObsSnap reads the live device and scheme state. It must run on the
// goroutine that owns the simulation (the replay loop / FTL pass).
func (r *Runner) takeObsSnap(alloc *ftl.Allocator, cmt func() cache.CMTStats) obsSnap {
	dev := r.Scheme.Device()
	snap := obsSnap{
		flashReads:    dev.Count.FlashReads(),
		flashWrites:   dev.Count.FlashWrites(),
		erases:        dev.Count.Erases,
		gcInvocations: dev.Count.GCInvocations,
	}
	if alloc != nil {
		snap.gcDebt = alloc.GCDebtPages()
	}
	if cmt != nil {
		st := cmt()
		snap.cmtHits, snap.cmtLookups = st.Hits, st.Lookups
	}
	return snap
}

// applyObsSnap populates a sample's gauge and cumulative fields from a
// snapshot plus the fold-side state (Result aggregates, queue depth, host
// pages). chipBusy supplies per-chip busy times; nil reads them from the
// scheduler (the serial path — the parallel merge passes its lane-folded
// prefix sums, which are bit-identical by the lane-order argument).
func (r *Runner) applyObsSnap(sm *obs.Sample, res *Result, snap obsSnap, queueDepth int, hostPagesWritten int64, chipBusy []float64) {
	dev := r.Scheme.Device()
	sm.QueueDepth = queueDepth
	sm.ChipBusyMs = make([]float64, dev.Sched.Chips())
	if chipBusy != nil {
		copy(sm.ChipBusyMs, chipBusy)
	} else {
		for i := range sm.ChipBusyMs {
			sm.ChipBusyMs[i] = dev.Sched.BusyTime(i)
		}
	}
	sm.CumRequests = res.Requests
	sm.CumReads = res.ReadCount
	sm.CumWrites = res.WriteCount
	sm.CumReadLatSumMs = res.ReadLatencySum
	sm.CumWriteLatSumMs = res.WriteLatencySum
	sm.CumFlashReads = snap.flashReads
	sm.CumFlashWrites = snap.flashWrites
	sm.CumErases = snap.erases
	sm.CumGCInvocations = snap.gcInvocations
	sm.CumHostPagesWritten = hostPagesWritten
	if hostPagesWritten > 0 {
		sm.WAF = float64(snap.flashWrites) / float64(hostPagesWritten)
	}
	sm.GCDebtPages = snap.gcDebt
	if snap.cmtLookups > 0 {
		sm.CMTHitRate = float64(snap.cmtHits) / float64(snap.cmtLookups)
	}
}

// fillSample populates a sample from live replay state — the serial
// engine's fill callback. It runs only when a sampler is installed, so its
// allocations (the per-sample busy slice) never touch the untraced path.
func (r *Runner) fillSample(sm *obs.Sample, res *Result, queueDepth int, hostPagesWritten int64) {
	alloc, cmt := r.obsSources()
	r.applyObsSnap(sm, res, r.takeObsSnap(alloc, cmt), queueDepth, hostPagesWritten, nil)
}

package sim

import (
	"across/internal/cache"
	"across/internal/ftl"
	"across/internal/obs"
)

// SetTracer installs an event tracer observed by subsequent replays (nil
// disables). The tracer is handed to the device at Replay entry — aging
// runs are never traced — and receives request, flash-command, GC, across
// and cache events. Tracing is observation only: a traced replay produces a
// bit-identical Result to an untraced one (the differential tests assert
// this). A no-op tracer is normalised to nil here, so with tracing
// effectively off the hot path pays one branch per event site and zero
// allocations (the alloc and overhead tests assert both).
func (r *Runner) SetTracer(t obs.Tracer) {
	if obs.IsNop(t) {
		t = nil
	}
	r.tracer = t
}

// SetSampler installs a metrics sampler driven by subsequent replays (nil
// disables). The engine advances it on every request arrival and closes the
// series at the device idle horizon, so the last sample's cumulative fields
// equal the end-of-run Result aggregates.
func (r *Runner) SetSampler(s *obs.Sampler) { r.sampler = s }

// Sampler returns the installed sampler (nil if none).
func (r *Runner) Sampler() *obs.Sampler { return r.sampler }

// fillSample populates a sample's gauge and cumulative fields from live
// replay state. It runs only when a sampler is installed, so its
// allocations (the per-sample busy slice) never touch the untraced path.
func (r *Runner) fillSample(sm *obs.Sample, res *Result, queueDepth int, hostPagesWritten int64) {
	dev := r.Scheme.Device()
	sm.QueueDepth = queueDepth
	sm.ChipBusyMs = make([]float64, dev.Sched.Chips())
	for i := range sm.ChipBusyMs {
		sm.ChipBusyMs[i] = dev.Sched.BusyTime(i)
	}
	sm.CumRequests = res.Requests
	sm.CumReads = res.ReadCount
	sm.CumWrites = res.WriteCount
	sm.CumReadLatSumMs = res.ReadLatencySum
	sm.CumWriteLatSumMs = res.WriteLatencySum
	sm.CumFlashReads = dev.Count.FlashReads()
	sm.CumFlashWrites = dev.Count.FlashWrites()
	sm.CumErases = dev.Count.Erases
	sm.CumGCInvocations = dev.Count.GCInvocations
	sm.CumHostPagesWritten = hostPagesWritten
	if hostPagesWritten > 0 {
		sm.WAF = float64(sm.CumFlashWrites) / float64(hostPagesWritten)
	}
	if al, ok := r.Scheme.(interface{ Allocator() *ftl.Allocator }); ok {
		if a := al.Allocator(); a != nil {
			sm.GCDebtPages = a.GCDebtPages()
		}
	}
	if cs, ok := r.Scheme.(interface{ CMTStats() cache.CMTStats }); ok {
		if st := cs.CMTStats(); st.Lookups > 0 {
			sm.CMTHitRate = float64(st.Hits) / float64(st.Lookups)
		}
	}
}

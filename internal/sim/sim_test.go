package sim

import (
	"testing"

	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// smallConf is big enough for meaningful aging/GC, small enough for fast
// tests: Table 1 scaled way down.
func smallConf() ssdconf.Config {
	c := ssdconf.Table1()
	c.Channels = 4
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 64
	c.PagesPerBlock = 32
	return c
}

func smallTrace(t *testing.T, scale float64) []trace.Request {
	t.Helper()
	c := smallConf()
	p := workload.LunProfiles()[0].Scale(scale)
	reqs, err := workload.Generate(p, c.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestNewRunnerValidates(t *testing.T) {
	bad := smallConf()
	bad.Channels = 0
	if _, err := NewRunner(KindFTL, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewRunner(SchemeKind("bogus"), smallConf()); err == nil {
		t.Fatal("bogus scheme kind accepted")
	}
}

func TestKindsOrderAndFactory(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 3 || kinds[0] != KindFTL || kinds[1] != KindMRSM || kinds[2] != KindAcross {
		t.Fatalf("Kinds = %v", kinds)
	}
	for _, k := range kinds {
		c := smallConf()
		s, err := NewScheme(k, &c)
		if err != nil {
			t.Fatalf("NewScheme(%s): %v", k, err)
		}
		if s.Name() != string(k) {
			t.Errorf("scheme name %q != kind %q", s.Name(), k)
		}
	}
}

func TestAgingReachesPaperState(t *testing.T) {
	for _, kind := range Kinds() {
		r, err := NewRunner(kind, smallConf())
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Age(DefaultAging()); err != nil {
			t.Fatalf("%s: Age: %v", kind, err)
		}
		used, valid := r.AgedState()
		if used < 0.80 {
			t.Errorf("%s: used fraction %.3f, want >= 0.80 (target 0.90)", kind, used)
		}
		if valid < 0.30 || valid > 0.50 {
			t.Errorf("%s: valid fraction %.3f, want ~0.398", kind, valid)
		}
		if r.warmupWrites == 0 {
			t.Errorf("%s: no warm-up writes recorded", kind)
		}
		// Aging twice is a usage error.
		if err := r.Age(DefaultAging()); err == nil {
			t.Errorf("%s: double Age accepted", kind)
		}
	}
}

func TestAgeRejectsImplausibleParameters(t *testing.T) {
	r, err := NewRunner(KindFTL, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Aging{
		{ValidFrac: 0, UsedFrac: 0.9},
		{ValidFrac: 0.5, UsedFrac: 0.4},
		{ValidFrac: 0.4, UsedFrac: 1.0},
	} {
		if err := r.Age(a); err == nil {
			t.Errorf("implausible aging %+v accepted", a)
		}
	}
}

func TestReplayCollectsCoherentMetrics(t *testing.T) {
	reqs := smallTrace(t, 0.01) // ~7.5k requests
	for _, kind := range Kinds() {
		res, err := Run(kind, smallConf(), reqs, true)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Requests != int64(len(reqs)) {
			t.Errorf("%s: Requests = %d, want %d", kind, res.Requests, len(reqs))
		}
		if res.ReadCount+res.WriteCount != res.Requests {
			t.Errorf("%s: read+write != total", kind)
		}
		if res.WriteLatencySum <= 0 || res.ReadLatencySum <= 0 {
			t.Errorf("%s: non-positive latency sums %+v", kind, res)
		}
		if res.AvgWriteLatency() <= res.AvgReadLatency() {
			t.Errorf("%s: write latency %.3f <= read latency %.3f (program is 26x read time)",
				kind, res.AvgWriteLatency(), res.AvgReadLatency())
		}
		if res.Counters.FlashWrites() == 0 || res.Counters.Erases == 0 {
			t.Errorf("%s: no flash writes or erases on an aged device: %+v", kind, res.Counters)
		}
		if res.TableBytes == 0 {
			t.Errorf("%s: TableBytes = 0", kind)
		}
		// Bucket totals reconcile with direction totals.
		var bucketReqs int64
		var bucketLat float64
		for _, m := range res.ByBucket {
			bucketReqs += m.Requests
			bucketLat += m.LatencySum
		}
		if bucketReqs != res.Requests {
			t.Errorf("%s: bucket requests %d != %d", kind, bucketReqs, res.Requests)
		}
		if d := bucketLat - res.TotalIOTime(); d > 1e-6 || d < -1e-6 {
			t.Errorf("%s: bucket latency %.6f != total %.6f", kind, bucketLat, res.TotalIOTime())
		}
	}
}

// TestHeadlineComparative encodes the paper's headline directional results
// on a common trace: Across-FTL must beat the baseline on data writes and
// erases, and the baseline must beat MRSM on erases (Fig 10, 11).
func TestHeadlineComparative(t *testing.T) {
	reqs := smallTrace(t, 0.02)
	results := map[SchemeKind]*Result{}
	for _, kind := range Kinds() {
		res, err := Run(kind, smallConf(), reqs, true)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		results[kind] = res
	}
	ftlRes, acrossRes, mrsmRes := results[KindFTL], results[KindAcross], results[KindMRSM]

	if acrossRes.Counters.FlashWrites() >= ftlRes.Counters.FlashWrites() {
		t.Errorf("Across-FTL flash writes %d >= FTL %d; paper says -15.9%%",
			acrossRes.Counters.FlashWrites(), ftlRes.Counters.FlashWrites())
	}
	if acrossRes.Counters.Erases >= ftlRes.Counters.Erases {
		t.Errorf("Across-FTL erases %d >= FTL %d; paper says -13.3%%",
			acrossRes.Counters.Erases, ftlRes.Counters.Erases)
	}
	if mrsmRes.Counters.Erases <= acrossRes.Counters.Erases {
		t.Errorf("MRSM erases %d <= Across-FTL %d; paper says MRSM is worst",
			mrsmRes.Counters.Erases, acrossRes.Counters.Erases)
	}
	if acrossRes.AvgWriteLatency() >= ftlRes.AvgWriteLatency() {
		t.Errorf("Across-FTL write latency %.3f >= FTL %.3f; paper says -8.9%%",
			acrossRes.AvgWriteLatency(), ftlRes.AvgWriteLatency())
	}
	// Map traffic ordering (Fig 10): baseline none, Across little, MRSM lots.
	if ftlRes.Counters.MapWrites != 0 {
		t.Errorf("baseline FTL has map writes: %d", ftlRes.Counters.MapWrites)
	}
	if mrsmRes.Counters.MapWrites <= acrossRes.Counters.MapWrites {
		t.Errorf("MRSM map writes %d <= Across-FTL %d", mrsmRes.Counters.MapWrites, acrossRes.Counters.MapWrites)
	}
	// DRAM accesses (Fig 12b): MRSM far above the others.
	if mrsmRes.Counters.DRAMAccesses <= 2*ftlRes.Counters.DRAMAccesses {
		t.Errorf("MRSM DRAM accesses %d not >> FTL %d", mrsmRes.Counters.DRAMAccesses, ftlRes.Counters.DRAMAccesses)
	}
	// Table sizes (Fig 12a): FTL < Across < MRSM.
	if !(ftlRes.TableBytes < acrossRes.TableBytes && acrossRes.TableBytes < mrsmRes.TableBytes) {
		t.Errorf("table sizes not ordered: FTL=%d Across=%d MRSM=%d",
			ftlRes.TableBytes, acrossRes.TableBytes, mrsmRes.TableBytes)
	}
	// Across-FTL census populated.
	if acrossRes.Across == nil || acrossRes.Across.AreasTouched() == 0 {
		t.Error("Across-FTL census empty")
	}
}

// TestFig4PenaltyOnBaseline: across-page requests must show higher
// per-sector latency and flush counts than normal requests under the
// conventional FTL — the paper's motivating measurement.
func TestFig4PenaltyOnBaseline(t *testing.T) {
	reqs := smallTrace(t, 0.02)
	res, err := Run(KindFTL, smallConf(), reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	aw, nw := res.AcrossBucket(trace.OpWrite), res.MergedNormal(trace.OpWrite)
	if aw.Requests == 0 || nw.Requests == 0 {
		t.Fatal("missing across or normal write buckets")
	}
	if aw.FlushesPerSector() <= nw.FlushesPerSector() {
		t.Errorf("across flushes/sector %.4f <= normal %.4f (paper: 2.69x)",
			aw.FlushesPerSector(), nw.FlushesPerSector())
	}
	if aw.LatencyPerSector() <= nw.LatencyPerSector() {
		t.Errorf("across write latency/sector %.4f <= normal %.4f (paper: 1.49x)",
			aw.LatencyPerSector(), nw.LatencyPerSector())
	}
	ar, nr := res.AcrossBucket(trace.OpRead), res.MergedNormal(trace.OpRead)
	if ar.LatencyPerSector() <= nr.LatencyPerSector() {
		t.Errorf("across read latency/sector %.4f <= normal %.4f (paper: 1.61x)",
			ar.LatencyPerSector(), nr.LatencyPerSector())
	}
}

func TestReplayWithoutAgingWorks(t *testing.T) {
	reqs := smallTrace(t, 0.005)
	res, err := Run(KindAcross, smallConf(), reqs, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmupWrites != 0 {
		t.Errorf("WarmupWrites = %d without aging", res.WarmupWrites)
	}
}

func TestReplayRejectsBrokenRequests(t *testing.T) {
	r, err := NewRunner(KindFTL, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay([]trace.Request{{Op: trace.OpWrite, Offset: -4, Count: 8}}); err == nil {
		t.Fatal("broken request accepted")
	}
}

func TestOpClassMetricsZeroSafety(t *testing.T) {
	var m OpClassMetrics
	if m.LatencyPerSector() != 0 || m.FlushesPerSector() != 0 || m.AvgLatency() != 0 {
		t.Fatal("zero metrics should divide to zero")
	}
	var res Result
	if res.AvgReadLatency() != 0 || res.AvgWriteLatency() != 0 {
		t.Fatal("zero result should divide to zero")
	}
}

package sim

import (
	"reflect"
	"testing"
)

// TestReplayDeterminism runs every scheme twice from identical seeds and
// asserts byte-identical Results — wear stats, latency tails, per-bucket
// metrics, everything. Nondeterminism from map iteration order, pooling, or
// scratch-buffer reuse shows up here as a tier-1 failure instead of as
// unreproducible experiment numbers.
func TestReplayDeterminism(t *testing.T) {
	reqs := smallTrace(t, 0.05)
	run := func(kind SchemeKind) *Result {
		r, err := NewRunner(kind, smallConf())
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Age(DefaultAging()); err != nil {
			t.Fatalf("%s: Age: %v", kind, err)
		}
		res, err := r.Replay(reqs)
		if err != nil {
			t.Fatalf("%s: replay: %v", kind, err)
		}
		return res
	}
	for _, kind := range append(Kinds(), KindDFTL) {
		t.Run(string(kind), func(t *testing.T) {
			first := run(kind)
			again := run(kind)
			if !reflect.DeepEqual(first, again) {
				t.Errorf("two identical runs diverged:\n%+v\n%+v", first, again)
			}
			if first.Wear != again.Wear {
				t.Errorf("wear stats diverged: %+v vs %+v", first.Wear, again.Wear)
			}
		})
	}
}

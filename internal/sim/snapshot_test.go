package sim

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"across/internal/ftl"
	"across/internal/hostcache"
	"across/internal/obs"
	"across/internal/report"
	"across/internal/snapshot"
	"across/internal/trace"
)

// snapKinds is the differential matrix: every scheme, plus the host-cache
// wrap (whose own residency state must also survive the round trip).
func snapKinds() []SchemeKind { return append(Kinds(), KindDFTL) }

// newSnapRunner builds a runner, optionally host-cache wrapped.
func newSnapRunner(t *testing.T, kind SchemeKind, cachePages int) *Runner {
	t.Helper()
	r, err := NewRunner(kind, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	if cachePages > 0 {
		r.Scheme = hostcache.Wrap(r.Scheme, cachePages)
	}
	return r
}

// replayObserved replays reqs and returns the result plus the metrics
// NDJSON and rendered timeline tables the run produced.
func replaySnapObserved(t *testing.T, r *Runner, reqs []trace.Request, qd, workers int) (*Result, string, string) {
	t.Helper()
	smp, err := obs.NewSampler(25)
	if err != nil {
		t.Fatal(err)
	}
	var ndjson bytes.Buffer
	smp.SetSink(obs.NewJSONLMetrics(&ndjson))
	r.SetSampler(smp)
	var res *Result
	if workers > 1 {
		res, err = r.ReplayParallel(reqs, qd, ParallelOptions{Workers: workers})
	} else {
		res, err = r.ReplayQD(reqs, qd)
	}
	if err != nil {
		t.Fatal(err)
	}
	if smp.Err() != nil {
		t.Fatal(smp.Err())
	}
	var tables strings.Builder
	report.TimelineLatency(smp.Samples()).RenderTo(&tables, "csv")
	report.TimelineUtilisation(smp.Samples()).RenderTo(&tables, "csv")
	return res, ndjson.String(), tables.String()
}

// The headline guarantee: age→snapshot→restore→replay is indistinguishable
// from the uninterrupted age→replay run — Results, metrics NDJSON and
// timeline tables byte for byte — for every scheme, under both the serial
// and the parallel engine.
func TestSnapshotDifferentialMatrix(t *testing.T) {
	for _, kind := range snapKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			reqs := smallTrace(t, 0.02)

			cont := newSnapRunner(t, kind, 0)
			if err := cont.Age(DefaultAging()); err != nil {
				t.Fatal(err)
			}
			wantRes, wantMetrics, wantTables := replaySnapObserved(t, cont, reqs, 8, 1)

			snapped := newSnapRunner(t, kind, 0)
			if err := snapped.Age(DefaultAging()); err != nil {
				t.Fatal(err)
			}
			blob, err := snapped.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 3} {
				restored, err := Restore(blob)
				if err != nil {
					t.Fatalf("Restore: %v", err)
				}
				label := fmt.Sprintf("restored-workers-%d", workers)
				gotRes, gotMetrics, gotTables := replaySnapObserved(t, restored, reqs, 8, workers)
				assertIdentical(t, wantRes, gotRes, label)
				if gotMetrics != wantMetrics {
					t.Errorf("%s: metrics NDJSON differs from continuous run", label)
				}
				if gotTables != wantTables {
					t.Errorf("%s: timeline tables differ from continuous run", label)
				}
			}
		})
	}
}

// Snapshots taken mid-age must resume to the same state: aging the first
// half of a trace, snapshotting, restoring and aging the second half is
// equivalent to aging the whole trace in one run.
func TestSnapshotMidAgingDifferential(t *testing.T) {
	for _, kind := range snapKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			agingReqs := smallTrace(t, 0.03)
			measure := smallTrace(t, 0.01)
			half := len(agingReqs) / 2

			cont := newSnapRunner(t, kind, 0)
			if err := cont.AgeWithTrace(agingReqs); err != nil {
				t.Fatal(err)
			}
			wantRes, err := cont.ReplayQD(measure, 0)
			if err != nil {
				t.Fatal(err)
			}

			interrupted := newSnapRunner(t, kind, 0)
			if err := interrupted.AgeWithTrace(agingReqs[:half]); err != nil {
				t.Fatal(err)
			}
			blob, err := interrupted.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(blob)
			if err != nil {
				t.Fatalf("Restore mid-age: %v", err)
			}
			if err := restored.AgeWithTrace(agingReqs[half:]); err != nil {
				t.Fatal(err)
			}
			gotRes, err := restored.ReplayQD(measure, 0)
			if err != nil {
				t.Fatal(err)
			}
			assertIdentical(t, wantRes, gotRes, "resumed-aging")
		})
	}
}

// Round-trip property: encode→decode→encode is byte-identical, for bare and
// host-cache-wrapped runners.
func TestSnapshotRoundTripByteEqual(t *testing.T) {
	for _, tc := range []struct {
		kind       SchemeKind
		cachePages int
	}{
		{KindFTL, 0}, {KindMRSM, 0}, {KindAcross, 0}, {KindDFTL, 0},
		{KindAcross, 64}, {KindFTL, 32},
	} {
		name := string(tc.kind)
		if tc.cachePages > 0 {
			name += "+cache"
		}
		t.Run(name, func(t *testing.T) {
			r := newSnapRunner(t, tc.kind, tc.cachePages)
			if err := r.Age(DefaultAging()); err != nil {
				t.Fatal(err)
			}
			// Replay a little traffic so caches and clocks hold
			// non-trivial state beyond what aging leaves.
			if _, err := r.ReplayQD(smallTrace(t, 0.005), 4); err != nil {
				t.Fatal(err)
			}
			b1, err := r.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(b1)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			b2, err := restored.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("snapshot round trip not byte-identical (%d vs %d bytes)", len(b1), len(b2))
			}
		})
	}
}

// Restored runners keep their aged status: Age refuses to run again, and
// AgedState reports the warmed device.
func TestRestoreKeepsAgedState(t *testing.T) {
	r := newSnapRunner(t, KindFTL, 0)
	if err := r.Age(DefaultAging()); err != nil {
		t.Fatal(err)
	}
	wantUsed, wantValid := r.AgedState()
	blob, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Age(DefaultAging()); err == nil {
		t.Error("restored runner re-aged without complaint")
	}
	gotUsed, gotValid := restored.AgedState()
	if gotUsed != wantUsed || gotValid != wantValid {
		t.Errorf("AgedState = (%v, %v), want (%v, %v)", gotUsed, gotValid, wantUsed, wantValid)
	}
}

// Container-level tampering: bit flips, truncation and version skew are all
// rejected with the right typed error.
func TestRestoreRejectsTamperedContainer(t *testing.T) {
	r := newSnapRunner(t, KindFTL, 0)
	if err := r.Age(DefaultAging()); err != nil {
		t.Fatal(err)
	}
	blob, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := Restore(flipped); err == nil {
		t.Error("bit-flipped snapshot restored")
	}

	if _, err := Restore(blob[:len(blob)/3]); err == nil {
		t.Error("truncated snapshot restored")
	}
	if _, err := Restore(blob[:4]); !errors.Is(err, snapshot.ErrTruncated) {
		t.Errorf("header-truncated snapshot: err = %v, want ErrTruncated", err)
	}

	skewed := append([]byte(nil), blob...)
	skewed[4]++ // bump the format version's low byte
	if _, err := Restore(skewed); !errors.Is(err, snapshot.ErrVersion) {
		t.Errorf("version-skewed snapshot: err = %v, want ErrVersion", err)
	}

	if _, err := Restore([]byte("not a snapshot at all")); err == nil {
		t.Error("garbage restored")
	}
}

// State-level tampering: a snapshot that decodes cleanly but violates the
// mapping/flash invariants (here: two LPNs claiming one physical page) must
// fail the automatic post-restore audit.
func TestRestoreRejectsCorruptState(t *testing.T) {
	r := newSnapRunner(t, KindFTL, 0)
	if err := r.Age(DefaultAging()); err != nil {
		t.Fatal(err)
	}
	bl, ok := r.Scheme.(*ftl.Baseline)
	if !ok {
		t.Fatalf("scheme is %T, want *ftl.Baseline", r.Scheme)
	}
	// Aging maps LPNs sequentially, so 0 and 1 are both mapped; aliasing
	// LPN 0 onto LPN 1's page breaks the ownership bijection.
	bl.PMT.SetPPN(0, bl.PMT.PPNOf(1))
	blob, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(blob); err == nil {
		t.Fatal("corrupt-state snapshot passed the post-restore audit")
	} else if !strings.Contains(err.Error(), "audit") {
		t.Errorf("err = %v, want an audit failure", err)
	}
}

// Fresh (un-aged) runners snapshot too — the format does not assume a
// warmed device.
func TestSnapshotFreshRunner(t *testing.T) {
	r := newSnapRunner(t, KindAcross, 0)
	blob, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(blob)
	if err != nil {
		t.Fatal(err)
	}
	reqs := smallTrace(t, 0.005)
	want, err := r.ReplayQD(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.ReplayQD(reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, want, got, "fresh")
}

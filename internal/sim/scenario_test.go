package sim

import (
	"testing"

	"across/internal/scenario"
	"across/internal/trace"
)

// scenarioSectors is smallConf's logical capacity (LogicalSectors needs an
// addressable Config).
func scenarioSectors() int64 {
	c := smallConf()
	return c.LogicalSectors()
}

// scenarioStream generates a builtin scenario sized for smallConf's device.
func scenarioStream(t *testing.T, name string, scale float64) []trace.Request {
	t.Helper()
	sc, err := scenario.Builtin(name)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sc.Scale(scale).Generate(scenarioSectors())
	if err != nil {
		t.Fatalf("%s: Generate: %v", name, err)
	}
	if len(st.Requests) == 0 {
		t.Fatalf("%s: empty stream", name)
	}
	return st.Requests
}

// TestScenarioReplayDeterminismMatrix is the scenario acceptance gate: for
// every builtin scenario (plus the MSR trace wrapped as a scenario), replay
// through the serial engine and the parallel engine at several worker
// counts must produce byte-identical Results — and the whole pipeline
// (generation included) must be reproducible across runs, proven by
// comparing the JSON of two independent generate+replay passes.
func TestScenarioReplayDeterminismMatrix(t *testing.T) {
	type cell struct {
		name string
		reqs []trace.Request
	}
	cells := []cell{
		{"stationary", scenarioStream(t, "stationary", 0.002)},
		{"burst", scenarioStream(t, "burst", 0.002)},
		{"daynight", scenarioStream(t, "daynight", 0.002)},
		{"mixed", scenarioStream(t, "mixed", 0.002)},
	}
	{
		msr := scenario.FromTrace("msr", loadMSRFixture(t))
		st, err := msr.Generate(scenarioSectors())
		if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, cell{"msr-trace", st.Requests})
	}
	workerCounts := []int{2, 5}
	if testing.Short() {
		cells = cells[:2]
		workerCounts = []int{3}
	}
	for _, c := range cells {
		for _, kind := range []SchemeKind{KindAcross, KindFTL} {
			serial := replaySerial(t, kind, c.reqs, 0, false)
			for _, w := range workerCounts {
				par := replayParallel(t, kind, c.reqs, 0, w, false, ParallelOptions{})
				assertIdentical(t, serial, par, c.name+"/"+string(kind))
			}
		}
	}
}

// TestScenarioPipelineReproducible re-runs generation and replay from
// scratch and compares the Results: the full scenario pipeline is a
// deterministic function of (scenario, device), across runs and engines.
func TestScenarioPipelineReproducible(t *testing.T) {
	run := func(workers int) *Result {
		reqs := scenarioStream(t, "mixed", 0.002)
		if workers > 1 {
			return replayParallel(t, KindAcross, reqs, 4, workers, false, ParallelOptions{})
		}
		return replaySerial(t, KindAcross, reqs, 4, false)
	}
	first := run(1)
	assertIdentical(t, first, run(1), "serial re-run")
	assertIdentical(t, first, run(4), "parallel vs serial")
}

package sim

import (
	"testing"

	"across/internal/ftl"
	"across/internal/trace"
)

func TestResultCarriesLatencyDistributions(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	res, err := Run(KindAcross, smallConf(), reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteLat.Count() != res.WriteCount {
		t.Fatalf("write histogram count %d != %d", res.WriteLat.Count(), res.WriteCount)
	}
	if res.ReadLat.Count() != res.ReadCount {
		t.Fatalf("read histogram count %d != %d", res.ReadLat.Count(), res.ReadCount)
	}
	// Histogram mean must agree with the exact sums.
	if d := res.WriteLat.Mean() - res.AvgWriteLatency(); d > 1e-9 || d < -1e-9 {
		t.Fatalf("write mean mismatch: %v vs %v", res.WriteLat.Mean(), res.AvgWriteLatency())
	}
	// Tails are ordered and bounded by the max.
	if !(res.WriteLat.P50() <= res.WriteLat.P99() && res.WriteLat.P99() <= res.WriteLat.Max()) {
		t.Fatalf("write tail ordering broken: p50=%v p99=%v max=%v",
			res.WriteLat.P50(), res.WriteLat.P99(), res.WriteLat.Max())
	}
	// GC bursts make the write tail heavier than the median.
	if res.WriteLat.P99() <= res.WriteLat.P50() {
		t.Fatal("no write tail at all on an aged device")
	}
}

func TestResultCarriesWearSummary(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	res, err := Run(KindFTL, smallConf(), reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	w := res.Wear
	if w.Mean <= 0 || w.Max <= 0 {
		t.Fatalf("aged+replayed device shows no wear: %+v", w)
	}
	if w.Min > w.Max || float64(w.Min) > w.Mean || w.Mean > float64(w.Max) {
		t.Fatalf("wear ordering broken: %+v", w)
	}
	if w.StdDev < 0 {
		t.Fatalf("negative wear stddev: %+v", w)
	}
}

func TestPartialGCShortensTail(t *testing.T) {
	// Partial GC must never *lengthen* the write tail. (At small scales the
	// greedy collector usually processes one victim anyway, so equality is
	// common; this guards against regressions where partial GC makes
	// things pathologically worse.)
	reqs := smallTrace(t, 0.01)
	full, err := NewRunner(KindFTL, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Age(DefaultAging()); err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}

	part, err := NewRunner(KindFTL, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	part.Scheme.(*ftl.Baseline).Al.SetMaxVictimsPerGC(1)
	if err := part.Age(DefaultAging()); err != nil {
		t.Fatal(err)
	}
	partRes, err := part.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if partRes.WriteLat.P99() > fullRes.WriteLat.P99()*1.5 {
		t.Fatalf("partial GC lengthened the tail: %v vs %v",
			partRes.WriteLat.P99(), fullRes.WriteLat.P99())
	}
}

func TestMergedNormalCombinesBuckets(t *testing.T) {
	res := &Result{ByBucket: map[BucketKey]*OpClassMetrics{}}
	res.Bucket(trace.OpWrite, trace.ClassAligned).Requests = 3
	res.Bucket(trace.OpWrite, trace.ClassAligned).Sectors = 30
	res.Bucket(trace.OpWrite, trace.ClassUnaligned).Requests = 2
	res.Bucket(trace.OpWrite, trace.ClassUnaligned).Sectors = 10
	res.Bucket(trace.OpWrite, trace.ClassAcross).Requests = 9 // excluded
	m := res.MergedNormal(trace.OpWrite)
	if m.Requests != 5 || m.Sectors != 40 {
		t.Fatalf("MergedNormal = %+v", m)
	}
	a := res.AcrossBucket(trace.OpWrite)
	if a.Requests != 9 {
		t.Fatalf("AcrossBucket = %+v", a)
	}
	if res.AcrossBucket(trace.OpRead).Requests != 0 {
		t.Fatal("missing bucket should be zero value")
	}
}

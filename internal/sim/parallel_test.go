package sim

import (
	"context"
	"reflect"
	"testing"

	"across/internal/trace"
	"across/internal/workload"
)

// replaySerial produces the reference Result for a scenario on a fresh
// (optionally aged) runner.
func replaySerial(t *testing.T, kind SchemeKind, reqs []trace.Request, qd int, age bool) *Result {
	t.Helper()
	r, err := NewRunner(kind, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	if age {
		if err := r.Age(DefaultAging()); err != nil {
			t.Fatalf("%s: Age: %v", kind, err)
		}
	}
	res, err := r.ReplayQD(reqs, qd)
	if err != nil {
		t.Fatalf("%s: serial replay: %v", kind, err)
	}
	return res
}

func replayParallel(t *testing.T, kind SchemeKind, reqs []trace.Request, qd, workers int, age bool, opt ParallelOptions) *Result {
	t.Helper()
	r, err := NewRunner(kind, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	if age {
		if err := r.Age(DefaultAging()); err != nil {
			t.Fatalf("%s: Age: %v", kind, err)
		}
	}
	opt.Workers = workers
	res, err := r.ReplayParallel(reqs, qd, opt)
	if err != nil {
		t.Fatalf("%s: parallel replay (workers=%d): %v", kind, workers, err)
	}
	return res
}

// assertIdentical asserts two Results are byte-identical, with targeted
// messages for the fields most likely to diverge under a broken merge.
func assertIdentical(t *testing.T, serial, parallel *Result, label string) {
	t.Helper()
	if reflect.DeepEqual(serial, parallel) {
		return
	}
	t.Errorf("%s: parallel Result diverged from serial", label)
	if serial.Requests != parallel.Requests {
		t.Errorf("%s: Requests %d vs %d", label, serial.Requests, parallel.Requests)
	}
	if serial.ReadLatencySum != parallel.ReadLatencySum || serial.WriteLatencySum != parallel.WriteLatencySum {
		t.Errorf("%s: latency sums (%g,%g) vs (%g,%g)", label,
			serial.ReadLatencySum, serial.WriteLatencySum, parallel.ReadLatencySum, parallel.WriteLatencySum)
	}
	if serial.Counters != parallel.Counters {
		t.Errorf("%s: counters %+v vs %+v", label, serial.Counters, parallel.Counters)
	}
	if serial.Wear != parallel.Wear {
		t.Errorf("%s: wear %+v vs %+v", label, serial.Wear, parallel.Wear)
	}
	if !reflect.DeepEqual(serial.ChipBusyMs, parallel.ChipBusyMs) {
		t.Errorf("%s: chip busy %v vs %v", label, serial.ChipBusyMs, parallel.ChipBusyMs)
	}
	for k, sm := range serial.ByBucket {
		if pm := parallel.ByBucket[k]; pm == nil || *pm != *sm {
			t.Errorf("%s: bucket %v %+v vs %+v", label, k, sm, parallel.ByBucket[k])
		}
	}
}

// TestParallelMatchesSerialMatrix is the determinism matrix of the parallel
// engine: every scheme × seed × queue depth × worker count must produce a
// Result byte-identical to the serial engine — ByBucket metrics, latency
// histograms, wear counters, per-chip busy time, everything. The matrix
// shrinks under -short so the -race CI job stays fast.
func TestParallelMatchesSerialMatrix(t *testing.T) {
	kinds := append(Kinds(), KindDFTL)
	seeds := []int64{0, 7}
	qds := []int{0, 8}
	workerCounts := []int{1, 2, 4, 8}
	scale := 0.02
	if testing.Short() {
		kinds = []SchemeKind{KindFTL, KindAcross}
		seeds = seeds[:1]
		scale = 0.01
	}
	for _, seed := range seeds {
		c := smallConf()
		p := workload.LunProfiles()[0].Scale(scale)
		p.Seed += seed
		reqs, err := workload.Generate(p, c.LogicalSectors())
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range kinds {
			for _, qd := range qds {
				serial := replaySerial(t, kind, reqs, qd, false)
				for _, workers := range workerCounts {
					label := string(kind) + "/seed=" + itoa(seed) + "/qd=" + itoa(int64(qd)) + "/workers=" + itoa(int64(workers))
					par := replayParallel(t, kind, reqs, qd, workers, false, ParallelOptions{})
					assertIdentical(t, serial, par, label)
				}
			}
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestParallelMatchesSerialGCHeavy replays a write-heavy trace on an aged
// device — GC, salvage and mapping-cache spills all active — with small
// epochs so many epoch boundaries land mid-GC-burst.
func TestParallelMatchesSerialGCHeavy(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	reqs := smallTrace(t, scale)
	opt := ParallelOptions{EpochSpanMs: 0.5, EpochMaxRequests: 64}
	for _, kind := range append(Kinds(), KindDFTL) {
		serial := replaySerial(t, kind, reqs, 0, true)
		for _, workers := range []int{2, 8} {
			par := replayParallel(t, kind, reqs, 0, workers, true, opt)
			assertIdentical(t, serial, par, string(kind)+"/aged/workers="+itoa(int64(workers)))
		}
	}
}

// TestParallelEpochBoundsInsensitive: epoch sizing is a scheduling knob, not
// a semantic one — degenerate bounds (one-request epochs, giant epochs) must
// not change the Result.
func TestParallelEpochBoundsInsensitive(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	serial := replaySerial(t, KindAcross, reqs, 0, false)
	for _, opt := range []ParallelOptions{
		{EpochSpanMs: 1e-9, EpochMaxRequests: 1},
		{EpochSpanMs: 1e12, EpochMaxRequests: 1 << 30},
		{EpochSpanMs: 0.25, EpochMaxRequests: 17},
	} {
		par := replayParallel(t, KindAcross, reqs, 0, 4, false, opt)
		assertIdentical(t, serial, par, "epoch bounds")
	}
}

// TestParallelRepeatedReplays: a runner must support successive parallel
// replays (capture teardown, measurement reset) just like serial ones.
func TestParallelRepeatedReplays(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	r, err := NewRunner(KindFTL, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.ReplayParallel(reqs, 0, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.ReplayParallel(reqs, 0, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// State carries over (aging semantics), so results differ; but the
	// second replay must still reconcile lanes with the scheduler and
	// produce coherent metrics.
	if first.Requests != second.Requests || second.Counters.FlashWrites() == 0 {
		t.Fatalf("second parallel replay incoherent: %+v", second.Counters)
	}
	// And a serial replay after parallel ones must still work (capture
	// removed).
	if _, err := r.Replay(reqs); err != nil {
		t.Fatal(err)
	}
}

// TestParallelCancellation: a cancelled context aborts the parallel replay
// promptly and tears the pipeline down without leaking goroutines (the
// -race job would flag unsynchronised teardown).
func TestParallelCancellation(t *testing.T) {
	reqs := smallTrace(t, 0.02)
	r, err := NewRunner(KindAcross, smallConf())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.ReplayParallelCtx(ctx, reqs, 0, ParallelOptions{Workers: 4}); err == nil {
		t.Fatal("cancelled parallel replay returned nil error")
	}
	// The runner survives: a fresh replay works.
	if _, err := r.Replay(reqs); err != nil {
		t.Fatal(err)
	}
}

package sim

import (
	"across/internal/acrossftl"
	"across/internal/cache"
	"across/internal/ftl"
	"across/internal/stats"
	"across/internal/trace"
)

// OpClassMetrics aggregates per-request observations for one (direction,
// alignment class) bucket — the raw material of Fig 4.
type OpClassMetrics struct {
	Requests   int64
	Sectors    int64
	LatencySum float64 // ms
	Flushes    int64   // flash data programs attributed to these requests
	FlashReads int64   // flash data reads attributed to these requests
}

// LatencyPerSector is the paper's per-sector-size normalisation (Fig 4a/4b).
func (m OpClassMetrics) LatencyPerSector() float64 {
	if m.Sectors == 0 {
		return 0
	}
	return m.LatencySum / float64(m.Sectors)
}

// FlushesPerSector is Fig 4(c)'s flush-write count per sector-size.
func (m OpClassMetrics) FlushesPerSector() float64 {
	if m.Sectors == 0 {
		return 0
	}
	return float64(m.Flushes) / float64(m.Sectors)
}

// AvgLatency is the mean response time in ms.
func (m OpClassMetrics) AvgLatency() float64 {
	if m.Requests == 0 {
		return 0
	}
	return m.LatencySum / float64(m.Requests)
}

// BucketKey indexes the per-class metrics.
type BucketKey struct {
	Op    trace.Op
	Class trace.Class
}

// WearSummary is the per-block erase-count distribution after a run: the
// wear-levelling view of endurance (a uniform distribution wears out later
// than the same mean with a hot tail).
type WearSummary struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// Result is everything one replay produces.
type Result struct {
	Scheme   string
	Requests int64

	ReadCount, WriteCount           int64
	ReadLatencySum, WriteLatencySum float64 // ms

	// ReadLat / WriteLat hold the full latency distributions; P99 and the
	// other tail quantiles come from here.
	ReadLat  stats.Histogram
	WriteLat stats.Histogram

	Counters ftl.Counters // flash ops, erases, DRAM accesses (measured phase)

	ByBucket map[BucketKey]*OpClassMetrics

	TableBytes int64
	CMT        cache.CMTStats   // mapping-cache behaviour (zero for baseline)
	Across     *acrossftl.Stats // across-page census (Across-FTL only)

	Wear WearSummary // per-block erase distribution (lifetime, not per-phase)

	// ChipBusyMs is the accumulated service time per chip during the
	// measured phase; with the trace duration it gives per-chip utilisation
	// and shows how evenly dynamic allocation spreads load.
	ChipBusyMs []float64
	// TraceSpanMs is the arrival span of the replayed trace.
	TraceSpanMs float64
	// MeasuredSpanMs is the measured-phase makespan: first arrival to the
	// later of the last arrival and the device idle horizon. Service and GC
	// extend past the last arrival, so this — not TraceSpanMs — is the
	// utilisation denominator.
	MeasuredSpanMs float64

	WarmupWrites int64 // page programs spent aging (not in Counters)
}

// ChipUtilisation returns per-chip busy fractions over the measured
// makespan (nil when the span is zero). Dividing by the arrival span
// instead would report fractions above 1.0 whenever service runs past the
// last arrival — e.g. a burst trace whose requests all arrive up front;
// results recorded before MeasuredSpanMs existed fall back to it.
func (r *Result) ChipUtilisation() []float64 {
	span := r.MeasuredSpanMs
	if span <= 0 {
		span = r.TraceSpanMs
	}
	if span <= 0 {
		return nil
	}
	out := make([]float64, len(r.ChipBusyMs))
	for i, b := range r.ChipBusyMs {
		out[i] = b / span
	}
	return out
}

// UtilisationSpread returns the min and max chip utilisation (0,0 when
// unavailable) — a load-balance indicator for the dynamic page allocator.
func (r *Result) UtilisationSpread() (min, max float64) {
	u := r.ChipUtilisation()
	if len(u) == 0 {
		return 0, 0
	}
	min, max = u[0], u[0]
	for _, v := range u[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// AvgReadLatency returns the mean read response time (Fig 9a).
func (r *Result) AvgReadLatency() float64 {
	if r.ReadCount == 0 {
		return 0
	}
	return r.ReadLatencySum / float64(r.ReadCount)
}

// AvgWriteLatency returns the mean write response time (Fig 9b).
func (r *Result) AvgWriteLatency() float64 {
	if r.WriteCount == 0 {
		return 0
	}
	return r.WriteLatencySum / float64(r.WriteCount)
}

// TotalIOTime returns the summed response time of all requests in ms
// (Fig 9c / Fig 14a report it in kiloseconds).
func (r *Result) TotalIOTime() float64 { return r.ReadLatencySum + r.WriteLatencySum }

// Bucket returns (allocating if needed) the metrics bucket for a key.
func (r *Result) Bucket(op trace.Op, class trace.Class) *OpClassMetrics {
	k := BucketKey{Op: op, Class: class}
	m := r.ByBucket[k]
	if m == nil {
		m = &OpClassMetrics{}
		r.ByBucket[k] = m
	}
	return m
}

// MergedNormal returns the combined non-across buckets for a direction:
// the "Normal Req." series of Fig 4.
func (r *Result) MergedNormal(op trace.Op) OpClassMetrics {
	var out OpClassMetrics
	for _, class := range []trace.Class{trace.ClassAligned, trace.ClassUnaligned} {
		if m, ok := r.ByBucket[BucketKey{Op: op, Class: class}]; ok {
			out.Requests += m.Requests
			out.Sectors += m.Sectors
			out.LatencySum += m.LatencySum
			out.Flushes += m.Flushes
			out.FlashReads += m.FlashReads
		}
	}
	return out
}

// AcrossBucket returns the across-page bucket for a direction.
func (r *Result) AcrossBucket(op trace.Op) OpClassMetrics {
	if m, ok := r.ByBucket[BucketKey{Op: op, Class: trace.ClassAcross}]; ok {
		return *m
	}
	return OpClassMetrics{}
}

package sim

import (
	"fmt"

	"across/internal/acrossftl"
	"across/internal/ftl"
	"across/internal/mrsm"
	"across/internal/ssdconf"
	"across/internal/trace"
)

// Runner owns one scheme instance over one simulated device and replays
// traces against it.
type Runner struct {
	Conf   *ssdconf.Config
	Kind   SchemeKind
	Scheme ftl.Scheme

	warmed       bool
	warmupWrites int64
}

// NewRunner builds a scheme of the given kind on a fresh device.
func NewRunner(kind SchemeKind, conf ssdconf.Config) (*Runner, error) {
	if err := conf.Validate(); err != nil {
		return nil, err
	}
	s, err := NewScheme(kind, &conf)
	if err != nil {
		return nil, err
	}
	return &Runner{Conf: &conf, Kind: kind, Scheme: s}, nil
}

// Replay runs a trace through the scheme open-loop (every request is
// dispatched at its trace arrival time) and collects a Result. Timelines,
// operation counters and scheme statistics are reset at entry, so the result
// reflects only this trace (state — mappings, block wear, aged free space —
// carries over, which is what makes aging meaningful).
func (r *Runner) Replay(reqs []trace.Request) (*Result, error) {
	return r.ReplayQD(reqs, 0)
}

// ReplayQD replays with a bounded queue depth: at most qd requests are
// outstanding; a request whose trace arrival finds the queue full is
// deferred to the earliest completion (closed-loop behaviour, the way a
// host with qd in-flight commands drives a device). qd <= 0 replays
// open-loop.
func (r *Runner) ReplayQD(reqs []trace.Request, qd int) (*Result, error) {
	dev := r.Scheme.Device()
	dev.ResetMeasurement()
	if sr, ok := r.Scheme.(statsResetter); ok {
		sr.ResetStats()
	}

	res := &Result{
		Scheme:       r.Scheme.Name(),
		ByBucket:     make(map[BucketKey]*OpClassMetrics, 6),
		WarmupWrites: r.warmupWrites,
	}
	// Preallocate every (direction, class) bucket and cache the pointers so
	// the replay loop never hashes a map key or allocates a metrics struct.
	var buckets [2][3]*OpClassMetrics
	for _, op := range []trace.Op{trace.OpRead, trace.OpWrite} {
		for _, class := range []trace.Class{trace.ClassAligned, trace.ClassAcross, trace.ClassUnaligned} {
			buckets[op][class] = res.Bucket(op, class)
		}
	}
	spp := r.Conf.SectorsPerPage()
	var inflight []float64 // completion times of outstanding requests (QD mode)
	if qd > 0 {
		inflight = make([]float64, 0, qd)
	}
	for i, req := range reqs {
		issue := req.Time
		if qd > 0 {
			// Retire completed requests, then defer the issue to the
			// earliest completion if the queue is still full.
			for {
				kept := inflight[:0]
				earliest := -1.0
				for _, c := range inflight {
					if c > issue {
						kept = append(kept, c)
						if earliest < 0 || c < earliest {
							earliest = c
						}
					}
				}
				inflight = kept
				if len(inflight) < qd {
					break
				}
				issue = earliest
			}
		}
		var (
			done float64
			err  error
		)
		wBefore := dev.Count.DataWrites + dev.Count.GCWrites
		rBefore := dev.Count.DataReads + dev.Count.GCReads
		switch req.Op {
		case trace.OpWrite:
			done, err = r.Scheme.Write(req, issue)
		case trace.OpRead:
			done, err = r.Scheme.Read(req, issue)
		default:
			err = fmt.Errorf("sim: request %d has unknown op %d", i, req.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: replaying request %d (%v): %w", i, req, err)
		}
		if qd > 0 {
			inflight = append(inflight, done)
		}
		// Latency is measured from the trace arrival, so queueing delay in
		// the host queue (QD mode) counts toward the response time.
		lat := done - req.Time
		res.Requests++
		if req.Op == trace.OpWrite {
			res.WriteCount++
			res.WriteLatencySum += lat
			res.WriteLat.Add(lat)
		} else {
			res.ReadCount++
			res.ReadLatencySum += lat
			res.ReadLat.Add(lat)
		}
		b := buckets[req.Op][req.Classify(spp)]
		b.Requests++
		b.Sectors += int64(req.Count)
		b.LatencySum += lat
		b.Flushes += (dev.Count.DataWrites + dev.Count.GCWrites) - wBefore
		b.FlashReads += (dev.Count.DataReads + dev.Count.GCReads) - rBefore
	}

	res.Counters = dev.Count
	res.TableBytes = r.Scheme.TableBytes()
	mean, sd, lo, hi := dev.Array.WearStats()
	res.Wear = WearSummary{Mean: mean, StdDev: sd, Min: lo, Max: hi}
	res.ChipBusyMs = make([]float64, dev.Sched.Chips())
	for i := range res.ChipBusyMs {
		res.ChipBusyMs[i] = dev.Sched.BusyTime(i)
	}
	if n := len(reqs); n > 0 {
		res.TraceSpanMs = reqs[n-1].Time - reqs[0].Time
	}
	switch s := r.Scheme.(type) {
	case *acrossftl.Scheme:
		st := s.Stats()
		res.Across = &st
		res.CMT = s.CMTStats()
	case *mrsm.Scheme:
		res.CMT = s.CMTStats()
	}
	return res, nil
}

// Run is the one-call convenience: build, age, replay.
func Run(kind SchemeKind, conf ssdconf.Config, reqs []trace.Request, age bool) (*Result, error) {
	r, err := NewRunner(kind, conf)
	if err != nil {
		return nil, err
	}
	if age {
		if err := r.Age(DefaultAging()); err != nil {
			return nil, err
		}
	}
	return r.Replay(reqs)
}

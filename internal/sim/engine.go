package sim

import (
	"context"
	"fmt"

	"across/internal/acrossftl"
	"across/internal/check"
	"across/internal/ftl"
	"across/internal/mrsm"
	"across/internal/obs"
	"across/internal/ssdconf"
	"across/internal/trace"
)

// cancelCheckMask bounds how stale a replay's view of its context can get:
// cancellation is polled every cancelCheckMask+1 requests, so a cancelled or
// timed-out ReplayQDCtx stops within 64 requests of the signal while the
// uncancelled hot path pays only a nil-channel select once per 64 requests.
const cancelCheckMask = 63

// Runner owns one scheme instance over one simulated device and replays
// traces against it.
type Runner struct {
	Conf   *ssdconf.Config
	Kind   SchemeKind
	Scheme ftl.Scheme

	warmed       bool
	warmupWrites int64

	// tracer and sampler, when set, observe subsequent replays (see
	// observe.go). Both are installed at Replay entry so aging runs are
	// never traced.
	tracer  obs.Tracer
	sampler *obs.Sampler

	// checker, when set, verifies subsequent replays (see verify.go): the
	// shadow model after every request, the device-wide audit periodically
	// and at end of run.
	checker *check.Checker
}

// WarmupWrites reports the page programs spent aging this runner (restored
// runners carry their checkpoint's count) — the fleet layer sums these into
// its Result the way beginReplay copies them into a single-device one.
func (r *Runner) WarmupWrites() int64 { return r.warmupWrites }

// NewRunner builds a scheme of the given kind on a fresh device.
func NewRunner(kind SchemeKind, conf ssdconf.Config) (*Runner, error) {
	if err := conf.Validate(); err != nil {
		return nil, err
	}
	s, err := NewScheme(kind, &conf)
	if err != nil {
		return nil, err
	}
	return &Runner{Conf: &conf, Kind: kind, Scheme: s}, nil
}

// Replay runs a trace through the scheme open-loop (every request is
// dispatched at its trace arrival time) and collects a Result. Timelines,
// operation counters and scheme statistics are reset at entry, so the result
// reflects only this trace (state — mappings, block wear, aged free space —
// carries over, which is what makes aging meaningful).
func (r *Runner) Replay(reqs []trace.Request) (*Result, error) {
	return r.ReplayQDCtx(context.Background(), reqs, 0)
}

// ReplayQD replays with a bounded queue depth: at most qd requests are
// outstanding; a request whose trace arrival finds the queue full is
// deferred to the earliest completion (closed-loop behaviour, the way a
// host with qd in-flight commands drives a device). qd <= 0 replays
// open-loop.
func (r *Runner) ReplayQD(reqs []trace.Request, qd int) (*Result, error) {
	return r.ReplayQDCtx(context.Background(), reqs, qd)
}

// ReplayCtx is Replay with cancellation: a cancelled or expired ctx aborts
// the replay mid-trace (within cancelCheckMask+1 requests) and returns the
// context's error.
func (r *Runner) ReplayCtx(ctx context.Context, reqs []trace.Request) (*Result, error) {
	return r.ReplayQDCtx(ctx, reqs, 0)
}

// reqRecord is everything the metric fold needs to know about one serviced
// request. The serial engine folds records inline; the parallel engine's
// merge stage folds the same records in the same (request-index) order, so
// the two paths produce bit-identical Results by construction.
type reqRecord struct {
	op      trace.Op
	class   trace.Class
	count   int32
	lat     float64
	flushes int64
	reads   int64
}

// foldRecord applies one request's observations to the Result. It is the
// single fold used by both engines — any metric added here is automatically
// parallel-safe, because the merge stage replays the identical call sequence.
func (res *Result) foldRecord(buckets *[2][3]*OpClassMetrics, rec reqRecord) {
	res.Requests++
	if rec.op == trace.OpWrite {
		res.WriteCount++
		res.WriteLatencySum += rec.lat
		res.WriteLat.Add(rec.lat)
	} else {
		res.ReadCount++
		res.ReadLatencySum += rec.lat
		res.ReadLat.Add(rec.lat)
	}
	b := buckets[rec.op][rec.class]
	b.Requests++
	b.Sectors += int64(rec.count)
	b.LatencySum += rec.lat
	b.Flushes += rec.flushes
	b.FlashReads += rec.reads
}

// beginReplay resets measurement state and prepares the Result with every
// (direction, class) bucket preallocated, so the replay loop never hashes a
// map key or allocates a metrics struct. Shared by both engines.
func (r *Runner) beginReplay() (*Result, *[2][3]*OpClassMetrics) {
	dev := r.Scheme.Device()
	dev.ResetMeasurement()
	if sr, ok := r.Scheme.(statsResetter); ok {
		sr.ResetStats()
	}
	res := &Result{
		Scheme:       r.Scheme.Name(),
		ByBucket:     make(map[BucketKey]*OpClassMetrics, 6),
		WarmupWrites: r.warmupWrites,
	}
	buckets := new([2][3]*OpClassMetrics)
	for _, op := range []trace.Op{trace.OpRead, trace.OpWrite} {
		for _, class := range []trace.Class{trace.ClassAligned, trace.ClassAcross, trace.ClassUnaligned} {
			buckets[op][class] = res.Bucket(op, class)
		}
	}
	return res, buckets
}

// finishReplay collects the end-of-run Result fields that are functions of
// final device and scheme state. chipBusy supplies the per-chip service
// times; nil reads them from the scheduler (the serial path — the parallel
// engine passes its lane-folded totals, which are bit-identical).
func (r *Runner) finishReplay(res *Result, reqs []trace.Request, chipBusy []float64) {
	dev := r.Scheme.Device()
	res.Counters = dev.Count
	res.TableBytes = r.Scheme.TableBytes()
	mean, sd, lo, hi := dev.Array.WearStats()
	res.Wear = WearSummary{Mean: mean, StdDev: sd, Min: lo, Max: hi}
	if chipBusy != nil {
		res.ChipBusyMs = chipBusy
	} else {
		res.ChipBusyMs = make([]float64, dev.Sched.Chips())
		for i := range res.ChipBusyMs {
			res.ChipBusyMs[i] = dev.Sched.BusyTime(i)
		}
	}
	if n := len(reqs); n > 0 {
		res.TraceSpanMs = reqs[n-1].Time - reqs[0].Time
		// The measured makespan runs to the device idle horizon: service
		// (and GC) extends past the last arrival, so utilisation uses this
		// denominator, not the arrival span.
		end := dev.Sched.Horizon()
		if reqs[n-1].Time > end {
			end = reqs[n-1].Time
		}
		res.MeasuredSpanMs = end - reqs[0].Time
	}
	switch s := r.Scheme.(type) {
	case *acrossftl.Scheme:
		st := s.Stats()
		res.Across = &st
		res.CMT = s.CMTStats()
	case *mrsm.Scheme:
		res.CMT = s.CMTStats()
	}
}

// ReplayQDCtx is ReplayQD with cancellation. The context is polled every
// cancelCheckMask+1 requests, so long replays driven by a job scheduler can
// be stopped promptly without the hot path paying a per-request check.
func (r *Runner) ReplayQDCtx(ctx context.Context, reqs []trace.Request, qd int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	dev := r.Scheme.Device()
	res, buckets := r.beginReplay()
	spp := r.Conf.SectorsPerPage()
	var inflight []float64 // completion times of outstanding requests (QD mode)
	if qd > 0 {
		inflight = make([]float64, 0, qd)
	}

	// Observability (nil-guarded: the untraced replay pays one branch per
	// site and zero allocations). The sampler tracks its own in-flight set
	// so queue depth is observable even in open-loop mode.
	trc := r.tracer
	dev.SetTracer(trc)
	// Verification (nil-guarded like the tracer: the unchecked replay pays
	// one branch per request and zero allocations). BeginReplay runs after
	// ResetMeasurement so the attribution identities see zeroed counters.
	chk := r.checker
	if chk != nil {
		if err := chk.BeginReplay(); err != nil {
			return nil, fmt.Errorf("sim: arming checker: %w", err)
		}
	}
	smp := r.sampler
	var (
		obsInflight      []float64
		hostPagesWritten int64
		obsLastDone      float64
		fill             func(*obs.Sample)
	)
	if smp != nil {
		fill = func(sm *obs.Sample) {
			r.fillSample(sm, res, len(obsInflight), hostPagesWritten)
		}
	}

	done := ctx.Done() // nil for Background: the select below always falls through
	for i, req := range reqs {
		if i&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("sim: replay cancelled at request %d/%d: %w", i, len(reqs), ctx.Err())
			default:
			}
		}
		issue := req.Time
		if qd > 0 {
			// Retire completed requests, then defer the issue to the
			// earliest completion if the queue is still full.
			for {
				kept := inflight[:0]
				earliest := -1.0
				for _, c := range inflight {
					if c > issue {
						kept = append(kept, c)
						if earliest < 0 || c < earliest {
							earliest = c
						}
					}
				}
				inflight = kept
				if len(inflight) < qd {
					break
				}
				issue = earliest
			}
		}
		if smp != nil {
			// Retire the sampler's in-flight view and advance its clock
			// before dispatch, so a boundary sample sees the state as of
			// this arrival, excluding the request being dispatched.
			kept := obsInflight[:0]
			for _, c := range obsInflight {
				if c > issue {
					kept = append(kept, c)
				}
			}
			obsInflight = kept
			smp.Tick(issue, fill)
		}
		class := req.Classify(spp)
		if trc != nil {
			trc.RequestStart(int64(i), req.Op == trace.OpWrite, uint8(class),
				req.Offset, int64(req.Count), int(req.LastLPN(spp)-req.FirstLPN(spp))+1, issue)
		}
		var (
			done float64
			err  error
		)
		wBefore := dev.Count.DataWrites + dev.Count.GCWrites
		rBefore := dev.Count.DataReads + dev.Count.GCReads
		switch req.Op {
		case trace.OpWrite:
			done, err = r.Scheme.Write(req, issue)
		case trace.OpRead:
			done, err = r.Scheme.Read(req, issue)
		default:
			err = fmt.Errorf("sim: request %d has unknown op %d", i, req.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: replaying request %d (%v): %w", i, req, err)
		}
		if chk != nil {
			var cerr error
			if req.Op == trace.OpWrite {
				cerr = chk.OnWrite(req)
			} else {
				cerr = chk.OnRead(req)
			}
			if cerr != nil {
				return nil, fmt.Errorf("sim: verification failed after request %d (%v): %w", i, req, cerr)
			}
		}
		if qd > 0 {
			inflight = append(inflight, done)
		}
		// Latency is measured from the trace arrival, so queueing delay in
		// the host queue (QD mode) counts toward the response time.
		lat := done - req.Time
		if trc != nil {
			trc.RequestEnd(int64(i), req.Op == trace.OpWrite, done)
		}
		if smp != nil {
			smp.Note(req.Op == trace.OpWrite, lat)
			if req.Op == trace.OpWrite {
				hostPagesWritten += req.LastLPN(spp) - req.FirstLPN(spp) + 1
			}
			obsInflight = append(obsInflight, done)
			if done > obsLastDone {
				obsLastDone = done
			}
		}
		res.foldRecord(buckets, reqRecord{
			op:      req.Op,
			class:   class,
			count:   int32(req.Count),
			lat:     lat,
			flushes: (dev.Count.DataWrites + dev.Count.GCWrites) - wBefore,
			reads:   (dev.Count.DataReads + dev.Count.GCReads) - rBefore,
		})
	}

	if chk != nil {
		if err := chk.Finish(); err != nil {
			return nil, fmt.Errorf("sim: end-of-replay verification failed: %w", err)
		}
	}

	r.finishReplay(res, reqs, nil)
	if smp != nil {
		// The run ends when the last completion lands: bus transfers can
		// finish after the chip-busy horizon, and arrivals can trail the
		// horizon on idle tails.
		end := dev.Sched.Horizon()
		if obsLastDone > end {
			end = obsLastDone
		}
		if n := len(reqs); n > 0 && reqs[n-1].Time > end {
			end = reqs[n-1].Time
		}
		// Retire everything that completes by then so the closing sample
		// reports the drained queue.
		kept := obsInflight[:0]
		for _, c := range obsInflight {
			if c > end {
				kept = append(kept, c)
			}
		}
		obsInflight = kept
		smp.Finish(end, fill)
	}
	return res, nil
}

// Run is the one-call convenience: build, age, replay.
func Run(kind SchemeKind, conf ssdconf.Config, reqs []trace.Request, age bool) (*Result, error) {
	r, err := NewRunner(kind, conf)
	if err != nil {
		return nil, err
	}
	if age {
		if err := r.Age(DefaultAging()); err != nil {
			return nil, err
		}
	}
	return r.Replay(reqs)
}

package sim

import (
	"reflect"
	"testing"

	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/trace"
)

// victimRec is one GC victim selection, in order of occurrence.
type victimRec struct {
	pl  flash.PlaneID
	bid flash.BlockID
}

// replayRecorded runs one full aged replay with the given victim-selection
// implementation (indexed or the retained reference scan), recording every
// GC victim chosen along the way.
func replayRecorded(t *testing.T, kind SchemeKind, reference bool, reqs []trace.Request) (*Result, []victimRec) {
	t.Helper()
	conf := smallConf()
	r, err := NewRunner(kind, conf)
	if err != nil {
		t.Fatal(err)
	}
	al := r.Scheme.(interface{ Allocator() *ftl.Allocator }).Allocator()
	al.SetReferenceVictimScan(reference)
	var seq []victimRec
	al.SetGCVictimHook(func(pl flash.PlaneID, bid flash.BlockID) {
		seq = append(seq, victimRec{pl, bid})
	})
	if err := r.Age(DefaultAging()); err != nil {
		t.Fatal(err)
	}
	res, err := r.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res, seq
}

// TestIndexedVictimMatchesReferenceScan is the behaviour-preservation proof
// for the indexed GC victim selection: for every scheme, an aged replay of a
// seeded workload must choose the exact same victim sequence and produce a
// bit-identical Result whether victims come from the valid-count index or
// from the retained naive scan.
func TestIndexedVictimMatchesReferenceScan(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			resIdx, seqIdx := replayRecorded(t, kind, false, reqs)
			resRef, seqRef := replayRecorded(t, kind, true, reqs)

			if len(seqIdx) == 0 {
				t.Fatal("no GC victims selected: workload too small to exercise victim selection")
			}
			if len(seqIdx) != len(seqRef) {
				t.Fatalf("victim count diverged: indexed %d, reference %d", len(seqIdx), len(seqRef))
			}
			for i := range seqIdx {
				if seqIdx[i] != seqRef[i] {
					t.Fatalf("victim %d diverged: indexed chose plane %d block %d, reference plane %d block %d",
						i, seqIdx[i].pl, seqIdx[i].bid, seqRef[i].pl, seqRef[i].bid)
				}
			}
			if !reflect.DeepEqual(resIdx, resRef) {
				t.Errorf("results diverged between indexed and reference victim selection:\nindexed:   %+v\nreference: %+v",
					resIdx, resRef)
			}
		})
	}
}

// TestVictimPoliciesDifferUnderIndex guards against the index degenerating
// into one policy: greedy and FIFO selection over the same workload should
// not produce identical victim sequences on a fragmented device.
func TestVictimPoliciesDifferUnderIndex(t *testing.T) {
	reqs := smallTrace(t, 0.01)
	seqFor := func(policy ftl.VictimPolicy) []victimRec {
		r, err := NewRunner(KindFTL, smallConf())
		if err != nil {
			t.Fatal(err)
		}
		al := r.Scheme.(interface{ Allocator() *ftl.Allocator }).Allocator()
		al.SetVictimPolicy(policy)
		var seq []victimRec
		al.SetGCVictimHook(func(pl flash.PlaneID, bid flash.BlockID) {
			seq = append(seq, victimRec{pl, bid})
		})
		if err := r.Age(DefaultAging()); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Replay(reqs); err != nil {
			t.Fatal(err)
		}
		return seq
	}
	greedy := seqFor(ftl.VictimGreedy)
	fifo := seqFor(ftl.VictimFIFO)
	if reflect.DeepEqual(greedy, fifo) {
		t.Error("greedy and FIFO victim sequences are identical; index may be ignoring the policy")
	}
}

package flash

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"across/internal/ssdconf"
)

func tinyArray(t *testing.T) *Array {
	t.Helper()
	c := ssdconf.Tiny()
	a, err := NewArray(&c)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	return a
}

func TestNewArrayRejectsInvalidConfig(t *testing.T) {
	c := ssdconf.Tiny()
	c.Channels = 0
	if _, err := NewArray(&c); err == nil {
		t.Fatal("NewArray accepted invalid config")
	}
}

func TestProgramReadInvalidateEraseCycle(t *testing.T) {
	a := tinyArray(t)
	p := PPN(0)
	if got := a.State(p); got != PageFree {
		t.Fatalf("initial state = %v, want free", got)
	}
	if err := a.Read(p); !errors.Is(err, ErrReadUnwritten) {
		t.Fatalf("Read(free) err = %v, want ErrReadUnwritten", err)
	}
	tag := Tag{Kind: 1, Key: 42}
	if err := a.Program(p, tag); err != nil {
		t.Fatalf("Program: %v", err)
	}
	if got := a.State(p); got != PageValid {
		t.Fatalf("state after program = %v, want valid", got)
	}
	if got := a.TagOf(p); got != tag {
		t.Fatalf("tag = %+v, want %+v", got, tag)
	}
	if err := a.Read(p); err != nil {
		t.Fatalf("Read(valid): %v", err)
	}
	if err := a.Invalidate(p); err != nil {
		t.Fatalf("Invalidate: %v", err)
	}
	if got := a.State(p); got != PageInvalid {
		t.Fatalf("state after invalidate = %v, want invalid", got)
	}
	// Reading stale (invalid) data is allowed; re-invalidating is not.
	if err := a.Read(p); err != nil {
		t.Fatalf("Read(invalid): %v", err)
	}
	if err := a.Invalidate(p); !errors.Is(err, ErrInvalidateNotValid) {
		t.Fatalf("double Invalidate err = %v, want ErrInvalidateNotValid", err)
	}
	bid := a.Geo.BlockOf(p)
	if err := a.Erase(bid); err != nil {
		t.Fatalf("Erase: %v", err)
	}
	if got := a.State(p); got != PageFree {
		t.Fatalf("state after erase = %v, want free", got)
	}
	if got := a.EraseCount(bid); got != 1 {
		t.Fatalf("EraseCount = %d, want 1", got)
	}
	if got := a.TotalErases(); got != 1 {
		t.Fatalf("TotalErases = %d, want 1", got)
	}
}

func TestProgramEnforcesOrderWithinBlock(t *testing.T) {
	a := tinyArray(t)
	// Page 1 before page 0 must fail.
	if err := a.Program(PPN(1), Tag{}); !errors.Is(err, ErrProgramOutOfOrder) {
		t.Fatalf("out-of-order program err = %v, want ErrProgramOutOfOrder", err)
	}
	if err := a.Program(PPN(0), Tag{}); err != nil {
		t.Fatalf("Program(0): %v", err)
	}
	if err := a.Program(PPN(0), Tag{}); !errors.Is(err, ErrProgramNotFree) {
		t.Fatalf("reprogram err = %v, want ErrProgramNotFree", err)
	}
	if err := a.Program(PPN(1), Tag{}); err != nil {
		t.Fatalf("Program(1): %v", err)
	}
}

func TestEraseRefusesLiveData(t *testing.T) {
	a := tinyArray(t)
	if err := a.Program(PPN(0), Tag{Kind: 1, Key: 7}); err != nil {
		t.Fatal(err)
	}
	if err := a.Erase(0); !errors.Is(err, ErrEraseWithValid) {
		t.Fatalf("Erase(live) err = %v, want ErrEraseWithValid", err)
	}
	if err := a.Invalidate(PPN(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Erase(0); err != nil {
		t.Fatalf("Erase after invalidate: %v", err)
	}
}

func TestBoundsChecking(t *testing.T) {
	a := tinyArray(t)
	bad := PPN(a.Geo.TotalPages())
	if err := a.Program(bad, Tag{}); err == nil {
		t.Error("Program out of range accepted")
	}
	if err := a.Read(-1); err == nil {
		t.Error("Read(-1) accepted")
	}
	if err := a.Invalidate(bad); err == nil {
		t.Error("Invalidate out of range accepted")
	}
	if err := a.Erase(BlockID(a.Geo.TotalBlocks())); err == nil {
		t.Error("Erase out of range accepted")
	}
}

func TestValidPagesListsProgramOrder(t *testing.T) {
	a := tinyArray(t)
	for i := 0; i < 4; i++ {
		if err := a.Program(PPN(i), Tag{Kind: 1, Key: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Invalidate(PPN(1)); err != nil {
		t.Fatal(err)
	}
	got := a.ValidPages(0)
	want := []PPN{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("ValidPages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ValidPages = %v, want %v", got, want)
		}
	}
	if a.ValidCount(0) != 3 {
		t.Fatalf("ValidCount = %d, want 3", a.ValidCount(0))
	}
	if a.FreeInBlock(0) != a.Geo.PagesPerBlock-4 {
		t.Fatalf("FreeInBlock = %d, want %d", a.FreeInBlock(0), a.Geo.PagesPerBlock-4)
	}
}

func TestCountStatesAccounting(t *testing.T) {
	a := tinyArray(t)
	total := a.Geo.TotalPages()
	free, valid, invalid := a.CountStates()
	if free != total || valid != 0 || invalid != 0 {
		t.Fatalf("fresh array states = (%d,%d,%d), want (%d,0,0)", free, valid, invalid, total)
	}
	for i := 0; i < 6; i++ {
		if err := a.Program(PPN(i), Tag{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := a.Invalidate(PPN(i)); err != nil {
			t.Fatal(err)
		}
	}
	free, valid, invalid = a.CountStates()
	if free != total-6 || valid != 4 || invalid != 2 {
		t.Fatalf("states = (%d,%d,%d), want (%d,4,2)", free, valid, invalid, total-6)
	}
}

// TestRandomOpSequenceInvariants drives the array with random legal
// operations and checks, after every step, that per-block accounting agrees
// with a brute-force recount. This is the state-machine soundness property.
func TestRandomOpSequenceInvariants(t *testing.T) {
	c := ssdconf.Tiny()
	a := MustNewArray(&c)
	rng := rand.New(rand.NewSource(7))
	live := map[PPN]bool{}

	recount := func(bid BlockID) (valid, written int) {
		first := a.Geo.FirstPage(bid)
		for i := 0; i < a.Geo.PagesPerBlock; i++ {
			switch a.State(first + PPN(i)) {
			case PageValid:
				valid++
				written++
			case PageInvalid:
				written++
			}
		}
		return
	}

	for step := 0; step < 5000; step++ {
		switch rng.Intn(3) {
		case 0: // program the next page of a random non-full block
			bid := BlockID(rng.Int63n(a.Geo.TotalBlocks()))
			if a.WritePtr(bid) < a.Geo.PagesPerBlock {
				p := a.Geo.FirstPage(bid) + PPN(a.WritePtr(bid))
				if err := a.Program(p, Tag{Kind: 1, Key: int64(step)}); err != nil {
					t.Fatalf("step %d Program: %v", step, err)
				}
				live[p] = true
			}
		case 1: // invalidate a random live page
			for p := range live {
				if err := a.Invalidate(p); err != nil {
					t.Fatalf("step %d Invalidate: %v", step, err)
				}
				delete(live, p)
				break
			}
		case 2: // erase a random block with no live pages
			bid := BlockID(rng.Int63n(a.Geo.TotalBlocks()))
			if a.ValidCount(bid) == 0 && a.WritePtr(bid) > 0 {
				if err := a.Erase(bid); err != nil {
					t.Fatalf("step %d Erase: %v", step, err)
				}
			}
		}
		// Spot-check a random block's accounting against a recount.
		bid := BlockID(rng.Int63n(a.Geo.TotalBlocks()))
		valid, written := recount(bid)
		if a.ValidCount(bid) != valid {
			t.Fatalf("step %d block %d ValidCount=%d recount=%d", step, bid, a.ValidCount(bid), valid)
		}
		if a.WritePtr(bid) != written {
			t.Fatalf("step %d block %d WritePtr=%d recount=%d", step, bid, a.WritePtr(bid), written)
		}
	}
}

// TestGeometryRoundTrip checks PPN <-> (block, index) <-> plane <-> chip
// arithmetic for arbitrary pages of arbitrary geometries.
func TestGeometryRoundTrip(t *testing.T) {
	f := func(chSeed, blkSeed uint8, pageSeed uint16) bool {
		c := ssdconf.Tiny()
		c.Channels = int(chSeed%4) + 1
		c.BlocksPerPlane = int(blkSeed%32) + 2
		g := NewGeometry(&c)
		p := PPN(int64(pageSeed) % g.TotalPages())
		bid := g.BlockOf(p)
		if g.FirstPage(bid)+PPN(g.PageIndexOf(p)) != p {
			return false
		}
		pl := g.PlaneOf(p)
		lo, hi := g.BlocksOfPlane(pl)
		if bid < lo || bid >= hi {
			return false
		}
		chip := g.ChipOf(p)
		return chip >= 0 && int(chip) < g.Chips
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPageStateString(t *testing.T) {
	if PageFree.String() != "free" || PageValid.String() != "valid" || PageInvalid.String() != "invalid" {
		t.Error("PageState.String mismatch")
	}
	if PageState(9).String() == "" {
		t.Error("unknown state should still render")
	}
}

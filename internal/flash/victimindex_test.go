package flash

import (
	"math/rand"
	"testing"

	"across/internal/ssdconf"
)

// naiveGreedy recomputes the greedy victim from per-block counters — the
// semantics the index must reproduce exactly.
func naiveGreedy(a *Array, pl PlaneID, skip1, skip2 BlockID) BlockID {
	lo, hi := a.Geo.BlocksOfPlane(pl)
	best := BlockID(-1)
	bestValid := a.Geo.PagesPerBlock
	for b := lo; b < hi; b++ {
		if b == skip1 || b == skip2 {
			continue
		}
		if a.WritePtr(b) != a.Geo.PagesPerBlock {
			continue
		}
		if v := a.ValidCount(b); v < bestValid {
			best, bestValid = b, v
		}
	}
	return best
}

func naiveFIFO(a *Array, pl PlaneID, skip1, skip2 BlockID) BlockID {
	lo, hi := a.Geo.BlocksOfPlane(pl)
	for b := lo; b < hi; b++ {
		if b == skip1 || b == skip2 {
			continue
		}
		if a.WritePtr(b) != a.Geo.PagesPerBlock {
			continue
		}
		if a.ValidCount(b) < a.Geo.PagesPerBlock {
			return b
		}
	}
	return -1
}

// TestVictimIndexMatchesNaiveScan drives the array through random
// program/invalidate/erase traffic and cross-checks every index lookup
// against the reference linear scan, including skip combinations.
func TestVictimIndexMatchesNaiveScan(t *testing.T) {
	c := ssdconf.Tiny() // multiple planes, 16 blocks x 8 pages per plane
	a := MustNewArray(&c)
	rng := rand.New(rand.NewSource(42))
	geo := a.Geo

	check := func(step int) {
		t.Helper()
		for pl := PlaneID(0); int(pl) < geo.Planes; pl++ {
			lo, hi := geo.BlocksOfPlane(pl)
			skips := [][2]BlockID{
				{-1, -1},
				{lo, -1},
				{lo, hi - 1},
				{lo + BlockID(rng.Intn(int(hi-lo))), -1},
			}
			for _, sk := range skips {
				if got, want := a.GreedyVictim(pl, sk[0], sk[1]), naiveGreedy(a, pl, sk[0], sk[1]); got != want {
					t.Fatalf("step %d plane %d skips %v: GreedyVictim=%d naive=%d", step, pl, sk, got, want)
				}
				if got, want := a.FIFOVictim(pl, sk[0], sk[1]), naiveFIFO(a, pl, sk[0], sk[1]); got != want {
					t.Fatalf("step %d plane %d skips %v: FIFOVictim=%d naive=%d", step, pl, sk, got, want)
				}
			}
		}
	}

	for step := 0; step < 4000; step++ {
		bid := BlockID(rng.Int63n(geo.TotalBlocks()))
		switch rng.Intn(3) {
		case 0: // program the next page of a random non-full block
			if a.WritePtr(bid) < geo.PagesPerBlock {
				p := geo.FirstPage(bid) + PPN(a.WritePtr(bid))
				if err := a.Program(p, Tag{Kind: 1, Key: int64(p)}); err != nil {
					t.Fatal(err)
				}
			}
		case 1: // invalidate a random valid page of the block
			first := geo.FirstPage(bid)
			for i := 0; i < a.WritePtr(bid); i++ {
				p := first + PPN(i)
				if a.State(p) == PageValid && rng.Intn(2) == 0 {
					if err := a.Invalidate(p); err != nil {
						t.Fatal(err)
					}
					break
				}
			}
		case 2: // erase if no valid pages remain
			if a.ValidCount(bid) == 0 && a.WritePtr(bid) > 0 {
				if err := a.Erase(bid); err != nil {
					t.Fatal(err)
				}
			}
		}
		if step%50 == 0 {
			check(step)
		}
	}
	check(-1)
}

// Package flash models the NAND flash array of the simulated SSD: the
// channel→chip→die→plane→block→page hierarchy, the page/block state
// machines (erase-before-program, in-order programming within a block),
// per-page out-of-band back-pointers used by garbage collection, and
// per-block erase counters used as the endurance metric in the paper.
//
// The array stores metadata only — the simulator never materialises user
// data, because every result in the paper is a function of which pages are
// touched, not of their contents.
package flash

import (
	"fmt"

	"across/internal/ssdconf"
)

// PPN is a physical page number: a linear index over every page in the
// device. The mapping tables of all three FTL schemes resolve to PPNs.
type PPN int64

// NilPPN marks "no physical page", e.g. an unmapped logical page.
const NilPPN PPN = -1

// BlockID is a linear index over every block in the device.
type BlockID int64

// PlaneID is a linear index over every plane in the device. Planes are the
// allocation domains: each has its own free-block pool and active block.
type PlaneID int32

// ChipID is a linear index over the independently schedulable chips
// (channel × chip). The clock package keeps one timeline per ChipID.
type ChipID int32

// Geometry precomputes the address arithmetic for a configuration. All
// fields are derived; it is safe to copy.
type Geometry struct {
	PagesPerBlock  int
	BlocksPerPlane int
	Planes         int
	Chips          int
	planesPerChip  int
	pagesPerPlane  int64
	totalPages     int64
	totalBlocks    int64
}

// NewGeometry derives the address arithmetic from a validated Config.
func NewGeometry(c *ssdconf.Config) Geometry {
	g := Geometry{
		PagesPerBlock:  c.PagesPerBlock,
		BlocksPerPlane: c.BlocksPerPlane,
		Planes:         c.PlanesTotal(),
		Chips:          c.Chips(),
		planesPerChip:  c.DiesPerChip * c.PlanesPerDie,
	}
	g.pagesPerPlane = int64(c.BlocksPerPlane) * int64(c.PagesPerBlock)
	g.totalBlocks = int64(g.Planes) * int64(c.BlocksPerPlane)
	g.totalPages = g.totalBlocks * int64(c.PagesPerBlock)
	return g
}

// TotalPages returns the number of physical pages.
func (g *Geometry) TotalPages() int64 { return g.totalPages }

// TotalBlocks returns the number of physical blocks.
func (g *Geometry) TotalBlocks() int64 { return g.totalBlocks }

// BlockOf returns the block containing a page.
func (g *Geometry) BlockOf(p PPN) BlockID { return BlockID(int64(p) / int64(g.PagesPerBlock)) }

// PageIndexOf returns the page's index within its block (the program order).
func (g *Geometry) PageIndexOf(p PPN) int { return int(int64(p) % int64(g.PagesPerBlock)) }

// FirstPage returns the first page of a block.
func (g *Geometry) FirstPage(b BlockID) PPN { return PPN(int64(b) * int64(g.PagesPerBlock)) }

// PlaneOfBlock returns the plane that owns a block. Blocks are laid out
// contiguously per plane.
func (g *Geometry) PlaneOfBlock(b BlockID) PlaneID {
	return PlaneID(int64(b) / int64(g.BlocksPerPlane))
}

// PlaneOf returns the plane that owns a page.
func (g *Geometry) PlaneOf(p PPN) PlaneID { return g.PlaneOfBlock(g.BlockOf(p)) }

// ChipOfPlane returns the chip a plane belongs to. Plane indices are laid
// out channel-major, so consecutive plane indices within a chip are
// contiguous.
func (g *Geometry) ChipOfPlane(pl PlaneID) ChipID {
	return ChipID(int(pl) / g.planesPerChip)
}

// ChipOf returns the chip that services operations on a page.
func (g *Geometry) ChipOf(p PPN) ChipID { return g.ChipOfPlane(g.PlaneOf(p)) }

// ChannelOfChip returns the channel of a chip given chips per channel; it is
// only needed for reporting.
func ChannelOfChip(chip ChipID, chipsPerChan int) int { return int(chip) / chipsPerChan }

// BlocksOfPlane returns the half-open block-id range [lo, hi) of a plane.
func (g *Geometry) BlocksOfPlane(pl PlaneID) (lo, hi BlockID) {
	lo = BlockID(int64(pl) * int64(g.BlocksPerPlane))
	return lo, lo + BlockID(g.BlocksPerPlane)
}

// CheckPPN validates that a page number is inside the device.
func (g *Geometry) CheckPPN(p PPN) error {
	if p < 0 || int64(p) >= g.totalPages {
		return fmt.Errorf("flash: PPN %d out of range [0,%d)", p, g.totalPages)
	}
	return nil
}

// CheckBlock validates that a block number is inside the device.
func (g *Geometry) CheckBlock(b BlockID) error {
	if b < 0 || int64(b) >= g.totalBlocks {
		return fmt.Errorf("flash: block %d out of range [0,%d)", b, g.totalBlocks)
	}
	return nil
}

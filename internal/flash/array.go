package flash

import (
	"errors"
	"fmt"
	"math"

	"across/internal/ssdconf"
)

// PageState is the lifecycle state of one physical page.
type PageState uint8

const (
	// PageFree: erased and programmable (subject to in-order programming).
	PageFree PageState = iota
	// PageValid: programmed and holding live data.
	PageValid
	// PageInvalid: programmed but superseded; space reclaimed only by erase.
	PageInvalid
)

// String implements fmt.Stringer for diagnostics.
func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	}
	return fmt.Sprintf("PageState(%d)", uint8(s))
}

// Errors returned by array operations. Schemes treat these as programming
// bugs (the FTL must never issue an illegal NAND command), so tests assert
// on them directly.
var (
	ErrProgramOutOfOrder  = errors.New("flash: program out of order within block")
	ErrProgramNotFree     = errors.New("flash: programming a non-free page")
	ErrReadUnwritten      = errors.New("flash: reading an unwritten page")
	ErrEraseWithValid     = errors.New("flash: erasing a block with valid pages")
	ErrInvalidateNotValid = errors.New("flash: invalidating a non-valid page")
)

// Tag is the out-of-band metadata programmed with a page. Garbage collection
// reads it back to find the owner of a live page so the owning mapping
// structure can be updated after migration, and power-loss recovery scans it
// to rebuild the mapping tables at mount time. The interpretation of the
// fields is up to the FTL scheme (see ftl.TagKind).
type Tag struct {
	Kind uint8 // owner namespace (data page, across-area page, map page, ...)
	Key  int64 // owner key within the namespace (LPN, AMT index, map page id)
	Aux  int64 // scheme-specific extra (Across-FTL packs LPN/Off/Size here)
}

// NilTag is stored on free pages.
var NilTag = Tag{Kind: 0xFF, Key: -1}

// block is the per-block metadata: page states, OOB tags, the in-order
// program cursor and the erase counter.
type block struct {
	state      []PageState
	tags       []Tag
	writePtr   int   // next programmable page index; == len(state) when full
	validCount int   // pages in PageValid
	eraseCount int64 // endurance metric
}

// Array is the NAND flash array: pure state machine, no timing. Timing and
// operation counting live in the ftl.Device facade so that the same array
// can be driven by warm-up (untimed) and measured phases.
type Array struct {
	Geo    Geometry
	blocks []block

	erases int64 // total erase operations (the paper's endurance metric)
}

// NewArray builds an erased flash array for the configuration.
func NewArray(c *ssdconf.Config) (*Array, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	geo := NewGeometry(c)
	a := &Array{Geo: geo, blocks: make([]block, geo.TotalBlocks())}
	for i := range a.blocks {
		a.blocks[i] = block{
			state: make([]PageState, geo.PagesPerBlock),
			tags:  make([]Tag, geo.PagesPerBlock),
		}
		for j := range a.blocks[i].tags {
			a.blocks[i].tags[j] = NilTag
		}
	}
	return a, nil
}

// MustNewArray is NewArray for tests and examples with known-good configs.
func MustNewArray(c *ssdconf.Config) *Array {
	a, err := NewArray(c)
	if err != nil {
		panic(err)
	}
	return a
}

// State returns the state of a page.
func (a *Array) State(p PPN) PageState {
	b := &a.blocks[a.Geo.BlockOf(p)]
	return b.state[a.Geo.PageIndexOf(p)]
}

// TagOf returns the OOB tag of a page (NilTag if free).
func (a *Array) TagOf(p PPN) Tag {
	b := &a.blocks[a.Geo.BlockOf(p)]
	return b.tags[a.Geo.PageIndexOf(p)]
}

// Program writes one page with the given OOB tag. NAND constraints are
// enforced: the page must be free and must be the next page in its block's
// program order.
func (a *Array) Program(p PPN, tag Tag) error {
	if err := a.Geo.CheckPPN(p); err != nil {
		return err
	}
	b := &a.blocks[a.Geo.BlockOf(p)]
	idx := a.Geo.PageIndexOf(p)
	if b.state[idx] != PageFree {
		return fmt.Errorf("%w: ppn %d is %v", ErrProgramNotFree, p, b.state[idx])
	}
	if idx != b.writePtr {
		return fmt.Errorf("%w: ppn %d index %d, block cursor %d",
			ErrProgramOutOfOrder, p, idx, b.writePtr)
	}
	b.state[idx] = PageValid
	b.tags[idx] = tag
	b.writePtr++
	b.validCount++
	return nil
}

// Read checks that a page holds data (valid or stale). Reading invalid pages
// is physically possible and the merged-read path of Across-FTL never does
// it, but GC-era diagnostics may; only unwritten pages are an error.
func (a *Array) Read(p PPN) error {
	if err := a.Geo.CheckPPN(p); err != nil {
		return err
	}
	if a.State(p) == PageFree {
		return fmt.Errorf("%w: ppn %d", ErrReadUnwritten, p)
	}
	return nil
}

// Invalidate marks a previously valid page as superseded.
func (a *Array) Invalidate(p PPN) error {
	if err := a.Geo.CheckPPN(p); err != nil {
		return err
	}
	b := &a.blocks[a.Geo.BlockOf(p)]
	idx := a.Geo.PageIndexOf(p)
	if b.state[idx] != PageValid {
		return fmt.Errorf("%w: ppn %d is %v", ErrInvalidateNotValid, p, b.state[idx])
	}
	b.state[idx] = PageInvalid
	b.tags[idx] = NilTag
	b.validCount--
	return nil
}

// Erase resets a block to all-free. The FTL must migrate valid pages first;
// erasing live data is refused.
func (a *Array) Erase(bid BlockID) error {
	if err := a.Geo.CheckBlock(bid); err != nil {
		return err
	}
	b := &a.blocks[bid]
	if b.validCount != 0 {
		return fmt.Errorf("%w: block %d has %d valid pages", ErrEraseWithValid, bid, b.validCount)
	}
	for i := range b.state {
		b.state[i] = PageFree
		b.tags[i] = NilTag
	}
	b.writePtr = 0
	b.eraseCount++
	a.erases++
	return nil
}

// ValidCount returns the number of valid pages in a block (the GC victim
// metric).
func (a *Array) ValidCount(bid BlockID) int { return a.blocks[bid].validCount }

// WritePtr returns the block's program cursor; PagesPerBlock means full.
func (a *Array) WritePtr(bid BlockID) int { return a.blocks[bid].writePtr }

// FreeInBlock returns the number of still-programmable pages in a block.
func (a *Array) FreeInBlock(bid BlockID) int { return a.Geo.PagesPerBlock - a.blocks[bid].writePtr }

// EraseCount returns a block's erase counter.
func (a *Array) EraseCount(bid BlockID) int64 { return a.blocks[bid].eraseCount }

// TotalErases returns the device-wide erase count — the endurance indicator
// reported in Figs 11 and 14(b).
func (a *Array) TotalErases() int64 { return a.erases }

// CountStates tallies page states over the whole device; used by aging and
// by tests.
func (a *Array) CountStates() (free, valid, invalid int64) {
	for i := range a.blocks {
		b := &a.blocks[i]
		free += int64(len(b.state) - b.writePtr)
		valid += int64(b.validCount)
		invalid += int64(b.writePtr - b.validCount)
	}
	return
}

// WearStats summarises per-block erase counters: the wear-levelling view
// of the endurance metric (mean, spread, extremes over all blocks).
func (a *Array) WearStats() (mean, stddev float64, min, max int64) {
	if len(a.blocks) == 0 {
		return 0, 0, 0, 0
	}
	min = a.blocks[0].eraseCount
	max = min
	var sum float64
	for i := range a.blocks {
		e := a.blocks[i].eraseCount
		sum += float64(e)
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	mean = sum / float64(len(a.blocks))
	var ss float64
	for i := range a.blocks {
		d := float64(a.blocks[i].eraseCount) - mean
		ss += d * d
	}
	stddev = math.Sqrt(ss / float64(len(a.blocks)))
	return mean, stddev, min, max
}

// ValidPages lists the PPNs of valid pages in a block in program order,
// with their tags. GC uses it to migrate live data.
func (a *Array) ValidPages(bid BlockID) []PPN {
	b := &a.blocks[bid]
	var out []PPN
	first := a.Geo.FirstPage(bid)
	for i := 0; i < b.writePtr; i++ {
		if b.state[i] == PageValid {
			out = append(out, first+PPN(i))
		}
	}
	return out
}

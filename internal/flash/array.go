package flash

import (
	"errors"
	"fmt"
	"math"

	"across/internal/ssdconf"
)

// PageState is the lifecycle state of one physical page.
type PageState uint8

const (
	// PageFree: erased and programmable (subject to in-order programming).
	PageFree PageState = iota
	// PageValid: programmed and holding live data.
	PageValid
	// PageInvalid: programmed but superseded; space reclaimed only by erase.
	PageInvalid
)

// String implements fmt.Stringer for diagnostics.
func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	}
	return fmt.Sprintf("PageState(%d)", uint8(s))
}

// Errors returned by array operations. Schemes treat these as programming
// bugs (the FTL must never issue an illegal NAND command), so tests assert
// on them directly.
var (
	ErrProgramOutOfOrder  = errors.New("flash: program out of order within block")
	ErrProgramNotFree     = errors.New("flash: programming a non-free page")
	ErrReadUnwritten      = errors.New("flash: reading an unwritten page")
	ErrEraseWithValid     = errors.New("flash: erasing a block with valid pages")
	ErrInvalidateNotValid = errors.New("flash: invalidating a non-valid page")
)

// Tag is the out-of-band metadata programmed with a page. Garbage collection
// reads it back to find the owner of a live page so the owning mapping
// structure can be updated after migration, and power-loss recovery scans it
// to rebuild the mapping tables at mount time. The interpretation of the
// fields is up to the FTL scheme (see ftl.TagKind).
type Tag struct {
	Kind uint8 // owner namespace (data page, across-area page, map page, ...)
	Key  int64 // owner key within the namespace (LPN, AMT index, map page id)
	Aux  int64 // scheme-specific extra (Across-FTL packs LPN/Off/Size here)
}

// NilTag is stored on free pages.
var NilTag = Tag{Kind: 0xFF, Key: -1}

// Array is the NAND flash array: pure state machine, no timing. Timing and
// operation counting live in the ftl.Device facade so that the same array
// can be driven by warm-up (untimed) and measured phases.
//
// Storage is flattened into two contiguous device-wide arrays indexed by
// PPN (page states and OOB tags) plus three per-block metadata arrays
// indexed by BlockID. The flat layout keeps GC migration scans, recovery
// scans, CountStates and WearStats cache-friendly and makes the array
// itself allocation-free after construction.
type Array struct {
	Geo Geometry

	state []PageState // per page, indexed by PPN
	tags  []Tag       // per page, indexed by PPN

	writePtr   []int32 // per block: next programmable page index
	validCount []int32 // per block: pages in PageValid
	eraseCount []int64 // per block: endurance metric

	erases   int64 // total erase operations (the paper's endurance metric)
	programs int64 // total program operations (audit accounting identity)
	reads    int64 // total read operations (audit accounting identity)

	vidx victimIndex // incrementally maintained GC victim index
}

// NewArray builds an erased flash array for the configuration.
func NewArray(c *ssdconf.Config) (*Array, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	geo := NewGeometry(c)
	a := &Array{
		Geo:        geo,
		state:      make([]PageState, geo.TotalPages()),
		tags:       make([]Tag, geo.TotalPages()),
		writePtr:   make([]int32, geo.TotalBlocks()),
		validCount: make([]int32, geo.TotalBlocks()),
		eraseCount: make([]int64, geo.TotalBlocks()),
	}
	for i := range a.tags {
		a.tags[i] = NilTag
	}
	a.vidx.init(&geo)
	return a, nil
}

// MustNewArray is NewArray for tests and examples with known-good configs.
func MustNewArray(c *ssdconf.Config) *Array {
	a, err := NewArray(c)
	if err != nil {
		panic(err)
	}
	return a
}

// State returns the state of a page.
func (a *Array) State(p PPN) PageState { return a.state[p] }

// TagOf returns the OOB tag of a page (NilTag if free).
func (a *Array) TagOf(p PPN) Tag { return a.tags[p] }

// Program writes one page with the given OOB tag. NAND constraints are
// enforced: the page must be free and must be the next page in its block's
// program order.
func (a *Array) Program(p PPN, tag Tag) error {
	if err := a.Geo.CheckPPN(p); err != nil {
		return err
	}
	if a.state[p] != PageFree {
		return fmt.Errorf("%w: ppn %d is %v", ErrProgramNotFree, p, a.state[p])
	}
	bid := a.Geo.BlockOf(p)
	idx := a.Geo.PageIndexOf(p)
	if idx != int(a.writePtr[bid]) {
		return fmt.Errorf("%w: ppn %d index %d, block cursor %d",
			ErrProgramOutOfOrder, p, idx, a.writePtr[bid])
	}
	a.state[p] = PageValid
	a.tags[p] = tag
	a.writePtr[bid]++
	a.validCount[bid]++
	a.programs++
	if int(a.writePtr[bid]) == a.Geo.PagesPerBlock {
		// The block just became full: it is now a GC victim candidate.
		a.vidx.blockFilled(a.Geo.PlaneOfBlock(bid), bid, int(a.validCount[bid]))
	}
	return nil
}

// Read checks that a page holds data (valid or stale). Reading invalid pages
// is physically possible and the merged-read path of Across-FTL never does
// it, but GC-era diagnostics may; only unwritten pages are an error.
func (a *Array) Read(p PPN) error {
	if err := a.Geo.CheckPPN(p); err != nil {
		return err
	}
	if a.state[p] == PageFree {
		return fmt.Errorf("%w: ppn %d", ErrReadUnwritten, p)
	}
	a.reads++
	return nil
}

// Invalidate marks a previously valid page as superseded.
func (a *Array) Invalidate(p PPN) error {
	if err := a.Geo.CheckPPN(p); err != nil {
		return err
	}
	if a.state[p] != PageValid {
		return fmt.Errorf("%w: ppn %d is %v", ErrInvalidateNotValid, p, a.state[p])
	}
	bid := a.Geo.BlockOf(p)
	a.state[p] = PageInvalid
	a.tags[p] = NilTag
	a.validCount[bid]--
	if int(a.writePtr[bid]) == a.Geo.PagesPerBlock {
		a.vidx.blockValidDec(a.Geo.PlaneOfBlock(bid), bid, int(a.validCount[bid]))
	}
	return nil
}

// Erase resets a block to all-free. The FTL must migrate valid pages first;
// erasing live data is refused.
func (a *Array) Erase(bid BlockID) error {
	if err := a.Geo.CheckBlock(bid); err != nil {
		return err
	}
	if a.validCount[bid] != 0 {
		return fmt.Errorf("%w: block %d has %d valid pages", ErrEraseWithValid, bid, a.validCount[bid])
	}
	first := a.Geo.FirstPage(bid)
	end := first + PPN(a.Geo.PagesPerBlock)
	for p := first; p < end; p++ {
		a.state[p] = PageFree
		a.tags[p] = NilTag
	}
	if int(a.writePtr[bid]) == a.Geo.PagesPerBlock {
		a.vidx.blockErased(a.Geo.PlaneOfBlock(bid), bid)
	}
	a.writePtr[bid] = 0
	a.eraseCount[bid]++
	a.erases++
	return nil
}

// ValidCount returns the number of valid pages in a block (the GC victim
// metric).
func (a *Array) ValidCount(bid BlockID) int { return int(a.validCount[bid]) }

// WritePtr returns the block's program cursor; PagesPerBlock means full.
func (a *Array) WritePtr(bid BlockID) int { return int(a.writePtr[bid]) }

// FreeInBlock returns the number of still-programmable pages in a block.
func (a *Array) FreeInBlock(bid BlockID) int { return a.Geo.PagesPerBlock - int(a.writePtr[bid]) }

// EraseCount returns a block's erase counter.
func (a *Array) EraseCount(bid BlockID) int64 { return a.eraseCount[bid] }

// TotalErases returns the device-wide erase count — the endurance indicator
// reported in Figs 11 and 14(b).
func (a *Array) TotalErases() int64 { return a.erases }

// TotalPrograms returns the device-wide program count since construction.
// The verification layer checks it against the Device's attributed write
// counters, so nothing can program the array behind the accounting.
func (a *Array) TotalPrograms() int64 { return a.programs }

// TotalReads returns the device-wide read count since construction; the
// counterpart of TotalPrograms for the read-attribution identity.
func (a *Array) TotalReads() int64 { return a.reads }

// CountStates tallies page states over the whole device; used by aging and
// by tests. With the flattened layout this is a scan of the two per-block
// metadata arrays, not of every page.
func (a *Array) CountStates() (free, valid, invalid int64) {
	ppb := int64(a.Geo.PagesPerBlock)
	for bid := range a.writePtr {
		wp := int64(a.writePtr[bid])
		v := int64(a.validCount[bid])
		free += ppb - wp
		valid += v
		invalid += wp - v
	}
	return
}

// WearStats summarises per-block erase counters: the wear-levelling view
// of the endurance metric (mean, spread, extremes over all blocks).
func (a *Array) WearStats() (mean, stddev float64, min, max int64) {
	if len(a.eraseCount) == 0 {
		return 0, 0, 0, 0
	}
	min = a.eraseCount[0]
	max = min
	var sum float64
	for _, e := range a.eraseCount {
		sum += float64(e)
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	mean = sum / float64(len(a.eraseCount))
	var ss float64
	for _, e := range a.eraseCount {
		d := float64(e) - mean
		ss += d * d
	}
	stddev = math.Sqrt(ss / float64(len(a.eraseCount)))
	return mean, stddev, min, max
}

// ValidPages lists the PPNs of valid pages in a block in program order,
// with their tags. GC uses AppendValidPages with a reusable scratch buffer;
// this convenience wrapper allocates and suits recovery scans and tests.
func (a *Array) ValidPages(bid BlockID) []PPN {
	return a.AppendValidPages(nil, bid)
}

// AppendValidPages appends the PPNs of valid pages in a block, in program
// order, to dst and returns the extended slice. Passing dst[:0] makes the
// per-victim GC scan allocation-free in steady state.
func (a *Array) AppendValidPages(dst []PPN, bid BlockID) []PPN {
	first := a.Geo.FirstPage(bid)
	end := first + PPN(a.writePtr[bid])
	for p := first; p < end; p++ {
		if a.state[p] == PageValid {
			dst = append(dst, p)
		}
	}
	return dst
}

// GreedyVictim returns the full block in plane pl with the fewest valid
// pages (strictly fewer than PagesPerBlock — erasing an all-valid block
// gains nothing), breaking ties toward the lowest block id, and skipping
// the two active blocks. It returns -1 when no candidate exists. The
// lookup is O(1) amortised against the incrementally maintained index and
// selects exactly the block the reference O(blocks-per-plane) scan would.
func (a *Array) GreedyVictim(pl PlaneID, skip1, skip2 BlockID) BlockID {
	return a.vidx.greedy(pl, skip1, skip2)
}

// FIFOVictim returns the lowest-numbered full block in plane pl holding at
// least one reclaimable (non-valid) page, skipping the two active blocks;
// -1 when none exists. It matches the reference scan's VictimFIFO choice.
func (a *Array) FIFOVictim(pl PlaneID, skip1, skip2 BlockID) BlockID {
	return a.vidx.fifo(pl, skip1, skip2)
}

package flash

import "math/bits"

// victimIndex is the incrementally maintained GC victim index: for every
// plane it tracks the set of *full* blocks, bucketed by their valid-page
// count, as bitmaps over the plane's blocks. Greedy victim selection
// (fewest valid pages, lowest block id on ties) and FIFO selection (lowest
// block id with any reclaimable page) then resolve with a few word scans
// instead of an O(blocks-per-plane) pass over per-block counters.
//
// The index is updated on the three state transitions that can change
// victim candidacy:
//
//   - Program filling a block's last page inserts it (blockFilled);
//   - Invalidate on a full block moves it one bucket down (blockValidDec);
//   - Erase of a full block removes it (blockErased).
//
// Memory: (PagesPerBlock+2) bitmaps of BlocksPerPlane bits per plane —
// ~34 KiB per plane for the Table 1 geometry (4096 blocks x 64 pages).
type victimIndex struct {
	ppb            int // pages per block == number of buckets - 1
	blocksPerPlane int
	words          int // uint64 words per plane bitmap

	// buckets holds, for each plane, PagesPerBlock+1 bitmaps laid out
	// contiguously: bucket v marks the full blocks with exactly v valid
	// pages. backing is one allocation: plane-major, bucket-minor.
	buckets []uint64
	// reclaimable is the per-plane union of buckets 0..PagesPerBlock-1:
	// full blocks whose erase would yield net free space.
	reclaimable []uint64
	// minBucket is a per-plane lower bound on the smallest non-empty
	// bucket below PagesPerBlock; it is advanced lazily during lookups.
	minBucket []int
}

// init sizes the index for a geometry. All blocks start erased, so every
// bitmap starts empty.
func (vi *victimIndex) init(g *Geometry) {
	vi.ppb = g.PagesPerBlock
	vi.blocksPerPlane = g.BlocksPerPlane
	vi.words = (g.BlocksPerPlane + 63) / 64
	vi.buckets = make([]uint64, g.Planes*(vi.ppb+1)*vi.words)
	vi.reclaimable = make([]uint64, g.Planes*vi.words)
	vi.minBucket = make([]int, g.Planes)
	for pl := range vi.minBucket {
		vi.minBucket[pl] = vi.ppb
	}
}

// bucket returns the bitmap words of one plane's bucket v.
func (vi *victimIndex) bucket(pl PlaneID, v int) []uint64 {
	off := (int(pl)*(vi.ppb+1) + v) * vi.words
	return vi.buckets[off : off+vi.words]
}

// reclaim returns one plane's reclaimable bitmap words.
func (vi *victimIndex) reclaim(pl PlaneID) []uint64 {
	off := int(pl) * vi.words
	return vi.reclaimable[off : off+vi.words]
}

// bitOf returns the word index and mask of a block within its plane bitmap.
func (vi *victimIndex) bitOf(pl PlaneID, b BlockID) (int, uint64) {
	in := int(b) - int(pl)*vi.blocksPerPlane
	return in >> 6, 1 << (uint(in) & 63)
}

// blockFilled inserts a block that just became full with the given valid
// count.
func (vi *victimIndex) blockFilled(pl PlaneID, b BlockID, valid int) {
	w, m := vi.bitOf(pl, b)
	vi.bucket(pl, valid)[w] |= m
	if valid < vi.ppb {
		vi.reclaim(pl)[w] |= m
		if valid < vi.minBucket[pl] {
			vi.minBucket[pl] = valid
		}
	}
}

// blockValidDec moves a full block from bucket valid+1 to bucket valid
// after one of its pages was invalidated.
func (vi *victimIndex) blockValidDec(pl PlaneID, b BlockID, valid int) {
	w, m := vi.bitOf(pl, b)
	vi.bucket(pl, valid+1)[w] &^= m
	vi.bucket(pl, valid)[w] |= m
	if valid+1 == vi.ppb {
		// The block left the all-valid bucket: it is now reclaimable.
		vi.reclaim(pl)[w] |= m
	}
	if valid < vi.minBucket[pl] {
		vi.minBucket[pl] = valid
	}
}

// blockErased removes a full block (necessarily with zero valid pages)
// from the index.
func (vi *victimIndex) blockErased(pl PlaneID, b BlockID) {
	w, m := vi.bitOf(pl, b)
	vi.bucket(pl, 0)[w] &^= m
	vi.reclaim(pl)[w] &^= m
}

// lowestBit returns the lowest set bit of the bitmap as an in-plane block
// index, clearing nothing, with up to two excluded positions (pass -1 to
// disable an exclusion); -1 when no eligible bit is set.
func lowestBit(words []uint64, ex1, ex2 int) int {
	for wi, w := range words {
		if w == 0 {
			continue
		}
		base := wi << 6
		if ex1 >= base && ex1 < base+64 {
			w &^= 1 << uint(ex1-base)
		}
		if ex2 >= base && ex2 < base+64 {
			w &^= 1 << uint(ex2-base)
		}
		if w != 0 {
			return base + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// inPlane converts a block id to its in-plane bit position, or -1 when the
// block does not belong to the plane.
func (vi *victimIndex) inPlane(pl PlaneID, b BlockID) int {
	if b < 0 {
		return -1
	}
	in := int(b) - int(pl)*vi.blocksPerPlane
	if in < 0 || in >= vi.blocksPerPlane {
		return -1
	}
	return in
}

// greedy returns the full block with the fewest valid pages (< ppb) in the
// plane, lowest block id on ties, excluding up to two blocks; -1 if none.
func (vi *victimIndex) greedy(pl PlaneID, skip1, skip2 BlockID) BlockID {
	ex1 := vi.inPlane(pl, skip1)
	ex2 := vi.inPlane(pl, skip2)
	planeBase := BlockID(int(pl) * vi.blocksPerPlane)
	advance := true
	for v := vi.minBucket[pl]; v < vi.ppb; v++ {
		words := vi.bucket(pl, v)
		empty := true
		for _, w := range words {
			if w != 0 {
				empty = false
				break
			}
		}
		if empty {
			// Advance the lower bound while the scan only met empty
			// buckets; a bucket holding only excluded blocks stops it.
			if advance {
				vi.minBucket[pl] = v + 1
			}
			continue
		}
		advance = false
		if in := lowestBit(words, ex1, ex2); in >= 0 {
			return planeBase + BlockID(in)
		}
	}
	return -1
}

// fifo returns the lowest-numbered full block with at least one
// reclaimable page, excluding up to two blocks; -1 if none.
func (vi *victimIndex) fifo(pl PlaneID, skip1, skip2 BlockID) BlockID {
	ex1 := vi.inPlane(pl, skip1)
	ex2 := vi.inPlane(pl, skip2)
	if in := lowestBit(vi.reclaim(pl), ex1, ex2); in >= 0 {
		return BlockID(int(pl)*vi.blocksPerPlane + in)
	}
	return -1
}

package flash

import (
	"fmt"

	"across/internal/snapshot"
)

// SnapshotState appends the array's complete mutable state: page states and
// OOB tags, per-block write pointers / valid counts / erase counts, and the
// device-wide operation totals. The victim index is derived state and is
// rebuilt on restore rather than serialised (its lazily advanced minBucket
// lower bound does not affect victim selection, so a rebuilt index is
// selection-equivalent to the live one).
func (a *Array) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("flash")
	states := make([]byte, len(a.state))
	for i, st := range a.state {
		states[i] = byte(st)
	}
	enc.Bytes(states)
	kinds := make([]byte, len(a.tags))
	keys := make([]int64, len(a.tags))
	aux := make([]int64, len(a.tags))
	for i, tg := range a.tags {
		kinds[i], keys[i], aux[i] = tg.Kind, tg.Key, tg.Aux
	}
	enc.Bytes(kinds)
	enc.I64s(keys)
	enc.I64s(aux)
	enc.I32s(a.writePtr)
	enc.I32s(a.validCount)
	enc.I64s(a.eraseCount)
	enc.I64(a.erases)
	enc.I64(a.programs)
	enc.I64(a.reads)
	return nil
}

// RestoreState reads state written by SnapshotState into an array built for
// the same geometry, validating sizes and per-page/per-block invariants,
// then rebuilds the victim index from the restored block metadata.
func (a *Array) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("flash")
	states := dec.Bytes()
	kinds := dec.Bytes()
	keys := dec.I64s()
	aux := dec.I64s()
	writePtr := dec.I32s()
	validCount := dec.I32s()
	eraseCount := dec.I64s()
	erases := dec.I64()
	programs := dec.I64()
	reads := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}

	pages, blocks := int(a.Geo.TotalPages()), int(a.Geo.TotalBlocks())
	if len(states) != pages || len(kinds) != pages || len(keys) != pages || len(aux) != pages {
		return fmt.Errorf("flash: snapshot page arrays sized %d/%d/%d/%d, geometry has %d pages",
			len(states), len(kinds), len(keys), len(aux), pages)
	}
	if len(writePtr) != blocks || len(validCount) != blocks || len(eraseCount) != blocks {
		return fmt.Errorf("flash: snapshot block arrays sized %d/%d/%d, geometry has %d blocks",
			len(writePtr), len(validCount), len(eraseCount), blocks)
	}
	for i, st := range states {
		if PageState(st) > PageInvalid {
			return fmt.Errorf("flash: snapshot page %d has invalid state %d", i, st)
		}
	}
	ppb := int32(a.Geo.PagesPerBlock)
	for b := range writePtr {
		if writePtr[b] < 0 || writePtr[b] > ppb {
			return fmt.Errorf("flash: snapshot block %d write pointer %d outside [0,%d]", b, writePtr[b], ppb)
		}
		if validCount[b] < 0 || validCount[b] > writePtr[b] {
			return fmt.Errorf("flash: snapshot block %d valid count %d outside [0,%d]", b, validCount[b], writePtr[b])
		}
		if eraseCount[b] < 0 {
			return fmt.Errorf("flash: snapshot block %d negative erase count", b)
		}
	}

	for i := range a.state {
		a.state[i] = PageState(states[i])
		a.tags[i] = Tag{Kind: kinds[i], Key: keys[i], Aux: aux[i]}
	}
	copy(a.writePtr, writePtr)
	copy(a.validCount, validCount)
	copy(a.eraseCount, eraseCount)
	a.erases, a.programs, a.reads = erases, programs, reads

	a.vidx.init(&a.Geo)
	for b := range a.writePtr {
		if a.writePtr[b] == ppb {
			bid := BlockID(b)
			a.vidx.blockFilled(a.Geo.PlaneOfBlock(bid), bid, int(a.validCount[b]))
		}
	}
	return nil
}

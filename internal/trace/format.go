package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// maxRequestBytes caps one request's byte span. Real block traces top out in
// the low megabytes; anything beyond this is trace corruption (and, before
// the cap existed, a route to int64 overflow in the sector arithmetic).
const maxRequestBytes int64 = 1 << 30

// byteRangeToSectors converts a byte extent to whole sectors, rounding
// outwards like a block layer. It rejects the degenerate and overflowing
// extents fuzzed trace files produce: non-positive sizes, negative offsets,
// implausibly large requests, and offset+size sums past int64.
func byteRangeToSectors(offB, sizeB int64) (startSec int64, count int, err error) {
	if sizeB <= 0 {
		return 0, 0, fmt.Errorf("non-positive size %d", sizeB)
	}
	if offB < 0 {
		return 0, 0, fmt.Errorf("negative offset %d", offB)
	}
	if sizeB > maxRequestBytes {
		return 0, 0, fmt.Errorf("implausible size %d bytes (cap %d)", sizeB, maxRequestBytes)
	}
	if offB > math.MaxInt64-sizeB-511 {
		return 0, 0, fmt.Errorf("offset %d + size %d overflows the byte address space", offB, sizeB)
	}
	startSec = offB / 512
	endSec := (offB + sizeB + 511) / 512
	return startSec, int(endSec - startSec), nil
}

// The SYSTOR '17 LUN collection stores one request per CSV line:
//
//	timestamp,response_time,io_type,lun,offset,size
//
// with the timestamp in seconds (epoch or relative), response time in
// seconds (often empty), io_type "R"/"W", offset and size in bytes.
// Reader accepts that format (ignoring the recorded response time, which the
// simulator recomputes) and Writer emits it, so real LUN traces drop in
// unchanged and generated traces can be inspected with standard tools.

// Reader parses a SYSTOR-format trace stream.
type Reader struct {
	s        *bufio.Scanner
	line     int
	baseTime float64
	started  bool
}

// NewReader wraps an io.Reader holding CSV trace text.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Reader{s: s}
}

// Read returns the next request, io.EOF at end of stream, or a descriptive
// error naming the offending line. Timestamps are rebased so the first
// request arrives at t=0, and converted from seconds to milliseconds.
func (r *Reader) Read() (Request, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := r.parse(line)
		if err != nil {
			return Request{}, fmt.Errorf("trace: line %d: %w", r.line, err)
		}
		return req, nil
	}
	if err := r.s.Err(); err != nil {
		return Request{}, err
	}
	return Request{}, io.EOF
}

func (r *Reader) parse(line string) (Request, error) {
	f := strings.Split(line, ",")
	if len(f) != 6 {
		return Request{}, fmt.Errorf("want 6 comma-separated fields, got %d", len(f))
	}
	ts, err := strconv.ParseFloat(strings.TrimSpace(f[0]), 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad timestamp %q: %v", f[0], err)
	}
	if math.IsNaN(ts) || math.IsInf(ts, 0) {
		return Request{}, fmt.Errorf("non-finite timestamp %q", f[0])
	}
	var op Op
	switch strings.ToUpper(strings.TrimSpace(f[2])) {
	case "R":
		op = OpRead
	case "W":
		op = OpWrite
	default:
		return Request{}, fmt.Errorf("bad io_type %q (want R or W)", f[2])
	}
	offB, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad offset %q: %v", f[4], err)
	}
	sizeB, err := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad size %q: %v", f[5], err)
	}
	startSec, count, err := byteRangeToSectors(offB, sizeB)
	if err != nil {
		return Request{}, err
	}
	if !r.started {
		r.baseTime = ts
		r.started = true
	}
	return Request{
		Time:   (ts - r.baseTime) * 1000, // s -> ms, rebased
		Op:     op,
		Offset: startSec,
		Count:  count,
	}, nil
}

// ReadAllAuto slurps an entire trace, sniffing the format (SYSTOR '17 or
// MSR Cambridge) from the first non-empty, non-comment line.
func ReadAllAuto(r io.Reader) ([]Request, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	first := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && line[0] != '#' {
			first = line
			break
		}
	}
	format, err := DetectFormat(first)
	if err != nil {
		return nil, err
	}
	if format == "msr" {
		return ReadAllMSR(strings.NewReader(string(data)))
	}
	return ReadAll(strings.NewReader(string(data)))
}

// ReadAll slurps an entire trace.
func ReadAll(r io.Reader) ([]Request, error) {
	tr := NewReader(r)
	var out []Request
	for {
		req, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
}

// Writer emits requests in the SYSTOR CSV format.
type Writer struct {
	w   *bufio.Writer
	lun int
}

// NewWriter creates a Writer; lun fills the trace's LUN column.
func NewWriter(w io.Writer, lun int) *Writer {
	return &Writer{w: bufio.NewWriter(w), lun: lun}
}

// Write emits one request.
func (w *Writer) Write(req Request) error {
	_, err := fmt.Fprintf(w.w, "%.6f,%.6f,%s,%d,%d,%d\n",
		req.Time/1000, 0.0, req.Op, w.lun, req.Offset*512, int64(req.Count)*512)
	return err
}

// Flush flushes buffered output; call it once after the last Write.
func (w *Writer) Flush() error { return w.w.Flush() }

package trace

import (
	"math"
	"strings"
	"testing"
)

// checkParsed asserts the invariants every successfully parsed request must
// satisfy, whatever bytes the fuzzer fed in: a recognised op, non-negative
// sector offset, positive bounded sector count, and a finite timestamp.
func checkParsed(t *testing.T, reqs []Request) {
	t.Helper()
	for i, r := range reqs {
		if r.Op != OpRead && r.Op != OpWrite {
			t.Errorf("request %d: unknown op %d", i, r.Op)
		}
		if r.Offset < 0 {
			t.Errorf("request %d: negative offset %d", i, r.Offset)
		}
		if r.Count <= 0 {
			t.Errorf("request %d: non-positive count %d", i, r.Count)
		}
		if int64(r.Count)*512 > maxRequestBytes+512 {
			t.Errorf("request %d: count %d sectors exceeds the request cap", i, r.Count)
		}
		if math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
			t.Errorf("request %d: non-finite time %v", i, r.Time)
		}
	}
}

// FuzzSystorReader feeds arbitrary text to the SYSTOR '17 parser: it must
// never panic, and everything it accepts must be a well-formed request.
func FuzzSystorReader(f *testing.F) {
	for _, seed := range []string{
		"0.0,0.0,W,0,0,4096\n",
		"1.5,0.0,R,1,8192,512\n0.0,0.0,W,0,0,1024\n",
		"# comment\n\n2.0,0.1,w,3,1048576,65536\n",
		"0.0,0.0,W,0,0,4096\r\n1.0,0.0,R,0,4096,4096\r\n",
		"garbage\n",
		"0.0,0.0,W,0,9223372036854775000,4096\n",
		"NaN,0.0,W,0,0,4096\n",
		"0.0,0.0,W,0,0,-1\n",
		"0.0,0.0,X,0,0,4096\n",
		",,,,,\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		reqs, err := ReadAll(strings.NewReader(data))
		if err != nil {
			return // rejected input: the parser's prerogative
		}
		checkParsed(t, reqs)
	})
}

// FuzzMSRReader does the same for the MSR Cambridge parser.
func FuzzMSRReader(f *testing.F) {
	for _, seed := range []string{
		"128166372003061629,hm,0,Read,0,4096,1000\n",
		"128166372003061629,hm,0,Write,8192,512,1000\n128166372013061629,hm,0,Read,0,1024,1000\n",
		"# comment\n128166372003061629,srv,1,write,1048576,65536,0\n",
		"128166372003061629,hm,0,Read,0,4096,1000\r\n",
		"garbage,with,seven,fields,in,this,line\n",
		"1,h,0,Write,9223372036854775000,4096,0\n",
		"1,h,0,Write,0,-4096,0\n",
		"1,h,0,Flush,0,4096,0\n",
		",,,,,,\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		reqs, err := ReadAllMSR(strings.NewReader(data))
		if err != nil {
			return
		}
		checkParsed(t, reqs)
	})
}

// TestParserRejectsOverflowingExtents pins the regression the fuzzer first
// surfaced: offsets near MaxInt64 used to wrap to a negative sector count
// instead of producing an error.
func TestParserRejectsOverflowingExtents(t *testing.T) {
	cases := []struct{ name, line string }{
		{"systor-offset-overflow", "0.0,0.0,W,0,9223372036854775000,4096"},
		{"systor-huge-size", "0.0,0.0,W,0,0,9223372036854775000"},
		{"systor-nan-timestamp", "NaN,0.0,W,0,0,4096"},
		{"systor-inf-timestamp", "+Inf,0.0,W,0,0,4096"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadAll(strings.NewReader(tc.line + "\n")); err == nil {
				t.Fatalf("accepted %q", tc.line)
			}
		})
	}
	msr := []struct{ name, line string }{
		{"msr-offset-overflow", "1,h,0,Write,9223372036854775000,4096,0"},
		{"msr-huge-size", "1,h,0,Write,0,9223372036854775000,0"},
	}
	for _, tc := range msr {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadAllMSR(strings.NewReader(tc.line + "\n")); err == nil {
				t.Fatalf("accepted %q", tc.line)
			}
		})
	}
}

// TestParserAcceptsCRLF: traces saved on Windows parse identically to their
// LF forms.
func TestParserAcceptsCRLF(t *testing.T) {
	lf, err := ReadAll(strings.NewReader("0.0,0.0,W,0,0,4096\n1.0,0.0,R,0,4096,4096\n"))
	if err != nil {
		t.Fatal(err)
	}
	crlf, err := ReadAll(strings.NewReader("0.0,0.0,W,0,0,4096\r\n1.0,0.0,R,0,4096,4096\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(lf) != len(crlf) {
		t.Fatalf("LF parsed %d requests, CRLF %d", len(lf), len(crlf))
	}
	for i := range lf {
		if lf[i] != crlf[i] {
			t.Errorf("request %d: LF %+v vs CRLF %+v", i, lf[i], crlf[i])
		}
	}
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The MSR Cambridge block traces (SNIA IOTTA) are the other widely used
// public collection; supporting their format lets the simulator replay them
// directly. One request per CSV line:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// with Timestamp in Windows filetime (100 ns ticks since 1601), Type
// "Read"/"Write", Offset and Size in bytes, ResponseTime in 100 ns ticks
// (ignored; the simulator recomputes response times).

// windowsTick is the filetime resolution in milliseconds.
const windowsTick = 1e-4 // 100 ns

// MSRReader parses an MSR Cambridge-format trace stream.
type MSRReader struct {
	s        *bufio.Scanner
	line     int
	baseTime float64
	started  bool
}

// NewMSRReader wraps an io.Reader holding MSR CSV trace text.
func NewMSRReader(r io.Reader) *MSRReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1024*1024)
	return &MSRReader{s: s}
}

// Read returns the next request, io.EOF at end of stream, or an error
// naming the offending line. Timestamps are rebased to t=0 and converted
// to milliseconds.
func (r *MSRReader) Read() (Request, error) {
	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := r.parse(line)
		if err != nil {
			return Request{}, fmt.Errorf("trace: msr line %d: %w", r.line, err)
		}
		return req, nil
	}
	if err := r.s.Err(); err != nil {
		return Request{}, err
	}
	return Request{}, io.EOF
}

func (r *MSRReader) parse(line string) (Request, error) {
	f := strings.Split(line, ",")
	if len(f) != 7 {
		return Request{}, fmt.Errorf("want 7 comma-separated fields, got %d", len(f))
	}
	ticks, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad timestamp %q: %v", f[0], err)
	}
	var op Op
	switch strings.ToLower(strings.TrimSpace(f[3])) {
	case "read", "r":
		op = OpRead
	case "write", "w":
		op = OpWrite
	default:
		return Request{}, fmt.Errorf("bad type %q (want Read or Write)", f[3])
	}
	offB, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad offset %q: %v", f[4], err)
	}
	sizeB, err := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("bad size %q: %v", f[5], err)
	}
	startSec, count, err := byteRangeToSectors(offB, sizeB)
	if err != nil {
		return Request{}, err
	}
	t := float64(ticks) * windowsTick
	if !r.started {
		r.baseTime = t
		r.started = true
	}
	return Request{
		Time:   t - r.baseTime,
		Op:     op,
		Offset: startSec,
		Count:  count,
	}, nil
}

// ReadAllMSR slurps an entire MSR-format trace.
func ReadAllMSR(r io.Reader) ([]Request, error) {
	tr := NewMSRReader(r)
	var out []Request
	for {
		req, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
}

// DetectFormat sniffs whether trace text is SYSTOR (6 fields, R/W in field
// 3) or MSR (7 fields, Read/Write in field 4); it returns "systor", "msr"
// or an error. Only the first non-empty line is examined.
func DetectFormat(firstLine string) (string, error) {
	f := strings.Split(strings.TrimSpace(firstLine), ",")
	switch len(f) {
	case 6:
		return "systor", nil
	case 7:
		return "msr", nil
	}
	return "", fmt.Errorf("trace: unrecognised format (%d fields)", len(f))
}

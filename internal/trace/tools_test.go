package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleTrace() []Request {
	return []Request{
		{Time: 0, Op: OpWrite, Offset: 2056, Count: 12},  // across write
		{Time: 10, Op: OpRead, Offset: 2060, Count: 8},   // across read
		{Time: 20, Op: OpWrite, Offset: 2048, Count: 16}, // aligned write
		{Time: 30, Op: OpRead, Offset: 0, Count: 4},      // unaligned read
		{Time: 40, Op: OpWrite, Offset: 4096, Count: 32}, // aligned write
	}
}

func TestFilterAndOnlyOp(t *testing.T) {
	reqs := sampleTrace()
	writes := OnlyOp(reqs, OpWrite)
	if len(writes) != 3 {
		t.Fatalf("writes = %d, want 3", len(writes))
	}
	reads := OnlyOp(reqs, OpRead)
	if len(reads) != 2 {
		t.Fatalf("reads = %d, want 2", len(reads))
	}
	if len(Filter(reqs, func(Request) bool { return false })) != 0 {
		t.Fatal("Filter(false) not empty")
	}
	// Non-destructive.
	if reqs[0].Time != 0 || len(reqs) != 5 {
		t.Fatal("Filter mutated input")
	}
}

func TestOnlyClass(t *testing.T) {
	reqs := sampleTrace()
	across := OnlyClass(reqs, ClassAcross, 16)
	if len(across) != 2 {
		t.Fatalf("across = %d, want 2", len(across))
	}
	aligned := OnlyClass(reqs, ClassAligned, 16)
	if len(aligned) != 2 {
		t.Fatalf("aligned = %d, want 2", len(aligned))
	}
	if len(OnlyClass(reqs, ClassUnaligned, 16)) != 1 {
		t.Fatal("unaligned count wrong")
	}
}

func TestWindowRebasesTime(t *testing.T) {
	reqs := sampleTrace()
	w := Window(reqs, 10, 40)
	if len(w) != 3 {
		t.Fatalf("window = %d requests, want 3", len(w))
	}
	if w[0].Time != 0 || w[2].Time != 20 {
		t.Fatalf("window not rebased: %v, %v", w[0].Time, w[2].Time)
	}
}

func TestHead(t *testing.T) {
	reqs := sampleTrace()
	if len(Head(reqs, 2)) != 2 {
		t.Fatal("Head(2) wrong")
	}
	if len(Head(reqs, 99)) != 5 {
		t.Fatal("Head beyond length should clamp")
	}
	h := Head(reqs, 1)
	h[0].Time = 999
	if reqs[0].Time == 999 {
		t.Fatal("Head aliases input")
	}
}

func TestConcatRebasesSequentially(t *testing.T) {
	a := []Request{{Time: 0, Op: OpWrite, Offset: 0, Count: 8}, {Time: 5, Op: OpWrite, Offset: 8, Count: 8}}
	b := []Request{{Time: 0, Op: OpRead, Offset: 16, Count: 8}}
	out := Concat(100, a, b)
	if len(out) != 3 {
		t.Fatalf("Concat len = %d", len(out))
	}
	if out[2].Time != 105 {
		t.Fatalf("second trace starts at %v, want 105 (5 + gap 100)", out[2].Time)
	}
}

func TestInterleaveSortsByTime(t *testing.T) {
	a := []Request{{Time: 0, Offset: 1, Count: 1}, {Time: 20, Offset: 2, Count: 1}}
	b := []Request{{Time: 10, Offset: 3, Count: 1}, {Time: 30, Offset: 4, Count: 1}}
	out := Interleave(a, b)
	wantOffsets := []int64{1, 3, 2, 4}
	for i, w := range wantOffsets {
		if out[i].Offset != w {
			t.Fatalf("Interleave order = %v", out)
		}
	}
}

func TestShiftOffsets(t *testing.T) {
	reqs := sampleTrace()
	shifted := ShiftOffsets(reqs, 1000)
	if shifted[0].Offset != 3056 {
		t.Fatalf("shift failed: %d", shifted[0].Offset)
	}
	if reqs[0].Offset != 2056 {
		t.Fatal("ShiftOffsets mutated input")
	}
}

func TestValidateAll(t *testing.T) {
	reqs := sampleTrace()
	if i, err := ValidateAll(reqs, 1<<20); i != -1 || err != nil {
		t.Fatalf("valid trace rejected at %d: %v", i, err)
	}
	bad := append(sampleTrace(), Request{Time: 50, Offset: -1, Count: 4})
	if i, err := ValidateAll(bad, 1<<20); i != 5 || err == nil {
		t.Fatalf("invalid request not found: i=%d err=%v", i, err)
	}
}

// Property: Window ∘ Concat of disjoint windows recovers the pieces, and
// Interleave preserves every request exactly once.
func TestToolsConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b []Request
		ta, tb := 0.0, 0.0
		for i := 0; i < 30; i++ {
			ta += rng.Float64() * 5
			tb += rng.Float64() * 5
			a = append(a, Request{Time: ta, Offset: rng.Int63n(1000), Count: 1 + rng.Intn(8)})
			b = append(b, Request{Time: tb, Offset: rng.Int63n(1000), Count: 1 + rng.Intn(8)})
		}
		merged := Interleave(a, b)
		if len(merged) != len(a)+len(b) {
			return false
		}
		for i := 1; i < len(merged); i++ {
			if merged[i].Time < merged[i-1].Time {
				return false
			}
		}
		// Sector volume is conserved by all tools.
		vol := func(rs []Request) int64 {
			var v int64
			for _, r := range rs {
				v += int64(r.Count)
			}
			return v
		}
		if vol(merged) != vol(a)+vol(b) {
			return false
		}
		return vol(ShiftOffsets(merged, 5000)) == vol(merged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

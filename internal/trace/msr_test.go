package trace

import (
	"io"
	"strings"
	"testing"
)

func TestMSRReaderParses(t *testing.T) {
	in := `# header comment
128166372003061629,hm,0,Read,1052672,4096,4325
128166372013061629,hm,0,Write,1052672,6144,1234
`
	reqs, err := ReadAllMSR(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadAllMSR: %v", err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	if reqs[0].Time != 0 {
		t.Errorf("first timestamp should rebase to 0, got %v", reqs[0].Time)
	}
	if reqs[0].Op != OpRead || reqs[0].Offset != 1052672/512 || reqs[0].Count != 8 {
		t.Errorf("r0 = %+v", reqs[0])
	}
	// 10^7 ticks = 1 s = 1000 ms.
	if reqs[1].Time < 999.9 || reqs[1].Time > 1000.1 {
		t.Errorf("r1.Time = %v ms, want ~1000", reqs[1].Time)
	}
	if reqs[1].Op != OpWrite || reqs[1].Count != 12 {
		t.Errorf("r1 = %+v", reqs[1])
	}
}

func TestMSRReaderShortTypeForms(t *testing.T) {
	reqs, err := ReadAllMSR(strings.NewReader("0,h,0,W,0,512,0\n1,h,0,r,512,512,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].Op != OpWrite || reqs[1].Op != OpRead {
		t.Fatalf("short forms parsed wrong: %+v", reqs)
	}
}

func TestMSRReaderRejectsCorruptLines(t *testing.T) {
	bad := []string{
		"1,2,3,4,5,6\n",              // six fields (SYSTOR shape)
		"x,h,0,Read,0,512,0\n",       // bad timestamp
		"0,h,0,Flush,0,512,0\n",      // bad type
		"0,h,0,Read,abc,512,0\n",     // bad offset
		"0,h,0,Read,0,xyz,0\n",       // bad size
		"0,h,0,Read,0,0,0\n",         // zero size
		"0,h,0,Read,-512,512,0\n",    // negative offset
		"0,h,0,Read,0,512,0,extra\n", // eight fields
	}
	for _, in := range bad {
		if _, err := ReadAllMSR(strings.NewReader(in)); err == nil {
			t.Errorf("corrupt line accepted: %q", in)
		}
	}
}

func TestMSRReaderEOF(t *testing.T) {
	r := NewMSRReader(strings.NewReader("\n\n"))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestDetectFormat(t *testing.T) {
	if f, err := DetectFormat("0,0,R,0,0,512"); err != nil || f != "systor" {
		t.Errorf("systor detection = (%q,%v)", f, err)
	}
	if f, err := DetectFormat("0,h,0,Read,0,512,0"); err != nil || f != "msr" {
		t.Errorf("msr detection = (%q,%v)", f, err)
	}
	if _, err := DetectFormat("just,three,fields"); err == nil {
		t.Error("bogus format accepted")
	}
}

func TestMSRAndSystorAgreeOnEquivalentTraces(t *testing.T) {
	systor := "100.0,0,W,0,1052672,6144\n100.5,0,R,0,1052672,4096\n"
	msr := "1000000000,h,0,Write,1052672,6144,0\n1005000000,h,0,Read,1052672,4096,0\n"
	a, err := ReadAll(strings.NewReader(systor))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadAllMSR(strings.NewReader(msr))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Op != b[i].Op || a[i].Offset != b[i].Offset || a[i].Count != b[i].Count {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if d := a[i].Time - b[i].Time; d > 0.01 || d < -0.01 {
			t.Fatalf("request %d times differ: %v vs %v", i, a[i].Time, b[i].Time)
		}
	}
}

package trace

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// The 8 KB page of Table 1 holds 16 sectors.
const spp8k = 16

func TestClassifyPaperFigure1Examples(t *testing.T) {
	// Figure 1 of the paper, page size 8 KB. Addresses in KB * 2 sectors.
	cases := []struct {
		name string
		req  Request
		want Class
	}{
		{"write(1024K,24KB) aligned", Request{Op: OpWrite, Offset: 2048, Count: 48}, ClassAligned},
		{"write(1028K,20KB) unaligned", Request{Op: OpWrite, Offset: 2056, Count: 40}, ClassUnaligned},
		{"write(1028K,8KB) across-page", Request{Op: OpWrite, Offset: 2056, Count: 16}, ClassAcross},
		{"write(1028K,6K) across-page (Fig 3)", Request{Op: OpWrite, Offset: 2056, Count: 12}, ClassAcross},
		{"read(1030K,4K) across-page (Fig 7a)", Request{Op: OpRead, Offset: 2060, Count: 8}, ClassAcross},
		{"sub-page single-page write", Request{Op: OpWrite, Offset: 2048, Count: 4}, ClassUnaligned},
		{"full single page", Request{Op: OpWrite, Offset: 2048, Count: 16}, ClassAligned},
		{"page-sized but across", Request{Op: OpWrite, Offset: 2052, Count: 16}, ClassAcross},
		{"three pages", Request{Op: OpWrite, Offset: 2052, Count: 40}, ClassUnaligned},
	}
	for _, tc := range cases {
		if got := tc.req.Classify(spp8k); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassifyDegenerate(t *testing.T) {
	if got := (Request{Count: 0}).Classify(spp8k); got != ClassUnaligned {
		t.Errorf("zero-count request classified %v", got)
	}
}

func TestPagesAndLPNs(t *testing.T) {
	r := Request{Offset: 2056, Count: 12} // write(1028K, 6K)
	if r.FirstLPN(spp8k) != 128 || r.LastLPN(spp8k) != 129 {
		t.Fatalf("LPNs = %d..%d, want 128..129 (paper Fig 3)", r.FirstLPN(spp8k), r.LastLPN(spp8k))
	}
	if r.Pages(spp8k) != 2 {
		t.Fatalf("Pages = %d, want 2", r.Pages(spp8k))
	}
	if r.End() != 2068 {
		t.Fatalf("End = %d, want 2068", r.End())
	}
}

func TestValidate(t *testing.T) {
	good := Request{Time: 1, Op: OpWrite, Offset: 10, Count: 5}
	if err := good.Validate(100); err != nil {
		t.Fatalf("good request rejected: %v", err)
	}
	bad := []Request{
		{Count: 0, Offset: 1},
		{Count: -2, Offset: 1},
		{Count: 1, Offset: -1},
		{Count: 1, Offset: 0, Time: -5},
		{Count: 10, Offset: 95},
	}
	for i, r := range bad {
		if err := r.Validate(100); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, r)
		}
	}
	if err := (Request{Count: 10, Offset: 1 << 40}).Validate(0); err != nil {
		t.Errorf("bound check should be disabled with 0: %v", err)
	}
}

func TestStringers(t *testing.T) {
	r := Request{Op: OpWrite, Offset: 2056, Count: 12, Time: 1}
	if got := r.String(); !strings.Contains(got, "write(1028K, 6K)") {
		t.Errorf("String = %q, want paper notation write(1028K, 6K)", got)
	}
	if OpRead.String() != "R" || OpWrite.String() != "W" {
		t.Error("Op.String mismatch")
	}
	for _, c := range []Class{ClassAligned, ClassAcross, ClassUnaligned, Class(9)} {
		if c.String() == "" {
			t.Error("empty Class string")
		}
	}
}

func TestReaderParsesSystorFormat(t *testing.T) {
	in := `# comment line
1455276421.123456,0.000912,R,3,1052672,4096

1455276421.623456,0.000345,W,3,1052672,6144
`
	reqs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(reqs) != 2 {
		t.Fatalf("got %d requests, want 2", len(reqs))
	}
	r0 := reqs[0]
	if r0.Time != 0 {
		t.Errorf("first timestamp should rebase to 0, got %v", r0.Time)
	}
	if r0.Op != OpRead || r0.Offset != 1052672/512 || r0.Count != 8 {
		t.Errorf("r0 = %+v", r0)
	}
	r1 := reqs[1]
	if r1.Time < 499.9 || r1.Time > 500.1 {
		t.Errorf("r1.Time = %v ms, want ~500", r1.Time)
	}
	if r1.Op != OpWrite || r1.Count != 12 {
		t.Errorf("r1 = %+v, want 12-sector write", r1)
	}
}

func TestReaderRoundsPartialSectors(t *testing.T) {
	// offset 100 bytes, size 1000 bytes: sectors [0, 3).
	reqs, err := ReadAll(strings.NewReader("0,0,W,0,100,1000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].Offset != 0 || reqs[0].Count != 3 {
		t.Fatalf("got [%d,+%d), want [0,+3)", reqs[0].Offset, reqs[0].Count)
	}
}

func TestReaderRejectsCorruptLines(t *testing.T) {
	bad := []string{
		"1,2,3\n",                 // too few fields
		"x,0,R,0,0,512\n",         // bad timestamp
		"0,0,Q,0,0,512\n",         // bad op
		"0,0,R,0,abc,512\n",       // bad offset
		"0,0,R,0,0,xyz\n",         // bad size
		"0,0,R,0,0,0\n",           // zero size
		"0,0,R,0,-512,512\n",      // negative offset
		"0,0,R,0,0,512,extra,1\n", // too many fields
	}
	for _, in := range bad {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("corrupt line accepted: %q", in)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error for %q does not name the line: %v", in, err)
		}
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var orig []Request
		tm := 0.0
		for i := 0; i < 50; i++ {
			tm += rng.Float64() * 10
			orig = append(orig, Request{
				Time:   tm,
				Op:     Op(rng.Intn(2)),
				Offset: rng.Int63n(1 << 20),
				Count:  rng.Intn(64) + 1,
			})
		}
		var sb strings.Builder
		w := NewWriter(&sb, 3)
		for _, r := range orig {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(strings.NewReader(sb.String()))
		if err != nil || len(got) != len(orig) {
			return false
		}
		for i := range orig {
			if got[i].Op != orig[i].Op || got[i].Offset != orig[i].Offset || got[i].Count != orig[i].Count {
				return false
			}
			// Times survive to microsecond precision, rebased on the first.
			if d := (got[i].Time) - (orig[i].Time - orig[0].Time); d > 0.01 || d < -0.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStatsTable2Metrics(t *testing.T) {
	reqs := []Request{
		{Op: OpWrite, Offset: 2056, Count: 12}, // across write (6 KB)
		{Op: OpWrite, Offset: 2048, Count: 16}, // aligned write (8 KB)
		{Op: OpRead, Offset: 2060, Count: 8},   // across read
		{Op: OpRead, Offset: 0, Count: 4},      // unaligned read
		{Op: OpWrite, Offset: 4096, Count: 32}, // aligned write (16 KB)
	}
	s := Measure(reqs, spp8k)
	if s.Requests != 5 || s.Writes != 3 || s.Reads != 2 {
		t.Fatalf("counts = %d/%d/%d", s.Requests, s.Writes, s.Reads)
	}
	if got := s.WriteRatio(); got != 0.6 {
		t.Errorf("WriteRatio = %v, want 0.6", got)
	}
	if got := s.AvgWriteKB(); got != 10 {
		t.Errorf("AvgWriteKB = %v, want 10 (6+8+16)/3", got)
	}
	if got := s.AcrossRatio(); got != 0.4 {
		t.Errorf("AcrossRatio = %v, want 0.4", got)
	}
	if got := s.AlignedRatio(); got != 0.4 {
		t.Errorf("AlignedRatio = %v, want 0.4", got)
	}
	if s.AcrossWrites != 1 || s.AcrossReads != 1 {
		t.Errorf("across split = %d/%d, want 1/1", s.AcrossWrites, s.AcrossReads)
	}
	if got := s.FootprintBytes(); got != (4096+32)*512 {
		t.Errorf("FootprintBytes = %d", got)
	}
}

func TestStatsEmptyTrace(t *testing.T) {
	s := NewStats(spp8k)
	if s.WriteRatio() != 0 || s.AvgWriteKB() != 0 || s.AcrossRatio() != 0 || s.AlignedRatio() != 0 {
		t.Error("empty-trace ratios should be 0")
	}
}

// Property: across-page ratio never increases when the page size grows
// (the monotonicity behind Fig 13) for requests no larger than the smaller
// page. A request that crosses a 16-sector boundary may or may not cross a
// 32-sector boundary, but never the reverse.
func TestAcrossMonotoneInPageSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var reqs []Request
		for i := 0; i < 200; i++ {
			reqs = append(reqs, Request{
				Op:     Op(rng.Intn(2)),
				Offset: rng.Int63n(1 << 16),
				Count:  rng.Intn(8) + 1, // <= 8 sectors <= every page size
			})
		}
		r8 := Measure(reqs, 8).AcrossRatio()
		r16 := Measure(reqs, 16).AcrossRatio()
		r32 := Measure(reqs, 32).AcrossRatio()
		return r16 <= r8 && r32 <= r16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReaderEOFIsClean(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("empty stream err = %v, want io.EOF", err)
	}
}

package trace

import "sort"

// This file holds trace-manipulation helpers used by the tools and by
// experiment setup: filtering, time-windowing, splitting and concatenation.
// All helpers are non-destructive (they return fresh slices).

// Filter returns the requests satisfying pred, preserving order.
func Filter(reqs []Request, pred func(Request) bool) []Request {
	var out []Request
	for _, r := range reqs {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// OnlyOp returns the requests with the given direction.
func OnlyOp(reqs []Request, op Op) []Request {
	return Filter(reqs, func(r Request) bool { return r.Op == op })
}

// OnlyClass returns the requests of one alignment class at a page size of
// spp sectors.
func OnlyClass(reqs []Request, class Class, spp int) []Request {
	return Filter(reqs, func(r Request) bool { return r.Classify(spp) == class })
}

// Window returns the requests with Time in [from, to), rebased so the
// window starts at t=0.
func Window(reqs []Request, from, to float64) []Request {
	var out []Request
	for _, r := range reqs {
		if r.Time >= from && r.Time < to {
			r.Time -= from
			out = append(out, r)
		}
	}
	return out
}

// Head returns the first n requests (all of them if n exceeds the length).
func Head(reqs []Request, n int) []Request {
	if n > len(reqs) {
		n = len(reqs)
	}
	out := make([]Request, n)
	copy(out, reqs[:n])
	return out
}

// Concat joins traces back to back in time: each subsequent trace is
// rebased to start right after the previous one ends (plus gap ms).
func Concat(gap float64, traces ...[]Request) []Request {
	var out []Request
	base := 0.0
	for _, tr := range traces {
		var last float64
		for _, r := range tr {
			r.Time += base
			out = append(out, r)
			if r.Time > last {
				last = r.Time
			}
		}
		base = last + gap
	}
	return out
}

// Interleave merges traces by timestamp (each keeps its own timeline),
// producing one stream sorted by arrival time — the multi-tenant view of
// several LUNs sharing a device. The sort is stable so equal timestamps
// keep their input order.
func Interleave(traces ...[]Request) []Request {
	var out []Request
	for _, tr := range traces {
		out = append(out, tr...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// ShiftOffsets adds delta sectors to every request's offset — used to place
// several traces in disjoint regions of one address space.
func ShiftOffsets(reqs []Request, delta int64) []Request {
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		r.Offset += delta
		out[i] = r
	}
	return out
}

// ValidateAll checks every request against a device size and returns the
// index of the first invalid request (-1 if all pass) with its error.
func ValidateAll(reqs []Request, logicalSectors int64) (int, error) {
	for i, r := range reqs {
		if err := r.Validate(logicalSectors); err != nil {
			return i, err
		}
	}
	return -1, nil
}

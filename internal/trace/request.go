// Package trace defines the block-level request model used throughout the
// simulator, the SYSTOR '17 CSV trace format (the format of the enterprise
// VDI "LUN" traces the paper replays), and trace statistics such as the
// across-page access ratio of Figs 2 and 13.
package trace

import "fmt"

// Op is the request direction.
type Op uint8

const (
	// OpRead is a host read.
	OpRead Op = iota
	// OpWrite is a host write.
	OpWrite
)

// String implements fmt.Stringer ("R"/"W", as in the trace files).
func (o Op) String() string {
	if o == OpWrite {
		return "W"
	}
	return "R"
}

// Class is the alignment classification of a request relative to a given
// flash page size (Fig 1 of the paper).
type Class uint8

const (
	// ClassAligned starts and ends on page boundaries.
	ClassAligned Class = iota
	// ClassAcross is the paper's special case: size not larger than one
	// page, but spanning exactly two logical pages.
	ClassAcross
	// ClassUnaligned is any other request that touches a partial page.
	ClassUnaligned
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassAligned:
		return "aligned"
	case ClassAcross:
		return "across-page"
	case ClassUnaligned:
		return "unaligned"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Request is one block-level I/O. Offset and Count are in 512 B sectors;
// Time is in milliseconds from the start of the trace.
type Request struct {
	Time   float64
	Op     Op
	Offset int64
	Count  int
}

// End returns the exclusive sector end of the request.
func (r Request) End() int64 { return r.Offset + int64(r.Count) }

// FirstLPN returns the first logical page touched, for a page of spp sectors.
func (r Request) FirstLPN(spp int) int64 { return r.Offset / int64(spp) }

// LastLPN returns the last logical page touched.
func (r Request) LastLPN(spp int) int64 { return (r.End() - 1) / int64(spp) }

// Pages returns how many logical pages the request touches.
func (r Request) Pages(spp int) int { return int(r.LastLPN(spp)-r.FirstLPN(spp)) + 1 }

// Classify returns the request's alignment class for a page of spp sectors,
// per the definition in §1: an across-page request has size <= one page yet
// spans two logical pages.
func (r Request) Classify(spp int) Class {
	if r.Count <= 0 {
		return ClassUnaligned
	}
	pages := r.Pages(spp)
	if r.Count <= spp && pages == 2 {
		return ClassAcross
	}
	if r.Offset%int64(spp) == 0 && r.Count%spp == 0 {
		return ClassAligned
	}
	return ClassUnaligned
}

// Validate checks a request for structural sanity against a device of
// logicalSectors addressable sectors (0 disables the bound check).
func (r Request) Validate(logicalSectors int64) error {
	if r.Count <= 0 {
		return fmt.Errorf("trace: request with non-positive count %d", r.Count)
	}
	if r.Offset < 0 {
		return fmt.Errorf("trace: request with negative offset %d", r.Offset)
	}
	if r.Time < 0 {
		return fmt.Errorf("trace: request with negative time %g", r.Time)
	}
	if logicalSectors > 0 && r.End() > logicalSectors {
		return fmt.Errorf("trace: request [%d,%d) beyond device end %d",
			r.Offset, r.End(), logicalSectors)
	}
	return nil
}

// String renders the request in the canonical write(addr, size) notation of
// the paper's figures.
func (r Request) String() string {
	verb := "read"
	if r.Op == OpWrite {
		verb = "write"
	}
	return fmt.Sprintf("%s(%dK, %gK)@%.3fms", verb, r.Offset/2, float64(r.Count)/2, r.Time)
}

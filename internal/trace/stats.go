package trace

// Stats summarises a trace the way Table 2 of the paper does: request
// count, write ratio, mean write size, and the across-page request ratio
// for a given page size. Compute the same trace at several page sizes to
// regenerate Fig 13.
type Stats struct {
	SectorsPerPage int

	Requests int64
	Writes   int64
	Reads    int64

	WriteSectors int64
	ReadSectors  int64

	Aligned   int64
	Across    int64
	Unaligned int64

	AcrossWrites int64
	AcrossReads  int64

	MaxEndSector int64 // footprint: highest sector touched + 1
	LastTime     float64
}

// NewStats prepares an accumulator for a page of spp sectors.
func NewStats(spp int) *Stats { return &Stats{SectorsPerPage: spp} }

// Add folds one request into the statistics.
func (s *Stats) Add(r Request) {
	s.Requests++
	if r.Op == OpWrite {
		s.Writes++
		s.WriteSectors += int64(r.Count)
	} else {
		s.Reads++
		s.ReadSectors += int64(r.Count)
	}
	switch r.Classify(s.SectorsPerPage) {
	case ClassAligned:
		s.Aligned++
	case ClassAcross:
		s.Across++
		if r.Op == OpWrite {
			s.AcrossWrites++
		} else {
			s.AcrossReads++
		}
	default:
		s.Unaligned++
	}
	if end := r.End(); end > s.MaxEndSector {
		s.MaxEndSector = end
	}
	if r.Time > s.LastTime {
		s.LastTime = r.Time
	}
}

// AddAll folds a whole trace.
func (s *Stats) AddAll(reqs []Request) {
	for _, r := range reqs {
		s.Add(r)
	}
}

// WriteRatio returns the fraction of requests that are writes ("Write R" in
// Table 2).
func (s *Stats) WriteRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Requests)
}

// AvgWriteKB returns the mean write size in KB ("Write SZ" in Table 2).
func (s *Stats) AvgWriteKB() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.WriteSectors) / 2 / float64(s.Writes)
}

// AcrossRatio returns the fraction of requests that are across-page
// ("Across R" in Table 2, the series of Figs 2 and 13).
func (s *Stats) AcrossRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Across) / float64(s.Requests)
}

// AlignedRatio returns the fraction of fully page-aligned requests.
func (s *Stats) AlignedRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Aligned) / float64(s.Requests)
}

// FootprintBytes returns the trace's address footprint in bytes.
func (s *Stats) FootprintBytes() int64 { return s.MaxEndSector * 512 }

// Measure is a convenience that computes Stats over a slice in one call.
func Measure(reqs []Request, spp int) *Stats {
	s := NewStats(spp)
	s.AddAll(reqs)
	return s
}

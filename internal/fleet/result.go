package fleet

import (
	"across/internal/ftl"
	"across/internal/sim"
	"across/internal/stats"
	"across/internal/trace"
)

// DeviceReport is one device's share of a fleet replay: how much work the
// layout routed to it and what that work cost. The spread across devices is
// the queue-imbalance view — a straggler shows up as the utilisation max.
type DeviceReport struct {
	Device      int             `json:"device"`
	SubRequests int64           `json:"sub_requests"`
	Sectors     int64           `json:"sectors"`
	BusyMs      float64         `json:"busy_ms"` // summed chip service time
	Counters    ftl.Counters    `json:"counters"`
	Wear        sim.WearSummary `json:"wear"`
}

// ClassCounts counts requests per alignment class, indexed by trace.Class
// (aligned, across-page, unaligned).
type ClassCounts [3]int64

// Total returns the summed count across classes.
func (c ClassCounts) Total() int64 { return c[0] + c[1] + c[2] }

// Ratio returns class i's share of the total (0 when empty).
func (c ClassCounts) Ratio(i trace.Class) float64 {
	if t := c.Total(); t > 0 {
		return float64(c[i]) / float64(t)
	}
	return 0
}

// Result is everything one fleet replay measures. Latencies are logical:
// a request's response time runs from its trace arrival to the completion
// of its slowest sub-request (plus host-queue delay in closed-loop mode).
type Result struct {
	Scheme       string `json:"scheme"`
	Layout       Layout `json:"layout"`
	Devices      int    `json:"devices"`
	ChunkSectors int64  `json:"chunk_sectors"`

	Requests   int64 `json:"requests"`
	ReadCount  int64 `json:"reads"`
	WriteCount int64 `json:"writes"`

	ReadLatencySum  float64 `json:"read_latency_sum_ms"`
	WriteLatencySum float64 `json:"write_latency_sum_ms"`

	// ReadLat / WriteLat hold the full logical-latency distributions; the
	// saturation sweep's p99 columns come from here.
	ReadLat  stats.Histogram `json:"-"`
	WriteLat stats.Histogram `json:"-"`

	// SubRequests counts device-local fragments dispatched (mirror writes
	// count each copy); SubRequests/Requests is the layout's fan-out.
	SubRequests int64 `json:"sub_requests"`

	// LogicalClasses classifies logical requests against the device page
	// size; SubClasses classifies the dispatched fragments the same way.
	// Their difference is the re-fragmentation effect of the layout: a
	// chunk size below the page size converts across-page requests into
	// partial-page fragments and aligned requests into unaligned ones.
	LogicalClasses ClassCounts `json:"logical_classes"`
	SubClasses     ClassCounts `json:"sub_classes"`

	// ByBucket aggregates logical requests per (direction, logical class),
	// with flash-op attribution summed over every fragment the request
	// fanned out to.
	ByBucket [2][3]sim.OpClassMetrics `json:"by_bucket"`

	PerDevice []DeviceReport `json:"per_device"`

	// TraceSpanMs is the logical arrival span; MeasuredSpanMs runs from the
	// first arrival to the latest of any device's idle horizon, the last
	// completion and the last arrival — the utilisation and throughput
	// denominator.
	TraceSpanMs    float64 `json:"trace_span_ms"`
	MeasuredSpanMs float64 `json:"measured_span_ms"`

	// WarmupWrites sums the devices' aging programs (not in Counters).
	WarmupWrites int64 `json:"warmup_writes"`
}

// AvgReadLatency returns the mean logical read response time in ms.
func (r *Result) AvgReadLatency() float64 {
	if r.ReadCount == 0 {
		return 0
	}
	return r.ReadLatencySum / float64(r.ReadCount)
}

// AvgWriteLatency returns the mean logical write response time in ms.
func (r *Result) AvgWriteLatency() float64 {
	if r.WriteCount == 0 {
		return 0
	}
	return r.WriteLatencySum / float64(r.WriteCount)
}

// Throughput returns logical requests per simulated second over the
// measured makespan (0 when the span is zero) — the y axis of the
// saturation sweep.
func (r *Result) Throughput() float64 {
	if r.MeasuredSpanMs <= 0 {
		return 0
	}
	return float64(r.Requests) / (r.MeasuredSpanMs / 1000)
}

// Fanout returns dispatched fragments per logical request.
func (r *Result) Fanout() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.SubRequests) / float64(r.Requests)
}

// DeviceUtilisation returns device d's busy fraction: its summed chip
// service time over chips × measured makespan.
func (r *Result) DeviceUtilisation(d int, chips int) float64 {
	if r.MeasuredSpanMs <= 0 || chips <= 0 || d >= len(r.PerDevice) {
		return 0
	}
	return r.PerDevice[d].BusyMs / (float64(chips) * r.MeasuredSpanMs)
}

// UtilisationSpread returns the min and max device utilisation for a fleet
// of chips-wide devices — the load-balance (straggler) indicator.
func (r *Result) UtilisationSpread(chips int) (min, max float64) {
	for d := range r.PerDevice {
		u := r.DeviceUtilisation(d, chips)
		if d == 0 || u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	return min, max
}

// Counters returns the fleet-wide sum of per-device flash-operation
// counters for the measured phase.
func (r *Result) Counters() ftl.Counters {
	var sum ftl.Counters
	for _, d := range r.PerDevice {
		sum.DataReads += d.Counters.DataReads
		sum.DataWrites += d.Counters.DataWrites
		sum.MapReads += d.Counters.MapReads
		sum.MapWrites += d.Counters.MapWrites
		sum.GCReads += d.Counters.GCReads
		sum.GCWrites += d.Counters.GCWrites
		sum.Erases += d.Counters.Erases
		sum.DRAMAccesses += d.Counters.DRAMAccesses
		sum.GCInvocations += d.Counters.GCInvocations
	}
	return sum
}

package fleet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"across/internal/check"
	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
)

// Spec describes a fleet volume: device count, layout, and the RAID chunk
// size (ignored by concat). The zero ChunkSectors defaults to DefaultChunkKB.
type Spec struct {
	Devices      int
	Layout       Layout
	ChunkSectors int64
}

// DefaultChunkKB is the stripe chunk used when a spec leaves it zero: 64 KiB,
// a common RAID-0 default, comfortably above every supported page size.
const DefaultChunkKB = 64

// Validate checks the spec against a device configuration without building
// any devices — the cheap submit-time check for services.
func (s Spec) Validate(conf ssdconf.Config) error {
	_, err := resolveGeometry(&conf, s)
	return err
}

// Options tunes a fleet replay. Like sim.ParallelOptions, it only changes
// speed, never the Result.
type Options struct {
	// Workers bounds how many devices replay concurrently in open-loop
	// mode (<= 1 replays devices serially). Closed-loop replays (qd > 0)
	// are always stepped serially: the shared host queue couples every
	// device's dispatch times, so there is nothing independent to overlap.
	Workers int
}

// Volume is N independent simulated SSDs behind one logical address space.
// Build one with New (fresh devices) or FromSnapshot (fork every device
// from a warm single-device checkpoint), then Age and Replay.
type Volume struct {
	Kind    sim.SchemeKind
	Conf    *ssdconf.Config // per-device configuration (all devices identical)
	Runners []*sim.Runner

	geo geometry
}

// cancelCheckMask mirrors the sim engine's cancellation cadence: the fleet
// loop polls its context every cancelCheckMask+1 logical requests.
const cancelCheckMask = 63

// New builds a fleet of fresh devices of one scheme kind and configuration.
func New(kind sim.SchemeKind, conf ssdconf.Config, spec Spec) (*Volume, error) {
	geo, err := resolveGeometry(&conf, spec)
	if err != nil {
		return nil, err
	}
	v := &Volume{Kind: kind, Conf: &conf, geo: geo}
	for i := 0; i < spec.Devices; i++ {
		r, err := sim.NewRunner(kind, conf)
		if err != nil {
			return nil, fmt.Errorf("fleet: building device %d: %w", i, err)
		}
		v.Runners = append(v.Runners, r)
	}
	return v, nil
}

// FromSnapshot builds a fleet by restoring every device from one warm
// single-device snapshot (scheme kind and configuration come from the
// blob): the fleet analogue of the fork-from-checkpoint sweep — N restores
// instead of N agings, with state identical to aging each device afresh
// (aging is seeded, so same-config devices age identically).
func FromSnapshot(blob []byte, spec Spec) (*Volume, error) {
	first, err := sim.Restore(blob)
	if err != nil {
		return nil, fmt.Errorf("fleet: restoring device 0: %w", err)
	}
	geo, err := resolveGeometry(first.Conf, spec)
	if err != nil {
		return nil, err
	}
	v := &Volume{Kind: first.Kind, Conf: first.Conf, geo: geo, Runners: []*sim.Runner{first}}
	for i := 1; i < spec.Devices; i++ {
		r, err := sim.Restore(blob)
		if err != nil {
			return nil, fmt.Errorf("fleet: restoring device %d: %w", i, err)
		}
		v.Runners = append(v.Runners, r)
	}
	return v, nil
}

func resolveGeometry(conf *ssdconf.Config, spec Spec) (geometry, error) {
	if err := conf.Validate(); err != nil {
		return geometry{}, err
	}
	chunk := spec.ChunkSectors
	if chunk == 0 {
		chunk = DefaultChunkKB * 1024 / ssdconf.SectorBytes
	}
	return newGeometry(spec.Layout, spec.Devices, chunk, conf.LogicalSectors())
}

// Devices returns the physical device count.
func (v *Volume) Devices() int { return v.geo.devices }

// Layout returns the volume's layout.
func (v *Volume) Layout() Layout { return v.geo.layout }

// ChunkSectors returns the resolved stripe chunk in sectors (the whole
// device for concat).
func (v *Volume) ChunkSectors() int64 { return v.geo.chunkSectors }

// LogicalSectors returns the volume's usable capacity in sectors — the
// address-space bound for trace generation (mirrored capacity counts once).
func (v *Volume) LogicalSectors() int64 { return v.geo.logicalSectors() }

// Split appends the per-device fragments of one logical request to out and
// returns it (exported for the tiling property tests; the replay engines
// use the same function).
func (v *Volume) Split(r trace.Request, out []SubRequest) ([]SubRequest, error) {
	return v.geo.split(r, out)
}

// Age warms every device to the same §4.1 state: device 0 ages through its
// scheme's ordinary write path, is checkpointed, and the remaining devices
// fork from the checkpoint — byte-identical state at a fraction of the
// cost, since seeded aging would produce the same state per device anyway.
func (v *Volume) Age(a sim.Aging) error { return v.AgeCtx(context.Background(), a) }

// AgeCtx is Age with cancellation (polled inside the device-0 aging loop).
func (v *Volume) AgeCtx(ctx context.Context, a sim.Aging) error {
	if err := v.Runners[0].AgeCtx(ctx, a); err != nil {
		return err
	}
	if len(v.Runners) == 1 {
		return nil
	}
	blob, err := v.Runners[0].Snapshot()
	if err != nil {
		return fmt.Errorf("fleet: checkpointing aged device 0: %w", err)
	}
	return v.forkWarm(blob, 1)
}

// RestoreWarm forks every device from a warm single-device snapshot taken
// with the volume's scheme kind and configuration — the service layer's
// path when a stored aging checkpoint already exists.
func (v *Volume) RestoreWarm(blob []byte) error { return v.forkWarm(blob, 0) }

func (v *Volume) forkWarm(blob []byte, from int) error {
	for i := from; i < len(v.Runners); i++ {
		r, err := sim.Restore(blob)
		if err != nil {
			return fmt.Errorf("fleet: forking device %d from checkpoint: %w", i, err)
		}
		if r.Kind != v.Kind {
			return fmt.Errorf("fleet: checkpoint scheme %s does not match volume scheme %s", r.Kind, v.Kind)
		}
		if *r.Conf != *v.Conf {
			return fmt.Errorf("fleet: checkpoint configuration does not match the volume's devices")
		}
		v.Runners[i] = r
	}
	return nil
}

// WarmSnapshot serialises device 0's state — after Age, the single-device
// checkpoint every other device was forked from (all devices are
// byte-identical until a replay differentiates them).
func (v *Volume) WarmSnapshot() ([]byte, error) { return v.Runners[0].Snapshot() }

// Audit runs the device-wide invariant auditor over every device (mapping↔
// flash ownership, valid-count recounts, op attribution — DESIGN §9).
func (v *Volume) Audit() error {
	for i, r := range v.Runners {
		chk, err := check.New(r.Scheme, check.Options{})
		if err != nil {
			return fmt.Errorf("fleet: device %d: %w", i, err)
		}
		if err := chk.Audit(); err != nil {
			return fmt.Errorf("fleet: device %d failed audit: %w", i, err)
		}
	}
	return nil
}

// subOutcome is what one dispatched fragment contributes to the logical
// join: its completion time and its device-counter deltas. Both engines
// produce identical outcomes in identical per-device order, which is the
// whole determinism argument (DESIGN §14).
type subOutcome struct {
	done           float64
	flushes, reads int64
}

// step dispatches one fragment to its device at time issue and returns the
// outcome. Counter deltas attribute flash data traffic (host + GC) to the
// logical request, mirroring the sim engine's per-request attribution.
func (v *Volume) step(sub SubRequest, issue float64) (subOutcome, error) {
	r := v.Runners[sub.Device]
	dev := r.Scheme.Device()
	wBefore := dev.Count.DataWrites + dev.Count.GCWrites
	rBefore := dev.Count.DataReads + dev.Count.GCReads
	var (
		done float64
		err  error
	)
	switch sub.Req.Op {
	case trace.OpWrite:
		done, err = r.Scheme.Write(sub.Req, issue)
	case trace.OpRead:
		done, err = r.Scheme.Read(sub.Req, issue)
	default:
		err = fmt.Errorf("fleet: unknown op %d", sub.Req.Op)
	}
	if err != nil {
		return subOutcome{}, fmt.Errorf("fleet: device %d servicing %v: %w", sub.Device, sub.Req, err)
	}
	return subOutcome{
		done:    done,
		flushes: (dev.Count.DataWrites + dev.Count.GCWrites) - wBefore,
		reads:   (dev.Count.DataReads + dev.Count.GCReads) - rBefore,
	}, nil
}

// statsResetter mirrors the sim engine's scheme-statistics reset hook.
type statsResetter interface{ ResetStats() }

// beginReplay resets every device's measurement state (timelines and
// counters; mapping and wear state persist) and seeds the Result.
func (v *Volume) beginReplay() *Result {
	res := &Result{
		Scheme:       v.Runners[0].Scheme.Name(),
		Layout:       v.geo.layout,
		Devices:      v.geo.devices,
		ChunkSectors: v.geo.chunkSectors,
		PerDevice:    make([]DeviceReport, v.geo.devices),
	}
	for i, r := range v.Runners {
		r.Scheme.Device().ResetMeasurement()
		if sr, ok := r.Scheme.(statsResetter); ok {
			sr.ResetStats()
		}
		res.PerDevice[i].Device = i
	}
	return res
}

// foldLogical applies one logical request's joined outcome to the Result.
// Both engines call it in logical-request order with identical arguments.
func (res *Result) foldLogical(req trace.Request, class trace.Class, lat float64, subs int64, flushes, reads int64) {
	res.Requests++
	res.LogicalClasses[class]++
	res.SubRequests += subs
	b := &res.ByBucket[req.Op][class]
	b.Requests++
	b.Sectors += int64(req.Count)
	b.LatencySum += lat
	b.Flushes += flushes
	b.FlashReads += reads
	if req.Op == trace.OpWrite {
		res.WriteCount++
		res.WriteLatencySum += lat
		res.WriteLat.Add(lat)
	} else {
		res.ReadCount++
		res.ReadLatencySum += lat
		res.ReadLat.Add(lat)
	}
}

// noteSub records a fragment's routing in the per-device report.
func (res *Result) noteSub(sub SubRequest, spp int) {
	res.SubClasses[sub.Req.Classify(spp)]++
	d := &res.PerDevice[sub.Device]
	d.SubRequests++
	d.Sectors += int64(sub.Req.Count)
}

// finishReplay collects end-of-run per-device state and the makespan. The
// makespan matches the sim engine's definition — first arrival to the later
// of the last arrival and any device's idle horizon — so a 1-device concat
// volume reports exactly what a bare sim.Runner would.
func (v *Volume) finishReplay(res *Result, reqs []trace.Request) {
	var end float64
	for i, r := range v.Runners {
		dev := r.Scheme.Device()
		d := &res.PerDevice[i]
		d.Counters = dev.Count
		mean, sd, lo, hi := dev.Array.WearStats()
		d.Wear = sim.WearSummary{Mean: mean, StdDev: sd, Min: lo, Max: hi}
		for c := 0; c < dev.Sched.Chips(); c++ {
			d.BusyMs += dev.Sched.BusyTime(c)
		}
		if h := dev.Sched.Horizon(); h > end {
			end = h
		}
		res.WarmupWrites += r.WarmupWrites()
	}
	if n := len(reqs); n > 0 {
		res.TraceSpanMs = reqs[n-1].Time - reqs[0].Time
		if reqs[n-1].Time > end {
			end = reqs[n-1].Time
		}
		res.MeasuredSpanMs = end - reqs[0].Time
	}
}

// Replay runs a logical trace against the volume open-loop and collects a
// fleet Result (see ReplayQDCtx for the closed-loop and cancellable forms).
func (v *Volume) Replay(reqs []trace.Request, opt Options) (*Result, error) {
	return v.ReplayQDCtx(context.Background(), reqs, 0, opt)
}

// ReplayQD replays with a fleet-level queue-depth bound: at most qd logical
// requests are outstanding, and a request whose arrival finds the queue
// full defers to the earliest logical completion — the closed-loop mode the
// saturation sweep drives. qd <= 0 replays open-loop.
func (v *Volume) ReplayQD(reqs []trace.Request, qd int, opt Options) (*Result, error) {
	return v.ReplayQDCtx(context.Background(), reqs, qd, opt)
}

// ReplayQDCtx is ReplayQD with cancellation. The Result is bit-identical
// for every Options.Workers value: the open-loop engine distributes whole
// devices — whose states never interact — across workers and joins their
// recorded outcomes in logical order, and the closed-loop engine is serial
// by construction (DESIGN §14 gives the full argument).
func (v *Volume) ReplayQDCtx(ctx context.Context, reqs []trace.Request, qd int, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := v.beginReplay()
	if qd <= 0 && opt.Workers > 1 && len(v.Runners) > 1 {
		if err := v.replayOpenParallel(ctx, reqs, res, opt.Workers); err != nil {
			return nil, err
		}
		return res, nil
	}
	if err := v.replaySerial(ctx, reqs, res, qd); err != nil {
		return nil, err
	}
	return res, nil
}

// replaySerial is the reference engine: logical requests in trace order,
// each fragment dispatched inline, the fleet-level queue gate applied
// before splitting.
func (v *Volume) replaySerial(ctx context.Context, reqs []trace.Request, res *Result, qd int) error {
	spp := v.Conf.SectorsPerPage()
	var (
		inflight []float64
		subs     []SubRequest
	)
	if qd > 0 {
		inflight = make([]float64, 0, qd)
	}
	done := ctx.Done()
	for i, req := range reqs {
		if i&cancelCheckMask == 0 {
			select {
			case <-done:
				return fmt.Errorf("fleet: replay cancelled at request %d/%d: %w", i, len(reqs), ctx.Err())
			default:
			}
		}
		issue := req.Time
		if qd > 0 {
			for {
				kept := inflight[:0]
				earliest := -1.0
				for _, c := range inflight {
					if c > issue {
						kept = append(kept, c)
						if earliest < 0 || c < earliest {
							earliest = c
						}
					}
				}
				inflight = kept
				if len(inflight) < qd {
					break
				}
				issue = earliest
			}
		}
		var err error
		subs, err = v.geo.split(req, subs[:0])
		if err != nil {
			return fmt.Errorf("fleet: request %d: %w", i, err)
		}
		join := issue
		var flushes, reads int64
		for _, sub := range subs {
			out, err := v.step(sub, issue)
			if err != nil {
				return fmt.Errorf("fleet: request %d: %w", i, err)
			}
			if out.done > join {
				join = out.done
			}
			flushes += out.flushes
			reads += out.reads
			res.noteSub(sub, spp)
		}
		if qd > 0 {
			inflight = append(inflight, join)
		}
		res.foldLogical(req, req.Classify(spp), join-req.Time, int64(len(subs)), flushes, reads)
	}
	v.finishReplay(res, reqs)
	return nil
}

// devWork is one device's pre-split work list in the open-loop parallel
// engine: fragments in dispatch order, with the owning logical index.
type devWork struct {
	subs   []SubRequest
	logIdx []int32
	out    []subOutcome
}

// replayOpenParallel is the open-loop engine: issue times equal trace
// arrivals, so every device's fragment sequence is known up front and the
// devices — which share no state — replay concurrently. The join pass then
// folds logical requests in trace order from the recorded outcomes,
// reproducing the serial engine's folds bit for bit.
func (v *Volume) replayOpenParallel(ctx context.Context, reqs []trace.Request, res *Result, workers int) error {
	spp := v.Conf.SectorsPerPage()
	n := len(v.Runners)
	work := make([]devWork, n)
	subsPer := make([]int32, len(reqs))
	var scratch []SubRequest
	for i, req := range reqs {
		var err error
		scratch, err = v.geo.split(req, scratch[:0])
		if err != nil {
			return fmt.Errorf("fleet: request %d: %w", i, err)
		}
		subsPer[i] = int32(len(scratch))
		for _, sub := range scratch {
			w := &work[sub.Device]
			w.subs = append(w.subs, sub)
			w.logIdx = append(w.logIdx, int32(i))
			res.noteSub(sub, spp)
		}
	}

	if workers > n {
		workers = n
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		failed  atomic.Bool
		runErr  error
	)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		failed.Store(true)
	}
	next := make(chan int, n)
	for d := 0; d < n; d++ {
		next <- d
	}
	close(next)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range next {
				wk := &work[d]
				wk.out = make([]subOutcome, len(wk.subs))
				for k, sub := range wk.subs {
					if k&cancelCheckMask == 0 {
						select {
						case <-done:
							fail(fmt.Errorf("fleet: replay cancelled on device %d: %w", d, ctx.Err()))
							return
						default:
						}
						if failed.Load() {
							return
						}
					}
					out, err := v.step(sub, sub.Req.Time)
					if err != nil {
						fail(err)
						return
					}
					wk.out[k] = out
				}
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return runErr
	}

	// Join pass: per-device cursors advance in lock-step with the logical
	// order (each device's fragments were appended in that order), so the
	// fold sees exactly the serial engine's per-request view.
	cursor := make([]int, n)
	for i, req := range reqs {
		join := req.Time
		var flushes, reads int64
		for d := 0; d < n; d++ {
			wk := &work[d]
			for cursor[d] < len(wk.logIdx) && wk.logIdx[cursor[d]] == int32(i) {
				out := wk.out[cursor[d]]
				if out.done > join {
					join = out.done
				}
				flushes += out.flushes
				reads += out.reads
				cursor[d]++
			}
		}
		res.foldLogical(req, req.Classify(spp), join-req.Time, int64(subsPer[i]), flushes, reads)
	}
	v.finishReplay(res, reqs)
	return nil
}

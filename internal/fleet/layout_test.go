package fleet

import (
	"math/rand"
	"sort"
	"testing"

	"across/internal/trace"
)

// logicalOf inverts the layout mapping: the logical sector range a
// device-local fragment came from. Mirrored copies invert identically.
func logicalOf(g geometry, s SubRequest) (int64, int64) {
	dev := int64(s.Device)
	if g.layout == LayoutRAID10 {
		dev /= 2 // both mirrors hold the same column
	}
	switch g.layout {
	case LayoutConcat:
		return dev*g.perDevice + s.Req.Offset, int64(s.Req.Count)
	default: // raid0, raid10: chunked striping over dataDevices columns
		row := s.Req.Offset / g.chunkSectors
		within := s.Req.Offset % g.chunkSectors
		chunk := row*int64(g.dataDevices) + dev
		return chunk*g.chunkSectors + within, int64(s.Req.Count)
	}
}

// TestSplitTiling is the property test of the layout arithmetic: for every
// layout and a large seeded sample of random requests, the sub-request
// ranges mapped back to logical space exactly tile the request — no gaps,
// no overlaps, nothing outside the request — every fragment stays inside
// its device, fragments never straddle a chunk, and RAID-10 writes land on
// both mirrors with identical device-local ranges.
func TestSplitTiling(t *testing.T) {
	const perDevice = 1 << 16 // sectors
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		layout  Layout
		devices int
		chunk   int64
	}{
		{LayoutConcat, 1, 0},
		{LayoutConcat, 4, 0},
		{LayoutRAID0, 2, 8},
		{LayoutRAID0, 4, 16},
		{LayoutRAID0, 4, 128},
		{LayoutRAID0, 7, 32},
		{LayoutRAID10, 2, 16},
		{LayoutRAID10, 4, 8},
		{LayoutRAID10, 8, 64},
	} {
		chunk := tc.chunk
		if tc.layout == LayoutConcat {
			chunk = perDevice
		}
		g, err := newGeometry(tc.layout, tc.devices, chunk, perDevice)
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.layout, tc.devices, err)
		}
		logical := g.logicalSectors()
		for trial := 0; trial < 2000; trial++ {
			count := 1 + rng.Intn(512)
			off := rng.Int63n(logical - int64(count))
			op := trace.OpRead
			if trial%2 == 0 {
				op = trace.OpWrite
			}
			req := trace.Request{Op: op, Offset: off, Count: count}
			subs, err := g.split(req, nil)
			if err != nil {
				t.Fatalf("%s/%d: split(%v): %v", tc.layout, tc.devices, req, err)
			}
			checkTiling(t, g, req, subs)
		}
	}
}

type span struct{ lo, hi int64 }

func checkTiling(t *testing.T, g geometry, req trace.Request, subs []SubRequest) {
	t.Helper()
	copies := 1
	if g.layout == LayoutRAID10 && req.Op == trace.OpWrite {
		copies = 2
	}
	covered := make(map[span]int)
	var total int64
	for _, s := range subs {
		if s.Device < 0 || s.Device >= g.devices {
			t.Fatalf("split(%v): fragment on device %d of %d", req, s.Device, g.devices)
		}
		if s.Req.Op != req.Op || s.Req.Time != req.Time {
			t.Fatalf("split(%v): fragment changed op or time: %v", req, s.Req)
		}
		if s.Req.Count <= 0 || s.Req.Offset < 0 || s.Req.End() > g.perDevice {
			t.Fatalf("split(%v): fragment %v outside device of %d sectors", req, s.Req, g.perDevice)
		}
		if s.Req.Offset/g.chunkSectors != (s.Req.End()-1)/g.chunkSectors {
			t.Fatalf("split(%v): fragment %v straddles a %d-sector chunk", req, s.Req, g.chunkSectors)
		}
		lo, n := logicalOf(g, s)
		covered[span{lo, lo + n}]++
		total += n
	}
	if total != int64(req.Count)*int64(copies) {
		t.Fatalf("split(%v): fragments cover %d sectors, want %d×%d", req, total, req.Count, copies)
	}
	spans := make([]span, 0, len(covered))
	for sp, c := range covered {
		if c != copies {
			t.Fatalf("split(%v): logical span [%d,%d) covered %d times, want %d", req, sp.lo, sp.hi, c, copies)
		}
		spans = append(spans, sp)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	at := req.Offset
	for _, sp := range spans {
		if sp.lo != at {
			t.Fatalf("split(%v): gap or overlap at sector %d (next span starts %d)", req, at, sp.lo)
		}
		at = sp.hi
	}
	if at != req.End() {
		t.Fatalf("split(%v): tiling ends at %d, want %d", req, at, req.End())
	}
}

// TestMirrorWritesIdentical pins the RAID-10 invariant the tiling test
// checks structurally: each fragment of a write appears on both devices of
// a pair with the same device-local range.
func TestMirrorWritesIdentical(t *testing.T) {
	g, err := newGeometry(LayoutRAID10, 4, 16, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := g.split(trace.Request{Op: trace.OpWrite, Offset: 7, Count: 60}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs)%2 != 0 {
		t.Fatalf("odd fragment count %d for a mirrored write", len(subs))
	}
	for i := 0; i < len(subs); i += 2 {
		a, b := subs[i], subs[i+1]
		if a.Device/2 != b.Device/2 || a.Device%2 != 0 || b.Device != a.Device+1 {
			t.Fatalf("fragments %d,%d not a mirror pair: devices %d and %d", i, i+1, a.Device, b.Device)
		}
		if a.Req != b.Req {
			t.Fatalf("mirror copies differ: %v vs %v", a.Req, b.Req)
		}
	}
}

// TestRAID10ReadBalance pins the deterministic read policy: reads alternate
// between the two mirrors by stripe row.
func TestRAID10ReadBalance(t *testing.T) {
	const chunk = 16
	g, err := newGeometry(LayoutRAID10, 2, chunk, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	for row := int64(0); row < 4; row++ {
		subs, err := g.split(trace.Request{Op: trace.OpRead, Offset: row * chunk, Count: chunk}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(subs) != 1 {
			t.Fatalf("row %d: %d fragments, want 1", row, len(subs))
		}
		if want := int(row & 1); subs[0].Device != want {
			t.Fatalf("row %d read routed to device %d, want %d", row, subs[0].Device, want)
		}
	}
}

// TestGeometryValidation covers the rejection paths.
func TestGeometryValidation(t *testing.T) {
	for _, tc := range []struct {
		layout  Layout
		devices int
		chunk   int64
	}{
		{LayoutRAID0, 0, 16},      // no devices
		{LayoutRAID10, 3, 16},     // odd mirror count
		{LayoutRAID0, 4, 0},       // zero chunk
		{LayoutRAID0, 4, 1 << 20}, // chunk beyond device
		{LayoutRAID0, 4, 24},      // capacity not a chunk multiple
		{Layout("raid6"), 4, 16},  // unknown layout
	} {
		if _, err := newGeometry(tc.layout, tc.devices, tc.chunk, 1<<16); err == nil {
			t.Errorf("newGeometry(%s, %d, %d) accepted invalid geometry", tc.layout, tc.devices, tc.chunk)
		}
	}
	if _, err := ParseLayout("raid5"); err == nil {
		t.Error("ParseLayout accepted raid5")
	}
	for _, l := range Layouts() {
		if got, err := ParseLayout(string(l)); err != nil || got != l {
			t.Errorf("ParseLayout(%s) = %v, %v", l, got, err)
		}
	}
}

// TestSplitBounds covers request rejection against the volume bound.
func TestSplitBounds(t *testing.T) {
	g, err := newGeometry(LayoutRAID0, 2, 16, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []trace.Request{
		{Op: trace.OpRead, Offset: -1, Count: 8},
		{Op: trace.OpRead, Offset: 0, Count: 0},
		{Op: trace.OpRead, Offset: g.logicalSectors() - 4, Count: 8},
	} {
		if _, err := g.split(req, nil); err == nil {
			t.Errorf("split(%v) accepted an out-of-bounds request", req)
		}
	}
}

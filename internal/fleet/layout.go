// Package fleet composes N independent single-device simulators
// (sim.Runner) into one logical volume — the host-level view of an SSD
// array. A logical request is split into per-device sub-requests by a
// pluggable layout (concatenation, RAID-0 striping, RAID-10
// mirror-of-stripes), each sub-request is dispatched to its device on the
// shared simulated clock, and the logical request completes only when its
// slowest sub-request lands. The layer therefore models inter-device queue
// imbalance and straggler-driven tail latency, and — the scientific point —
// how striping at chunk sizes near the flash page size re-fragments the
// across-page requests that Across-FTL exists to re-align (DESIGN §14).
package fleet

import (
	"fmt"

	"across/internal/trace"
)

// Layout selects how the volume's logical address space maps onto devices.
type Layout string

const (
	// LayoutConcat appends device address spaces back to back — the
	// no-striping baseline: a request touches one device unless it crosses
	// a device boundary.
	LayoutConcat Layout = "concat"
	// LayoutRAID0 stripes the volume across all devices in fixed-size
	// chunks (round-robin by chunk index).
	LayoutRAID0 Layout = "raid0"
	// LayoutRAID10 stripes across mirror pairs: devices 2k and 2k+1 hold
	// identical data; writes go to both, reads alternate between them by
	// stripe row (deterministic read balancing).
	LayoutRAID10 Layout = "raid10"
)

// ParseLayout converts a CLI/JSON layout name into a Layout.
func ParseLayout(s string) (Layout, error) {
	switch Layout(s) {
	case LayoutConcat, LayoutRAID0, LayoutRAID10:
		return Layout(s), nil
	}
	return "", fmt.Errorf("fleet: unknown layout %q (want concat, raid0 or raid10)", s)
}

// Layouts returns every supported layout in comparison order.
func Layouts() []Layout { return []Layout{LayoutConcat, LayoutRAID0, LayoutRAID10} }

// SubRequest is one device-local fragment of a logical request. Req.Offset
// and Req.Count are in the device's own sector address space; Req.Time is
// the logical request's arrival time.
type SubRequest struct {
	Device int
	Req    trace.Request
}

// geometry is the resolved address arithmetic of a volume: data devices
// (mirror pairs count once), chunk size, and per-device capacity.
type geometry struct {
	layout       Layout
	devices      int   // physical devices
	dataDevices  int   // stripe width (devices, or pairs for raid10)
	chunkSectors int64 // stripe chunk (concat: the whole device)
	perDevice    int64 // usable sectors per device
}

func newGeometry(layout Layout, devices int, chunkSectors, perDevice int64) (geometry, error) {
	g := geometry{layout: layout, devices: devices, chunkSectors: chunkSectors, perDevice: perDevice}
	if devices < 1 {
		return g, fmt.Errorf("fleet: need at least 1 device, got %d", devices)
	}
	switch layout {
	case LayoutConcat:
		g.dataDevices = devices
		g.chunkSectors = perDevice
	case LayoutRAID0:
		g.dataDevices = devices
	case LayoutRAID10:
		if devices%2 != 0 || devices < 2 {
			return g, fmt.Errorf("fleet: raid10 needs an even device count >= 2, got %d", devices)
		}
		g.dataDevices = devices / 2
	default:
		return g, fmt.Errorf("fleet: unknown layout %q", layout)
	}
	if g.chunkSectors <= 0 {
		return g, fmt.Errorf("fleet: chunk of %d sectors must be positive", g.chunkSectors)
	}
	if g.chunkSectors > perDevice {
		return g, fmt.Errorf("fleet: chunk of %d sectors exceeds device capacity %d", g.chunkSectors, perDevice)
	}
	if perDevice%g.chunkSectors != 0 && layout != LayoutConcat {
		return g, fmt.Errorf("fleet: device capacity %d sectors is not a multiple of the %d-sector chunk", perDevice, g.chunkSectors)
	}
	return g, nil
}

// logicalSectors is the volume's usable capacity in sectors.
func (g geometry) logicalSectors() int64 {
	return int64(g.dataDevices) * g.perDevice
}

// dataDevice maps a stripe column to the physical device servicing column c
// for stripe row `row`. For mirrored layouts, reads alternate between the
// two mirrors by row parity (write callers enumerate both mirrors instead).
func (g geometry) readDevice(col, row int64) int {
	if g.layout == LayoutRAID10 {
		return int(col)*2 + int(row&1)
	}
	return int(col)
}

// split appends the device-local fragments of one logical request to out and
// returns it. Fragments are emitted in ascending logical-address order; for
// RAID-10 writes both mirrors of a fragment are emitted adjacently (even
// mirror first). The fragment order is part of the determinism contract:
// every engine dispatches sub-requests in exactly this order.
func (g geometry) split(r trace.Request, out []SubRequest) ([]SubRequest, error) {
	if r.Count <= 0 {
		return out, fmt.Errorf("fleet: request with non-positive count %d", r.Count)
	}
	if r.Offset < 0 || r.End() > g.logicalSectors() {
		return out, fmt.Errorf("fleet: request [%d,%d) outside volume of %d sectors",
			r.Offset, r.End(), g.logicalSectors())
	}
	off, remaining := r.Offset, int64(r.Count)
	for remaining > 0 {
		chunk := off / g.chunkSectors
		within := off % g.chunkSectors
		take := g.chunkSectors - within
		if take > remaining {
			take = remaining
		}
		col := chunk % int64(g.dataDevices)
		row := chunk / int64(g.dataDevices)
		devOff := row*g.chunkSectors + within
		sub := trace.Request{Time: r.Time, Op: r.Op, Offset: devOff, Count: int(take)}
		if g.layout == LayoutRAID10 && r.Op == trace.OpWrite {
			out = append(out,
				SubRequest{Device: int(col) * 2, Req: sub},
				SubRequest{Device: int(col)*2 + 1, Req: sub})
		} else {
			out = append(out, SubRequest{Device: g.readDevice(col, row), Req: sub})
		}
		off += take
		remaining -= take
	}
	return out, nil
}

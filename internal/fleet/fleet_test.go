package fleet

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

func fleetConf() ssdconf.Config {
	c := ssdconf.Table1()
	c.Channels = 4
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 64
	c.PagesPerBlock = 32
	return c
}

func fleetTrace(t *testing.T, v *Volume, scale float64) []trace.Request {
	t.Helper()
	p := workload.LunProfiles()[0].Scale(scale)
	reqs, err := workload.Generate(p, v.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func buildVolume(t *testing.T, kind sim.SchemeKind, spec Spec) *Volume {
	t.Helper()
	v, err := New(kind, fleetConf(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// assertFleetIdentical asserts two fleet Results are byte-identical, both
// structurally and through the JSON encoding the daemon and bench emit.
func assertFleetIdentical(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: Result diverged from the serial reference", label)
		if want.Requests != got.Requests || want.SubRequests != got.SubRequests {
			t.Errorf("%s: requests %d/%d vs %d/%d", label, want.Requests, want.SubRequests, got.Requests, got.SubRequests)
		}
		if want.ReadLatencySum != got.ReadLatencySum || want.WriteLatencySum != got.WriteLatencySum {
			t.Errorf("%s: latency sums (%g,%g) vs (%g,%g)", label,
				want.ReadLatencySum, want.WriteLatencySum, got.ReadLatencySum, got.WriteLatencySum)
		}
		if want.Counters() != got.Counters() {
			t.Errorf("%s: counters %+v vs %+v", label, want.Counters(), got.Counters())
		}
		if !reflect.DeepEqual(want.PerDevice, got.PerDevice) {
			t.Errorf("%s: per-device reports diverged", label)
		}
		return
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj, gj) {
		t.Errorf("%s: JSON encodings differ", label)
	}
}

// TestFleetDeterminismMatrix is the fleet analogue of the sim engine's
// determinism matrix: for every layout × queue depth, the Result must be
// byte-identical for every Options.Workers value (the ISSUE's acceptance
// bar). Open-loop runs exercise the parallel per-device engine; closed-loop
// runs must route to the serial engine regardless of Workers.
func TestFleetDeterminismMatrix(t *testing.T) {
	specs := []Spec{
		{Devices: 3, Layout: LayoutConcat},
		{Devices: 4, Layout: LayoutRAID0, ChunkSectors: 32},
		{Devices: 4, Layout: LayoutRAID10, ChunkSectors: 16},
	}
	qds := []int{0, 8}
	workerCounts := []int{2, 4, 8}
	scale := 0.02
	kind := sim.KindAcross
	if testing.Short() {
		specs = specs[1:2]
		scale = 0.01
	}
	for _, spec := range specs {
		ref := buildVolume(t, kind, spec)
		reqs := fleetTrace(t, ref, scale)
		for _, qd := range qds {
			serial, err := buildVolume(t, kind, spec).ReplayQD(reqs, qd, Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s/qd=%d: serial: %v", spec.Layout, qd, err)
			}
			if serial.Requests != int64(len(reqs)) {
				t.Fatalf("%s/qd=%d: replayed %d of %d requests", spec.Layout, qd, serial.Requests, len(reqs))
			}
			for _, workers := range workerCounts {
				got, err := buildVolume(t, kind, spec).ReplayQD(reqs, qd, Options{Workers: workers})
				if err != nil {
					t.Fatalf("%s/qd=%d/workers=%d: %v", spec.Layout, qd, workers, err)
				}
				label := string(spec.Layout) + "/qd=" + itoa(qd) + "/workers=" + itoa(workers)
				assertFleetIdentical(t, serial, got, label)
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestFleetConcatSingleDeviceMatchesSim pins the fleet layer's zero-cost
// abstraction: a 1-device concat volume issues exactly the scheme calls a
// bare sim.Runner would, so the per-request aggregates must match the
// single-device engine's field for field.
func TestFleetConcatSingleDeviceMatchesSim(t *testing.T) {
	conf := fleetConf()
	v := buildVolume(t, sim.KindAcross, Spec{Devices: 1, Layout: LayoutConcat})
	reqs := fleetTrace(t, v, 0.02)

	fres, err := v.Replay(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.NewRunner(sim.KindAcross, conf)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := r.Replay(reqs)
	if err != nil {
		t.Fatal(err)
	}

	if fres.Requests != sres.Requests || fres.ReadCount != sres.ReadCount || fres.WriteCount != sres.WriteCount {
		t.Errorf("request counts diverged: fleet %d/%d/%d vs sim %d/%d/%d",
			fres.Requests, fres.ReadCount, fres.WriteCount, sres.Requests, sres.ReadCount, sres.WriteCount)
	}
	if fres.SubRequests != fres.Requests {
		t.Errorf("1-device concat fanned out: %d sub-requests for %d requests", fres.SubRequests, fres.Requests)
	}
	if fres.ReadLatencySum != sres.ReadLatencySum || fres.WriteLatencySum != sres.WriteLatencySum {
		t.Errorf("latency sums diverged: fleet (%g,%g) vs sim (%g,%g)",
			fres.ReadLatencySum, fres.WriteLatencySum, sres.ReadLatencySum, sres.WriteLatencySum)
	}
	if fres.Counters() != sres.Counters {
		t.Errorf("counters diverged: fleet %+v vs sim %+v", fres.Counters(), sres.Counters)
	}
	if fres.MeasuredSpanMs != sres.MeasuredSpanMs || fres.TraceSpanMs != sres.TraceSpanMs {
		t.Errorf("spans diverged: fleet (%g,%g) vs sim (%g,%g)",
			fres.TraceSpanMs, fres.MeasuredSpanMs, sres.TraceSpanMs, sres.MeasuredSpanMs)
	}
	for op := 0; op < 2; op++ {
		for class := 0; class < 3; class++ {
			fb := fres.ByBucket[op][class]
			key := sim.BucketKey{Op: trace.Op(op), Class: trace.Class(class)}
			sb := sres.ByBucket[key]
			if sb == nil {
				if fb != (sim.OpClassMetrics{}) {
					t.Errorf("bucket %v: fleet %+v vs missing sim bucket", key, fb)
				}
				continue
			}
			if fb != *sb {
				t.Errorf("bucket %v: fleet %+v vs sim %+v", key, fb, *sb)
			}
		}
	}
}

// TestFleetAgeForksIdenticalDevices checks the fork-from-checkpoint warm-up:
// after Age, every device must serialise to the same snapshot as device 0,
// and a volume built with FromSnapshot from the warm blob must replay
// byte-identically to the aged volume.
func TestFleetAgeForksIdenticalDevices(t *testing.T) {
	spec := Spec{Devices: 2, Layout: LayoutRAID0, ChunkSectors: 32}
	aging := sim.DefaultAging()
	aging.ValidFrac = 0.2
	aging.UsedFrac = 0.5

	aged := buildVolume(t, sim.KindFTL, spec)
	if err := aged.Age(aging); err != nil {
		t.Fatal(err)
	}
	blob, err := aged.WarmSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range aged.Runners {
		b, err := r.Snapshot()
		if err != nil {
			t.Fatalf("device %d: %v", i, err)
		}
		if !bytes.Equal(b, blob) {
			t.Fatalf("device %d snapshot differs from device 0 after Age", i)
		}
	}

	forked, err := FromSnapshot(blob, spec)
	if err != nil {
		t.Fatal(err)
	}
	reqs := fleetTrace(t, aged, 0.01)
	ares, err := aged.Replay(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := forked.Replay(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertFleetIdentical(t, ares, fres, "aged vs FromSnapshot")
	if ares.WarmupWrites == 0 {
		t.Error("aged volume reports zero warm-up writes")
	}
}

// TestFleetRestoreWarmValidates checks RestoreWarm's compatibility guard:
// a checkpoint of a different scheme must be rejected.
func TestFleetRestoreWarmValidates(t *testing.T) {
	other, err := sim.NewRunner(sim.KindMRSM, fleetConf())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := other.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	v := buildVolume(t, sim.KindFTL, Spec{Devices: 2, Layout: LayoutRAID0, ChunkSectors: 32})
	if err := v.RestoreWarm(blob); err == nil {
		t.Error("RestoreWarm accepted a checkpoint of a different scheme")
	}
}

// TestFleetClosedLoopGate checks the queue-depth gate actually throttles: on
// a burst trace (every arrival at t=0), qd=1 serialises the requests, so the
// makespan can only grow versus the open-loop flood of the same trace.
func TestFleetClosedLoopGate(t *testing.T) {
	spec := Spec{Devices: 4, Layout: LayoutRAID0, ChunkSectors: 32}
	v := buildVolume(t, sim.KindFTL, spec)
	reqs := fleetTrace(t, v, 0.01)
	for i := range reqs {
		reqs[i].Time = 0
	}
	open, err := buildVolume(t, sim.KindFTL, spec).Replay(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gated, err := buildVolume(t, sim.KindFTL, spec).ReplayQD(reqs, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gated.MeasuredSpanMs < open.MeasuredSpanMs {
		t.Errorf("qd=1 makespan %g ms shorter than open-loop %g ms", gated.MeasuredSpanMs, open.MeasuredSpanMs)
	}
	// Serialising a flood accumulates queue wait into every response time:
	// mean latency can only grow versus issuing everything at t=0.
	if gated.AvgReadLatency() < open.AvgReadLatency() {
		t.Errorf("qd=1 mean read latency %g ms below open-loop flood %g ms — gate not throttling", gated.AvgReadLatency(), open.AvgReadLatency())
	}
}

// TestFleetAuditAfterReplay runs the device invariant auditor over every
// device of a mirrored volume after a replay.
func TestFleetAuditAfterReplay(t *testing.T) {
	v := buildVolume(t, sim.KindAcross, Spec{Devices: 4, Layout: LayoutRAID10, ChunkSectors: 16})
	reqs := fleetTrace(t, v, 0.01)
	if _, err := v.Replay(reqs, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if err := v.Audit(); err != nil {
		t.Error(err)
	}
}

package ssdconf

import "testing"

// FuzzConfigValidate throws arbitrary geometry and FTL knobs at Validate:
// it must never panic, and any configuration it accepts must have positive,
// mutually consistent derived sizes — the contract every constructor's
// make() calls rely on.
func FuzzConfigValidate(f *testing.F) {
	t1 := Table1()
	f.Add(t1.Channels, t1.ChipsPerChan, t1.DiesPerChip, t1.PlanesPerDie,
		t1.BlocksPerPlane, t1.PagesPerBlock, t1.PageBytes, t1.GCThreshold, t1.OverProvision)
	// Each dimension near 2^31: the products wrap int64 without the guard.
	f.Add(1<<31, 1<<31, 1<<31, 1<<31, 1<<31, 1<<31, 1<<20, 0.1, 0.25)
	// Over-provisioning so high the device exports zero logical pages.
	f.Add(1, 1, 1, 1, 2, 1, 512, 0.1, 0.9999999)
	f.Add(0, -1, 1, 1, 64, 64, 8192, 0.5, 0.5)
	f.Fuzz(func(t *testing.T, channels, chips, dies, planes, blocks, pages, pageBytes int, gc, op float64) {
		c := Table1()
		c.Channels, c.ChipsPerChan, c.DiesPerChip, c.PlanesPerDie = channels, chips, dies, planes
		c.BlocksPerPlane, c.PagesPerBlock, c.PageBytes = blocks, pages, pageBytes
		c.GCThreshold, c.OverProvision = gc, op
		if err := c.Validate(); err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if c.PagesTotal() <= 0 {
			t.Fatalf("valid config with non-positive PagesTotal %d: %+v", c.PagesTotal(), c)
		}
		if c.PhysBytes() != c.PagesTotal()*int64(c.PageBytes) || c.PhysBytes() <= 0 {
			t.Fatalf("inconsistent PhysBytes %d for %d pages of %d bytes", c.PhysBytes(), c.PagesTotal(), c.PageBytes)
		}
		if int64(c.BlocksTotal()) != int64(c.PlanesTotal())*int64(c.BlocksPerPlane) {
			t.Fatalf("inconsistent BlocksTotal %d", c.BlocksTotal())
		}
		if c.LogicalPages() < 1 || c.LogicalPages() > c.PagesTotal() {
			t.Fatalf("valid config exports %d logical pages of %d physical", c.LogicalPages(), c.PagesTotal())
		}
		if c.LogicalSectors() != c.LogicalPages()*int64(c.SectorsPerPage()) {
			t.Fatalf("inconsistent LogicalSectors %d", c.LogicalSectors())
		}
		if c.BaselineTableBytes() <= 0 || c.DRAMBudget() <= 0 {
			t.Fatalf("non-positive table sizing: table %d budget %d", c.BaselineTableBytes(), c.DRAMBudget())
		}
		_ = c.String()
	})
}

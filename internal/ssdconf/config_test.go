package ssdconf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTable1MatchesPaper(t *testing.T) {
	c := Table1()
	if err := c.Validate(); err != nil {
		t.Fatalf("Table1 invalid: %v", err)
	}
	if got := c.BlocksTotal(); got != 262144 {
		t.Errorf("BlocksTotal = %d, want 262144 (Table 1)", got)
	}
	if c.PagesPerBlock != 64 {
		t.Errorf("PagesPerBlock = %d, want 64", c.PagesPerBlock)
	}
	if c.PageBytes != 8*1024 {
		t.Errorf("PageBytes = %d, want 8192", c.PageBytes)
	}
	if c.ReadTime != 0.075 || c.ProgramTime != 2.0 || c.CacheAccess != 0.001 {
		t.Errorf("timing = (%v,%v,%v), want (0.075, 2, 0.001)",
			c.ReadTime, c.ProgramTime, c.CacheAccess)
	}
	if c.GCThreshold != 0.10 {
		t.Errorf("GCThreshold = %v, want 0.10", c.GCThreshold)
	}
	if got, want := c.PhysBytes(), int64(262144)*64*8192; got != want {
		t.Errorf("PhysBytes = %d, want %d (128 GiB)", got, want)
	}
}

func TestSectorsPerPage(t *testing.T) {
	for _, tc := range []struct {
		pageBytes, want int
	}{{4096, 8}, {8192, 16}, {16384, 32}} {
		c := Table1().WithPageBytes(tc.pageBytes)
		if got := c.SectorsPerPage(); got != tc.want {
			t.Errorf("SectorsPerPage(%d) = %d, want %d", tc.pageBytes, got, tc.want)
		}
	}
}

func TestWithPageBytesPreservesCapacity(t *testing.T) {
	base := Table1()
	for _, pb := range []int{4096, 16384} {
		v := base.WithPageBytes(pb)
		if err := v.Validate(); err != nil {
			t.Fatalf("variant %d invalid: %v", pb, err)
		}
		if v.PhysBytes() != base.PhysBytes() {
			t.Errorf("capacity changed with %dB pages: %d != %d", pb, v.PhysBytes(), base.PhysBytes())
		}
		if v.LogicalSectors() != base.LogicalSectors() {
			t.Errorf("logical space changed with %dB pages", pb)
		}
	}
	tiny := Tiny()
	if got := tiny.WithPageBytes(1 << 20).BlocksPerPlane; got != 8 {
		t.Errorf("BlocksPerPlane clamp = %d, want 8", got)
	}
}

func TestLogicalSpaceSmallerThanPhysical(t *testing.T) {
	c := Table1()
	if c.LogicalPages() >= c.PagesTotal() {
		t.Fatalf("logical pages %d must be < physical pages %d",
			c.LogicalPages(), c.PagesTotal())
	}
	if got, want := c.LogicalSectors(), c.LogicalPages()*int64(c.SectorsPerPage()); got != want {
		t.Errorf("LogicalSectors = %d, want %d", got, want)
	}
}

func TestScaledPreservesShape(t *testing.T) {
	full := Table1()
	s := Scaled(64)
	if err := s.Validate(); err != nil {
		t.Fatalf("Scaled invalid: %v", err)
	}
	if s.PageBytes != full.PageBytes || s.PagesPerBlock != full.PagesPerBlock {
		t.Errorf("Scaled changed page geometry: %+v", s)
	}
	if s.GCThreshold != full.GCThreshold || s.ProgramTime != full.ProgramTime {
		t.Errorf("Scaled changed FTL/timing parameters")
	}
	if s.BlocksPerPlane != full.BlocksPerPlane/64 {
		t.Errorf("BlocksPerPlane = %d, want %d", s.BlocksPerPlane, full.BlocksPerPlane/64)
	}
}

func TestScaledClampsSmallFactors(t *testing.T) {
	if got := Scaled(0).BlocksPerPlane; got != Table1().BlocksPerPlane {
		t.Errorf("Scaled(0) should be full scale, got %d blocks/plane", got)
	}
	if got := Scaled(1 << 30).BlocksPerPlane; got != 8 {
		t.Errorf("huge factor should clamp to 8 blocks/plane, got %d", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"zero channels", func(c *Config) { c.Channels = 0 }, "Channels"},
		{"one block per plane", func(c *Config) { c.BlocksPerPlane = 1 }, "BlocksPerPlane"},
		{"page smaller than sector", func(c *Config) { c.PageBytes = 256 }, "PageBytes"},
		{"page not sector multiple", func(c *Config) { c.PageBytes = 1000 }, "multiple"},
		{"zero read time", func(c *Config) { c.ReadTime = 0 }, "ReadTime"},
		{"negative cache access", func(c *Config) { c.CacheAccess = -1 }, "CacheAccess"},
		{"gc threshold zero", func(c *Config) { c.GCThreshold = 0 }, "GCThreshold"},
		{"gc threshold too high", func(c *Config) { c.GCThreshold = 0.9 }, "GCThreshold"},
		{"over-provision zero", func(c *Config) { c.OverProvision = 0 }, "OverProvision"},
		{"subpages not dividing page", func(c *Config) { c.SubPagesPerPg = 5 }, "SubPagesPerPg"},
		{"zero mrsm entry", func(c *Config) { c.MRSMEntryBytes = 0 }, "MRSMEntryBytes"},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := Table1()
			m.mut(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate accepted bad config %+v", c)
			}
			if !strings.Contains(err.Error(), m.want) {
				t.Errorf("error %q does not mention %q", err, m.want)
			}
		})
	}
}

func TestTinyIsValidAndSmall(t *testing.T) {
	c := Tiny()
	if err := c.Validate(); err != nil {
		t.Fatalf("Tiny invalid: %v", err)
	}
	if c.PagesTotal() > 4096 {
		t.Errorf("Tiny has %d pages; want something enumerable in tests", c.PagesTotal())
	}
}

func TestDRAMBudgetDefaultsToBaselineTable(t *testing.T) {
	c := Experiment()
	if got, want := c.DRAMBudget(), c.BaselineTableBytes(); got != want {
		t.Errorf("DRAMBudget = %d, want baseline table size %d", got, want)
	}
	c.DRAMBudgetBytes = 12345
	if got := c.DRAMBudget(); got != 12345 {
		t.Errorf("explicit DRAMBudget = %d, want 12345", got)
	}
}

// TestGeometryArithmetic checks, by property, that the counting helpers are
// mutually consistent for arbitrary (small, positive) geometries.
func TestGeometryArithmetic(t *testing.T) {
	f := func(ch, chip, die, plane, blk, pg uint8) bool {
		c := Table1()
		c.Channels = int(ch%8) + 1
		c.ChipsPerChan = int(chip%4) + 1
		c.DiesPerChip = int(die%4) + 1
		c.PlanesPerDie = int(plane%4) + 1
		c.BlocksPerPlane = int(blk%64) + 2
		c.PagesPerBlock = int(pg%32) + 1
		if c.PlanesTotal() != c.Channels*c.ChipsPerChan*c.DiesPerChip*c.PlanesPerDie {
			return false
		}
		if c.BlocksTotal() != c.PlanesTotal()*c.BlocksPerPlane {
			return false
		}
		if c.PagesTotal() != int64(c.BlocksTotal())*int64(c.PagesPerBlock) {
			return false
		}
		return c.Chips() == c.Channels*c.ChipsPerChan
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringMentionsPageSize(t *testing.T) {
	c := Table1()
	s := c.String()
	if !strings.Contains(s, "8KB") {
		t.Errorf("String() = %q, want it to mention the 8KB page", s)
	}
}

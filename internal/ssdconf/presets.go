package ssdconf

// Default FTL sizing parameters shared by the presets. The byte widths are
// the ones used for Fig 12(a)'s space-overhead accounting:
//
//   - baseline PMT entry: 8 B (LPN -> PPN),
//   - Across-FTL adds a 4 B AIdx sidecar per PMT entry plus 16 B AMT entries
//     (AIdx, Off, Size, APPN), landing near the paper's 1.4x average,
//   - MRSM keeps SubPagesPerPg sub-entries of 5 B each per logical page
//     (20 B/page = 2.5x the baseline, near the paper's 2.4x).
const (
	defaultMapEntryBytes  = 8
	defaultAIdxBytes      = 4
	defaultAMTEntryBytes  = 16
	defaultSubPages       = 4
	defaultMRSMEntryBytes = 5
)

// Table1 returns the full-scale configuration of Table 1 in the paper:
// 262144 TLC blocks of 64 pages x 8 KB (128 GiB raw), GC threshold 10%,
// read 0.075 ms, program 2 ms, cache access 0.001 ms. The erase time is not
// listed in Table 1; 3.5 ms is a standard TLC block-erase figure.
//
// The hierarchy split (8 channels x 2 chips x 2 dies x 2 planes x 4096
// blocks) multiplies out to exactly 262144 blocks.
func Table1() Config {
	return Config{
		Channels:       8,
		ChipsPerChan:   2,
		DiesPerChip:    2,
		PlanesPerDie:   2,
		BlocksPerPlane: 4096,
		PagesPerBlock:  64,
		PageBytes:      8 * 1024,

		ReadTime:    0.075,
		ProgramTime: 2.0,
		EraseTime:   3.5,
		CacheAccess: 0.001,

		GCThreshold:    0.10,
		OverProvision:  0.125,
		MapEntryBytes:  defaultMapEntryBytes,
		AIdxBytes:      defaultAIdxBytes,
		AMTEntryBytes:  defaultAMTEntryBytes,
		SubPagesPerPg:  defaultSubPages,
		MRSMEntryBytes: defaultMRSMEntryBytes,
	}
}

// Scaled returns the Table 1 configuration with BlocksPerPlane divided by
// factor (minimum 8 blocks per plane). Everything that shapes the paper's
// results — page size, pages per block, GC threshold, timing, channel
// parallelism — is untouched, so replaying a trace whose footprint is scaled
// by the same factor produces the same relative behaviour at a fraction of
// the run time.
func Scaled(factor int) Config {
	c := Table1()
	if factor < 1 {
		factor = 1
	}
	c.BlocksPerPlane /= factor
	if c.BlocksPerPlane < 8 {
		c.BlocksPerPlane = 8
	}
	return c
}

// Experiment returns the default configuration used by the experiment
// harness and benchmarks: Table 1 scaled 64x (2 GiB raw, 32768 blocks).
// A lun-profile trace footprint fits well inside it while still generating
// realistic GC pressure after aging.
func Experiment() Config { return Scaled(64) }

// Tiny returns a minimal configuration for unit tests: 2 channels, a few
// hundred pages, same timing. Small enough that tests can enumerate every
// page, big enough to exercise GC.
func Tiny() Config {
	c := Table1()
	c.Channels = 2
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 16
	c.PagesPerBlock = 8
	return c
}

// WithPageBytes returns a copy of c with the page size replaced and the
// block count rescaled so the raw capacity is unchanged — the Fig 13/14
// case study replays the same fixed traces against 4, 8 and 16 KB devices
// of equal size. BlocksPerPlane is clamped to at least 8.
func (c Config) WithPageBytes(pageBytes int) Config {
	old := c.PageBytes
	c.PageBytes = pageBytes
	c.BlocksPerPlane = c.BlocksPerPlane * old / pageBytes
	if c.BlocksPerPlane < 8 {
		c.BlocksPerPlane = 8
	}
	return c
}

// Package ssdconf defines the geometry and timing configuration of the
// simulated SSD, including the TLC configuration used in Table 1 of the
// paper and shape-preserving scaled variants used to keep experiment runs
// fast.
//
// All sizes are expressed in sectors (512 B) unless the name says otherwise;
// all times are in milliseconds.
package ssdconf

import (
	"fmt"
)

// SectorBytes is the size of one logical sector, the addressing granularity
// of block traces (and of the AMT offset/size fields in the paper).
const SectorBytes = 512

// Config describes a simulated SSD: its physical geometry, NAND timing, and
// the FTL-level parameters shared by every scheme.
type Config struct {
	// Geometry, from the top of the hierarchy downwards.
	Channels       int // independent channels
	ChipsPerChan   int // chips (targets) per channel
	DiesPerChip    int // dies per chip
	PlanesPerDie   int // planes per die
	BlocksPerPlane int // blocks per plane
	PagesPerBlock  int // pages per block (Table 1: 64)
	PageBytes      int // page size in bytes (Table 1: 8 KiB)

	// NAND + controller timing (milliseconds).
	ReadTime    float64 // page read, Table 1: 0.075 ms
	ProgramTime float64 // page program, Table 1: 2 ms
	EraseTime   float64 // block erase (not in Table 1; standard TLC value)
	CacheAccess float64 // DRAM/cache access, Table 1: 0.001 ms
	// TransferTime is the channel-bus transfer cost per page operation.
	// Table 1 folds transfers into the read/program figures, so the preset
	// leaves it 0; set it to model slower buses explicitly.
	TransferTime float64

	// FTL parameters.
	GCThreshold    float64 // trigger GC when plane free-page fraction < this (Table 1: 10%)
	OverProvision  float64 // fraction of logical space exported (logical = physical * (1-OP))
	MapEntryBytes  int     // bytes per PMT entry used for table sizing (baseline FTL)
	AMTEntryBytes  int     // bytes per AMT entry (Across-FTL)
	AIdxBytes      int     // bytes added per PMT entry by the AIdx field (Across-FTL)
	SubPagesPerPg  int     // MRSM sub-regions per page
	MRSMEntryBytes int     // bytes per MRSM sub-page mapping entry

	// DRAMBudgetBytes is the mapping-cache budget. Zero means "size of the
	// baseline FTL's full page mapping table" (the paper's setting: the
	// baseline table fits, MRSM's 2.4x table does not).
	DRAMBudgetBytes int64
}

// SectorsPerPage returns the number of 512 B sectors in one flash page.
func (c *Config) SectorsPerPage() int { return c.PageBytes / SectorBytes }

// PlanesTotal returns the number of planes in the device.
func (c *Config) PlanesTotal() int {
	return c.Channels * c.ChipsPerChan * c.DiesPerChip * c.PlanesPerDie
}

// BlocksTotal returns the number of physical blocks in the device.
func (c *Config) BlocksTotal() int { return c.PlanesTotal() * c.BlocksPerPlane }

// PagesTotal returns the number of physical pages in the device.
func (c *Config) PagesTotal() int64 {
	return int64(c.BlocksTotal()) * int64(c.PagesPerBlock)
}

// PhysBytes returns the raw capacity of the device in bytes.
func (c *Config) PhysBytes() int64 { return c.PagesTotal() * int64(c.PageBytes) }

// LogicalPages returns the number of logical pages exported to the host
// after over-provisioning.
func (c *Config) LogicalPages() int64 {
	return int64(float64(c.PagesTotal()) * (1 - c.OverProvision))
}

// LogicalSectors returns the number of addressable host sectors.
func (c *Config) LogicalSectors() int64 {
	return c.LogicalPages() * int64(c.SectorsPerPage())
}

// Chips returns the number of independently schedulable chips. The per-chip
// timeline is the unit of time-multiplexing in the simulator.
func (c *Config) Chips() int { return c.Channels * c.ChipsPerChan }

// BaselineTableBytes is the in-DRAM size of the conventional page-level
// mapping table (one entry per logical page).
func (c *Config) BaselineTableBytes() int64 {
	return c.LogicalPages() * int64(c.MapEntryBytes)
}

// DRAMBudget resolves the effective mapping-cache budget in bytes.
func (c *Config) DRAMBudget() int64 {
	if c.DRAMBudgetBytes > 0 {
		return c.DRAMBudgetBytes
	}
	return c.BaselineTableBytes()
}

// Validate checks the configuration for internal consistency. Every
// constructor in the simulator calls it, so an invalid Config cannot
// silently produce nonsense results.
func (c *Config) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{c.Channels > 0, "Channels must be positive"},
		{c.ChipsPerChan > 0, "ChipsPerChan must be positive"},
		{c.DiesPerChip > 0, "DiesPerChip must be positive"},
		{c.PlanesPerDie > 0, "PlanesPerDie must be positive"},
		{c.BlocksPerPlane > 1, "BlocksPerPlane must be at least 2 (GC needs a spare)"},
		{c.PagesPerBlock > 0, "PagesPerBlock must be positive"},
		{c.PageBytes >= SectorBytes, "PageBytes must be at least one sector"},
		{c.PageBytes%SectorBytes == 0, "PageBytes must be a multiple of the sector size"},
		{c.ReadTime > 0, "ReadTime must be positive"},
		{c.ProgramTime > 0, "ProgramTime must be positive"},
		{c.EraseTime > 0, "EraseTime must be positive"},
		{c.CacheAccess >= 0, "CacheAccess must be non-negative"},
		{c.TransferTime >= 0, "TransferTime must be non-negative"},
		{c.GCThreshold > 0 && c.GCThreshold < 1, "GCThreshold must be in (0,1)"},
		{c.OverProvision > 0 && c.OverProvision < 1, "OverProvision must be in (0,1)"},
		{c.MapEntryBytes > 0, "MapEntryBytes must be positive"},
		{c.AMTEntryBytes > 0, "AMTEntryBytes must be positive"},
		{c.AIdxBytes > 0, "AIdxBytes must be positive"},
		{c.SubPagesPerPg > 0, "SubPagesPerPg must be positive"},
		{c.MRSMEntryBytes > 0, "MRSMEntryBytes must be positive"},
	}
	for _, ck := range checks {
		if !ck.ok {
			return fmt.Errorf("ssdconf: %s", ck.msg)
		}
	}
	if c.SectorsPerPage()%c.SubPagesPerPg != 0 {
		return fmt.Errorf("ssdconf: SubPagesPerPg (%d) must divide sectors per page (%d)",
			c.SubPagesPerPg, c.SectorsPerPage())
	}
	if c.GCThreshold > 0.5 {
		return fmt.Errorf("ssdconf: GCThreshold %.2f leaves too little usable space", c.GCThreshold)
	}
	// Overflow guard: the derived totals (PlanesTotal → BlocksTotal →
	// PagesTotal → PhysBytes) size slice allocations, so a geometry whose
	// products wrap int64 — or describe an absurd device — must be rejected
	// here, before any constructor calls make().
	total := int64(1)
	for _, dim := range [...]int64{
		int64(c.Channels), int64(c.ChipsPerChan), int64(c.DiesPerChip),
		int64(c.PlanesPerDie), int64(c.BlocksPerPlane), int64(c.PagesPerBlock),
		int64(c.PageBytes),
	} {
		next := total * dim
		if next/dim != total || next > maxPhysBytes {
			return fmt.Errorf("ssdconf: geometry describes more than %d bytes of flash (or overflows)", int64(maxPhysBytes))
		}
		total = next
	}
	if c.LogicalPages() < 1 {
		return fmt.Errorf("ssdconf: OverProvision %.4f leaves no exported logical pages", c.OverProvision)
	}
	return nil
}

// maxPhysBytes bounds the raw capacity Validate accepts: 1 PiB, far above
// Table 1's 128 GiB but small enough that every derived count (pages,
// blocks, sectors) fits comfortably in int64 arithmetic downstream.
const maxPhysBytes = int64(1) << 50

// String renders a short human-readable summary of the configuration.
func (c *Config) String() string {
	return fmt.Sprintf("ssd{%dch x %dchip x %ddie x %dplane, %d blk/plane, %d pg/blk, %dKB page, %.1fGiB}",
		c.Channels, c.ChipsPerChan, c.DiesPerChip, c.PlanesPerDie,
		c.BlocksPerPlane, c.PagesPerBlock, c.PageBytes/1024,
		float64(c.PhysBytes())/(1<<30))
}

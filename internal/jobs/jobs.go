// Package jobs is a bounded worker-pool job scheduler for simulation work:
// the substrate under the acrossd daemon. It provides priority FIFO
// queueing, content-addressed deduplication (two submissions with the same
// key share one execution), per-job timeouts, retry with exponential
// backoff for transient failures, cancellation of both queued and running
// jobs, and a graceful drain that lets everything already accepted finish
// before shutdown.
//
// The scheduler is parallelism-aware: jobs may be submitted with a Weight,
// and at start each job receives a best-effort grant of CPU tokens
// (readable inside the job via Parallelism(ctx)) to size its own internal
// worker pool — e.g. a parallel replay. Grants never delay a start, so N
// independent single-weight replays still spread across N cores.
//
// The scheduler knows nothing about the simulator: a job is an opaque
// func(ctx) (any, error). Cancellation reaches a running job only through
// its context, so job bodies must thread ctx into long-running work (the
// sim package's ReplayQDCtx / AgeCtx exist for exactly this).
package jobs

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State string

// The job lifecycle: Queued -> Running -> one of the three terminal states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// Func is one unit of work. The result it returns is retained on the Job
// and surfaced by Result(); the error decides the terminal state.
type Func func(ctx context.Context) (any, error)

// transientError marks an error as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps an error to tell the scheduler the failure is worth
// retrying (a full disk, a momentarily unavailable store — not a
// deterministic simulator error, which would fail identically again).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Errors returned by Submit.
var (
	// ErrDraining rejects submissions after Drain or Close has begun.
	ErrDraining = errors.New("jobs: scheduler is draining")
	// ErrQueueFull rejects submissions when the queue is at capacity.
	ErrQueueFull = errors.New("jobs: queue is full")
)

// Job is one scheduled unit of work.
type Job struct {
	// ID is the scheduler-assigned identifier ("j-000001").
	ID string
	// Key is the content-address used for deduplication ("" = never
	// deduplicated).
	Key string
	// Priority orders the queue: higher runs first; FIFO within a priority.
	Priority int
	// Weight is how many CPU tokens the job would like while running (see
	// SubmitOpts.Weight). The actual grant is best-effort and surfaced to
	// the job body via Parallelism.
	Weight int

	fn      Func
	timeout time.Duration
	seq     uint64
	granted int // CPU tokens actually granted (set when the job starts)

	mu          sync.Mutex
	state       State
	result      any
	err         error
	attempts    int
	cancelled   bool               // cancel requested (queued or running)
	cancelRun   context.CancelFunc // cancels the running attempt
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	done chan struct{}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job's outcome; valid once Done is closed. The error is
// nil exactly when the state is StateSucceeded.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Attempts returns how many times the job's Func has been invoked.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// Granted returns the CPU tokens the scheduler gave the job when it started
// (0 while still queued; at least 1 once running).
func (j *Job) Granted() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.granted
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx expires; it returns the job's
// error (nil on success) or the context's.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		_, err := j.Result()
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Times returns the submit/start/finish timestamps (zero when the phase has
// not been reached).
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submittedAt, j.startedAt, j.finishedAt
}

// Options configures a Scheduler.
type Options struct {
	// Workers bounds concurrent job execution (default: GOMAXPROCS).
	Workers int
	// QueueCap bounds the number of queued-but-not-running jobs (default
	// 1024; Submit returns ErrQueueFull beyond it).
	QueueCap int
	// DefaultTimeout bounds each job's total execution time including
	// retries (0 = no timeout). SubmitOpts can override per job.
	DefaultTimeout time.Duration
	// Retries is how many times a Transient failure is re-attempted
	// (default 0 = no retries).
	Retries int
	// Backoff is the delay before the first retry; it doubles per attempt
	// (default 50ms).
	Backoff time.Duration
	// CPUTokens is the core budget weighted jobs draw extra parallelism
	// from (default: Workers). Every running job holds one token; a job
	// submitted with Weight w is granted up to w-1 more from whatever the
	// budget has spare. Grants are best-effort — a job is never blocked
	// waiting for tokens — so a sweep of N single-weight replays still runs
	// N-wide, while a lone weight-N job gets the whole budget.
	CPUTokens int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.CPUTokens <= 0 {
		o.CPUTokens = o.Workers
	}
	return o
}

// Stats is a point-in-time snapshot of scheduler occupancy.
type Stats struct {
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Deduped   int64 `json:"deduped"`
	Draining  bool  `json:"draining"`
	// CPUTokens is the core budget; GrantedTokens how much of it running
	// jobs currently hold (base token plus any weighted extras).
	CPUTokens     int `json:"cpu_tokens"`
	GrantedTokens int `json:"granted_tokens"`
	// Workers and QueueCap echo the scheduler's configured capacities so a
	// snapshot is interpretable on its own (queued/QueueCap is the
	// saturation ratio health endpoints report).
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
}

// Scheduler runs jobs on a bounded worker pool.
type Scheduler struct {
	opts Options

	rootCtx  context.Context
	rootStop context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond // signalled when the queue gains a job or the scheduler stops
	idle     *sync.Cond // signalled when a job finishes (Drain waits on it)
	queue    jobQueue
	byID     map[string]*Job
	byKey    map[string]*Job
	seq      uint64
	nextID   uint64
	running  int
	extra    int // weighted tokens lent to running jobs beyond their base one
	draining bool
	closed   bool
	stats    Stats

	wg sync.WaitGroup
}

// New starts a scheduler with opts' worker pool.
func New(opts Options) *Scheduler {
	opts = opts.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Scheduler{
		opts:     opts,
		rootCtx:  ctx,
		rootStop: stop,
		byID:     make(map[string]*Job),
		byKey:    make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	s.idle = sync.NewCond(&s.mu)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// SubmitOpts tunes one submission.
type SubmitOpts struct {
	// Key deduplicates: if a non-terminal (or succeeded) job with the same
	// key exists, it is returned instead of queueing a duplicate. Failed and
	// cancelled jobs do not block resubmission.
	Key string
	// Priority orders the queue (higher first; FIFO within a priority).
	Priority int
	// Timeout overrides Options.DefaultTimeout for this job (0 = inherit).
	Timeout time.Duration
	// Weight is the CPU tokens the job would like while running (default
	// and minimum 1). When the job starts, the scheduler grants it between
	// 1 and Weight tokens depending on how much of Options.CPUTokens is
	// spare, and the job body reads the grant with Parallelism(ctx) — e.g.
	// to size a parallel replay's worker pool. Weight never delays a start.
	Weight int
}

// Submit queues fn. The returned bool is true when an existing job was
// returned instead of queueing a new one (dedup hit).
func (s *Scheduler) Submit(opts SubmitOpts, fn Func) (*Job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return nil, false, ErrDraining
	}
	if opts.Key != "" {
		if prev, ok := s.byKey[opts.Key]; ok {
			st := prev.State()
			if st != StateFailed && st != StateCancelled {
				s.stats.Deduped++
				return prev, true, nil
			}
		}
	}
	if s.queue.Len() >= s.opts.QueueCap {
		return nil, false, ErrQueueFull
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = s.opts.DefaultTimeout
	}
	weight := opts.Weight
	if weight < 1 {
		weight = 1
	}
	if weight > s.opts.CPUTokens {
		weight = s.opts.CPUTokens
	}
	s.nextID++
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("j-%06d", s.nextID),
		Key:         opts.Key,
		Priority:    opts.Priority,
		Weight:      weight,
		fn:          fn,
		timeout:     timeout,
		seq:         s.seq,
		state:       StateQueued,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}
	s.byID[j.ID] = j
	if j.Key != "" {
		s.byKey[j.Key] = j
	}
	heap.Push(&s.queue, j)
	s.cond.Signal()
	return j, false, nil
}

// Get returns a job by ID (nil when unknown).
func (s *Scheduler) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// Lookup returns the job registered under a dedup key (nil when none).
func (s *Scheduler) Lookup(key string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKey[key]
}

// Jobs returns every job the scheduler knows, in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.byID))
	for _, j := range s.byID {
		out = append(out, j)
	}
	// Submission order == seq order.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].seq < out[k-1].seq; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Cancel requests cancellation of a job. A queued job finishes immediately
// as cancelled; a running job's context is cancelled and it finishes as
// cancelled once its Func returns. Cancel reports whether the job existed
// and was not already terminal.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return false
	case j.state == StateRunning:
		j.cancelled = true
		if j.cancelRun != nil {
			j.cancelRun()
		}
		j.mu.Unlock()
		return true
	default:
		// Queued: finish it as cancelled right away; the worker that later
		// pops it sees a terminal job and skips it.
		j.cancelled = true
		j.mu.Unlock()
		s.finish(j, nil, context.Canceled)
		return true
	}
}

// Stats snapshots occupancy.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = s.queue.Len()
	st.Running = s.running
	st.Draining = s.draining || s.closed
	st.CPUTokens = s.opts.CPUTokens
	st.GrantedTokens = s.running + s.extra
	st.Workers = s.opts.Workers
	st.QueueCap = s.opts.QueueCap
	return st
}

// Drain stops accepting new jobs and waits for every queued and running job
// to finish. If ctx expires first, everything still outstanding is
// cancelled and ctx's error returned (workers are still waited for, so no
// job outlives Drain).
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.queue.Len() > 0 || s.running > 0 {
			s.idle.Wait()
		}
		s.mu.Unlock()
		close(drained)
	}()

	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.rootStop() // cancel running jobs; queued ones are popped and cancelled
		<-drained
	}
	s.shutdownWorkers()
	return err
}

// Close cancels everything outstanding and stops the workers. Safe to call
// after Drain (it is then a no-op beyond bookkeeping).
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.rootStop()
	s.shutdownWorkers()
}

func (s *Scheduler) shutdownWorkers() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// worker pops the highest-priority job and runs it to a terminal state.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.closed {
			if s.draining && s.running == 0 {
				// Drained: nothing queued, nothing running, no new
				// submissions possible. Let Drain's waiter see it.
				s.idle.Broadcast()
			}
			s.cond.Wait()
		}
		if s.queue.Len() == 0 && s.closed {
			s.idle.Broadcast()
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*Job)
		s.running++
		// Grant the job its base token plus whatever weighted extras the
		// budget has spare. Best-effort: with every worker busy there is no
		// spare and everyone runs at 1 — so a wide sweep of single-weight
		// jobs saturates the cores, while a lone weighted job on an idle
		// scheduler collects the whole budget.
		extra := j.Weight - 1
		if spare := s.opts.CPUTokens - s.running - s.extra; extra > spare {
			extra = spare
		}
		if extra < 0 {
			extra = 0
		}
		s.extra += extra
		s.mu.Unlock()

		s.runJob(j, 1+extra)

		s.mu.Lock()
		s.running--
		s.extra -= extra
		s.idle.Broadcast()
		s.mu.Unlock()
	}
}

// parallelismKey carries a job's CPU-token grant in its context.
type parallelismKey struct{}

// Parallelism returns the CPU tokens granted to the job that owns ctx — the
// concurrency a job body should use for its own internal parallelism (e.g.
// sim.ParallelOptions.Workers). Outside a weighted job it returns 1, so it
// is always safe to pass the result straight to a worker-pool size.
func Parallelism(ctx context.Context) int {
	if v, ok := ctx.Value(parallelismKey{}).(int); ok && v > 0 {
		return v
	}
	return 1
}

// runJob executes one job with timeout, cancellation and transient-retry
// semantics, then finalises its state. granted is the job's CPU-token
// grant, exposed to the body via Parallelism.
func (s *Scheduler) runJob(j *Job, granted int) {
	j.mu.Lock()
	if j.state.Terminal() { // cancelled while queued and already finished
		j.mu.Unlock()
		return
	}
	if j.cancelled { // cancel raced the pop; finish does the bookkeeping
		j.mu.Unlock()
		s.finish(j, nil, context.Canceled)
		return
	}
	ctx := context.WithValue(s.rootCtx, parallelismKey{}, granted)
	var cancel context.CancelFunc
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.state = StateRunning
	j.startedAt = time.Now()
	j.cancelRun = cancel
	j.granted = granted
	j.mu.Unlock()
	defer cancel()

	backoff := s.opts.Backoff
	var (
		res any
		err error
	)
	for attempt := 0; ; attempt++ {
		j.mu.Lock()
		j.attempts++
		j.mu.Unlock()
		res, err = safeCall(ctx, j.fn)
		if err == nil || ctx.Err() != nil || attempt >= s.opts.Retries || !IsTransient(err) {
			break
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			err = ctx.Err()
		}
		if ctx.Err() != nil {
			break
		}
		backoff *= 2
	}

	s.finish(j, res, err)
}

// finish moves j to its terminal state. Never called with either lock held
// (taking j.mu then s.mu while Submit takes s.mu then j.mu would invert
// ordering, so the two are taken strictly in sequence here). The terminal
// check makes racing finishers (a queued-cancel racing the worker's pop)
// safe: only the caller that performs the transition closes done.
func (s *Scheduler) finish(j *Job, res any, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.finishedAt = time.Now()
	switch {
	case err == nil:
		j.state = StateSucceeded
		j.result = res
	case j.cancelled || errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = fmt.Errorf("jobs: %s cancelled: %w", j.ID, err)
	case errors.Is(err, context.DeadlineExceeded):
		j.state = StateFailed
		j.err = fmt.Errorf("jobs: %s timed out after %s: %w", j.ID, j.timeout, err)
	default:
		j.state = StateFailed
		j.err = err
	}
	state := j.state
	j.mu.Unlock()
	s.mu.Lock()
	switch state {
	case StateSucceeded:
		s.stats.Succeeded++
	case StateFailed:
		s.stats.Failed++
	case StateCancelled:
		s.stats.Cancelled++
	}
	s.mu.Unlock()
	close(j.done)
}

// safeCall invokes fn, converting a panic into an error so one bad job
// cannot take the daemon down.
func safeCall(ctx context.Context, fn Func) (res any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("jobs: job panicked: %v", p)
		}
	}()
	return fn(ctx)
}

// jobQueue is a priority FIFO: max Priority first, submission (seq) order
// within a priority.
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, k int) bool {
	if q[i].Priority != q[k].Priority {
		return q[i].Priority > q[k].Priority
	}
	return q[i].seq < q[k].seq
}
func (q jobQueue) Swap(i, k int) { q[i], q[k] = q[k], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*Job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitCtx bounds every blocking wait in these tests.
func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSubmitRunsToSuccess(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()
	j, dedup, err := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		return 42, nil
	})
	if err != nil || dedup {
		t.Fatalf("Submit: dedup=%v err=%v", dedup, err)
	}
	if err := j.Wait(waitCtx(t)); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	res, err := j.Result()
	if err != nil || res.(int) != 42 {
		t.Fatalf("Result = %v, %v; want 42, nil", res, err)
	}
	if st := j.State(); st != StateSucceeded {
		t.Fatalf("state = %v", st)
	}
}

func TestDedupByKey(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	gate := make(chan struct{})
	var runs int32
	var mu sync.Mutex
	fn := func(ctx context.Context) (any, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		<-gate
		return "done", nil
	}
	j1, d1, err := s.Submit(SubmitOpts{Key: "k"}, fn)
	if err != nil || d1 {
		t.Fatalf("first submit: dedup=%v err=%v", d1, err)
	}
	j2, d2, err := s.Submit(SubmitOpts{Key: "k"}, fn)
	if err != nil || !d2 {
		t.Fatalf("second submit: dedup=%v err=%v", d2, err)
	}
	if j1 != j2 {
		t.Fatalf("dedup returned a different job: %s vs %s", j1.ID, j2.ID)
	}
	close(gate)
	if err := j1.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if runs != 1 {
		t.Fatalf("fn ran %d times, want 1", runs)
	}
	if st := s.Stats(); st.Deduped != 1 {
		t.Fatalf("Deduped = %d, want 1", st.Deduped)
	}
}

func TestFailedJobDoesNotBlockResubmission(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	j1, _, _ := s.Submit(SubmitOpts{Key: "k"}, func(ctx context.Context) (any, error) {
		return nil, errors.New("boom")
	})
	_ = j1.Wait(waitCtx(t))
	j2, dedup, err := s.Submit(SubmitOpts{Key: "k"}, func(ctx context.Context) (any, error) {
		return "ok", nil
	})
	if err != nil || dedup {
		t.Fatalf("resubmit after failure: dedup=%v err=%v", dedup, err)
	}
	if err := j2.Wait(waitCtx(t)); err != nil {
		t.Fatalf("resubmitted job: %v", err)
	}
}

// TestPriorityFIFO pins one worker on a gate job, queues mixed-priority
// jobs, and asserts execution order: high priority first, FIFO within equal
// priority.
func TestPriorityFIFO(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	gate := make(chan struct{})
	blocker, _, err := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	mk := func(name string, prio int) *Job {
		j, _, err := s.Submit(SubmitOpts{Priority: prio}, func(ctx context.Context) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	low1 := mk("low1", 0)
	high1 := mk("high1", 10)
	low2 := mk("low2", 0)
	high2 := mk("high2", 10)
	close(gate)
	for _, j := range []*Job{blocker, low1, high1, low2, high2} {
		if err := j.Wait(waitCtx(t)); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high1", "high2", "low1", "low2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order = %v, want %v", order, want)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	gate := make(chan struct{})
	defer close(gate)
	s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) { <-gate; return nil, nil })
	j, _, _ := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		t.Error("cancelled queued job must not run")
		return nil, nil
	})
	if !s.Cancel(j.ID) {
		t.Fatal("Cancel returned false for a queued job")
	}
	_ = j.Wait(waitCtx(t))
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state = %v, want cancelled", st)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	started := make(chan struct{})
	j, _, _ := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	if !s.Cancel(j.ID) {
		t.Fatal("Cancel returned false for a running job")
	}
	if err := j.Wait(waitCtx(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state = %v, want cancelled", st)
	}
}

func TestJobTimeout(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	j, _, _ := s.Submit(SubmitOpts{Timeout: 20 * time.Millisecond}, func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err := j.Wait(waitCtx(t)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want deadline exceeded", err)
	}
	if st := j.State(); st != StateFailed {
		t.Fatalf("state = %v, want failed (timeout is a failure, not a cancel)", st)
	}
}

func TestTransientRetryWithBackoff(t *testing.T) {
	s := New(Options{Workers: 1, Retries: 3, Backoff: time.Millisecond})
	defer s.Close()
	var calls int
	var mu sync.Mutex
	j, _, _ := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n < 3 {
			return nil, Transient(fmt.Errorf("flaky disk (attempt %d)", n))
		}
		return "recovered", nil
	})
	if err := j.Wait(waitCtx(t)); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := j.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestNonTransientIsNotRetried(t *testing.T) {
	s := New(Options{Workers: 1, Retries: 5, Backoff: time.Millisecond})
	defer s.Close()
	j, _, _ := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		return nil, errors.New("deterministic simulator error")
	})
	_ = j.Wait(waitCtx(t))
	if got := j.Attempts(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry for permanent errors)", got)
	}
	if st := j.State(); st != StateFailed {
		t.Fatalf("state = %v", st)
	}
}

func TestTransientExhaustionFails(t *testing.T) {
	s := New(Options{Workers: 1, Retries: 2, Backoff: time.Millisecond})
	defer s.Close()
	j, _, _ := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		return nil, Transient(errors.New("still flaky"))
	})
	_ = j.Wait(waitCtx(t))
	if got, st := j.Attempts(), j.State(); got != 3 || st != StateFailed {
		t.Fatalf("attempts=%d state=%v, want 3 attempts then failed", got, st)
	}
}

func TestQueueFull(t *testing.T) {
	s := New(Options{Workers: 1, QueueCap: 2})
	defer s.Close()
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started // the blocker occupies the worker, not a queue slot
	// Worker is busy; two more fill the queue.
	for i := 0; i < 2; i++ {
		if _, _, err := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, _, err := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit = %v, want ErrQueueFull", err)
	}
}

func TestDrainFinishesOutstandingAndRejectsNew(t *testing.T) {
	s := New(Options{Workers: 2})
	var done int32
	var mu sync.Mutex
	var all []*Job
	for i := 0; i < 8; i++ {
		j, _, err := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			done++
			mu.Unlock()
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, j)
	}
	if err := s.Drain(waitCtx(t)); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	mu.Lock()
	if done != 8 {
		t.Fatalf("drained with %d/8 jobs finished", done)
	}
	mu.Unlock()
	for _, j := range all {
		if st := j.State(); st != StateSucceeded {
			t.Fatalf("job %s state = %v after drain", j.ID, st)
		}
	}
	if _, _, err := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain = %v, want ErrDraining", err)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s := New(Options{Workers: 1})
	started := make(chan struct{})
	j, _, _ := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // a well-behaved ctx-threading job
		return nil, ctx.Err()
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want deadline exceeded", err)
	}
	if st := j.State(); st != StateCancelled {
		t.Fatalf("straggler state = %v, want cancelled", st)
	}
}

func TestPanickingJobFails(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	j, _, _ := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		panic("job bug")
	})
	err := j.Wait(waitCtx(t))
	if err == nil || j.State() != StateFailed {
		t.Fatalf("panicking job: err=%v state=%v", err, j.State())
	}
}

// TestConcurrentSubmitters hammers Submit/Cancel/Stats from many goroutines
// (run with -race).
func TestConcurrentSubmitters(t *testing.T) {
	s := New(Options{Workers: 4, QueueCap: 4096})
	defer s.Close()
	var wg sync.WaitGroup
	var jobs sync.Map
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("k-%d", (g*25+i)%40) // plenty of dedup collisions
				j, _, err := s.Submit(SubmitOpts{Key: key, Priority: i % 3}, func(ctx context.Context) (any, error) {
					return key, nil
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				jobs.Store(j.ID, j)
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	ctx := waitCtx(t)
	jobs.Range(func(_, v any) bool {
		if err := v.(*Job).Wait(ctx); err != nil {
			t.Errorf("job: %v", err)
		}
		return true
	})
}

func TestWeightedGrantOnIdleScheduler(t *testing.T) {
	s := New(Options{Workers: 4, CPUTokens: 8})
	defer s.Close()
	got := make(chan int, 1)
	j, _, err := s.Submit(SubmitOpts{Weight: 8}, func(ctx context.Context) (any, error) {
		got <- Parallelism(ctx)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	// Idle scheduler, 8-token budget, one base token in use: the weighted
	// job collects the whole budget.
	if g := <-got; g != 8 {
		t.Fatalf("Parallelism = %d, want 8", g)
	}
	if g := j.Granted(); g != 8 {
		t.Fatalf("Granted = %d, want 8", g)
	}
}

func TestWeightedGrantShrinksUnderLoad(t *testing.T) {
	s := New(Options{Workers: 4, CPUTokens: 4})
	defer s.Close()
	release := make(chan struct{})
	var wg sync.WaitGroup
	// Occupy 3 of the 4 workers; each holds its base token.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		_, _, err := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
			wg.Done()
			<-release
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	got := make(chan int, 1)
	j, _, err := s.Submit(SubmitOpts{Weight: 4}, func(ctx context.Context) (any, error) {
		got <- Parallelism(ctx)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	// 3 base tokens are held, so only 1 of the 4-token budget is spare:
	// the weight-4 job starts anyway with its base token and no extras.
	if g := <-got; g != 1 {
		t.Fatalf("Parallelism under load = %d, want 1 (best-effort, never blocks)", g)
	}
	close(release)
}

func TestWeightedTokensReturnAfterJob(t *testing.T) {
	s := New(Options{Workers: 2, CPUTokens: 6})
	defer s.Close()
	run := func(weight int) int {
		got := make(chan int, 1)
		j, _, err := s.Submit(SubmitOpts{Weight: weight}, func(ctx context.Context) (any, error) {
			got <- Parallelism(ctx)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(waitCtx(t)); err != nil {
			t.Fatal(err)
		}
		return <-got
	}
	// Sequential weighted jobs each see the full spare budget: the tokens
	// lent to the first are back before the second starts.
	for i := 0; i < 3; i++ {
		if g := run(6); g != 6 {
			t.Fatalf("run %d: Parallelism = %d, want 6", i, g)
		}
	}
	st := s.Stats()
	if st.GrantedTokens != 0 || st.CPUTokens != 6 {
		t.Fatalf("tokens leaked: %+v", st)
	}
}

func TestWeightClampedToBudget(t *testing.T) {
	s := New(Options{Workers: 1, CPUTokens: 3})
	defer s.Close()
	j, _, err := s.Submit(SubmitOpts{Weight: 100}, func(ctx context.Context) (any, error) {
		return Parallelism(ctx), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	if j.Weight != 3 {
		t.Fatalf("Weight = %d, want clamp to budget 3", j.Weight)
	}
	res, _ := j.Result()
	if res.(int) != 3 {
		t.Fatalf("grant = %v, want 3", res)
	}
}

func TestParallelismDefaultsToOne(t *testing.T) {
	if g := Parallelism(context.Background()); g != 1 {
		t.Fatalf("Parallelism(plain ctx) = %d, want 1", g)
	}
	s := New(Options{Workers: 1})
	defer s.Close()
	j, _, err := s.Submit(SubmitOpts{}, func(ctx context.Context) (any, error) {
		return Parallelism(ctx), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	res, _ := j.Result()
	if res.(int) != 1 {
		t.Fatalf("unweighted grant = %v, want 1", res)
	}
}

package scenario

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"across/internal/trace"
	"across/internal/workload"
)

const testSectors = int64(1 << 20) // 512 MB logical space

func tinyProfile(seed int64) workload.Profile {
	p, err := workload.LunProfile("lun1")
	if err != nil {
		panic(err)
	}
	p = p.Scale(0.002)
	p.Seed = seed
	return p
}

func TestBuiltinScenariosGenerate(t *testing.T) {
	for _, name := range Names() {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatalf("Builtin(%q): %v", name, err)
		}
		sc = sc.Scale(0.002)
		st, err := sc.Generate(testSectors)
		if err != nil {
			t.Fatalf("%s: Generate: %v", name, err)
		}
		if len(st.Requests) == 0 {
			t.Fatalf("%s: empty stream", name)
		}
		if st.Scenario != name {
			t.Fatalf("%s: stream labelled %q", name, st.Scenario)
		}
		// Arrival-ordered.
		for i := 1; i < len(st.Requests); i++ {
			if st.Requests[i].Time < st.Requests[i-1].Time {
				t.Fatalf("%s: requests out of order at %d", name, i)
			}
		}
		// Every request is valid for the device.
		for i, r := range st.Requests {
			if err := r.Validate(testSectors); err != nil {
				t.Fatalf("%s: request %d invalid: %v", name, i, err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Builtin(name)
		sc = sc.Scale(0.002)
		a, err := sc.Generate(testSectors)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sc.Generate(testSectors)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := EncodeStream(a)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := EncodeStream(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("%s: double generation not byte-identical", name)
		}
	}
}

func TestCohortsStayInPartitions(t *testing.T) {
	sc, _ := Builtin("mixed")
	sc = sc.Scale(0.002)
	st, err := sc.Generate(testSectors)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cohorts) != 3 {
		t.Fatalf("want 3 cohorts, got %d", len(st.Cohorts))
	}
	// Rebuild each cohort alone in its partition and verify its requests
	// fall inside the recorded [StartSector, StartSector+Sectors) span.
	for ci, info := range st.Cohorts {
		if info.Requests == 0 {
			t.Fatalf("cohort %d (%s) contributed no requests", ci, info.Name)
		}
		if info.StartSector%workload.RefSPP != 0 || info.Sectors%workload.RefSPP != 0 {
			t.Fatalf("cohort %s partition not page-aligned: start %d size %d",
				info.Name, info.StartSector, info.Sectors)
		}
	}
	// The merged stream must respect partitions: re-derive each request's
	// owner by offset and check containment.
	for i, r := range st.Requests {
		owned := false
		for _, info := range st.Cohorts {
			if r.Offset >= info.StartSector && r.Offset+int64(r.Count) <= info.StartSector+info.Sectors {
				owned = true
				break
			}
		}
		if !owned {
			t.Fatalf("request %d (offset %d count %d) outside every partition", i, r.Offset, r.Count)
		}
	}
}

func TestSpikePatternModulatesRate(t *testing.T) {
	// A spike cohort must cluster arrivals: the max requests per second
	// should far exceed the min (excluding empty windows at the tails).
	sc := Scenario{Name: "spiketest", Cohorts: []Cohort{{
		Name:    "t",
		Profile: tinyProfile(7),
		Pattern: Pattern{Kind: PatternSpike, PeriodMs: 2000, Peak: 20, Base: 0.2, DutyFrac: 0.1},
	}}}
	st, err := sc.Generate(testSectors)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for _, r := range st.Requests {
		counts[int64(r.Time)/1000]++
	}
	max, min := 0, math.MaxInt
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 4*min {
		t.Fatalf("spike pattern too flat: max %d/s vs min %d/s over %d windows", max, min, len(counts))
	}
}

func TestRampPatternAccelerates(t *testing.T) {
	sc := Scenario{Name: "ramptest", Cohorts: []Cohort{{
		Name:    "t",
		Profile: tinyProfile(9),
		Pattern: Pattern{Kind: PatternRamp, PeriodMs: 3000, Peak: 5, Base: 0.2},
	}}}
	st, err := sc.Generate(testSectors)
	if err != nil {
		t.Fatal(err)
	}
	reqs := st.Requests
	// The second half of the request count should occupy far less time
	// than the first half once the ramp has climbed.
	mid := reqs[len(reqs)/2].Time
	last := reqs[len(reqs)-1].Time
	if last-mid >= mid {
		t.Fatalf("ramp did not accelerate: first half %0.f ms, second half %0.f ms", mid, last-mid)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	base := tinyProfile(1)
	cases := []struct {
		name string
		sc   Scenario
		want error
	}{
		{"no cohorts", Scenario{Name: "x"}, ErrNoCohorts},
		{"zero requests", Scenario{Name: "x", Cohorts: []Cohort{
			{Name: "a", Profile: workload.Profile{Name: "a"}},
		}}, ErrZeroRequests},
		{"zero-duration spike", Scenario{Name: "x", Cohorts: []Cohort{
			{Name: "a", Profile: base, Pattern: Pattern{Kind: PatternSpike, PeriodMs: 0}},
		}}, ErrZeroDuration},
		{"zero-duration ramp", Scenario{Name: "x", Cohorts: []Cohort{
			{Name: "a", Profile: base, Pattern: Pattern{Kind: PatternRamp, PeriodMs: -5}},
		}}, ErrZeroDuration},
		{"degenerate spike duty", Scenario{Name: "x", Cohorts: []Cohort{
			{Name: "a", Profile: base, Pattern: Pattern{Kind: PatternSpike, PeriodMs: 100, DutyFrac: 1.5}},
		}}, ErrZeroDuration},
		{"overlapping partitions", Scenario{Name: "x", Cohorts: []Cohort{
			{Name: "a", Profile: base, StartFrac: 0, SizeFrac: 0.6},
			{Name: "b", Profile: base, StartFrac: 0.5, SizeFrac: 0.5},
		}}, ErrPartitionOverlap},
		{"partition past device end", Scenario{Name: "x", Cohorts: []Cohort{
			{Name: "a", Profile: base, StartFrac: 0.8, SizeFrac: 0.4},
		}}, ErrPartition},
		{"partition too small", Scenario{Name: "x", Cohorts: []Cohort{
			{Name: "a", Profile: base, StartFrac: 0, SizeFrac: 1e-6},
		}}, ErrPartition},
	}
	for _, tc := range cases {
		err := tc.sc.Validate(testSectors)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		if _, err := tc.sc.Generate(testSectors); err == nil {
			t.Errorf("%s: Generate accepted an invalid scenario", tc.name)
		}
	}
}

func TestSoleCohortDefaultsToWholeDevice(t *testing.T) {
	sc := Scenario{Name: "x", Cohorts: []Cohort{{Name: "a", Profile: tinyProfile(3)}}}
	st, err := sc.Generate(testSectors)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cohorts[0].StartSector != 0 || st.Cohorts[0].Sectors != testSectors {
		t.Fatalf("sole cohort partition = [%d, +%d), want whole device",
			st.Cohorts[0].StartSector, st.Cohorts[0].Sectors)
	}
}

func TestScaleAndSeedOffset(t *testing.T) {
	sc, _ := Builtin("mixed")
	orig := sc.Cohorts[0].Profile.Requests
	scaled := sc.Scale(0.5)
	if got := scaled.Cohorts[0].Profile.Requests; got != orig/2 {
		t.Fatalf("Scale(0.5): %d -> %d", orig, got)
	}
	if sc.Cohorts[0].Profile.Requests != orig {
		t.Fatal("Scale mutated the receiver")
	}
	shifted := sc.WithSeedOffset(1000)
	if shifted.Cohorts[0].Profile.Seed != sc.Cohorts[0].Profile.Seed+1000 {
		t.Fatal("WithSeedOffset did not shift the seed")
	}
	if sc.Cohorts[0].Profile.Seed == shifted.Cohorts[0].Profile.Seed {
		t.Fatal("WithSeedOffset mutated the receiver")
	}
	// Degenerate scale factors clamp rather than corrupt.
	for _, f := range []float64{math.NaN(), math.Inf(-1), -1, 0} {
		s := sc.Scale(f)
		for _, c := range s.Cohorts {
			if c.Profile.Requests < 1 {
				t.Fatalf("Scale(%v) produced %d requests", f, c.Profile.Requests)
			}
		}
	}
}

func TestDurationCutsStream(t *testing.T) {
	sc := Scenario{Name: "cut", Cohorts: []Cohort{{Name: "a", Profile: tinyProfile(5)}}}
	full, err := sc.Generate(testSectors)
	if err != nil {
		t.Fatal(err)
	}
	cutAt := full.Requests[len(full.Requests)/2].Time
	sc.DurationMs = cutAt
	cut, err := sc.Generate(testSectors)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Requests) >= len(full.Requests) {
		t.Fatal("DurationMs did not truncate the stream")
	}
	for _, r := range cut.Requests {
		if r.Time >= cutAt {
			t.Fatalf("request at %g ms survived a %g ms cut", r.Time, cutAt)
		}
	}
}

func TestTraceCohortWrapsIntoPartition(t *testing.T) {
	// Synthetic "recorded" trace with offsets beyond the partition.
	var reqs []trace.Request
	for i := 0; i < 500; i++ {
		reqs = append(reqs, trace.Request{
			Time:   float64(i),
			Op:     trace.Op(i % 2),
			Offset: int64(i) * 1003, // deliberately unaligned spread
			Count:  (i % 24) + 1,
		})
	}
	sc := Scenario{Name: "wrap", Cohorts: []Cohort{
		{Name: "rec", Trace: reqs, TraceName: "rec", StartFrac: 0.25, SizeFrac: 0.25},
		{Name: "syn", Profile: tinyProfile(11), StartFrac: 0.5, SizeFrac: 0.5},
	}}
	st, err := sc.Generate(testSectors)
	if err != nil {
		t.Fatal(err)
	}
	start, size := st.Cohorts[0].StartSector, st.Cohorts[0].Sectors
	var got []trace.Request
	for _, r := range st.Requests {
		if r.Offset < start+size && r.Offset+int64(r.Count) > start {
			// Inside the trace partition: must be fully contained.
			if r.Offset < start || r.Offset+int64(r.Count) > start+size {
				t.Fatalf("trace request [%d, +%d) leaks out of partition [%d, +%d)",
					r.Offset, r.Count, start, size)
			}
			got = append(got, r)
		}
	}
	if len(got) != len(reqs) {
		t.Fatalf("trace partition holds %d requests, want %d", len(got), len(reqs))
	}
	if size%workload.RefSPP != 0 {
		t.Fatalf("partition size %d not a RefSPP multiple", size)
	}
	// Alignment classes survive the retiming: both the modulo wrap and the
	// spill pull-back move offsets by RefSPP multiples (no request here is
	// big enough to hit the nearly-fills-the-partition fallback), so each
	// request keeps its offset modulo the reference page. Trace arrival
	// times are strictly increasing, so `got` matches `reqs` by index.
	for i, r := range got {
		if r.Offset%workload.RefSPP != reqs[i].Offset%workload.RefSPP {
			t.Fatalf("request %d: retimed offset %d lost the alignment of recorded offset %d",
				i, r.Offset, reqs[i].Offset)
		}
	}
}

// TestRetimeTracePullbackPreservesAlignment drives the spill pull-back
// directly: requests wrapped near the partition end must stay contained and
// keep offset mod RefSPP, except when they nearly fill the partition, where
// the documented fallback lands them flush against its end.
func TestRetimeTracePullbackPreservesAlignment(t *testing.T) {
	const size = 64 * workload.RefSPP
	c := &Cohort{Name: "rec", TraceName: "rec", Trace: []trace.Request{
		// Spills a few sectors past the end: pulled back one page.
		{Time: 0, Offset: size - 3, Count: 10},
		// Unaligned offset spilling by more than a page.
		{Time: 1, Offset: size - workload.RefSPP - 5, Count: 3 * workload.RefSPP},
		// Nearly fills the partition: no aligned slot exists.
		{Time: 2, Offset: 7, Count: size - 4},
	}}
	out := retimeTrace(c, 0, size)
	for i, r := range out {
		if r.Offset < 0 || r.Offset+int64(r.Count) > size {
			t.Errorf("request %d: [%d, +%d) leaks out of [0, %d)", i, r.Offset, r.Count, size)
		}
	}
	for i, r := range out[:2] {
		if r.Offset%workload.RefSPP != c.Trace[i].Offset%workload.RefSPP {
			t.Errorf("request %d: offset %d lost the alignment of recorded offset %d",
				i, r.Offset, c.Trace[i].Offset)
		}
	}
	if last := out[2]; last.Offset != size-int64(last.Count) {
		t.Errorf("nearly-full request placed at %d, want the exact end fit %d",
			last.Offset, size-int64(last.Count))
	}
}

func TestFromTraceScale(t *testing.T) {
	var reqs []trace.Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, trace.Request{Time: float64(i), Offset: int64(i) * 16, Count: 8})
	}
	sc := FromTrace("rec", reqs)
	half := sc.Scale(0.5)
	if got := len(half.Cohorts[0].Trace); got != 50 {
		t.Fatalf("trace Scale(0.5): %d requests, want 50", got)
	}
	if len(sc.Cohorts[0].Trace) != 100 {
		t.Fatal("Scale mutated the source scenario")
	}
	for _, f := range []float64{math.NaN(), -2, 0} {
		if got := len(sc.Scale(f).Cohorts[0].Trace); got != 1 {
			t.Fatalf("trace Scale(%v): %d requests, want 1", f, got)
		}
	}
	if got := len(sc.Scale(math.Inf(1)).Cohorts[0].Trace); got != 100 {
		t.Fatalf("trace Scale(+Inf): %d requests, want all 100", got)
	}
}

func TestMergeTieBreakDeterministic(t *testing.T) {
	// Two streams with identical timestamps: ties must break by cohort
	// order, every time.
	mk := func(off int64) []trace.Request {
		var rs []trace.Request
		for i := 0; i < 10; i++ {
			rs = append(rs, trace.Request{Time: float64(i), Offset: off, Count: 8})
		}
		return rs
	}
	a, b := mk(0), mk(1<<10)
	out := merge([][]trace.Request{a, b}, 20)
	for i := 0; i < 20; i += 2 {
		if out[i].Offset != 0 || out[i+1].Offset != 1<<10 {
			t.Fatalf("tie at %d broke against cohort order", i)
		}
	}
}

package scenario

import (
	"bytes"
	"errors"
	"testing"

	"across/internal/snapshot"
)

func sampleStream(t *testing.T) *Stream {
	t.Helper()
	sc, err := Builtin("mixed")
	if err != nil {
		t.Fatal(err)
	}
	st, err := sc.Scale(0.001).Generate(testSectors)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTraceV2RoundTrip(t *testing.T) {
	st := sampleStream(t)
	blob, err := EncodeStream(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStream(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != st.Scenario || got.LogicalSectors != st.LogicalSectors {
		t.Fatalf("metadata drift: %+v vs %+v", got, st)
	}
	if len(got.Cohorts) != len(st.Cohorts) {
		t.Fatalf("cohort count drift: %d vs %d", len(got.Cohorts), len(st.Cohorts))
	}
	for i := range got.Cohorts {
		if got.Cohorts[i] != st.Cohorts[i] {
			t.Fatalf("cohort %d drift: %+v vs %+v", i, got.Cohorts[i], st.Cohorts[i])
		}
	}
	if len(got.Requests) != len(st.Requests) {
		t.Fatalf("request count drift: %d vs %d", len(got.Requests), len(st.Requests))
	}
	for i := range got.Requests {
		if got.Requests[i] != st.Requests[i] {
			t.Fatalf("request %d drift: %+v vs %+v", i, got.Requests[i], st.Requests[i])
		}
	}
	// Encode→decode→encode reproduces the container byte for byte.
	blob2, err := EncodeStream(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestTraceV2RejectsBadInput(t *testing.T) {
	st := sampleStream(t)
	blob, err := EncodeStream(st)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeStream(blob[:10]); !errors.Is(err, snapshot.ErrTruncated) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte("AXSN"), blob[4:]...)
		if _, err := DecodeStream(bad); !errors.Is(err, snapshot.ErrFormat) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := bytes.Clone(blob)
		bad[4] = 99
		if _, err := DecodeStream(bad); !errors.Is(err, snapshot.ErrVersion) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("flipped body bit", func(t *testing.T) {
		bad := bytes.Clone(blob)
		bad[len(bad)-1] ^= 0x40
		if _, err := DecodeStream(bad); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("not a container at all", func(t *testing.T) {
		if _, err := DecodeStream([]byte("definitely not a trace container, just text padding")); err == nil {
			t.Fatal("accepted garbage")
		}
	})
}

func FuzzTraceV2Decode(f *testing.F) {
	// Seed with a real container, its truncations, and light mutations.
	sc, err := Builtin("burst")
	if err != nil {
		f.Fatal(err)
	}
	st, err := sc.Scale(0.0005).Generate(testSectors)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := EncodeStream(st)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:52])
	f.Add([]byte("AXT2"))
	f.Add([]byte{})
	mut := bytes.Clone(blob)
	mut[30] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeStream(data)
		if err != nil {
			return // rejection is fine; panics and hangs are the bug class
		}
		// Accepted containers must round-trip to identical bytes.
		re, err := EncodeStream(st)
		if err != nil {
			t.Fatalf("accepted stream failed to re-encode: %v", err)
		}
		back, err := DecodeStream(re)
		if err != nil {
			t.Fatalf("re-encoded container rejected: %v", err)
		}
		if len(back.Requests) != len(st.Requests) {
			t.Fatalf("round-trip lost requests: %d vs %d", len(back.Requests), len(st.Requests))
		}
	})
}

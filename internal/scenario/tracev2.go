package scenario

import (
	"fmt"

	"across/internal/snapshot"
	"across/internal/trace"
)

// Trace-v2 is the versioned binary workload container: a generated Stream
// sealed into the same self-describing container the snapshot layer uses
// (magic + version + flags + length + SHA-256 + DEFLATE body), so scenario
// workloads are storable, diffable, content-addressable artifacts instead of
// ad-hoc CSV. Unlike the v1 text traces, the header carries the workload's
// own metadata — generating scenario, device size, per-cohort request counts
// and LBA partitions — and the schema is versioned, so an incompatible
// reader fails loudly (snapshot.ErrVersion) rather than misreading requests.
//
// Encoding is deterministic: the same Stream always seals to the same bytes,
// which is what lets CI byte-compare trace-v2 artifacts across runs and
// engines.

// TraceV2Magic identifies a trace-v2 container ("across trace v2").
const TraceV2Magic = "AXT2"

// TraceV2Version is the trace-v2 schema version written by EncodeStream and
// required by DecodeStream.
const TraceV2Version = 1

// maxTraceRequests bounds the request count a decoder will accept; with
// 21 bytes per encoded request this is ~2 GiB of body, far beyond any real
// artifact and small enough to stop allocation bombs.
const maxTraceRequests = 100_000_000

// EncodeStream seals a generated stream into a trace-v2 container.
func EncodeStream(s *Stream) ([]byte, error) {
	e := snapshot.NewEncoder()
	e.Tag("meta")
	e.Str(s.Scenario)
	e.I64(s.LogicalSectors)
	e.I64(int64(len(s.Cohorts)))
	for _, c := range s.Cohorts {
		e.Str(c.Name)
		e.I64(c.Requests)
		e.I64(c.StartSector)
		e.I64(c.Sectors)
	}
	e.Tag("reqs")
	e.I64(int64(len(s.Requests)))
	for _, r := range s.Requests {
		e.F64(r.Time)
		e.U8(uint8(r.Op))
		e.I64(r.Offset)
		e.I32(int32(r.Count))
	}
	return snapshot.Seal(TraceV2Magic, TraceV2Version, e)
}

// DecodeStream opens a trace-v2 container and reconstructs the stream.
// Hostile inputs (fuzzed by FuzzTraceV2Decode) yield a typed snapshot error,
// never a panic, and allocation is bounded by the bytes actually present.
func DecodeStream(blob []byte) (*Stream, error) {
	d, err := snapshot.Open(TraceV2Magic, TraceV2Version, blob)
	if err != nil {
		return nil, err
	}
	s := &Stream{}
	d.Tag("meta")
	s.Scenario = d.Str()
	s.LogicalSectors = d.I64()
	nc := d.I64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nc < 0 || nc > 1<<16 {
		return nil, fmt.Errorf("%w: implausible cohort count %d", snapshot.ErrCorrupt, nc)
	}
	for i := int64(0); i < nc && d.Err() == nil; i++ {
		s.Cohorts = append(s.Cohorts, CohortInfo{
			Name:        d.Str(),
			Requests:    d.I64(),
			StartSector: d.I64(),
			Sectors:     d.I64(),
		})
	}
	d.Tag("reqs")
	nr := d.I64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nr < 0 || nr > maxTraceRequests {
		return nil, fmt.Errorf("%w: implausible request count %d", snapshot.ErrCorrupt, nr)
	}
	for i := int64(0); i < nr && d.Err() == nil; i++ {
		r := trace.Request{
			Time:   d.F64(),
			Op:     trace.Op(d.U8()),
			Offset: d.I64(),
			Count:  int(d.I32()),
		}
		s.Requests = append(s.Requests, r)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

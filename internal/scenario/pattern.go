package scenario

import (
	"fmt"
	"math"
)

// PatternKind names a temporal arrival-rate pattern.
type PatternKind string

// The supported temporal patterns.
const (
	// PatternConstant keeps the cohort at its profile rate — the
	// stationary-Poisson behaviour every pre-scenario experiment used.
	PatternConstant PatternKind = "constant"
	// PatternRamp climbs linearly from Base to Peak over PeriodMs, then
	// holds Peak (a fleet onboarding ramp, a cache warm-up).
	PatternRamp PatternKind = "ramp"
	// PatternSpike alternates a baseline with short bursts: each PeriodMs
	// cycle spends DutyFrac of its length at Peak and the rest at Base.
	PatternSpike PatternKind = "spike"
	// PatternDayNight modulates the rate through a discretised sinusoid
	// between Base (night) and Peak (day), repeating every PeriodMs —
	// the diurnal cycle of a real fleet, over as many periods as the
	// trace lasts.
	PatternDayNight PatternKind = "daynight"
)

// Pattern modulates a cohort's arrival rate over simulated time: the
// instantaneous rate is the profile's MeanIOPS times a time-varying
// multiplier. The zero value is the constant pattern.
//
// Arrivals are drawn from an inhomogeneous Poisson process by time
// rescaling: unit-rate exponential draws are mapped through the inverse of
// the pattern's cumulative rate, which for the piecewise-constant compiled
// form is exact, allocation-free and deterministic.
type Pattern struct {
	// Kind selects the pattern shape ("" = constant).
	Kind PatternKind `json:"kind,omitempty"`
	// PeriodMs is the cycle length (spike, daynight) or the ramp duration
	// in simulated ms. Required for every kind but constant.
	PeriodMs float64 `json:"period_ms,omitempty"`
	// Peak is the high rate multiplier (ramp end, spike burst, daytime).
	// Defaults per kind; must be positive.
	Peak float64 `json:"peak,omitempty"`
	// Base is the low rate multiplier (ramp start, spike baseline,
	// night). Zero means "unset" and takes the per-kind default — the
	// omitempty JSON encoding could not round-trip an explicit zero
	// anyway — so a fully quiet trough is not expressible; use a small
	// positive value for a near-silent baseline. Must not be negative.
	Base float64 `json:"base,omitempty"`
	// DutyFrac is the fraction of a spike period spent at Peak.
	DutyFrac float64 `json:"duty_frac,omitempty"`
}

// dayNightSteps discretises the sinusoid: enough steps that the rate is
// visibly smooth, few enough that segment walks stay cheap.
const dayNightSteps = 8

// normalised fills per-kind defaults so callers can specify only the shape.
func (p Pattern) normalised() Pattern {
	if p.Kind == "" {
		p.Kind = PatternConstant
	}
	switch p.Kind {
	case PatternRamp:
		if p.Peak == 0 {
			p.Peak = 2
		}
		if p.Base == 0 {
			p.Base = 0.2
		}
	case PatternSpike:
		if p.Peak == 0 {
			p.Peak = 8
		}
		if p.Base == 0 {
			p.Base = 0.75
		}
		if p.DutyFrac == 0 {
			p.DutyFrac = 0.1
		}
	case PatternDayNight:
		if p.Peak == 0 {
			p.Peak = 2.5
		}
		if p.Base == 0 {
			p.Base = 0.25
		}
	}
	return p
}

// validate checks a normalised pattern. Zero-duration phases are the classic
// scenario-spec typo (a spike with PeriodMs 0 would burst infinitely often),
// so they get the typed ErrZeroDuration.
func (p Pattern) validate() error {
	for _, v := range [...]float64{p.PeriodMs, p.Peak, p.Base, p.DutyFrac} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("scenario: pattern %q: non-finite parameter", p.Kind)
		}
	}
	switch p.Kind {
	case PatternConstant:
		return nil
	case PatternRamp, PatternSpike, PatternDayNight:
	default:
		return fmt.Errorf("scenario: unknown pattern kind %q", p.Kind)
	}
	if p.PeriodMs <= 0 {
		return fmt.Errorf("%w: pattern %q has period %g ms", ErrZeroDuration, p.Kind, p.PeriodMs)
	}
	if p.Peak <= 0 {
		return fmt.Errorf("scenario: pattern %q: Peak must be positive (got %g)", p.Kind, p.Peak)
	}
	if p.Base < 0 {
		return fmt.Errorf("scenario: pattern %q: Base must be non-negative (got %g)", p.Kind, p.Base)
	}
	if p.Kind == PatternSpike {
		if p.DutyFrac <= 0 || p.DutyFrac >= 1 {
			return fmt.Errorf("%w: spike duty %g out of (0,1)", ErrZeroDuration, p.DutyFrac)
		}
	}
	return nil
}

// segment is one piece of the compiled piecewise-constant rate function.
type segment struct {
	durMs float64 // math.Inf(1) for a terminal hold
	mult  float64 // rate multiplier over the segment
}

// compile lowers a normalised, validated pattern to its segment list.
// cyclic patterns repeat the list forever; non-cyclic ones end in an
// infinite terminal segment.
func (p Pattern) compile() (segs []segment, cyclic bool) {
	switch p.Kind {
	case PatternRamp:
		// rampSteps stair-steps the climb; the terminal segment holds Peak.
		const rampSteps = 8
		for i := 0; i < rampSteps; i++ {
			frac := (float64(i) + 0.5) / rampSteps
			segs = append(segs, segment{
				durMs: p.PeriodMs / rampSteps,
				mult:  p.Base + (p.Peak-p.Base)*frac,
			})
		}
		return append(segs, segment{durMs: math.Inf(1), mult: p.Peak}), false
	case PatternSpike:
		return []segment{
			{durMs: p.PeriodMs * (1 - p.DutyFrac), mult: p.Base},
			{durMs: p.PeriodMs * p.DutyFrac, mult: p.Peak},
		}, true
	case PatternDayNight:
		mid := (p.Peak + p.Base) / 2
		amp := (p.Peak - p.Base) / 2
		for i := 0; i < dayNightSteps; i++ {
			phase := 2 * math.Pi * (float64(i) + 0.5) / dayNightSteps
			segs = append(segs, segment{
				durMs: p.PeriodMs / dayNightSteps,
				mult:  mid + amp*math.Sin(phase),
			})
		}
		return segs, true
	default: // constant
		return []segment{{durMs: math.Inf(1), mult: 1}}, false
	}
}

// arrivals converts unit-rate exponential draws into arrival times under a
// compiled pattern: the classic inhomogeneous-Poisson inversion, walked
// exactly over the piecewise-constant segments.
type arrivals struct {
	segs     []segment
	cyclic   bool
	baseRate float64 // requests per ms at multiplier 1

	seg  int     // current segment index
	into float64 // ms consumed of the current segment
	now  float64 // absolute simulated ms
}

// newArrivals positions an arrival walker at t=0 for a pattern and a base
// rate in requests/ms.
func (p Pattern) newArrivals(baseRate float64) *arrivals {
	segs, cyclic := p.compile()
	return &arrivals{segs: segs, cyclic: cyclic, baseRate: baseRate}
}

// next consumes one Exp(1) draw and returns the next arrival time. Segments
// with zero rate pass time without producing arrivals; validation guarantees
// every cycle contains a positive-rate segment, so the walk terminates.
func (a *arrivals) next(e float64) float64 {
	for {
		s := a.segs[a.seg]
		rate := a.baseRate * s.mult
		remain := s.durMs - a.into
		if math.IsInf(remain, 1) {
			// Terminal hold: the inversion is a plain exponential.
			a.now += e / rate
			return a.now
		}
		if capacity := rate * remain; rate > 0 && e <= capacity {
			dt := e / rate
			a.now += dt
			a.into += dt
			return a.now
		} else {
			e -= capacity
		}
		a.now += remain
		a.into = 0
		a.seg++
		if a.seg == len(a.segs) {
			a.seg = 0 // cyclic by construction: non-cyclic lists end in Inf
		}
	}
}

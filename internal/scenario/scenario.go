// Package scenario composes time-varying, multi-cohort workloads for the
// simulator. Where package workload synthesises one stationary-Poisson
// request stream, a Scenario layers three workload-shaping effects on top —
// the effects EagleTree showed flip SSD algorithm rankings and that the
// across-page schemes compete on:
//
//   - temporal patterns (Pattern): ramps, bursts and day/night cycles
//     modulating each cohort's arrival rate over simulated time, realised
//     as an exact inhomogeneous-Poisson time rescaling;
//   - tenant cohorts (Cohort): several workloads — synthetic profiles or a
//     parsed real trace — sharing one device, each confined to its own LBA
//     partition, merged into a single deterministic arrival-ordered stream;
//   - storable artifacts: a generated Stream round-trips through the
//     versioned trace-v2 container (tracev2.go), so scenarios are
//     diffable, content-addressable files rather than transient slices.
//
// Everything is deterministic: the same Scenario and device size produce a
// byte-identical Stream on every run, on every platform, which is what lets
// acrossd key scenario jobs by content and lets CI byte-compare serial and
// parallel replays of the same scenario.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"across/internal/trace"
	"across/internal/workload"
)

// Typed validation errors, for callers that branch on the failure class.
var (
	// ErrNoCohorts: a scenario without cohorts generates nothing.
	ErrNoCohorts = errors.New("scenario: no cohorts")
	// ErrZeroDuration: a temporal pattern with a zero-length phase (period
	// or spike duty), which would burst infinitely often.
	ErrZeroDuration = errors.New("scenario: zero-duration pattern phase")
	// ErrZeroRequests: a cohort that contributes no requests.
	ErrZeroRequests = errors.New("scenario: zero-request cohort")
	// ErrPartition: a cohort LBA partition that is empty, out of [0,1], or
	// too small to host its workload.
	ErrPartition = errors.New("scenario: bad cohort partition")
	// ErrPartitionOverlap: two cohorts whose LBA partitions intersect —
	// tenants must not silently share (and corrupt) each other's space.
	ErrPartitionOverlap = errors.New("scenario: overlapping cohort partitions")
)

// arrivalSeedSalt decorrelates the arrival-time stream from the generator's
// address/size stream, which reuses the same profile seed.
const arrivalSeedSalt = 0x5ca1ab1e

// Cohort is one tenant of a scenario: a workload source confined to an LBA
// partition, with its own temporal pattern and activation offset.
//
// The source is either synthetic (Profile; the usual case) or a real parsed
// trace (Trace non-empty — e.g. an MSR Cambridge volume read through
// internal/trace). A trace cohort keeps its recorded inter-arrival times and
// ignores Pattern; its offsets are wrapped into the partition modulo the
// page-aligned partition size, preserving each request's alignment class
// except for requests that nearly fill the partition (see retimeTrace).
type Cohort struct {
	// Name labels the cohort in metadata and reports.
	Name string `json:"name"`
	// Profile is the synthetic workload source (ignored when Trace is set).
	Profile workload.Profile `json:"profile"`
	// Trace is the real-trace source. It is deliberately excluded from
	// JSON: content keys represent trace bytes by their hash, not by
	// embedding millions of requests.
	Trace []trace.Request `json:"-"`
	// TraceName names the trace source in metadata when Trace is set.
	TraceName string `json:"trace_name,omitempty"`
	// Pattern modulates the cohort's arrival rate over time.
	Pattern Pattern `json:"pattern"`
	// StartFrac and SizeFrac place the cohort's LBA partition: the cohort
	// owns [StartFrac, StartFrac+SizeFrac) of the device's logical space.
	// SizeFrac 0 on a sole cohort means the whole device.
	StartFrac float64 `json:"start_frac"`
	SizeFrac  float64 `json:"size_frac"`
	// StartMs delays the cohort's first arrival (tenant onboarding).
	StartMs float64 `json:"start_ms,omitempty"`
}

// isTrace reports whether the cohort replays a recorded trace.
func (c *Cohort) isTrace() bool { return len(c.Trace) > 0 }

// requests returns how many requests the cohort contributes.
func (c *Cohort) requests() int {
	if c.isTrace() {
		return len(c.Trace)
	}
	return c.Profile.Requests
}

// Scenario is a named composition of cohorts over one logical address
// space. The zero value is invalid; use Builtin, FromTrace, or construct
// cohorts explicitly and Validate.
type Scenario struct {
	// Name identifies the scenario in artifacts and content keys.
	Name string `json:"name"`
	// Cohorts are the tenants sharing the device.
	Cohorts []Cohort `json:"cohorts"`
	// DurationMs, when positive, truncates the merged stream at this
	// simulated time (requests arriving later are dropped).
	DurationMs float64 `json:"duration_ms,omitempty"`
}

// Scale returns a copy with every synthetic cohort's request count scaled by
// f (workload.Profile.Scale semantics) and every trace cohort truncated to
// its first f fraction of requests — the quick-run knob of the experiment
// harness, applied uniformly across tenants.
func (sc Scenario) Scale(f float64) Scenario {
	cs := make([]Cohort, len(sc.Cohorts))
	copy(cs, sc.Cohorts)
	for i := range cs {
		if cs[i].isTrace() {
			// Clamp in float space: int() of an out-of-range float64 is
			// implementation-defined, so compare before converting.
			scaled := float64(len(cs[i].Trace)) * f
			n := len(cs[i].Trace)
			if math.IsNaN(scaled) || scaled < 1 {
				n = 1
			} else if scaled < float64(n) {
				n = int(scaled)
			}
			cs[i].Trace = cs[i].Trace[:n]
		} else {
			cs[i].Profile = cs[i].Profile.Scale(f)
		}
	}
	sc.Cohorts = cs
	return sc
}

// WithSeedOffset returns a copy with delta added to every synthetic
// cohort's generator seed — the scenario analogue of the replay spec's seed
// knob, shifting all tenants to an independent but still deterministic draw.
func (sc Scenario) WithSeedOffset(delta int64) Scenario {
	cs := make([]Cohort, len(sc.Cohorts))
	copy(cs, sc.Cohorts)
	for i := range cs {
		if !cs[i].isTrace() {
			cs[i].Profile.Seed += delta
		}
	}
	sc.Cohorts = cs
	return sc
}

// normalised fills defaults: a sole cohort with no partition gets the whole
// device, and patterns get their per-kind defaults.
func (sc Scenario) normalised() Scenario {
	cs := make([]Cohort, len(sc.Cohorts))
	copy(cs, sc.Cohorts)
	for i := range cs {
		if len(cs) == 1 && cs[i].SizeFrac == 0 {
			cs[i].StartFrac, cs[i].SizeFrac = 0, 1
		}
		cs[i].Pattern = cs[i].Pattern.normalised()
	}
	sc.Cohorts = cs
	return sc
}

// partition computes a cohort's page-aligned sector range on a device of
// logicalSectors sectors.
func (c *Cohort) partition(logicalSectors int64) (start, size int64) {
	start = int64(float64(logicalSectors) * c.StartFrac)
	size = int64(float64(logicalSectors) * c.SizeFrac)
	start -= start % workload.RefSPP
	size -= size % workload.RefSPP
	return start, size
}

// minPartitionSectors is the smallest partition a cohort can live in —
// workload.NewGenerator's device floor (16 reference pages).
const minPartitionSectors = 16 * workload.RefSPP

// Validate checks the scenario (after normalisation) against a device of
// logicalSectors addressable sectors. Failures wrap the typed errors above.
func (sc Scenario) Validate(logicalSectors int64) error {
	sc = sc.normalised()
	if len(sc.Cohorts) == 0 {
		return fmt.Errorf("%w (scenario %q)", ErrNoCohorts, sc.Name)
	}
	type span struct {
		name       string
		start, end int64
	}
	spans := make([]span, 0, len(sc.Cohorts))
	for i := range sc.Cohorts {
		c := &sc.Cohorts[i]
		if c.requests() <= 0 {
			return fmt.Errorf("%w: cohort %q", ErrZeroRequests, c.Name)
		}
		if err := c.Pattern.validate(); err != nil {
			return fmt.Errorf("cohort %q: %w", c.Name, err)
		}
		if c.StartFrac < 0 || c.SizeFrac <= 0 || c.StartFrac+c.SizeFrac > 1+1e-9 {
			return fmt.Errorf("%w: cohort %q occupies [%g, %g)",
				ErrPartition, c.Name, c.StartFrac, c.StartFrac+c.SizeFrac)
		}
		start, size := c.partition(logicalSectors)
		if size < minPartitionSectors {
			return fmt.Errorf("%w: cohort %q partition is %d sectors (min %d)",
				ErrPartition, c.Name, size, minPartitionSectors)
		}
		if !c.isTrace() {
			if err := c.Profile.Validate(); err != nil {
				return fmt.Errorf("cohort %q: %w", c.Name, err)
			}
		}
		spans = append(spans, span{c.Name, start, start + size})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	for i := 1; i < len(spans); i++ {
		if spans[i].start < spans[i-1].end {
			return fmt.Errorf("%w: %q and %q", ErrPartitionOverlap, spans[i-1].name, spans[i].name)
		}
	}
	return nil
}

// CohortInfo is per-cohort stream metadata: what the trace-v2 header records
// about each tenant.
type CohortInfo struct {
	// Name is the cohort's label.
	Name string `json:"name"`
	// Requests is how many of the stream's requests this cohort produced.
	Requests int64 `json:"requests"`
	// StartSector and Sectors are the cohort's resolved LBA partition.
	StartSector int64 `json:"start_sector"`
	Sectors     int64 `json:"sectors"`
}

// Stream is a generated scenario workload: the merged request stream plus
// the metadata that makes it a self-describing artifact.
type Stream struct {
	// Scenario is the generating scenario's name.
	Scenario string `json:"scenario"`
	// LogicalSectors is the device size the stream was generated for.
	LogicalSectors int64 `json:"logical_sectors"`
	// Cohorts records each tenant's contribution and partition.
	Cohorts []CohortInfo `json:"cohorts"`
	// Requests is the merged, arrival-ordered stream.
	Requests []trace.Request `json:"-"`
}

// Generate materialises the scenario for a device of logicalSectors
// addressable sectors: each cohort's stream is produced in its partition,
// re-timed by its temporal pattern, and the streams are merged by arrival
// time with (time, cohort index) tie-breaking — fully deterministic.
func (sc Scenario) Generate(logicalSectors int64) (*Stream, error) {
	sc = sc.normalised()
	if err := sc.Validate(logicalSectors); err != nil {
		return nil, err
	}
	out := &Stream{Scenario: sc.Name, LogicalSectors: logicalSectors}
	streams := make([][]trace.Request, len(sc.Cohorts))
	total := 0
	for i := range sc.Cohorts {
		c := &sc.Cohorts[i]
		start, size := c.partition(logicalSectors)
		var reqs []trace.Request
		var err error
		if c.isTrace() {
			reqs = retimeTrace(c, start, size)
		} else {
			reqs, err = generateCohort(c, start, size)
			if err != nil {
				return nil, fmt.Errorf("cohort %q: %w", c.Name, err)
			}
		}
		if sc.DurationMs > 0 {
			reqs = trimAfter(reqs, sc.DurationMs)
		}
		streams[i] = reqs
		total += len(reqs)
		out.Cohorts = append(out.Cohorts, CohortInfo{
			Name: c.Name, Requests: int64(len(reqs)),
			StartSector: start, Sectors: size,
		})
	}
	out.Requests = merge(streams, total)
	return out, nil
}

// generateCohort produces one synthetic cohort: addresses and sizes from
// the workload generator scoped to the partition, arrival times from the
// pattern's inhomogeneous-Poisson walker seeded independently of the
// address stream.
func generateCohort(c *Cohort, start, size int64) ([]trace.Request, error) {
	g, err := workload.NewGenerator(c.Profile, size)
	if err != nil {
		return nil, err
	}
	reqs := g.Generate()
	rng := rand.New(rand.NewSource(c.Profile.Seed ^ arrivalSeedSalt))
	walk := c.Pattern.newArrivals(c.Profile.MeanIOPS / 1000) // req/ms
	for i := range reqs {
		reqs[i].Offset += start
		reqs[i].Time = c.StartMs + walk.next(rng.ExpFloat64())
	}
	return reqs, nil
}

// retimeTrace maps a recorded trace into the cohort's partition: offsets
// wrap modulo the page-aligned partition size, requests that would spill
// past the partition end are pulled back, and recorded arrival times shift
// by StartMs. The modulus and the pull-back are both RefSPP multiples, so
// each request keeps its offset modulo the reference page — and with it its
// alignment class — except when the request nearly fills the partition
// (Count within one page of the partition size, including counts clamped
// down to it), where no aligned slot fits and the request lands flush
// against the partition end instead. Recorded traces are replayed at their
// native pacing, so the cohort's Pattern is not applied.
func retimeTrace(c *Cohort, start, size int64) []trace.Request {
	out := make([]trace.Request, 0, len(c.Trace))
	for _, r := range c.Trace {
		if int64(r.Count) > size {
			r.Count = int(size)
		}
		off := r.Offset % size
		if off+int64(r.Count) > size {
			// Pull back by whole reference pages so off mod RefSPP survives.
			excess := off + int64(r.Count) - size
			shift := (excess + workload.RefSPP - 1) / workload.RefSPP * workload.RefSPP
			if shift > off {
				// The request nearly fills the partition: no slot at the
				// original alignment exists, take the exact fit at the end.
				off = size - int64(r.Count)
			} else {
				off -= shift
			}
		}
		r.Offset = start + off
		r.Time += c.StartMs
		out = append(out, r)
	}
	// Recorded streams are normally time-ordered already; a stable sort
	// makes the guarantee unconditional without disturbing equal arrivals.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// trimAfter drops requests at or after cutMs (streams are time-sorted).
func trimAfter(reqs []trace.Request, cutMs float64) []trace.Request {
	i := sort.Search(len(reqs), func(i int) bool { return reqs[i].Time >= cutMs })
	return reqs[:i]
}

// merge interleaves the per-cohort streams into one arrival-ordered stream.
// Each input is time-sorted; ties break on cohort index (then input order),
// so the merge is a deterministic function of its inputs.
func merge(streams [][]trace.Request, total int) []trace.Request {
	out := make([]trace.Request, 0, total)
	idx := make([]int, len(streams))
	for {
		best := -1
		for ci, s := range streams {
			if idx[ci] == len(s) {
				continue
			}
			if best < 0 || s[idx[ci]].Time < streams[best][idx[best]].Time {
				best = ci
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, streams[best][idx[best]])
		idx[best]++
	}
}

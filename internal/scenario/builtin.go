package scenario

import (
	"fmt"
	"sort"

	"across/internal/trace"
	"across/internal/workload"
)

// Tenant profiles for the mixed-tenant scenario. Each reuses the workload
// generator's structural model with knobs set to the tenant archetype:
// VDI is lun1's Table 2 statistics; the log tenant is append-dominated with
// almost no across-page traffic of its own; the database tenant is
// update-heavy with the highest across-page ratio (record-shifted pages).

// vdiProfile is the virtual-desktop tenant (lun1's statistics).
func vdiProfile() workload.Profile {
	p, _ := workload.LunProfile("lun1")
	p.Name = "vdi"
	return p
}

// logProfile is the log-append tenant: nearly write-only, large sequential
// appends, tiny hot set (the active segment), negligible across traffic.
func logProfile() workload.Profile {
	return workload.Profile{
		Name:          "log-append",
		Requests:      500000,
		WriteRatio:    0.97,
		AvgWriteKB:    24,
		AcrossRatio:   0.02,
		FootprintFrac: 0.9,
		HotFrac:       0.05,
		HotProb:       0.9,
		MeanIOPS:      250,
		Seed:          201,
	}
}

// dbProfile is the database tenant: balanced read/write, small record
// updates, the highest across-page ratio of the three (record pages shifted
// off alignment by the image-file translation).
func dbProfile() workload.Profile {
	return workload.Profile{
		Name:          "database",
		Requests:      650000,
		WriteRatio:    0.55,
		AvgWriteKB:    7.5,
		AcrossRatio:   0.32,
		FootprintFrac: 0.5,
		HotFrac:       0.15,
		HotProb:       0.85,
		MeanIOPS:      400,
		Seed:          202,
	}
}

// builtins constructs the named scenario catalogue. A function, not a
// package variable, so callers always get an independent copy they can
// Scale or reseed without aliasing.
func builtins() map[string]Scenario {
	vdi := vdiProfile()
	return map[string]Scenario{
		// stationary: the pre-scenario behaviour as a scenario — one VDI
		// cohort, constant rate, whole device. The control cell of every
		// scenario matrix.
		"stationary": {
			Name: "stationary",
			Cohorts: []Cohort{
				{Name: "vdi", Profile: vdi},
			},
		},
		// burst: the same cohort under spike traffic — 10x bursts for 10%
		// of each 20 s cycle. Does realignment keep up when arrivals
		// cluster and the queue deepens?
		"burst": {
			Name: "burst",
			Cohorts: []Cohort{
				{Name: "vdi", Profile: vdi, Pattern: Pattern{
					Kind: PatternSpike, PeriodMs: 20000, Peak: 10, Base: 0.5, DutyFrac: 0.1,
				}},
			},
		},
		// daynight: a compressed diurnal cycle (60 s period) swinging the
		// rate 10x between night and day.
		"daynight": {
			Name: "daynight",
			Cohorts: []Cohort{
				{Name: "vdi", Profile: vdi, Pattern: Pattern{
					Kind: PatternDayNight, PeriodMs: 60000, Peak: 3, Base: 0.3,
				}},
			},
		},
		// mixed: three tenants sharing the device — VDI on the front 55%,
		// a log-appender on the next 15%, a database on the back 30%, each
		// with its own temporal shape. The cell that tests whether cohort
		// interleaving fragments across-page locality.
		"mixed": {
			Name: "mixed",
			Cohorts: []Cohort{
				{Name: "vdi", Profile: vdi,
					StartFrac: 0, SizeFrac: 0.55,
					Pattern: Pattern{Kind: PatternDayNight, PeriodMs: 60000, Peak: 2.5, Base: 0.4}},
				{Name: "log-append", Profile: logProfile(),
					StartFrac: 0.55, SizeFrac: 0.15},
				{Name: "database", Profile: dbProfile(),
					StartFrac: 0.70, SizeFrac: 0.30,
					Pattern: Pattern{Kind: PatternSpike, PeriodMs: 15000, Peak: 6, Base: 0.6, DutyFrac: 0.15}},
			},
		},
	}
}

// Names lists the builtin scenario names in sorted order.
func Names() []string {
	m := builtins()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Builtin returns a named builtin scenario.
func Builtin(name string) (Scenario, error) {
	sc, ok := builtins()[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown builtin %q (have %v)", name, Names())
	}
	return sc, nil
}

// FromTrace wraps a parsed real trace (e.g. an MSR Cambridge volume read
// through internal/trace) as a single-cohort scenario covering the whole
// device. The trace replays at its recorded pacing; offsets wrap into the
// device's logical space at generation time.
func FromTrace(name string, reqs []trace.Request) Scenario {
	return Scenario{
		Name: name,
		Cohorts: []Cohort{
			{Name: name, Trace: reqs, TraceName: name},
		},
	}
}

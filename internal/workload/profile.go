// Package workload synthesises block traces that stand in for the SYSTOR '17
// enterprise-VDI LUN collection the paper replays (the traces themselves are
// not redistributable). Each profile reproduces the Table 2 statistics of
// one selected trace — request count, write ratio, mean write size, and
// across-page ratio at the 8 KB reference page — plus the structural
// properties of VDI traffic that the paper's results rest on:
//
//   - a fixed population of across-page objects (file tails, logs, registry
//     records whose page alignment the image-file translation destroyed) at
//     non-overlapping boundaries, re-read and updated in place, so the set
//     of live re-aligned areas is bounded on arbitrarily long traces;
//   - address-space zoning: bulk aligned traffic (OS images, swap) and the
//     unaligned object traffic live in separate regions, so bulk writes
//     rarely collide with re-aligned areas (the paper's 3.9% ARollback
//     ratio);
//   - hot/cold skew at both levels (bulk pages and objects), Poisson
//     arrivals, and occasional object growth past one page (the residual
//     rollbacks).
//
// Every knob is per-profile and every draw is seeded: traces are
// deterministic and their statistics are verified by tests.
package workload

import (
	"fmt"
	"math"
)

// RefSPP is the reference page size (in sectors) the Table 2 statistics are
// defined against: 8 KB, per the paper's Table 2 caption.
const RefSPP = 16

// Profile parameterises one synthetic trace.
type Profile struct {
	Name        string
	Requests    int     // total requests
	WriteRatio  float64 // fraction of requests that are writes ("Write R")
	AvgWriteKB  float64 // target mean write size in KB ("Write SZ")
	AcrossRatio float64 // target across-page request fraction at 8 KB pages ("Across R")

	// FootprintFrac is the share of the device's logical space the trace
	// touches. Enterprise LUN traces address most of the volume sparsely,
	// which is what puts a sub-page mapping table's working set beyond its
	// DRAM-resident fraction (the MRSM behaviour of Figs 10-12).
	FootprintFrac float64
	// HotFrac of the footprint receives HotProb of the accesses (update
	// locality; drives the merge/rollback dynamics of Fig 8).
	HotFrac float64
	HotProb float64
	// MeanIOPS sets the Poisson arrival rate.
	MeanIOPS float64
	Seed     int64
}

// Validate checks a profile for usable parameters.
func (p Profile) Validate() error {
	// Range checks written as "v < lo || v > hi" are both false for NaN, so
	// non-finite parameters must be rejected up front.
	for _, v := range [...]float64{
		p.WriteRatio, p.AvgWriteKB, p.AcrossRatio,
		p.FootprintFrac, p.HotFrac, p.HotProb, p.MeanIOPS,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("workload %q: non-finite parameter", p.Name)
		}
	}
	switch {
	case p.Requests <= 0:
		return fmt.Errorf("workload %q: Requests must be positive", p.Name)
	case p.WriteRatio < 0 || p.WriteRatio > 1:
		return fmt.Errorf("workload %q: WriteRatio out of [0,1]", p.Name)
	case p.AcrossRatio < 0 || p.AcrossRatio > 0.9:
		return fmt.Errorf("workload %q: AcrossRatio out of [0,0.9]", p.Name)
	case p.AvgWriteKB <= 0:
		return fmt.Errorf("workload %q: AvgWriteKB must be positive", p.Name)
	case p.FootprintFrac <= 0 || p.FootprintFrac > 1:
		return fmt.Errorf("workload %q: FootprintFrac out of (0,1]", p.Name)
	case p.HotFrac <= 0 || p.HotFrac > 1:
		return fmt.Errorf("workload %q: HotFrac out of (0,1]", p.Name)
	case p.HotProb < 0 || p.HotProb > 1:
		return fmt.Errorf("workload %q: HotProb out of [0,1]", p.Name)
	case p.MeanIOPS <= 0:
		return fmt.Errorf("workload %q: MeanIOPS must be positive", p.Name)
	}
	return nil
}

// Scale returns a copy with the request count multiplied by f (minimum 1
// request); the experiment harness uses it for quick runs. Degenerate
// factors are clamped rather than propagated: NaN, infinities, zero and
// negative factors all yield 1 request, and products beyond the int range
// saturate at math.MaxInt instead of converting to an implementation-defined
// value. (The int(float64) conversion is undefined for out-of-range values
// in Go, so scenario specs with wild factors used to produce garbage counts;
// Validate would then pass them because a huge positive count is "valid".)
func (p Profile) Scale(f float64) Profile {
	scaled := float64(p.Requests) * f
	var n int
	switch {
	case math.IsNaN(scaled) || scaled < 1:
		n = 1
	case scaled >= math.MaxInt:
		n = math.MaxInt
	default:
		n = int(scaled)
	}
	p.Requests = n
	return p
}

// lun returns a Table 2 profile with the shared VDI defaults.
func lun(name string, requests int, writeR, writeKB, acrossR float64, seed int64) Profile {
	return Profile{
		Name:          name,
		Requests:      requests,
		WriteRatio:    writeR,
		AvgWriteKB:    writeKB,
		AcrossRatio:   acrossR,
		FootprintFrac: 0.65,
		HotFrac:       0.20,
		HotProb:       0.75,
		MeanIOPS:      350,
		Seed:          seed,
	}
}

// LunProfiles returns the six Table 2 traces (lun1–lun6).
func LunProfiles() []Profile {
	return []Profile{
		lun("lun1", 749806, 0.615, 8.9, 0.247, 101),
		lun("lun2", 867967, 0.528, 11.3, 0.164, 102),
		lun("lun3", 672580, 0.506, 8.6, 0.234, 103),
		lun("lun4", 824068, 0.454, 11.2, 0.187, 104),
		lun("lun5", 639558, 0.411, 9.2, 0.235, 105),
		lun("lun6", 633234, 0.347, 7.6, 0.275, 106),
	}
}

// LunProfile returns one of lun1..lun6 by name.
func LunProfile(name string) (Profile, error) {
	for _, p := range LunProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Collection returns n profiles mimicking the first folder of the LUN
// collection replayed for Fig 2 (61 traces with across-page ratios spread
// between a few percent and ~38%). The spread is deterministic in i.
func Collection(n int) []Profile {
	out := make([]Profile, 0, n)
	for i := 0; i < n; i++ {
		// Deterministic pseudo-variety: cycle across ratio and write mix.
		ar := 0.04 + 0.34*float64((i*7)%n)/float64(n)
		wr := 0.35 + 0.30*float64((i*13)%n)/float64(n)
		sz := 7.0 + 5.0*float64((i*5)%n)/float64(n)
		p := lun(fmt.Sprintf("trace%02d", i+1), 20000, wr, sz, ar, int64(1000+i))
		out = append(out, p)
	}
	return out
}

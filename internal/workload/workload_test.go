package workload

import (
	"math"
	"testing"

	"across/internal/ssdconf"
	"across/internal/trace"
)

const testLogical = int64(1 << 22) // 2 GiB of sectors

func TestLunProfilesMatchTable2(t *testing.T) {
	ps := LunProfiles()
	if len(ps) != 6 {
		t.Fatalf("profiles = %d, want 6", len(ps))
	}
	// Spot-check against Table 2 of the paper.
	if ps[0].Requests != 749806 || ps[0].WriteRatio != 0.615 || ps[0].AvgWriteKB != 8.9 || ps[0].AcrossRatio != 0.247 {
		t.Errorf("lun1 = %+v, mismatch with Table 2", ps[0])
	}
	if ps[5].Requests != 633234 || ps[5].AcrossRatio != 0.275 {
		t.Errorf("lun6 = %+v, mismatch with Table 2", ps[5])
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
	if _, err := LunProfile("lun3"); err != nil {
		t.Error(err)
	}
	if _, err := LunProfile("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := LunProfiles()[0]
	bad := []func(*Profile){
		func(p *Profile) { p.Requests = 0 },
		func(p *Profile) { p.WriteRatio = 1.5 },
		func(p *Profile) { p.AcrossRatio = 0.95 },
		func(p *Profile) { p.AvgWriteKB = 0 },
		func(p *Profile) { p.FootprintFrac = 0 },
		func(p *Profile) { p.HotFrac = 2 },
		func(p *Profile) { p.HotProb = -0.1 },
		func(p *Profile) { p.MeanIOPS = 0 },
	}
	for i, mut := range bad {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted: %+v", i, p)
		}
	}
}

func TestGeneratedStatisticsHitTable2Targets(t *testing.T) {
	for _, p := range LunProfiles() {
		p := p.Scale(0.1) // 60-90k requests: plenty for tight statistics
		reqs, err := Generate(p, testLogical)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		st := trace.Measure(reqs, RefSPP)
		if got := st.WriteRatio(); got < p.WriteRatio-0.02 || got > p.WriteRatio+0.02 {
			t.Errorf("%s: WriteRatio = %.3f, want %.3f +/- 0.02", p.Name, got, p.WriteRatio)
		}
		if got := st.AcrossRatio(); got < p.AcrossRatio-0.02 || got > p.AcrossRatio+0.02 {
			t.Errorf("%s: AcrossRatio = %.3f, want %.3f +/- 0.02", p.Name, got, p.AcrossRatio)
		}
		if got := st.AvgWriteKB(); got < p.AvgWriteKB*0.85 || got > p.AvgWriteKB*1.15 {
			t.Errorf("%s: AvgWriteKB = %.2f, want %.1f +/- 15%%", p.Name, got, p.AvgWriteKB)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := LunProfiles()[2].Scale(0.01)
	a, err := Generate(p, testLogical)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, testLogical)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratedRequestsAreValidAndInFootprint(t *testing.T) {
	p := LunProfiles()[0].Scale(0.02)
	g, err := NewGenerator(p, testLogical)
	if err != nil {
		t.Fatal(err)
	}
	reqs := g.Generate()
	if len(reqs) != p.Requests {
		t.Fatalf("generated %d requests, want %d", len(reqs), p.Requests)
	}
	prev := -1.0
	for i, r := range reqs {
		if err := r.Validate(testLogical); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		if r.End() > g.Footprint() {
			t.Fatalf("request %d [%d,%d) beyond footprint %d", i, r.Offset, r.End(), g.Footprint())
		}
		if r.Time < prev {
			t.Fatalf("request %d time %v before predecessor %v", i, r.Time, prev)
		}
		prev = r.Time
	}
}

func TestHotColdLocality(t *testing.T) {
	p := LunProfiles()[0].Scale(0.05)
	g, err := NewGenerator(p, testLogical)
	if err != nil {
		t.Fatal(err)
	}
	hotEnd := g.hotEnd
	var hot, total int
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		total++
		if r.Offset < hotEnd {
			hot++
		}
	}
	frac := float64(hot) / float64(total)
	if frac < p.HotProb-0.05 || frac > p.HotProb+0.05 {
		t.Fatalf("hot fraction = %.3f, want ~%.2f", frac, p.HotProb)
	}
}

func TestCollectionSpreadsAcrossRatios(t *testing.T) {
	col := Collection(61)
	if len(col) != 61 {
		t.Fatalf("collection size = %d, want 61", len(col))
	}
	lo, hi := 1.0, 0.0
	seen := map[string]bool{}
	for _, p := range col {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate name %s", p.Name)
		}
		seen[p.Name] = true
		if p.AcrossRatio < lo {
			lo = p.AcrossRatio
		}
		if p.AcrossRatio > hi {
			hi = p.AcrossRatio
		}
	}
	if lo > 0.08 || hi < 0.30 {
		t.Fatalf("across ratios [%.2f, %.2f] lack the Fig 2 spread", lo, hi)
	}
}

func TestScaleClampsToOneRequest(t *testing.T) {
	p := LunProfiles()[0].Scale(0)
	if p.Requests != 1 {
		t.Fatalf("Scale(0).Requests = %d, want 1", p.Requests)
	}
}

func TestScaleDegenerateFactors(t *testing.T) {
	base := LunProfiles()[0]
	for _, f := range []float64{0, -1, math.NaN(), math.Inf(-1), 1e-12} {
		if got := base.Scale(f).Requests; got != 1 {
			t.Errorf("Scale(%v).Requests = %d, want 1", f, got)
		}
	}
	// Overflow-sized factors must saturate, not wrap through the
	// implementation-defined int(float64) conversion.
	for _, f := range []float64{math.Inf(1), 1e300} {
		if got := base.Scale(f).Requests; got != math.MaxInt {
			t.Errorf("Scale(%v).Requests = %d, want MaxInt", f, got)
		}
	}
	if base.Scale(2).Requests != 2*base.Requests {
		t.Errorf("Scale(2).Requests = %d, want %d", base.Scale(2).Requests, 2*base.Requests)
	}
}

func TestGeneratorRejectsTinyDevice(t *testing.T) {
	if _, err := NewGenerator(LunProfiles()[0], 10); err == nil {
		t.Fatal("tiny device accepted")
	}
}

func TestFig13MonotoneAcrossRatioOnGeneratedTrace(t *testing.T) {
	p := LunProfiles()[5].Scale(0.05)
	reqs, err := Generate(p, testLogical)
	if err != nil {
		t.Fatal(err)
	}
	r4 := trace.Measure(reqs, 8).AcrossRatio()
	r8 := trace.Measure(reqs, 16).AcrossRatio()
	r16 := trace.Measure(reqs, 32).AcrossRatio()
	if !(r4 > r8 && r8 > r16) {
		t.Fatalf("across ratios not decreasing with page size: 4K=%.3f 8K=%.3f 16K=%.3f", r4, r8, r16)
	}
}

func TestGeneratorWorksOnExperimentGeometry(t *testing.T) {
	c := ssdconf.Experiment()
	p := LunProfiles()[0].Scale(0.001)
	reqs, err := Generate(p, c.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if err := r.Validate(c.LogicalSectors()); err != nil {
			t.Fatal(err)
		}
	}
}

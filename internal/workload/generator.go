package workload

import (
	"fmt"
	"math/rand"

	"across/internal/trace"
)

// Generator produces a deterministic request stream for a profile over a
// device of a given logical size. Requests are generated against the 8 KB
// reference page (RefSPP sectors), like the Table 2 statistics; replaying
// the same trace at other page sizes is exactly how Fig 13/14 vary the page
// size over fixed workloads.
type Generator struct {
	p    Profile
	rng  *rand.Rand
	now  float64
	left int

	footprint int64 // sectors
	hotEnd    int64 // [0, hotEnd) is the hot region

	// Zone split: across-page objects live in a dedicated slice of each
	// region (small files, logs, registry hives — the traffic that loses
	// page alignment through the image-file translation), while bulk
	// aligned/contained traffic targets the remainder (OS images, swap).
	// Bulk writes therefore rarely collide with re-aligned areas, which is
	// what keeps the paper's ARollback ratio low on full-length traces.
	hotBulkEnd  int64 // [0, hotBulkEnd) bulk-hot, [hotBulkEnd, hotEnd) objects-hot
	coldBulkEnd int64 // [hotEnd, coldBulkEnd) bulk-cold, [coldBulkEnd, footprint) objects-cold

	// The fixed population of across-page extents this trace touches. A
	// real VDI guest's unaligned objects (file tails, metadata records,
	// database pages shifted by the image-file translation) sit at fixed
	// addresses and are re-read and updated in place, so the set of live
	// re-aligned areas is bounded regardless of trace length — which is
	// what keeps the paper's ARollback ratio (3.9%) and merged-read share
	// (0.12%) low on full-length traces.
	population []acrossExtent
	hotObjects int // population[:hotObjects] receive HotProb of accesses

	// Derived size model (sectors).
	meanNormalWrite float64
	alignedShare    float64
	meanAlignedPgs  float64
}

// Small-request sizes are biased toward <= half a page (<= 4 KB on the 8 KB
// reference page), which is what real VDI traffic looks like and what makes
// the across-page ratio fall as the page grows (Fig 13): most across-page
// requests at 8 KB still cross a boundary at 4 KB pages.
//
// meanAcrossSectors is the mean generated across-page request size:
// 80% uniform [2,8] (mean 5) + 20% uniform [9,16] (mean 12.5) = 6.5 sectors.
const meanAcrossSectors = 0.8*5 + 0.2*12.5

// meanContainedSectors is the mean contained sub-page request size:
// 80% uniform [1,8] (mean 4.5) + 20% uniform [9,15] (mean 12) = 6 sectors.
const meanContainedSectors = 0.8*4.5 + 0.2*12

// acrossExtent is one member of the across-page object population. base is
// the object's natural size: mutations oscillate around it (records are
// appended and truncated) instead of growing without bound, so the
// population's size mix is stationary over arbitrarily long traces.
type acrossExtent struct {
	off   int64
	count int
	base  int
}

const (
	// populationDivisor sizes the across-page object population relative
	// to the footprint (one object per this many footprint pages), clamped
	// to [populationMin, populationMax].
	populationDivisor = 64
	populationMin     = 64
	populationMax     = 8192
	// mutateProb is the chance a revisit changes the extent slightly (an
	// appended record, a shifted tail) — the trigger for Profitable-AMerge
	// growth.
	mutateProb = 0.10
	// outgrowProb is the chance an across-page write instead rewrites its
	// object grown past one page (a file that outgrew its tail): the
	// update can no longer be re-aligned and forces an ARollback, the
	// ~3.9% residual the paper reports in Fig 8(a).
	outgrowProb = 0.035
	// containedOverlapProb is the chance a contained sub-page write lands
	// inside an across-page object — the update pattern behind the paper's
	// Unprofitable-AMerge share (8.9% of across-area writes).
	containedOverlapProb = 0.12
)

// NewGenerator prepares a generator over a device with logicalSectors
// addressable sectors.
func NewGenerator(p Profile, logicalSectors int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if logicalSectors < 16*RefSPP {
		return nil, fmt.Errorf("workload: device too small (%d sectors)", logicalSectors)
	}
	g := &Generator{
		p:    p,
		rng:  rand.New(rand.NewSource(p.Seed)),
		left: p.Requests,
	}
	g.footprint = int64(float64(logicalSectors) * p.FootprintFrac)
	if g.footprint < 8*RefSPP {
		g.footprint = 8 * RefSPP
	}
	// Keep footprints page-aligned so aligned requests stay aligned.
	g.footprint -= g.footprint % RefSPP
	g.hotEnd = g.footprint * int64(p.HotFrac*1000) / 1000
	g.hotEnd -= g.hotEnd % RefSPP
	if g.hotEnd < 4*RefSPP {
		g.hotEnd = 4 * RefSPP
	}
	// Reserve the tail ~15% of each region for across-page objects.
	g.hotBulkEnd = alignDown(g.hotEnd * 85 / 100)
	g.coldBulkEnd = alignDown(g.hotEnd + (g.footprint-g.hotEnd)*85/100)

	// Size calibration: overall mean write size must hit AvgWriteKB.
	// across requests contribute meanAcrossSectors; the rest splits between
	// page-aligned multi-page requests and sub-page contained requests.
	target := p.AvgWriteKB * 2 // KB -> sectors
	g.meanNormalWrite = (target - p.AcrossRatio*meanAcrossSectors) / (1 - p.AcrossRatio)
	if g.meanNormalWrite < 4 {
		g.meanNormalWrite = 4
	}
	// Contained sub-page requests average RefSPP/2 sectors. Solve the
	// aligned share so the normal mix hits meanNormalWrite, assuming
	// aligned requests average meanAlignedPgs pages.
	g.meanAlignedPgs = g.meanNormalWrite/RefSPP + 0.5
	if g.meanAlignedPgs < 1 {
		g.meanAlignedPgs = 1
	}
	contained := meanContainedSectors
	alignedMean := g.meanAlignedPgs * RefSPP
	g.alignedShare = (g.meanNormalWrite - contained) / (alignedMean - contained)
	if g.alignedShare < 0.05 {
		g.alignedShare = 0.05
	}
	if g.alignedShare > 0.95 {
		g.alignedShare = 0.95
	}

	// Materialise the across-page object population (deterministic in the
	// profile seed). Objects sit at distinct odd page boundaries, so no two
	// objects ever overlap (an extent reaches at most one page either side
	// of its own boundary): the live re-aligned areas they induce stay
	// disjoint, which is what keeps rollbacks rare on arbitrarily long
	// traces, as in the paper.
	n := int(g.footprint / RefSPP / populationDivisor)
	if n < populationMin {
		n = populationMin
	}
	if n > populationMax {
		n = populationMax
	}
	// HotFrac of the objects live in the hot zone and receive HotProb of
	// the accesses — few objects, touched often, exactly the locality that
	// keeps the AMT's hot entries cache-resident on long traces.
	nHot := int(float64(n) * p.HotFrac)
	if nHot < 1 {
		nHot = 1
	}
	g.population = make([]acrossExtent, 0, n)
	used := make(map[int64]bool, n)
	for len(g.population) < n {
		hot := len(g.population) < nHot
		e, bpage, ok := g.freshExtent(used, hot, len(g.population))
		if !ok {
			break // zone exhausted of free odd boundaries
		}
		used[bpage] = true
		g.population = append(g.population, e)
	}
	g.hotObjects = nHot
	if len(g.population) == 0 {
		e, bpage, _ := g.freshExtent(nil, true, 0)
		used[bpage] = true
		g.population = append(g.population, e)
		g.hotObjects = 1
	}
	if g.hotObjects > len(g.population) {
		g.hotObjects = len(g.population)
	}
	return g, nil
}

// freshExtent places a boundary-straddling extent at an unused odd page
// boundary of the chosen temperature zone (used == nil skips the dedupe).
// Sizes are stratified over the population index — 4 of 5 objects small
// (≤ half a page), 1 of 5 large — so the request-level size mix holds even
// for tiny populations (it is what makes the Fig 13 monotonicity robust at
// every scale). It reports the boundary page; ok=false when no free
// boundary is found.
func (g *Generator) freshExtent(used map[int64]bool, hot bool, idx int) (acrossExtent, int64, bool) {
	for attempt := 0; attempt < 64; attempt++ {
		bpage := g.pageInObjects(3, hot)/RefSPP + 1
		if bpage%2 == 0 {
			bpage++
		}
		if used != nil && used[bpage] {
			continue
		}
		var count int
		if idx%5 < 4 {
			count = g.rng.Intn(7) + 2 // [2, 8]
		} else {
			count = g.rng.Intn(8) + 9 // [9, 16]
		}
		boundary := bpage * RefSPP
		lead := g.rng.Intn(count-1) + 1 // sectors before the boundary
		return acrossExtent{off: boundary - int64(lead), count: count, base: count}, bpage, true
	}
	return acrossExtent{}, 0, false
}

// Footprint returns the trace's footprint in sectors.
func (g *Generator) Footprint() int64 { return g.footprint }

func alignDown(sec int64) int64 { return sec - sec%RefSPP }

// pageIn picks a page-aligned base sector in the bulk zones, honouring the
// hot/cold split and leaving room for a request of maxPages pages.
func (g *Generator) pageIn(maxPages int64) int64 {
	base, end := int64(0), g.hotBulkEnd
	if g.rng.Float64() >= g.p.HotProb {
		base, end = g.hotEnd, g.coldBulkEnd
	}
	pages := (end-base)/RefSPP - maxPages
	if pages < 1 {
		pages = 1
	}
	return base + g.rng.Int63n(pages)*RefSPP
}

// pageInObjects picks a page-aligned base sector in the requested object
// zone.
func (g *Generator) pageInObjects(maxPages int64, hot bool) int64 {
	base, end := g.hotBulkEnd, g.hotEnd
	if !hot {
		base, end = g.coldBulkEnd, g.footprint
	}
	pages := (end-base)/RefSPP - maxPages
	if pages < 1 {
		pages = 1
	}
	return base + g.rng.Int63n(pages)*RefSPP
}

// acrossRequest picks an across-page object from the population; with
// mutateProb the object itself changes shape first (the mutation persists,
// so subsequent accesses see the updated extent, exactly like an appended
// file tail).
func (g *Generator) acrossRequest() (int64, int) {
	var i int
	if g.rng.Float64() < g.p.HotProb {
		i = g.rng.Intn(g.hotObjects)
	} else if len(g.population) > g.hotObjects {
		i = g.hotObjects + g.rng.Intn(len(g.population)-g.hotObjects)
	}
	if g.rng.Float64() < mutateProb {
		e := &g.population[i]
		boundary := (e.off/RefSPP + 1) * RefSPP
		lead := int(boundary - e.off) // sectors before the boundary (>= 1)
		// Oscillate the tail around the object's natural size, keeping the
		// extent across the boundary (count > lead) and within one page.
		count := e.base + g.rng.Intn(5) - 2
		if count <= lead {
			count = lead + 1
		}
		if count > RefSPP {
			count = RefSPP
		}
		e.count = count
	}
	e := g.population[i]
	return e.off, e.count
}

// acrossCount draws an across-page request size in sectors (see the size
// bias note on meanAcrossSectors).
func (g *Generator) acrossCount() int {
	if g.rng.Float64() < 0.8 {
		return g.rng.Intn(7) + 2 // [2, 8]
	}
	return g.rng.Intn(8) + 9 // [9, 16]
}

// containedRequest produces a contained sub-page extent, occasionally
// overlapping a remembered across-page extent when the op is a write.
func (g *Generator) containedRequest(op trace.Op) (int64, int) {
	if op == trace.OpWrite && len(g.population) > 0 && g.rng.Float64() < containedOverlapProb {
		e := g.population[g.rng.Intn(len(g.population))]
		// A short update inside the extent's first page, clipped to the
		// page so it stays contained (not across).
		pageEnd := (e.off/RefSPP + 1) * RefSPP
		maxLen := int(pageEnd - e.off)
		count := g.rng.Intn(4) + 1
		if count > maxLen {
			count = maxLen
		}
		return e.off, count
	}
	count := g.containedCount()
	off := g.pageIn(1) + int64(g.rng.Intn(RefSPP-count+1))
	return off, count
}

// containedCount draws a contained sub-page request size in sectors.
func (g *Generator) containedCount() int {
	if g.rng.Float64() < 0.8 {
		return g.rng.Intn(8) + 1 // [1, 8]
	}
	return g.rng.Intn(7) + 9 // [9, 15]
}

// geometricPages draws a page count >= 1 with the calibrated mean.
func (g *Generator) geometricPages() int {
	p := 1 / g.meanAlignedPgs
	n := 1
	for g.rng.Float64() > p && n < 32 {
		n++
	}
	return n
}

// Next returns the next request, or ok=false when the trace is exhausted.
func (g *Generator) Next() (trace.Request, bool) {
	if g.left == 0 {
		return trace.Request{}, false
	}
	g.left--
	g.now += g.rng.ExpFloat64() / g.p.MeanIOPS * 1000 // ms

	op := trace.OpRead
	if g.rng.Float64() < g.p.WriteRatio {
		op = trace.OpWrite
	}

	var off int64
	var count int
	switch {
	case g.rng.Float64() < g.p.AcrossRatio:
		off, count = g.acrossRequest()
		if op == trace.OpWrite && g.rng.Float64() < outgrowProb {
			// The object outgrew its page: an appended tail is rewritten
			// from partway into the object, spilling past the across-page
			// limit. The update overlaps the re-aligned area without
			// covering it, so the FTL must roll the area back.
			shift := int64(g.rng.Intn(3) + 1)
			if shift >= int64(count) {
				shift = int64(count) - 1
			}
			off += shift
			count += g.rng.Intn(8) + RefSPP - count + 1 // > one page
		}
	case g.rng.Float64() < g.alignedShare:
		// Page-aligned multi-page request.
		pages := g.geometricPages()
		off = g.pageIn(int64(pages))
		count = pages * RefSPP
	default:
		// Contained sub-page request: unaligned but inside one page —
		// sometimes an update landing inside a recently written across-page
		// extent (see containedOverlapProb).
		off, count = g.containedRequest(op)
	}
	// Near-minimal devices leave zones too small for the margins the pickers
	// assume, so clip the request to the footprint instead of addressing past
	// the end of the logical space (on realistic geometries this never
	// triggers).
	if off+int64(count) > g.footprint {
		if int64(count) >= g.footprint {
			off, count = 0, int(g.footprint)
		} else {
			off = g.footprint - int64(count)
		}
	}
	return trace.Request{Time: g.now, Op: op, Offset: off, Count: count}, true
}

// Generate materialises the whole trace.
func (g *Generator) Generate() []trace.Request {
	out := make([]trace.Request, 0, g.left)
	for {
		r, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Generate is a convenience constructing a generator and materialising the
// trace in one call.
func Generate(p Profile, logicalSectors int64) ([]trace.Request, error) {
	g, err := NewGenerator(p, logicalSectors)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}

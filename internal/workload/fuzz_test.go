package workload

import (
	"math"
	"testing"

	"across/internal/trace"
)

// FuzzProfileGenerate drives the trace generator with arbitrary profile
// parameters and device sizes. Construction must never panic; every trace a
// valid profile generates must contain exactly the requested number of
// well-formed requests, all inside the device's logical space, with finite
// non-decreasing arrival times.
func FuzzProfileGenerate(f *testing.F) {
	f.Add(2000, 0.6, 9.0, 0.25, 0.65, 0.2, 0.75, 350.0, int64(7), int64(1<<20))
	// Minimal device with extreme-but-legal ratios: the zone margins vanish.
	f.Add(50, 1.0, 0.5, 0.9, 1.0, 1.0, 1.0, 1e9, int64(-1), int64(16*RefSPP))
	// Non-finite parameters must be rejected by Validate, not generated.
	f.Add(10, math.NaN(), 9.0, 0.25, 0.65, 0.2, 0.75, 350.0, int64(1), int64(4096))
	f.Add(10, 0.6, math.Inf(1), 0.25, 0.65, 0.2, 0.75, 350.0, int64(1), int64(4096))
	f.Add(10, 0.6, 9.0, 0.25, 0.65, 0.2, 0.75, 350.0, int64(1), int64(0))
	f.Fuzz(func(t *testing.T, requests int, writeR, writeKB, acrossR, foot, hotFrac, hotProb, iops float64, seed, logicalSectors int64) {
		// Bound the work per iteration, not the parameter space: huge request
		// counts only slow the fuzzer down without covering new behaviour.
		requests = requests % 509
		if requests < 0 {
			requests = -requests
		}
		if logicalSectors < 0 {
			logicalSectors = -logicalSectors
		}
		logicalSectors %= 1 << 22
		p := Profile{
			Name:          "fuzz",
			Requests:      requests,
			WriteRatio:    writeR,
			AvgWriteKB:    writeKB,
			AcrossRatio:   acrossR,
			FootprintFrac: foot,
			HotFrac:       hotFrac,
			HotProb:       hotProb,
			MeanIOPS:      iops,
			Seed:          seed,
		}
		reqs, err := Generate(p, logicalSectors)
		if err != nil {
			return // rejected profile or device: fine, as long as no panic
		}
		if len(reqs) != requests {
			t.Fatalf("generated %d requests, profile asked for %d", len(reqs), requests)
		}
		prev := math.Inf(-1)
		for i, r := range reqs {
			if r.Op != trace.OpRead && r.Op != trace.OpWrite {
				t.Errorf("request %d: unknown op %d", i, r.Op)
			}
			if r.Offset < 0 || r.Count <= 0 {
				t.Errorf("request %d: degenerate extent off=%d count=%d", i, r.Offset, r.Count)
			}
			if r.Offset+int64(r.Count) > logicalSectors {
				t.Errorf("request %d: [%d,%d) exceeds the %d-sector device",
					i, r.Offset, r.Offset+int64(r.Count), logicalSectors)
			}
			if math.IsNaN(r.Time) || math.IsInf(r.Time, 0) || r.Time < prev {
				t.Errorf("request %d: arrival time %v after %v", i, r.Time, prev)
			}
			prev = r.Time
		}
	})
}

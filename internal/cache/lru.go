// Package cache provides the DRAM-side caching machinery of the FTL: a
// hand-rolled intrusive LRU and, on top of it, a cached mapping table (CMT)
// that models DFTL-style translation-page caching. MRSM runs its whole
// (oversized) mapping table through the CMT; Across-FTL runs only its AMT
// through it; the baseline FTL's table fits in DRAM and bypasses it. The
// miss/eviction accounting of this package is the mechanism behind the
// Map components of Fig 10 and the DRAM overheads of Fig 12.
package cache

// lruNode is an intrusive doubly-linked-list node keyed by an int64 id.
type lruNode struct {
	key        int64
	dirty      bool
	prev, next *lruNode
}

// LRU is a fixed-capacity least-recently-used set of int64 keys with a dirty
// bit per key. The zero value is not usable; call NewLRU.
type LRU struct {
	capacity int
	table    map[int64]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
}

// NewLRU creates an LRU that holds at most capacity keys (capacity >= 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{capacity: capacity, table: make(map[int64]*lruNode, capacity)}
}

// Len returns the number of resident keys.
func (l *LRU) Len() int { return len(l.table) }

// Cap returns the capacity.
func (l *LRU) Cap() int { return l.capacity }

// Contains reports residency without touching recency.
func (l *LRU) Contains(key int64) bool {
	_, ok := l.table[key]
	return ok
}

// IsDirty reports the dirty bit of a resident key (false if absent).
func (l *LRU) IsDirty(key int64) bool {
	n, ok := l.table[key]
	return ok && n.dirty
}

func (l *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU) pushFront(n *lruNode) {
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// Touch makes key the most recently used, inserting it if absent, and ORs
// dirty into its dirty bit. It returns whether the key was already resident
// and, if an insertion evicted the LRU victim, the victim's key and dirty
// bit (evicted=false otherwise).
func (l *LRU) Touch(key int64, dirty bool) (hit bool, evictedKey int64, evictedDirty, evicted bool) {
	if n, ok := l.table[key]; ok {
		n.dirty = n.dirty || dirty
		if l.head != n {
			l.unlink(n)
			l.pushFront(n)
		}
		return true, 0, false, false
	}
	if len(l.table) >= l.capacity {
		victim := l.tail
		l.unlink(victim)
		delete(l.table, victim.key)
		evictedKey, evictedDirty, evicted = victim.key, victim.dirty, true
	}
	n := &lruNode{key: key, dirty: dirty}
	l.table[key] = n
	l.pushFront(n)
	return false, evictedKey, evictedDirty, evicted
}

// Remove drops a key (e.g. when its translation page is discarded) and
// reports whether it was resident and dirty.
func (l *LRU) Remove(key int64) (wasResident, wasDirty bool) {
	n, ok := l.table[key]
	if !ok {
		return false, false
	}
	l.unlink(n)
	delete(l.table, key)
	return true, n.dirty
}

// Clean clears the dirty bit of a resident key (after its contents were
// flushed out of band).
func (l *LRU) Clean(key int64) {
	if n, ok := l.table[key]; ok {
		n.dirty = false
	}
}

// Keys returns resident keys from most to least recently used (test helper).
func (l *LRU) Keys() []int64 {
	out := make([]int64, 0, len(l.table))
	for n := l.head; n != nil; n = n.next {
		out = append(out, n.key)
	}
	return out
}

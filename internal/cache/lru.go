// Package cache provides the DRAM-side caching machinery of the FTL: a
// hand-rolled intrusive LRU and, on top of it, a cached mapping table (CMT)
// that models DFTL-style translation-page caching. MRSM runs its whole
// (oversized) mapping table through the CMT; Across-FTL runs only its AMT
// through it; the baseline FTL's table fits in DRAM and bypasses it. The
// miss/eviction accounting of this package is the mechanism behind the
// Map components of Fig 10 and the DRAM overheads of Fig 12.
package cache

// lruNode is an intrusive doubly-linked-list node keyed by an int64 id.
type lruNode struct {
	key        int64
	dirty      bool
	prev, next *lruNode
}

// LRU is a fixed-capacity least-recently-used set of int64 keys with a dirty
// bit per key. The zero value is not usable; call NewLRU or NewLRUDense.
type LRU struct {
	capacity int
	table    map[int64]*lruNode // key -> node (nil in dense mode)
	dense    []*lruNode         // key-indexed table when the key space is known
	size     int
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
	free     *lruNode // recycled nodes, chained through next
}

// NewLRU creates an LRU that holds at most capacity keys (capacity >= 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{capacity: capacity, table: make(map[int64]*lruNode, capacity)}
}

// NewLRUDense creates an LRU whose keys are known to lie in [0, keySpace):
// the residency table is a key-indexed slice, so lookups cost one index and
// the table never allocates under churn (a map's delete/insert cycle grows
// overflow buckets indefinitely). Translation-page caches qualify: their
// keys are dense page ids bounded by the mapping-table size.
func NewLRUDense(capacity int, keySpace int64) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{capacity: capacity, dense: make([]*lruNode, keySpace)}
}

func (l *LRU) lookup(key int64) *lruNode {
	if l.dense != nil {
		return l.dense[key]
	}
	return l.table[key]
}

func (l *LRU) install(key int64, n *lruNode) {
	if l.dense != nil {
		l.dense[key] = n
	} else {
		l.table[key] = n
	}
	l.size++
}

func (l *LRU) forget(key int64) {
	if l.dense != nil {
		l.dense[key] = nil
	} else {
		delete(l.table, key)
	}
	l.size--
}

// Len returns the number of resident keys.
func (l *LRU) Len() int { return l.size }

// Cap returns the capacity.
func (l *LRU) Cap() int { return l.capacity }

// Contains reports residency without touching recency.
func (l *LRU) Contains(key int64) bool { return l.lookup(key) != nil }

// IsDirty reports the dirty bit of a resident key (false if absent).
func (l *LRU) IsDirty(key int64) bool {
	n := l.lookup(key)
	return n != nil && n.dirty
}

func (l *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU) pushFront(n *lruNode) {
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

// Touch makes key the most recently used, inserting it if absent, and ORs
// dirty into its dirty bit. It returns whether the key was already resident
// and, if an insertion evicted the LRU victim, the victim's key and dirty
// bit (evicted=false otherwise).
func (l *LRU) Touch(key int64, dirty bool) (hit bool, evictedKey int64, evictedDirty, evicted bool) {
	if n := l.lookup(key); n != nil {
		n.dirty = n.dirty || dirty
		if l.head != n {
			l.unlink(n)
			l.pushFront(n)
		}
		return true, 0, false, false
	}
	// Recycle the evicted victim (or a previously removed node) for the new
	// entry: once the cache is warm every miss evicts, so the steady-state
	// insert path allocates nothing.
	var n *lruNode
	if l.size >= l.capacity {
		victim := l.tail
		l.unlink(victim)
		l.forget(victim.key)
		evictedKey, evictedDirty, evicted = victim.key, victim.dirty, true
		n = victim
	} else if l.free != nil {
		n, l.free = l.free, l.free.next
		n.next = nil
	} else {
		n = &lruNode{}
	}
	n.key, n.dirty = key, dirty
	l.install(key, n)
	l.pushFront(n)
	return false, evictedKey, evictedDirty, evicted
}

// Remove drops a key (e.g. when its translation page is discarded) and
// reports whether it was resident and dirty.
func (l *LRU) Remove(key int64) (wasResident, wasDirty bool) {
	n := l.lookup(key)
	if n == nil {
		return false, false
	}
	l.unlink(n)
	l.forget(key)
	wasDirty = n.dirty
	n.key, n.dirty = 0, false
	n.next, l.free = l.free, n
	return true, wasDirty
}

// Clean clears the dirty bit of a resident key (after its contents were
// flushed out of band).
func (l *LRU) Clean(key int64) {
	if n := l.lookup(key); n != nil {
		n.dirty = false
	}
}

// Keys returns resident keys from most to least recently used (test helper).
func (l *LRU) Keys() []int64 {
	out := make([]int64, 0, l.size)
	for n := l.head; n != nil; n = n.next {
		out = append(out, n.key)
	}
	return out
}

package cache

import (
	"fmt"

	"across/internal/snapshot"
)

// SnapshotState appends the LRU's shape (capacity, residency-table mode and
// key space) followed by the resident keys and dirty bits in MRU→LRU order.
// The free list is recycled scratch with no observable effect and is not
// serialised.
func (l *LRU) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("lru")
	enc.I64(int64(l.capacity))
	enc.Bool(l.dense != nil)
	enc.I64(int64(len(l.dense)))
	enc.I64(int64(l.size))
	for n := l.head; n != nil; n = n.next {
		enc.I64(n.key)
		enc.Bool(n.dirty)
	}
	return nil
}

// RestoreState reads state written by SnapshotState into an LRU constructed
// with the same capacity and mode. Shape mismatches are rejected rather
// than resized: capacity and key space are config-derived, so a divergence
// means the snapshot belongs to a different configuration (and resizing
// from decoded values would let hostile snapshots drive allocation).
func (l *LRU) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("lru")
	capacity := dec.I64()
	dense := dec.Bool()
	keySpace := dec.I64()
	size := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if capacity != int64(l.capacity) || dense != (l.dense != nil) || keySpace != int64(len(l.dense)) {
		return fmt.Errorf("cache: snapshot LRU shape (cap %d, dense %v, keyspace %d) does not match receiver (cap %d, dense %v, keyspace %d)",
			capacity, dense, keySpace, l.capacity, l.dense != nil, len(l.dense))
	}
	if size < 0 || size > capacity {
		return fmt.Errorf("cache: snapshot LRU size %d outside [0,%d]", size, capacity)
	}
	type entry struct {
		key   int64
		dirty bool
	}
	entries := make([]entry, size)
	for i := range entries {
		entries[i] = entry{dec.I64(), dec.Bool()}
	}
	if err := dec.Err(); err != nil {
		return err
	}
	// Drop any current residents, then re-insert LRU-first so that Touch
	// reproduces the recorded recency order exactly.
	for l.head != nil {
		l.Remove(l.head.key)
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if l.dense != nil && (e.key < 0 || e.key >= int64(len(l.dense))) {
			return fmt.Errorf("cache: snapshot LRU key %d outside dense key space [0,%d)", e.key, len(l.dense))
		}
		if hit, _, _, evicted := l.Touch(e.key, e.dirty); hit || evicted {
			return fmt.Errorf("cache: snapshot LRU key %d duplicated", e.key)
		}
	}
	return nil
}

// SnapshotState appends the CMT's grouping factor, its LRU residency state
// and the cumulative statistics.
func (c *CMT) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("cmt")
	enc.I64(int64(c.entriesPerPage))
	if err := c.lru.SnapshotState(enc); err != nil {
		return err
	}
	enc.I64(c.stats.Lookups)
	enc.I64(c.stats.Hits)
	enc.I64(c.stats.Misses)
	enc.I64(c.stats.DirtyEvicts)
	enc.I64(c.stats.CleanEvicts)
	return nil
}

// RestoreState reads state written by SnapshotState into a CMT constructed
// with the same grouping factor and residency budget.
func (c *CMT) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("cmt")
	epp := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if epp != int64(c.entriesPerPage) {
		return fmt.Errorf("cache: snapshot CMT has %d entries/page, receiver has %d", epp, c.entriesPerPage)
	}
	if err := c.lru.RestoreState(dec); err != nil {
		return err
	}
	c.stats = CMTStats{
		Lookups:     dec.I64(),
		Hits:        dec.I64(),
		Misses:      dec.I64(),
		DirtyEvicts: dec.I64(),
		CleanEvicts: dec.I64(),
	}
	return dec.Err()
}

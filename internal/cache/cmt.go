package cache

// CMTStats counts the externally visible effects of running a mapping table
// through the DRAM cache.
type CMTStats struct {
	Lookups     int64 // translation-page touches
	Hits        int64
	Misses      int64 // each miss costs one flash read of a translation page
	DirtyEvicts int64 // each costs one flash write of a translation page
	CleanEvicts int64
}

// HitRatio returns Hits/Lookups (1 when there were no lookups).
func (s CMTStats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// CMT is a cached mapping table: a set of translation pages (groups of
// mapping entries) resident in DRAM, with the remainder on flash. A lookup
// or update of a mapping entry touches the translation page that contains
// it; a miss requires reading that page from flash, possibly after writing
// back a dirty victim. The caller (the FTL scheme) converts the returned
// effects into flash operations so they are charged to the right timeline
// and counted as Map traffic.
type CMT struct {
	entriesPerPage int
	lru            *LRU
	stats          CMTStats
}

// Effect describes the flash work a single translation touch requires.
type Effect struct {
	MissRead   bool  // read the touched translation page from flash
	FlushWrite bool  // write back a dirty victim translation page first
	Victim     int64 // translation-page id of the flushed victim (valid if FlushWrite)
}

// NewCMT builds a cached mapping table. entriesPerPage is how many mapping
// entries one flash translation page holds; residentPages is the DRAM
// budget expressed in translation pages.
func NewCMT(entriesPerPage, residentPages int) *CMT {
	if entriesPerPage < 1 {
		entriesPerPage = 1
	}
	return &CMT{entriesPerPage: entriesPerPage, lru: NewLRU(residentPages)}
}

// NewCMTDense builds a cached mapping table over a mapping table of known
// size: totalEntries bounds the translation-page id space, so the cache uses
// a dense, churn-allocation-free residency table (see NewLRUDense). Every
// FTL scheme knows its table size up front, so this is the constructor the
// simulator's hot paths use.
func NewCMTDense(entriesPerPage, residentPages int, totalEntries int64) *CMT {
	if entriesPerPage < 1 {
		entriesPerPage = 1
	}
	pages := (totalEntries + int64(entriesPerPage) - 1) / int64(entriesPerPage)
	if pages < 1 {
		pages = 1
	}
	return &CMT{entriesPerPage: entriesPerPage, lru: NewLRUDense(residentPages, pages)}
}

// PageOf returns the translation-page id that stores an entry index.
func (c *CMT) PageOf(entry int64) int64 { return entry / int64(c.entriesPerPage) }

// EntriesPerPage returns the grouping factor.
func (c *CMT) EntriesPerPage() int { return c.entriesPerPage }

// ResidentPages returns the DRAM budget in translation pages.
func (c *CMT) ResidentPages() int { return c.lru.Cap() }

// Touch accesses the mapping entry with the given index; dirty marks the
// entry (and thus its page) modified. The returned Effect tells the caller
// what flash work to charge.
func (c *CMT) Touch(entry int64, dirty bool) Effect {
	pageID := c.PageOf(entry)
	c.stats.Lookups++
	hit, victim, victimDirty, evicted := c.lru.Touch(pageID, dirty)
	var e Effect
	if hit {
		c.stats.Hits++
		return e
	}
	c.stats.Misses++
	e.MissRead = true
	if evicted {
		if victimDirty {
			c.stats.DirtyEvicts++
			e.FlushWrite = true
			e.Victim = victim
		} else {
			c.stats.CleanEvicts++
		}
	}
	return e
}

// MarkClean clears the dirty bit of a resident translation page after its
// owner flushed it out of band (e.g. a forced checkpoint).
func (c *CMT) MarkClean(pageID int64) { c.lru.Clean(pageID) }

// Stats returns a copy of the accumulated statistics.
func (c *CMT) Stats() CMTStats { return c.stats }

// ResetStats zeroes the statistics (e.g. after warm-up) without disturbing
// cache contents.
func (c *CMT) ResetStats() { c.stats = CMTStats{} }

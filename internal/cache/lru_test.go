package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUBasicInsertAndHit(t *testing.T) {
	l := NewLRU(2)
	if hit, _, _, ev := l.Touch(1, false); hit || ev {
		t.Fatal("first insert should miss without eviction")
	}
	if hit, _, _, _ := l.Touch(1, false); !hit {
		t.Fatal("second touch should hit")
	}
	if l.Len() != 1 || l.Cap() != 2 {
		t.Fatalf("Len=%d Cap=%d, want 1 and 2", l.Len(), l.Cap())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := NewLRU(2)
	l.Touch(1, false)
	l.Touch(2, false)
	l.Touch(1, false) // 1 is now MRU, 2 is LRU
	_, victim, _, evicted := l.Touch(3, false)
	if !evicted || victim != 2 {
		t.Fatalf("evicted=%v victim=%d, want eviction of 2", evicted, victim)
	}
	if l.Contains(2) {
		t.Fatal("2 should be gone")
	}
	if !l.Contains(1) || !l.Contains(3) {
		t.Fatal("1 and 3 should be resident")
	}
}

func TestLRUDirtyBitPropagation(t *testing.T) {
	l := NewLRU(1)
	l.Touch(1, false)
	l.Touch(1, true) // mark dirty
	if !l.IsDirty(1) {
		t.Fatal("1 should be dirty")
	}
	l.Touch(1, false) // clean touch must not clear the dirty bit
	if !l.IsDirty(1) {
		t.Fatal("dirty bit must be sticky across clean touches")
	}
	_, victim, victimDirty, evicted := l.Touch(2, false)
	if !evicted || victim != 1 || !victimDirty {
		t.Fatalf("expected dirty eviction of 1, got evicted=%v victim=%d dirty=%v",
			evicted, victim, victimDirty)
	}
}

func TestLRUCleanAndRemove(t *testing.T) {
	l := NewLRU(2)
	l.Touch(1, true)
	l.Clean(1)
	if l.IsDirty(1) {
		t.Fatal("Clean did not clear dirty bit")
	}
	was, dirty := l.Remove(1)
	if !was || dirty {
		t.Fatalf("Remove = (%v,%v), want (true,false)", was, dirty)
	}
	if was, _ := l.Remove(1); was {
		t.Fatal("Remove of absent key reported resident")
	}
	l.Clean(99) // no-op on absent key must not panic
}

func TestLRUKeysOrder(t *testing.T) {
	l := NewLRU(3)
	l.Touch(1, false)
	l.Touch(2, false)
	l.Touch(3, false)
	l.Touch(1, false)
	got := l.Keys()
	want := []int64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestLRUCapacityClamp(t *testing.T) {
	l := NewLRU(0)
	if l.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamp to 1", l.Cap())
	}
}

// Property: the LRU never exceeds capacity, eviction victims are never
// still resident, and a reference model (map + recency slice) agrees on
// residency after arbitrary operation sequences.
func TestLRUMatchesReferenceModel(t *testing.T) {
	f := func(seed int64, capSeed uint8) bool {
		capacity := int(capSeed%8) + 1
		rng := rand.New(rand.NewSource(seed))
		l := NewLRU(capacity)
		var ref []int64 // most recent first
		refHas := func(k int64) int {
			for i, v := range ref {
				if v == k {
					return i
				}
			}
			return -1
		}
		for op := 0; op < 300; op++ {
			k := rng.Int63n(12)
			switch rng.Intn(3) {
			case 0, 1:
				hit, victim, _, evicted := l.Touch(k, rng.Intn(2) == 0)
				if i := refHas(k); i >= 0 {
					if !hit {
						return false
					}
					ref = append(ref[:i], ref[i+1:]...)
				} else if hit {
					return false
				} else if len(ref) >= capacity {
					want := ref[len(ref)-1]
					ref = ref[:len(ref)-1]
					if !evicted || victim != want {
						return false
					}
				} else if evicted {
					return false
				}
				ref = append([]int64{k}, ref...)
			case 2:
				l.Remove(k)
				if i := refHas(k); i >= 0 {
					ref = append(ref[:i], ref[i+1:]...)
				}
			}
			if l.Len() != len(ref) || l.Len() > capacity {
				return false
			}
			for _, v := range ref {
				if !l.Contains(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCMTGroupsEntriesIntoPages(t *testing.T) {
	c := NewCMT(4, 2)
	if c.PageOf(0) != 0 || c.PageOf(3) != 0 || c.PageOf(4) != 1 {
		t.Fatal("PageOf grouping wrong")
	}
	// Entries 0..3 share a translation page: one miss then hits.
	if e := c.Touch(0, false); !e.MissRead {
		t.Fatal("first touch should miss")
	}
	for i := int64(1); i < 4; i++ {
		if e := c.Touch(i, false); e.MissRead {
			t.Fatalf("touch of entry %d should hit (same page)", i)
		}
	}
	s := c.Stats()
	if s.Lookups != 4 || s.Misses != 1 || s.Hits != 3 {
		t.Fatalf("stats = %+v, want 4 lookups, 1 miss, 3 hits", s)
	}
}

func TestCMTDirtyEvictionRequiresFlush(t *testing.T) {
	c := NewCMT(1, 1) // one entry per page, one resident page
	c.Touch(0, true)  // page 0 resident and dirty
	e := c.Touch(1, false)
	if !e.MissRead || !e.FlushWrite || e.Victim != 0 {
		t.Fatalf("effect = %+v, want miss + flush of victim 0", e)
	}
	// Clean eviction: page 1 was never dirtied.
	e = c.Touch(2, false)
	if !e.MissRead || e.FlushWrite {
		t.Fatalf("effect = %+v, want clean eviction (no flush)", e)
	}
	s := c.Stats()
	if s.DirtyEvicts != 1 || s.CleanEvicts != 1 {
		t.Fatalf("stats = %+v, want one dirty and one clean eviction", s)
	}
}

func TestCMTHitRatioAndReset(t *testing.T) {
	c := NewCMT(2, 4)
	if got := c.Stats().HitRatio(); got != 1 {
		t.Fatalf("empty HitRatio = %v, want 1", got)
	}
	c.Touch(0, false)
	c.Touch(1, false)
	if got := c.Stats().HitRatio(); got != 0.5 {
		t.Fatalf("HitRatio = %v, want 0.5", got)
	}
	c.ResetStats()
	if c.Stats().Lookups != 0 {
		t.Fatal("ResetStats did not clear lookups")
	}
	// Contents survive a stats reset.
	if e := c.Touch(0, false); e.MissRead {
		t.Fatal("page 0 should still be resident after ResetStats")
	}
}

func TestCMTClampsDegenerateParameters(t *testing.T) {
	c := NewCMT(0, 0)
	if c.EntriesPerPage() != 1 || c.ResidentPages() != 1 {
		t.Fatalf("clamped CMT = (%d,%d), want (1,1)", c.EntriesPerPage(), c.ResidentPages())
	}
}

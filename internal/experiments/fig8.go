package experiments

import (
	"fmt"
	"io"

	"across/internal/report"
	"across/internal/sim"
)

// fig8Experiment reports Across-FTL's across-page operation census.
func fig8Experiment() Experiment {
	return Experiment{
		ID:    "fig8",
		Title: "Statistics of across-page access under Across-FTL",
		Paper: "ARollback ratio 3.9% avg (a); Unprofitable-AMerge only 8.9% of across writes (b); merged reads 0.12% of flash reads",
		Run: func(s *Session, w io.Writer) error {
			pageBytes := s.Cfg.SSD.PageBytes
			results, err := s.Results(pageBytes, s.lunNames(), []sim.SchemeKind{sim.KindAcross})
			if err != nil {
				return err
			}
			ta := report.New("Fig 8(a) Across-page rollback ratio", "Trace", "Rollback ratio")
			tb := report.New("Fig 8(b) Across-page write component distribution",
				"Trace", "Direct-write", "Profitable-AMerge", "Unprofitable-AMerge")
			tc := report.New("Merged reads (discussed in §4.2.1)",
				"Trace", "Direct reads", "Merged reads", "Merged flash reads / total flash reads")
			var sumRoll, sumUnprof, sumMergedShare float64
			n := 0
			for _, lun := range s.lunNames() {
				res := results[runKey{sim.KindAcross, lun, pageBytes}]
				if res.Across == nil {
					return fmt.Errorf("no across census for %s", lun)
				}
				st := res.Across
				d, p, u := st.ComponentShares()
				mergedShare := 0.0
				if tot := res.Counters.FlashReads(); tot > 0 {
					mergedShare = float64(st.MergedReadFlashReads) / float64(tot)
				}
				ta.Add(lun, report.Pct(st.RollbackRatio()))
				tb.Add(lun, report.Pct(d), report.Pct(p), report.Pct(u))
				tc.Add(lun, report.N(st.DirectReads), report.N(st.MergedReads), report.Pct(mergedShare))
				sumRoll += st.RollbackRatio()
				sumUnprof += u
				sumMergedShare += mergedShare
				n++
			}
			f := float64(n)
			ta.Note = "mean " + report.Pct(sumRoll/f) + " (paper: 3.9%)"
			tb.Note = "mean unprofitable " + report.Pct(sumUnprof/f) + " (paper: 8.9%)"
			tc.Note = "mean merged-read share " + report.Pct(sumMergedShare/f) + " (paper: 0.12%)"
			ta.RenderTo(w, s.Cfg.Format)
			tb.RenderTo(w, s.Cfg.Format)
			tc.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulator: Table 1 (configuration), Table 2 (trace
// specifications), Fig 2 (across-page ratios of the LUN collection), Fig 4
// (the across-page penalty under conventional FTL), Fig 8 (Across-FTL's
// operation census), Figs 9–12 (the three-scheme comparison: response time,
// flash ops, erases, overheads) and Figs 13–14 (the page-size case study).
//
// A Session memoises generated traces and finished runs so figures that
// share the same replays (9, 10, 11, 12) do not recompute them, and runs
// independent (scheme, trace, page-size) replays across a worker pool.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// Config scopes an experiment session.
type Config struct {
	// SSD is the device configuration (8 KB page variant; Figs 13/14 derive
	// the 4 and 16 KB variants from it).
	SSD ssdconf.Config
	// Scale multiplies the Table 2 request counts. 1.0 replays the paper's
	// full trace lengths; the default keeps a full harness run laptop-fast.
	Scale float64
	// Age warms the device to the §4.1 state before measuring.
	Age bool
	// Workers bounds parallel replays (0 = GOMAXPROCS).
	Workers int
	// CollectionSize is the number of Fig 2 traces (the paper shows 61).
	CollectionSize int
	// SeedOffset perturbs every workload seed; re-running the harness with
	// different offsets shows how stable the conclusions are against the
	// synthetic traces' randomness.
	SeedOffset int64
	// Format selects the table rendering: "text" (default), "markdown"
	// or "csv" (for plotting scripts).
	Format string
	// TraceOut, when set, makes the ext-timeline experiment write the
	// Across-FTL replay's execution trace to this path (.jsonl = event
	// lines, anything else = Chrome trace_event JSON for Perfetto).
	TraceOut string
	// MetricsOut, when set, makes ext-timeline also stream its sampled
	// metrics as JSONL to this path.
	MetricsOut string
	// MetricsIntervalMs overrides the sampling interval in simulated ms
	// (0 = divide the trace span into a fixed number of windows).
	MetricsIntervalMs float64
}

// DefaultConfig returns the standard harness setting: Table 1 geometry
// scaled 64x (2 GiB), 5% of the trace lengths, aged device.
func DefaultConfig() Config {
	return Config{
		SSD:            ssdconf.Experiment(),
		Scale:          0.05,
		Age:            true,
		CollectionSize: 61,
	}
}

// runKey identifies one memoised replay.
type runKey struct {
	kind      sim.SchemeKind
	lun       string
	pageBytes int
}

// traceEntry singleflights one trace generation: concurrent workers asking
// for the same profile share one Generate call instead of racing to produce
// (and momentarily hold) duplicate request slices.
type traceEntry struct {
	once sync.Once
	reqs []trace.Request
	err  error
}

// Session memoises traces and replays for one Config.
type Session struct {
	Cfg Config

	// ctx, when set, cancels in-flight replays: the worker pool stops
	// picking up new runs and the simulator aborts mid-replay. Defaults to
	// context.Background() (never cancelled).
	ctx context.Context

	mu      sync.Mutex
	traces  map[string]*traceEntry
	results map[runKey]*sim.Result
}

// NewSession validates the config and prepares an empty cache.
func NewSession(cfg Config) (*Session, error) {
	if err := cfg.SSD.Validate(); err != nil {
		return nil, err
	}
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("experiments: Scale %v out of (0,1]", cfg.Scale)
	}
	if cfg.CollectionSize <= 0 {
		cfg.CollectionSize = 61
	}
	return &Session{
		Cfg:     cfg,
		ctx:     context.Background(),
		traces:  make(map[string]*traceEntry),
		results: make(map[runKey]*sim.Result),
	}, nil
}

// WithContext attaches a cancellation context to the session and returns it.
// A daemon running a whole-session experiment job uses this so cancelling
// the job stops every replay the session has in flight.
func (s *Session) WithContext(ctx context.Context) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
	return s
}

// Luns returns the scaled (and seed-offset) Table 2 profiles.
func (s *Session) Luns() []workload.Profile {
	ps := workload.LunProfiles()
	for i := range ps {
		ps[i] = ps[i].Scale(s.Cfg.Scale)
		ps[i].Seed += s.Cfg.SeedOffset
	}
	return ps
}

// Trace returns (generating and caching on first use) the request stream of
// a profile. Traces are page-size independent, so all page-size variants
// replay the same stream.
func (s *Session) Trace(p workload.Profile) ([]trace.Request, error) {
	s.mu.Lock()
	e, ok := s.traces[p.Name]
	if !ok {
		e = &traceEntry{}
		s.traces[p.Name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		e.reqs, e.err = workload.Generate(p, s.Cfg.SSD.LogicalSectors())
	})
	return e.reqs, e.err
}

// Result returns the memoised replay for one (scheme, lun, page size),
// running it if needed. Prefer Results for batches — it parallelises.
func (s *Session) Result(kind sim.SchemeKind, lun string, pageBytes int) (*sim.Result, error) {
	m, err := s.Results(pageBytes, []string{lun}, []sim.SchemeKind{kind})
	if err != nil {
		return nil, err
	}
	return m[runKey{kind, lun, pageBytes}], nil
}

// Results ensures every (kind, lun) replay at the given page size exists,
// computing missing ones concurrently, and returns the full map.
func (s *Session) Results(pageBytes int, luns []string, kinds []sim.SchemeKind) (map[runKey]*sim.Result, error) {
	var missing []runKey
	s.mu.Lock()
	for _, lun := range luns {
		for _, kind := range kinds {
			k := runKey{kind, lun, pageBytes}
			if _, ok := s.results[k]; !ok {
				missing = append(missing, k)
			}
		}
	}
	s.mu.Unlock()

	if len(missing) > 0 {
		workers := s.Cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(missing) {
			workers = len(missing)
		}
		jobs := make(chan runKey)
		errs := make(chan error, len(missing))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := range jobs {
					if err := s.ctx.Err(); err != nil {
						errs <- fmt.Errorf("experiments: %s on %s @%dB pages: %w",
							k.kind, k.lun, k.pageBytes, err)
						continue
					}
					res, err := s.run(k)
					if err != nil {
						errs <- fmt.Errorf("experiments: %s on %s @%dB pages: %w",
							k.kind, k.lun, k.pageBytes, err)
						continue
					}
					s.mu.Lock()
					s.results[k] = res
					s.mu.Unlock()
				}
			}()
		}
		for _, k := range missing {
			jobs <- k
		}
		close(jobs)
		wg.Wait()
		close(errs)
		var all []error
		for err := range errs {
			all = append(all, err)
		}
		if err := errors.Join(all...); err != nil {
			return nil, err
		}
	}

	out := make(map[runKey]*sim.Result, len(luns)*len(kinds))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, lun := range luns {
		for _, kind := range kinds {
			k := runKey{kind, lun, pageBytes}
			out[k] = s.results[k]
		}
	}
	return out, nil
}

// run performs one replay.
func (s *Session) run(k runKey) (*sim.Result, error) {
	var prof workload.Profile
	found := false
	for _, p := range s.Luns() {
		if p.Name == k.lun {
			prof, found = p, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("unknown lun %q", k.lun)
	}
	reqs, err := s.Trace(prof)
	if err != nil {
		return nil, err
	}
	conf := s.Cfg.SSD.WithPageBytes(k.pageBytes)
	r, err := sim.NewRunner(k.kind, conf)
	if err != nil {
		return nil, err
	}
	if s.Cfg.Age {
		if err := r.AgeCtx(s.ctx, sim.DefaultAging()); err != nil {
			return nil, err
		}
	}
	return r.ReplayCtx(s.ctx, reqs)
}

// lunNames lists the profile names in Table 2 order.
func (s *Session) lunNames() []string {
	ps := s.Luns()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

package experiments

import (
	"io"

	"across/internal/report"
	"across/internal/sim"
	"across/internal/trace"
)

// fig4Experiment quantifies the across-page penalty under the conventional
// FTL: per-sector read latency (a), write latency (b) and flush count (c)
// of across-page requests versus normal requests.
func fig4Experiment() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Across-page vs normal requests under conventional FTL (per sector-size)",
		Paper: "across-page read latency 1.61x, write latency 1.49x, flush count 2.69x that of normal requests (averages)",
		Run: func(s *Session, w io.Writer) error {
			pageBytes := s.Cfg.SSD.PageBytes
			results, err := s.Results(pageBytes, s.lunNames(), []sim.SchemeKind{sim.KindFTL})
			if err != nil {
				return err
			}
			ta := report.New("Fig 4(a) Read latency per sector (ms)", "Trace", "Across-page", "Normal", "Ratio")
			tb := report.New("Fig 4(b) Write latency per sector (ms)", "Trace", "Across-page", "Normal", "Ratio")
			tc := report.New("Fig 4(c) Flush write count per sector", "Trace", "Across-page", "Normal", "Ratio")
			var sumR, sumW, sumF float64
			var n int
			for _, lun := range s.lunNames() {
				res := results[runKey{sim.KindFTL, lun, pageBytes}]
				ar, nr := res.AcrossBucket(trace.OpRead), res.MergedNormal(trace.OpRead)
				aw, nw := res.AcrossBucket(trace.OpWrite), res.MergedNormal(trace.OpWrite)
				rRatio := ratio(ar.LatencyPerSector(), nr.LatencyPerSector())
				wRatio := ratio(aw.LatencyPerSector(), nw.LatencyPerSector())
				fRatio := ratio(aw.FlushesPerSector(), nw.FlushesPerSector())
				ta.Add(lun, report.F(ar.LatencyPerSector(), 4), report.F(nr.LatencyPerSector(), 4), report.F(rRatio, 2))
				tb.Add(lun, report.F(aw.LatencyPerSector(), 4), report.F(nw.LatencyPerSector(), 4), report.F(wRatio, 2))
				tc.Add(lun, report.F(aw.FlushesPerSector(), 4), report.F(nw.FlushesPerSector(), 4), report.F(fRatio, 2))
				sumR += rRatio
				sumW += wRatio
				sumF += fRatio
				n++
			}
			ta.Note = "mean ratio " + report.F(sumR/float64(n), 2) + " (paper: 1.61)"
			tb.Note = "mean ratio " + report.F(sumW/float64(n), 2) + " (paper: 1.49)"
			tc.Note = "mean ratio " + report.F(sumF/float64(n), 2) + " (paper: 2.69)"
			ta.RenderTo(w, s.Cfg.Format)
			tb.RenderTo(w, s.Cfg.Format)
			tc.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"across/internal/sim"
	"across/internal/trace"
)

// TestTraceSingleflight hammers Session.Trace from many goroutines — same
// profile and different profiles interleaved — and checks each trace is
// generated exactly once: every caller for a given profile must get the
// same backing array, and concurrent access must be race-free (run with
// -race).
func TestTraceSingleflight(t *testing.T) {
	s := quickSession(t)
	profiles := s.Luns()[:3]

	const goroutines = 32
	const rounds = 8
	got := make([][]([]trace.Request), len(profiles))
	for i := range got {
		got[i] = make([][]trace.Request, goroutines*rounds)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Rotate the starting profile per goroutine so same-profile
				// and cross-profile contention both happen.
				for off := 0; off < len(profiles); off++ {
					pi := (g + off) % len(profiles)
					reqs, err := s.Trace(profiles[pi])
					if err != nil {
						t.Errorf("Trace(%s): %v", profiles[pi].Name, err)
						return
					}
					if len(reqs) == 0 {
						t.Errorf("Trace(%s) returned no requests", profiles[pi].Name)
						return
					}
					if off == 0 {
						got[pi][g*rounds+r] = reqs
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Exactly-once generation: all callers of one profile share one backing
	// array. (Generating twice would hand out distinct allocations.)
	for pi, traces := range got {
		var canon *trace.Request
		for _, reqs := range traces {
			if reqs == nil {
				continue
			}
			if canon == nil {
				canon = &reqs[0]
				continue
			}
			if &reqs[0] != canon {
				t.Fatalf("profile %s generated more than once: distinct backing arrays", profiles[pi].Name)
			}
		}
		if canon == nil {
			t.Fatalf("profile %s never sampled", profiles[pi].Name)
		}
	}

	// Distinct profiles must not share traces.
	a, _ := s.Trace(profiles[0])
	b, _ := s.Trace(profiles[1])
	if &a[0] == &b[0] {
		t.Fatal("distinct profiles share one trace")
	}
}

// TestSessionContextCancellation checks a cancelled session context stops
// replay work with a context error rather than running to completion.
func TestSessionContextCancellation(t *testing.T) {
	s := quickSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.WithContext(ctx)
	_, err := s.Result(sim.KindFTL, "lun1", 8192)
	if err == nil {
		t.Fatal("cancelled session completed a replay")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("error %q does not carry the context cause", err)
	}
}

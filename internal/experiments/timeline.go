package experiments

import (
	"fmt"
	"io"

	"across/internal/obs"
	"across/internal/report"
	"across/internal/sim"
)

// timelineSamples is the row budget when no explicit interval is set: the
// replay's arrival span is divided into this many windows, so the table
// stays readable at any trace scale.
const timelineSamples = 24

// extTimelineExperiment replays the first Table 2 trace with the metrics
// sampler attached and renders the time-series view: per-window latency,
// queue depth, WAF and GC debt for each scheme, plus the per-chip busy
// fractions for Across-FTL. With Config.TraceOut / Config.MetricsOut set it
// also writes the Across-FTL replay's execution trace (Chrome trace_event
// for Perfetto, or JSONL) and metrics series to those paths.
func extTimelineExperiment() Experiment {
	return Experiment{
		ID:    "ext-timeline",
		Title: "Sampled timeline (extension; not a paper figure)",
		Paper: "not in the paper; the end-of-run aggregates of Figs 9-12 as time series, showing when GC pressure and latency spikes occur within the trace",
		Run: func(s *Session, w io.Writer) error {
			luns := s.Luns()
			prof := luns[0]
			reqs, err := s.Trace(prof)
			if err != nil {
				return err
			}
			interval := s.Cfg.MetricsIntervalMs
			if interval <= 0 {
				if n := len(reqs); n > 1 {
					interval = (reqs[n-1].Time - reqs[0].Time) / timelineSamples
				}
				if interval <= 0 {
					interval = 50
				}
			}
			for _, kind := range sim.Kinds() {
				r, err := sim.NewRunner(kind, s.Cfg.SSD)
				if err != nil {
					return err
				}
				if s.Cfg.Age {
					if err := r.Age(sim.DefaultAging()); err != nil {
						return err
					}
				}
				smp, err := obs.NewSampler(interval)
				if err != nil {
					return err
				}
				var closers []io.Closer
				if kind == sim.KindAcross {
					if s.Cfg.TraceOut != "" {
						trc, c, err := obs.OpenTrace(s.Cfg.TraceOut, s.Cfg.SSD.Chips())
						if err != nil {
							return err
						}
						r.SetTracer(trc)
						closers = append(closers, c)
					}
					if s.Cfg.MetricsOut != "" {
						sink, c, err := obs.OpenMetrics(s.Cfg.MetricsOut)
						if err != nil {
							return err
						}
						smp.SetSink(sink)
						closers = append(closers, c)
					}
				}
				r.SetSampler(smp)
				if _, err := r.Replay(reqs); err != nil {
					return err
				}
				for _, c := range closers {
					if err := c.Close(); err != nil {
						return err
					}
				}
				if err := smp.Err(); err != nil {
					return err
				}
				lt := report.TimelineLatency(smp.Samples())
				lt.Title = fmt.Sprintf("Timeline: %s on %s (%.0f ms windows)", kind, prof.Name, interval)
				lt.RenderTo(w, s.Cfg.Format)
				if kind == sim.KindAcross {
					ut := report.TimelineUtilisation(smp.Samples())
					ut.Title = fmt.Sprintf("Per-chip utilisation: %s on %s", kind, prof.Name)
					ut.RenderTo(w, s.Cfg.Format)
				}
			}
			return nil
		},
	}
}

package experiments

import (
	"io"

	"across/internal/report"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// table1Experiment prints the simulator configuration next to the paper's
// Table 1 settings.
func table1Experiment() Experiment {
	return Experiment{
		ID:    "table1",
		Title: "Experimental Settings of SSDsim (TLC cell)",
		Paper: "262144 blocks, 64 pages/block, 8KB pages, GC threshold 10%, read 0.075ms, write 2ms, cache access 0.001ms",
		Run: func(s *Session, w io.Writer) error {
			full := ssdconf.Table1()
			cur := s.Cfg.SSD
			t := report.New("Table 1 (reproduced)", "Parameter", "Paper", "This run")
			t.Addf("Block number", full.BlocksTotal(), cur.BlocksTotal())
			t.Addf("Pages per block", full.PagesPerBlock, cur.PagesPerBlock)
			t.Addf("Page size (KB)", full.PageBytes/1024, cur.PageBytes/1024)
			t.Addf("GC threshold", report.Pct(full.GCThreshold), report.Pct(cur.GCThreshold))
			t.Addf("Read time (ms)", full.ReadTime, cur.ReadTime)
			t.Addf("Write time (ms)", full.ProgramTime, cur.ProgramTime)
			t.Addf("Cache access (ms)", full.CacheAccess, cur.CacheAccess)
			t.Addf("Erase time (ms)", full.EraseTime, cur.EraseTime)
			t.Addf("Raw capacity (GiB)", full.PhysBytes()>>30, cur.PhysBytes()>>30)
			t.Note = "\"This run\" uses the shape-preserving scaled geometry unless -full is given; " +
				"timing, page geometry and GC threshold always equal Table 1."
			t.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

// table2Experiment prints the specification of the six replayed traces —
// targets from the paper and the statistics the generated traces actually
// measure.
func table2Experiment() Experiment {
	return Experiment{
		ID:    "table2",
		Title: "Specifications on Selected Traces (8KB page size)",
		Paper: "lun1-lun6: 0.6-0.9M requests, write ratios 34.7-61.5%, write sizes 7.6-11.3KB, across ratios 16.4-27.5%",
		Run: func(s *Session, w io.Writer) error {
			t := report.New("Table 2 (reproduced; paper value -> measured on generated trace)",
				"Trace", "# of Req.", "Write R", "Write SZ (KB)", "Across R")
			for _, p := range s.Luns() {
				reqs, err := s.Trace(p)
				if err != nil {
					return err
				}
				st := trace.Measure(reqs, workload.RefSPP)
				full, _ := workload.LunProfile(p.Name)
				t.Add(p.Name,
					report.N(int64(full.Requests))+" -> "+report.N(st.Requests),
					report.Pct(p.WriteRatio)+" -> "+report.Pct(st.WriteRatio()),
					report.F(p.AvgWriteKB, 1)+" -> "+report.F(st.AvgWriteKB(), 1),
					report.Pct(p.AcrossRatio)+" -> "+report.Pct(st.AcrossRatio()))
			}
			t.Note = "request counts are scaled by the session's Scale factor; ratios are measured on the synthetic traces."
			t.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

// fig2Experiment regenerates the across-page ratio sweep over the trace
// collection.
func fig2Experiment() Experiment {
	return Experiment{
		ID:    "fig2",
		Title: "Across-page access ratio of the LUN collection (8KB pages)",
		Paper: "a significant portion of requests are across-page; ratios spread up to ~0.38 over 61 traces",
		Run: func(s *Session, w io.Writer) error {
			t := report.New("Fig 2 (reproduced)", "Trace", "Across-page ratio")
			lo, hi, sum := 1.0, 0.0, 0.0
			col := workload.Collection(s.Cfg.CollectionSize)
			for _, p := range col {
				reqs, err := workload.Generate(p, s.Cfg.SSD.LogicalSectors())
				if err != nil {
					return err
				}
				ar := trace.Measure(reqs, workload.RefSPP).AcrossRatio()
				t.Add(p.Name, report.F(ar, 3))
				sum += ar
				if ar < lo {
					lo = ar
				}
				if ar > hi {
					hi = ar
				}
			}
			t.Note = "min " + report.F(lo, 3) + ", mean " + report.F(sum/float64(len(col)), 3) +
				", max " + report.F(hi, 3)
			t.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

// fig13Experiment measures the across ratio of the fixed traces at 4, 8 and
// 16 KB pages.
func fig13Experiment() Experiment {
	return Experiment{
		ID:    "fig13",
		Title: "Across-page access ratio with varied flash page sizes",
		Paper: "the across-page ratio keeps decreasing as the page grows (4KB > 8KB > 16KB)",
		Run: func(s *Session, w io.Writer) error {
			t := report.New("Fig 13 (reproduced)", "Trace", "4KB", "8KB", "16KB")
			for _, p := range s.Luns() {
				reqs, err := s.Trace(p)
				if err != nil {
					return err
				}
				t.Add(p.Name,
					report.F(trace.Measure(reqs, 8).AcrossRatio(), 3),
					report.F(trace.Measure(reqs, 16).AcrossRatio(), 3),
					report.F(trace.Measure(reqs, 32).AcrossRatio(), 3))
			}
			t.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

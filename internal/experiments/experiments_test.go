package experiments

import (
	"bytes"
	"strings"
	"testing"

	"across/internal/sim"
	"across/internal/ssdconf"
)

// quickConfig keeps experiment tests fast: small geometry, tiny traces,
// a short Fig 2 collection.
func quickConfig() Config {
	c := ssdconf.Table1()
	c.Channels = 4
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 64
	c.PagesPerBlock = 32
	return Config{SSD: c, Scale: 0.004, Age: true, CollectionSize: 8}
}

func quickSession(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionValidation(t *testing.T) {
	c := quickConfig()
	c.Scale = 0
	if _, err := NewSession(c); err == nil {
		t.Fatal("Scale 0 accepted")
	}
	c = quickConfig()
	c.SSD.Channels = 0
	if _, err := NewSession(c); err == nil {
		t.Fatal("invalid SSD accepted")
	}
	c = quickConfig()
	c.CollectionSize = 0
	s, err := NewSession(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.CollectionSize != 61 {
		t.Fatalf("CollectionSize default = %d, want 61", s.Cfg.CollectionSize)
	}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"table1", "table2", "fig2", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		e, err := ByID(id)
		if err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s is incomplete: %+v", id, e)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
	// IDs covers paper artifacts plus the two extension studies.
	if len(IDs()) != len(want)+len(Extensions()) {
		t.Errorf("IDs() = %v", IDs())
	}
	for _, e := range Extensions() {
		got, err := ByID(e.ID)
		if err != nil || got.Run == nil {
			t.Errorf("extension %s unresolvable: %v", e.ID, err)
		}
	}
}

func TestTraceMemoisation(t *testing.T) {
	s := quickSession(t)
	p := s.Luns()[0]
	a, err := s.Trace(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Trace(p)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("trace not memoised")
	}
}

func TestResultMemoisationAndParallelRuns(t *testing.T) {
	s := quickSession(t)
	pb := s.Cfg.SSD.PageBytes
	luns := s.lunNames()[:2]
	m1, err := s.Results(pb, luns, sim.Kinds())
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != 6 {
		t.Fatalf("results = %d, want 6", len(m1))
	}
	r1, err := s.Result(sim.KindFTL, luns[0], pb)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != m1[runKey{sim.KindFTL, luns[0], pb}] {
		t.Fatal("result not memoised")
	}
}

func TestResultsUnknownLun(t *testing.T) {
	s := quickSession(t)
	if _, err := s.Results(s.Cfg.SSD.PageBytes, []string{"nope"}, sim.Kinds()); err == nil {
		t.Fatal("unknown lun accepted")
	}
}

// TestEveryExperimentRuns executes the full registry end to end on the
// quick configuration and sanity-checks the rendered output.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	s := quickSession(t)
	var buf bytes.Buffer
	if err := RunAll(s, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"table1", "Block number",
		"table2", "Across R",
		"fig2", "Across-page ratio",
		"fig4", "Flush write count",
		"fig8", "Rollback",
		"fig9", "Write response time",
		"fig10", "map share",
		"fig11", "Erase count",
		"fig12", "Mapping table size",
		"fig13", "16KB",
		"fig14", "varied page sizes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "+Inf") {
		t.Error("output contains NaN/Inf")
	}
}

func TestExtensionsRun(t *testing.T) {
	s := quickSession(t)
	var buf bytes.Buffer
	for _, id := range []string{"ext-tail", "ext-wear"} {
		if err := RunOne(id, s, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"p99", "stddev"} {
		if !strings.Contains(out, want) {
			t.Errorf("extension output missing %q", want)
		}
	}
}

func TestSeedOffsetChangesTraces(t *testing.T) {
	a := quickSession(t)
	cfgB := quickConfig()
	cfgB.SeedOffset = 42
	b, err := NewSession(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Trace(a.Luns()[0])
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Trace(b.Luns()[0])
	if err != nil {
		t.Fatal(err)
	}
	same := len(ra) == len(rb)
	if same {
		for i := range ra {
			if ra[i] != rb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed offset did not perturb the trace")
	}
}

func TestRunOne(t *testing.T) {
	s := quickSession(t)
	var buf bytes.Buffer
	if err := RunOne("table1", s, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "262144") {
		t.Error("table1 output missing paper block count")
	}
	if err := RunOne("nope", s, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the handle used by cmd/experiments -run and the bench names
	// ("table1", "fig9", ...).
	ID string
	// Title matches the paper's caption.
	Title string
	// Paper summarises what the paper reports, for side-by-side reading.
	Paper string
	// Run renders the regenerated artifact.
	Run func(s *Session, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		table1Experiment(),
		table2Experiment(),
		fig2Experiment(),
		fig4Experiment(),
		fig8Experiment(),
		fig9Experiment(),
		fig10Experiment(),
		fig11Experiment(),
		fig12Experiment(),
		fig13Experiment(),
		fig14Experiment(),
	}
}

// IDs lists the registered experiment ids (paper artifacts and extensions).
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	for _, e := range Extensions() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// ByID resolves one experiment, searching paper artifacts then extensions.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	for _, e := range Extensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}

// RunAll executes every experiment in paper order.
func RunAll(s *Session, w io.Writer) error {
	for _, e := range All() {
		if err := runOne(e, s, w); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single experiment by id.
func RunOne(id string, s *Session, w io.Writer) error {
	e, err := ByID(id)
	if err != nil {
		return err
	}
	return runOne(e, s, w)
}

func runOne(e Experiment, s *Session, w io.Writer) error {
	fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
	fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
	if err := e.Run(s, w); err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	return nil
}

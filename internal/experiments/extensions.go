package experiments

import (
	"io"

	"across/internal/report"
	"across/internal/sim"
)

// Extensions returns studies that go beyond the paper's figures but fall
// out of the same instrumented runs: the write-latency tail (the paper
// cites the partial-GC long-tail line of work), the per-block wear
// distribution behind the erase-count endurance metric, and a DFTL bracket
// that separates table-spilling overhead from sub-page-granularity
// overhead.
func Extensions() []Experiment {
	return []Experiment{
		extTailExperiment(),
		extWearExperiment(),
		extDFTLExperiment(),
		extUtilExperiment(),
		extTimelineExperiment(),
	}
}

// extUtilExperiment reports chip utilisation and balance: how much of the
// device's service capacity each scheme consumes for the same host work,
// and whether dynamic allocation keeps the chips evenly loaded.
func extUtilExperiment() Experiment {
	return Experiment{
		ID:    "ext-util",
		Title: "Chip utilisation (extension; not a paper figure)",
		Paper: "not in the paper; flash-op savings should appear as lower device utilisation for the same offered load",
		Run: func(s *Session, w io.Writer) error {
			results, err := s.comparison()
			if err != nil {
				return err
			}
			pb := s.Cfg.SSD.PageBytes
			t := report.New("Chip busy fraction over the trace span",
				"Trace", "Scheme", "min chip", "max chip", "imbalance")
			for _, lun := range s.lunNames() {
				for _, kind := range sim.Kinds() {
					res := results[runKey{kind, lun, pb}]
					lo, hi := res.UtilisationSpread()
					imb := "n/a"
					if lo > 0 {
						imb = report.F(hi/lo, 2)
					}
					t.Add(lun, string(kind), report.Pct(lo), report.Pct(hi), imb)
				}
			}
			t.Note = "imbalance = max/min; values near 1.0 mean the channel-striped allocator is balancing well."
			t.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

// extDFTLExperiment compares the DRAM-resident baseline, demand-paged DFTL
// and MRSM: DFTL spills a page-granularity table, MRSM a sub-page one, so
// the gap between them is the cost of granularity rather than spilling.
func extDFTLExperiment() Experiment {
	return Experiment{
		ID:    "ext-dftl",
		Title: "DFTL bracket (extension; not a paper figure)",
		Paper: "not in the paper; its baseline holds the table in DRAM — DFTL shows how much of MRSM's overhead is table spilling vs sub-page granularity",
		Run: func(s *Session, w io.Writer) error {
			pb := s.Cfg.SSD.PageBytes
			luns := s.lunNames()[:2]
			kinds := []sim.SchemeKind{sim.KindFTL, sim.KindDFTL, sim.KindMRSM}
			results, err := s.Results(pb, luns, kinds)
			if err != nil {
				return err
			}
			t := report.New("Map traffic and latency: FTL vs DFTL vs MRSM",
				"Trace", "Scheme", "map writes", "map reads", "write lat (ms)", "read lat (ms)", "erases")
			for _, lun := range luns {
				for _, kind := range kinds {
					res := results[runKey{kind, lun, pb}]
					t.Add(lun, string(kind),
						report.N(res.Counters.MapWrites),
						report.N(res.Counters.MapReads),
						report.F(res.AvgWriteLatency(), 3),
						report.F(res.AvgReadLatency(), 3),
						report.N(res.Counters.Erases))
				}
			}
			t.Note = "DFTL spills page-granularity translation pages; MRSM's additional cost over DFTL is the sub-page machinery."
			t.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

// extTailExperiment reports write-latency percentiles per scheme.
func extTailExperiment() Experiment {
	return Experiment{
		ID:    "ext-tail",
		Title: "Write-latency tail (extension; not a paper figure)",
		Paper: "not reported in the paper; GC bursts dominate the tail, so the flash-write savings of Across-FTL should show up amplified at p99",
		Run: func(s *Session, w io.Writer) error {
			results, err := s.comparison()
			if err != nil {
				return err
			}
			pb := s.Cfg.SSD.PageBytes
			t := report.New("Write latency percentiles (ms)",
				"Trace", "Scheme", "p50", "p95", "p99", "p99.9", "max")
			for _, lun := range s.lunNames() {
				for _, kind := range sim.Kinds() {
					res := results[runKey{kind, lun, pb}]
					t.Add(lun, string(kind),
						report.F(res.WriteLat.P50(), 3),
						report.F(res.WriteLat.P95(), 3),
						report.F(res.WriteLat.P99(), 3),
						report.F(res.WriteLat.P999(), 3),
						report.F(res.WriteLat.Max(), 3))
				}
			}
			t.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

// extWearExperiment reports the per-block erase distribution per scheme.
func extWearExperiment() Experiment {
	return Experiment{
		ID:    "ext-wear",
		Title: "Per-block wear distribution (extension; not a paper figure)",
		Paper: "not reported in the paper; Fig 11 gives totals — the distribution shows whether the totals translate into lifetime",
		Run: func(s *Session, w io.Writer) error {
			results, err := s.comparison()
			if err != nil {
				return err
			}
			pb := s.Cfg.SSD.PageBytes
			t := report.New("Per-block erase counts (includes warm-up wear)",
				"Trace", "Scheme", "mean", "stddev", "min", "max")
			for _, lun := range s.lunNames() {
				for _, kind := range sim.Kinds() {
					res := results[runKey{kind, lun, pb}]
					t.Add(lun, string(kind),
						report.F(res.Wear.Mean, 2),
						report.F(res.Wear.StdDev, 2),
						report.N(res.Wear.Min),
						report.N(res.Wear.Max))
				}
			}
			t.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

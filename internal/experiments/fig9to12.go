package experiments

import (
	"io"

	"across/internal/report"
	"across/internal/sim"
)

// comparison fetches the three-scheme results for every lun at the session's
// page size.
func (s *Session) comparison() (map[runKey]*sim.Result, error) {
	return s.Results(s.Cfg.SSD.PageBytes, s.lunNames(), sim.Kinds())
}

// fig9Experiment reports normalized response times.
func fig9Experiment() Experiment {
	return Experiment{
		ID:    "fig9",
		Title: "I/O response time (normalized to FTL; FTL absolute in parentheses)",
		Paper: "Across-FTL cuts write time 8.9% vs FTL and 3.7% vs MRSM; reads improve >5.0%; overall I/O time falls 4.6-11.6%",
		Run: func(s *Session, w io.Writer) error {
			results, err := s.comparison()
			if err != nil {
				return err
			}
			pb := s.Cfg.SSD.PageBytes
			ta := report.New("Fig 9(a) Read response time", "Trace", "FTL (ms)", "MRSM", "Across-FTL", "Across vs FTL")
			tb := report.New("Fig 9(b) Write response time", "Trace", "FTL (ms)", "MRSM", "Across-FTL", "Across vs FTL")
			tc := report.New("Fig 9(c) Overall I/O time", "Trace", "FTL (ks)", "MRSM", "Across-FTL", "Across vs FTL")
			for _, lun := range s.lunNames() {
				f := results[runKey{sim.KindFTL, lun, pb}]
				m := results[runKey{sim.KindMRSM, lun, pb}]
				a := results[runKey{sim.KindAcross, lun, pb}]
				ta.Add(lun, "("+report.F(f.AvgReadLatency(), 3)+")",
					report.Norm(m.AvgReadLatency(), f.AvgReadLatency()),
					report.Norm(a.AvgReadLatency(), f.AvgReadLatency()),
					report.Delta(a.AvgReadLatency(), f.AvgReadLatency()))
				tb.Add(lun, "("+report.F(f.AvgWriteLatency(), 3)+")",
					report.Norm(m.AvgWriteLatency(), f.AvgWriteLatency()),
					report.Norm(a.AvgWriteLatency(), f.AvgWriteLatency()),
					report.Delta(a.AvgWriteLatency(), f.AvgWriteLatency()))
				tc.Add(lun, "("+report.F(f.TotalIOTime()/1e6, 3)+")",
					report.Norm(m.TotalIOTime(), f.TotalIOTime()),
					report.Norm(a.TotalIOTime(), f.TotalIOTime()),
					report.Delta(a.TotalIOTime(), f.TotalIOTime()))
			}
			ta.RenderTo(w, s.Cfg.Format)
			tb.RenderTo(w, s.Cfg.Format)
			tc.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

// fig10Experiment reports normalized flash operation counts with the
// Map/Data split.
func fig10Experiment() Experiment {
	return Experiment{
		ID:    "fig10",
		Title: "Flash write (a) and read (b) counts, normalized to FTL, split Map vs Data",
		Paper: "Across-FTL: -15.9% writes vs FTL, -30.9% vs MRSM; map-write share 2.6% (Across) vs 36.9% (MRSM); -9.7%/-16.1% reads; map-read share 0.74% vs 34.4%",
		Run: func(s *Session, w io.Writer) error {
			results, err := s.comparison()
			if err != nil {
				return err
			}
			pb := s.Cfg.SSD.PageBytes
			ta := report.New("Fig 10(a) Flash write count",
				"Trace", "FTL (x10K)", "MRSM", "MRSM map share", "Across-FTL", "Across map share")
			tb := report.New("Fig 10(b) Flash read count",
				"Trace", "FTL (x10K)", "MRSM", "MRSM map share", "Across-FTL", "Across map share")
			for _, lun := range s.lunNames() {
				f := results[runKey{sim.KindFTL, lun, pb}].Counters
				m := results[runKey{sim.KindMRSM, lun, pb}].Counters
				a := results[runKey{sim.KindAcross, lun, pb}].Counters
				ta.Add(lun,
					"("+report.F(float64(f.FlashWrites())/1e4, 2)+")",
					report.Norm(float64(m.FlashWrites()), float64(f.FlashWrites())),
					report.Pct(share(m.MapWrites, m.FlashWrites())),
					report.Norm(float64(a.FlashWrites()), float64(f.FlashWrites())),
					report.Pct(share(a.MapWrites, a.FlashWrites())))
				tb.Add(lun,
					"("+report.F(float64(f.FlashReads())/1e4, 2)+")",
					report.Norm(float64(m.FlashReads()), float64(f.FlashReads())),
					report.Pct(share(m.MapReads, m.FlashReads())),
					report.Norm(float64(a.FlashReads()), float64(f.FlashReads())),
					report.Pct(share(a.MapReads, a.FlashReads())))
			}
			ta.RenderTo(w, s.Cfg.Format)
			tb.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

func share(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// fig11Experiment reports normalized erase counts.
func fig11Experiment() Experiment {
	return Experiment{
		ID:    "fig11",
		Title: "Erase count (normalized to FTL; FTL absolute in parentheses)",
		Paper: "Across-FTL reduces erases by 13.3% vs FTL and 24.6% vs MRSM; MRSM is the worst of the three",
		Run: func(s *Session, w io.Writer) error {
			results, err := s.comparison()
			if err != nil {
				return err
			}
			pb := s.Cfg.SSD.PageBytes
			t := report.New("Fig 11 (reproduced)", "Trace", "FTL (abs)", "MRSM", "Across-FTL", "Across vs FTL", "Across vs MRSM")
			var sumF, sumM float64
			for _, lun := range s.lunNames() {
				f := results[runKey{sim.KindFTL, lun, pb}].Counters.Erases
				m := results[runKey{sim.KindMRSM, lun, pb}].Counters.Erases
				a := results[runKey{sim.KindAcross, lun, pb}].Counters.Erases
				t.Add(lun, "("+report.N(f)+")",
					report.Norm(float64(m), float64(f)),
					report.Norm(float64(a), float64(f)),
					report.Delta(float64(a), float64(f)),
					report.Delta(float64(a), float64(m)))
				sumF += float64(a)/float64(f) - 1
				sumM += float64(a)/float64(m) - 1
			}
			n := float64(len(s.lunNames()))
			t.Note = "mean Across vs FTL " + report.Pct(sumF/n) + " (paper: -13.3%), vs MRSM " +
				report.Pct(sumM/n) + " (paper: -24.6%)"
			t.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

// fig12Experiment reports the mapping-table space and DRAM access overheads.
func fig12Experiment() Experiment {
	return Experiment{
		ID:    "fig12",
		Title: "Space (a) and time (b) overhead of the mapping structures",
		Paper: "table sizes ~29-36MB for FTL; Across 1.4x, MRSM 2.4x; DRAM accesses: MRSM 32.6x FTL, Across-FTL within 1.1% of FTL",
		Run: func(s *Session, w io.Writer) error {
			results, err := s.comparison()
			if err != nil {
				return err
			}
			pb := s.Cfg.SSD.PageBytes
			ta := report.New("Fig 12(a) Mapping table size (MB)",
				"Trace", "FTL", "MRSM", "Across-FTL", "Across/FTL", "MRSM/FTL")
			tb := report.New("Fig 12(b) DRAM access count (normalized to FTL)",
				"Trace", "FTL (abs)", "MRSM", "Across-FTL")
			for _, lun := range s.lunNames() {
				f := results[runKey{sim.KindFTL, lun, pb}]
				m := results[runKey{sim.KindMRSM, lun, pb}]
				a := results[runKey{sim.KindAcross, lun, pb}]
				mb := func(b int64) string { return report.F(float64(b)/(1<<20), 2) }
				ta.Add(lun, mb(f.TableBytes), mb(m.TableBytes), mb(a.TableBytes),
					report.F(float64(a.TableBytes)/float64(f.TableBytes), 2),
					report.F(float64(m.TableBytes)/float64(f.TableBytes), 2))
				tb.Add(lun, "("+report.N(f.Counters.DRAMAccesses)+")",
					report.Norm(float64(m.Counters.DRAMAccesses), float64(f.Counters.DRAMAccesses)),
					report.Norm(float64(a.Counters.DRAMAccesses), float64(f.Counters.DRAMAccesses)))
			}
			ta.RenderTo(w, s.Cfg.Format)
			tb.RenderTo(w, s.Cfg.Format)
			return nil
		},
	}
}

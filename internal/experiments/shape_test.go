package experiments

import (
	"testing"

	"across/internal/sim"
	"across/internal/trace"
	"across/internal/workload"
)

// TestReproductionShapes is the regression harness for the reproduction
// itself: it runs the three-scheme comparison at the quick scale and
// asserts every *relative* claim of the paper's evaluation, per trace.
// If a refactor silently changes who wins or by roughly what factor, this
// test fails before the full harness is ever run.
func TestReproductionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full comparison")
	}
	s := quickSession(t)
	pb := s.Cfg.SSD.PageBytes
	results, err := s.Results(pb, s.lunNames(), sim.Kinds())
	if err != nil {
		t.Fatal(err)
	}
	for _, lun := range s.lunNames() {
		f := results[runKey{sim.KindFTL, lun, pb}]
		m := results[runKey{sim.KindMRSM, lun, pb}]
		a := results[runKey{sim.KindAcross, lun, pb}]

		// Fig 9: Across-FTL improves write, read and overall time vs FTL.
		if a.AvgWriteLatency() >= f.AvgWriteLatency() {
			t.Errorf("%s: Across write latency %.3f >= FTL %.3f", lun, a.AvgWriteLatency(), f.AvgWriteLatency())
		}
		if a.TotalIOTime() >= f.TotalIOTime() {
			t.Errorf("%s: Across I/O time >= FTL", lun)
		}
		// Fig 9(c) magnitude band: the paper reports 4.6-11.6%; the tiny
		// quick-scale geometry amplifies the effect, so allow 2-40%.
		gain := 1 - a.TotalIOTime()/f.TotalIOTime()
		if gain < 0.02 || gain > 0.40 {
			t.Errorf("%s: overall I/O gain %.1f%% outside the plausible band", lun, 100*gain)
		}

		// Fig 10: flash writes FTL > Across; MRSM > both; map shares ordered.
		if a.Counters.FlashWrites() >= f.Counters.FlashWrites() {
			t.Errorf("%s: Across flash writes >= FTL", lun)
		}
		if m.Counters.FlashWrites() <= f.Counters.FlashWrites() {
			t.Errorf("%s: MRSM flash writes <= FTL (paper: MRSM highest)", lun)
		}
		if m.Counters.MapWrites <= a.Counters.MapWrites {
			t.Errorf("%s: MRSM map writes <= Across", lun)
		}
		if f.Counters.MapWrites != 0 || f.Counters.MapReads != 0 {
			t.Errorf("%s: baseline FTL performed map I/O", lun)
		}

		// Fig 11: erases Across < FTL < MRSM.
		if !(a.Counters.Erases < f.Counters.Erases && f.Counters.Erases < m.Counters.Erases) {
			t.Errorf("%s: erase ordering broken: A=%d F=%d M=%d",
				lun, a.Counters.Erases, f.Counters.Erases, m.Counters.Erases)
		}

		// Fig 12: table sizes FTL < Across < MRSM; DRAM MRSM >> others.
		if !(f.TableBytes < a.TableBytes && a.TableBytes < m.TableBytes) {
			t.Errorf("%s: table size ordering broken", lun)
		}
		if m.Counters.DRAMAccesses < 10*f.Counters.DRAMAccesses {
			t.Errorf("%s: MRSM DRAM accesses only %.1fx FTL (paper ~32x)",
				lun, float64(m.Counters.DRAMAccesses)/float64(f.Counters.DRAMAccesses))
		}
		ratio := float64(a.Counters.DRAMAccesses) / float64(f.Counters.DRAMAccesses)
		if ratio > 1.1 || ratio < 0.8 {
			t.Errorf("%s: Across DRAM accesses %.2fx FTL (paper ~1.0x)", lun, ratio)
		}

		// Fig 8: across census sanity.
		if a.Across == nil || a.Across.AreasTouched() == 0 {
			t.Errorf("%s: across census empty", lun)
			continue
		}
		if rr := a.Across.RollbackRatio(); rr > 0.25 {
			t.Errorf("%s: rollback ratio %.2f too high (paper 3.9%%)", lun, rr)
		}
		d, p, u := a.Across.ComponentShares()
		if d+p < 0.7 {
			t.Errorf("%s: profitable across writes only %.2f (paper ~91%%)", lun, d+p)
		}
		if u > 0.3 {
			t.Errorf("%s: unprofitable share %.2f too high", lun, u)
		}
	}
}

// TestFig13ShapeMonotone asserts the page-size monotonicity on the actual
// session traces (the harness only prints it).
func TestFig13ShapeMonotone(t *testing.T) {
	s := quickSession(t)
	for _, p := range s.Luns() {
		reqs, err := s.Trace(p)
		if err != nil {
			t.Fatal(err)
		}
		r4 := trace.Measure(reqs, 8).AcrossRatio()
		r8 := trace.Measure(reqs, workload.RefSPP).AcrossRatio()
		r16 := trace.Measure(reqs, 32).AcrossRatio()
		if !(r4 >= r8 && r8 >= r16) {
			t.Errorf("%s: across ratio not monotone: 4K=%.3f 8K=%.3f 16K=%.3f", p.Name, r4, r8, r16)
		}
	}
}

// TestFig14ShapeAcrossWinsAtEveryPageSize asserts the §4.3 takeaway on the
// smallest page-size sweep.
func TestFig14ShapeAcrossWinsAtEveryPageSize(t *testing.T) {
	if testing.Short() {
		t.Skip("runs nine replays")
	}
	s := quickSession(t)
	luns := s.lunNames()[:2] // two traces keep it quick
	for _, pb := range pageSizes {
		results, err := s.Results(pb, luns, []sim.SchemeKind{sim.KindFTL, sim.KindAcross})
		if err != nil {
			t.Fatal(err)
		}
		for _, lun := range luns {
			f := results[runKey{sim.KindFTL, lun, pb}]
			a := results[runKey{sim.KindAcross, lun, pb}]
			if a.TotalIOTime() >= f.TotalIOTime() {
				t.Errorf("%s @%dKB: Across I/O time >= FTL", lun, pb/1024)
			}
			if a.Counters.Erases > f.Counters.Erases {
				t.Errorf("%s @%dKB: Across erases > FTL", lun, pb/1024)
			}
		}
	}
}

package experiments

import (
	"io"

	"across/internal/report"
	"across/internal/sim"
)

// pageSizes are the case-study variants of §4.3.
var pageSizes = []int{4 * 1024, 8 * 1024, 16 * 1024}

// fig14Experiment re-runs the three-scheme comparison at 4, 8 and 16 KB
// pages and reports overall I/O time (a) and erase counts (b).
func fig14Experiment() Experiment {
	return Experiment{
		ID:    "fig14",
		Title: "I/O time (a) and erase count (b) with varied page sizes",
		Paper: "Across-FTL outperforms FTL and MRSM at every page size; the improvement does not shrink as pages grow (it tracks the across-page ratio of Fig 13)",
		Run: func(s *Session, w io.Writer) error {
			for _, pb := range pageSizes {
				results, err := s.Results(pb, s.lunNames(), sim.Kinds())
				if err != nil {
					return err
				}
				kb := pb / 1024
				ta := report.New("Fig 14(a) Overall I/O time, "+report.N(int64(kb))+"KB pages (normalized to FTL)",
					"Trace", "FTL (ks)", "MRSM", "Across-FTL", "Across vs FTL")
				tb := report.New("Fig 14(b) Erase count, "+report.N(int64(kb))+"KB pages (normalized to FTL)",
					"Trace", "FTL (abs)", "MRSM", "Across-FTL", "Across vs FTL")
				for _, lun := range s.lunNames() {
					f := results[runKey{sim.KindFTL, lun, pb}]
					m := results[runKey{sim.KindMRSM, lun, pb}]
					a := results[runKey{sim.KindAcross, lun, pb}]
					ta.Add(lun, "("+report.F(f.TotalIOTime()/1e6, 3)+")",
						report.Norm(m.TotalIOTime(), f.TotalIOTime()),
						report.Norm(a.TotalIOTime(), f.TotalIOTime()),
						report.Delta(a.TotalIOTime(), f.TotalIOTime()))
					tb.Add(lun, "("+report.N(f.Counters.Erases)+")",
						report.Norm(float64(m.Counters.Erases), float64(f.Counters.Erases)),
						report.Norm(float64(a.Counters.Erases), float64(f.Counters.Erases)),
						report.Delta(float64(a.Counters.Erases), float64(f.Counters.Erases)))
				}
				ta.RenderTo(w, s.Cfg.Format)
				tb.RenderTo(w, s.Cfg.Format)
			}
			return nil
		},
	}
}

// Package stats provides the small statistical utilities the simulator's
// metric collection needs: a log-bucketed latency histogram with quantile
// estimation (for tail-latency analysis of GC effects, cf. the partial-GC
// line of work the paper cites), and running moment accumulators used for
// wear-levelling reports.
package stats

import (
	"fmt"
	"math"
)

// Histogram parameters: buckets span [bucketBase, bucketBase*2^(octaves)]
// with subdiv buckets per octave. With base 1 µs and 40 octaves the range
// comfortably covers every latency the simulator can produce.
const (
	bucketBase = 0.001 // ms (1 µs)
	subdiv     = 8     // buckets per octave
	octaves    = 40
	nBuckets   = octaves*subdiv + 2 // + underflow and overflow
)

// Histogram is a fixed-size log-bucketed histogram of non-negative values
// (milliseconds by convention). The zero value is ready to use.
type Histogram struct {
	buckets [nBuckets]int64
	count   int64
	sum     float64
	min     float64
	max     float64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v < bucketBase {
		return 0 // underflow
	}
	idx := 1 + int(math.Log2(v/bucketBase)*subdiv)
	if idx >= nBuckets {
		return nBuckets - 1 // overflow
	}
	return idx
}

// bucketLower returns the inclusive lower bound of a bucket.
func bucketLower(idx int) float64 {
	if idx <= 0 {
		return 0
	}
	return bucketBase * math.Pow(2, float64(idx-1)/subdiv)
}

// Add records one observation. Negative values are clamped to zero (they
// can only arise from floating-point jitter in latency subtraction).
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the exact mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Sum returns the exact sum of the observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile (0 <= q <= 1) to bucket resolution
// (~9% relative error with 8 buckets per octave). Exact extremes are used
// for q=0 and q=1.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			lo := bucketLower(i)
			hi := bucketLower(i + 1)
			if hi > h.max {
				hi = h.max
			}
			if hi < lo {
				hi = lo
			}
			// Midpoint of the bucket: cheap, bounded-error estimate.
			return (lo + hi) / 2
		}
	}
	return h.max
}

// P50, P95, P99, P999 are the quantiles reported by the latency tables.
func (h *Histogram) P50() float64  { return h.Quantile(0.50) }
func (h *Histogram) P95() float64  { return h.Quantile(0.95) }
func (h *Histogram) P99() float64  { return h.Quantile(0.99) }
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarises the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f",
		h.count, h.Mean(), h.P50(), h.P99(), h.max)
}

// Moments accumulates count/mean/variance online (Welford) plus extremes;
// used for per-block wear statistics.
type Moments struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (m *Moments) Add(v float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = v, v
	} else {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	d := v - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (v - m.mean)
}

// Count returns the number of observations.
func (m *Moments) Count() int64 { return m.n }

// Mean returns the running mean.
func (m *Moments) Mean() float64 { return m.mean }

// Min returns the smallest observation (0 when empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 when empty).
func (m *Moments) Max() float64 { return m.max }

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 {
	if m.n < 2 {
		return 0
	}
	return math.Sqrt(m.m2 / float64(m.n))
}

package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should be all zeroes")
	}
}

func TestHistogramExactMoments(t *testing.T) {
	var h Histogram
	vals := []float64{1, 2, 3, 4, 10}
	for _, v := range vals {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 4 {
		t.Fatalf("Mean = %v, want 4", h.Mean())
	}
	if h.Sum() != 20 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("extremes = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	var h Histogram
	h.Add(-0.5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative value not clamped to 0")
	}
}

func TestQuantileAccuracyOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var h Histogram
	var vals []float64
	for i := 0; i < 20000; i++ {
		// Latency-like: log-normal-ish spread over four orders of magnitude.
		v := math.Exp(rng.NormFloat64()*1.5) * 0.5
		h.Add(v)
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))]
		got := h.Quantile(q)
		if got < exact*0.85 || got > exact*1.15 {
			t.Errorf("Quantile(%v) = %v, exact %v (>15%% off)", q, got, exact)
		}
	}
	if h.Quantile(0) != vals[0] {
		t.Error("Quantile(0) should be exact min")
	}
	if h.Quantile(1) != vals[len(vals)-1] {
		t.Error("Quantile(1) should be exact max")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < 500; i++ {
			h.Add(rng.Float64() * 100)
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramOverflowUnderflow(t *testing.T) {
	var h Histogram
	h.Add(1e-9) // under bucketBase
	h.Add(1e12) // over the top octave
	if h.Count() != 2 {
		t.Fatal("observations lost")
	}
	if h.Quantile(0.9) <= 0 {
		t.Fatal("overflow bucket not represented")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Add(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Add(float64(i))
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged extremes = %v/%v", a.Min(), a.Max())
	}
	if got := a.Quantile(0.5); got < 85 || got > 115 {
		t.Fatalf("merged median = %v, want ~100", got)
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 200 {
		t.Fatal("merging empty changed count")
	}
}

func TestHistogramResetAndString(t *testing.T) {
	var h Histogram
	h.Add(5)
	if !strings.Contains(h.String(), "n=1") {
		t.Errorf("String = %q", h.String())
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestPercentileShortcuts(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Add(float64(i))
	}
	if !(h.P50() < h.P95() && h.P95() < h.P99() && h.P99() <= h.P999()) {
		t.Fatalf("percentile ordering broken: %v %v %v %v", h.P50(), h.P95(), h.P99(), h.P999())
	}
}

func TestMomentsWelford(t *testing.T) {
	var m Moments
	if m.StdDev() != 0 || m.Mean() != 0 || m.Min() != 0 || m.Max() != 0 {
		t.Fatal("empty moments not zero")
	}
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		m.Add(v)
	}
	if m.Count() != 8 {
		t.Fatalf("Count = %d", m.Count())
	}
	if m.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", m.Mean())
	}
	if d := m.StdDev() - 2; d > 1e-9 || d < -1e-9 {
		t.Fatalf("StdDev = %v, want 2", m.StdDev())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("extremes = %v/%v", m.Min(), m.Max())
	}
}

func TestMomentsMatchesNaiveOnRandomData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var m Moments
		var vals []float64
		for i := 0; i < 300; i++ {
			v := rng.NormFloat64()*10 + 50
			m.Add(v)
			vals = append(vals, v)
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		sd := math.Sqrt(ss / float64(len(vals)))
		return math.Abs(m.Mean()-mean) < 1e-9 && math.Abs(m.StdDev()-sd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

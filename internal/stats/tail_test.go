package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// The timeline and ext-tail reports read P99/P999 straight off replay
// histograms whose shapes are extreme: empty read histograms on write-only
// traces, single-request windows, and heavily GC-skewed write tails. These
// tests pin the tail-quantile behaviour on exactly those shapes.

func TestTailQuantilesEmpty(t *testing.T) {
	var h Histogram
	if h.P99() != 0 || h.P999() != 0 {
		t.Errorf("empty histogram tails P99=%v P999=%v, want 0/0", h.P99(), h.P999())
	}
}

func TestTailQuantilesSingleObservation(t *testing.T) {
	var h Histogram
	h.Add(3.25)
	// With one observation every quantile is that observation; the bucket
	// midpoint estimate must still be capped by the exact max.
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		got := h.Quantile(q)
		if got > h.Max() {
			t.Errorf("Quantile(%v) = %v exceeds the only observation %v", q, got, h.Max())
		}
		if got < 3.25*0.91 {
			t.Errorf("Quantile(%v) = %v, more than one bucket below the only observation", q, got)
		}
	}
	if h.P999() < h.P99() {
		t.Errorf("P999 %v < P99 %v on a single observation", h.P999(), h.P99())
	}
}

// TestTailQuantilesSkewed models the GC-burst latency shape: a tight body
// (cache-speed services) with a sparse far tail two orders of magnitude out.
// The tail quantiles must land in the tail, not the body, and stay within
// bucket resolution (~9%) of the exact order statistics.
func TestTailQuantilesSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h Histogram
	var vals []float64
	for i := 0; i < 100000; i++ {
		v := 0.05 + rng.Float64()*0.05 // body: 0.05–0.1 ms
		if i%200 == 199 {
			v = 8 + rng.Float64()*4 // 0.5% tail: 8–12 ms GC stalls
		}
		h.Add(v)
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	for _, tc := range []struct {
		name  string
		got   float64
		exact float64
	}{
		{"P99", h.P99(), vals[int(0.99*float64(len(vals)))]},
		{"P999", h.P999(), vals[int(0.999*float64(len(vals)))]},
	} {
		if tc.got < tc.exact*0.90 || tc.got > tc.exact*1.10 {
			t.Errorf("%s = %v, exact %v (outside bucket resolution)", tc.name, tc.got, tc.exact)
		}
	}
	// The tail population is 0.5%, so P99 must sit in the body and P999 in
	// the stall band — a histogram that smears the two regimes together
	// would misreport GC impact.
	if h.P99() > 1 {
		t.Errorf("P99 = %v landed in the GC tail; 99%% of observations are below 0.1 ms", h.P99())
	}
	if h.P999() < 8*0.90 {
		t.Errorf("P999 = %v landed in the body; the top 0.5%% are 8 ms stalls", h.P999())
	}
	if h.Max() < 8 {
		t.Errorf("Max = %v lost the stall band", h.Max())
	}
}

// TestTailQuantilesTwoPoint pins the boundary arithmetic: with 998 equal
// fast observations and 2 slow ones, rank 999 of 1000 falls on a slow
// observation, so P999 must report the outlier band while P99 stays in the
// body.
func TestTailQuantilesTwoPoint(t *testing.T) {
	var h Histogram
	for i := 0; i < 998; i++ {
		h.Add(0.1)
	}
	h.Add(50)
	h.Add(50)
	if p := h.P999(); p < 50*0.91 || p > 50 {
		t.Errorf("P999 = %v, want the 50 ms outlier band (within bucket resolution)", p)
	}
	if p := h.P99(); p > 0.11 {
		t.Errorf("P99 = %v, want the 0.1 ms body", p)
	}
}

package store

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type entry struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

func TestHashJSONDeterministic(t *testing.T) {
	type keyMaterial struct {
		Scheme string
		Scale  float64
		Seed   int64
	}
	a, err := HashJSON(keyMaterial{"Across-FTL", 0.05, 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := HashJSON(keyMaterial{"Across-FTL", 0.05, 7})
	if a != b {
		t.Fatalf("same material hashed differently: %s vs %s", a, b)
	}
	c, _ := HashJSON(keyMaterial{"Across-FTL", 0.05, 8})
	if a == c {
		t.Fatal("different material collided")
	}
	if len(a) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", a)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, _ := HashJSON("roundtrip")
	if s.Has(key) {
		t.Fatal("Has on empty store")
	}
	want := entry{Name: "lun1", Score: 3.14}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	var got entry
	ok, err := s.Get(key, &got)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("Get = %+v, want %+v", got, want)
	}
	if !s.Has(key) {
		t.Fatal("Has = false after Put")
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	key, _ := HashJSON("missing")
	var v entry
	ok, err := s.Get(key, &v)
	if ok || err != nil {
		t.Fatalf("missing entry: ok=%v err=%v", ok, err)
	}
}

func TestMalformedKeyRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	for _, key := range []string{"", "short", "../../etc/passwd", "ABCDEF0123456789", "zz40aa0011223344"} {
		if err := s.Put(key, entry{}); err == nil {
			t.Errorf("Put accepted malformed key %q", key)
		}
		if s.Has(key) {
			t.Errorf("Has true for malformed key %q", key)
		}
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	key, _ := HashJSON("persist")
	{
		s, _ := Open(dir)
		if err := s.Put(key, entry{Name: "persisted"}); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got entry
	ok, err := s2.Get(key, &got)
	if !ok || err != nil || got.Name != "persisted" {
		t.Fatalf("after reopen: ok=%v err=%v got=%+v", ok, err, got)
	}
}

func TestKeysAndDelete(t *testing.T) {
	s, _ := Open(t.TempDir())
	var want []string
	for _, name := range []string{"a", "b", "c"} {
		k, _ := HashJSON(name)
		want = append(want, k)
		if err := s.Put(k, entry{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || s.Len() != 3 {
		t.Fatalf("Keys = %v (Len %d), want 3 entries", keys, s.Len())
	}
	for _, k := range want {
		found := false
		for _, got := range keys {
			if got == k {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %s missing from %v", k, keys)
		}
	}
	if err := s.Delete(want[0]); err != nil {
		t.Fatal(err)
	}
	if s.Has(want[0]) || s.Len() != 2 {
		t.Fatal("Delete did not remove the entry")
	}
	if err := s.Delete(want[0]); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

// TestAtomicPutLeavesNoTempDebris checks the temp file is renamed away and
// an overwrite fully replaces the old entry.
func TestAtomicPutLeavesNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key, _ := HashJSON("overwrite")
	if err := s.Put(key, entry{Name: "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, entry{Name: "v2", Score: 9}); err != nil {
		t.Fatal(err)
	}
	var got entry
	if ok, err := s.Get(key, &got); !ok || err != nil || got.Name != "v2" {
		t.Fatalf("overwrite: ok=%v err=%v got=%+v", ok, err, got)
	}
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp-") {
			t.Errorf("temp debris left behind: %s", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPutGet hammers one store from many goroutines (run with
// -race).
func TestConcurrentPutGet(t *testing.T) {
	s, _ := Open(t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key, _ := HashJSON([2]int{g % 4, i % 5}) // deliberate key sharing
				if err := s.Put(key, entry{Name: "n", Score: float64(i)}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				var v entry
				if ok, err := s.Get(key, &v); !ok || err != nil {
					t.Errorf("Get: ok=%v err=%v", ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

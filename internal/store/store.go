// Package store is a content-addressed on-disk result store for simulation
// jobs. Entries are keyed by a canonical hash of everything that determines
// a job's outcome — scheme, device configuration, workload profile, seed,
// scale, queue depth, aging — so two identical submissions share one entry,
// and completed results survive daemon restarts: a resubmitted job whose
// key is present is served from disk without touching the simulator.
//
// Layout: <dir>/<key[:2]>/<key>.json, one JSON document per entry, written
// atomically (temp file + rename) so a crash mid-write never leaves a
// half-entry that a later Get would misparse.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// HashJSON computes the canonical content address of v: the SHA-256 of its
// JSON encoding, hex-encoded. Go marshals struct fields in declaration
// order and map keys sorted, so the encoding — and therefore the key — is
// deterministic for a fixed Go type.
func HashJSON(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: hashing key material: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Store is a directory of content-addressed JSON entries. All methods are
// safe for concurrent use.
type Store struct {
	dir string
	mu  sync.Mutex
}

// Open creates (if needed) and opens the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its entry file, rejecting anything that is not a hex
// digest (keys are never user-controlled paths).
func (s *Store) path(key string) (string, error) {
	if len(key) < 8 || strings.ToLower(key) != key {
		return "", fmt.Errorf("store: malformed key %q", key)
	}
	if _, err := hex.DecodeString(key); err != nil {
		return "", fmt.Errorf("store: malformed key %q: %w", key, err)
	}
	return filepath.Join(s.dir, key[:2], key+".json"), nil
}

// Put writes v as the entry for key, atomically replacing any previous
// entry.
func (s *Store) Put(key string, v any) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("store: encoding entry %s: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key[:8]+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("store: writing entry %s: %w", key, werr)
		}
		return fmt.Errorf("store: closing entry %s: %w", key, cerr)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: committing entry %s: %w", key, err)
	}
	return nil
}

// Get unmarshals the entry for key into v. The bool reports whether the
// entry existed; an existing-but-corrupt entry is an error.
func (s *Store) Get(key string, v any) (bool, error) {
	p, err := s.path(key)
	if err != nil {
		return false, err
	}
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: reading entry %s: %w", key, err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return false, fmt.Errorf("store: decoding entry %s: %w", key, err)
	}
	return true, nil
}

// Has reports whether an entry for key exists.
func (s *Store) Has(key string) bool {
	p, err := s.path(key)
	if err != nil {
		return false
	}
	_, err = os.Stat(p)
	return err == nil
}

// Delete removes the entry for key (no error if absent).
func (s *Store) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting entry %s: %w", key, err)
	}
	return nil
}

// Keys lists every stored key, sorted.
func (s *Store) Keys() ([]string, error) {
	var keys []string
	err := filepath.WalkDir(s.dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".json") || strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		keys = append(keys, strings.TrimSuffix(d.Name(), ".json"))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: listing keys: %w", err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Len counts stored entries (0 on an unreadable store).
func (s *Store) Len() int {
	keys, err := s.Keys()
	if err != nil {
		return 0
	}
	return len(keys)
}

package clock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleIdleChipStartsImmediately(t *testing.T) {
	s := NewScheduler(2)
	if got := s.Schedule(0, 10, 2); got != 12 {
		t.Fatalf("completion = %v, want 12", got)
	}
	if got := s.BusyUntil(0); got != 12 {
		t.Fatalf("BusyUntil = %v, want 12", got)
	}
}

func TestScheduleQueuesBehindBusyChip(t *testing.T) {
	s := NewScheduler(1)
	s.Schedule(0, 0, 5)
	// Submitted at t=1 while chip is busy until 5: starts at 5, ends at 8.
	if got := s.Schedule(0, 1, 3); got != 8 {
		t.Fatalf("completion = %v, want 8", got)
	}
	// Submitted after the chip went idle: starts at its own arrival.
	if got := s.Schedule(0, 20, 1); got != 21 {
		t.Fatalf("completion = %v, want 21", got)
	}
}

func TestChipsAreIndependent(t *testing.T) {
	s := NewScheduler(2)
	s.Schedule(0, 0, 100)
	if got := s.Schedule(1, 0, 1); got != 1 {
		t.Fatalf("chip 1 completion = %v, want 1 (must not queue behind chip 0)", got)
	}
}

func TestHorizonAndBusyTime(t *testing.T) {
	s := NewScheduler(3)
	s.Schedule(0, 0, 4)
	s.Schedule(2, 1, 7)
	if got := s.Horizon(); got != 8 {
		t.Fatalf("Horizon = %v, want 8", got)
	}
	if got := s.BusyTime(2); got != 7 {
		t.Fatalf("BusyTime(2) = %v, want 7", got)
	}
	if got := s.Ops(); got != 2 {
		t.Fatalf("Ops = %d, want 2", got)
	}
	s.Reset()
	if s.Horizon() != 0 || s.Ops() != 0 || s.BusyTime(0) != 0 {
		t.Fatal("Reset did not clear state")
	}
	if s.Chips() != 3 {
		t.Fatal("Reset changed chip count")
	}
}

func TestSchedulePanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("zero chips", func() { NewScheduler(0) })
	s := NewScheduler(1)
	assertPanics("chip out of range", func() { s.Schedule(1, 0, 1) })
	assertPanics("negative chip", func() { s.Schedule(-1, 0, 1) })
	assertPanics("negative duration", func() { s.Schedule(0, 0, -1) })
}

func TestJoinTracksSlowestOp(t *testing.T) {
	j := NewJoin(10)
	j.Add(15)
	j.Add(12)
	j.Add(18)
	if got := j.Done(); got != 18 {
		t.Fatalf("Done = %v, want 18", got)
	}
	if got := j.Latency(); got != 8 {
		t.Fatalf("Latency = %v, want 8", got)
	}
	if got := j.Ops(); got != 3 {
		t.Fatalf("Ops = %d, want 3", got)
	}
}

func TestJoinWithNoOpsHasZeroLatency(t *testing.T) {
	j := NewJoin(5)
	if j.Latency() != 0 || j.Done() != 5 {
		t.Fatalf("empty join latency=%v done=%v, want 0 and 5", j.Latency(), j.Done())
	}
}

func TestJoinAddDelayIsSerial(t *testing.T) {
	j := NewJoin(0)
	j.Add(4)
	j.AddDelay(0.5)
	if got := j.Done(); got != 4.5 {
		t.Fatalf("Done = %v, want 4.5", got)
	}
}

// Property: a chip's timeline is monotone — completions never precede the
// submission, never precede the previous completion, and busy time equals
// the sum of durations.
func TestScheduleMonotoneProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler(1)
		var prevEnd, sum float64
		now := 0.0
		for i := 0; i < int(nOps%50)+1; i++ {
			now += rng.Float64() * 3
			dur := rng.Float64() * 2
			end := s.Schedule(0, now, dur)
			if end < now || end < prevEnd || end < now+dur-1e-12 {
				return false
			}
			prevEnd = end
			sum += dur
		}
		return s.BusyTime(0) > sum-1e-9 && s.BusyTime(0) < sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package clock

import (
	"fmt"

	"across/internal/snapshot"
)

// SnapshotState appends the scheduler's mutable timing state: per-chip
// busy-until and accumulated busy time, plus the operation count. The lane
// capture (parallel engine) is replay-scoped scratch and is never installed
// while a snapshot is taken, so it is not serialised.
func (s *Scheduler) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("clock")
	enc.F64s(s.busyUntil)
	enc.F64s(s.busyTime)
	enc.I64(s.ops)
	return nil
}

// RestoreState reads state written by SnapshotState into a scheduler
// constructed for the same chip count.
func (s *Scheduler) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("clock")
	busyUntil := dec.F64s()
	busyTime := dec.F64s()
	ops := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(busyUntil) != len(s.busyUntil) || len(busyTime) != len(s.busyTime) {
		return fmt.Errorf("clock: snapshot has %d chips, scheduler has %d", len(busyUntil), len(s.busyUntil))
	}
	copy(s.busyUntil, busyUntil)
	copy(s.busyTime, busyTime)
	s.ops = ops
	return nil
}

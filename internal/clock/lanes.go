package clock

import "fmt"

// Op is one scheduled chip operation as captured for lane processing: the
// chip it occupied, when it started and for how long. End is Start+Dur; it
// is stored so lanes never recompute it with a different rounding than the
// scheduler used.
type Op struct {
	Chip  int32
	Start float64
	Dur   float64
	End   float64
}

// Capture diverts per-chip accounting out of Schedule and into buffers a
// parallel replay engine can hand to per-chip lanes. While a capture is
// installed the scheduler still advances busy-until timestamps (they feed
// back into the simulation and must stay exact), but it defers the busy-time
// accumulation: each operation is appended to its chip's buffer instead, and
// a LaneState folds the buffers later — in the same per-chip order, with the
// same float additions, so the folded totals are bit-identical to what the
// serial accumulation would have produced.
type Capture struct {
	lanes [][]Op
	pool  [][][]Op // recycled epoch buffers, one set per epoch in flight
}

// NewCapture builds a capture for a scheduler of n chips.
func NewCapture(n int) *Capture {
	c := &Capture{lanes: make([][]Op, n)}
	return c
}

// Chips returns the number of per-chip lanes.
func (c *Capture) Chips() int { return len(c.lanes) }

// add appends one operation to its chip lane (called by Schedule).
func (c *Capture) add(chip int, start, dur, end float64) {
	c.lanes[chip] = append(c.lanes[chip], Op{Chip: int32(chip), Start: start, Dur: dur, End: end})
}

// Mark appends the current length of every chip lane to dst and returns it.
// A mark is a per-chip cursor into the epoch in flight: folding each lane up
// to its cursor reproduces exactly the busy-time state the serial scheduler
// would hold at the moment the mark was taken, because per-chip capture
// order is schedule order. The observability merge takes a mark at each
// sample boundary so mid-epoch metric samples see serial-identical busy
// times.
func (c *Capture) Mark(dst []int32) []int32 {
	for _, lane := range c.lanes {
		dst = append(dst, int32(len(lane)))
	}
	return dst
}

// Cut detaches the operations captured since the previous Cut — one epoch —
// and installs fresh (recycled when possible) buffers. The returned slice is
// indexed by chip and owned by the caller until returned via Recycle.
func (c *Capture) Cut() [][]Op {
	out := c.lanes
	var fresh [][]Op
	if n := len(c.pool); n > 0 {
		fresh, c.pool = c.pool[n-1], c.pool[:n-1]
	} else {
		fresh = make([][]Op, len(out))
	}
	for i := range fresh {
		if fresh[i] != nil {
			fresh[i] = fresh[i][:0]
		}
	}
	c.lanes = fresh
	return out
}

// Recycle returns an epoch's buffers for reuse by a later Cut. It must not
// be called concurrently with Cut or add; the replay engine recycles from
// the goroutine that owns the capture.
func (c *Capture) Recycle(epoch [][]Op) {
	if len(epoch) != len(c.lanes) {
		return // geometry changed under us; drop it
	}
	c.pool = append(c.pool, epoch)
}

// LaneState is the per-chip accumulator a lane worker owns. Folding every
// captured epoch of one chip, in epoch order, reproduces exactly the
// busy-time sum and final busy-until timestamp the serial scheduler would
// hold for that chip.
type LaneState struct {
	BusyTime float64
	Ops      int64
	LastEnd  float64
	hasOps   bool
}

// Fold accumulates one epoch's operations of one chip. It returns an error
// if the lane's monotonicity invariant is violated — operations on a chip
// must start no earlier than the previous operation ended, because a chip is
// an exclusive resource (this is the lane-level half of the engine's
// determinism self-audit).
func (s *LaneState) Fold(ops []Op) error {
	for i := range ops {
		op := &ops[i]
		if s.hasOps && op.Start < s.LastEnd {
			return fmt.Errorf("clock: lane for chip %d: op starts at %g before previous end %g",
				op.Chip, op.Start, s.LastEnd)
		}
		s.BusyTime += op.Dur
		s.Ops++
		s.LastEnd = op.End
		s.hasOps = true
	}
	return nil
}

// Busy reports whether the lane has folded any operation (LastEnd is only
// meaningful when it has).
func (s *LaneState) Busy() bool { return s.hasOps }

// SetCapture installs (or, with nil, removes) a capture on the scheduler.
// With a capture installed, Schedule appends each operation to the capture
// instead of accumulating per-chip busy time; busy-until bookkeeping is
// unaffected. The caller that installs a capture owns reconciling the
// deferred busy time (see sim's parallel engine).
func (s *Scheduler) SetCapture(c *Capture) {
	if c != nil && c.Chips() != len(s.busyUntil) {
		panic(fmt.Sprintf("clock: capture for %d chips installed on %d-chip scheduler",
			c.Chips(), len(s.busyUntil)))
	}
	s.capture = c
}

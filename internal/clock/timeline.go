// Package clock provides the discrete-event timing substrate of the
// simulator. Each flash chip is an exclusive resource with a busy-until
// timestamp; an operation submitted at time t starts at max(t, busyUntil)
// and occupies the chip for its duration. A host request fans out into
// page-level sub-operations (possibly on different chips) and completes when
// the last of them completes — exactly the sub-request semantics described
// in §2.1 of the paper.
//
// Times are float64 milliseconds since the start of the replay.
package clock

import "fmt"

// Scheduler tracks the busy-until time of every chip.
type Scheduler struct {
	busyUntil []float64
	busyTime  []float64 // accumulated service time per chip (utilisation)
	ops       int64

	// capture, when installed (see lanes.go), receives every scheduled
	// operation and takes over busy-time accumulation for lane processing.
	capture *Capture
}

// NewScheduler creates a scheduler for n chips.
func NewScheduler(n int) *Scheduler {
	if n <= 0 {
		panic(fmt.Sprintf("clock: invalid chip count %d", n))
	}
	return &Scheduler{
		busyUntil: make([]float64, n),
		busyTime:  make([]float64, n),
	}
}

// Chips returns the number of chips under management.
func (s *Scheduler) Chips() int { return len(s.busyUntil) }

// Schedule books an operation of the given duration on a chip, earliest at
// time now, and returns its completion time.
func (s *Scheduler) Schedule(chip int, now, duration float64) float64 {
	if chip < 0 || chip >= len(s.busyUntil) {
		panic(fmt.Sprintf("clock: chip %d out of range [0,%d)", chip, len(s.busyUntil)))
	}
	if duration < 0 {
		panic(fmt.Sprintf("clock: negative duration %v", duration))
	}
	start := now
	if s.busyUntil[chip] > start {
		start = s.busyUntil[chip]
	}
	end := start + duration
	s.busyUntil[chip] = end
	if s.capture != nil {
		s.capture.add(chip, start, duration, end)
	} else {
		s.busyTime[chip] += duration
	}
	s.ops++
	return end
}

// BusyUntil reports when a chip becomes idle.
func (s *Scheduler) BusyUntil(chip int) float64 { return s.busyUntil[chip] }

// BusyTime reports the total service time booked on a chip.
func (s *Scheduler) BusyTime(chip int) float64 { return s.busyTime[chip] }

// Ops reports the number of scheduled operations.
func (s *Scheduler) Ops() int64 { return s.ops }

// Horizon returns the latest busy-until time over all chips — the earliest
// moment by which the whole device is guaranteed idle.
func (s *Scheduler) Horizon() float64 {
	var h float64
	for _, t := range s.busyUntil {
		if t > h {
			h = t
		}
	}
	return h
}

// Reset zeroes all timelines but keeps the chip count. The simulator calls
// it between the (untimed) warm-up phase and the measured phase.
func (s *Scheduler) Reset() {
	for i := range s.busyUntil {
		s.busyUntil[i] = 0
		s.busyTime[i] = 0
	}
	s.ops = 0
}

// Join tracks the completion time of a fan-out of sub-operations: a host
// request is done when its slowest sub-operation is done.
type Join struct {
	start float64
	end   float64
	n     int
}

// NewJoin starts a join for a request arriving at time t.
func NewJoin(t float64) Join { return Join{start: t, end: t} }

// Add folds one sub-operation completion time into the join.
func (j *Join) Add(completion float64) {
	if completion > j.end {
		j.end = completion
	}
	j.n++
}

// AddDelay extends the completion time by a serial delay (e.g. a DRAM cache
// access that happens on the critical path).
func (j *Join) AddDelay(d float64) { j.end += d }

// Done returns the request completion time.
func (j *Join) Done() float64 { return j.end }

// Latency returns the request response time (completion - arrival).
func (j *Join) Latency() float64 { return j.end - j.start }

// Ops returns the number of sub-operations joined.
func (j *Join) Ops() int { return j.n }

package clock

import (
	"reflect"
	"testing"
)

// TestCaptureMarkReproducesSerialPrefix is the cursor-semantics contract the
// observability merge relies on: folding every lane up to a mark reproduces
// exactly the per-chip busy-time state a serial scheduler would hold at the
// moment the mark was taken — same float additions, same order.
func TestCaptureMarkReproducesSerialPrefix(t *testing.T) {
	const chips = 4
	ops := []struct {
		chip int
		at   float64
		dur  float64
	}{
		{0, 0, 0.3}, {1, 0, 0.7}, {0, 0.1, 0.2}, {2, 0.2, 0.9},
		{1, 0.4, 0.1}, {3, 0.5, 0.4}, {0, 0.6, 0.8}, {2, 0.9, 0.2},
	}
	markAfter := 4 // take the mark after this many ops

	// Serial reference: plain scheduler, stop accumulating at the mark.
	ref := NewScheduler(chips)
	refBusy := make([]float64, chips)
	for i, op := range ops {
		if i == markAfter {
			for c := 0; c < chips; c++ {
				refBusy[c] = ref.BusyTime(c)
			}
		}
		ref.Schedule(op.chip, op.at, op.dur)
	}

	// Captured run: identical schedule, mark at the same point, fold lanes
	// to the cursors.
	s := NewScheduler(chips)
	cap := NewCapture(chips)
	s.SetCapture(cap)
	var mark []int32
	for i, op := range ops {
		if i == markAfter {
			mark = cap.Mark(nil)
		}
		s.Schedule(op.chip, op.at, op.dur)
	}
	if len(mark) != chips {
		t.Fatalf("Mark returned %d cursors, want %d", len(mark), chips)
	}
	epoch := cap.Cut()
	states := make([]LaneState, chips)
	gotBusy := make([]float64, chips)
	for c := 0; c < chips; c++ {
		if err := states[c].Fold(epoch[c][:mark[c]]); err != nil {
			t.Fatalf("fold to mark, chip %d: %v", c, err)
		}
		gotBusy[c] = states[c].BusyTime
	}
	if !reflect.DeepEqual(gotBusy, refBusy) {
		t.Errorf("busy at mark = %v, serial reference %v", gotBusy, refBusy)
	}
	// Folding the tail completes the epoch: totals and last-ends must agree
	// with the captured scheduler's authoritative timeline.
	for c := 0; c < chips; c++ {
		if err := states[c].Fold(epoch[c][mark[c]:]); err != nil {
			t.Fatalf("fold tail, chip %d: %v", c, err)
		}
		if states[c].Busy() && states[c].LastEnd != s.BusyUntil(c) {
			t.Errorf("chip %d: folded last end %g, busy-until %g", c, states[c].LastEnd, s.BusyUntil(c))
		}
		if states[c].BusyTime != ref.BusyTime(c) {
			t.Errorf("chip %d: folded busy %g, serial %g", c, states[c].BusyTime, ref.BusyTime(c))
		}
	}
}

// TestCaptureMarkAppends: Mark appends to dst, so a caller can keep one flat
// cursor buffer per epoch.
func TestCaptureMarkAppends(t *testing.T) {
	s := NewScheduler(2)
	cap := NewCapture(2)
	s.SetCapture(cap)
	s.Schedule(0, 0, 1)
	buf := cap.Mark(nil)
	s.Schedule(1, 0, 1)
	s.Schedule(0, 1, 1)
	buf = cap.Mark(buf)
	want := []int32{1, 0, 2, 1}
	if !reflect.DeepEqual(buf, want) {
		t.Errorf("marks = %v, want %v", buf, want)
	}
}

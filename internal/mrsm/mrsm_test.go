package mrsm

import (
	"fmt"
	"math/rand"
	"testing"

	"across/internal/flash"
	"across/internal/ssdconf"
	"across/internal/trace"
)

func tinyScheme(t *testing.T) (*Scheme, *ssdconf.Config) {
	t.Helper()
	c := ssdconf.Tiny()
	s, err := New(&c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, &c
}

func write(t *testing.T, s *Scheme, off int64, count int, now float64) {
	t.Helper()
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: off, Count: count, Time: now}, now); err != nil {
		t.Fatalf("Write(off=%d,count=%d): %v", off, count, err)
	}
	if err := s.audit(); err != nil {
		t.Fatalf("audit after write(off=%d,count=%d): %v", off, count, err)
	}
}

func read(t *testing.T, s *Scheme, off int64, count int, now float64) {
	t.Helper()
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: off, Count: count, Time: now}, now); err != nil {
		t.Fatalf("Read(off=%d,count=%d): %v", off, count, err)
	}
}

func TestTreeDepth(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want int
	}{{1, 1}, {2, 2}, {8, 2}, {65, 3}, {1 << 20, 7}} {
		if got := treeDepth(tc.n); got != tc.want {
			t.Errorf("treeDepth(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestSubRange(t *testing.T) {
	s, _ := tinyScheme(t)
	// Tiny config: 8 KB pages, 16 sectors, 4 sub-pages of 4 sectors.
	cases := []struct {
		off         int64
		count       int
		first, last int64
		fp, lp      bool
	}{
		{0, 4, 0, 0, false, false},  // exactly one sub-page
		{0, 16, 0, 3, false, false}, // one full page
		{2, 4, 0, 1, true, true},    // misaligned, spans two sub-pages
		{4, 6, 1, 2, false, true},   // starts aligned, ragged end
		{3, 1, 0, 0, true, true},    // single partial sub-page
	}
	for _, tc := range cases {
		f, l, fp, lp := s.subRange(trace.Request{Offset: tc.off, Count: tc.count})
		if f != tc.first || l != tc.last || fp != tc.fp || lp != tc.lp {
			t.Errorf("subRange(%d,%d) = (%d,%d,%v,%v), want (%d,%d,%v,%v)",
				tc.off, tc.count, f, l, fp, lp, tc.first, tc.last, tc.fp, tc.lp)
		}
	}
}

// TestPackingAvoidsRMW: an across-page write of one page's worth of data
// costs exactly one program under MRSM (packed), with no RMW reads — the
// behaviour that makes MRSM competitive on writes in Fig 9(b).
func TestPackingAvoidsRMW(t *testing.T) {
	s, _ := tinyScheme(t)
	// write(1028K, 8K): sectors [2056, 2072) = sub-pages 514..517 (4 full).
	write(t, s, 2056, 16, 0)
	if got := s.Dev.Count.DataWrites; got != 1 {
		t.Fatalf("programs = %d, want 1 (packed)", got)
	}
	if got := s.Dev.Count.DataReads; got != 0 {
		t.Fatalf("reads = %d, want 0 (sub-page aligned, no RMW)", got)
	}
}

func TestEachWriteRequestFlushesDurably(t *testing.T) {
	s, _ := tinyScheme(t)
	// A write request must be durable when it completes: even a 2 KB
	// (4-sector) sub-page write programs one (partially filled) packed
	// page. The unfilled slots are the space amplification that drives
	// MRSM's worst-of-three erase counts (Fig 11).
	write(t, s, 0, 4, 0)
	if got := s.Dev.Count.DataWrites; got != 1 {
		t.Fatalf("programs = %d, want 1 (durable on completion)", got)
	}
	if len(s.bufList) != 0 {
		t.Fatalf("buffer slots = %d, want 0 after request completes", len(s.bufList))
	}
	// A full-page write still costs exactly one program.
	write(t, s, 16, 16, 1)
	if got := s.Dev.Count.DataWrites; got != 2 {
		t.Fatalf("programs = %d, want 2", got)
	}
}

func TestPartialPackProgramsAreFasterThanFull(t *testing.T) {
	s, c := tinyScheme(t)
	// One sub-page (quarter page): region-granularity program, quarter the
	// program time on the critical path.
	done, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantMax := c.ProgramTime/4 + 10*c.CacheAccess
	if done > wantMax {
		t.Fatalf("quarter-page write completed at %v, want <= %v", done, wantMax)
	}
	done2, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 16, Count: 16}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lat := done2 - 100; lat < c.ProgramTime {
		t.Fatalf("full-page write latency %v < full program time", lat)
	}
}

func TestPartialSubPageRMWReadsOldFlashCopy(t *testing.T) {
	s, _ := tinyScheme(t)
	// Fill one pack page so sub-pages 0..3 are on flash.
	write(t, s, 0, 16, 0)
	r0 := s.Dev.Count.DataReads
	// A 1-sector write into sub-page 0 partially covers it: must read the
	// old packed page.
	write(t, s, 1, 1, 1)
	if got := s.Dev.Count.DataReads - r0; got != 1 {
		t.Fatalf("RMW reads = %d, want 1", got)
	}
}

func TestOverwriteInvalidatesOldSlotsAndPages(t *testing.T) {
	s, _ := tinyScheme(t)
	write(t, s, 0, 16, 0) // page A holds sub-pages 0..3
	write(t, s, 0, 16, 1) // page B supersedes all of A
	_, _, invalid := s.Dev.Array.CountStates()
	if invalid != 1 {
		t.Fatalf("invalid pages = %d, want 1 (page A fully dead)", invalid)
	}
	live := 0
	for _, n := range s.pageLive {
		if n > 0 {
			live++
		}
	}
	if live != 1 {
		t.Fatalf("live MRSM pages = %d, want 1", live)
	}
}

func TestReadGathersFragmentedSubPages(t *testing.T) {
	s, _ := tinyScheme(t)
	// Write the halves of logical page 0 in two requests: its sub-pages
	// land in two different packed pages.
	write(t, s, 0, 8, 0) // subs 0,1 -> packed page A
	write(t, s, 8, 8, 1) // subs 2,3 -> packed page B
	if got := s.Dev.Count.DataWrites; got != 2 {
		t.Fatalf("programs = %d, want 2", got)
	}
	r0 := s.Dev.Count.DataReads
	read(t, s, 0, 16, 4) // logical page 0 is split across both pack pages
	if got := s.Dev.Count.DataReads - r0; got != 2 {
		t.Fatalf("fragmented read cost %d flash reads, want 2", got)
	}
}

func TestReadOfUnwrittenDataIsFree(t *testing.T) {
	s, _ := tinyScheme(t)
	read(t, s, 100, 8, 0) // never written
	if s.Dev.Count.DataReads != 0 {
		t.Fatal("unwritten read touched flash")
	}
}

func TestTableBytesAndResidentFraction(t *testing.T) {
	s, c := tinyScheme(t)
	want := c.LogicalPages() * int64(c.SubPagesPerPg) * int64(c.MRSMEntryBytes)
	if got := s.TableBytes(); got != want {
		t.Fatalf("TableBytes = %d, want %d", got, want)
	}
	// Default sizing: MRSM's table is 2.5x the baseline's (4 sub-entries of
	// 5 B vs one 8 B entry), so a DRAM budget equal to the baseline table
	// holds 40% of it — the paper's 42.1% regime. The byte-level ratio is
	// exact; the resident page count is integer (and clamped upward on a
	// tiny device), so assert on bytes.
	if ratio := float64(c.DRAMBudget()) / float64(s.TableBytes()); ratio != 0.4 {
		t.Fatalf("budget/table = %v, want 0.4", ratio)
	}
	if got := s.ResidentFraction(); got <= 0 {
		t.Fatalf("ResidentFraction = %v, want positive", got)
	}
}

func TestTreeLookupsCostMoreDRAM(t *testing.T) {
	s, _ := tinyScheme(t)
	write(t, s, 0, 16, 0)
	// Updates walk down and rebalance back up: 2 x depth per sub-page.
	perSub := int64(2 * s.depth)
	if got := s.Dev.Count.DRAMAccesses; got != 4*perSub {
		t.Fatalf("DRAM accesses = %d, want %d (4 sub-pages x 2 x depth %d)", got, 4*perSub, s.depth)
	}
	d0 := s.Dev.Count.DRAMAccesses
	read(t, s, 0, 16, 1)
	if got := s.Dev.Count.DRAMAccesses - d0; got != 4*int64(s.depth) {
		t.Fatalf("read DRAM accesses = %d, want %d (lookups cost depth)", got, 4*int64(s.depth))
	}
}

func TestGCMigratesPackedPages(t *testing.T) {
	s, c := tinyScheme(t)
	// Long-lived data in low LPNs, churn high LPNs until GC kicks in.
	write(t, s, 0, 16, 0)
	base := c.LogicalSectors() / 2
	for i := 0; i < 6000; i++ {
		off := base + int64(i%20)*16
		write(t, s, off, 16, float64(i+1))
	}
	if s.Dev.Array.TotalErases() == 0 {
		t.Skip("no GC in this geometry")
	}
	// Original data still resolvable and readable.
	r0 := s.Dev.Count.DataReads
	read(t, s, 0, 16, 1e7)
	if got := s.Dev.Count.DataReads - r0; got != 1 {
		t.Fatalf("reads = %d, want 1 (page survived GC)", got)
	}
}

func TestMapTrafficAppearsUnderCachePressure(t *testing.T) {
	c := ssdconf.Tiny()
	// Shrink the DRAM budget to one resident translation page and inflate
	// the entry size so the tiny device still has dozens of translation
	// pages: map traffic is then unavoidable under a scattered workload.
	c.DRAMBudgetBytes = int64(c.PageBytes)
	c.MRSMEntryBytes = 512
	s, err := New(&c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	region := c.LogicalSectors() / 2
	for i := 0; i < 400; i++ {
		off := rng.Int63n(region - 16)
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: off, Count: 16}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Dev.Count.MapWrites == 0 {
		t.Fatal("no map writes despite tiny cache")
	}
	if s.Dev.Count.MapReads == 0 {
		t.Fatal("no map reads despite tiny cache")
	}
	st := s.CMTStats()
	if st.Misses == 0 || st.DirtyEvicts == 0 {
		t.Fatalf("CMT stats = %+v, want misses and dirty evictions", st)
	}
}

func TestRandomWorkloadConsistency(t *testing.T) {
	s, c := tinyScheme(t)
	rng := rand.New(rand.NewSource(9))
	region := c.LogicalSectors() / 2
	for op := 0; op < 4000; op++ {
		off := rng.Int63n(region - 40)
		count := rng.Intn(36) + 1
		now := float64(op)
		if rng.Intn(100) < 60 {
			write(t, s, off, count, now)
		} else {
			read(t, s, off, count, now)
		}
	}
	if s.Dev.Array.TotalErases() == 0 {
		t.Fatal("churn never triggered GC")
	}
}

func TestRejectsInvalidRequests(t *testing.T) {
	s, c := tinyScheme(t)
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: c.LogicalSectors(), Count: 4}, 0); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: -1}, 0); err == nil {
		t.Fatal("negative-count read accepted")
	}
}

// audit verifies subLoc/pages bidirectional consistency and that every live
// packed page is valid in the flash array.
func (s *Scheme) audit() error {
	for i, want := range s.pageLive {
		if want == 0 {
			continue
		}
		ppn := flash.PPN(i)
		if s.Dev.Array.State(ppn) != flash.PageValid {
			return errAudit("page %d is %v with %d live slots", int64(i), s.Dev.Array.State(ppn), want)
		}
		base := int64(i) * int64(s.subPerPg)
		live := 0
		for slot := int64(0); slot < int64(s.subPerPg); slot++ {
			sub := s.pageOwner[base+slot]
			if sub == unmapped {
				continue
			}
			live++
			if s.subLoc[sub] != base+slot {
				return errAudit("sub %d maps to %d, slot table says %d", sub, s.subLoc[sub], base+slot)
			}
		}
		if live != int(want) {
			return errAudit("page %d live=%d, recount=%d", int64(i), want, live)
		}
	}
	for sub, loc := range s.subLoc {
		if loc == unmapped {
			continue
		}
		ppn := flash.PPN(loc / int64(s.subPerPg))
		slot := int(loc % int64(s.subPerPg))
		if s.pageLive[ppn] == 0 || s.pageOwner[loc] != int64(sub) {
			return errAudit("sub %d points at page %d slot %d which does not own it", sub, int64(ppn), slot)
		}
	}
	return nil
}

func errAudit(format string, args ...any) error {
	return fmt.Errorf("mrsm audit: "+format, args...)
}

package mrsm

import (
	"fmt"

	"across/internal/flash"
	"across/internal/ftl"
)

// AuditMapping implements check.Auditable: the sub-page location table, the
// per-page slot census, the pack buffer and the map store must agree with
// each other and with the flash array.
func (s *Scheme) AuditMapping() error {
	// Forward: every mapped sub-page points into a valid packed page whose
	// census names it in exactly that slot. Buffered sub-pages must have no
	// flash location (staging invalidates the old copy).
	for sub := int64(0); sub < int64(len(s.subLoc)); sub++ {
		loc := s.subLoc[sub]
		if s.buffered(sub) && loc != unmapped {
			return fmt.Errorf("mrsm audit: buffered sub %d still has flash location %d", sub, loc)
		}
		if loc == unmapped {
			continue
		}
		ppn := flash.PPN(loc / int64(s.subPerPg))
		slot := int(loc % int64(s.subPerPg))
		if st := s.Dev.Array.State(ppn); st != flash.PageValid {
			return fmt.Errorf("mrsm audit: sub %d maps to %v page %d", sub, st, ppn)
		}
		tag := s.Dev.Array.TagOf(ppn)
		if tag.Kind != ftl.TagMRSM {
			return fmt.Errorf("mrsm audit: sub %d page %d has foreign tag %+v", sub, ppn, tag)
		}
		if s.pageLive[ppn] == 0 {
			return fmt.Errorf("mrsm audit: sub %d maps to page %d with no slot census", sub, ppn)
		}
		if got := s.pageOwner[loc]; got != sub {
			return fmt.Errorf("mrsm audit: sub %d claims page %d slot %d, census says sub %d",
				sub, ppn, slot, got)
		}
	}
	// Reverse: every censused page is a valid flash page, its live count
	// matches its occupied slots, every occupied slot points back, and dead
	// pages keep a fully cleared census segment (installPack relies on it).
	for i, live := range s.pageLive {
		ppn := flash.PPN(i)
		base := int64(i) * int64(s.subPerPg)
		counted := 0
		for slot := int64(0); slot < int64(s.subPerPg); slot++ {
			sub := s.pageOwner[base+slot]
			if sub == unmapped {
				continue
			}
			counted++
			if live == 0 {
				return fmt.Errorf("mrsm audit: dead page %d still owns sub %d in slot %d", ppn, sub, slot)
			}
			if sub < 0 || sub >= int64(len(s.subLoc)) {
				return fmt.Errorf("mrsm audit: page %d slot %d holds out-of-range sub %d", ppn, slot, sub)
			}
			if s.subLoc[sub] != base+slot {
				return fmt.Errorf("mrsm audit: page %d slot %d holds sub %d, which maps to %d",
					ppn, slot, sub, s.subLoc[sub])
			}
		}
		if live == 0 {
			continue
		}
		if st := s.Dev.Array.State(ppn); st != flash.PageValid {
			return fmt.Errorf("mrsm audit: censused page %d is %v", ppn, st)
		}
		if counted != int(live) {
			return fmt.Errorf("mrsm audit: page %d census live %d, counted %d", ppn, live, counted)
		}
	}
	// Pack buffer: never overfull, and no sub-page staged twice.
	if len(s.bufList) >= s.subPerPg {
		return fmt.Errorf("mrsm audit: pack buffer holds %d sub-pages, flush threshold is %d",
			len(s.bufList), s.subPerPg)
	}
	for i, sub := range s.bufList {
		for j := 0; j < i; j++ {
			if s.bufList[j] == sub {
				return fmt.Errorf("mrsm audit: sub %d staged in buffer slots %d and %d", sub, j, i)
			}
		}
	}
	return s.ms.Audit()
}

// VisitOwned implements check.Auditable: the packed data pages in the census
// plus the map store's translation pages.
func (s *Scheme) VisitOwned(fn func(flash.PPN) error) error {
	for i, live := range s.pageLive {
		if live == 0 {
			continue
		}
		if err := fn(flash.PPN(i)); err != nil {
			return err
		}
	}
	return s.ms.VisitPages(fn)
}

// ResolveSector implements check.SectorResolver: the sector's sub-page is
// either staged in the pack buffer (newest copy in controller RAM) or lives
// in the slot its location entry names. MRSM tags carry no owner key — GC
// resolves ownership through the slot census — so the expected OOB tag is
// the anonymous TagMRSM.
func (s *Scheme) ResolveSector(sec int64) (ftl.SectorSource, error) {
	if sec < 0 || sec >= s.Conf.LogicalSectors() {
		return ftl.SectorSource{}, fmt.Errorf("mrsm: sector %d outside device", sec)
	}
	sub := sec / int64(s.subSec)
	if s.buffered(sub) {
		return ftl.SectorSource{Kind: ftl.SrcBuffered}, nil
	}
	loc := s.subLoc[sub]
	if loc == unmapped {
		return ftl.SectorSource{Kind: ftl.SrcUnwritten}, nil
	}
	return ftl.SectorSource{
		Kind: ftl.SrcFlash,
		PPN:  flash.PPN(loc / int64(s.subPerPg)),
		Tag:  flash.Tag{Kind: ftl.TagMRSM, Key: -1},
	}, nil
}

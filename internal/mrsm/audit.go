package mrsm

import (
	"fmt"

	"across/internal/flash"
	"across/internal/ftl"
)

// AuditMapping implements check.Auditable: the sub-page location table, the
// per-page slot census, the pack buffer and the map store must agree with
// each other and with the flash array.
func (s *Scheme) AuditMapping() error {
	// Forward: every mapped sub-page points into a valid packed page whose
	// census names it in exactly that slot. Buffered sub-pages must have no
	// flash location (staging invalidates the old copy).
	for sub := int64(0); sub < int64(len(s.subLoc)); sub++ {
		loc := s.subLoc[sub]
		if _, buffered := s.bufMap[sub]; buffered && loc != unmapped {
			return fmt.Errorf("mrsm audit: buffered sub %d still has flash location %d", sub, loc)
		}
		if loc == unmapped {
			continue
		}
		ppn := flash.PPN(loc / int64(s.subPerPg))
		slot := int(loc % int64(s.subPerPg))
		if st := s.Dev.Array.State(ppn); st != flash.PageValid {
			return fmt.Errorf("mrsm audit: sub %d maps to %v page %d", sub, st, ppn)
		}
		tag := s.Dev.Array.TagOf(ppn)
		if tag.Kind != ftl.TagMRSM {
			return fmt.Errorf("mrsm audit: sub %d page %d has foreign tag %+v", sub, ppn, tag)
		}
		ps, ok := s.pages[ppn]
		if !ok {
			return fmt.Errorf("mrsm audit: sub %d maps to page %d with no slot census", sub, ppn)
		}
		if ps.owner[slot] != sub {
			return fmt.Errorf("mrsm audit: sub %d claims page %d slot %d, census says sub %d",
				sub, ppn, slot, ps.owner[slot])
		}
	}
	// Reverse: every censused page is a valid flash page, its live count
	// matches its occupied slots, and every occupied slot points back.
	for ppn, ps := range s.pages {
		if st := s.Dev.Array.State(ppn); st != flash.PageValid {
			return fmt.Errorf("mrsm audit: censused page %d is %v", ppn, st)
		}
		live := 0
		for slot, sub := range ps.owner {
			if sub == unmapped {
				continue
			}
			live++
			want := int64(ppn)*int64(s.subPerPg) + int64(slot)
			if sub < 0 || sub >= int64(len(s.subLoc)) {
				return fmt.Errorf("mrsm audit: page %d slot %d holds out-of-range sub %d", ppn, slot, sub)
			}
			if s.subLoc[sub] != want {
				return fmt.Errorf("mrsm audit: page %d slot %d holds sub %d, which maps to %d",
					ppn, slot, sub, s.subLoc[sub])
			}
		}
		if live != ps.live {
			return fmt.Errorf("mrsm audit: page %d census live %d, counted %d", ppn, ps.live, live)
		}
		if live == 0 {
			return fmt.Errorf("mrsm audit: page %d censused with no live slots (missed invalidate)", ppn)
		}
	}
	// Pack buffer: bufMap and bufList must be inverse of each other.
	if len(s.bufMap) != len(s.bufList) {
		return fmt.Errorf("mrsm audit: pack buffer map has %d entries, list %d", len(s.bufMap), len(s.bufList))
	}
	for i, sub := range s.bufList {
		if got, ok := s.bufMap[sub]; !ok || got != i {
			return fmt.Errorf("mrsm audit: buffer slot %d holds sub %d, map says slot %d (present %v)",
				i, sub, got, ok)
		}
	}
	return s.ms.Audit()
}

// VisitOwned implements check.Auditable: the packed data pages in the census
// plus the map store's translation pages. Census iteration is map-ordered
// (nondeterministic); the checker's sweep is order-insensitive.
func (s *Scheme) VisitOwned(fn func(flash.PPN) error) error {
	for ppn := range s.pages {
		if err := fn(ppn); err != nil {
			return err
		}
	}
	return s.ms.VisitPages(fn)
}

// ResolveSector implements check.SectorResolver: the sector's sub-page is
// either staged in the pack buffer (newest copy in controller RAM) or lives
// in the slot its location entry names. MRSM tags carry no owner key — GC
// resolves ownership through the slot census — so the expected OOB tag is
// the anonymous TagMRSM.
func (s *Scheme) ResolveSector(sec int64) (ftl.SectorSource, error) {
	if sec < 0 || sec >= s.Conf.LogicalSectors() {
		return ftl.SectorSource{}, fmt.Errorf("mrsm: sector %d outside device", sec)
	}
	sub := sec / int64(s.subSec)
	if _, buffered := s.bufMap[sub]; buffered {
		return ftl.SectorSource{Kind: ftl.SrcBuffered}, nil
	}
	loc := s.subLoc[sub]
	if loc == unmapped {
		return ftl.SectorSource{Kind: ftl.SrcUnwritten}, nil
	}
	return ftl.SectorSource{
		Kind: ftl.SrcFlash,
		PPN:  flash.PPN(loc / int64(s.subPerPg)),
		Tag:  flash.Tag{Kind: ftl.TagMRSM, Key: -1},
	}, nil
}

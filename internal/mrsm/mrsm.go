// Package mrsm implements the MRSM comparator of the paper (Chen et al.,
// "Beyond address mapping: a user-oriented multiregional space management
// design for 3-D NAND flash memory", TCAD 2020), as characterised in §2.2
// and §4 of the Across-FTL paper:
//
//   - sub-page-granularity mapping: each logical page is divided into
//     sub-page regions with their own mapping entries, so unaligned and
//     across-page writes are packed compactly into physical pages without
//     read-modify-write — fewer data writes than the baseline FTL;
//   - the price is a mapping table ~2.4x the baseline's, of which only the
//     DRAM budget's worth stays resident: the rest lives in flash and is
//     loaded/flushed through a cached mapping table, generating the heavy
//     Map read/write traffic of Fig 10 and the extra erases of Fig 11;
//   - lookups walk a tree index, multiplying DRAM accesses (Fig 12b).
package mrsm

import (
	"math"

	"across/internal/cache"
	"across/internal/clock"
	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/obs"
	"across/internal/ssdconf"
	"across/internal/trace"
)

// treeFanout is the branching factor of MRSM's mapping index; lookups cost
// ceil(log_fanout(entries)) DRAM accesses and updates cost twice that (walk
// down plus modify/rebalance back up) — the mechanism behind MRSM's ~32x
// DRAM access count in Fig 12(b).
const treeFanout = 8

// nodeEntries is how many sub-page mapping entries one tree node (the unit
// cached in DRAM and spilled to flash) holds. Tree nodes have far less
// spatial locality than a dense translation page, which is why MRSM's map
// traffic dominates its flash ops (36.9% of writes / 34.4% of reads in
// Fig 10) while the schemes with dense tables barely spill.
const nodeEntries = 256

// maxNodeDirty bounds the number of un-persisted updates a resident tree
// node may accumulate before it is checkpointed to flash: controllers cap
// dirty mapping state for power-loss recovery, and a sub-page table dirties
// entries several times faster than a page-level one. This bound is what
// keeps MRSM's mapping-table flushes proportional to its data writes.
const maxNodeDirty = 12

const unmapped = int64(-1)

// Scheme is the MRSM implementation of ftl.Scheme.
type Scheme struct {
	ftl.Base

	subPerPg int // sub-pages per page
	subSec   int // sectors per sub-page
	depth    int // tree lookup cost in DRAM accesses

	subLoc []int64 // logical sub-page -> physical sub-slot

	// Packed-page census, flat over the physical page space: pageOwner names
	// the logical sub-page held by each physical sub-slot (unmapped when
	// dead) and pageLive counts a page's live slots (0 = not an MRSM data
	// page). Flat arrays rather than a map of per-page census objects:
	// packed pages are created and killed on every flush/invalidate, and
	// both the map's bucket churn and the census allocations were the
	// scheme's dominant steady-state allocation sources.
	pageOwner []int64 // ppn*subPerPg + slot -> logical sub-page
	pageLive  []int32 // ppn -> live slot count

	cmt       *cache.CMT    // cached mapping table over sub-page entries
	ms        *ftl.MapStore // flash residence of spilled map pages
	nodeDirty []int32       // un-persisted updates per tree node, indexed by node id

	// Pack buffer: sub-pages accumulated in controller RAM until a full
	// physical page can be programmed. At most subPerPg entries, so
	// membership tests scan the slice instead of keeping an inverse map.
	bufList []int64 // buffer slot -> logical sub-page

	// ppnScratch is the per-request list of distinct physical pages to
	// read (RMW sources on writes, data sources on reads); reusing it
	// keeps the steady-state request path allocation-free.
	ppnScratch []flash.PPN

	// subsPool recycles the pack-buffer snapshots taken by takeBuffer;
	// entries may be in flight across a nested GC flush, hence a pool
	// rather than a single scratch slice.
	subsPool  [][]int64
	ownersBuf []int64 // salvage's snapshot of a victim's slot owners
}

// New builds MRSM on a fresh device. The DRAM budget (by default the size of
// the baseline FTL's table) caps the resident fraction of the sub-page
// mapping table; with the default sizing ~40% stays in DRAM, matching the
// paper's 42.1%.
func New(conf *ssdconf.Config) (*Scheme, error) {
	base, err := ftl.NewBase(conf)
	if err != nil {
		return nil, err
	}
	subPerPg := conf.SubPagesPerPg
	totalSub := conf.LogicalPages() * int64(subPerPg)
	nodeBytes := int64(nodeEntries * conf.MRSMEntryBytes)
	residentNodes := int(conf.DRAMBudget() / nodeBytes)
	numNodes := (totalSub + nodeEntries - 1) / nodeEntries
	totalPages := base.Dev.Array.Geo.TotalPages()
	s := &Scheme{
		Base:      base,
		subPerPg:  subPerPg,
		subSec:    conf.SectorsPerPage() / subPerPg,
		depth:     treeDepth(totalSub),
		subLoc:    make([]int64, totalSub),
		pageOwner: make([]int64, totalPages*int64(subPerPg)),
		pageLive:  make([]int32, totalPages),
		cmt:       cache.NewCMTDense(nodeEntries, residentNodes, totalSub),
		nodeDirty: make([]int32, numNodes),
	}
	for i := range s.subLoc {
		s.subLoc[i] = unmapped
	}
	for i := range s.pageOwner {
		s.pageOwner[i] = unmapped
	}
	s.ms = ftl.NewMapStore(s.Dev, s.Al)
	s.Al.SetMigrate(s.migrate)
	s.Al.SetSalvage(s.salvage)
	return s, nil
}

func treeDepth(n int64) int {
	if n < 2 {
		return 1
	}
	d := int(math.Ceil(math.Log(float64(n)) / math.Log(treeFanout)))
	if d < 2 {
		d = 2
	}
	return d
}

// Name implements ftl.Scheme.
func (s *Scheme) Name() string { return "MRSM" }

// TableBytes implements ftl.Scheme: a dense sub-page-granularity table.
func (s *Scheme) TableBytes() int64 {
	return int64(len(s.subLoc)) * int64(s.Conf.MRSMEntryBytes)
}

// ResidentFraction reports how much of the mapping table fits in DRAM
// (the paper quotes 42.1%).
func (s *Scheme) ResidentFraction() float64 {
	nodeBytes := int64(nodeEntries * s.Conf.MRSMEntryBytes)
	return float64(int64(s.cmt.ResidentPages())*nodeBytes) / float64(s.TableBytes())
}

// CMTStats exposes mapping-cache behaviour.
func (s *Scheme) CMTStats() cache.CMTStats { return s.cmt.Stats() }

// ResetStats clears cache statistics after warm-up.
func (s *Scheme) ResetStats() { s.cmt.ResetStats() }

// migrate is the GC callback: MRSM data pages move wholesale (slot layout
// preserved); translation pages route to the map store; plain data pages
// never exist under MRSM, so TagData is foreign.
func (s *Scheme) migrate(tag flash.Tag, old, new flash.PPN) {
	switch tag.Kind {
	case ftl.TagMRSM:
		if s.pageLive[old] == 0 {
			panic("mrsm: GC moved a packed page the scheme does not own")
		}
		oldBase := int64(old) * int64(s.subPerPg)
		newBase := int64(new) * int64(s.subPerPg)
		for slot := int64(0); slot < int64(s.subPerPg); slot++ {
			sub := s.pageOwner[oldBase+slot]
			s.pageOwner[oldBase+slot] = unmapped
			s.pageOwner[newBase+slot] = sub
			if sub != unmapped {
				s.subLoc[sub] = newBase + slot
			}
		}
		s.pageLive[new] = s.pageLive[old]
		s.pageLive[old] = 0
	case ftl.TagMap:
		if !s.ms.OnMigrate(tag.Key, old, new) {
			panic("mrsm: GC moved a translation page the map store does not own")
		}
	default:
		panic("mrsm: GC met a foreign page tag")
	}
}

// touchEntry charges one sub-page mapping access: a tree walk in DRAM plus
// the cached-mapping-table effects.
func (s *Scheme) touchEntry(sub int64, dirty bool, now float64) (delay, ready float64, err error) {
	walk := s.depth
	if dirty {
		walk *= 2 // descend, then modify and rebalance back up
	}
	delay = s.Dev.DRAMAccess(walk)
	eff := s.cmt.Touch(sub, dirty)
	if trc := s.Dev.Tracer(); trc != nil {
		trc.CacheAccess(obs.CacheMapping, !eff.MissRead, now)
	}
	node := s.cmt.PageOf(sub)
	if eff.FlushWrite {
		s.nodeDirty[eff.Victim] = 0
	}
	ready, err = s.ms.ApplyEffect(eff, node, now)
	if err != nil || !dirty {
		return delay, ready, err
	}
	// Checkpoint the node once it exceeds its dirty-update budget. The
	// checkpoint is background work: it occupies the chip but does not gate
	// the triggering request.
	if s.nodeDirty[node]++; s.nodeDirty[node] >= maxNodeDirty {
		s.nodeDirty[node] = 0
		if _, ferr := s.ms.Flush(node, now); ferr != nil {
			return delay, ready, ferr
		}
		s.cmt.MarkClean(node)
	}
	return delay, ready, nil
}

// invalidateSub kills the flash copy of a logical sub-page, invalidating the
// physical page once its last live slot dies.
func (s *Scheme) invalidateSub(sub int64) error {
	loc := s.subLoc[sub]
	if loc == unmapped {
		return nil
	}
	ppn := flash.PPN(loc / int64(s.subPerPg))
	if s.pageOwner[loc] != sub || s.pageLive[ppn] == 0 {
		panic("mrsm: sub-page location table out of sync")
	}
	s.pageOwner[loc] = unmapped
	s.pageLive[ppn]--
	s.subLoc[sub] = unmapped
	if s.pageLive[ppn] == 0 {
		return s.Dev.Invalidate(ppn)
	}
	return nil
}

// flushPack programs the accumulated pack buffer as one physical page and
// installs the sub-page mappings. Returns the program completion time.
func (s *Scheme) flushPack(issue float64) (float64, error) {
	// Snapshot the buffer before allocating: the allocation can trigger GC,
	// whose salvage path stages fresh sub-pages into the (new, empty)
	// buffer. Installing from a live buffer would overflow the page.
	subs := s.takeBuffer()
	ppn, err := s.Al.AllocPage(issue)
	if err != nil {
		return issue, err
	}
	return s.installPack(ppn, subs, issue, ftl.OpData)
}

// flushPackGC is flushPack on the GC allocation path, used while salvaging
// a collection victim (the host path could recurse into collection).
func (s *Scheme) flushPackGC(pl flash.PlaneID, issue float64) (float64, error) {
	subs := s.takeBuffer()
	ppn, err := s.Al.AllocGCPage(pl)
	if err != nil {
		return issue, err
	}
	return s.installPack(ppn, subs, issue, ftl.OpGC)
}

// takeBuffer detaches the current pack-buffer contents into a pooled slice;
// installPack returns the slice to the pool once the mappings are installed.
func (s *Scheme) takeBuffer() []int64 {
	var subs []int64
	if n := len(s.subsPool); n > 0 {
		subs, s.subsPool = s.subsPool[n-1][:0], s.subsPool[:n-1]
	}
	subs = append(subs, s.bufList...)
	s.bufList = s.bufList[:0]
	return subs
}

// buffered reports whether a sub-page is staged in the pack buffer. The
// buffer holds at most subPerPg entries, so a linear scan beats a map.
func (s *Scheme) buffered(sub int64) bool {
	for _, b := range s.bufList {
		if b == sub {
			return true
		}
	}
	return false
}

func (s *Scheme) installPack(ppn flash.PPN, subs []int64, issue float64, class ftl.OpClass) (float64, error) {
	frac := float64(len(subs)) / float64(s.subPerPg)
	done, err := s.Dev.ProgramScaled(ppn, flash.Tag{Kind: ftl.TagMRSM, Key: -1}, issue, class, frac)
	if err != nil {
		return issue, err
	}
	base := int64(ppn) * int64(s.subPerPg)
	for slot, sub := range subs {
		s.pageOwner[base+int64(slot)] = sub
		s.subLoc[sub] = base + int64(slot)
	}
	s.pageLive[ppn] = int32(len(subs))
	s.subsPool = append(s.subsPool, subs)
	return done, nil
}

// salvage is the GC hook: instead of copying a packed page wholesale (which
// would drag dead sub-page slots along forever and fragment the device), the
// live sub-pages are read once and re-staged through the pack buffer, so
// collection compacts at sub-page granularity — the GC-efficiency property
// §2.2 credits MRSM with.
func (s *Scheme) salvage(tag flash.Tag, old flash.PPN, pl flash.PlaneID, now float64) (bool, error) {
	if tag.Kind != ftl.TagMRSM {
		return false, nil
	}
	if s.pageLive[old] == 0 {
		panic("mrsm: GC salvaging a packed page the scheme does not own")
	}
	if _, err := s.Dev.Read(old, now, ftl.OpGC); err != nil {
		return false, err
	}
	// Snapshot the slot owners before invalidating: invalidateSub clears
	// census slots as it goes, and a nested GC flush may repopulate the
	// page's segment. salvage never nests (the GC allocation path cannot
	// trigger another collection), so one scratch buffer suffices.
	base := int64(old) * int64(s.subPerPg)
	owners := append(s.ownersBuf[:0], s.pageOwner[base:base+int64(s.subPerPg)]...)
	s.ownersBuf = owners
	for _, sub := range owners {
		if sub == unmapped {
			continue
		}
		if err := s.invalidateSub(sub); err != nil {
			return false, err
		}
		s.bufList = append(s.bufList, sub)
		if len(s.bufList) == s.subPerPg {
			if _, err := s.flushPackGC(pl, now); err != nil {
				return false, err
			}
		}
	}
	return true, nil
}

// subRange returns the half-open logical sub-page range a request touches,
// plus whether the first/last sub-pages are only partially covered.
func (s *Scheme) subRange(r trace.Request) (first, last int64, firstPartial, lastPartial bool) {
	first = r.Offset / int64(s.subSec)
	last = (r.End() - 1) / int64(s.subSec)
	firstPartial = r.Offset%int64(s.subSec) != 0
	lastPartial = r.End()%int64(s.subSec) != 0
	if first == last {
		p := firstPartial || lastPartial
		firstPartial, lastPartial = p, p
	}
	return
}

// Write implements ftl.Scheme: each touched sub-page is staged into the pack
// buffer; partially covered sub-pages with existing flash data read their
// old page first; superseded flash slots are invalidated; a full buffer
// programs one packed page.
func (s *Scheme) Write(r trace.Request, now float64) (float64, error) {
	if err := s.CheckRequest(r); err != nil {
		return now, err
	}
	join := clock.NewJoin(now)
	var mapDelay float64
	issue := now
	readPages := s.ppnScratch[:0] // distinct RMW-source pages, read once each

	first, last, firstPartial, lastPartial := s.subRange(r)
	for sub := first; sub <= last; sub++ {
		d, _, err := s.touchEntry(sub, true, now)
		if err != nil {
			return now, err
		}
		mapDelay += d
		partial := (sub == first && firstPartial) || (sub == last && lastPartial)
		if partial {
			// Assemble the new sub-page from the old copy if one exists on
			// flash (buffered copies merge in RAM for free).
			if loc := s.subLoc[sub]; loc != unmapped {
				ppn := flash.PPN(loc / int64(s.subPerPg))
				seen := false
				for _, p := range readPages {
					if p == ppn {
						seen = true
						break
					}
				}
				if !seen {
					readPages = append(readPages, ppn)
					s.ppnScratch = readPages
					rdone, err := s.Dev.Read(ppn, now, ftl.OpData)
					if err != nil {
						return now, err
					}
					if rdone > issue {
						issue = rdone
					}
				}
			}
		}
		// Stage into the pack buffer.
		if s.buffered(sub) {
			continue // overwrite in RAM
		}
		if err := s.invalidateSub(sub); err != nil {
			return now, err
		}
		s.bufList = append(s.bufList, sub)
		if len(s.bufList) == s.subPerPg {
			done, err := s.flushPack(issue)
			if err != nil {
				return now, err
			}
			join.Add(done)
		}
	}
	// A write request completes only when its data is durable: flush the
	// ragged tail as a partially filled packed page. The unfilled slots are
	// wasted space — the space amplification that makes MRSM's flash-write
	// and erase counts the worst of the three schemes (Figs 10a, 11) even
	// though its write latency beats the RMW-bound baseline (Fig 9b).
	if len(s.bufList) > 0 {
		done, err := s.flushPack(issue)
		if err != nil {
			return now, err
		}
		join.Add(done)
	}
	join.AddDelay(mapDelay)
	return join.Done(), nil
}

// Read implements ftl.Scheme: each touched sub-page resolves through the
// (cached, tree-indexed) mapping; distinct physical pages are read once;
// buffered or unwritten sub-pages cost no flash work.
func (s *Scheme) Read(r trace.Request, now float64) (float64, error) {
	if err := s.CheckRequest(r); err != nil {
		return now, err
	}
	join := clock.NewJoin(now)
	var mapDelay float64

	// Resolve every mapping entry first: a cache miss can flush a dirty
	// translation page, whose allocation can trigger GC, which relocates
	// data pages — so physical locations are only read after the last
	// mapping touch.
	first, last, _, _ := s.subRange(r)
	ready := now
	for sub := first; sub <= last; sub++ {
		d, rdy, err := s.touchEntry(sub, false, now)
		if err != nil {
			return now, err
		}
		mapDelay += d
		if rdy > ready {
			ready = rdy
		}
	}
	// Distinct physical pages, ascending: sorted insertion into the scratch
	// slice reproduces the read order of the former map-and-sort without
	// allocating. A request touches at most a handful of pages.
	ppns := s.ppnScratch[:0]
	for sub := first; sub <= last; sub++ {
		if s.buffered(sub) {
			continue
		}
		if loc := s.subLoc[sub]; loc != unmapped {
			ppn := flash.PPN(loc / int64(s.subPerPg))
			i := len(ppns)
			for i > 0 && ppns[i-1] > ppn {
				i--
			}
			if i == 0 || ppns[i-1] != ppn {
				ppns = append(ppns, 0)
				copy(ppns[i+1:], ppns[i:])
				ppns[i] = ppn
			}
		}
	}
	s.ppnScratch = ppns
	for _, ppn := range ppns {
		done, err := s.Dev.Read(ppn, ready, ftl.OpData)
		if err != nil {
			return now, err
		}
		join.Add(done)
	}
	join.AddDelay(mapDelay)
	return join.Done(), nil
}

var _ ftl.Scheme = (*Scheme)(nil)

package mrsm

import (
	"fmt"

	"across/internal/snapshot"
)

// SnapshotState implements snapshot.Snapshotter: Base plus the sub-page
// mapping, the packed-page census, the cached mapping table with its
// per-node dirty counts, the flash map store and the live pack buffer.
// Request-scoped scratch (ppnScratch, subsPool, ownersBuf) is excluded.
func (s *Scheme) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("scheme:MRSM")
	if err := s.SnapshotBase(enc); err != nil {
		return err
	}
	enc.I64s(s.subLoc)
	enc.I64s(s.pageOwner)
	enc.I32s(s.pageLive)
	enc.I32s(s.nodeDirty)
	enc.I64s(s.bufList)
	if err := s.cmt.SnapshotState(enc); err != nil {
		return err
	}
	return s.ms.SnapshotState(enc)
}

// RestoreState implements snapshot.Snapshotter. All array sizes are derived
// from the configuration the receiver was built with, so mismatches mean
// the snapshot belongs to a different device and are rejected.
func (s *Scheme) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("scheme:MRSM")
	if err := s.RestoreBase(dec); err != nil {
		return err
	}
	subLoc := dec.I64s()
	pageOwner := dec.I64s()
	pageLive := dec.I32s()
	nodeDirty := dec.I32s()
	bufList := dec.I64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(subLoc) != len(s.subLoc) || len(pageOwner) != len(s.pageOwner) ||
		len(pageLive) != len(s.pageLive) || len(nodeDirty) != len(s.nodeDirty) {
		return fmt.Errorf("mrsm: snapshot arrays sized %d/%d/%d/%d, receiver has %d/%d/%d/%d",
			len(subLoc), len(pageOwner), len(pageLive), len(nodeDirty),
			len(s.subLoc), len(s.pageOwner), len(s.pageLive), len(s.nodeDirty))
	}
	if len(bufList) > s.subPerPg {
		return fmt.Errorf("mrsm: snapshot pack buffer holds %d sub-pages, page fits %d", len(bufList), s.subPerPg)
	}
	copy(s.subLoc, subLoc)
	copy(s.pageOwner, pageOwner)
	copy(s.pageLive, pageLive)
	copy(s.nodeDirty, nodeDirty)
	s.bufList = append(s.bufList[:0], bufList...)
	if err := s.cmt.RestoreState(dec); err != nil {
		return err
	}
	if err := s.ms.RestoreState(dec); err != nil {
		return err
	}
	return dec.Err()
}

package report

import (
	"fmt"

	"across/internal/obs"
)

// TimelineLatency tabulates a sampled metrics series as a
// latency-over-time view: one row per sample with the window's request
// count, mean read/write latency, queue depth at sample time, and the
// cumulative WAF and GC-debt gauges. Feed it the samples of one replay
// (obs.Sampler.Samples or a decoded metrics JSONL).
func TimelineLatency(samples []obs.Sample) *Table {
	t := New("Timeline: latency and pressure over simulated time",
		"t (ms)", "reqs", "read mean (ms)", "write mean (ms)", "QD", "WAF", "GC debt (pages)")
	for _, s := range samples {
		t.Add(F(s.TimeMs, 1), N(s.Requests), F(s.ReadMeanMs, 3), F(s.WriteMeanMs, 3),
			fmt.Sprintf("%d", s.QueueDepth), F(s.WAF, 3), N(s.GCDebtPages))
	}
	t.Note = "interval columns describe the window since the previous sample; WAF and GC debt are gauges at sample time"
	return t
}

// TimelineUtilisation tabulates per-chip busy fractions over time: one row
// per sample, one column per chip, plus the window mean. Fractions are the
// share of the window the chip spent servicing commands.
func TimelineUtilisation(samples []obs.Sample) *Table {
	chips := 0
	for _, s := range samples {
		if len(s.ChipBusyFrac) > chips {
			chips = len(s.ChipBusyFrac)
		}
	}
	headers := make([]string, 0, chips+2)
	headers = append(headers, "t (ms)")
	for c := 0; c < chips; c++ {
		headers = append(headers, fmt.Sprintf("chip %d", c))
	}
	headers = append(headers, "mean")
	t := New("Timeline: per-chip utilisation", headers...)
	for _, s := range samples {
		row := make([]string, 0, chips+2)
		row = append(row, F(s.TimeMs, 1))
		var sum float64
		for c := 0; c < chips; c++ {
			var f float64
			if c < len(s.ChipBusyFrac) {
				f = s.ChipBusyFrac[c]
			}
			sum += f
			row = append(row, Pct(f))
		}
		if chips > 0 {
			row = append(row, Pct(sum/float64(chips)))
		} else {
			row = append(row, Pct(0))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note = "busy fraction of each chip within the sample window"
	return t
}

package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Table X. Demo", "trace", "value")
	tb.Add("lun1", "1.23")
	tb.Addf("lun2", 42)
	tb.Note = "numbers are made up"
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Table X. Demo", "trace", "lun1", "1.23", "lun2", "42", "note: numbers are made up"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every body line has the same width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var width int
	for _, l := range lines[1:5] {
		if width == 0 {
			width = len(l)
		} else if len(l) != width {
			t.Errorf("ragged table: %q (want width %d)", l, width)
		}
	}
}

func TestAddPadsAndTruncates(t *testing.T) {
	tb := New("t", "a", "b")
	tb.Add("only-one")
	tb.Add("x", "y", "dropped")
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Errorf("padding failed: %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 2 {
		t.Errorf("truncation failed: %v", tb.Rows[1])
	}
}

func TestFormatters(t *testing.T) {
	if F(1.2345, 2) != "1.23" {
		t.Error("F")
	}
	if Pct(0.247) != "24.7%" {
		t.Error("Pct")
	}
	if N(1234567) != "1,234,567" {
		t.Errorf("N = %s", N(1234567))
	}
	if N(-1000) != "-1,000" {
		t.Errorf("N(-1000) = %s", N(-1000))
	}
	if N(12) != "12" {
		t.Error("N small")
	}
	if Norm(2, 4) != "0.500" {
		t.Error("Norm")
	}
	if Norm(1, 0) != "n/a" {
		t.Error("Norm zero base")
	}
	if Delta(0.911, 1.0) != "-8.9%" {
		t.Errorf("Delta = %s", Delta(0.911, 1.0))
	}
	if Delta(1, 0) != "n/a" {
		t.Error("Delta zero base")
	}
}

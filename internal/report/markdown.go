package report

import (
	"fmt"
	"io"
	"strings"
)

// RenderCSV writes the table as RFC-4180-ish CSV (title and note become
// comment lines), for feeding plotting scripts.
func (t *Table) RenderCSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	quote := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, quote(c))
		}
		fmt.Fprintln(w)
	}
	row(t.Headers)
	for _, r := range t.Rows {
		row(r)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "# %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// RenderTo dispatches on a format name: "markdown", "csv", or fixed-width
// text (the default for anything else).
func (t *Table) RenderTo(w io.Writer, format string) {
	switch format {
	case "markdown", "md":
		t.RenderMarkdown(w)
	case "csv":
		t.RenderCSV(w)
	default:
		t.Render(w)
	}
}

// RenderMarkdown writes the table as GitHub-flavoured markdown, for pasting
// experiment output into EXPERIMENTS.md or issue reports.
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	fmt.Fprint(w, "|")
	for _, h := range t.Headers {
		fmt.Fprintf(w, " %s |", esc(h))
	}
	fmt.Fprint(w, "\n|")
	for range t.Headers {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		fmt.Fprint(w, "|")
		for _, c := range row {
			fmt.Fprintf(w, " %s |", esc(c))
		}
		fmt.Fprintln(w)
	}
	if t.Note != "" {
		fmt.Fprintf(w, "\n*%s*\n", esc(t.Note))
	}
	fmt.Fprintln(w)
}

package report

import (
	"strings"
	"testing"
)

func TestRenderMarkdown(t *testing.T) {
	tb := New("Fig X", "trace", "value|ratio")
	tb.Add("lun1", "1.0|2.0")
	tb.Note = "a note"
	var sb strings.Builder
	tb.RenderMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{
		"**Fig X**",
		"| trace | value\\|ratio |",
		"|---|---|",
		"| lun1 | 1.0\\|2.0 |",
		"*a note*",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMarkdownNoTitleNoNote(t *testing.T) {
	tb := New("", "a")
	tb.Add("x")
	var sb strings.Builder
	tb.RenderMarkdown(&sb)
	if strings.Contains(sb.String(), "**") || strings.Contains(sb.String(), "*a note*") {
		t.Errorf("unexpected decorations: %s", sb.String())
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("Fig Y", "trace", "value")
	tb.Add("lun,1", `say "hi"`)
	tb.Note = "csv note"
	var sb strings.Builder
	tb.RenderCSV(&sb)
	out := sb.String()
	for _, want := range []string{
		"# Fig Y",
		"trace,value",
		`"lun,1","say ""hi"""`,
		"# csv note",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestRenderToDispatch(t *testing.T) {
	tb := New("T", "a")
	tb.Add("x")
	check := func(format, marker string) {
		var sb strings.Builder
		tb.RenderTo(&sb, format)
		if !strings.Contains(sb.String(), marker) {
			t.Errorf("format %q missing marker %q:\n%s", format, marker, sb.String())
		}
	}
	check("csv", "# T")
	check("markdown", "**T**")
	check("md", "**T**")
	check("text", "| a")
	check("", "| a")
}

// Package report renders the experiment output: fixed-width ASCII tables
// (one per paper table/figure), figure series, and paper-vs-measured
// comparison rows, so a terminal run of the harness reads like the paper's
// evaluation section.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled fixed-width table.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// New creates a table with a title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) Add(cells ...string) *Table {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Addf appends a row of formatted cells (each cell a [format, value] pair is
// overkill; callers use F/Pct helpers instead).
func (t *Table) Addf(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	return t.Add(row...)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 1
	for _, wd := range widths {
		total += wd + 3
	}
	line := strings.Repeat("-", total)
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	fmt.Fprintln(w, line)
	printRow := func(cells []string) {
		fmt.Fprint(w, "|")
		for i, c := range cells {
			fmt.Fprintf(w, " %-*s |", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Headers)
	fmt.Fprintln(w, line)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w, line)
	if t.Note != "" {
		fmt.Fprintf(w, "note: %s\n", t.Note)
	}
	fmt.Fprintln(w)
}

// F formats a float with prec decimals.
func F(x float64, prec int) string { return fmt.Sprintf("%.*f", prec, x) }

// Pct formats a ratio as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// N formats an integer with thousands separators.
func N(x int64) string {
	s := fmt.Sprintf("%d", x)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	if neg {
		return "-" + b.String()
	}
	return b.String()
}

// Norm formats x normalised by base (base -> "1.00"); guards base == 0.
func Norm(x, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return F(x/base, 3)
}

// Delta formats the relative change from base to x, e.g. "-8.9%".
func Delta(x, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(x-base)/base)
}

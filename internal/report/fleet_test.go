package report

import (
	"strings"
	"testing"
)

func curve(qds []int, tputs []float64) []QDPoint {
	pts := make([]QDPoint, len(qds))
	for i := range qds {
		pts[i] = QDPoint{QD: qds[i], Throughput: tputs[i]}
	}
	return pts
}

func TestKnee(t *testing.T) {
	qds := []int{1, 2, 4, 8, 16, 32}
	for _, tc := range []struct {
		name  string
		tputs []float64
		want  int
	}{
		// Classic saturation: throughput climbs then flattens at qd=8.
		{"saturating", []float64{100, 200, 390, 700, 720, 730}, 3},
		// Linear scaling never saturates: the normalised curve hugs the
		// chord, no point stands out below it.
		{"linear", []float64{100, 200, 400, 800, 1600, 3200}, -1},
		// Flat or declining curves have no rising chord to knee against.
		{"flat", []float64{500, 500, 500, 500, 500, 500}, -1},
	} {
		if got := Knee(curve(qds, tc.tputs)); got != tc.want {
			t.Errorf("%s: Knee = %d, want %d", tc.name, got, tc.want)
		}
	}
	if got := Knee(curve([]int{1, 2}, []float64{1, 2})); got != -1 {
		t.Errorf("2-point curve: Knee = %d, want -1", got)
	}
}

// TestKneeConcaveEarly pins that an early-saturating curve knees early.
func TestKneeConcaveEarly(t *testing.T) {
	pts := curve([]int{1, 2, 4, 8, 16, 32}, []float64{100, 900, 950, 980, 990, 1000})
	if got := Knee(pts); got != 1 {
		t.Errorf("early saturation: Knee = %d, want 1", got)
	}
}

func TestSaturationTableRenders(t *testing.T) {
	cells := []FleetCell{{
		Scheme: "Across-FTL", Layout: "raid0", Devices: 4, ChunkKB: 64,
		Points: []QDPoint{
			{QD: 1, Throughput: 100, ReadP99: 1, WriteP99: 2},
			{QD: 8, Throughput: 600, ReadP99: 3, WriteP99: 5},
			{QD: 32, Throughput: 620, ReadP99: 30, WriteP99: 50},
		},
		KneeQD: 8, Fanout: 1.4, AcrossRatio: 0.31, SubAcross: 0.12, SubUnaligned: 0.4,
	}}
	var b strings.Builder
	SaturationTable("fleet saturation", cells, &b)
	out := b.String()
	for _, want := range []string{"Across-FTL", "raid0", "64 KB", "8", "620", "31.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("saturation table missing %q:\n%s", want, out)
		}
	}
}

func TestFleetDeviceTableRenders(t *testing.T) {
	rows := []FleetDeviceRow{
		{Device: 0, SubRequests: 80, Sectors: 1280, BusyMs: 800, Util: 0.2},
		{Device: 1, SubRequests: 70, Sectors: 1120, BusyMs: 400, Util: 0.1},
	}
	var b strings.Builder
	FleetDeviceTable("fleet devices", rows, 1.5, &b)
	out := b.String()
	for _, want := range []string{"20.0%", "10.0%", "1,280", "1.50", "10.0%..20.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("device table missing %q:\n%s", want, out)
		}
	}
}

package report

import (
	"fmt"
	"io"
)

// QDPoint is one cell of a fleet saturation sweep: the closed-loop operating
// point at one queue depth.
type QDPoint struct {
	QD         int     `json:"qd"`
	Throughput float64 `json:"throughput_rps"` // logical requests / simulated second
	ReadP99    float64 `json:"read_p99_ms"`
	WriteP99   float64 `json:"write_p99_ms"`
	AvgRead    float64 `json:"avg_read_ms"`
	AvgWrite   float64 `json:"avg_write_ms"`
	UtilMin    float64 `json:"util_min"` // least-busy device utilisation
	UtilMax    float64 `json:"util_max"` // busiest device utilisation
}

// Knee finds the saturation knee of a throughput-vs-queue-depth curve: the
// point of maximum distance above the chord from the first to the last
// point of the normalised curve (the kneedle construction for a concave
// increasing curve). Past the knee, added queue depth buys tail latency
// instead of throughput. It returns the index into pts, or -1 when the
// curve is too short, flat, or linear to have one.
func Knee(pts []QDPoint) int {
	if len(pts) < 3 {
		return -1
	}
	first, last := pts[0], pts[len(pts)-1]
	dx := float64(last.QD - first.QD)
	dy := last.Throughput - first.Throughput
	if dx <= 0 || dy <= 0 {
		return -1
	}
	best, bestIdx := 0.0, -1
	for i := 1; i < len(pts)-1; i++ {
		// Normalised coordinates in [0,1] x [0,1]; the chord is y = x, and
		// a saturating curve bows above it by y - x.
		x := float64(pts[i].QD-first.QD) / dx
		y := (pts[i].Throughput - first.Throughput) / dy
		if d := y - x; d > best {
			best, bestIdx = d, i
		}
	}
	return bestIdx
}

// FleetCell is one (scheme, layout, chunk) cell of the fleet sweep: the QD
// curve plus the per-layout fragmentation and balance summary taken at the
// deepest queue depth.
type FleetCell struct {
	Scheme       string    `json:"scheme"`
	Layout       string    `json:"layout"`
	Devices      int       `json:"devices"`
	ChunkKB      int       `json:"chunk_kb"` // 0 for concat (no striping)
	Points       []QDPoint `json:"points"`
	KneeQD       int       `json:"knee_qd"` // 0 when no knee was detected
	Fanout       float64   `json:"fanout"`  // sub-requests per logical request
	AcrossRatio  float64   `json:"logical_across_ratio"`
	SubAcross    float64   `json:"sub_across_ratio"`
	SubUnaligned float64   `json:"sub_unaligned_ratio"`
}

// SaturationTable renders one row per fleet cell: knee, peak throughput,
// p99 at the knee, and the re-fragmentation ratios that explain the
// chunk-size sensitivity.
func SaturationTable(title string, cells []FleetCell, w io.Writer) {
	t := New(title,
		"scheme", "layout", "chunk", "knee QD", "peak req/s", "p99 rd @knee", "p99 wr @knee",
		"fanout", "across% log", "across% sub", "unaligned% sub")
	for _, c := range cells {
		kneeQD, p99r, p99w := "-", "-", "-"
		var peak float64
		for _, p := range c.Points {
			if p.Throughput > peak {
				peak = p.Throughput
			}
		}
		for _, p := range c.Points {
			if c.KneeQD != 0 && p.QD == c.KneeQD {
				kneeQD = fmt.Sprintf("%d", p.QD)
				p99r, p99w = F(p.ReadP99, 3), F(p.WriteP99, 3)
			}
		}
		chunk := "-"
		if c.ChunkKB > 0 {
			chunk = fmt.Sprintf("%d KB", c.ChunkKB)
		}
		t.Add(c.Scheme, c.Layout, chunk, kneeQD, F(peak, 0),
			p99r, p99w, F(c.Fanout, 2), Pct(c.AcrossRatio), Pct(c.SubAcross), Pct(c.SubUnaligned))
	}
	t.Note = "knee: kneedle point of the throughput-vs-QD curve; across%/unaligned%: request alignment classes before (log) and after (sub) layout splitting"
	t.Render(w)
}

// FleetDeviceRow is one device's line in the per-device balance table.
// The fleet package depends on sim (whose tests depend on report), so the
// renderer takes plain rows rather than a fleet.Result; callers adapt.
type FleetDeviceRow struct {
	Device      int
	SubRequests int64
	Sectors     int64
	BusyMs      float64
	Util        float64 // busy fraction over chips x makespan
	Erases      int64
	GCRuns      int64
}

// FleetDeviceTable renders the per-device balance view of one fleet replay:
// routed fragments, sectors, busy time and utilisation per device, with the
// utilisation spread and layout fan-out in the note line.
func FleetDeviceTable(title string, rows []FleetDeviceRow, fanout float64, w io.Writer) {
	t := New(title, "device", "sub-reqs", "sectors", "busy ms", "util", "erases", "GC runs")
	lo, hi := 0.0, 0.0
	for i, d := range rows {
		if i == 0 || d.Util < lo {
			lo = d.Util
		}
		if d.Util > hi {
			hi = d.Util
		}
		t.Add(fmt.Sprintf("%d", d.Device), N(d.SubRequests), N(d.Sectors),
			F(d.BusyMs, 1), Pct(d.Util), N(d.Erases), N(d.GCRuns))
	}
	t.Note = fmt.Sprintf("utilisation spread %s..%s; fan-out %.2f sub-requests/request",
		Pct(lo), Pct(hi), fanout)
	t.Render(w)
}

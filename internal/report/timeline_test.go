package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"across/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the timeline golden files")

// goldenSamples is a fixed three-window series shaped like a real replay:
// a calm first window, a GC-pressured middle (latency spike, queue buildup,
// rising WAF and debt), and a drained closing sample.
func goldenSamples() []obs.Sample {
	return []obs.Sample{
		{
			TimeMs: 50, Requests: 120, ReadMeanMs: 0.082, WriteMeanMs: 0.9015,
			QueueDepth: 2, WAF: 1.0, GCDebtPages: 0,
			ChipBusyFrac: []float64{0.42, 0.4405, 0.3995, 0.42},
		},
		{
			TimeMs: 100, Requests: 96, ReadMeanMs: 0.145, WriteMeanMs: 3.511,
			QueueDepth: 9, WAF: 1.372, GCDebtPages: 64,
			ChipBusyFrac: []float64{0.98, 1.0, 0.9105, 0.96},
		},
		{
			TimeMs: 131.7, Requests: 30, ReadMeanMs: 0.09, WriteMeanMs: 0.95,
			QueueDepth: 0, WAF: 1.285, GCDebtPages: 0,
			ChipBusyFrac: []float64{0.2195, 0.25, 0.1805, 0.2},
		},
	}
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/report -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestTimelineLatencyGolden(t *testing.T) {
	tbl := TimelineLatency(goldenSamples())
	for _, format := range []string{"text", "markdown", "csv"} {
		var sb strings.Builder
		tbl.RenderTo(&sb, format)
		checkGolden(t, "timeline_latency."+format+".golden", sb.String())
	}
}

func TestTimelineUtilisationGolden(t *testing.T) {
	tbl := TimelineUtilisation(goldenSamples())
	for _, format := range []string{"text", "markdown", "csv"} {
		var sb strings.Builder
		tbl.RenderTo(&sb, format)
		checkGolden(t, "timeline_utilisation."+format+".golden", sb.String())
	}
}

// TestTimelineUtilisationRagged covers series whose early samples carry no
// busy fractions (e.g. the anchoring window): missing chips render as 0%
// and the column count follows the widest sample.
func TestTimelineUtilisationRagged(t *testing.T) {
	samples := []obs.Sample{
		{TimeMs: 10},
		{TimeMs: 20, ChipBusyFrac: []float64{0.5, 0.25}},
	}
	var sb strings.Builder
	TimelineUtilisation(samples).RenderTo(&sb, "csv")
	out := sb.String()
	for _, want := range []string{"chip 0", "chip 1", "mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("ragged render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, ln := range lines {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if got, want := strings.Count(ln, ",")+1, 4; got != want {
			t.Errorf("row %q has %d columns, want %d", ln, got, want)
		}
	}
}

// TestTimelineLatencyEmpty renders an empty series without panicking.
func TestTimelineLatencyEmpty(t *testing.T) {
	var sb strings.Builder
	TimelineLatency(nil).RenderTo(&sb, "text")
	TimelineUtilisation(nil).RenderTo(&sb, "text")
	if sb.Len() == 0 {
		t.Error("empty timeline rendered nothing at all (headers expected)")
	}
}

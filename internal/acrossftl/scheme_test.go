package acrossftl

import (
	"math/rand"
	"testing"

	"across/internal/ssdconf"
	"across/internal/trace"
)

func tinyScheme(t *testing.T) (*Scheme, *ssdconf.Config) {
	t.Helper()
	c := ssdconf.Tiny()
	s, err := New(&c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, &c
}

func mustWrite(t *testing.T, s *Scheme, off int64, count int, now float64) {
	t.Helper()
	r := trace.Request{Time: now, Op: trace.OpWrite, Offset: off, Count: count}
	if _, err := s.Write(r, now); err != nil {
		t.Fatalf("Write(%v): %v", r, err)
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("after Write(%v): %v", r, err)
	}
}

func mustRead(t *testing.T, s *Scheme, off int64, count int, now float64) {
	t.Helper()
	r := trace.Request{Time: now, Op: trace.OpRead, Offset: off, Count: count}
	if _, err := s.Read(r, now); err != nil {
		t.Fatalf("Read(%v): %v", r, err)
	}
}

// TestPaperFigure5DirectWrite: write(1028K, 6K) is remapped onto a single
// SSD page — one flash program instead of the conventional two.
func TestPaperFigure5DirectWrite(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0) // write(1028K, 6K): sectors [2056, 2068)
	if got := s.Dev.Count.DataWrites; got != 1 {
		t.Fatalf("flash programs = %d, want 1 (the re-aligned area)", got)
	}
	if got := s.Dev.Count.DataReads; got != 0 {
		t.Fatalf("flash reads = %d, want 0", got)
	}
	st := s.Stats()
	if st.DirectWrites != 1 || st.AcrossWrites != 1 {
		t.Fatalf("stats = %+v, want one direct across write", st)
	}
	// Two-level table state mirrors Fig 5: AIdx on LPN 128, entry Off=8 Size=12.
	a, ok := s.areaAt(128)
	if !ok {
		t.Fatal("no area keyed at LPN 128")
	}
	if a.e.Off != 8 || a.e.Size != 12 {
		t.Fatalf("AMT entry = %+v, want Off=8 Size=12", a.e)
	}
}

// TestPaperFigure7DirectRead: read(1030K, 4K) inside the area costs one read.
func TestPaperFigure7DirectRead(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0)
	mustRead(t, s, 2060, 8, 1) // read(1030K, 4K): [2060, 2068) within area
	if got := s.Dev.Count.DataReads; got != 1 {
		t.Fatalf("flash reads = %d, want 1 (direct read)", got)
	}
	st := s.Stats()
	if st.DirectReads != 1 || st.MergedReads != 0 {
		t.Fatalf("stats = %+v, want one direct read", st)
	}
}

// TestPaperFigure7MergedRead: read(1030K, 8K) exceeds the area, so the area
// page and the normal page are both read — two reads, same as conventional.
func TestPaperFigure7MergedRead(t *testing.T) {
	s, _ := tinyScheme(t)
	// Normal data for page 129 exists (PPN=100 in the figure).
	mustWrite(t, s, 129*16, 16, 0)
	mustWrite(t, s, 2056, 12, 1) // the across area (1028K, 6K)
	before := s.Dev.Count.DataReads
	mustRead(t, s, 2060, 16, 2) // read(1030K, 8K): [2060, 2076)
	if got := s.Dev.Count.DataReads - before; got != 2 {
		t.Fatalf("flash reads = %d, want 2 (area + normal page)", got)
	}
	st := s.Stats()
	if st.MergedReads != 1 {
		t.Fatalf("stats = %+v, want one merged read", st)
	}
	if st.MergedReadFlashReads != 2 {
		t.Fatalf("merged-read flash reads = %d, want 2", st.MergedReadFlashReads)
	}
}

// TestPaperFigure6AMerge: updating (1030K, 6K) over the (1028K, 6K) area
// merges to a 16-sector area: one read of the old area page, one program.
func TestPaperFigure6AMerge(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0) // area [2056, 2068), Off=8 Size=12
	r0, w0 := s.Dev.Count.DataReads, s.Dev.Count.DataWrites
	mustWrite(t, s, 2060, 12, 1) // write(1030K, 6K): [2060, 2072)
	if got := s.Dev.Count.DataReads - r0; got != 1 {
		t.Fatalf("merge reads = %d, want 1 (old area page)", got)
	}
	if got := s.Dev.Count.DataWrites - w0; got != 1 {
		t.Fatalf("merge programs = %d, want 1", got)
	}
	a, ok := s.areaAt(128)
	if !ok {
		t.Fatal("area lost after merge")
	}
	if a.e.Off != 8 || a.e.Size != 16 {
		t.Fatalf("merged entry = %+v, want Off=8 Size=16 (12 -> 16 sectors)", a.e)
	}
	st := s.Stats()
	if st.ProfitableAMerge != 1 || st.UnprofitableAMerge != 0 {
		t.Fatalf("stats = %+v, want one profitable AMerge", st)
	}
	// The superseded area page is now invalid.
	_, _, invalid := s.Dev.Array.CountStates()
	if invalid != 1 {
		t.Fatalf("invalid pages = %d, want 1", invalid)
	}
}

// TestPaperFigure6Rollback: write(1030K, 8K) grows the union past one page,
// so the area rolls back into normally mapped pages.
func TestPaperFigure6Rollback(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0) // area [2056, 2068)
	r0, w0 := s.Dev.Count.DataReads, s.Dev.Count.DataWrites
	mustWrite(t, s, 2060, 16, 1) // write(1030K, 8K): union [2056, 2076) = 20 sectors
	if _, ok := s.areaAt(128); ok {
		t.Fatal("area survived rollback")
	}
	if s.AMT.Live() != 0 {
		t.Fatalf("AMT live = %d, want 0", s.AMT.Live())
	}
	st := s.Stats()
	if st.Rollbacks != 1 {
		t.Fatalf("stats = %+v, want one rollback", st)
	}
	// Cost: read old area page (pages 128/129 were never normally written,
	// so no RMW reads), program both pages normally.
	if got := s.Dev.Count.DataReads - r0; got != 1 {
		t.Fatalf("rollback reads = %d, want 1", got)
	}
	if got := s.Dev.Count.DataWrites - w0; got != 2 {
		t.Fatalf("rollback programs = %d, want 2", got)
	}
	// Both pages are now normally mapped.
	if s.PMT.PPNOf(128) < 0 || s.PMT.PPNOf(129) < 0 {
		t.Fatal("rollback did not install normal mappings")
	}
}

// TestUnprofitableAMerge: a small single-page write overlapping the area
// merges too, but is counted as unprofitable (a conventional FTL would also
// have used one program).
func TestUnprofitableAMerge(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0) // area [2056, 2068)
	mustWrite(t, s, 2058, 4, 1)  // 2 KB write inside page 128, overlapping area
	st := s.Stats()
	if st.UnprofitableAMerge != 1 || st.ProfitableAMerge != 0 {
		t.Fatalf("stats = %+v, want one unprofitable AMerge", st)
	}
	a, ok := s.areaAt(128)
	if !ok {
		t.Fatal("area lost")
	}
	if a.e.Off != 8 || a.e.Size != 12 {
		t.Fatalf("entry = %+v; union of [2056,2068) and [2058,2062) is unchanged", a.e)
	}
}

// TestSupersede: an aligned write covering both pages replaces the area
// outright — no rescue reads, area dropped.
func TestSupersede(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0)
	r0 := s.Dev.Count.DataReads
	mustWrite(t, s, 2048, 32, 1) // aligned write of pages 128+129
	if _, ok := s.areaAt(128); ok {
		t.Fatal("area survived a fully covering write")
	}
	if got := s.Dev.Count.DataReads - r0; got != 0 {
		t.Fatalf("supersede caused %d reads, want 0", got)
	}
	st := s.Stats()
	if st.Superseded != 1 {
		t.Fatalf("stats = %+v, want one superseded area", st)
	}
}

// TestAcrossWriteSavesOneProgramVersusBaseline is the headline claim: for
// the same across-page write, Across-FTL programs one page, baseline two.
func TestAcrossWriteSavesOneProgramVersusBaseline(t *testing.T) {
	s, _ := tinyScheme(t)
	for i := 0; i < 5; i++ {
		mustWrite(t, s, int64(200*i)+8, 12, float64(i))
	}
	if got := s.Dev.Count.DataWrites; got != 5 {
		t.Fatalf("Across-FTL programs = %d, want 5 (baseline would use 10)", got)
	}
}

func TestKeyCollisionDisjointAcrossWrites(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2058, 12, 0) // area A: [2058, 2070)
	// A second, disjoint across write on the same page pair (key 128):
	// [2052, 2056) ∪ ... must reconcile with A because PMT has one AIdx.
	mustWrite(t, s, 2062, 12, 1) // overlaps A: AMerge
	a, ok := s.areaAt(128)
	if !ok {
		t.Fatal("no area after same-key writes")
	}
	if a.e.Off != 10 || a.e.End() != 26 {
		t.Fatalf("entry = %+v, want union [2058, 2074) -> Off=10 End=26", a.e)
	}
}

func TestAdjacentAreasCanCoexist(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0) // area keyed 128: [2056, 2068)
	mustWrite(t, s, 2072, 12, 1) // area keyed 129: [2072, 2084), disjoint
	if s.AMT.Live() != 2 {
		t.Fatalf("live areas = %d, want 2", s.AMT.Live())
	}
	// Overlapping the second area only merges the second.
	mustWrite(t, s, 2074, 12, 2)
	if s.AMT.Live() != 2 {
		t.Fatalf("live areas after merge = %d, want 2", s.AMT.Live())
	}
	if _, ok := s.areaAt(128); !ok {
		t.Fatal("area 128 disturbed by neighbour merge")
	}
}

func TestOverlappingNeighbourAreasReconcile(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0) // area keyed 128: [2056, 2068)
	// Across write on pages 129/130 overlapping area 128's tail is
	// impossible (area ends at 2068, page 129 ends at 2080); instead make
	// an across write [2076, 2088) keyed 129, then overlap both with one
	// large write and confirm a clean rollback of everything.
	mustWrite(t, s, 2076, 12, 1)
	if s.AMT.Live() != 2 {
		t.Fatalf("live areas = %d, want 2", s.AMT.Live())
	}
	mustWrite(t, s, 2056, 32, 2) // covers area 128 fully, overlaps area 129
	if s.AMT.Live() != 0 {
		t.Fatalf("live areas = %d, want 0 after covering write", s.AMT.Live())
	}
}

func TestReadPlanCoversExactlyWrittenSectors(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 129*16, 16, 0)                                               // normal page 129 first
	mustWrite(t, s, 2056, 12, 1)                                                 // then the area
	plan := s.planRead(trace.Request{Op: trace.OpRead, Offset: 2050, Count: 24}) // [2050, 2074)
	// Expected coverage: [2050,2056) unwritten -> absent; [2056,2068) area;
	// [2068,2074) normal page 129.
	var areaSpan, normalSpan *Source
	for i := range plan {
		if plan[i].FromArea {
			areaSpan = &plan[i]
		} else {
			normalSpan = &plan[i]
		}
	}
	if areaSpan == nil || areaSpan.Start != 2056 || areaSpan.End != 2068 {
		t.Fatalf("area source = %+v, want [2056,2068)", areaSpan)
	}
	if normalSpan == nil || normalSpan.Start != 2068 || normalSpan.End != 2074 || normalSpan.LPN != 129 {
		t.Fatalf("normal source = %+v, want [2068,2074) from LPN 129", normalSpan)
	}
}

// TestRandomWorkloadIntegrity hammers a small logical region with random
// reads and writes of every class and checks, after every operation, the
// full two-level-mapping audit plus read-plan sanity: plans must cover
// exactly requested∩written sectors, without overlap, and source any sector
// covered by a live area from that area's page.
func TestRandomWorkloadIntegrity(t *testing.T) {
	s, c := tinyScheme(t)
	rng := rand.New(rand.NewSource(42))
	written := map[int64]bool{}
	region := c.LogicalSectors() / 2
	for op := 0; op < 3000; op++ {
		off := rng.Int63n(region - 40)
		count := rng.Intn(36) + 1
		now := float64(op)
		if rng.Intn(100) < 55 {
			r := trace.Request{Op: trace.OpWrite, Offset: off, Count: count, Time: now}
			if _, err := s.Write(r, now); err != nil {
				t.Fatalf("op %d Write(%v): %v", op, r, err)
			}
			// A full-page program persists the whole page; partial writes
			// of mapped pages RMW the full page too. Sectors become
			// "written" (i.e. readable from flash) page-wise for normal
			// writes, but only the written range for pure area writes. For
			// the oracle we track the conservative truth: the exact range.
			for sec := off; sec < off+int64(count); sec++ {
				written[sec] = true
			}
			if err := s.Audit(); err != nil {
				t.Fatalf("op %d audit: %v", op, err)
			}
		} else {
			r := trace.Request{Op: trace.OpRead, Offset: off, Count: count, Time: now}
			plan := s.planRead(r)
			covered := map[int64]int{}
			for _, src := range plan {
				if src.Start >= src.End {
					t.Fatalf("op %d: empty source %+v", op, src)
				}
				if src.Start < off || src.End > off+int64(count) {
					t.Fatalf("op %d: source %+v outside request [%d,%d)", op, src, off, off+int64(count))
				}
				for sec := src.Start; sec < src.End; sec++ {
					covered[sec]++
				}
			}
			for sec, n := range covered {
				if n > 1 {
					t.Fatalf("op %d: sector %d covered %d times", op, sec, n)
				}
			}
			// Every explicitly written sector in range must be covered.
			for sec := off; sec < off+int64(count); sec++ {
				if written[sec] && covered[sec] == 0 {
					t.Fatalf("op %d: written sector %d not covered by plan", op, sec)
				}
			}
			// Sectors covered by a live area must be sourced from it.
			for _, src := range plan {
				for sec := src.Start; sec < src.End; sec++ {
					lpn := sec / int64(s.SPP)
					fromArea := false
					for _, key := range []int64{lpn - 1, lpn} {
						if a, ok := s.areaAt(key); ok {
							sp := s.spanOf(a.e)
							if sec >= sp.Start && sec < sp.End {
								fromArea = true
							}
						}
					}
					if fromArea != src.FromArea {
						t.Fatalf("op %d: sector %d fromArea=%v but source %+v", op, sec, fromArea, src)
					}
				}
			}
			if _, err := s.Read(r, now); err != nil {
				t.Fatalf("op %d Read: %v", op, err)
			}
		}
	}
	if s.Stats().AreasTouched() == 0 {
		t.Fatal("random workload never exercised the across-page path")
	}
	if s.Dev.Array.TotalErases() == 0 {
		t.Fatal("random workload never triggered GC")
	}
}

func TestGCMigratesAreasCoherently(t *testing.T) {
	s, c := tinyScheme(t)
	// Create a handful of long-lived areas, then churn elsewhere until GC
	// must have migrated them at least once; the audit catches any broken
	// AMT->flash link.
	for i := int64(0); i < 4; i++ {
		mustWrite(t, s, i*32+8, 12, float64(i))
	}
	base := c.LogicalSectors() / 2
	for i := 0; i < 4000; i++ {
		off := base + int64(i%24)*16
		mustWrite(t, s, off, 16, float64(i+10))
	}
	if s.Dev.Array.TotalErases() == 0 {
		t.Skip("no GC in this geometry")
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("audit after GC churn: %v", err)
	}
	if s.AMT.Live() != 4 {
		t.Fatalf("areas lost: live = %d, want 4", s.AMT.Live())
	}
	// Each area still serves a direct read.
	st0 := s.Stats().DirectReads
	for i := int64(0); i < 4; i++ {
		mustRead(t, s, i*32+8, 12, 1e6)
	}
	if got := s.Stats().DirectReads - st0; got != 4 {
		t.Fatalf("direct reads after GC = %d, want 4", got)
	}
}

func TestTableBytesGrowsWithAreas(t *testing.T) {
	s, c := tinyScheme(t)
	base := s.TableBytes()
	wantBase := c.LogicalPages() * int64(c.MapEntryBytes+c.AIdxBytes)
	if base != wantBase {
		t.Fatalf("TableBytes = %d, want %d before any area", base, wantBase)
	}
	mustWrite(t, s, 2056, 12, 0)
	if got := s.TableBytes(); got != base+int64(c.AMTEntryBytes) {
		t.Fatalf("TableBytes = %d, want %d after one area", got, base+int64(c.AMTEntryBytes))
	}
}

func TestStatsDerivedMetrics(t *testing.T) {
	st := Stats{DirectWrites: 70, ProfitableAMerge: 20, UnprofitableAMerge: 10, Rollbacks: 10}
	if got := st.AreasTouched(); got != 100 {
		t.Fatalf("AreasTouched = %d, want 100", got)
	}
	if got := st.RollbackRatio(); got < 0.0909 || got > 0.0910 {
		t.Fatalf("RollbackRatio = %v, want 10/110", got)
	}
	d, p, u := st.ComponentShares()
	if d != 0.7 || p != 0.2 || u != 0.1 {
		t.Fatalf("shares = %v/%v/%v", d, p, u)
	}
	var zero Stats
	if zero.RollbackRatio() != 0 {
		t.Fatal("zero stats RollbackRatio != 0")
	}
	d, p, u = zero.ComponentShares()
	if d != 0 || p != 0 || u != 0 {
		t.Fatal("zero stats shares != 0")
	}
}

func TestWriteRejectsInvalidRequests(t *testing.T) {
	s, c := tinyScheme(t)
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: c.LogicalSectors(), Count: 4}, 0); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: -1, Count: 4}, 0); err == nil {
		t.Fatal("negative-offset read accepted")
	}
}

func TestResetStatsClearsAcrossCensus(t *testing.T) {
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0)
	s.ResetStats()
	if s.Stats().DirectWrites != 0 || s.CMTStats().Lookups != 0 {
		t.Fatal("ResetStats left residue")
	}
	// State (not stats) must survive.
	if _, ok := s.areaAt(128); !ok {
		t.Fatal("ResetStats destroyed area state")
	}
}

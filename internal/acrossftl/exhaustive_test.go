package acrossftl

import (
	"testing"

	"across/internal/ssdconf"
	"across/internal/trace"
)

// TestExhaustivePairsOverThreePages enumerates every ordered pair of writes
// whose extents lie within a three-page window (all offsets × all sizes up
// to one page), runs each pair on a fresh scheme, and audits the two-level
// mapping after every operation. This systematically covers every dispatch
// combination — direct write, key collision, AMerge (profitable and not),
// ARollback, supersede, plain RMW — including the adjacency corner cases
// randomised testing hits only occasionally.
func TestExhaustivePairsOverThreePages(t *testing.T) {
	if testing.Short() {
		t.Skip("enumerates ~340k write pairs")
	}
	c := ssdconf.Tiny()
	spp := c.SectorsPerPage() // 16
	window := int64(3 * spp)  // sectors [0, 48)
	base := int64(4 * spp)    // keep clear of sector 0 edge effects

	type ext struct {
		off   int64
		count int
	}
	var exts []ext
	for off := int64(0); off < window; off++ {
		for count := 1; count <= spp && off+int64(count) <= window; count++ {
			exts = append(exts, ext{base + off, count})
		}
	}
	t.Logf("enumerating %d x %d write pairs", len(exts), len(exts))

	pairs := 0
	for _, e1 := range exts {
		// One scheme per first-write, replayed against every second write:
		// rebuilding the scheme for each pair would dominate runtime, so
		// instead reconstruct only when the first write changes and verify
		// the second writes independently on clones of the state by
		// re-running the first write each time.
		for _, e2 := range exts {
			s, err := New(&c)
			if err != nil {
				t.Fatal(err)
			}
			w1 := trace.Request{Op: trace.OpWrite, Offset: e1.off, Count: e1.count}
			w2 := trace.Request{Op: trace.OpWrite, Offset: e2.off, Count: e2.count, Time: 1}
			if _, err := s.Write(w1, 0); err != nil {
				t.Fatalf("pair (%v,%v): first write: %v", e1, e2, err)
			}
			if _, err := s.Write(w2, 1); err != nil {
				t.Fatalf("pair (%v,%v): second write: %v", e1, e2, err)
			}
			if err := s.Audit(); err != nil {
				t.Fatalf("pair (%v,%v): audit: %v", e1, e2, err)
			}
			// Read plans over the whole window must cover written sectors
			// exactly once and never source area-covered sectors from
			// normal pages.
			plan := s.planRead(trace.Request{Op: trace.OpRead, Offset: base, Count: int(window)})
			covered := map[int64]int{}
			for _, src := range plan {
				for sec := src.Start; sec < src.End; sec++ {
					covered[sec]++
					if covered[sec] > 1 {
						t.Fatalf("pair (%v,%v): sector %d double-covered", e1, e2, sec)
					}
				}
			}
			for _, e := range []ext{e1, e2} {
				for sec := e.off; sec < e.off+int64(e.count); sec++ {
					if covered[sec] == 0 {
						t.Fatalf("pair (%v,%v): written sector %d not covered", e1, e2, sec)
					}
				}
			}
			pairs++
		}
	}
	t.Logf("verified %d pairs", pairs)
}

package acrossftl

// Stats is the across-page operation census of Fig 8: the write-path
// component distribution (a Direct-write creates a fresh area; a
// Profitable-AMerge is triggered by an across-page request and still saves a
// flash program over the conventional FTL; an Unprofitable-AMerge is
// triggered by a non-across request and saves nothing) plus the rollback and
// read-path counters discussed in §4.2.1.
type Stats struct {
	DirectWrites       int64 // across write with no existing overlapping area
	ProfitableAMerge   int64 // AMerge triggered by an across-page request
	UnprofitableAMerge int64 // AMerge triggered by any other request
	Rollbacks          int64 // areas dissolved by ARollback
	Superseded         int64 // areas dropped because an update fully covered them

	DirectReads          int64 // across reads served entirely from one area page
	MergedReads          int64 // across reads needing area + normal pages
	MergedReadFlashReads int64 // flash reads issued by merged reads

	AcrossWrites int64 // across-page write requests serviced
	AcrossReads  int64 // across-page read requests serviced
}

// AreasTouched returns the number of across-area write events (the
// denominator of Fig 8b's distribution).
func (s Stats) AreasTouched() int64 {
	return s.DirectWrites + s.ProfitableAMerge + s.UnprofitableAMerge
}

// RollbackRatio is Fig 8(a): rollbacks over all across-page areas acted on.
func (s Stats) RollbackRatio() float64 {
	n := s.AreasTouched() + s.Rollbacks
	if n == 0 {
		return 0
	}
	return float64(s.Rollbacks) / float64(n)
}

// ComponentShares returns the Fig 8(b) distribution (direct, profitable,
// unprofitable) as fractions of across-area writes.
func (s Stats) ComponentShares() (direct, profitable, unprofitable float64) {
	n := s.AreasTouched()
	if n == 0 {
		return 0, 0, 0
	}
	return float64(s.DirectWrites) / float64(n),
		float64(s.ProfitableAMerge) / float64(n),
		float64(s.UnprofitableAMerge) / float64(n)
}

package acrossftl

import (
	"fmt"

	"across/internal/snapshot"
)

// SnapshotState implements snapshot.Snapshotter: Base plus the across-page
// mapping table, its DRAM cache, the flash map store, the policy options
// and the cumulative statistics. Per-request scratch buffers are excluded.
func (s *Scheme) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("scheme:Across-FTL")
	if err := s.SnapshotBase(enc); err != nil {
		return err
	}
	if err := s.AMT.SnapshotState(enc); err != nil {
		return err
	}
	if err := s.cmt.SnapshotState(enc); err != nil {
		return err
	}
	if err := s.ms.SnapshotState(enc); err != nil {
		return err
	}
	enc.I64(int64(s.opts.AMTCachePages))
	enc.Bool(s.opts.DisableAMerge)
	st := &s.stats
	enc.I64(st.DirectWrites)
	enc.I64(st.ProfitableAMerge)
	enc.I64(st.UnprofitableAMerge)
	enc.I64(st.Rollbacks)
	enc.I64(st.Superseded)
	enc.I64(st.DirectReads)
	enc.I64(st.MergedReads)
	enc.I64(st.MergedReadFlashReads)
	enc.I64(st.AcrossWrites)
	enc.I64(st.AcrossReads)
	return nil
}

// RestoreState implements snapshot.Snapshotter. The receiver must be built
// with the same options as the snapshotted scheme: AMTCachePages sizes the
// cache (enforced structurally by the CMT shape check) and DisableAMerge is
// a pure policy bit, restored directly.
func (s *Scheme) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("scheme:Across-FTL")
	if err := s.RestoreBase(dec); err != nil {
		return err
	}
	if err := s.AMT.RestoreState(dec); err != nil {
		return err
	}
	if err := s.cmt.RestoreState(dec); err != nil {
		return err
	}
	if err := s.ms.RestoreState(dec); err != nil {
		return err
	}
	amtCachePages := dec.I64()
	disableAMerge := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if amtCachePages != int64(s.opts.AMTCachePages) {
		return fmt.Errorf("acrossftl: snapshot taken with AMTCachePages %d, receiver built with %d", amtCachePages, s.opts.AMTCachePages)
	}
	s.opts.DisableAMerge = disableAMerge
	s.stats = Stats{
		DirectWrites:         dec.I64(),
		ProfitableAMerge:     dec.I64(),
		UnprofitableAMerge:   dec.I64(),
		Rollbacks:            dec.I64(),
		Superseded:           dec.I64(),
		DirectReads:          dec.I64(),
		MergedReads:          dec.I64(),
		MergedReadFlashReads: dec.I64(),
		AcrossWrites:         dec.I64(),
		AcrossReads:          dec.I64(),
	}
	return dec.Err()
}

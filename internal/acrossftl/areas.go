package acrossftl

import (
	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/mapping"
)

// span is a half-open absolute sector interval [Start, End).
type span struct {
	Start, End int64
}

func (sp span) empty() bool            { return sp.End <= sp.Start }
func (sp span) len() int64             { return sp.End - sp.Start }
func (sp span) intersects(o span) bool { return sp.Start < o.End && o.Start < sp.End }
func (sp span) contains(o span) bool   { return sp.Start <= o.Start && o.End <= sp.End }

func unionSpan(a, b span) span {
	if a.Start > b.Start {
		a.Start = b.Start
	}
	if a.End < b.End {
		a.End = b.End
	}
	return a
}

// gaps returns the sub-intervals of window not covered by any of the given
// intervals — the sectors a merge must fetch from normally mapped pages.
func gaps(window span, covered []span) []span {
	return appendGaps(nil, window, covered)
}

// appendGaps appends the ascending, disjoint uncovered sub-intervals of
// window to dst and returns the extended slice. The sweep is quadratic in
// len(covered), which is at most a handful of areas per request, and does
// no allocation or sorting — the replay hot path calls it per request.
func appendGaps(dst []span, window span, covered []span) []span {
	cur := window.Start
	for cur < window.End {
		// Advance cur through every covering interval that contains it.
		for advanced := true; advanced; {
			advanced = false
			for _, c := range covered {
				if c.Start <= cur && c.End > cur {
					cur = c.End
					advanced = true
				}
			}
		}
		if cur >= window.End {
			break
		}
		// A gap starts at cur and runs to the nearest covering start.
		gapEnd := window.End
		for _, c := range covered {
			if c.Start > cur && c.Start < gapEnd {
				gapEnd = c.Start
			}
		}
		dst = append(dst, span{cur, gapEnd})
		cur = gapEnd
	}
	return dst
}

// hasGaps reports whether any sector of window is uncovered — the
// allocation-free form rollback uses per affected page.
func hasGaps(window span, covered []span) bool {
	cur := window.Start
	for advanced := true; advanced; {
		advanced = false
		for _, c := range covered {
			if c.Start <= cur && c.End > cur {
				cur = c.End
				advanced = true
			}
		}
	}
	return cur < window.End
}

// insertSortedUnique inserts v into an ascending slice unless present,
// returning the extended slice. The slices involved hold at most a few
// logical page numbers, so linear insertion beats map-and-sort without
// allocating.
func insertSortedUnique(dst []int64, v int64) []int64 {
	i := len(dst)
	for i > 0 && dst[i-1] > v {
		i--
	}
	if i > 0 && dst[i-1] == v {
		return dst
	}
	dst = append(dst, 0)
	copy(dst[i+1:], dst[i:])
	dst[i] = v
	return dst
}

// area pairs a live AMT index with its entry.
type area struct {
	idx int32
	e   mapping.AMTEntry
}

// spanOf returns the absolute sector interval an area covers.
func (s *Scheme) spanOf(e mapping.AMTEntry) span {
	base := e.LPN * int64(s.SPP)
	return span{base + int64(e.Off), base + int64(e.End())}
}

// reqSpan returns the absolute sector interval of a request span [off, end).
func reqSpan(off, end int64) span { return span{off, end} }

// areaAt returns the live area keyed at lpn, if any.
func (s *Scheme) areaAt(lpn int64) (area, bool) {
	if lpn < 0 || lpn >= s.PMT.Len() {
		return area{}, false
	}
	idx := s.PMT.AIdxOf(lpn)
	if idx == mapping.NoAIdx {
		return area{}, false
	}
	return area{idx: idx, e: s.AMT.Get(idx)}, true
}

// overlapping collects the live areas whose sector range intersects w.
// An area keyed at LPN L covers sectors inside pages L and L+1, so any area
// intersecting w must be keyed between firstLPN(w)-1 and lastLPN(w).
// The returned slice aliases a per-scheme scratch buffer: it is valid until
// the next overlapping/conflicting call and must not be retained.
func (s *Scheme) overlapping(w span) []area {
	first := w.Start/int64(s.SPP) - 1
	last := (w.End - 1) / int64(s.SPP)
	out := s.areasBuf[:0]
	for lpn := first; lpn <= last; lpn++ {
		if a, ok := s.areaAt(lpn); ok && s.spanOf(a.e).intersects(w) {
			out = append(out, a)
		}
	}
	s.areasBuf = out
	return out
}

// conflicting returns the areas an across write keyed at key must reconcile
// with: every sector-overlapping area plus (key collision) a disjoint area
// already keyed at the same first LPN, since the PMT holds one AIdx per LPN.
func (s *Scheme) conflicting(w span, key int64) []area {
	out := s.overlapping(w)
	if a, ok := s.areaAt(key); ok {
		seen := false
		for _, o := range out {
			if o.idx == a.idx {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, a)
			s.areasBuf = out
		}
	}
	return out
}

// dissolve removes an area from both mapping levels and invalidates its
// physical page. The caller has already secured any data it still needs.
// The entry is re-fetched by index: a garbage collection triggered by an
// allocation earlier in the same write path may have migrated the area's
// page, so any APPN snapshot taken before that allocation is stale.
func (s *Scheme) dissolve(idx int32) error {
	e := s.AMT.Get(idx)
	if err := s.Dev.Invalidate(e.APPN); err != nil {
		return err
	}
	s.PMT.ClearAIdx(e.LPN)
	s.AMT.Free(idx)
	return nil
}

// createArea installs a new across-page area covering w, programs its data
// page at time issue, and returns the program completion time. The caller
// charges the AMT cache touch.
func (s *Scheme) createArea(w span, issue float64) (int32, float64, error) {
	key := w.Start / int64(s.SPP)
	base := key * int64(s.SPP)
	idx := s.AMT.Alloc(mapping.AMTEntry{
		LPN:  key,
		Off:  int32(w.Start - base),
		Size: int32(w.len()),
		APPN: flash.NilPPN,
	})
	ppn, err := s.Al.AllocPage(issue)
	if err != nil {
		s.AMT.Free(idx)
		return 0, issue, err
	}
	tag := flash.Tag{
		Kind: ftl.TagAcross,
		Key:  int64(idx),
		Aux:  packAux(key, int32(w.Start-base), int32(w.len())),
	}
	done, err := s.Dev.Program(ppn, tag, issue, ftl.OpData)
	if err != nil {
		return 0, issue, err
	}
	s.AMT.SetAPPN(idx, ppn)
	s.PMT.SetAIdx(key, idx)
	return idx, done, nil
}

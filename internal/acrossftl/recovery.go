package acrossftl

import (
	"fmt"

	"across/internal/cache"
	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/mapping"
)

// Across-area pages carry their full mapping entry in the OOB area so the
// two-level table can be rebuilt after power loss without any journalling:
// Key holds the AMT index and Aux packs (first LPN, Off, Size). Off and
// Size fit a byte each for any page size up to 128 KB.
func packAux(lpn int64, off, size int32) int64 {
	return lpn<<16 | int64(off)<<8 | int64(size)
}

func unpackAux(aux int64) (lpn int64, off, size int32) {
	return aux >> 16, int32(aux >> 8 & 0xFF), int32(aux & 0xFF)
}

// Recover mounts Across-FTL over a crashed device: partially written blocks
// are sealed, then one OOB scan rebuilds the PMT (TagData pages), the AMT
// (TagAcross pages, at their original indices so GC keys stay valid), and
// drops stale spilled translation pages (TagMap) whose contents the rebuilt
// in-DRAM table supersedes.
func Recover(dev *ftl.Device) (*Scheme, error) {
	return RecoverWithOptions(dev, Options{})
}

// RecoverWithOptions is Recover with explicit ablation options.
func RecoverWithOptions(dev *ftl.Device, opts Options) (*Scheme, error) {
	base, err := ftl.RecoverBase(dev)
	if err != nil {
		return nil, err
	}
	conf := dev.Conf
	if opts.AMTCachePages == 0 {
		opts.AMTCachePages = int(float64(conf.DRAMBudget()) * DefaultAMTCacheFrac / float64(conf.PageBytes))
	}
	if opts.AMTCachePages < 2 {
		opts.AMTCachePages = 2
	}
	s := &Scheme{
		Base: base,
		AMT:  mapping.NewAMT(),
		cmt:  cache.NewCMT(conf.PageBytes/conf.AMTEntryBytes, opts.AMTCachePages),
		opts: opts,
	}
	s.ms = ftl.NewMapStore(s.Dev, s.Al)
	s.Al.SetMigrate(s.migrate)

	geo := dev.Array.Geo
	var stale []flash.PPN
	for b := flash.BlockID(0); int64(b) < geo.TotalBlocks(); b++ {
		for _, p := range dev.Array.ValidPages(b) {
			tag := dev.Array.TagOf(p)
			switch tag.Kind {
			case ftl.TagData:
				if old := s.PMT.SetPPN(tag.Key, p); old != flash.NilPPN {
					return nil, fmt.Errorf("acrossftl: recovery found two valid pages for lpn %d", tag.Key)
				}
			case ftl.TagAcross:
				lpn, off, size := unpackAux(tag.Aux)
				idx := int32(tag.Key)
				if s.AMT.InUse(idx) {
					return nil, fmt.Errorf("acrossftl: recovery found two areas with index %d", idx)
				}
				s.AMT.AllocAt(idx, mapping.AMTEntry{LPN: lpn, Off: off, Size: size, APPN: p})
				if s.PMT.AIdxOf(lpn) != mapping.NoAIdx {
					return nil, fmt.Errorf("acrossftl: recovery found two areas keyed at lpn %d", lpn)
				}
				s.PMT.SetAIdx(lpn, idx)
			case ftl.TagMap:
				// The AMT is rebuilt in DRAM; the spilled copy is stale.
				stale = append(stale, p)
			default:
				return nil, fmt.Errorf("acrossftl: recovery met tag kind %d", tag.Kind)
			}
		}
	}
	for _, p := range stale {
		if err := dev.Invalidate(p); err != nil {
			return nil, fmt.Errorf("acrossftl: dropping stale translation page: %w", err)
		}
	}
	if err := s.Audit(); err != nil {
		return nil, fmt.Errorf("acrossftl: post-recovery audit: %w", err)
	}
	return s, nil
}

package acrossftl

import (
	"across/internal/clock"
	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/obs"
	"across/internal/trace"
)

// Write implements ftl.Scheme. The dispatch follows §3.3.1:
//
//   - an across-page write with no conflicting area becomes a Direct write:
//     one flash program into a freshly remapped area (Fig 5);
//   - a write that overlaps existing area(s) is folded in with AMerge while
//     the merged extent still fits one page (Fig 6 middle), profitable when
//     the trigger is itself across-page, unprofitable otherwise;
//   - otherwise ARollback dissolves the area(s) and writes everything back
//     through the normal page mapping (Fig 6 right);
//   - a non-across write that fully covers the area(s) simply supersedes
//     them and proceeds normally;
//   - anything that touches no area takes the conventional RMW path.
func (s *Scheme) Write(r trace.Request, now float64) (float64, error) {
	if err := s.CheckRequest(r); err != nil {
		return now, err
	}
	w := reqSpan(r.Offset, r.End())
	isAcross := r.Classify(s.SPP) == trace.ClassAcross
	if isAcross {
		s.stats.AcrossWrites++
	}

	var confl []area
	if isAcross {
		confl = s.conflicting(w, r.FirstLPN(s.SPP))
	} else {
		confl = s.overlapping(w)
	}

	join := clock.NewJoin(now)
	var mapDelay float64
	var err error
	switch {
	case len(confl) == 0 && isAcross:
		mapDelay, err = s.directWrite(w, now, &join)
	case len(confl) == 0:
		mapDelay, err = s.normalWrite(r, now, &join)
	default:
		union := w
		coveredAll := true
		for _, a := range confl {
			sp := s.spanOf(a.e)
			union = unionSpan(union, sp)
			if !w.contains(sp) {
				coveredAll = false
			}
		}
		switch {
		case coveredAll && !isAcross:
			mapDelay, err = s.supersedeAndWrite(r, confl, now, &join)
		case union.len() <= int64(s.SPP) && !s.opts.DisableAMerge:
			mapDelay, err = s.aMerge(w, union, confl, isAcross, now, &join)
		default:
			mapDelay, err = s.rollback(r, w, confl, now, &join)
		}
	}
	if err != nil {
		return now, err
	}
	join.AddDelay(mapDelay)
	return join.Done(), nil
}

// directWrite services a first-time across-page write: one program into a
// new across area (Fig 5's workflow, steps 1-4).
func (s *Scheme) directWrite(w span, now float64, join *clock.Join) (float64, error) {
	mapDelay := s.Dev.DRAMAccess(1) // PMT lookup of the first LPN's AIdx
	idx, done, err := s.createArea(w, now)
	if err != nil {
		return mapDelay, err
	}
	d, _, err := s.touchAMT(idx, true, now)
	if err != nil {
		return mapDelay, err
	}
	mapDelay += d
	join.Add(done)
	s.stats.DirectWrites++
	if trc := s.Dev.Tracer(); trc != nil {
		trc.AcrossEvent(obs.AcrossDirect, w.Start, w.len(), now)
	}
	return mapDelay, nil
}

// normalWrite is the conventional page-level path (identical to the
// baseline FTL): full-page programs with read-modify-write for partial
// slices of already-written pages.
func (s *Scheme) normalWrite(r trace.Request, now float64, join *clock.Join) (float64, error) {
	var mapDelay float64
	for _, ps := range s.Split(r) {
		mapDelay += s.Dev.DRAMAccess(1)
		issue := now
		if old := s.PMT.PPNOf(ps.LPN); old != flash.NilPPN && !ps.Full(s.SPP) {
			rdone, err := s.Dev.Read(old, now, ftl.OpData)
			if err != nil {
				return mapDelay, err
			}
			issue = rdone
		}
		done, err := s.ProgramData(ps.LPN, issue)
		if err != nil {
			return mapDelay, err
		}
		join.Add(done)
	}
	return mapDelay, nil
}

// supersedeAndWrite drops areas whose entire contents the incoming write
// replaces, then writes normally. No area data needs rescuing.
func (s *Scheme) supersedeAndWrite(r trace.Request, confl []area, now float64, join *clock.Join) (float64, error) {
	var mapDelay float64
	for _, a := range confl {
		d, _, err := s.touchAMT(a.idx, true, now)
		if err != nil {
			return mapDelay, err
		}
		mapDelay += d
		if err := s.dissolve(a.idx); err != nil {
			return mapDelay, err
		}
		s.stats.Superseded++
	}
	if trc := s.Dev.Tracer(); trc != nil {
		trc.AcrossEvent(obs.AcrossSupersede, r.Offset, int64(r.Count), now)
	}
	d, err := s.normalWrite(r, now, join)
	return mapDelay + d, err
}

// aMerge folds the write and every conflicting area into one new across
// area covering their union (which fits a single page). Area pages whose
// data the write fully replaces are not read; gap sectors covered by
// neither the write nor an area are fetched from the normal pages.
func (s *Scheme) aMerge(w, union span, confl []area, profitable bool, now float64, join *clock.Join) (float64, error) {
	var mapDelay float64
	issue := now
	covered := append(s.covBuf[:0], w)
	for _, a := range confl {
		d, ready, err := s.touchAMT(a.idx, true, now)
		if err != nil {
			return mapDelay, err
		}
		mapDelay += d
		sp := s.spanOf(a.e)
		covered = append(covered, sp)
		if !w.contains(sp) {
			// Re-fetch: the cache touch may have triggered GC and moved it.
			rdone, err := s.Dev.Read(s.AMT.Get(a.idx).APPN, ready, ftl.OpData)
			if err != nil {
				return mapDelay, err
			}
			if rdone > issue {
				issue = rdone
			}
		}
	}
	s.covBuf = covered
	// Fetch gap sectors from normally mapped pages (at most the two pages
	// the union touches). Gaps come out ascending, so appending with a
	// same-as-last check yields the deduplicated page list.
	gapPages := s.lpnsBuf[:0]
	s.gapsBuf = appendGaps(s.gapsBuf[:0], union, covered)
	for _, g := range s.gapsBuf {
		for lpn := g.Start / int64(s.SPP); lpn <= (g.End-1)/int64(s.SPP); lpn++ {
			if n := len(gapPages); n == 0 || gapPages[n-1] != lpn {
				gapPages = append(gapPages, lpn)
			}
		}
	}
	s.lpnsBuf = gapPages
	for _, lpn := range gapPages {
		mapDelay += s.Dev.DRAMAccess(1)
		if ppn := s.PMT.PPNOf(lpn); ppn != flash.NilPPN {
			rdone, err := s.Dev.Read(ppn, now, ftl.OpData)
			if err != nil {
				return mapDelay, err
			}
			if rdone > issue {
				issue = rdone
			}
		}
	}
	for _, a := range confl {
		if err := s.dissolve(a.idx); err != nil {
			return mapDelay, err
		}
	}
	idx, done, err := s.createArea(union, issue)
	if err != nil {
		return mapDelay, err
	}
	d, _, err := s.touchAMT(idx, true, now)
	if err != nil {
		return mapDelay, err
	}
	mapDelay += d
	join.Add(done)
	if profitable {
		s.stats.ProfitableAMerge++
	} else {
		s.stats.UnprofitableAMerge++
	}
	if trc := s.Dev.Tracer(); trc != nil {
		kind := obs.AcrossMergeUnprofitable
		if profitable {
			kind = obs.AcrossMergeProfitable
		}
		trc.AcrossEvent(kind, union.Start, union.len(), now)
	}
	return mapDelay, nil
}

// rollback dissolves the conflicting areas and writes the union of the
// incoming request and the rescued area data back through the normal page
// mapping (Fig 6 right): every affected page gets one full-page program,
// reading old area/normal pages as needed to assemble it.
func (s *Scheme) rollback(r trace.Request, w span, confl []area, now float64, join *clock.Join) (float64, error) {
	var mapDelay float64
	issue := now

	// Rescue area contents the write does not replace.
	areaSpans := s.spanBuf[:0]
	for _, a := range confl {
		d, ready, err := s.touchAMT(a.idx, true, now)
		if err != nil {
			return mapDelay, err
		}
		mapDelay += d
		sp := s.spanOf(a.e)
		areaSpans = append(areaSpans, sp)
		if !w.contains(sp) {
			rdone, err := s.Dev.Read(s.AMT.Get(a.idx).APPN, ready, ftl.OpData)
			if err != nil {
				return mapDelay, err
			}
			if rdone > issue {
				issue = rdone
			}
		}
	}
	s.spanBuf = areaSpans

	// Affected logical pages, ascending and unique: everything the write
	// or an area touches. The set is a handful of pages, so sorted
	// insertion into a scratch slice replaces the map-and-sort.
	order := s.lpnsBuf[:0]
	for lpn := r.FirstLPN(s.SPP); lpn <= r.LastLPN(s.SPP); lpn++ {
		order = append(order, lpn)
	}
	for _, sp := range areaSpans {
		for lpn := sp.Start / int64(s.SPP); lpn <= (sp.End-1)/int64(s.SPP); lpn++ {
			order = insertSortedUnique(order, lpn)
		}
	}
	s.lpnsBuf = order

	// Assemble and program each affected page. Sectors supplied by neither
	// the write nor rescued area data come from the page's old copy (RMW).
	covered := append(s.covBuf[:0], w)
	covered = append(covered, areaSpans...)
	s.covBuf = covered
	for _, lpn := range order {
		mapDelay += s.Dev.DRAMAccess(1)
		pageWindow := span{lpn * int64(s.SPP), (lpn + 1) * int64(s.SPP)}
		pissue := issue
		if hasGaps(pageWindow, covered) {
			if old := s.PMT.PPNOf(lpn); old != flash.NilPPN {
				rdone, err := s.Dev.Read(old, now, ftl.OpData)
				if err != nil {
					return mapDelay, err
				}
				if rdone > pissue {
					pissue = rdone
				}
			}
		}
		done, err := s.ProgramData(lpn, pissue)
		if err != nil {
			return mapDelay, err
		}
		join.Add(done)
	}

	for _, a := range confl {
		if err := s.dissolve(a.idx); err != nil {
			return mapDelay, err
		}
		s.stats.Rollbacks++
	}
	if trc := s.Dev.Tracer(); trc != nil {
		trc.AcrossEvent(obs.AcrossRollback, w.Start, w.len(), now)
	}
	return mapDelay, nil
}

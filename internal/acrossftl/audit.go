package acrossftl

import (
	"fmt"

	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/mapping"
)

// Audit verifies the referential integrity of the two-level mapping table
// against the flash array. It is O(logical pages) and intended for tests and
// debugging, not the replay hot path. The invariants checked are the ones
// §3.2 relies on:
//
//   - PMT.AIdx and AMT entries reference each other bijectively;
//   - every area is a legal across-page extent: it starts inside its first
//     page, crosses exactly the one page boundary, and fits one flash page;
//   - every area's physical page is valid and OOB-tagged as that area;
//   - every mapped PMT page is valid flash tagged with the owning LPN.
func (s *Scheme) Audit() error {
	liveSeen := 0
	for lpn := int64(0); lpn < s.PMT.Len(); lpn++ {
		e := s.PMT.Get(lpn)
		if e.PPN != flash.NilPPN {
			if st := s.Dev.Array.State(e.PPN); st != flash.PageValid {
				return fmt.Errorf("audit: lpn %d maps to %v page %d", lpn, st, e.PPN)
			}
			tag := s.Dev.Array.TagOf(e.PPN)
			if tag.Kind != ftl.TagData || tag.Key != lpn {
				return fmt.Errorf("audit: lpn %d page %d has foreign tag %+v", lpn, e.PPN, tag)
			}
		}
		if e.AIdx == mapping.NoAIdx {
			continue
		}
		liveSeen++
		if !s.AMT.InUse(e.AIdx) {
			return fmt.Errorf("audit: lpn %d references dead AMT index %d", lpn, e.AIdx)
		}
		a := s.AMT.Get(e.AIdx)
		if a.LPN != lpn {
			return fmt.Errorf("audit: AMT %d back-references lpn %d, PMT says %d", e.AIdx, a.LPN, lpn)
		}
		spp := int32(s.SPP)
		if a.Off < 0 || a.Off >= spp {
			return fmt.Errorf("audit: AMT %d offset %d outside first page", e.AIdx, a.Off)
		}
		if a.Size <= 0 || a.Size > spp {
			return fmt.Errorf("audit: AMT %d size %d not in (0,%d]", e.AIdx, a.Size, spp)
		}
		if a.End() <= spp {
			return fmt.Errorf("audit: AMT %d does not cross the page boundary (end %d)", e.AIdx, a.End())
		}
		if a.End() > 2*spp {
			return fmt.Errorf("audit: AMT %d extends past the second page (end %d)", e.AIdx, a.End())
		}
		if st := s.Dev.Array.State(a.APPN); st != flash.PageValid {
			return fmt.Errorf("audit: AMT %d area page %d is %v", e.AIdx, a.APPN, st)
		}
		tag := s.Dev.Array.TagOf(a.APPN)
		if tag.Kind != ftl.TagAcross || tag.Key != int64(e.AIdx) {
			return fmt.Errorf("audit: AMT %d area page %d has foreign tag %+v", e.AIdx, a.APPN, tag)
		}
		// The OOB copy of the area geometry (the recovery record) must
		// match the in-DRAM entry.
		tLPN, tOff, tSize := unpackAux(tag.Aux)
		if tLPN != a.LPN || tOff != a.Off || tSize != a.Size {
			return fmt.Errorf("audit: AMT %d OOB geometry (%d,%d,%d) != entry (%d,%d,%d)",
				e.AIdx, tLPN, tOff, tSize, a.LPN, a.Off, a.Size)
		}
	}
	if liveSeen != s.AMT.Live() {
		return fmt.Errorf("audit: PMT references %d areas, AMT says %d live", liveSeen, s.AMT.Live())
	}
	return nil
}

// auditAreaDisjointness verifies that no two live areas cover a common
// sector. The write path maintains this by reconciling every conflicting
// area (AMerge or ARollback) before installing a new one; were two areas to
// overlap, reads of the shared sectors would be ambiguous. O(live areas²),
// audit path only.
func (s *Scheme) auditAreaDisjointness() error {
	live := make([]area, 0, s.AMT.Live())
	for idx := int32(0); int(idx) < s.AMT.Slots(); idx++ {
		if s.AMT.InUse(idx) {
			live = append(live, area{idx: idx, e: s.AMT.Get(idx)})
		}
	}
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			a, b := live[i], live[j]
			if s.spanOf(a.e).intersects(s.spanOf(b.e)) {
				return fmt.Errorf("audit: areas %d %+v and %d %+v overlap",
					a.idx, s.spanOf(a.e), b.idx, s.spanOf(b.e))
			}
		}
	}
	return nil
}

// AuditMapping implements check.Auditable: the two-level PMT+AMT audit plus
// pairwise disjointness of live area extents and the AMT spill store.
func (s *Scheme) AuditMapping() error {
	if err := s.Audit(); err != nil {
		return err
	}
	if err := s.auditAreaDisjointness(); err != nil {
		return err
	}
	return s.ms.Audit()
}

// VisitOwned implements check.Auditable: the flash pages owned by the PMT
// (normally mapped data), the AMT (across-area pages) and the map store
// (spilled AMT translation pages).
func (s *Scheme) VisitOwned(fn func(flash.PPN) error) error {
	if err := s.VisitPMT(fn); err != nil {
		return err
	}
	for idx := int32(0); int(idx) < s.AMT.Slots(); idx++ {
		if s.AMT.InUse(idx) {
			if err := fn(s.AMT.Get(idx).APPN); err != nil {
				return err
			}
		}
	}
	return s.ms.VisitPages(fn)
}

// ResolveSector implements check.SectorResolver. Area coverage wins over the
// page mapping: an across write does not invalidate the underlying PMT pages
// (they still hold sectors outside the area), so a covered sector's newest
// copy is the area page even when a PMT page exists. An area keyed at LPN L
// covers sectors inside pages L and L+1, so a sector in page M consults the
// areas keyed at M and M-1.
func (s *Scheme) ResolveSector(sec int64) (ftl.SectorSource, error) {
	if sec < 0 || sec >= s.Conf.LogicalSectors() {
		return ftl.SectorSource{}, fmt.Errorf("acrossftl: sector %d outside device", sec)
	}
	lpn := sec / int64(s.SPP)
	for _, key := range [2]int64{lpn, lpn - 1} {
		a, ok := s.areaAt(key)
		if !ok {
			continue
		}
		if sp := s.spanOf(a.e); sp.Start <= sec && sec < sp.End {
			return ftl.SectorSource{
				Kind: ftl.SrcFlash,
				PPN:  a.e.APPN,
				Tag: flash.Tag{
					Kind: ftl.TagAcross,
					Key:  int64(a.idx),
					Aux:  packAux(a.e.LPN, a.e.Off, a.e.Size),
				},
			}, nil
		}
	}
	ppn := s.PMT.PPNOf(lpn)
	if ppn == flash.NilPPN {
		return ftl.SectorSource{Kind: ftl.SrcUnwritten}, nil
	}
	return ftl.SectorSource{
		Kind: ftl.SrcFlash,
		PPN:  ppn,
		Tag:  flash.Tag{Kind: ftl.TagData, Key: lpn},
	}, nil
}

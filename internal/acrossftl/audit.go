package acrossftl

import (
	"fmt"

	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/mapping"
)

// Audit verifies the referential integrity of the two-level mapping table
// against the flash array. It is O(logical pages) and intended for tests and
// debugging, not the replay hot path. The invariants checked are the ones
// §3.2 relies on:
//
//   - PMT.AIdx and AMT entries reference each other bijectively;
//   - every area is a legal across-page extent: it starts inside its first
//     page, crosses exactly the one page boundary, and fits one flash page;
//   - every area's physical page is valid and OOB-tagged as that area;
//   - every mapped PMT page is valid flash tagged with the owning LPN.
func (s *Scheme) Audit() error {
	liveSeen := 0
	for lpn := int64(0); lpn < s.PMT.Len(); lpn++ {
		e := s.PMT.Get(lpn)
		if e.PPN != flash.NilPPN {
			if st := s.Dev.Array.State(e.PPN); st != flash.PageValid {
				return fmt.Errorf("audit: lpn %d maps to %v page %d", lpn, st, e.PPN)
			}
			tag := s.Dev.Array.TagOf(e.PPN)
			if tag.Kind != ftl.TagData || tag.Key != lpn {
				return fmt.Errorf("audit: lpn %d page %d has foreign tag %+v", lpn, e.PPN, tag)
			}
		}
		if e.AIdx == mapping.NoAIdx {
			continue
		}
		liveSeen++
		if !s.AMT.InUse(e.AIdx) {
			return fmt.Errorf("audit: lpn %d references dead AMT index %d", lpn, e.AIdx)
		}
		a := s.AMT.Get(e.AIdx)
		if a.LPN != lpn {
			return fmt.Errorf("audit: AMT %d back-references lpn %d, PMT says %d", e.AIdx, a.LPN, lpn)
		}
		spp := int32(s.SPP)
		if a.Off < 0 || a.Off >= spp {
			return fmt.Errorf("audit: AMT %d offset %d outside first page", e.AIdx, a.Off)
		}
		if a.Size <= 0 || a.Size > spp {
			return fmt.Errorf("audit: AMT %d size %d not in (0,%d]", e.AIdx, a.Size, spp)
		}
		if a.End() <= spp {
			return fmt.Errorf("audit: AMT %d does not cross the page boundary (end %d)", e.AIdx, a.End())
		}
		if a.End() > 2*spp {
			return fmt.Errorf("audit: AMT %d extends past the second page (end %d)", e.AIdx, a.End())
		}
		if st := s.Dev.Array.State(a.APPN); st != flash.PageValid {
			return fmt.Errorf("audit: AMT %d area page %d is %v", e.AIdx, a.APPN, st)
		}
		tag := s.Dev.Array.TagOf(a.APPN)
		if tag.Kind != ftl.TagAcross || tag.Key != int64(e.AIdx) {
			return fmt.Errorf("audit: AMT %d area page %d has foreign tag %+v", e.AIdx, a.APPN, tag)
		}
		// The OOB copy of the area geometry (the recovery record) must
		// match the in-DRAM entry.
		tLPN, tOff, tSize := unpackAux(tag.Aux)
		if tLPN != a.LPN || tOff != a.Off || tSize != a.Size {
			return fmt.Errorf("audit: AMT %d OOB geometry (%d,%d,%d) != entry (%d,%d,%d)",
				e.AIdx, tLPN, tOff, tSize, a.LPN, a.Off, a.Size)
		}
	}
	if liveSeen != s.AMT.Live() {
		return fmt.Errorf("audit: PMT references %d areas, AMT says %d live", liveSeen, s.AMT.Live())
	}
	return nil
}

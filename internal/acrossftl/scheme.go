// Package acrossftl implements Across-FTL, the paper's contribution (§3): a
// flash-translation layer that re-aligns across-page requests — requests no
// larger than one SSD page that nevertheless span two logical pages — by
// remapping them onto a single physical page through a two-level mapping
// table (PMT + AMT). Both the write and subsequent reads of the across-page
// data then complete with one page-level flash operation instead of two.
//
// Updates that overlap a remapped area are serviced with the paper's two
// policies: AMerge folds the update into the area and moves it to a fresh
// page while the merged extent still fits in one page; ARollback dissolves
// the area back into normally mapped pages when it no longer fits.
package acrossftl

import (
	"across/internal/cache"
	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/mapping"
	"across/internal/obs"
	"across/internal/ssdconf"
)

// DefaultAMTCacheFrac is the share of the DRAM mapping budget reserved for
// resident AMT translation pages. The PMT (first level) is DRAM-resident in
// full, as in the paper; only the AMT spills through the cached mapping
// table, which is why Across-FTL's Map flash traffic stays small (≈2.6% of
// writes in Fig 10a) compared to MRSM's.
const DefaultAMTCacheFrac = 0.02

// Options tune Across-FTL for ablation studies; the zero value is the
// paper's design.
type Options struct {
	// AMTCachePages overrides the DRAM-resident AMT translation-page count
	// (0 = DefaultAMTCacheFrac of the DRAM budget, minimum 2).
	AMTCachePages int
	// DisableAMerge turns the AMerge policy off: every update conflicting
	// with an area takes the ARollback path, as if only the rollback rule
	// of §3.3.1 existed.
	DisableAMerge bool
}

// Scheme is the Across-FTL implementation of ftl.Scheme.
type Scheme struct {
	ftl.Base
	AMT *mapping.AMT

	cmt *cache.CMT    // caches AMT translation pages within the DRAM budget
	ms  *ftl.MapStore // flash residence of spilled AMT translation pages

	opts  Options
	stats Stats

	// Per-request scratch buffers, reused so the steady-state write/read
	// paths allocate nothing. Each is valid only within one request.
	areasBuf []area
	covBuf   []span
	gapsBuf  []span
	spanBuf  []span
	srcsBuf  []Source
	needsBuf []pageNeed
	lpnsBuf  []int64
}

// pageNeed is one normally mapped page a read plan or merge must fetch,
// with the absolute sector range needed from it.
type pageNeed struct {
	lpn    int64
	lo, hi int64
}

// New builds Across-FTL on a fresh device with the paper's defaults.
func New(conf *ssdconf.Config) (*Scheme, error) {
	return NewWithOptions(conf, Options{})
}

// NewWithCache builds Across-FTL with an explicit number of DRAM-resident
// AMT translation pages (minimum 2); the ablation benches sweep it.
func NewWithCache(conf *ssdconf.Config, amtCachePages int) (*Scheme, error) {
	return NewWithOptions(conf, Options{AMTCachePages: amtCachePages})
}

// NewWithOptions builds Across-FTL with explicit ablation options.
func NewWithOptions(conf *ssdconf.Config, opts Options) (*Scheme, error) {
	base, err := ftl.NewBase(conf)
	if err != nil {
		return nil, err
	}
	if opts.AMTCachePages == 0 {
		opts.AMTCachePages = int(float64(conf.DRAMBudget()) * DefaultAMTCacheFrac / float64(conf.PageBytes))
	}
	if opts.AMTCachePages < 2 {
		opts.AMTCachePages = 2
	}
	entriesPerPage := conf.PageBytes / conf.AMTEntryBytes
	s := &Scheme{
		Base: base,
		AMT:  mapping.NewAMT(),
		cmt:  cache.NewCMT(entriesPerPage, opts.AMTCachePages),
		opts: opts,
	}
	s.ms = ftl.NewMapStore(s.Dev, s.Al)
	s.Al.SetMigrate(s.migrate)
	return s, nil
}

// Name implements ftl.Scheme.
func (s *Scheme) Name() string { return "Across-FTL" }

// TableBytes implements ftl.Scheme: the PMT entry grows by the AIdx field
// and the AMT contributes its high-water mark of 16-byte entries (Fig 12a).
func (s *Scheme) TableBytes() int64 {
	pmt := s.PMT.Len() * int64(s.Conf.MapEntryBytes+s.Conf.AIdxBytes)
	amt := int64(s.AMT.Peak()) * int64(s.Conf.AMTEntryBytes)
	return pmt + amt
}

// Stats returns the across-page bookkeeping behind Fig 8.
func (s *Scheme) Stats() Stats { return s.stats }

// ResetStats clears the across-page statistics (after warm-up).
func (s *Scheme) ResetStats() {
	s.stats = Stats{}
	s.cmt.ResetStats()
}

// CMTStats exposes the AMT cache behaviour for diagnostics.
func (s *Scheme) CMTStats() cache.CMTStats { return s.cmt.Stats() }

// migrate is the GC callback: it repoints whichever structure owns a moved
// page — the PMT for data pages, the AMT for across-area pages, the map
// store for spilled AMT translation pages.
func (s *Scheme) migrate(tag flash.Tag, old, new flash.PPN) {
	switch tag.Kind {
	case ftl.TagData:
		s.MigrateData(tag, old, new)
	case ftl.TagAcross:
		idx := int32(tag.Key)
		if !s.AMT.InUse(idx) || s.AMT.Get(idx).APPN != old {
			panic("acrossftl: GC moved an across page the AMT does not own")
		}
		s.AMT.SetAPPN(idx, new)
	case ftl.TagMap:
		if !s.ms.OnMigrate(tag.Key, old, new) {
			panic("acrossftl: GC moved a translation page the map store does not own")
		}
	default:
		panic("acrossftl: GC met a foreign page tag")
	}
}

// touchAMT charges one AMT entry access: a DRAM access plus whatever flash
// work the cached-mapping-table decides is needed. It returns the serial
// DRAM delay and the time the entry is usable for dependent flash ops.
func (s *Scheme) touchAMT(idx int32, dirty bool, now float64) (delay, ready float64, err error) {
	delay = s.Dev.DRAMAccess(1)
	eff := s.cmt.Touch(int64(idx), dirty)
	if trc := s.Dev.Tracer(); trc != nil {
		trc.CacheAccess(obs.CacheMapping, !eff.MissRead, now)
	}
	ready, err = s.ms.ApplyEffect(eff, s.cmt.PageOf(int64(idx)), now)
	return delay, ready, err
}

var _ ftl.Scheme = (*Scheme)(nil)

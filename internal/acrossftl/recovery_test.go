package acrossftl

import (
	"math/rand"
	"testing"

	"across/internal/ftl"
	"across/internal/ssdconf"
	"across/internal/trace"
)

func TestPackUnpackAux(t *testing.T) {
	for _, tc := range []struct {
		lpn       int64
		off, size int32
	}{
		{0, 0, 1}, {128, 8, 12}, {1 << 30, 15, 16}, {42, 1, 2},
	} {
		lpn, off, size := unpackAux(packAux(tc.lpn, tc.off, tc.size))
		if lpn != tc.lpn || off != tc.off || size != tc.size {
			t.Errorf("round trip (%d,%d,%d) -> (%d,%d,%d)", tc.lpn, tc.off, tc.size, lpn, off, size)
		}
	}
}

// crashAndRecover simulates power loss: the in-DRAM state of the original
// scheme is discarded and a fresh scheme is mounted from the flash array
// alone.
func crashAndRecover(t *testing.T, s *Scheme) *Scheme {
	t.Helper()
	rec, err := Recover(s.Dev)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return rec
}

func TestRecoveryRebuildsMappingExactly(t *testing.T) {
	s, c := tinyScheme(t)
	rng := rand.New(rand.NewSource(31))
	region := c.LogicalSectors() / 2
	for op := 0; op < 1500; op++ {
		off := rng.Int63n(region - 40)
		count := rng.Intn(30) + 1
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: off, Count: count}, float64(op)); err != nil {
			t.Fatal(err)
		}
	}
	if s.AMT.Live() == 0 {
		t.Fatal("workload built no areas; recovery test is vacuous")
	}

	// Snapshot the pre-crash mapping.
	type areaRec struct {
		lpn       int64
		off, size int32
	}
	preAreas := map[int32]areaRec{}
	prePPN := map[int64]int64{}
	for lpn := int64(0); lpn < s.PMT.Len(); lpn++ {
		e := s.PMT.Get(lpn)
		if e.PPN >= 0 {
			prePPN[lpn] = int64(e.PPN)
		}
		if e.AIdx >= 0 {
			a := s.AMT.Get(e.AIdx)
			preAreas[e.AIdx] = areaRec{a.LPN, a.Off, a.Size}
		}
	}

	rec := crashAndRecover(t, s)

	// Every normal mapping and every area is reconstructed identically.
	for lpn := int64(0); lpn < rec.PMT.Len(); lpn++ {
		e := rec.PMT.Get(lpn)
		if want, ok := prePPN[lpn]; ok {
			if int64(e.PPN) != want {
				t.Fatalf("lpn %d recovered PPN %d, want %d", lpn, e.PPN, want)
			}
		} else if e.PPN >= 0 {
			t.Fatalf("lpn %d gained a mapping in recovery", lpn)
		}
	}
	if rec.AMT.Live() != len(preAreas) {
		t.Fatalf("recovered %d areas, want %d", rec.AMT.Live(), len(preAreas))
	}
	for idx, want := range preAreas {
		if !rec.AMT.InUse(idx) {
			t.Fatalf("area %d lost in recovery", idx)
		}
		a := rec.AMT.Get(idx)
		if a.LPN != want.lpn || a.Off != want.off || a.Size != want.size {
			t.Fatalf("area %d recovered as (%d,%d,%d), want (%d,%d,%d)",
				idx, a.LPN, a.Off, a.Size, want.lpn, want.off, want.size)
		}
	}
}

func TestRecoveredSchemeKeepsWorking(t *testing.T) {
	s, c := tinyScheme(t)
	rng := rand.New(rand.NewSource(33))
	region := c.LogicalSectors() / 2
	for op := 0; op < 1000; op++ {
		off := rng.Int63n(region - 40)
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: off, Count: rng.Intn(30) + 1}, float64(op)); err != nil {
			t.Fatal(err)
		}
	}
	rec := crashAndRecover(t, s)

	// Continue the workload across the crash, including enough churn to
	// force GC on the recovered allocator (sealed blocks, rebuilt pools).
	for op := 0; op < 3000; op++ {
		off := rng.Int63n(region - 40)
		count := rng.Intn(30) + 1
		if rng.Intn(100) < 60 {
			if _, err := rec.Write(trace.Request{Op: trace.OpWrite, Offset: off, Count: count}, float64(op)); err != nil {
				t.Fatalf("post-recovery write %d: %v", op, err)
			}
		} else {
			if _, err := rec.Read(trace.Request{Op: trace.OpRead, Offset: off, Count: count}, float64(op)); err != nil {
				t.Fatalf("post-recovery read %d: %v", op, err)
			}
		}
		if op%500 == 0 {
			if err := rec.Audit(); err != nil {
				t.Fatalf("post-recovery audit at op %d: %v", op, err)
			}
		}
	}
	if rec.Dev.Array.TotalErases() == 0 {
		t.Fatal("no GC after recovery; allocator pools not rebuilt")
	}
}

func TestRecoveryPadsOpenBlocks(t *testing.T) {
	s, _ := tinyScheme(t)
	// A single small write leaves the active block partially written.
	mustWrite(t, s, 8, 12, 0)
	free0, _, _ := s.Dev.Array.CountStates()
	rec := crashAndRecover(t, s)
	free1, _, invalid := rec.Dev.Array.CountStates()
	if free1 >= free0 {
		t.Fatalf("recovery did not seal the open block: free %d -> %d", free0, free1)
	}
	if invalid == 0 {
		t.Fatal("no padding pages recorded")
	}
	// The allocator's free accounting matches the sealed device.
	if got := rec.Al.TotalFreePages(); got != free1 {
		t.Fatalf("allocator free=%d, device free=%d", got, free1)
	}
}

func TestBaselineRecovery(t *testing.T) {
	c := ssdconf.Tiny()
	s, err := ftl.NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	pages := c.LogicalSectors() / 16 / 2
	written := map[int64]bool{}
	for op := 0; op < 2000; op++ {
		lpn := rng.Int63n(pages)
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, float64(op)); err != nil {
			t.Fatal(err)
		}
		written[lpn] = true
	}
	rec, err := ftl.RecoverBaseline(s.Dev)
	if err != nil {
		t.Fatalf("RecoverBaseline: %v", err)
	}
	for lpn := range written {
		if rec.PMT.PPNOf(lpn) != s.PMT.PPNOf(lpn) {
			t.Fatalf("lpn %d recovered to %d, want %d", lpn, rec.PMT.PPNOf(lpn), s.PMT.PPNOf(lpn))
		}
	}
	// And it keeps running.
	for op := 0; op < 1000; op++ {
		lpn := rng.Int63n(pages)
		if _, err := rec.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, float64(op)); err != nil {
			t.Fatalf("post-recovery write: %v", err)
		}
	}
}

func TestBaselineRecoveryRejectsForeignTags(t *testing.T) {
	// A device written by Across-FTL holds TagAcross pages the baseline
	// cannot own.
	s, _ := tinyScheme(t)
	mustWrite(t, s, 2056, 12, 0)
	if _, err := ftl.RecoverBaseline(s.Dev); err == nil {
		t.Fatal("baseline recovery accepted an Across-FTL device")
	}
}

package acrossftl

import (
	"across/internal/clock"
	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/obs"
	"across/internal/trace"
)

// Source is one flash page a read plan draws from, with the absolute sector
// interval it supplies. Reads of never-written sectors have no source (the
// controller returns zeroes).
type Source struct {
	PPN      flash.PPN
	Start    int64 // absolute sector
	End      int64 // exclusive
	FromArea bool
	AMTIdx   int32 // valid when FromArea
	LPN      int64 // valid when !FromArea
}

// planRead resolves a read request into its flash sources without side
// effects (§3.3.2): sectors covered by a live across-page area come from the
// area's page (newest data); the remainder comes from the normally mapped
// pages. Tests use the plan to verify source-selection correctness.
// The returned slice aliases a per-scheme scratch buffer: it is valid until
// the next planRead call and must not be retained.
func (s *Scheme) planRead(r trace.Request) []Source {
	w := reqSpan(r.Offset, r.End())
	areas := s.overlapping(w)
	srcs := s.srcsBuf[:0]
	covered := s.covBuf[:0]
	for _, a := range areas {
		sp := s.spanOf(a.e)
		covered = append(covered, sp)
		inter := sp
		if inter.Start < w.Start {
			inter.Start = w.Start
		}
		if inter.End > w.End {
			inter.End = w.End
		}
		srcs = append(srcs, Source{
			PPN: a.e.APPN, Start: inter.Start, End: inter.End,
			FromArea: true, AMTIdx: a.idx,
		})
	}
	s.covBuf = covered
	// Group uncovered sectors by logical page; one read per mapped page.
	// Gaps come out ascending, so the per-page needs build sorted and
	// same-page ranges from adjacent gaps merge in place.
	needs := s.needsBuf[:0]
	s.gapsBuf = appendGaps(s.gapsBuf[:0], w, covered)
	for _, g := range s.gapsBuf {
		for lpn := g.Start / int64(s.SPP); lpn <= (g.End-1)/int64(s.SPP); lpn++ {
			pw := span{lpn * int64(s.SPP), (lpn + 1) * int64(s.SPP)}
			lo, hi := g.Start, g.End
			if lo < pw.Start {
				lo = pw.Start
			}
			if hi > pw.End {
				hi = pw.End
			}
			if n := len(needs); n > 0 && needs[n-1].lpn == lpn {
				if lo < needs[n-1].lo {
					needs[n-1].lo = lo
				}
				if hi > needs[n-1].hi {
					needs[n-1].hi = hi
				}
			} else {
				needs = append(needs, pageNeed{lpn, lo, hi})
			}
		}
	}
	s.needsBuf = needs
	for _, n := range needs {
		ppn := s.PMT.PPNOf(n.lpn)
		if ppn == flash.NilPPN {
			continue // never written: zeroes, no flash work
		}
		srcs = append(srcs, Source{PPN: ppn, Start: n.lo, End: n.hi, LPN: n.lpn})
	}
	s.srcsBuf = srcs
	return srcs
}

// Read implements ftl.Scheme. A direct read (range within one area) costs a
// single page read — the win of Fig 7(a); a merged read additionally fetches
// the normal pages, costing the same as the conventional FTL (Fig 7b).
func (s *Scheme) Read(r trace.Request, now float64) (float64, error) {
	if err := s.CheckRequest(r); err != nil {
		return now, err
	}
	w := reqSpan(r.Offset, r.End())
	isAcross := r.Classify(s.SPP) == trace.ClassAcross
	if isAcross {
		s.stats.AcrossReads++
	}
	srcs := s.planRead(r)

	join := clock.NewJoin(now)
	var mapDelay float64
	var areaSrcs, flashReads int
	coveredByOneArea := false
	for _, src := range srcs {
		if src.FromArea {
			areaSrcs++
			d, ready, err := s.touchAMT(src.AMTIdx, false, now)
			if err != nil {
				return now, err
			}
			mapDelay += d
			// Re-fetch the area page: the cache touch may have triggered
			// GC, which migrates pages and erases their old location.
			done, err := s.Dev.Read(s.AMT.Get(src.AMTIdx).APPN, ready, ftl.OpData)
			if err != nil {
				return now, err
			}
			join.Add(done)
			flashReads++
			if src.Start == w.Start && src.End == w.End {
				coveredByOneArea = true
			}
		} else {
			mapDelay += s.Dev.DRAMAccess(1)
			done, err := s.Dev.Read(s.PMT.PPNOf(src.LPN), now, ftl.OpData)
			if err != nil {
				return now, err
			}
			join.Add(done)
			flashReads++
		}
	}
	if areaSrcs > 0 {
		if coveredByOneArea && len(srcs) == 1 {
			s.stats.DirectReads++
			if trc := s.Dev.Tracer(); trc != nil {
				trc.AcrossEvent(obs.AcrossDirectRead, w.Start, w.len(), now)
			}
		} else {
			s.stats.MergedReads++
			s.stats.MergedReadFlashReads += int64(flashReads)
			if trc := s.Dev.Tracer(); trc != nil {
				trc.AcrossEvent(obs.AcrossMergedRead, w.Start, w.len(), now)
			}
		}
	}
	join.AddDelay(mapDelay)
	return join.Done(), nil
}

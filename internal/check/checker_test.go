package check_test

import (
	"strings"
	"testing"

	"across/internal/check"
	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/hostcache"
	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// smallConf is the scaled Table 1 geometry the sim tests use: big enough for
// real GC, small enough to audit frequently.
func smallConf() ssdconf.Config {
	c := ssdconf.Table1()
	c.Channels = 4
	c.ChipsPerChan = 1
	c.DiesPerChip = 1
	c.PlanesPerDie = 1
	c.BlocksPerPlane = 64
	c.PagesPerBlock = 32
	return c
}

func smallTrace(t *testing.T, seed int64, scale float64) []trace.Request {
	t.Helper()
	c := smallConf()
	p := workload.LunProfiles()[0].Scale(scale)
	p.Seed = seed
	reqs, err := workload.Generate(p, c.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func allKinds() []sim.SchemeKind {
	return append(sim.Kinds(), sim.KindDFTL)
}

// TestCheckedReplayAllSchemes replays an aged mixed workload under the full
// verification regime — shadow model on every request, device audit every 50
// — for every scheme. Zero violations is the acceptance criterion.
func TestCheckedReplayAllSchemes(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(string(kind), func(t *testing.T) {
			r, err := sim.NewRunner(kind, smallConf())
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Age(sim.DefaultAging()); err != nil {
				t.Fatalf("Age: %v", err)
			}
			chk, err := r.EnableChecks(check.Options{Shadow: true, AuditEvery: 50})
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Replay(smallTrace(t, 7, 0.05))
			if err != nil {
				t.Fatalf("checked replay: %v", err)
			}
			if res.Requests == 0 {
				t.Fatal("no requests replayed")
			}
			if chk.Audits() < 2 {
				t.Errorf("only %d audits ran", chk.Audits())
			}
			if chk.SectorChecks() == 0 {
				t.Error("shadow model checked no sectors")
			}
		})
	}
}

// TestCheckedReplayHostCache verifies the checker composes with the
// hostcache wrapper (forwarded Auditable/SectorResolver).
func TestCheckedReplayHostCache(t *testing.T) {
	conf := smallConf()
	inner, err := sim.NewScheme(sim.KindAcross, &conf)
	if err != nil {
		t.Fatal(err)
	}
	r := &sim.Runner{Conf: &conf, Kind: sim.KindAcross, Scheme: hostcache.Wrap(inner, 64)}
	if err := r.Age(sim.DefaultAging()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.EnableChecks(check.Options{Shadow: true, AuditEvery: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay(smallTrace(t, 11, 0.03)); err != nil {
		t.Fatalf("checked replay through hostcache: %v", err)
	}
}

// TestCheckerRejectsUncheckableScheme: a scheme without the verification
// methods gets a clear construction error, not a panic mid-replay.
func TestCheckerRejectsUncheckableScheme(t *testing.T) {
	conf := smallConf()
	inner, err := ftl.NewBaseline(&conf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := check.New(opaqueScheme{inner}, check.Options{}); err == nil {
		t.Fatal("opaque scheme accepted")
	}
	// Hostcache around an opaque scheme forwards the failure at audit time.
	hc := hostcache.Wrap(opaqueScheme{inner}, 4)
	c, err := check.New(hc, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Audit(); err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("audit through opaque inner scheme: %v", err)
	}
}

// opaqueScheme hides the verification methods of the wrapped scheme.
type opaqueScheme struct{ inner ftl.Scheme }

func (o opaqueScheme) Name() string        { return o.inner.Name() }
func (o opaqueScheme) TableBytes() int64   { return o.inner.TableBytes() }
func (o opaqueScheme) Device() *ftl.Device { return o.inner.Device() }
func (o opaqueScheme) Write(r trace.Request, now float64) (float64, error) {
	return o.inner.Write(r, now)
}
func (o opaqueScheme) Read(r trace.Request, now float64) (float64, error) {
	return o.inner.Read(r, now)
}

// writtenBaseline builds a baseline scheme with a few pages written and an
// armed checker, for the corruption-detection tests.
func writtenBaseline(t *testing.T) (*ftl.Baseline, *check.Checker) {
	t.Helper()
	conf := smallConf()
	s, err := ftl.NewBaseline(&conf)
	if err != nil {
		t.Fatal(err)
	}
	c, err := check.New(s, check.Options{Shadow: true})
	if err != nil {
		t.Fatal(err)
	}
	spp := conf.SectorsPerPage()
	now := 0.0
	for lpn := int64(0); lpn < 8; lpn++ {
		req := trace.Request{Op: trace.OpWrite, Offset: lpn * int64(spp), Count: spp}
		if now, err = s.Write(req, now); err != nil {
			t.Fatal(err)
		}
	}
	// Mirror the engine: measurement counters reset, then the checker armed,
	// so the attribution identities start from zero.
	s.Dev.ResetMeasurement()
	if err := c.BeginReplay(); err != nil {
		t.Fatal(err)
	}
	if err := c.Audit(); err != nil {
		t.Fatalf("audit of healthy device: %v", err)
	}
	return s, c
}

// TestAuditDetectsMisdirectedMapping: a PMT entry silently repointed at a
// foreign page must fail the audit and the shadow check.
func TestAuditDetectsMisdirectedMapping(t *testing.T) {
	s, c := writtenBaseline(t)
	p3, p4 := s.PMT.PPNOf(3), s.PMT.PPNOf(4)
	s.PMT.SetPPN(3, p4) // lpn 3 now reads lpn 4's page
	if err := c.Audit(); err == nil {
		t.Fatal("audit missed a misdirected mapping")
	}
	spp := s.Conf.SectorsPerPage()
	err := c.OnRead(trace.Request{Op: trace.OpRead, Offset: 3 * int64(spp), Count: spp})
	if err == nil || !strings.Contains(err.Error(), "misdirected") {
		t.Fatalf("shadow check on misdirected read: %v", err)
	}
	s.PMT.SetPPN(3, p3)
	if err := c.Audit(); err != nil {
		t.Fatalf("audit after repair: %v", err)
	}
}

// TestAuditDetectsLostWrite: dropping a mapping entry (the sector no longer
// resolves) must fail the ownership sweep and the shadow check.
func TestAuditDetectsLostWrite(t *testing.T) {
	s, c := writtenBaseline(t)
	ppn := s.PMT.PPNOf(5)
	s.PMT.SetPPN(5, flash.NilPPN)
	// The flash page is still valid but now unowned: the bijection fails.
	if err := c.Audit(); err == nil || !strings.Contains(err.Error(), "owned") {
		t.Fatalf("audit on leaked page: %v", err)
	}
	spp := s.Conf.SectorsPerPage()
	err := c.OnRead(trace.Request{Op: trace.OpRead, Offset: 5 * int64(spp), Count: spp})
	if err == nil || !strings.Contains(err.Error(), "lost write") {
		t.Fatalf("shadow check on lost write: %v", err)
	}
	s.PMT.SetPPN(5, ppn)
}

// TestAuditDetectsDoubleOwnership: two logical pages claiming one flash page
// must fail the ownership sweep.
func TestAuditDetectsDoubleOwnership(t *testing.T) {
	s, c := writtenBaseline(t)
	p6 := s.PMT.PPNOf(6)
	old := s.PMT.PPNOf(7)
	s.PMT.SetPPN(7, p6)
	if err := c.Audit(); err == nil {
		t.Fatal("audit missed doubly owned page")
	}
	s.PMT.SetPPN(7, old)
}

// TestAuditDetectsOrphanPage: a valid flash page no mapping structure claims
// (the observable a missed invalidate or forgotten mapping install leaves
// behind) breaks the ownership bijection.
func TestAuditDetectsOrphanPage(t *testing.T) {
	s, c := writtenBaseline(t)
	seedOrphanPage(t, s.Dev.Array)
	if err := c.Audit(); err == nil {
		t.Fatal("audit missed an orphaned valid page")
	}
}

// seedOrphanPage programs a data-tagged page nobody owns into the lowest
// open block — the footprint of a write the mapping forgot.
func seedOrphanPage(t *testing.T, arr *flash.Array) {
	t.Helper()
	geo := arr.Geo
	for b := flash.BlockID(0); int64(b) < geo.TotalBlocks(); b++ {
		wp := arr.WritePtr(b)
		if wp == 0 || wp >= geo.PagesPerBlock {
			continue
		}
		ppn := geo.FirstPage(b) + flash.PPN(wp)
		if err := arr.Program(ppn, flash.Tag{Kind: ftl.TagData, Key: 1 << 40}); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Skip("no open block to seed the orphan page into")
}

// TestAuditCatchesUnattributedFlashOps: array operations that bypass the
// Device's counter attribution break the accounting identity.
func TestAuditCatchesUnattributedFlashOps(t *testing.T) {
	s, c := writtenBaseline(t)
	// One read straight at the array: real code must go through ftl.Device.
	if err := s.Dev.Array.Read(s.PMT.PPNOf(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Audit(); err == nil || !strings.Contains(err.Error(), "reads") {
		t.Fatalf("audit on unattributed read: %v", err)
	}
}

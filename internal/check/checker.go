package check

import (
	"fmt"

	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/trace"
)

// Checker verifies one scheme instance over its device. Install it on a
// sim.Runner (SetChecker) to have the engine drive it during replays, or
// drive it directly from tests: BeginReplay once, OnWrite/OnRead per
// request, Finish at the end. A Checker is observation only — it never
// mutates scheme or device state — so a checked replay produces a
// bit-identical Result to an unchecked one.
type Checker struct {
	scheme ftl.Scheme
	aud    Auditable
	res    SectorResolver // nil unless Options.Shadow
	dev    *ftl.Device
	opts   Options

	logicalSectors int64

	// written is the shadow model's liveness bitset: one bit per logical
	// sector, set when the sector has (or had at BeginReplay) a resolvable
	// source. Liveness is monotone — the device has no discard — so a set
	// bit that stops resolving is a lost write.
	written []uint64

	// owned is the audit sweep's scratch bitset over physical pages,
	// reused across audits.
	owned []uint64

	// prevWP/prevEC snapshot per-block write pointers and erase counters at
	// the previous audit, proving write-pointer monotonicity: a pointer may
	// only move backwards if the block was erased in between.
	prevWP []int32
	prevEC []int64

	// Replay-start totals for the attribution identities: everything the
	// array does during a measured phase must be visible in the Device's
	// attributed counters.
	basePrograms, baseReads, baseErases int64
	began                               bool

	reqs         int64
	audits       int64
	sectorChecks int64
}

// New builds a Checker for the scheme. The scheme must implement Auditable;
// with opts.Shadow it must also implement SectorResolver. Wrapped schemes
// (hostcache) forward both, so any stack built from the repository's schemes
// is checkable.
func New(s ftl.Scheme, opts Options) (*Checker, error) {
	aud, ok := s.(Auditable)
	if !ok {
		return nil, fmt.Errorf("check: scheme %s does not implement Auditable", s.Name())
	}
	c := &Checker{
		scheme:         s,
		aud:            aud,
		dev:            s.Device(),
		opts:           opts,
		logicalSectors: s.Device().Conf.LogicalSectors(),
	}
	if opts.Shadow {
		res, ok := s.(SectorResolver)
		if !ok {
			return nil, fmt.Errorf("check: scheme %s does not implement SectorResolver", s.Name())
		}
		c.res = res
	}
	return c, nil
}

// Audits returns how many device-wide audits have run.
func (c *Checker) Audits() int64 { return c.audits }

// SectorChecks returns how many per-sector shadow verifications have run.
func (c *Checker) SectorChecks() int64 { return c.sectorChecks }

// Requests returns how many host requests the checker has observed since
// BeginReplay.
func (c *Checker) Requests() int64 { return c.reqs }

func (c *Checker) setWritten(sec int64) { c.written[sec>>6] |= 1 << uint(sec&63) }
func (c *Checker) isWritten(sec int64) bool {
	return c.written[sec>>6]&(1<<uint(sec&63)) != 0
}

// BeginReplay arms the checker for a measured phase. The engine calls it
// right after Device.ResetMeasurement, so the attribution identities compare
// array totals against freshly zeroed counters. The shadow bitset is seeded
// from the scheme's current resolution — aged or recovered state counts as
// written — which makes liveness checkable without having observed the
// warm-up.
func (c *Checker) BeginReplay() error {
	arr := c.dev.Array
	c.began = true
	c.basePrograms = arr.TotalPrograms()
	c.baseReads = arr.TotalReads()
	c.baseErases = arr.TotalErases()
	c.reqs = 0

	nb := arr.Geo.TotalBlocks()
	if c.prevWP == nil {
		c.prevWP = make([]int32, nb)
		c.prevEC = make([]int64, nb)
	}
	for b := flash.BlockID(0); int64(b) < nb; b++ {
		c.prevWP[b] = int32(arr.WritePtr(b))
		c.prevEC[b] = arr.EraseCount(b)
	}

	if c.opts.Shadow {
		words := (c.logicalSectors + 63) / 64
		if c.written == nil {
			c.written = make([]uint64, words)
		} else {
			for i := range c.written {
				c.written[i] = 0
			}
		}
		for sec := int64(0); sec < c.logicalSectors; sec++ {
			src, err := c.res.ResolveSector(sec)
			if err != nil {
				return fmt.Errorf("check: seeding shadow model: %w", err)
			}
			if src.Kind != ftl.SrcUnwritten {
				c.setWritten(sec)
			}
		}
	}
	return nil
}

// checkLive verifies one written sector's claimed source against the array.
func (c *Checker) checkLive(sec int64) error {
	c.sectorChecks++
	src, err := c.res.ResolveSector(sec)
	if err != nil {
		return fmt.Errorf("sector %d: %w", sec, err)
	}
	switch src.Kind {
	case ftl.SrcUnwritten:
		return fmt.Errorf("lost write: sector %d was written but has no source", sec)
	case ftl.SrcBuffered:
		return nil
	case ftl.SrcFlash:
		if st := c.dev.Array.State(src.PPN); st != flash.PageValid {
			return fmt.Errorf("dangling source: sector %d resolves to %v page %d", sec, st, src.PPN)
		}
		if tag := c.dev.Array.TagOf(src.PPN); tag != src.Tag {
			return fmt.Errorf("misdirected source: sector %d page %d holds tag %+v, owner expects %+v",
				sec, src.PPN, tag, src.Tag)
		}
		return nil
	}
	return fmt.Errorf("sector %d: unknown source kind %v", sec, src.Kind)
}

// OnWrite verifies a completed host write: every sector of the request is
// now live and must resolve to a valid, correctly tagged source. A write the
// scheme dropped (or mapped to the wrong page) fails here, on the very
// request that lost it.
func (c *Checker) OnWrite(r trace.Request) error {
	c.reqs++
	if c.opts.Shadow {
		for sec := r.Offset; sec < r.End(); sec++ {
			c.setWritten(sec)
			if err := c.checkLive(sec); err != nil {
				return fmt.Errorf("check: after write: %w", err)
			}
		}
	}
	return c.maybeAudit()
}

// OnRead verifies a completed host read: every previously written sector in
// the range must still resolve. Never-written sectors are unconstrained —
// page-granularity materialisation (baseline RMW, MRSM sub-page staging)
// legitimately gives them a source.
func (c *Checker) OnRead(r trace.Request) error {
	c.reqs++
	if c.opts.Shadow {
		for sec := r.Offset; sec < r.End(); sec++ {
			if !c.isWritten(sec) {
				continue
			}
			if err := c.checkLive(sec); err != nil {
				return fmt.Errorf("check: after read: %w", err)
			}
		}
	}
	return c.maybeAudit()
}

func (c *Checker) maybeAudit() error {
	if n := c.opts.AuditEvery; n > 0 && c.reqs%n == 0 {
		return c.Audit()
	}
	return nil
}

// Finish runs the end-of-replay audit.
func (c *Checker) Finish() error { return c.Audit() }

// Audit runs the device-wide invariant sweep. O(physical pages + logical
// pages); callable at any request boundary.
func (c *Checker) Audit() error {
	c.audits++

	// Scheme-internal referential integrity first: it produces the most
	// specific diagnostics.
	if err := c.aud.AuditMapping(); err != nil {
		return fmt.Errorf("check: mapping audit: %w", err)
	}

	arr := c.dev.Array
	geo := &arr.Geo
	ppb := geo.PagesPerBlock
	nb := geo.TotalBlocks()

	// Per-block layout: states partition around the write pointer, the
	// valid-count cache is conserved, write pointers move monotonically
	// between audits (modulo erase), and erase counters never decrease.
	var totalValid, eraseSum int64
	for b := flash.BlockID(0); int64(b) < nb; b++ {
		wp := arr.WritePtr(b)
		if wp < 0 || wp > ppb {
			return fmt.Errorf("check: block %d write pointer %d outside [0,%d]", b, wp, ppb)
		}
		first := geo.FirstPage(b)
		valid := 0
		for i := 0; i < ppb; i++ {
			p := first + flash.PPN(i)
			st := arr.State(p)
			if i < wp {
				if st == flash.PageFree {
					return fmt.Errorf("check: block %d page %d free below write pointer %d", b, i, wp)
				}
				if st == flash.PageValid {
					valid++
					if arr.TagOf(p) == flash.NilTag {
						return fmt.Errorf("check: block %d page %d valid with nil OOB tag", b, i)
					}
				}
			} else {
				if st != flash.PageFree {
					return fmt.Errorf("check: block %d page %d %v above write pointer %d", b, i, st, wp)
				}
				if arr.TagOf(p) != flash.NilTag {
					return fmt.Errorf("check: block %d free page %d carries tag %+v", b, i, arr.TagOf(p))
				}
			}
		}
		if valid != arr.ValidCount(b) {
			return fmt.Errorf("check: block %d valid-count %d, counted %d", b, arr.ValidCount(b), valid)
		}
		totalValid += int64(valid)
		ec := arr.EraseCount(b)
		eraseSum += ec
		if c.prevWP != nil {
			if ec < c.prevEC[b] {
				return fmt.Errorf("check: block %d erase count moved backwards (%d -> %d)", b, c.prevEC[b], ec)
			}
			if int32(wp) < c.prevWP[b] && ec == c.prevEC[b] {
				return fmt.Errorf("check: block %d write pointer moved backwards (%d -> %d) without erase",
					b, c.prevWP[b], wp)
			}
			c.prevWP[b] = int32(wp)
			c.prevEC[b] = ec
		}
	}
	if eraseSum != arr.TotalErases() {
		return fmt.Errorf("check: per-block erase counters sum to %d, array total %d", eraseSum, arr.TotalErases())
	}

	// Allocator free-space accounting: the plane's cached free-page count
	// must equal the sum of programmable pages over its blocks. Between
	// requests no reservation is outstanding, so the identity is exact.
	if al := c.allocator(); al != nil {
		for pl := flash.PlaneID(0); int(pl) < geo.Planes; pl++ {
			var free int64
			lo, hi := geo.BlocksOfPlane(pl)
			for b := lo; b < hi; b++ {
				free += int64(arr.FreeInBlock(b))
			}
			if got := al.FreePages(pl); got != free {
				return fmt.Errorf("check: plane %d allocator says %d free pages, blocks hold %d", pl, got, free)
			}
		}
	}

	// Ownership bijection: every page the mapping structures claim must be
	// valid and claimed exactly once, and the claims must account for every
	// valid page on the device. Together with the per-claim tag checks in
	// AuditMapping this proves mapping↔flash ownership is a bijection —
	// no leaked (unreclaimable) pages, no doubly owned pages.
	words := (geo.TotalPages() + 63) / 64
	if c.owned == nil {
		c.owned = make([]uint64, words)
	} else {
		for i := range c.owned {
			c.owned[i] = 0
		}
	}
	var ownedCount int64
	err := c.aud.VisitOwned(func(p flash.PPN) error {
		if err := geo.CheckPPN(p); err != nil {
			return err
		}
		if st := arr.State(p); st != flash.PageValid {
			return fmt.Errorf("owned page %d is %v", p, st)
		}
		if c.owned[p>>6]&(1<<uint(p&63)) != 0 {
			return fmt.Errorf("page %d owned twice", p)
		}
		c.owned[p>>6] |= 1 << uint(p&63)
		ownedCount++
		return nil
	})
	if err != nil {
		return fmt.Errorf("check: ownership sweep: %w", err)
	}
	if ownedCount != totalValid {
		return fmt.Errorf("check: %d valid pages on flash, %d owned by mapping structures (leak or double count)",
			totalValid, ownedCount)
	}

	// Attribution identities: during a measured phase, every array
	// operation must be visible in the Device's attributed counters —
	// nothing may program, read or erase behind the accounting that the
	// paper's figures are computed from.
	if c.began {
		if got, want := c.dev.Count.FlashWrites(), arr.TotalPrograms()-c.basePrograms; got != want {
			return fmt.Errorf("check: device counters attribute %d programs, array performed %d", got, want)
		}
		if got, want := c.dev.Count.FlashReads(), arr.TotalReads()-c.baseReads; got != want {
			return fmt.Errorf("check: device counters attribute %d reads, array performed %d", got, want)
		}
		if got, want := c.dev.Count.Erases, arr.TotalErases()-c.baseErases; got != want {
			return fmt.Errorf("check: device counters attribute %d erases, array performed %d", got, want)
		}
	}
	return nil
}

// allocator returns the scheme's page allocator when it exposes one (the
// same capability discovery the metrics sampler uses).
func (c *Checker) allocator() *ftl.Allocator {
	if al, ok := c.scheme.(interface{ Allocator() *ftl.Allocator }); ok {
		return al.Allocator()
	}
	return nil
}

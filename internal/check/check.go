// Package check is the correctness-verification layer of the simulator: a
// pluggable subsystem that turns silent bookkeeping corruption — the failure
// mode a counters-only simulator cannot see — into hard errors. It has two
// halves:
//
//   - A device-wide invariant auditor (Checker.Audit) that generalises
//     acrossftl.Audit to every scheme: mapping→flash referential integrity,
//     per-block page-state/valid-count/write-pointer consistency, ownership
//     bijection (every valid flash page is owned by exactly one mapping
//     entry), allocator free-space accounting, write-pointer monotonicity,
//     and erase/program/read attribution identities between the flash array
//     and the Device counters.
//
//   - A data-integrity shadow model (Checker.OnWrite/OnRead) that tracks the
//     set of live logical sectors and verifies, on every host request, that
//     each written sector resolves to a live source whose OOB tag matches
//     the owner's claim. The OOB tag plays the role of a content fingerprint
//     (the simulator carries no user data): a lost write, a misdirected
//     read, or a GC relocation that corrupts a mapping all surface as a tag
//     or liveness mismatch.
//
// Schemes opt in structurally: they implement Auditable and SectorResolver
// without importing this package (the SectorSource vocabulary lives in
// ftl). The sim engine drives an installed Checker behind nil guards, so
// the disabled path — the default — costs zero allocations and one branch
// per request, like the obs layer.
package check

import (
	"across/internal/flash"
	"across/internal/ftl"
)

// Auditable is a scheme whose mapping structures can be audited against the
// flash array. AuditMapping verifies scheme-internal referential integrity
// (every mapping entry references a valid, correctly tagged flash page);
// VisitOwned enumerates every flash page the scheme's mapping structures
// currently claim, calling fn once per claim — the checker cross-checks the
// enumeration against the array's valid-page census to prove the ownership
// relation is a bijection.
type Auditable interface {
	ftl.Scheme
	AuditMapping() error
	VisitOwned(fn func(flash.PPN) error) error
}

// SectorResolver is a scheme that can say where a logical sector's current
// contents live. Resolution must be side-effect-free: it may not touch
// caches, charge costs, or move data.
type SectorResolver interface {
	ResolveSector(sec int64) (ftl.SectorSource, error)
}

// Options configures a Checker.
type Options struct {
	// Shadow enables the data-integrity shadow model: per-sector liveness
	// tracking verified on every host read and write.
	Shadow bool
	// AuditEvery runs the device-wide audit every N host requests (0 = only
	// at the end of a replay). Audits are O(device), so small N on large
	// configs is slow — that is the point of making it a dial.
	AuditEvery int64
}

package check_test

import (
	"reflect"
	"testing"

	"across/internal/check"
	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/trace"
	"across/internal/workload"
)

// gcHeavyConf shrinks the device and raises the GC trigger so collection
// runs constantly: the configuration most likely to expose bookkeeping bugs
// in migration, salvage, and victim accounting.
func gcHeavyConf() ssdconf.Config {
	c := smallConf()
	c.BlocksPerPlane = 32
	c.GCThreshold = 0.30
	return c
}

// profileTrace builds a deterministic mixed workload from one of the Table 2
// profiles with an explicit seed.
func profileTrace(t *testing.T, conf *ssdconf.Config, profile int, seed int64, scale float64) []trace.Request {
	t.Helper()
	p := workload.LunProfiles()[profile].Scale(scale)
	p.Seed = seed
	reqs, err := workload.Generate(p, conf.LogicalSectors())
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// runChecked builds, ages and replays one (kind, conf, trace) combination
// under the given verification options, returning the Result.
func runChecked(t *testing.T, kind sim.SchemeKind, conf ssdconf.Config, aging sim.Aging,
	reqs []trace.Request, opts *check.Options) *sim.Result {
	t.Helper()
	r, err := sim.NewRunner(kind, conf)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Age(aging); err != nil {
		t.Fatalf("%s: Age: %v", kind, err)
	}
	if opts != nil {
		if _, err := r.EnableChecks(*opts); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Replay(reqs)
	if err != nil {
		t.Fatalf("%s: replay: %v", kind, err)
	}
	return res
}

// TestMetamorphicSeededWorkloads is the property-based sweep of the
// verification layer: across schemes, seeds, profiles and an aging- and
// GC-heavy configuration, every replay must pass the shadow model and the
// periodic device audit with zero violations, and the same seed must
// reproduce a bit-identical Result.
func TestMetamorphicSeededWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	aging := sim.DefaultAging()
	heavyAging := sim.Aging{ValidFrac: 0.45, UsedFrac: 0.95, Seed: 20230801}
	cases := []struct {
		name    string
		conf    ssdconf.Config
		aging   sim.Aging
		profile int
		seed    int64
	}{
		{"mixed-seed1", smallConf(), aging, 0, 1},
		{"mixed-seed2", smallConf(), aging, 2, 2},
		{"write-heavy", smallConf(), aging, 4, 3},
		{"gc-heavy", gcHeavyConf(), heavyAging, 1, 4},
	}
	opts := check.Options{Shadow: true, AuditEvery: 100}
	for _, tc := range cases {
		for _, kind := range allKinds() {
			t.Run(tc.name+"/"+string(kind), func(t *testing.T) {
				reqs := profileTrace(t, &tc.conf, tc.profile, tc.seed, 0.04)
				first := runChecked(t, kind, tc.conf, tc.aging, reqs, &opts)
				again := runChecked(t, kind, tc.conf, tc.aging, reqs, &opts)
				if !reflect.DeepEqual(first, again) {
					t.Errorf("same seed produced different Results:\n%+v\n%+v", first, again)
				}
			})
		}
	}
}

// TestCheckerDoesNotPerturbResults: verification is observation only — a
// checked replay and an unchecked replay of the same seed are bit-identical,
// wear stats included.
func TestCheckerDoesNotPerturbResults(t *testing.T) {
	opts := check.Options{Shadow: true, AuditEvery: 64}
	for _, kind := range allKinds() {
		t.Run(string(kind), func(t *testing.T) {
			conf := smallConf()
			reqs := profileTrace(t, &conf, 3, 99, 0.04)
			plain := runChecked(t, kind, conf, sim.DefaultAging(), reqs, nil)
			checked := runChecked(t, kind, conf, sim.DefaultAging(), reqs, &opts)
			if !reflect.DeepEqual(plain, checked) {
				t.Errorf("checker perturbed the Result:\nplain   %+v\nchecked %+v", plain, checked)
			}
		})
	}
}

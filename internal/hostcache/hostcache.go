// Package hostcache implements the controller's DRAM data buffer — the
// "Cache size" row of the paper's Table 1 that the core comparison holds
// constant across schemes. It wraps any ftl.Scheme: reads whose pages are
// all resident are served at DRAM speed; everything else passes through to
// the wrapped scheme and populates the cache.
//
// The wrapper is deliberately scheme-agnostic so the cache benefit applies
// identically to FTL, MRSM and Across-FTL (as it does on a real device); it
// exists to study how much of the across-page penalty a data buffer can and
// cannot hide. A buffer absorbs repeated *reads*, but every write must still
// reach flash — so the flush-count and erase results of the paper are
// unaffected by it, which is exactly what the wrapping ablation shows.
package hostcache

import (
	"fmt"

	"across/internal/cache"
	"across/internal/flash"
	"across/internal/ftl"
	"across/internal/obs"
	"across/internal/trace"
)

// Stats counts cache behaviour.
type Stats struct {
	ReadHits   int64 // read requests served entirely from DRAM
	ReadMisses int64 // read requests that touched flash
	Inserted   int64 // pages populated
}

// Scheme wraps an inner FTL scheme with a page-granularity read cache.
type Scheme struct {
	inner ftl.Scheme
	lru   *cache.LRU
	spp   int
	stats Stats
}

// Wrap builds the cache in front of inner with capacity for cachePages
// logical pages.
func Wrap(inner ftl.Scheme, cachePages int) *Scheme {
	return &Scheme{
		inner: inner,
		lru:   cache.NewLRU(cachePages),
		spp:   inner.Device().Conf.SectorsPerPage(),
	}
}

// Name implements ftl.Scheme.
func (s *Scheme) Name() string { return s.inner.Name() + "+cache" }

// Device implements ftl.Scheme.
func (s *Scheme) Device() *ftl.Device { return s.inner.Device() }

// TableBytes implements ftl.Scheme (the data buffer is not mapping state).
func (s *Scheme) TableBytes() int64 { return s.inner.TableBytes() }

// Stats returns the cache census.
func (s *Scheme) Stats() Stats { return s.stats }

// Allocator forwards to the inner scheme's page allocator when it exposes
// one (metrics sampling reads GC debt through it).
func (s *Scheme) Allocator() *ftl.Allocator {
	if al, ok := s.inner.(interface{ Allocator() *ftl.Allocator }); ok {
		return al.Allocator()
	}
	return nil
}

// ResetStats clears the census and forwards to the inner scheme.
func (s *Scheme) ResetStats() {
	s.stats = Stats{}
	if sr, ok := s.inner.(interface{ ResetStats() }); ok {
		sr.ResetStats()
	}
}

// AuditMapping forwards to the inner scheme so a cached stack stays
// verifiable: the data buffer holds copies, never the sole copy (writes are
// write-through), so the inner scheme's invariants are the device's.
func (s *Scheme) AuditMapping() error {
	if a, ok := s.inner.(interface{ AuditMapping() error }); ok {
		return a.AuditMapping()
	}
	return fmt.Errorf("hostcache: inner scheme %s does not support auditing", s.inner.Name())
}

// VisitOwned forwards to the inner scheme (see AuditMapping).
func (s *Scheme) VisitOwned(fn func(flash.PPN) error) error {
	if v, ok := s.inner.(interface {
		VisitOwned(func(flash.PPN) error) error
	}); ok {
		return v.VisitOwned(fn)
	}
	return fmt.Errorf("hostcache: inner scheme %s does not support auditing", s.inner.Name())
}

// ResolveSector forwards to the inner scheme: a cache hit serves a copy of
// exactly the data the inner scheme's source holds.
func (s *Scheme) ResolveSector(sec int64) (ftl.SectorSource, error) {
	if r, ok := s.inner.(interface {
		ResolveSector(int64) (ftl.SectorSource, error)
	}); ok {
		return r.ResolveSector(sec)
	}
	return ftl.SectorSource{}, fmt.Errorf("hostcache: inner scheme %s does not support resolution", s.inner.Name())
}

// Write implements ftl.Scheme: write-through. A full-page slice leaves the
// page resident (its DRAM copy is complete); a partial slice of a
// non-resident page cannot create a complete copy, so the page is evicted
// if stale-prone and otherwise left alone.
func (s *Scheme) Write(r trace.Request, now float64) (float64, error) {
	done, err := s.inner.Write(r, now)
	if err != nil {
		return done, err
	}
	first, last := r.FirstLPN(s.spp), r.LastLPN(s.spp)
	for lpn := first; lpn <= last; lpn++ {
		fullStart := lpn * int64(s.spp)
		fullEnd := fullStart + int64(s.spp)
		covered := r.Offset <= fullStart && r.End() >= fullEnd
		if covered {
			if hit, _, _, _ := s.lru.Touch(lpn, false); !hit {
				s.stats.Inserted++
			}
			continue
		}
		// A partial update of a resident page keeps it current (the DRAM
		// copy is updated in place); a partial update of an absent page
		// cannot make it resident.
		if s.lru.Contains(lpn) {
			s.lru.Touch(lpn, false)
		}
	}
	return done, nil
}

// Read implements ftl.Scheme: a request whose pages are all resident costs
// one DRAM access per page; otherwise it passes through and populates.
func (s *Scheme) Read(r trace.Request, now float64) (float64, error) {
	if err := r.Validate(s.Device().Conf.LogicalSectors()); err != nil {
		return now, err
	}
	first, last := r.FirstLPN(s.spp), r.LastLPN(s.spp)
	allResident := true
	for lpn := first; lpn <= last; lpn++ {
		if !s.lru.Contains(lpn) {
			allResident = false
			break
		}
	}
	if allResident {
		s.stats.ReadHits++
		if trc := s.Device().Tracer(); trc != nil {
			trc.CacheAccess(obs.CacheHostData, true, now)
		}
		delay := s.Device().DRAMAccess(int(last - first + 1))
		// Refresh recency.
		for lpn := first; lpn <= last; lpn++ {
			s.lru.Touch(lpn, false)
		}
		return now + delay, nil
	}
	s.stats.ReadMisses++
	if trc := s.Device().Tracer(); trc != nil {
		trc.CacheAccess(obs.CacheHostData, false, now)
	}
	done, err := s.inner.Read(r, now)
	if err != nil {
		return done, err
	}
	// The flash reads returned whole pages; they are now resident.
	for lpn := first; lpn <= last; lpn++ {
		if hit, _, _, _ := s.lru.Touch(lpn, false); !hit {
			s.stats.Inserted++
		}
	}
	return done, nil
}

var _ ftl.Scheme = (*Scheme)(nil)

package hostcache

import (
	"math/rand"
	"testing"

	"across/internal/acrossftl"
	"across/internal/ftl"
	"across/internal/ssdconf"
	"across/internal/trace"
)

func wrapped(t *testing.T, pages int) (*Scheme, *ssdconf.Config) {
	t.Helper()
	c := ssdconf.Tiny()
	inner, err := ftl.NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	return Wrap(inner, pages), &c
}

func TestReadHitServedFromDRAM(t *testing.T) {
	s, c := wrapped(t, 8)
	w := trace.Request{Op: trace.OpWrite, Offset: 0, Count: 16} // full page
	if _, err := s.Write(w, 0); err != nil {
		t.Fatal(err)
	}
	flashReads := s.Device().Count.DataReads
	done, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 4, Count: 8}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Device().Count.DataReads != flashReads {
		t.Fatal("cache hit touched flash")
	}
	want := 100 + c.CacheAccess
	if done < want-1e-9 || done > want+1e-9 {
		t.Fatalf("hit latency = %v, want %v", done-100, c.CacheAccess)
	}
	if st := s.Stats(); st.ReadHits != 1 || st.ReadMisses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReadMissPopulates(t *testing.T) {
	s, _ := wrapped(t, 8)
	// Write through a *fresh* inner scheme so the page is on flash but the
	// wrapper was not told: simulate by writing via inner directly.
	inner := s.inner
	if _, err := inner.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 16}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ReadMisses != 1 || st.Inserted != 1 {
		t.Fatalf("stats = %+v, want one miss and one insert", st)
	}
	// Second read hits.
	r0 := s.Device().Count.DataReads
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 2); err != nil {
		t.Fatal(err)
	}
	if s.Device().Count.DataReads != r0 {
		t.Fatal("second read missed")
	}
}

func TestPartialWriteOfAbsentPageDoesNotInsert(t *testing.T) {
	s, _ := wrapped(t, 8)
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 2, Count: 4}, 0); err != nil {
		t.Fatal(err)
	}
	// The page copy in DRAM would be incomplete; a read must miss.
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 1); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ReadHits != 0 || st.ReadMisses != 1 {
		t.Fatalf("stats = %+v, want a miss", st)
	}
}

func TestPartialWriteOfResidentPageKeepsItCurrent(t *testing.T) {
	s, _ := wrapped(t, 8)
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 16}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 4, Count: 2}, 1); err != nil {
		t.Fatal(err)
	}
	r0 := s.Device().Count.DataReads
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 2); err != nil {
		t.Fatal(err)
	}
	if s.Device().Count.DataReads != r0 {
		t.Fatal("read of updated resident page missed")
	}
}

func TestEvictionUnderCapacity(t *testing.T) {
	s, _ := wrapped(t, 2)
	for lpn := int64(0); lpn < 4; lpn++ {
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, float64(lpn)); err != nil {
			t.Fatal(err)
		}
	}
	// Pages 0 and 1 evicted; reading them misses.
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 10); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ReadMisses != 1 {
		t.Fatalf("stats = %+v, want a miss after eviction", st)
	}
}

func TestWritesStillReachFlash(t *testing.T) {
	// The cache must not absorb writes: flush counts (and thus the paper's
	// endurance results) are cache-independent.
	s, _ := wrapped(t, 64)
	for i := 0; i < 10; i++ {
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 16}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Device().Count.DataWrites; got != 10 {
		t.Fatalf("flash writes = %d, want 10 (write-through)", got)
	}
}

func TestWrapAcrossFTLAndResetStats(t *testing.T) {
	c := ssdconf.Tiny()
	inner, err := acrossftl.New(&c)
	if err != nil {
		t.Fatal(err)
	}
	s := Wrap(inner, 8)
	if s.Name() != "Across-FTL+cache" {
		t.Fatalf("Name = %q", s.Name())
	}
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 2056, Count: 12}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 2060, Count: 8}, 1); err != nil {
		t.Fatal(err)
	}
	// The across-page extent is not page-complete in DRAM, so the read
	// passes through to the inner scheme (which serves it as a direct read).
	if inner.Stats().DirectReads != 1 {
		t.Fatal("inner Across-FTL did not see the read")
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) || inner.Stats().DirectReads != 0 {
		t.Fatal("ResetStats did not propagate")
	}
	if s.TableBytes() != inner.TableBytes() {
		t.Fatal("TableBytes not forwarded")
	}
}

func TestCacheRejectsInvalidReads(t *testing.T) {
	s, c := wrapped(t, 4)
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: c.LogicalSectors(), Count: 8}, 0); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
}

func TestRandomizedConsistencyWithUncachedScheme(t *testing.T) {
	// The cache must never change which data is readable — only its cost.
	// Drive cached and uncached baselines with the same workload and compare
	// flash write counts (must match exactly: write-through) while read
	// counts may only shrink.
	c := ssdconf.Tiny()
	plain, err := ftl.NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	innerForCache, err := ftl.NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	cached := Wrap(innerForCache, 16)
	rng := rand.New(rand.NewSource(21))
	region := c.LogicalSectors() / 2
	for i := 0; i < 2000; i++ {
		off := rng.Int63n(region - 40)
		count := rng.Intn(32) + 1
		now := float64(i)
		if rng.Intn(2) == 0 {
			r := trace.Request{Op: trace.OpWrite, Offset: off, Count: count, Time: now}
			if _, err := plain.Write(r, now); err != nil {
				t.Fatal(err)
			}
			if _, err := cached.Write(r, now); err != nil {
				t.Fatal(err)
			}
		} else {
			r := trace.Request{Op: trace.OpRead, Offset: off, Count: count, Time: now}
			if _, err := plain.Read(r, now); err != nil {
				t.Fatal(err)
			}
			if _, err := cached.Read(r, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	if plain.Dev.Count.DataWrites != cached.Device().Count.DataWrites {
		t.Fatalf("write-through violated: %d vs %d",
			plain.Dev.Count.DataWrites, cached.Device().Count.DataWrites)
	}
	if cached.Device().Count.DataReads > plain.Dev.Count.DataReads {
		t.Fatalf("cache increased flash reads: %d vs %d",
			cached.Device().Count.DataReads, plain.Dev.Count.DataReads)
	}
	if cached.Stats().ReadHits == 0 {
		t.Fatal("cache never hit under a hot workload")
	}
}

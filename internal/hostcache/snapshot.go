package hostcache

import (
	"fmt"

	"across/internal/snapshot"
)

// CachePages returns the data-buffer capacity in pages the wrapper was
// built with (sim.Restore uses it to reconstruct the wrap).
func (s *Scheme) CachePages() int { return s.lru.Cap() }

// SnapshotState implements snapshot.Snapshotter: the wrapped scheme's state
// followed by the data buffer's residency and the cache statistics.
func (s *Scheme) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("hostcache")
	inner, ok := s.inner.(snapshot.Snapshotter)
	if !ok {
		return fmt.Errorf("hostcache: wrapped scheme %s does not support snapshots", s.inner.Name())
	}
	if err := inner.SnapshotState(enc); err != nil {
		return err
	}
	if err := s.lru.SnapshotState(enc); err != nil {
		return err
	}
	enc.I64(s.stats.ReadHits)
	enc.I64(s.stats.ReadMisses)
	enc.I64(s.stats.Inserted)
	return nil
}

// RestoreState implements snapshot.Snapshotter.
func (s *Scheme) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("hostcache")
	inner, ok := s.inner.(snapshot.Snapshotter)
	if !ok {
		return fmt.Errorf("hostcache: wrapped scheme %s does not support snapshots", s.inner.Name())
	}
	if err := inner.RestoreState(dec); err != nil {
		return err
	}
	if err := s.lru.RestoreState(dec); err != nil {
		return err
	}
	s.stats = Stats{
		ReadHits:   dec.I64(),
		ReadMisses: dec.I64(),
		Inserted:   dec.I64(),
	}
	return dec.Err()
}

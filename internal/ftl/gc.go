package ftl

import (
	"fmt"

	"across/internal/flash"
	"across/internal/obs"
)

// VictimPolicy selects how GC picks its victim block.
type VictimPolicy uint8

const (
	// VictimGreedy picks the full block with the fewest valid pages — the
	// default SSDsim policy used throughout the paper's evaluation.
	VictimGreedy VictimPolicy = iota
	// VictimFIFO picks the oldest full block regardless of its valid count;
	// the ablation benches use it to show how much the greedy choice
	// contributes to the erase results.
	VictimFIFO
)

// SetVictimPolicy switches the GC victim selection (ablation hook).
func (a *Allocator) SetVictimPolicy(p VictimPolicy) { a.victimPolicy = p }

// SetReferenceVictimScan switches victim selection to the retained
// O(blocks-per-plane) reference scan instead of the flash array's
// incrementally maintained victim index. Both must pick identical victim
// sequences — the differential tests replay workloads under both and
// assert bit-identical results; the reference scan exists only for that
// cross-check.
func (a *Allocator) SetReferenceVictimScan(on bool) { a.refScan = on }

// pickVictim selects the collection victim among the plane's full,
// non-active blocks under the configured policy. It returns -1 when no
// block would yield net free space. The victim comes from the array's
// per-plane valid-count index in O(1) amortised; pickVictimScan is the
// behaviourally identical reference.
func (a *Allocator) pickVictim(pl flash.PlaneID) flash.BlockID {
	st := &a.planes[pl]
	if a.refScan {
		return a.pickVictimScan(pl)
	}
	if a.victimPolicy == VictimFIFO {
		return a.dev.Array.FIFOVictim(pl, st.active, st.gcActive)
	}
	return a.dev.Array.GreedyVictim(pl, st.active, st.gcActive)
}

// pickVictimScan is the reference victim selection: a linear scan over the
// plane's blocks. It defines the semantics the indexed path must preserve
// (greedy: fewest valid pages, lowest block id on ties; FIFO: lowest
// block id among reclaimable full blocks).
func (a *Allocator) pickVictimScan(pl flash.PlaneID) flash.BlockID {
	geo := a.dev.Array.Geo
	st := &a.planes[pl]
	lo, hi := geo.BlocksOfPlane(pl)
	best := flash.BlockID(-1)
	bestValid := geo.PagesPerBlock // exclusive upper bound: all-valid gains nothing
	for b := lo; b < hi; b++ {
		if b == st.active || b == st.gcActive {
			continue
		}
		if a.dev.Array.WritePtr(b) != geo.PagesPerBlock {
			continue // not fully written; erasing it would waste free pages
		}
		v := a.dev.Array.ValidCount(b)
		if a.victimPolicy == VictimFIFO {
			if v < geo.PagesPerBlock {
				return b // oldest reclaimable full block
			}
			continue
		}
		if v < bestValid {
			best, bestValid = b, v
			if v == 0 {
				break
			}
		}
	}
	return best
}

// collect reclaims space in one plane until it is back above the GC
// threshold or no victim can make progress. Valid pages are migrated into
// the plane's GC-destination block; their owners are repointed through the
// migration callback; finally the victim is erased and returned to the free
// pool. All flash work is charged to the plane's chip timeline at time now,
// so host operations issued afterwards queue behind the collection — the
// foreground-GC latency effect the paper's erase/latency numbers rest on.
func (a *Allocator) collect(pl flash.PlaneID, now float64) error {
	st := &a.planes[pl]
	trc := a.dev.Tracer()
	victims, migrated := 0, 0
	for st.freePages <= a.threshold || len(st.freeBlocks) <= 1 {
		// Partial GC: stop after the configured number of victims as long
		// as the plane retains its reserve block; the next allocation will
		// resume collection.
		if a.maxVictims > 0 && victims >= a.maxVictims && len(st.freeBlocks) > 1 {
			a.emitGCSpan(trc, pl, victims, migrated, now)
			return nil
		}
		victim := a.pickVictim(pl)
		if victim < 0 {
			// Nothing reclaimable; allocation may continue into the
			// remaining free pages and fail later if truly exhausted.
			a.emitGCSpan(trc, pl, victims, migrated, now)
			return nil
		}
		a.dev.Count.GCInvocations++
		victims++
		if a.gcVictims != nil {
			a.gcVictims(pl, victim)
		}
		if trc != nil {
			trc.GCVictim(int(pl), int64(victim), a.dev.Array.ValidCount(victim), now)
		}
		a.gcScratch = a.dev.Array.AppendValidPages(a.gcScratch[:0], victim)
		migrated += len(a.gcScratch)
		for _, old := range a.gcScratch {
			tag := a.dev.Array.TagOf(old)
			if a.salvage != nil {
				handled, err := a.salvage(tag, old, pl, now)
				if err != nil {
					return fmt.Errorf("ftl: gc salvage: %w", err)
				}
				if handled {
					continue
				}
			}
			rdone, err := a.dev.Read(old, now, OpGC)
			if err != nil {
				return fmt.Errorf("ftl: gc read: %w", err)
			}
			dst, err := a.AllocGCPage(pl)
			if err != nil {
				return fmt.Errorf("ftl: gc destination: %w", err)
			}
			if _, err := a.dev.Program(dst, tag, rdone, OpGC); err != nil {
				return fmt.Errorf("ftl: gc program: %w", err)
			}
			if a.onMigrate == nil {
				return fmt.Errorf("ftl: gc migration of %v with no migrate callback", tag)
			}
			a.onMigrate(tag, old, dst)
			if err := a.dev.Invalidate(old); err != nil {
				return fmt.Errorf("ftl: gc invalidate: %w", err)
			}
		}
		if _, err := a.dev.Erase(victim, now); err != nil {
			return fmt.Errorf("ftl: gc erase: %w", err)
		}
		a.NoteErased(victim)
	}
	a.emitGCSpan(trc, pl, victims, migrated, now)
	return nil
}

// emitGCSpan reports one completed collection burst to the tracer. The span
// runs from the triggering allocation to the chip's busy horizon, which is
// where the erase of the last victim lands — the window during which host
// operations on that chip queue behind GC. A plain pre-return helper rather
// than a defer: a deferred closure would capture locals and allocate, which
// the no-op-tracer hot path must not.
func (a *Allocator) emitGCSpan(trc obs.Tracer, pl flash.PlaneID, victims, migrated int, start float64) {
	if trc == nil || victims == 0 {
		return
	}
	chip := int(a.dev.Array.Geo.ChipOfPlane(pl))
	trc.GCSpan(int(pl), victims, migrated, start, a.dev.Sched.BusyUntil(chip))
}

package ftl

import (
	"fmt"

	"across/internal/flash"
	"across/internal/mapping"
)

// TagPad marks mount-time padding: when recovery finds a partially written
// block, it seals the remaining pages with dummy programs (immediately
// invalidated) so the allocator's "blocks are either erased or full"
// invariant holds after a crash — the same thing real controllers do when
// they close open blocks at mount.
const TagPad uint8 = 0xF0

// RecoverAllocator rebuilds allocation state over a device whose array
// already holds data (a "crashed" device): fully erased blocks return to
// the free pools, partially written blocks are sealed with padding, and
// every counter is recomputed from the array. The onMigrate callback is
// installed as with NewAllocator.
func RecoverAllocator(dev *Device, onMigrate MigrateFunc) (*Allocator, error) {
	geo := dev.Array.Geo
	a := NewAllocator(dev, onMigrate)
	for pl := range a.planes {
		st := &a.planes[pl]
		st.freeBlocks = st.freeBlocks[:0]
		st.active, st.gcActive = -1, -1
		st.freePages = 0
		lo, hi := geo.BlocksOfPlane(flash.PlaneID(pl))
		for b := hi - 1; b >= lo; b-- {
			wp := dev.Array.WritePtr(b)
			switch {
			case wp == 0:
				st.freeBlocks = append(st.freeBlocks, b)
				st.freePages += int64(geo.PagesPerBlock)
			case wp < geo.PagesPerBlock:
				// Seal the open block.
				first := geo.FirstPage(b)
				for i := wp; i < geo.PagesPerBlock; i++ {
					p := first + flash.PPN(i)
					if err := dev.Array.Program(p, flash.Tag{Kind: TagPad, Key: -1}); err != nil {
						return nil, fmt.Errorf("ftl: recovery padding: %w", err)
					}
					if err := dev.Array.Invalidate(p); err != nil {
						return nil, fmt.Errorf("ftl: recovery padding: %w", err)
					}
				}
			}
		}
	}
	return a, nil
}

// RecoverBaseline mounts a baseline FTL over a crashed device by scanning
// every valid page's OOB tag: TagData pages rebuild the PMT; stale
// translation pages (none for the baseline, but a recovered device may have
// been written by a scheme that spilled maps) and any padding are
// invalidated. It returns an error on tags the baseline cannot own.
func RecoverBaseline(dev *Device) (*Baseline, error) {
	base, err := recoverBase(dev)
	if err != nil {
		return nil, err
	}
	s := &Baseline{Base: base}
	s.Al.SetMigrate(s.migrate)
	geo := dev.Array.Geo
	for b := flash.BlockID(0); int64(b) < geo.TotalBlocks(); b++ {
		for _, p := range dev.Array.ValidPages(b) {
			tag := dev.Array.TagOf(p)
			switch tag.Kind {
			case TagData:
				if old := s.PMT.SetPPN(tag.Key, p); old != flash.NilPPN {
					return nil, fmt.Errorf("ftl: recovery found two valid pages for lpn %d", tag.Key)
				}
			default:
				return nil, fmt.Errorf("ftl: baseline recovery met tag kind %d", tag.Kind)
			}
		}
	}
	return s, nil
}

// recoverBase builds the shared scheme state over an existing device with
// an empty PMT; callers rebuild the mappings from the OOB scan.
func recoverBase(dev *Device) (Base, error) {
	al, err := RecoverAllocator(dev, nil)
	if err != nil {
		return Base{}, err
	}
	b := Base{
		Conf: dev.Conf,
		Dev:  dev,
		Al:   al,
		PMT:  mapping.NewPMT(dev.Conf.LogicalPages()),
		SPP:  dev.Conf.SectorsPerPage(),
	}
	return b, nil
}

// RecoverBase is the exported hook other schemes' recovery paths build on.
func RecoverBase(dev *Device) (Base, error) { return recoverBase(dev) }

package ftl

import (
	"across/internal/flash"
	"across/internal/mapping"
	"across/internal/ssdconf"
	"across/internal/trace"
)

// Base bundles the state every scheme shares: device, allocator, page
// mapping table, and derived geometry. Schemes embed it.
type Base struct {
	Conf *ssdconf.Config
	Dev  *Device
	Al   *Allocator
	PMT  *mapping.PMT
	SPP  int // sectors per page

	splitBuf []PageSlice // reused by Split; valid until the next Split call
}

// NewBase wires a fresh device, allocator and PMT for a configuration.
func NewBase(conf *ssdconf.Config) (Base, error) {
	dev, err := NewDevice(conf)
	if err != nil {
		return Base{}, err
	}
	b := Base{
		Conf: conf,
		Dev:  dev,
		Al:   NewAllocator(dev, nil),
		PMT:  mapping.NewPMT(conf.LogicalPages()),
		SPP:  conf.SectorsPerPage(),
	}
	return b, nil
}

// Device implements part of the Scheme interface.
func (b *Base) Device() *Device { return b.Dev }

// Allocator exposes the page allocator (ablation and differential-test
// hooks reach victim-policy switches through it).
func (b *Base) Allocator() *Allocator { return b.Al }

// CheckRequest validates a request against the device's logical size.
func (b *Base) CheckRequest(r trace.Request) error {
	return r.Validate(b.Conf.LogicalSectors())
}

// PageSlice is one logical page's share of a request: the touched sector
// range [Start, End) expressed page-relative.
type PageSlice struct {
	LPN   int64
	Start int // first touched sector within the page
	End   int // exclusive end sector within the page
}

// Full reports whether the slice covers the whole page.
func (ps PageSlice) Full(spp int) bool { return ps.Start == 0 && ps.End == spp }

// Split cuts a request into per-page slices, the "sub-requests" of §2.1.
// The returned slice aliases a per-scheme scratch buffer: it is valid until
// the next Split call on the same scheme and must not be retained.
func (b *Base) Split(r trace.Request) []PageSlice {
	spp := int64(b.SPP)
	first, last := r.FirstLPN(b.SPP), r.LastLPN(b.SPP)
	out := b.splitBuf[:0]
	for lpn := first; lpn <= last; lpn++ {
		ps := PageSlice{LPN: lpn, Start: 0, End: b.SPP}
		if lpn == first {
			ps.Start = int(r.Offset - lpn*spp)
		}
		if lpn == last {
			ps.End = int(r.End() - lpn*spp)
		}
		out = append(out, ps)
	}
	b.splitBuf = out
	return out
}

// ProgramData allocates and programs one data page owned by lpn at time
// issue, updating the PMT and invalidating the superseded page. It returns
// the program completion time.
func (b *Base) ProgramData(lpn int64, issue float64) (float64, error) {
	ppn, err := b.Al.AllocPage(issue)
	if err != nil {
		return issue, err
	}
	done, err := b.Dev.Program(ppn, flash.Tag{Kind: TagData, Key: lpn}, issue, OpData)
	if err != nil {
		return issue, err
	}
	if old := b.PMT.SetPPN(lpn, ppn); old != flash.NilPPN {
		if err := b.Dev.Invalidate(old); err != nil {
			return issue, err
		}
	}
	return done, nil
}

// MigrateData is the TagData arm every scheme's migration callback shares:
// it repoints the PMT entry that owns a GC-moved page.
func (b *Base) MigrateData(tag flash.Tag, old, new flash.PPN) {
	if b.PMT.PPNOf(tag.Key) != old {
		panic("ftl: GC moved a data page the PMT does not own")
	}
	b.PMT.SetPPN(tag.Key, new)
}

package ftl

import (
	"fmt"

	"across/internal/flash"
)

// This file defines the scheme-side vocabulary of the verification layer
// (internal/check): where a logical sector's current contents live, and the
// shared audit/enumeration helpers for the structures every scheme embeds
// (the PMT and the MapStore). The interfaces themselves — Auditable and
// SectorResolver — are declared in internal/check; schemes satisfy them
// structurally without importing it.

// SourceKind says where a logical sector's current contents live.
type SourceKind uint8

const (
	// SrcUnwritten: the sector has never been materialised; a read returns
	// the formatted (zero) pattern and touches no flash.
	SrcUnwritten SourceKind = iota
	// SrcBuffered: the sector's newest copy sits in controller RAM (e.g.
	// MRSM's pack buffer) and has no flash location yet.
	SrcBuffered
	// SrcFlash: the sector's newest copy is the flash page PPN, whose OOB
	// tag must equal Tag.
	SrcFlash
)

// String implements fmt.Stringer for diagnostics.
func (k SourceKind) String() string {
	switch k {
	case SrcUnwritten:
		return "unwritten"
	case SrcBuffered:
		return "buffered"
	case SrcFlash:
		return "flash"
	}
	return fmt.Sprintf("SourceKind(%d)", uint8(k))
}

// SectorSource is a scheme's claim about one logical sector: the kind of
// location plus, for flash sources, the physical page and the OOB tag the
// scheme expects to find on it. The checker verifies the claim against the
// array — the page must be valid and carry exactly that tag — so a mapping
// entry pointing at a stale, foreign or erased page is a detected violation,
// not a silent wrong answer.
type SectorSource struct {
	Kind SourceKind
	PPN  flash.PPN
	Tag  flash.Tag
}

// AuditPMT verifies the data-page half of the shared page mapping table:
// every mapped logical page must reference a valid flash page whose OOB tag
// names that page as its owner.
func (b *Base) AuditPMT() error {
	for lpn := int64(0); lpn < b.PMT.Len(); lpn++ {
		ppn := b.PMT.PPNOf(lpn)
		if ppn == flash.NilPPN {
			continue
		}
		if st := b.Dev.Array.State(ppn); st != flash.PageValid {
			return fmt.Errorf("pmt: lpn %d maps to %v page %d", lpn, st, ppn)
		}
		tag := b.Dev.Array.TagOf(ppn)
		if tag.Kind != TagData || tag.Key != lpn {
			return fmt.Errorf("pmt: lpn %d page %d has foreign tag %+v", lpn, ppn, tag)
		}
	}
	return nil
}

// VisitPMT enumerates the flash pages the PMT owns.
func (b *Base) VisitPMT(fn func(flash.PPN) error) error {
	for lpn := int64(0); lpn < b.PMT.Len(); lpn++ {
		if ppn := b.PMT.PPNOf(lpn); ppn != flash.NilPPN {
			if err := fn(ppn); err != nil {
				return err
			}
		}
	}
	return nil
}

// ResolvePMT is the page-level resolution shared by Baseline and DFTL: the
// sector lives wherever its logical page is mapped.
func (b *Base) ResolvePMT(sec int64) (SectorSource, error) {
	if sec < 0 || sec >= b.Conf.LogicalSectors() {
		return SectorSource{}, fmt.Errorf("ftl: sector %d outside device", sec)
	}
	lpn := sec / int64(b.SPP)
	ppn := b.PMT.PPNOf(lpn)
	if ppn == flash.NilPPN {
		return SectorSource{Kind: SrcUnwritten}, nil
	}
	return SectorSource{
		Kind: SrcFlash,
		PPN:  ppn,
		Tag:  flash.Tag{Kind: TagData, Key: lpn},
	}, nil
}

// Audit verifies the map store's referential integrity: every materialised
// translation page must be a valid flash page tagged as that translation
// page.
func (m *MapStore) Audit() error {
	for id, ppn := range m.loc {
		if st := m.dev.Array.State(ppn); st != flash.PageValid {
			return fmt.Errorf("mapstore: translation page %d is %v page %d", id, st, ppn)
		}
		tag := m.dev.Array.TagOf(ppn)
		if tag.Kind != TagMap || tag.Key != id {
			return fmt.Errorf("mapstore: translation page %d page %d has foreign tag %+v", id, ppn, tag)
		}
	}
	return nil
}

// VisitPages enumerates the flash pages holding materialised translation
// pages. Iteration order is map order (nondeterministic); callers must be
// order-insensitive.
func (m *MapStore) VisitPages(fn func(flash.PPN) error) error {
	for _, ppn := range m.loc {
		if err := fn(ppn); err != nil {
			return err
		}
	}
	return nil
}

// AuditMapping implements check.Auditable for the baseline FTL: its only
// mapping structure is the DRAM-resident PMT.
func (s *Baseline) AuditMapping() error { return s.AuditPMT() }

// VisitOwned implements check.Auditable for the baseline FTL.
func (s *Baseline) VisitOwned(fn func(flash.PPN) error) error { return s.VisitPMT(fn) }

// ResolveSector implements check.SectorResolver for the baseline FTL.
func (s *Baseline) ResolveSector(sec int64) (SectorSource, error) { return s.ResolvePMT(sec) }

// AuditMapping implements check.Auditable for DFTL: the baseline's PMT plus
// the flash-resident translation pages behind the cached mapping table.
func (s *DFTL) AuditMapping() error {
	if err := s.AuditPMT(); err != nil {
		return err
	}
	return s.ms.Audit()
}

// VisitOwned implements check.Auditable for DFTL.
func (s *DFTL) VisitOwned(fn func(flash.PPN) error) error {
	if err := s.VisitPMT(fn); err != nil {
		return err
	}
	return s.ms.VisitPages(fn)
}

// ResolveSector implements check.SectorResolver for DFTL: residence of the
// mapping entry affects timing, not placement, so resolution is the
// baseline's.
func (s *DFTL) ResolveSector(sec int64) (SectorSource, error) { return s.ResolvePMT(sec) }

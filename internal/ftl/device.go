// Package ftl provides the machinery shared by every flash-translation-layer
// scheme in the repository: the Device facade that charges flash operations
// to chip timelines and operation counters, the dynamic page allocator with
// greedy garbage collection, the flash-resident translation-page store used
// by cached mapping tables, and the baseline page-level FTL scheme itself.
package ftl

import (
	"fmt"

	"across/internal/clock"
	"across/internal/flash"
	"across/internal/obs"
	"across/internal/ssdconf"
	"across/internal/trace"
)

// Tag kinds: the OOB namespace written with every programmed page, so GC can
// route a migrated page back to the mapping structure that owns it.
const (
	// TagData marks a normal data page; Key is the owning LPN.
	TagData uint8 = iota
	// TagAcross marks an across-page area page; Key is the AMT index.
	TagAcross
	// TagMap marks a flash-resident translation page; Key is the
	// translation-page id within the owning scheme's MapStore.
	TagMap
	// TagMRSM marks an MRSM sub-page-packed data page; the owner resolves
	// migrations through its per-PPN slot table, so Key is unused.
	TagMRSM
)

// OpClass attributes a flash operation for the Map/Data split of Fig 10 and
// the GC accounting of Fig 11.
type OpClass uint8

const (
	// OpData is host-caused user-data traffic (including RMW reads).
	OpData OpClass = iota
	// OpMap is mapping-table traffic (CMT miss loads and dirty flushes).
	OpMap
	// OpGC is garbage-collection migration traffic.
	OpGC
)

// Counters accumulates every externally visible cost of a run. The sim
// engine snapshots them after warm-up and reports deltas.
type Counters struct {
	DataReads  int64
	DataWrites int64
	MapReads   int64
	MapWrites  int64
	GCReads    int64
	GCWrites   int64
	Erases     int64

	// DRAMAccesses counts mapping-structure accesses in controller DRAM
	// (Fig 12b). Tree-based schemes charge one access per node visited.
	DRAMAccesses int64

	// GCInvocations counts GC victim selections (ablation reporting).
	GCInvocations int64
}

// FlashReads returns total flash page reads (Fig 10b, Map+Data).
func (c Counters) FlashReads() int64 { return c.DataReads + c.MapReads + c.GCReads }

// FlashWrites returns total flash page programs (Fig 10a, Map+Data).
func (c Counters) FlashWrites() int64 { return c.DataWrites + c.MapWrites + c.GCWrites }

// Sub subtracts a baseline snapshot, yielding the delta for a measured phase.
func (c Counters) Sub(base Counters) Counters {
	return Counters{
		DataReads:     c.DataReads - base.DataReads,
		DataWrites:    c.DataWrites - base.DataWrites,
		MapReads:      c.MapReads - base.MapReads,
		MapWrites:     c.MapWrites - base.MapWrites,
		GCReads:       c.GCReads - base.GCReads,
		GCWrites:      c.GCWrites - base.GCWrites,
		Erases:        c.Erases - base.Erases,
		DRAMAccesses:  c.DRAMAccesses - base.DRAMAccesses,
		GCInvocations: c.GCInvocations - base.GCInvocations,
	}
}

// Device is the controller-side facade over the flash array: it executes
// NAND commands, charges their latency to the owning chip's timeline (and,
// when TransferTime is configured, the shared channel bus), and attributes
// them to counters. Schemes never touch the array directly.
type Device struct {
	Conf  *ssdconf.Config
	Array *flash.Array
	Sched *clock.Scheduler
	// Bus holds one timeline per channel; page transfers serialise on it
	// when Conf.TransferTime > 0. Chips on one channel then contend for the
	// bus exactly as on real hardware.
	Bus   *clock.Scheduler
	Count Counters

	// trc receives observability events when tracing is enabled; traceOn
	// caches the nil check so the disabled hot path pays one branch.
	trc     obs.Tracer
	traceOn bool
}

// SetTracer installs (or, with nil, removes) the observability tracer. The
// tracer observes flash command service spans and — through Tracer() — lets
// the allocator and schemes emit GC, across-plan and cache events.
func (d *Device) SetTracer(t obs.Tracer) {
	if obs.IsNop(t) {
		t = nil
	}
	d.trc = t
	d.traceOn = t != nil
}

// Tracer returns the installed tracer, nil when tracing is off. Emission
// sites guard with a nil check, keeping the disabled cost to one branch.
func (d *Device) Tracer() obs.Tracer {
	if d.traceOn {
		return d.trc
	}
	return nil
}

// NewDevice builds an erased device for a validated configuration.
func NewDevice(conf *ssdconf.Config) (*Device, error) {
	arr, err := flash.NewArray(conf)
	if err != nil {
		return nil, err
	}
	return &Device{
		Conf:  conf,
		Array: arr,
		Sched: clock.NewScheduler(conf.Chips()),
		Bus:   clock.NewScheduler(conf.Channels),
	}, nil
}

// channelOf returns the bus a chip hangs off.
func (d *Device) channelOf(chip int) int { return chip / d.Conf.ChipsPerChan }

func (d *Device) countRead(class OpClass) {
	switch class {
	case OpData:
		d.Count.DataReads++
	case OpMap:
		d.Count.MapReads++
	case OpGC:
		d.Count.GCReads++
	}
}

func (d *Device) countWrite(class OpClass) {
	switch class {
	case OpData:
		d.Count.DataWrites++
	case OpMap:
		d.Count.MapWrites++
	case OpGC:
		d.Count.GCWrites++
	}
}

// Read performs a page read at time now and returns its completion time:
// the cell read on the chip, then (if modelled) the data transfer over the
// channel bus.
func (d *Device) Read(p flash.PPN, now float64, class OpClass) (float64, error) {
	if err := d.Array.Read(p); err != nil {
		return now, err
	}
	d.countRead(class)
	chip := int(d.Array.Geo.ChipOf(p))
	done := d.Sched.Schedule(chip, now, d.Conf.ReadTime)
	if d.traceOn {
		// The chip-occupancy span: the cell read, excluding bus transfer.
		d.trc.FlashOp(obs.FlashRead, uint8(class), chip, int64(p), done-d.Conf.ReadTime, done)
	}
	if d.Conf.TransferTime > 0 {
		done = d.Bus.Schedule(d.channelOf(chip), done, d.Conf.TransferTime)
	}
	return done, nil
}

// Program writes a page with its OOB tag at time now and returns the
// completion time: the data transfer over the channel bus (if modelled),
// then the cell program on the chip.
func (d *Device) Program(p flash.PPN, tag flash.Tag, now float64, class OpClass) (float64, error) {
	return d.programScaled(p, tag, now, class, 1)
}

// ProgramScaled writes a page whose program time is scaled by frac in
// (0,1] — MRSM programs only the sub-page regions a request touches (its
// multiregional pages admit region-granularity programming), so a partially
// filled packed page costs proportionally less time. The operation still
// counts as one flash write and consumes the whole page.
func (d *Device) ProgramScaled(p flash.PPN, tag flash.Tag, now float64, class OpClass, frac float64) (float64, error) {
	if frac <= 0 || frac > 1 {
		return now, fmt.Errorf("ftl: program fraction %v out of (0,1]", frac)
	}
	return d.programScaled(p, tag, now, class, frac)
}

func (d *Device) programScaled(p flash.PPN, tag flash.Tag, now float64, class OpClass, frac float64) (float64, error) {
	if err := d.Array.Program(p, tag); err != nil {
		return now, err
	}
	d.countWrite(class)
	chip := int(d.Array.Geo.ChipOf(p))
	start := now
	if d.Conf.TransferTime > 0 {
		start = d.Bus.Schedule(d.channelOf(chip), now, d.Conf.TransferTime*frac)
	}
	done := d.Sched.Schedule(chip, start, d.Conf.ProgramTime*frac)
	if d.traceOn {
		d.trc.FlashOp(obs.FlashProgram, uint8(class), chip, int64(p), done-d.Conf.ProgramTime*frac, done)
	}
	return done, nil
}

// Erase erases a block at time now and returns the completion time.
func (d *Device) Erase(b flash.BlockID, now float64) (float64, error) {
	if err := d.Array.Erase(b); err != nil {
		return now, err
	}
	d.Count.Erases++
	chip := int(d.Array.Geo.ChipOfPlane(d.Array.Geo.PlaneOfBlock(b)))
	done := d.Sched.Schedule(chip, now, d.Conf.EraseTime)
	if d.traceOn {
		d.trc.FlashOp(obs.FlashErase, uint8(OpGC), chip, int64(d.Array.Geo.FirstPage(b)), done-d.Conf.EraseTime, done)
	}
	return done, nil
}

// Invalidate marks a data page stale (no time cost; pure metadata).
func (d *Device) Invalidate(p flash.PPN) error { return d.Array.Invalidate(p) }

// DRAMAccess charges n mapping-structure accesses in DRAM and returns the
// serial latency they add to the critical path.
func (d *Device) DRAMAccess(n int) float64 {
	d.Count.DRAMAccesses += int64(n)
	return float64(n) * d.Conf.CacheAccess
}

// ResetMeasurement zeroes timelines and counters after warm-up while
// preserving array and mapping state. Erase counters inside the array keep
// accumulating (they are physical), so callers needing per-phase erase
// deltas snapshot Counters instead.
func (d *Device) ResetMeasurement() {
	d.Sched.Reset()
	d.Bus.Reset()
	d.Count = Counters{}
}

// Scheme is one FTL design under test. Write and Read service a host
// request arriving at time now and return its completion time.
type Scheme interface {
	Name() string
	Write(r trace.Request, now float64) (float64, error)
	Read(r trace.Request, now float64) (float64, error)
	// TableBytes reports the mapping-structure memory footprint (Fig 12a).
	TableBytes() int64
	// Device exposes the underlying device for metric collection.
	Device() *Device
}

// errf wraps scheme-internal failures with the scheme name for diagnosis.
func errf(scheme string, err error, format string, args ...any) error {
	return fmt.Errorf("%s: %s: %w", scheme, fmt.Sprintf(format, args...), err)
}

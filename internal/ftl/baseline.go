package ftl

import (
	"across/internal/clock"
	"across/internal/flash"
	"across/internal/ssdconf"
	"across/internal/trace"
)

// Baseline is the conventional dynamic page-level mapping FTL ("FTL" in the
// paper's comparison): requests split into page-sized sub-requests, partial
// pages are serviced with read-modify-write, and the full mapping table
// resides in DRAM so it generates no Map flash traffic. Across-page requests
// therefore cost two flash programs (and up to two RMW reads) — the penalty
// quantified in Fig 4 and removed by Across-FTL.
type Baseline struct {
	Base
}

// NewBaseline builds the baseline scheme on a fresh device.
func NewBaseline(conf *ssdconf.Config) (*Baseline, error) {
	base, err := NewBase(conf)
	if err != nil {
		return nil, err
	}
	s := &Baseline{Base: base}
	s.Al.SetMigrate(s.migrate)
	return s, nil
}

// Name implements Scheme.
func (s *Baseline) Name() string { return "FTL" }

// TableBytes implements Scheme: one entry per logical page, all in DRAM.
func (s *Baseline) TableBytes() int64 {
	return s.PMT.Len() * int64(s.Conf.MapEntryBytes)
}

func (s *Baseline) migrate(tag flash.Tag, old, new flash.PPN) {
	switch tag.Kind {
	case TagData:
		s.MigrateData(tag, old, new)
	default:
		panic("ftl: baseline GC met a foreign page tag")
	}
}

// Write implements Scheme. Each page slice costs one PMT access; partial
// slices of already-written pages read the old page first (RMW), then every
// slice programs one full page.
func (s *Baseline) Write(r trace.Request, now float64) (float64, error) {
	if err := s.CheckRequest(r); err != nil {
		return now, err
	}
	join := clock.NewJoin(now)
	var mapDelay float64
	for _, ps := range s.Split(r) {
		mapDelay += s.Dev.DRAMAccess(1) // PMT lookup + update
		issue := now
		if old := s.PMT.PPNOf(ps.LPN); old != flash.NilPPN && !ps.Full(s.SPP) {
			rdone, err := s.Dev.Read(old, now, OpData)
			if err != nil {
				return now, errf(s.Name(), err, "rmw read lpn %d", ps.LPN)
			}
			issue = rdone
		}
		done, err := s.ProgramData(ps.LPN, issue)
		if err != nil {
			return now, errf(s.Name(), err, "program lpn %d", ps.LPN)
		}
		join.Add(done)
	}
	join.AddDelay(mapDelay)
	return join.Done(), nil
}

// Read implements Scheme. Each mapped page slice costs one flash read;
// never-written pages return zeroes from the controller without flash work.
func (s *Baseline) Read(r trace.Request, now float64) (float64, error) {
	if err := s.CheckRequest(r); err != nil {
		return now, err
	}
	join := clock.NewJoin(now)
	var mapDelay float64
	for _, ps := range s.Split(r) {
		mapDelay += s.Dev.DRAMAccess(1)
		ppn := s.PMT.PPNOf(ps.LPN)
		if ppn == flash.NilPPN {
			continue
		}
		done, err := s.Dev.Read(ppn, now, OpData)
		if err != nil {
			return now, errf(s.Name(), err, "read lpn %d", ps.LPN)
		}
		join.Add(done)
	}
	join.AddDelay(mapDelay)
	return join.Done(), nil
}

var _ Scheme = (*Baseline)(nil)

package ftl

import (
	"across/internal/cache"
	"across/internal/flash"
)

// MapStore tracks where flash-resident translation pages currently live.
// Schemes whose mapping tables exceed DRAM (MRSM always; Across-FTL for its
// AMT) pair a cache.CMT (which decides *when* a translation page must be
// loaded or flushed) with a MapStore (which performs the resulting flash
// I/O, classed as OpMap).
//
// Translation pages are materialised lazily: a page that has never been
// flushed has no flash location, so its first load is free (the in-DRAM
// table starts zero-filled). This mirrors a freshly formatted DFTL-style
// directory and keeps Map reads attributable to genuine reload churn.
type MapStore struct {
	dev *Device
	al  *Allocator
	loc map[int64]flash.PPN
}

// NewMapStore creates an empty store.
func NewMapStore(dev *Device, al *Allocator) *MapStore {
	return &MapStore{dev: dev, al: al, loc: make(map[int64]flash.PPN)}
}

// Load charges the flash read for a translation-page miss, returning the
// completion time (now if the page was never materialised).
func (m *MapStore) Load(pageID int64, now float64) (float64, error) {
	ppn, ok := m.loc[pageID]
	if !ok {
		return now, nil
	}
	return m.dev.Read(ppn, now, OpMap)
}

// Flush writes a dirty translation page to a fresh flash page, invalidating
// its previous location, and returns the completion time.
func (m *MapStore) Flush(pageID int64, now float64) (float64, error) {
	ppn, err := m.al.AllocPage(now)
	if err != nil {
		return now, err
	}
	done, err := m.dev.Program(ppn, flash.Tag{Kind: TagMap, Key: pageID}, now, OpMap)
	if err != nil {
		return now, err
	}
	if old, ok := m.loc[pageID]; ok {
		if err := m.dev.Invalidate(old); err != nil {
			return now, err
		}
	}
	m.loc[pageID] = ppn
	return done, nil
}

// OnMigrate repoints a translation page after GC moved it.
func (m *MapStore) OnMigrate(pageID int64, old, new flash.PPN) bool {
	if cur, ok := m.loc[pageID]; ok && cur == old {
		m.loc[pageID] = new
		return true
	}
	return false
}

// Resident returns the number of materialised translation pages.
func (m *MapStore) Resident() int { return len(m.loc) }

// ApplyEffect executes the flash work a CMT touch demands and returns the
// time the mapping entry is usable. A dirty-victim flush is background work:
// it occupies its chip (delaying whatever queues behind it) but does not
// gate the requesting I/O, which only waits for the miss load of the entry
// it actually needs.
func (m *MapStore) ApplyEffect(e cache.Effect, pageID int64, now float64) (float64, error) {
	if e.FlushWrite {
		if _, err := m.Flush(e.Victim, now); err != nil {
			return now, err
		}
	}
	if e.MissRead {
		return m.Load(pageID, now)
	}
	return now, nil
}

package ftl

import (
	"across/internal/cache"
	"across/internal/clock"
	"across/internal/flash"
	"across/internal/obs"
	"across/internal/ssdconf"
	"across/internal/trace"
)

// DefaultDFTLCacheFrac is the share of the page-mapping table DFTL keeps in
// DRAM by default. DFTL's point is exactly that the full table does *not*
// fit, so the default is deliberately small.
const DefaultDFTLCacheFrac = 0.10

// DFTL is a demand-paged page-level FTL (Gupta et al., ASPLOS 2009): the
// same data path as the Baseline scheme, but with the mapping table itself
// stored in flash and only a cached fraction resident in DRAM. It is not
// part of the paper's comparison — the paper's baseline holds its table in
// DRAM — but it brackets the design space between that baseline and MRSM:
// page-granularity mapping with translation-page traffic. The extension
// study ext-dftl uses it to show how much of MRSM's overhead is due to
// sub-page granularity rather than to table spilling itself.
type DFTL struct {
	Base
	cmt *cache.CMT
	ms  *MapStore
}

// NewDFTL builds the scheme with the default resident fraction.
func NewDFTL(conf *ssdconf.Config) (*DFTL, error) {
	return NewDFTLWithCache(conf, 0)
}

// NewDFTLWithCache builds DFTL with an explicit number of resident
// translation pages (0 = DefaultDFTLCacheFrac of the table).
func NewDFTLWithCache(conf *ssdconf.Config, residentPages int) (*DFTL, error) {
	base, err := NewBase(conf)
	if err != nil {
		return nil, err
	}
	entriesPerPage := conf.PageBytes / conf.MapEntryBytes
	if residentPages == 0 {
		totalPages := int(base.PMT.Len()/int64(entriesPerPage)) + 1
		residentPages = int(float64(totalPages) * DefaultDFTLCacheFrac)
	}
	if residentPages < 2 {
		residentPages = 2
	}
	s := &DFTL{
		Base: base,
		cmt:  cache.NewCMTDense(entriesPerPage, residentPages, base.PMT.Len()),
	}
	s.ms = NewMapStore(s.Dev, s.Al)
	s.Al.SetMigrate(s.migrate)
	return s, nil
}

// Name implements Scheme.
func (s *DFTL) Name() string { return "DFTL" }

// TableBytes implements Scheme: the table is the same size as the
// baseline's; only its residence differs.
func (s *DFTL) TableBytes() int64 { return s.PMT.Len() * int64(s.Conf.MapEntryBytes) }

// CMTStats exposes translation-cache behaviour.
func (s *DFTL) CMTStats() cache.CMTStats { return s.cmt.Stats() }

// ResetStats clears cache statistics between warm-up and measurement.
func (s *DFTL) ResetStats() { s.cmt.ResetStats() }

func (s *DFTL) migrate(tag flash.Tag, old, new flash.PPN) {
	switch tag.Kind {
	case TagData:
		s.MigrateData(tag, old, new)
	case TagMap:
		if !s.ms.OnMigrate(tag.Key, old, new) {
			panic("dftl: GC moved a translation page the map store does not own")
		}
	default:
		panic("dftl: GC met a foreign page tag")
	}
}

// touch charges one mapping-entry access through the translation cache and
// returns (serial DRAM delay, time the entry is usable).
func (s *DFTL) touch(lpn int64, dirty bool, now float64) (float64, float64, error) {
	delay := s.Dev.DRAMAccess(1)
	eff := s.cmt.Touch(lpn, dirty)
	if trc := s.Dev.Tracer(); trc != nil {
		trc.CacheAccess(obs.CacheMapping, !eff.MissRead, now)
	}
	ready, err := s.ms.ApplyEffect(eff, s.cmt.PageOf(lpn), now)
	return delay, ready, err
}

// Write implements Scheme: the Baseline data path behind a demand-paged
// mapping lookup.
func (s *DFTL) Write(r trace.Request, now float64) (float64, error) {
	if err := s.CheckRequest(r); err != nil {
		return now, err
	}
	join := clock.NewJoin(now)
	var mapDelay float64
	for _, ps := range s.Split(r) {
		d, ready, err := s.touch(ps.LPN, true, now)
		if err != nil {
			return now, err
		}
		mapDelay += d
		issue := ready
		if old := s.PMT.PPNOf(ps.LPN); old != flash.NilPPN && !ps.Full(s.SPP) {
			rdone, err := s.Dev.Read(old, ready, OpData)
			if err != nil {
				return now, errf(s.Name(), err, "rmw read lpn %d", ps.LPN)
			}
			issue = rdone
		}
		done, err := s.ProgramData(ps.LPN, issue)
		if err != nil {
			return now, errf(s.Name(), err, "program lpn %d", ps.LPN)
		}
		join.Add(done)
	}
	join.AddDelay(mapDelay)
	return join.Done(), nil
}

// Read implements Scheme.
func (s *DFTL) Read(r trace.Request, now float64) (float64, error) {
	if err := s.CheckRequest(r); err != nil {
		return now, err
	}
	join := clock.NewJoin(now)
	var mapDelay float64
	for _, ps := range s.Split(r) {
		d, ready, err := s.touch(ps.LPN, false, now)
		if err != nil {
			return now, err
		}
		mapDelay += d
		ppn := s.PMT.PPNOf(ps.LPN)
		if ppn == flash.NilPPN {
			continue
		}
		done, err := s.Dev.Read(ppn, ready, OpData)
		if err != nil {
			return now, errf(s.Name(), err, "read lpn %d", ps.LPN)
		}
		join.Add(done)
	}
	join.AddDelay(mapDelay)
	return join.Done(), nil
}

var _ Scheme = (*DFTL)(nil)

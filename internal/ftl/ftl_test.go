package ftl

import (
	"errors"
	"math/rand"
	"testing"

	"across/internal/flash"
	"across/internal/ssdconf"
	"across/internal/trace"
)

func tinyBaseline(t *testing.T) (*Baseline, *ssdconf.Config) {
	t.Helper()
	c := ssdconf.Tiny()
	s, err := NewBaseline(&c)
	if err != nil {
		t.Fatalf("NewBaseline: %v", err)
	}
	return s, &c
}

func TestSplitSubRequests(t *testing.T) {
	s, _ := tinyBaseline(t)
	// write(1028K, 6K) on 8 KB pages: sectors [2056, 2068) -> LPN 128 [8,16),
	// LPN 129 [0,4) — the Fig 3 example.
	r := trace.Request{Op: trace.OpWrite, Offset: 2056, Count: 12}
	got := s.Split(r)
	want := []PageSlice{{LPN: 128, Start: 8, End: 16}, {LPN: 129, Start: 0, End: 4}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Split = %+v, want %+v", got, want)
	}
	if got[0].Full(16) || got[1].Full(16) {
		t.Error("partial slices reported Full")
	}
	full := s.Split(trace.Request{Offset: 2048, Count: 16})
	if len(full) != 1 || !full[0].Full(16) {
		t.Errorf("aligned split = %+v, want one full slice", full)
	}
}

// TestPaperFigure3AcrossWriteCost encodes the conventional-FTL workflow of
// Fig 3: an across-page write triggers two separate flash programs.
func TestPaperFigure3AcrossWriteCost(t *testing.T) {
	s, _ := tinyBaseline(t)
	r := trace.Request{Op: trace.OpWrite, Offset: 2056, Count: 12} // write(1028K, 6K)
	if _, err := s.Write(r, 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := s.Dev.Count.DataWrites; got != 2 {
		t.Fatalf("flash programs = %d, want 2 (one per touched SSD page)", got)
	}
	// First-ever write: no old data, so no RMW reads.
	if got := s.Dev.Count.DataReads; got != 0 {
		t.Fatalf("flash reads = %d, want 0 on first write", got)
	}
	// Updating the same across-page range now RMWs both pages.
	if _, err := s.Write(r, 10); err != nil {
		t.Fatal(err)
	}
	if got := s.Dev.Count.DataWrites; got != 4 {
		t.Fatalf("flash programs = %d, want 4", got)
	}
	if got := s.Dev.Count.DataReads; got != 2 {
		t.Fatalf("RMW reads = %d, want 2", got)
	}
}

func TestBaselineAlignedWriteNoRMW(t *testing.T) {
	s, _ := tinyBaseline(t)
	r := trace.Request{Op: trace.OpWrite, Offset: 2048, Count: 16}
	for i := 0; i < 3; i++ {
		if _, err := s.Write(r, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Dev.Count.DataReads; got != 0 {
		t.Fatalf("aligned overwrites caused %d RMW reads, want 0", got)
	}
	if got := s.Dev.Count.DataWrites; got != 3 {
		t.Fatalf("writes = %d, want 3", got)
	}
}

func TestBaselineReadUnwrittenIsFree(t *testing.T) {
	s, _ := tinyBaseline(t)
	done, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dev.Count.DataReads != 0 {
		t.Fatal("read of unwritten page touched flash")
	}
	if done < 5 {
		t.Fatalf("done = %v before arrival", done)
	}
}

func TestBaselineReadAfterWriteLatency(t *testing.T) {
	s, c := tinyBaseline(t)
	w := trace.Request{Op: trace.OpWrite, Offset: 0, Count: 16}
	if _, err := s.Write(w, 0); err != nil {
		t.Fatal(err)
	}
	// Read far after the write: chip idle, latency = cache access + read.
	done, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000 + c.CacheAccess + c.ReadTime
	if done < want-1e-9 || done > want+1e-9 {
		t.Fatalf("read completion = %v, want %v", done, want)
	}
}

func TestWriteLatencyIncludesProgramTime(t *testing.T) {
	s, c := tinyBaseline(t)
	done, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := c.CacheAccess + c.ProgramTime
	if done < want-1e-9 || done > want+1e-9 {
		t.Fatalf("write completion = %v, want %v", done, want)
	}
}

func TestMultiPageWriteFansOutAcrossChips(t *testing.T) {
	s, c := tinyBaseline(t)
	// Tiny config has 2 chips; a 2-page aligned write should program both
	// pages in parallel, so completion ~ one program, not two.
	done, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 32}, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial := 2 * c.ProgramTime
	if done >= serial {
		t.Fatalf("2-page write completed at %v; want parallel (< %v)", done, serial)
	}
}

func TestBaselineRejectsOutOfBounds(t *testing.T) {
	s, c := tinyBaseline(t)
	r := trace.Request{Op: trace.OpWrite, Offset: c.LogicalSectors(), Count: 8}
	if _, err := s.Write(r, 0); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if _, err := s.Read(r, 0); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if _, err := s.Write(trace.Request{Count: 0}, 0); err == nil {
		t.Fatal("zero-count write accepted")
	}
}

func TestGCReclaimsSpaceUnderChurn(t *testing.T) {
	s, c := tinyBaseline(t)
	// Hammer a small working set far larger than one block's worth of
	// updates; GC must keep reclaiming and erase counts must grow.
	working := c.LogicalSectors() / 4
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		off := (rng.Int63n(working / 16)) * 16
		r := trace.Request{Op: trace.OpWrite, Offset: off, Count: 16}
		if _, err := s.Write(r, float64(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if s.Dev.Array.TotalErases() == 0 {
		t.Fatal("no erases after heavy churn; GC never ran")
	}
	if s.Dev.Count.GCWrites == 0 && s.Dev.Count.GCInvocations == 0 {
		t.Fatal("no GC activity recorded")
	}
	free, valid, _ := s.Dev.Array.CountStates()
	if free == 0 {
		t.Fatal("device wedged with zero free pages")
	}
	if valid == 0 {
		t.Fatal("no valid data survived churn")
	}
}

func TestGCPreservesReadableData(t *testing.T) {
	s, c := tinyBaseline(t)
	// Write a recognisable working set, churn another region, then verify
	// that every page of the original set still reads from flash without
	// errors (its PMT mapping survived GC migration).
	for lpn := int64(0); lpn < 8; lpn++ {
		r := trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}
		if _, err := s.Write(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	churnBase := c.LogicalSectors() / 2
	for i := 0; i < 3000; i++ {
		off := churnBase + int64(i%32)*16
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: off, Count: 16}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Dev.Array.TotalErases() == 0 {
		t.Skip("churn did not trigger GC in this geometry")
	}
	before := s.Dev.Count.DataReads
	for lpn := int64(0); lpn < 8; lpn++ {
		if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: lpn * 16, Count: 16}, 1e6); err != nil {
			t.Fatalf("read of lpn %d after GC: %v", lpn, err)
		}
	}
	if got := s.Dev.Count.DataReads - before; got != 8 {
		t.Fatalf("reads = %d, want 8 (all pages still mapped)", got)
	}
}

func TestOutOfSpaceIsDetected(t *testing.T) {
	c := ssdconf.Tiny()
	c.OverProvision = 0.05 // almost no slack
	s, err := NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	// Filling every logical page with unique valid data leaves GC nothing
	// to reclaim once free space is exhausted: expect ErrOutOfSpace
	// eventually rather than a hang or panic. Writing each logical page
	// once is within capacity; writing them repeatedly adds map-free churn
	// that GC *can* reclaim, so fill sequentially then keep appending new
	// valid data via updates that always relocate.
	var sawErr error
	for pass := 0; pass < 40 && sawErr == nil; pass++ {
		for lpn := int64(0); lpn < c.LogicalPages() && sawErr == nil; lpn++ {
			_, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, 0)
			if err != nil {
				sawErr = err
			}
		}
	}
	// A device with only 5% OP and a 10% GC threshold cannot keep every
	// logical page valid; allocation must fail crisply if it fails at all.
	if sawErr != nil && !errors.Is(sawErr, ErrOutOfSpace) {
		t.Fatalf("unexpected error kind: %v", sawErr)
	}
}

func TestCountersSubAndTotals(t *testing.T) {
	a := Counters{DataReads: 5, MapReads: 2, GCReads: 1, DataWrites: 7, MapWrites: 3, GCWrites: 2, Erases: 4}
	b := Counters{DataReads: 1, MapReads: 1, GCReads: 1, DataWrites: 2, MapWrites: 1, GCWrites: 1, Erases: 1}
	d := a.Sub(b)
	if d.DataReads != 4 || d.Erases != 3 {
		t.Fatalf("Sub = %+v", d)
	}
	if a.FlashReads() != 8 || a.FlashWrites() != 12 {
		t.Fatalf("totals = %d/%d, want 8/12", a.FlashReads(), a.FlashWrites())
	}
}

func TestAllocatorStripesAcrossChips(t *testing.T) {
	c := ssdconf.Tiny() // 2 channels x 1 chip
	dev, err := NewDevice(&c)
	if err != nil {
		t.Fatal(err)
	}
	al := NewAllocator(dev, func(flash.Tag, flash.PPN, flash.PPN) {})
	var chips []flash.ChipID
	for i := 0; i < 4; i++ {
		ppn, err := al.AllocPage(0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dev.Program(ppn, flash.Tag{Kind: TagData, Key: int64(i)}, 0, OpData); err != nil {
			t.Fatal(err)
		}
		chips = append(chips, dev.Array.Geo.ChipOf(ppn))
	}
	if chips[0] == chips[1] {
		t.Fatalf("consecutive allocations on same chip %v; want striping", chips)
	}
	if chips[0] != chips[2] || chips[1] != chips[3] {
		t.Fatalf("striping not round-robin: %v", chips)
	}
}

func TestDeviceResetMeasurementKeepsState(t *testing.T) {
	s, _ := tinyBaseline(t)
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 16}, 0); err != nil {
		t.Fatal(err)
	}
	s.Dev.ResetMeasurement()
	if s.Dev.Count.DataWrites != 0 {
		t.Fatal("counters survived reset")
	}
	if s.Dev.Sched.Horizon() != 0 {
		t.Fatal("timelines survived reset")
	}
	// Mapping state must survive: the page is still readable.
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 0); err != nil {
		t.Fatal(err)
	}
	if s.Dev.Count.DataReads != 1 {
		t.Fatal("mapping state lost across reset")
	}
}

func TestMapStoreLazyMaterialisation(t *testing.T) {
	c := ssdconf.Tiny()
	dev, err := NewDevice(&c)
	if err != nil {
		t.Fatal(err)
	}
	al := NewAllocator(dev, nil)
	ms := NewMapStore(dev, al)
	// Cold load: free.
	if done, err := ms.Load(7, 3); err != nil || done != 3 {
		t.Fatalf("cold Load = (%v,%v), want (3,nil)", done, err)
	}
	if dev.Count.MapReads != 0 {
		t.Fatal("cold load touched flash")
	}
	// Flush materialises; subsequent load costs a read.
	if _, err := ms.Flush(7, 3); err != nil {
		t.Fatal(err)
	}
	if dev.Count.MapWrites != 1 {
		t.Fatalf("MapWrites = %d, want 1", dev.Count.MapWrites)
	}
	if _, err := ms.Load(7, 4); err != nil {
		t.Fatal(err)
	}
	if dev.Count.MapReads != 1 {
		t.Fatalf("MapReads = %d, want 1", dev.Count.MapReads)
	}
	// Re-flush invalidates the old location.
	if _, err := ms.Flush(7, 5); err != nil {
		t.Fatal(err)
	}
	if ms.Resident() != 1 {
		t.Fatalf("Resident = %d, want 1", ms.Resident())
	}
	_, _, invalid := dev.Array.CountStates()
	if invalid != 1 {
		t.Fatalf("invalid pages = %d, want 1 (superseded translation page)", invalid)
	}
}

func TestMapStoreMigration(t *testing.T) {
	c := ssdconf.Tiny()
	dev, _ := NewDevice(&c)
	al := NewAllocator(dev, nil)
	ms := NewMapStore(dev, al)
	if _, err := ms.Flush(1, 0); err != nil {
		t.Fatal(err)
	}
	var old flash.PPN
	for p := flash.PPN(0); ; p++ {
		if dev.Array.State(p) == flash.PageValid {
			old = p
			break
		}
	}
	if !ms.OnMigrate(1, old, old+100) {
		t.Fatal("OnMigrate refused a correct relocation")
	}
	if ms.OnMigrate(1, old, old+200) {
		t.Fatal("OnMigrate accepted a stale relocation")
	}
}

package ftl

import (
	"fmt"
	"sort"

	"across/internal/flash"
	"across/internal/snapshot"
)

// SnapshotState appends the allocator's mutable state: the round-robin
// cursor and, per plane, the free-block stack in exact order (pop order is
// observable), active and GC-active blocks, and the free-page count. The
// striping order, thresholds and policy knobs are config-derived and the GC
// scratch buffers are unobservable, so none of those are serialised.
func (a *Allocator) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("alloc")
	enc.I64(int64(a.rr))
	enc.I64(int64(len(a.planes)))
	for pl := range a.planes {
		st := &a.planes[pl]
		free := make([]int64, len(st.freeBlocks))
		for i, b := range st.freeBlocks {
			free[i] = int64(b)
		}
		enc.I64s(free)
		enc.I64(int64(st.active))
		enc.I64(int64(st.gcActive))
		enc.I64(st.freePages)
	}
	return nil
}

// RestoreState reads state written by SnapshotState into an allocator built
// over the same geometry.
func (a *Allocator) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("alloc")
	rr := dec.I64()
	planes := dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if planes != int64(len(a.planes)) {
		return fmt.Errorf("ftl: snapshot allocator has %d planes, device has %d", planes, len(a.planes))
	}
	if rr < 0 || rr >= int64(len(a.order)) {
		return fmt.Errorf("ftl: snapshot allocator round-robin cursor %d outside [0,%d)", rr, len(a.order))
	}
	geo := a.dev.Array.Geo
	for pl := range a.planes {
		free := dec.I64s()
		active := dec.I64()
		gcActive := dec.I64()
		freePages := dec.I64()
		if err := dec.Err(); err != nil {
			return err
		}
		lo, hi := geo.BlocksOfPlane(flash.PlaneID(pl))
		st := &a.planes[pl]
		st.freeBlocks = st.freeBlocks[:0]
		for _, b := range free {
			if b < int64(lo) || b >= int64(hi) {
				return fmt.Errorf("ftl: snapshot free block %d outside plane %d [%d,%d)", b, pl, lo, hi)
			}
			st.freeBlocks = append(st.freeBlocks, flash.BlockID(b))
		}
		for _, b := range []int64{active, gcActive} {
			if b != -1 && (b < int64(lo) || b >= int64(hi)) {
				return fmt.Errorf("ftl: snapshot active block %d outside plane %d [%d,%d)", b, pl, lo, hi)
			}
		}
		if freePages < 0 || freePages > a.pagesPlane {
			return fmt.Errorf("ftl: snapshot plane %d free pages %d outside [0,%d]", pl, freePages, a.pagesPlane)
		}
		st.active = flash.BlockID(active)
		st.gcActive = flash.BlockID(gcActive)
		st.freePages = freePages
	}
	a.rr = int(rr)
	return nil
}

// SnapshotState appends the translation-page location map sorted by page id
// (map iteration order is nondeterministic; sorting keeps the encoding
// canonical).
func (m *MapStore) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("mapstore")
	ids := make([]int64, 0, len(m.loc))
	for id := range m.loc {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ppns := make([]int64, len(ids))
	for i, id := range ids {
		ppns[i] = int64(m.loc[id])
	}
	enc.I64s(ids)
	enc.I64s(ppns)
	return nil
}

// RestoreState reads state written by SnapshotState, rebuilding the map.
func (m *MapStore) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("mapstore")
	ids := dec.I64s()
	ppns := dec.I64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(ids) != len(ppns) {
		return fmt.Errorf("ftl: snapshot map store columns sized %d/%d", len(ids), len(ppns))
	}
	loc := make(map[int64]flash.PPN, len(ids))
	for i, id := range ids {
		if _, dup := loc[id]; dup {
			return fmt.Errorf("ftl: snapshot map store page %d duplicated", id)
		}
		loc[id] = flash.PPN(ppns[i])
	}
	m.loc = loc
	return nil
}

// SnapshotBase appends the state shared by every scheme: chip and bus
// timelines, operation counters, the flash array, the allocator and the
// page mapping table. Schemes embed Base and call this first from their
// SnapshotState.
func (b *Base) SnapshotBase(enc *snapshot.Encoder) error {
	enc.Tag("base")
	if err := b.Dev.Sched.SnapshotState(enc); err != nil {
		return err
	}
	if err := b.Dev.Bus.SnapshotState(enc); err != nil {
		return err
	}
	c := &b.Dev.Count
	enc.Tag("counters")
	enc.I64(c.DataReads)
	enc.I64(c.DataWrites)
	enc.I64(c.MapReads)
	enc.I64(c.MapWrites)
	enc.I64(c.GCReads)
	enc.I64(c.GCWrites)
	enc.I64(c.Erases)
	enc.I64(c.DRAMAccesses)
	enc.I64(c.GCInvocations)
	if err := b.Dev.Array.SnapshotState(enc); err != nil {
		return err
	}
	if err := b.Al.SnapshotState(enc); err != nil {
		return err
	}
	return b.PMT.SnapshotState(enc)
}

// RestoreBase reads state written by SnapshotBase.
func (b *Base) RestoreBase(dec *snapshot.Decoder) error {
	dec.Tag("base")
	if err := b.Dev.Sched.RestoreState(dec); err != nil {
		return err
	}
	if err := b.Dev.Bus.RestoreState(dec); err != nil {
		return err
	}
	dec.Tag("counters")
	c := &b.Dev.Count
	c.DataReads = dec.I64()
	c.DataWrites = dec.I64()
	c.MapReads = dec.I64()
	c.MapWrites = dec.I64()
	c.GCReads = dec.I64()
	c.GCWrites = dec.I64()
	c.Erases = dec.I64()
	c.DRAMAccesses = dec.I64()
	c.GCInvocations = dec.I64()
	if err := dec.Err(); err != nil {
		return err
	}
	if err := b.Dev.Array.RestoreState(dec); err != nil {
		return err
	}
	if err := b.Al.RestoreState(dec); err != nil {
		return err
	}
	return b.PMT.RestoreState(dec)
}

// SnapshotState implements snapshot.Snapshotter: the baseline FTL has no
// state beyond the shared Base.
func (s *Baseline) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("scheme:FTL")
	return s.SnapshotBase(enc)
}

// RestoreState implements snapshot.Snapshotter.
func (s *Baseline) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("scheme:FTL")
	if err := s.RestoreBase(dec); err != nil {
		return err
	}
	return dec.Err()
}

// SnapshotState implements snapshot.Snapshotter for DFTL: Base plus the
// cached mapping table and the on-flash translation-page locations.
func (s *DFTL) SnapshotState(enc *snapshot.Encoder) error {
	enc.Tag("scheme:DFTL")
	if err := s.SnapshotBase(enc); err != nil {
		return err
	}
	if err := s.cmt.SnapshotState(enc); err != nil {
		return err
	}
	return s.ms.SnapshotState(enc)
}

// RestoreState implements snapshot.Snapshotter.
func (s *DFTL) RestoreState(dec *snapshot.Decoder) error {
	dec.Tag("scheme:DFTL")
	if err := s.RestoreBase(dec); err != nil {
		return err
	}
	if err := s.cmt.RestoreState(dec); err != nil {
		return err
	}
	if err := s.ms.RestoreState(dec); err != nil {
		return err
	}
	return dec.Err()
}

package ftl

import (
	"errors"
	"fmt"

	"across/internal/flash"
)

// ErrOutOfSpace is returned when allocation needs a page and garbage
// collection cannot reclaim one (the logical working set exceeds what
// over-provisioning allows).
var ErrOutOfSpace = errors.New("ftl: out of flash space (GC cannot reclaim)")

// MigrateFunc is invoked by GC after it has copied a valid page, so the
// owning mapping structure can repoint itself from old to new. The tag is
// the OOB metadata the page was programmed with.
type MigrateFunc func(tag flash.Tag, old, new flash.PPN)

// SalvageFunc lets a scheme reclaim a victim page's live contents itself
// instead of the default whole-page copy — MRSM uses it to repack live
// sub-page slots densely (dropping dead slots) during collection. It must
// leave the page invalid when it reports handled=true. Flash work it issues
// should use the GC allocation path (AllocGCPage) and OpGC class.
type SalvageFunc func(tag flash.Tag, old flash.PPN, pl flash.PlaneID, now float64) (handled bool, err error)

// planeState is the per-plane allocation domain.
type planeState struct {
	freeBlocks []flash.BlockID // erased blocks, used as a stack
	active     flash.BlockID   // current host-write block (-1 if none)
	gcActive   flash.BlockID   // current GC-destination block (-1 if none)
	freePages  int64           // programmable pages across the plane
}

// Allocator hands out physical pages using dynamic page allocation: host
// writes stripe round-robin across planes (and therefore across channels),
// each plane programs one active block sequentially, and a greedy garbage
// collector reclaims space per plane when its free fraction drops below the
// configured threshold — the default SSDsim policy the paper builds on.
type Allocator struct {
	dev          *Device
	planes       []planeState
	order        []flash.PlaneID // round-robin order, striped across chips
	rr           int
	pagesPlane   int64
	threshold    int64 // GC trigger in pages
	onMigrate    MigrateFunc
	salvage      SalvageFunc  // optional scheme-driven reclamation
	victimPolicy VictimPolicy // GC victim selection
	maxVictims   int          // partial GC: victims per invocation (0 = unbounded)
	wearLevel    bool         // pick least-worn free blocks
	refScan      bool         // use the reference victim scan instead of the index
	gcScratch    []flash.PPN  // reused per-victim valid-page list (no steady-state allocs)
	gcVictims    func(plane flash.PlaneID, victim flash.BlockID) // test hook, may be nil
}

// NewAllocator prepares per-plane free lists over a fresh device.
func NewAllocator(dev *Device, onMigrate MigrateFunc) *Allocator {
	geo := dev.Array.Geo
	a := &Allocator{
		dev:        dev,
		planes:     make([]planeState, geo.Planes),
		pagesPlane: int64(geo.BlocksPerPlane) * int64(geo.PagesPerBlock),
		onMigrate:  onMigrate,
	}
	a.threshold = int64(float64(a.pagesPlane) * dev.Conf.GCThreshold)
	for pl := range a.planes {
		lo, hi := geo.BlocksOfPlane(flash.PlaneID(pl))
		st := &a.planes[pl]
		st.active, st.gcActive = -1, -1
		st.freePages = a.pagesPlane
		// Push in reverse so block lo is popped first (deterministic).
		for b := hi - 1; b >= lo; b-- {
			st.freeBlocks = append(st.freeBlocks, b)
		}
	}
	// Stripe consecutive allocations across chips: order planes by their
	// index within the chip first, then by chip. Consecutive pages of a
	// multi-page request then land on different chips and proceed in
	// parallel, which is the point of dynamic allocation.
	planesPerChip := geo.Planes / geo.Chips
	for within := 0; within < planesPerChip; within++ {
		for chip := 0; chip < geo.Chips; chip++ {
			a.order = append(a.order, flash.PlaneID(chip*planesPerChip+within))
		}
	}
	return a
}

// SetMigrate installs the GC migration callback (schemes call it once their
// mapping structures exist).
func (a *Allocator) SetMigrate(f MigrateFunc) { a.onMigrate = f }

// SetSalvage installs the optional scheme-driven reclamation hook.
func (a *Allocator) SetSalvage(f SalvageFunc) { a.salvage = f }

// SetWearLeveling makes block allocation pick the least-erased free block
// instead of the most recently freed one — dynamic wear levelling. It costs
// an O(free blocks) scan per block allocation and narrows the per-block
// erase spread (see the ext-wear study and the wear-levelling bench).
func (a *Allocator) SetWearLeveling(on bool) { a.wearLevel = on }

// SetGCVictimHook registers an observer called with every GC victim as it is
// chosen (differential tests record the selection sequence). Nil removes it.
func (a *Allocator) SetGCVictimHook(f func(plane flash.PlaneID, victim flash.BlockID)) {
	a.gcVictims = f
}

// SetMaxVictimsPerGC bounds how many victim blocks one garbage-collection
// invocation may process (0 = until the plane is above its threshold).
// Bounding it implements *partial GC*: reclamation is spread over many
// invocations so a single host request never stalls behind a long
// collection burst — the long-tail-latency technique of the partial-GC
// line of work the paper cites ([18]). The total reclamation work is
// unchanged; only its clustering differs.
func (a *Allocator) SetMaxVictimsPerGC(n int) { a.maxVictims = n }

// FreePages returns the programmable pages remaining in a plane.
func (a *Allocator) FreePages(pl flash.PlaneID) int64 { return a.planes[pl].freePages }

// GCDebtPages sums, over all planes, how far each plane's free-page count
// sits below its GC trigger threshold — the reclamation backlog the metrics
// sampler reports as a gauge. Zero means every plane is above threshold.
func (a *Allocator) GCDebtPages() int64 {
	var debt int64
	for i := range a.planes {
		if d := a.threshold - a.planes[i].freePages; d > 0 {
			debt += d
		}
	}
	return debt
}

// TotalFreePages sums free pages over the device.
func (a *Allocator) TotalFreePages() int64 {
	var n int64
	for i := range a.planes {
		n += a.planes[i].freePages
	}
	return n
}

// nextBlock pops an erased block for a plane: the top of the stack, or the
// least-worn free block when wear levelling is on.
func (a *Allocator) nextBlock(st *planeState) (flash.BlockID, bool) {
	n := len(st.freeBlocks)
	if n == 0 {
		return -1, false
	}
	pick := n - 1
	if a.wearLevel {
		for i := 0; i < n-1; i++ {
			if a.dev.Array.EraseCount(st.freeBlocks[i]) < a.dev.Array.EraseCount(st.freeBlocks[pick]) {
				pick = i
			}
		}
	}
	b := st.freeBlocks[pick]
	st.freeBlocks[pick] = st.freeBlocks[n-1]
	st.freeBlocks = st.freeBlocks[:n-1]
	return b, true
}

// pageFrom takes the next page of the given active block, refreshing the
// block from the free list when exhausted. gc selects the host or GC
// cursor; the host cursor keeps one erased block in reserve so collection
// always has a destination, which is what makes GC deadlock-free.
func (a *Allocator) pageFrom(pl flash.PlaneID, gc bool) (flash.PPN, error) {
	st := &a.planes[pl]
	cur := &st.active
	reserve := 1
	if gc {
		cur = &st.gcActive
		reserve = 0
	}
	geo := a.dev.Array.Geo
	if *cur < 0 || a.dev.Array.FreeInBlock(*cur) == 0 {
		if len(st.freeBlocks) <= reserve {
			return flash.NilPPN, fmt.Errorf("%w: plane %d has %d free blocks (reserve %d)",
				ErrOutOfSpace, pl, len(st.freeBlocks), reserve)
		}
		b, ok := a.nextBlock(st)
		if !ok {
			return flash.NilPPN, fmt.Errorf("%w: plane %d has no free blocks", ErrOutOfSpace, pl)
		}
		*cur = b
	}
	ppn := geo.FirstPage(*cur) + flash.PPN(a.dev.Array.WritePtr(*cur))
	st.freePages--
	return ppn, nil
}

// AllocPage reserves the next host-write page, running garbage collection
// first if the target plane is below its free-space threshold. The page is
// reserved, not yet programmed; the caller must program it immediately (the
// array enforces in-order programming, so interleaving allocations with
// deferred programs within one plane is a bug).
//
// The returned time is when the reservation is usable: if GC ran, it equals
// now (GC latency surfaces through the chip timeline, delaying the
// subsequent program exactly as a real foreground GC would).
func (a *Allocator) AllocPage(now float64) (flash.PPN, error) {
	pl := a.order[a.rr]
	a.rr = (a.rr + 1) % len(a.order)
	st := &a.planes[pl]
	needsBlock := st.active < 0 || a.dev.Array.FreeInBlock(st.active) == 0
	if st.freePages <= a.threshold || (needsBlock && len(st.freeBlocks) <= 1) {
		if err := a.collect(pl, now); err != nil {
			return flash.NilPPN, err
		}
	}
	return a.pageFrom(pl, false)
}

// AllocGCPage reserves a migration-destination page within a specific plane.
func (a *Allocator) AllocGCPage(pl flash.PlaneID) (flash.PPN, error) {
	return a.pageFrom(pl, true)
}

// NoteErased returns a block to its plane's free pool after an erase.
func (a *Allocator) NoteErased(b flash.BlockID) {
	pl := a.dev.Array.Geo.PlaneOfBlock(b)
	st := &a.planes[pl]
	st.freeBlocks = append(st.freeBlocks, b)
	st.freePages += int64(a.dev.Array.Geo.PagesPerBlock)
}

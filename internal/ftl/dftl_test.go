package ftl

import (
	"math/rand"
	"testing"

	"across/internal/flash"
	"across/internal/ssdconf"
	"across/internal/trace"
)

func tinyDFTL(t *testing.T, resident int) (*DFTL, *ssdconf.Config) {
	t.Helper()
	c := ssdconf.Tiny()
	s, err := NewDFTLWithCache(&c, resident)
	if err != nil {
		t.Fatalf("NewDFTL: %v", err)
	}
	return s, &c
}

func TestDFTLDataPathMatchesBaseline(t *testing.T) {
	// With a cache large enough to never miss, DFTL's flash data ops equal
	// the baseline's exactly (the data path is shared).
	c := ssdconf.Tiny()
	base, err := NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	dftl, _ := tinyDFTL(t, 1024)
	rng := rand.New(rand.NewSource(2))
	region := c.LogicalSectors() / 2
	for i := 0; i < 1500; i++ {
		off := rng.Int63n(region - 40)
		count := rng.Intn(32) + 1
		now := float64(i)
		var r trace.Request
		if rng.Intn(2) == 0 {
			r = trace.Request{Op: trace.OpWrite, Offset: off, Count: count, Time: now}
			if _, err := base.Write(r, now); err != nil {
				t.Fatal(err)
			}
			if _, err := dftl.Write(r, now); err != nil {
				t.Fatal(err)
			}
		} else {
			r = trace.Request{Op: trace.OpRead, Offset: off, Count: count, Time: now}
			if _, err := base.Read(r, now); err != nil {
				t.Fatal(err)
			}
			if _, err := dftl.Read(r, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	if base.Dev.Count.DataWrites != dftl.Dev.Count.DataWrites {
		t.Errorf("data writes differ: baseline %d, DFTL %d",
			base.Dev.Count.DataWrites, dftl.Dev.Count.DataWrites)
	}
	if base.Dev.Count.DataReads != dftl.Dev.Count.DataReads {
		t.Errorf("data reads differ: baseline %d, DFTL %d",
			base.Dev.Count.DataReads, dftl.Dev.Count.DataReads)
	}
	if dftl.Dev.Count.MapWrites != 0 {
		t.Errorf("all-resident DFTL produced %d map writes", dftl.Dev.Count.MapWrites)
	}
}

func TestDFTLSpillsUnderCachePressure(t *testing.T) {
	s, c := tinyDFTL(t, 2) // two resident translation pages
	// Tiny config: 1024 entries per translation page covers all 224 LPNs in
	// one page, so shrink the grouping via a bigger entry to force spread.
	_ = c
	// Scatter writes over the whole logical space; with only 2 resident
	// pages and 1 total translation page the cache never spills on Tiny.
	// Use a config with small pages to get several translation pages.
	c2 := ssdconf.Tiny()
	c2.MapEntryBytes = 512 // 16 entries per translation page
	s2, err := NewDFTLWithCache(&c2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 600; i++ {
		off := rng.Int63n(c2.LogicalSectors()/2-16) / 16 * 16
		if _, err := s2.Write(trace.Request{Op: trace.OpWrite, Offset: off, Count: 16}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s2.Dev.Count.MapWrites == 0 || s2.Dev.Count.MapReads == 0 {
		t.Fatalf("no map traffic under pressure: %+v", s2.Dev.Count)
	}
	st := s2.CMTStats()
	if st.Misses == 0 {
		t.Fatal("no CMT misses recorded")
	}
	s2.ResetStats()
	if s2.CMTStats().Lookups != 0 {
		t.Fatal("ResetStats did not clear")
	}
	_ = s
}

func TestDFTLTableBytesEqualsBaseline(t *testing.T) {
	c := ssdconf.Tiny()
	base, _ := NewBaseline(&c)
	dftl, _ := NewDFTL(&c)
	if base.TableBytes() != dftl.TableBytes() {
		t.Fatalf("table sizes differ: %d vs %d", base.TableBytes(), dftl.TableBytes())
	}
	if dftl.Name() != "DFTL" {
		t.Fatal("name mismatch")
	}
}

func TestDFTLSurvivesGCChurn(t *testing.T) {
	c := ssdconf.Tiny()
	c.MapEntryBytes = 512
	s, err := NewDFTLWithCache(&c, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	pages := c.LogicalSectors() / 16 / 2
	for i := 0; i < 5000; i++ {
		lpn := rng.Int63n(pages)
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, float64(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if s.Dev.Count.Erases == 0 {
		t.Fatal("no GC under churn")
	}
	// Everything still readable.
	for lpn := int64(0); lpn < 8; lpn++ {
		if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: lpn * 16, Count: 16}, 1e7); err != nil {
			t.Fatalf("read after churn: %v", err)
		}
	}
}

func TestDFTLRejectsInvalidRequests(t *testing.T) {
	s, c := tinyDFTL(t, 4)
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: c.LogicalSectors(), Count: 4}, 0); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if _, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 0}, 0); err == nil {
		t.Fatal("zero-count read accepted")
	}
}

func TestBaselineRecoveryInPackage(t *testing.T) {
	c := ssdconf.Tiny()
	s, err := NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := int64(0); lpn < 6; lpn++ {
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Partial write leaves stale + a partially filled block.
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 4}, 1); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverBaseline(s.Dev)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := int64(0); lpn < 6; lpn++ {
		if rec.PMT.PPNOf(lpn) != s.PMT.PPNOf(lpn) {
			t.Fatalf("lpn %d mapping lost", lpn)
		}
	}
	if rec.Device() != s.Dev {
		t.Fatal("recovered scheme does not own the same device")
	}
	// Allocator accessors over the recovered pools.
	var free int64
	for pl := 0; pl < rec.Dev.Array.Geo.Planes; pl++ {
		free += rec.Al.FreePages(flash.PlaneID(pl))
	}
	if free != rec.Al.TotalFreePages() {
		t.Fatal("per-plane free pages do not sum to total")
	}
	// Salvage hook installation is a no-op for the baseline but must not
	// disturb subsequent GC.
	rec.Al.SetSalvage(nil)
	churn(t, rec, &c, 3000, 19)
	if rec.Dev.Count.Erases == 0 {
		t.Fatal("no GC after recovery")
	}
}

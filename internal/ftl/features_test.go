package ftl

import (
	"math/rand"
	"testing"

	"across/internal/flash"
	"across/internal/ssdconf"
	"across/internal/trace"
)

func TestTransferTimeExtendsOps(t *testing.T) {
	c := ssdconf.Tiny()
	c.TransferTime = 0.5
	s, err := NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := c.CacheAccess + c.ProgramTime + c.TransferTime
	if done < want-1e-9 || done > want+1e-9 {
		t.Fatalf("write completion = %v, want %v (program + transfer)", done, want)
	}
	rdone, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want = 100 + c.CacheAccess + c.ReadTime + c.TransferTime
	if rdone < want-1e-9 || rdone > want+1e-9 {
		t.Fatalf("read completion = %v, want %v", rdone, want)
	}
}

func TestNegativeTransferTimeRejected(t *testing.T) {
	c := ssdconf.Tiny()
	c.TransferTime = -1
	if _, err := NewBaseline(&c); err == nil {
		t.Fatal("negative TransferTime accepted")
	}
}

func TestProgramScaledValidatesFraction(t *testing.T) {
	c := ssdconf.Tiny()
	dev, err := NewDevice(&c)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, -0.5, 1.5} {
		if _, err := dev.ProgramScaled(0, flash.Tag{}, 0, OpData, frac); err == nil {
			t.Errorf("fraction %v accepted", frac)
		}
	}
	done, err := dev.ProgramScaled(0, flash.Tag{Kind: TagData, Key: 0}, 0, OpData, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := (c.ProgramTime + c.TransferTime) * 0.25
	if done < want-1e-9 || done > want+1e-9 {
		t.Fatalf("scaled program = %v, want %v", done, want)
	}
}

// churn drives a baseline scheme with page-aligned overwrites until GC has
// cycled a few times.
func churn(t *testing.T, s *Baseline, c *ssdconf.Config, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pages := c.LogicalSectors() / int64(c.SectorsPerPage()) / 2
	for i := 0; i < n; i++ {
		lpn := rng.Int63n(pages)
		r := trace.Request{Op: trace.OpWrite, Offset: lpn * int64(c.SectorsPerPage()), Count: c.SectorsPerPage()}
		if _, err := s.Write(r, float64(i)); err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
	}
}

func TestPartialGCBoundsVictimsPerInvocation(t *testing.T) {
	c := ssdconf.Tiny()
	run := func(maxVictims int) (invocations int64, erases int64, maxBurst int) {
		s, err := NewBaseline(&c)
		if err != nil {
			t.Fatal(err)
		}
		burst := 0
		s.Al.gcVictims = func(flash.PlaneID, flash.BlockID) { burst++ }
		s.Al.SetMaxVictimsPerGC(maxVictims)
		// Count victims per AllocPage call via the test hook: reset burst
		// around each write by sampling the max delta.
		prev := 0
		rng := rand.New(rand.NewSource(11))
		pages := c.LogicalSectors() / 16 / 2
		for i := 0; i < 4000; i++ {
			lpn := rng.Int63n(pages)
			if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, float64(i)); err != nil {
				t.Fatal(err)
			}
			if d := burst - prev; d > maxBurst {
				maxBurst = d
			}
			prev = burst
		}
		return s.Dev.Count.GCInvocations, s.Dev.Count.Erases, maxBurst
	}
	_, erasesFull, _ := run(0)
	_, erasesPartial, burstPartial := run(1)
	if burstPartial > 2 {
		// One write can allocate 1 page => at most 1 GC invocation with
		// maxVictims=1, but a write of 2 pages may trigger 2.
		t.Fatalf("partial GC burst = %d victims within one request, want <= 2", burstPartial)
	}
	// Total reclamation work is conserved within a reasonable margin.
	if erasesPartial > erasesFull*2 || erasesFull > erasesPartial*2 {
		t.Fatalf("erase totals diverged: full=%d partial=%d", erasesFull, erasesPartial)
	}
}

func TestFIFOVictimPolicyStillReclaims(t *testing.T) {
	c := ssdconf.Tiny()
	s, err := NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	s.Al.SetVictimPolicy(VictimFIFO)
	churn(t, s, &c, 4000, 3)
	if s.Dev.Count.Erases == 0 {
		t.Fatal("FIFO policy never erased")
	}
	// FIFO ignores valid counts, so it must migrate at least as much as
	// greedy would; just assert the device stayed healthy.
	free, _, _ := s.Dev.Array.CountStates()
	if free <= 0 {
		t.Fatal("device wedged under FIFO policy")
	}
}

func TestWearStatsTracksSpread(t *testing.T) {
	c := ssdconf.Tiny()
	s, err := NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	mean, sd, lo, hi := s.Dev.Array.WearStats()
	if mean != 0 || sd != 0 || lo != 0 || hi != 0 {
		t.Fatal("fresh device has wear")
	}
	churn(t, s, &c, 5000, 7)
	mean, sd, lo, hi = s.Dev.Array.WearStats()
	if mean <= 0 || hi <= 0 {
		t.Fatalf("no wear recorded after churn: mean=%v hi=%d", mean, hi)
	}
	if lo > hi || float64(lo) > mean || mean > float64(hi) {
		t.Fatalf("wear ordering broken: lo=%d mean=%v hi=%d", lo, mean, hi)
	}
	if sd < 0 {
		t.Fatalf("negative stddev %v", sd)
	}
	// Greedy GC without wear levelling leaves a spread.
	if hi == lo {
		t.Log("note: perfectly even wear (unusual but not wrong)")
	}
}

func TestWearLevelingNarrowsSpread(t *testing.T) {
	c := ssdconf.Tiny()
	run := func(wl bool) (spread int64, sd float64) {
		s, err := NewBaseline(&c)
		if err != nil {
			t.Fatal(err)
		}
		s.Al.SetWearLeveling(wl)
		// A skewed workload: hammer a tiny hot set so some blocks churn
		// constantly while others hold cold data.
		for lpn := int64(0); lpn < 40; lpn++ {
			if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, 0); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 8000; i++ {
			lpn := rng.Int63n(8)
			if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		_, stddev, lo, hi := s.Dev.Array.WearStats()
		return hi - lo, stddev
	}
	spreadOff, sdOff := run(false)
	spreadOn, sdOn := run(true)
	if spreadOn > spreadOff {
		t.Errorf("wear levelling widened the spread: %d vs %d", spreadOn, spreadOff)
	}
	if sdOn > sdOff {
		t.Errorf("wear levelling raised stddev: %.2f vs %.2f", sdOn, sdOff)
	}
}

// TestAllocatorAccountingInvariant cross-checks the allocator's incremental
// free-page counters against a full device recount under churn.
func TestAllocatorAccountingInvariant(t *testing.T) {
	c := ssdconf.Tiny()
	s, err := NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pages := c.LogicalSectors() / 16 / 2
	for i := 0; i < 3000; i++ {
		lpn := rng.Int63n(pages)
		if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: lpn * 16, Count: 16}, float64(i)); err != nil {
			t.Fatal(err)
		}
		if i%251 == 0 {
			free, _, _ := s.Dev.Array.CountStates()
			if got := s.Al.TotalFreePages(); got != free {
				t.Fatalf("step %d: allocator free=%d, device recount=%d", i, got, free)
			}
		}
	}
}

func TestChannelBusContention(t *testing.T) {
	// Two chips on one channel: with TransferTime modelled, two
	// simultaneous programs to different chips serialise their transfers
	// on the shared bus, but the cell programs overlap.
	c := ssdconf.Tiny()
	c.Channels = 1
	c.ChipsPerChan = 2
	c.TransferTime = 0.5
	s, err := NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	// A 2-page aligned write stripes across the two chips.
	done, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 32}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// First transfer [0, 0.5), program [0.5, 2.5); second transfer queues
	// on the bus [0.5, 1.0), program [1.0, 3.0). Plus 2 cache accesses.
	want := 3.0 + 2*c.CacheAccess
	if done < want-1e-9 || done > want+1e-9 {
		t.Fatalf("completion = %v, want %v (bus-serialised transfers)", done, want)
	}
	// Same write with two channels: transfers no longer contend.
	c2 := ssdconf.Tiny()
	c2.TransferTime = 0.5 // 2 channels x 1 chip
	s2, err := NewBaseline(&c2)
	if err != nil {
		t.Fatal(err)
	}
	done2, err := s2.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 32}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want2 := 2.5 + 2*c2.CacheAccess
	if done2 < want2-1e-9 || done2 > want2+1e-9 {
		t.Fatalf("two-channel completion = %v, want %v", done2, want2)
	}
}

func TestReadTransferFollowsCellRead(t *testing.T) {
	c := ssdconf.Tiny()
	c.TransferTime = 0.25
	s, err := NewBaseline(&c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(trace.Request{Op: trace.OpWrite, Offset: 0, Count: 16}, 0); err != nil {
		t.Fatal(err)
	}
	done, err := s.Read(trace.Request{Op: trace.OpRead, Offset: 0, Count: 16}, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 + c.CacheAccess + c.ReadTime + c.TransferTime
	if done < want-1e-9 || done > want+1e-9 {
		t.Fatalf("read completion = %v, want %v", done, want)
	}
}

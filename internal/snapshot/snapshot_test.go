package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"testing"
)

// writeSample encodes one of every primitive and returns the sealed blob.
func writeSample(t *testing.T) []byte {
	t.Helper()
	e := NewEncoder()
	e.Tag("sample")
	e.Bool(true)
	e.Bool(false)
	e.U8(0xAB)
	e.I32(-7)
	e.I64(1 << 40)
	e.F64(3.5)
	e.Str("hello, snapshot")
	e.Bytes([]byte{1, 2, 3})
	e.I32s([]int32{-1, 0, 1})
	e.I64s([]int64{-9, 9})
	e.F64s([]float64{0.25, -0.5})
	blob, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return blob
}

func TestRoundTripPrimitives(t *testing.T) {
	blob := writeSample(t)
	d, err := NewDecoder(blob)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.Tag("sample")
	if !d.Bool() || d.Bool() {
		t.Error("bool mismatch")
	}
	if got := d.U8(); got != 0xAB {
		t.Errorf("u8 = %#x", got)
	}
	if got := d.I32(); got != -7 {
		t.Errorf("i32 = %d", got)
	}
	if got := d.I64(); got != 1<<40 {
		t.Errorf("i64 = %d", got)
	}
	if got := d.F64(); got != 3.5 {
		t.Errorf("f64 = %v", got)
	}
	if got := d.Str(); got != "hello, snapshot" {
		t.Errorf("str = %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", got)
	}
	if got := d.I32s(); len(got) != 3 || got[0] != -1 || got[2] != 1 {
		t.Errorf("i32s = %v", got)
	}
	if got := d.I64s(); len(got) != 2 || got[0] != -9 || got[1] != 9 {
		t.Errorf("i64s = %v", got)
	}
	if got := d.F64s(); len(got) != 2 || got[0] != 0.25 || got[1] != -0.5 {
		t.Errorf("f64s = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// Encoding is deterministic: the same writes always seal to the same bytes.
func TestEncodeDeterministic(t *testing.T) {
	a, b := writeSample(t), writeSample(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical encodes differ")
	}
}

func TestDecoderRejectsTruncatedContainer(t *testing.T) {
	blob := writeSample(t)
	for _, n := range []int{0, 1, 4, headerSize - 1} {
		if _, err := NewDecoder(blob[:n]); !errors.Is(err, ErrTruncated) {
			t.Errorf("len %d: err = %v, want ErrTruncated", n, err)
		}
	}
	// Truncating the compressed payload corrupts the stream.
	if _, err := NewDecoder(blob[:len(blob)-3]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated payload: err = %v, want ErrCorrupt", err)
	}
}

func TestDecoderRejectsBadMagic(t *testing.T) {
	blob := writeSample(t)
	blob[0] = 'Z'
	if _, err := NewDecoder(blob); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestDecoderRejectsVersionSkew(t *testing.T) {
	blob := writeSample(t)
	binary.LittleEndian.PutUint32(blob[4:8], Version+1)
	if _, err := NewDecoder(blob); !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestDecoderRejectsUnknownFlags(t *testing.T) {
	blob := writeSample(t)
	binary.LittleEndian.PutUint32(blob[8:12], 0x80)
	if _, err := NewDecoder(blob); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestDecoderRejectsChecksumFlip(t *testing.T) {
	blob := writeSample(t)
	blob[20] ^= 0xFF // first checksum byte
	if _, err := NewDecoder(blob); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecoderRejectsImplausibleLength(t *testing.T) {
	blob := writeSample(t)
	binary.LittleEndian.PutUint64(blob[12:20], maxBody+1)
	if _, err := NewDecoder(blob); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

// A wrong section tag, hostile length prefixes and over-reads all arm the
// sticky error instead of panicking, and zero values come back after it.
func TestDecoderStickyError(t *testing.T) {
	e := NewEncoder()
	e.Tag("alpha")
	e.I64(42)
	blob, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	d.Tag("beta") // mismatch arms the error
	if d.Err() == nil {
		t.Fatal("tag mismatch not detected")
	}
	if got := d.I64(); got != 0 {
		t.Errorf("post-error I64 = %d, want 0", got)
	}
	if err := d.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Finish = %v, want ErrCorrupt", err)
	}
}

func TestDecoderRejectsHostileSliceLength(t *testing.T) {
	e := NewEncoder()
	e.I64s([]int64{1})
	blob, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Read the honest slice's length prefix as a scalar, leaving one
	// element (8 bytes) in the body; then claim a huge slice.
	if n := d.I64(); n != 1 {
		t.Fatalf("length prefix = %d", n)
	}
	if got := d.I64s(); got != nil { // 8 bytes left: prefix consumed, no room for data
		t.Errorf("hostile slice = %v", got)
	}
	if d.Err() == nil {
		t.Error("hostile slice length not detected")
	}
}

func TestDecoderRejectsTrailingBytes(t *testing.T) {
	e := NewEncoder()
	e.I64(1)
	e.I64(2)
	blob, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	_ = d.I64()
	if err := d.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Finish = %v, want ErrCorrupt (trailing bytes)", err)
	}
}

func TestDecoderRejectsBadBool(t *testing.T) {
	e := NewEncoder()
	e.U8(7)
	blob, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(blob)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bool(); d.Err() == nil {
		t.Error("bool byte 7 accepted")
	}
}

func TestDecoderUncompressedBody(t *testing.T) {
	// Hand-build an uncompressed container (flags = 0).
	body := make([]byte, 8)
	binary.LittleEndian.PutUint64(body, 99)
	blob := sealRaw(body)
	d, err := NewDecoder(blob)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if got := d.I64(); got != 99 {
		t.Errorf("i64 = %d", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

// sealRaw wraps a body in an uncompressed container (test helper mirroring
// what Finish does for the compressed path).
func sealRaw(body []byte) []byte {
	sum := sha(body)
	out := make([]byte, 0, headerSize+len(body))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint32(out, 0)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(body)))
	out = append(out, sum...)
	out = append(out, body...)
	return out
}

func sha(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

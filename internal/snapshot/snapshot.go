// Package snapshot implements the versioned binary codec for warm-state
// simulator snapshots. A snapshot captures the complete mutable state of an
// aged device — flash array, mapping tables, allocator and GC state, DRAM
// caches, host cache and chip clocks — so that a sweep can age once and fork
// every variant replay from the checkpoint instead of re-aging (DESIGN §13).
//
// Container layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "AXSN"
//	4       4     format version (currently 1)
//	8       4     flags (bit 0: body is DEFLATE-compressed)
//	12      8     uncompressed body length in bytes
//	20      32    SHA-256 of the uncompressed body
//	52      ...   body (compressed when flag bit 0 is set)
//
// The body is a flat sequence of fixed-width primitives and length-prefixed
// slices produced by Encoder and consumed by Decoder. Section tags (Tag)
// are embedded as strings and verified on decode, so a structural mismatch
// between writer and reader fails loudly instead of misinterpreting bytes.
//
// Determinism: every encoder input is produced in a canonical order
// (map-backed state is serialised sorted by key), DEFLATE at a fixed level
// is deterministic for a given input, and the checksum covers the
// uncompressed body — so encode→decode→encode reproduces the container
// byte for byte. The decoder is hardened against hostile inputs (fuzzed by
// FuzzSnapshotDecode): it never allocates from header-claimed sizes beyond
// what the input actually contains, bounds every read, and returns typed
// errors instead of panicking.
package snapshot

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the snapshot format version written by this package. Decoders
// reject any other version with ErrVersion.
const Version = 1

const (
	magic      = "AXSN"
	headerSize = 4 + 4 + 4 + 8 + sha256.Size

	flagCompressed = 1 << 0
	knownFlags     = flagCompressed

	// maxBody bounds the uncompressed body length a decoder will accept.
	// A full Table 1 device serialises to well under 1 GiB; the cap stops
	// decompression bombs long before they hurt.
	maxBody = 1 << 31
)

// Typed decode errors. Errors returned by Decoder methods and NewDecoder
// wrap one of these sentinels.
var (
	// ErrTruncated: the container is shorter than its header or its body
	// ends mid-stream.
	ErrTruncated = errors.New("snapshot: truncated container")
	// ErrFormat: bad magic, unknown flags, or an implausible body length.
	ErrFormat = errors.New("snapshot: not a snapshot container")
	// ErrVersion: a well-formed container written by an incompatible
	// format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrCorrupt: checksum mismatch, or a structural inconsistency inside
	// the body (bad section tag, out-of-bounds length, trailing bytes).
	ErrCorrupt = errors.New("snapshot: corrupt body")
)

// Snapshotter is implemented by every state-owning component that
// participates in a snapshot, mirroring check.Auditable: SnapshotState
// appends the component's complete mutable state to the encoder and
// RestoreState reads it back into a freshly constructed (same-config)
// receiver. Restore must validate sizes against the receiver's
// config-derived structure rather than allocating from decoded values.
type Snapshotter interface {
	SnapshotState(enc *Encoder) error
	RestoreState(dec *Decoder) error
}

// Encoder builds a snapshot body. Methods never fail; Finish seals the
// container (checksum + compression + header) and returns the blob.
type Encoder struct {
	body bytes.Buffer
	tmp  [8]byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

func (e *Encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.tmp[:4], v)
	e.body.Write(e.tmp[:4])
}

func (e *Encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.tmp[:8], v)
	e.body.Write(e.tmp[:8])
}

// Tag writes a named section marker. Decoders verify the same name at the
// same position, catching writer/reader drift.
func (e *Encoder) Tag(name string) { e.Str(name) }

// Bool writes a boolean as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.body.WriteByte(1)
	} else {
		e.body.WriteByte(0)
	}
}

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.body.WriteByte(v) }

// I32 writes a fixed-width 32-bit integer.
func (e *Encoder) I32(v int32) { e.u32(uint32(v)) }

// I64 writes a fixed-width 64-bit integer.
func (e *Encoder) I64(v int64) { e.u64(uint64(v)) }

// F64 writes an IEEE-754 double.
func (e *Encoder) F64(v float64) { e.u64(math.Float64bits(v)) }

// Str writes a length-prefixed UTF-8 string.
func (e *Encoder) Str(s string) {
	e.u32(uint32(len(s)))
	e.body.WriteString(s)
}

// Bytes writes a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.body.Write(b)
}

// I32s writes a length-prefixed []int32.
func (e *Encoder) I32s(v []int32) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u32(uint32(x))
	}
}

// I64s writes a length-prefixed []int64.
func (e *Encoder) I64s(v []int64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(uint64(x))
	}
}

// F64s writes a length-prefixed []float64.
func (e *Encoder) F64s(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(math.Float64bits(x))
	}
}

// Finish seals the body into a self-describing snapshot (AXSN) container:
// header with version, flags, uncompressed length and SHA-256 of the
// uncompressed body, followed by the DEFLATE-compressed body.
func (e *Encoder) Finish() ([]byte, error) {
	return Seal(magic, Version, e)
}

// Seal seals an encoder's body into a container carrying an arbitrary
// 4-byte magic and format version — the same layout, determinism and
// hardening as snapshot containers, reusable by other versioned binary
// artifacts (the trace-v2 workload container is one). Open is its inverse.
func Seal(containerMagic string, version uint32, e *Encoder) ([]byte, error) {
	if len(containerMagic) != 4 {
		return nil, fmt.Errorf("%w: magic %q must be 4 bytes", ErrFormat, containerMagic)
	}
	raw := e.body.Bytes()
	if len(raw) > maxBody {
		return nil, fmt.Errorf("%w: body %d bytes exceeds %d", ErrFormat, len(raw), maxBody)
	}
	sum := sha256.Sum256(raw)

	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(raw); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}

	out := make([]byte, 0, headerSize+comp.Len())
	out = append(out, containerMagic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint32(out, flagCompressed)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(raw)))
	out = append(out, sum[:]...)
	out = append(out, comp.Bytes()...)
	return out, nil
}

// Decoder reads a snapshot body with a sticky error: after the first
// failure every subsequent read returns a zero value and Err/Finish report
// the original cause. Callers may therefore decode a whole section and
// check the error once.
type Decoder struct {
	body []byte
	off  int
	err  error
}

// NewDecoder validates a snapshot (AXSN) container (magic, version, flags,
// length, checksum), decompresses the body, and returns a decoder positioned
// at the first byte. Hostile inputs yield a typed error, never a panic, and
// decompression work is bounded by the declared (capped) body length.
func NewDecoder(blob []byte) (*Decoder, error) {
	return Open(magic, Version, blob)
}

// Open is the inverse of Seal: it validates a container carrying the given
// magic and version and returns a decoder over its body, with the same
// hostile-input hardening as snapshot decoding.
func Open(containerMagic string, wantVersion uint32, blob []byte) (*Decoder, error) {
	if len(blob) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrTruncated, len(blob), headerSize)
	}
	if string(blob[:4]) != containerMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, blob[:4])
	}
	version := binary.LittleEndian.Uint32(blob[4:8])
	if version != wantVersion {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrVersion, version, wantVersion)
	}
	flags := binary.LittleEndian.Uint32(blob[8:12])
	if flags&^uint32(knownFlags) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrFormat, flags)
	}
	ulen := binary.LittleEndian.Uint64(blob[12:20])
	if ulen > maxBody {
		return nil, fmt.Errorf("%w: implausible body length %d", ErrFormat, ulen)
	}
	var sum [sha256.Size]byte
	copy(sum[:], blob[20:20+sha256.Size])

	var body []byte
	payload := blob[headerSize:]
	if flags&flagCompressed != 0 {
		// Decompress at most ulen+1 bytes: a body that overruns its
		// declared length is rejected without inflating further, so a
		// decompression bomb costs no more than the cap.
		fr := flate.NewReader(bytes.NewReader(payload))
		var buf bytes.Buffer
		n, err := io.Copy(&buf, io.LimitReader(fr, int64(ulen)+1))
		fr.Close()
		if err != nil {
			return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
		}
		if uint64(n) != ulen {
			return nil, fmt.Errorf("%w: body is %d bytes, header says %d", ErrCorrupt, n, ulen)
		}
		body = buf.Bytes()
	} else {
		if uint64(len(payload)) != ulen {
			return nil, fmt.Errorf("%w: body is %d bytes, header says %d", ErrCorrupt, len(payload), ulen)
		}
		body = payload
	}
	if sha256.Sum256(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return &Decoder{body: body}, nil
}

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Finish reports the sticky error, or ErrCorrupt if decoding stopped short
// of the body's end (trailing bytes mean writer/reader drift).
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.body) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.body)-d.off)
	}
	return nil
}

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s (offset %d)", ErrCorrupt, fmt.Sprintf(format, args...), d.off)
	}
}

// need returns the next n body bytes, or nil after arming the sticky error.
func (d *Decoder) need(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.body)-d.off < n {
		d.fail("need %d bytes, %d remain", n, len(d.body)-d.off)
		return nil
	}
	b := d.body[d.off : d.off+n]
	d.off += n
	return b
}

// count reads a u64 length prefix for elements of elemSize bytes, bounding
// it by the bytes actually remaining so hostile prefixes cannot drive
// allocation.
func (d *Decoder) count(elemSize int) int {
	b := d.need(8)
	if b == nil {
		return 0
	}
	n := binary.LittleEndian.Uint64(b)
	if n > uint64((len(d.body)-d.off)/elemSize) {
		d.fail("length %d exceeds remaining body", n)
		return 0
	}
	return int(n)
}

// Tag consumes a section marker and fails the decode if it does not match.
func (d *Decoder) Tag(want string) {
	got := d.Str()
	if d.err == nil && got != want {
		d.fail("section tag %q, want %q", got, want)
	}
}

// Bool reads a boolean; any byte other than 0 or 1 is corrupt.
func (d *Decoder) Bool() bool {
	b := d.need(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	}
	d.fail("bad bool byte %#x", b[0])
	return false
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.need(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// I32 reads a fixed-width 32-bit integer.
func (d *Decoder) I32() int32 {
	b := d.need(4)
	if b == nil {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(b))
}

// I64 reads a fixed-width 64-bit integer.
func (d *Decoder) I64() int64 {
	b := d.need(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// F64 reads an IEEE-754 double.
func (d *Decoder) F64() float64 {
	b := d.need(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	b := d.need(4)
	if b == nil {
		return ""
	}
	n := binary.LittleEndian.Uint32(b)
	if n > uint32(len(d.body)-d.off) {
		d.fail("string length %d exceeds remaining body", n)
		return ""
	}
	return string(d.need(int(n)))
}

// Bytes reads a length-prefixed byte slice (copied out of the body).
func (d *Decoder) Bytes() []byte {
	n := d.count(1)
	b := d.need(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// I32s reads a length-prefixed []int32.
func (d *Decoder) I32s() []int32 {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.I32()
	}
	return out
}

// I64s reads a length-prefixed []int64.
func (d *Decoder) I64s() []int64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.I64()
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

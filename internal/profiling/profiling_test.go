package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartStopNoFlags: the zero-configuration path must be a no-op that
// never errors — every command calls Start/Stop unconditionally.
func TestStartStopNoFlags(t *testing.T) {
	f := &Flags{}
	if err := f.Start(); err != nil {
		t.Fatalf("Start with no flags: %v", err)
	}
	if err := f.Stop(); err != nil {
		t.Fatalf("Stop with no flags: %v", err)
	}
	// Stop is documented safe exactly once, but a second call on an idle
	// Flags must still not error (cpuFile is nil again).
	if err := f.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

// TestCPUProfileWritten: Start/Stop with a CPU destination produces a
// non-empty profile file and leaves the handle closed.
func TestCPUProfileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	f := &Flags{cpu: path}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU so the profile has samples to encode.
	sum := 0
	for i := 0; i < 1_000_000; i++ {
		sum += i * i
	}
	_ = sum
	if err := f.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if f.cpuFile != nil {
		t.Error("cpuFile not cleared after Stop")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile file: %v", err)
	}
	if st.Size() == 0 {
		t.Error("CPU profile is empty")
	}
}

// TestMemProfileWritten: Stop writes a heap profile when requested.
func TestMemProfileWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	f := &Flags{mem: path}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := f.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile file: %v", err)
	}
	if st.Size() == 0 {
		t.Error("heap profile is empty")
	}
}

// TestStartFailsOnBadPath: an uncreatable destination is a clean error, not
// a started-but-broken profiler.
func TestStartFailsOnBadPath(t *testing.T) {
	f := &Flags{cpu: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}
	if err := f.Start(); err == nil {
		t.Fatal("Start on uncreatable path succeeded")
	}
	if f.cpuFile != nil {
		t.Error("cpuFile set after failed Start")
	}
	if err := f.Stop(); err != nil {
		t.Fatalf("Stop after failed Start: %v", err)
	}
}

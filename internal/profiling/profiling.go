// Package profiling wires the conventional -cpuprofile / -memprofile flags
// into the command-line tools, so hot-path investigations can use pprof on
// exactly the workload a user ran rather than on a synthetic benchmark.
package profiling

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by Register.
type Flags struct {
	cpu string
	mem string

	cpuFile *os.File
}

// Register installs -cpuprofile and -memprofile on the default flag set.
// Call it before flag.Parse.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.cpu, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.mem, "memprofile", "", "write a heap profile to this file on exit")
	return f
}

// Start begins CPU profiling if -cpuprofile was given. Call after flag.Parse.
func (f *Flags) Start() error {
	if f.cpu == "" {
		return nil
	}
	file, err := os.Create(f.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return err
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, as requested.
// Safe to call when neither flag was given; call exactly once before exit.
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			return err
		}
		f.cpuFile = nil
	}
	if f.mem != "" {
		file, err := os.Create(f.mem)
		if err != nil {
			return err
		}
		defer file.Close()
		runtime.GC() // materialise final heap statistics
		if err := pprof.WriteHeapProfile(file); err != nil {
			return err
		}
	}
	return nil
}

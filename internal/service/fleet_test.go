package service

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"across/internal/jobs"
	"across/internal/ssdconf"
	"across/internal/store"
	"across/internal/workload"
)

// TestFleetKeyMatrix pins the content-key rules for fleet jobs: the fleet
// block is a simulated-outcome knob (distinct keys per devices/layout/chunk),
// scheduling knobs stay excluded, equivalent chunk spellings canonicalise to
// one key, and the non-fleet key is untouched by the fleet machinery.
func TestFleetKeyMatrix(t *testing.T) {
	mk := func(mut func(*ReplaySpec)) string {
		sp := ReplaySpec{Type: "replay", Scheme: "Across-FTL", Profile: "lun1", Scale: 0.001,
			Fleet: &FleetSpec{Devices: 4, Layout: "raid0", ChunkKB: 64}}
		if mut != nil {
			mut(&sp)
		}
		sp.normalise()
		if err := sp.validate(); err != nil {
			t.Fatal(err)
		}
		key, err := sp.Key()
		if err != nil {
			t.Fatal(err)
		}
		return key
	}
	base := mk(nil)
	if mk(nil) != base {
		t.Error("identical fleet specs produced different keys")
	}
	for name, mut := range map[string]func(*ReplaySpec){
		"devices": func(sp *ReplaySpec) { sp.Fleet.Devices = 2 },
		"layout":  func(sp *ReplaySpec) { sp.Fleet.Layout = "raid10" },
		"chunk":   func(sp *ReplaySpec) { sp.Fleet.ChunkKB = 16 },
		"nofleet": func(sp *ReplaySpec) { sp.Fleet = nil },
	} {
		if mk(mut) == base {
			t.Errorf("%s change did not change the key", name)
		}
	}
	for name, mut := range map[string]func(*ReplaySpec){
		"workers":  func(sp *ReplaySpec) { sp.Workers = 8 },
		"priority": func(sp *ReplaySpec) { sp.Priority = 3 },
		"timeout":  func(sp *ReplaySpec) { sp.TimeoutMs = 1000 },
	} {
		if mk(mut) != base {
			t.Errorf("scheduling knob %s leaked into the key", name)
		}
	}
	// The default chunk and an explicit 64 KB spell the same work.
	if mk(func(sp *ReplaySpec) { sp.Fleet.ChunkKB = 0 }) != base {
		t.Error("default chunk and explicit 64 KB produced different keys")
	}
	// Concat ignores the chunk entirely.
	concatA := mk(func(sp *ReplaySpec) { sp.Fleet.Layout = "concat"; sp.Fleet.ChunkKB = 16 })
	concatB := mk(func(sp *ReplaySpec) { sp.Fleet.Layout = "concat"; sp.Fleet.ChunkKB = 64 })
	if concatA != concatB {
		t.Error("concat chunk spelling fragmented the key")
	}
	// A non-fleet spec must hash exactly as before the fleet layer existed.
	nf := ReplaySpec{Type: "replay", Scheme: "Across-FTL", Profile: "lun1", Scale: 0.001}
	nf.normalise()
	nfKey, err := nf.Key()
	if err != nil {
		t.Fatal(err)
	}
	if nfKey != legacyReplayKey(t, &nf) {
		t.Error("non-fleet key structure drifted — cached results would be orphaned")
	}
}

// TestFleetSpecValidation covers submit-time rejection of bad fleet blocks.
func TestFleetSpecValidation(t *testing.T) {
	for name, f := range map[string]FleetSpec{
		"zero-devices": {Devices: 0, Layout: "raid0"},
		"bad-layout":   {Devices: 4, Layout: "raid5"},
		"odd-raid10":   {Devices: 3, Layout: "raid10"},
		"huge-chunk":   {Devices: 4, Layout: "raid0", ChunkKB: 1 << 30},
	} {
		sp := ReplaySpec{Type: "replay", Scheme: "FTL", Profile: "lun1", Scale: 0.001, Fleet: &f}
		sp.normalise()
		if err := sp.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", name, f)
		}
	}
}

// TestFleetJobEndToEnd submits a fleet replay over HTTP, polls it to
// completion, and checks the stored FleetReplayResult digest; a second
// identical submission must be served from the store.
func TestFleetJobEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	body := `{"type":"replay","scheme":"Across-FTL","profile":"lun1","scale":0.002,"age":true,` +
		`"fleet":{"devices":4,"layout":"raid10","chunk_kb":16},"workers":4}`
	code, st := postJSON(t, ts.URL+"/api/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := pollState(t, ts.URL, st.ID, 60*time.Second)
	if jobs.State(final.State) != jobs.StateSucceeded {
		t.Fatalf("job finished %s (error %q)", final.State, final.Error)
	}
	code, doc := fetchResult(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d, want 200", code)
	}
	var res FleetReplayResult
	if err := json.Unmarshal(doc["result"], &res); err != nil {
		t.Fatal(err)
	}
	if res.Layout != "raid10" || res.Devices != 4 || res.ChunkKB != 16 {
		t.Fatalf("volume shape wrong: %+v", res)
	}
	if res.Requests == 0 || res.Fanout < 1 || len(res.PerDevice) != 4 {
		t.Fatalf("digest looks wrong: requests=%d fanout=%g devices=%d", res.Requests, res.Fanout, len(res.PerDevice))
	}
	// Mirrored writes must fan out to both mirrors.
	if res.Writes > 0 && res.SubRequests <= res.Requests {
		t.Errorf("raid10 writes did not mirror: %d sub-requests for %d requests", res.SubRequests, res.Requests)
	}
	if res.WarmupWrites == 0 {
		t.Error("aged fleet job reports zero warm-up writes")
	}
	// The fleet job aged once and stored the single-device checkpoint.
	if got := s.counterValue("snapshot_ages"); got != 1 {
		t.Errorf("snapshot_ages = %d, want 1", got)
	}

	// Same spec again: deduplicated, no second run.
	code, st2 := postJSON(t, ts.URL+"/api/v1/jobs", body)
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 (deduped)", code)
	}
	if st2.Key != st.Key {
		t.Fatalf("resubmit key %s != %s", st2.Key, st.Key)
	}
}

// TestFleetJobReusesSingleDeviceCheckpoint runs a single-device aged job and
// then a fleet job with the same scheme/config: the fleet job must fork all
// devices from the stored checkpoint instead of aging again.
func TestFleetJobReusesSingleDeviceCheckpoint(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	single := `{"type":"replay","scheme":"FTL","profile":"lun1","scale":0.001,"age":true}`
	_, st := postJSON(t, ts.URL+"/api/v1/jobs", single)
	if f := pollState(t, ts.URL, st.ID, 60*time.Second); jobs.State(f.State) != jobs.StateSucceeded {
		t.Fatalf("single-device job finished %s (error %q)", f.State, f.Error)
	}
	if got := s.counterValue("snapshot_ages"); got != 1 {
		t.Fatalf("snapshot_ages = %d after single-device job, want 1", got)
	}

	fleetBody := `{"type":"replay","scheme":"FTL","profile":"lun1","scale":0.001,"age":true,` +
		`"fleet":{"devices":3,"layout":"concat"}}`
	_, st2 := postJSON(t, ts.URL+"/api/v1/jobs", fleetBody)
	if f := pollState(t, ts.URL, st2.ID, 60*time.Second); jobs.State(f.State) != jobs.StateSucceeded {
		t.Fatalf("fleet job finished %s (error %q)", f.State, f.Error)
	}
	if got := s.counterValue("snapshot_ages"); got != 1 {
		t.Errorf("snapshot_ages = %d after fleet job, want 1 (should fork, not re-age)", got)
	}
	if got := s.counterValue("snapshot_restores"); got < 3 {
		t.Errorf("snapshot_restores = %d, want >= 3 (one per fleet device)", got)
	}
}

// legacyReplayKey reproduces the pre-fleet key structure verbatim; the live
// Key() must keep producing it for non-fleet specs so stored results stay
// addressable.
func legacyReplayKey(t *testing.T, sp *ReplaySpec) string {
	t.Helper()
	prof, err := sp.profile()
	if err != nil {
		t.Fatal(err)
	}
	key, err := store.HashJSON(struct {
		V       int
		Kind    string
		Conf    ssdconf.Config
		Profile workload.Profile
		QD      int
		Age     bool
	}{keyVersion, "replay/" + sp.Scheme, sp.config(), prof, sp.QD, sp.Age})
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// counterValue reads one registry counter (-1 when absent).
func (s *Server) counterValue(name string) int64 {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	snap := s.reg.Snapshot(nil)
	if v, ok := snap[name]; ok {
		return int64(v)
	}
	return -1
}

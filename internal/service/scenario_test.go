package service

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"across/internal/jobs"
)

// msrFixture is the checked-in MSR Cambridge sample, relative to this
// package directory.
const msrFixture = "../trace/testdata/msr_sample.csv"

// TestScenarioKeyMatrix pins the content-key rules for scenario jobs: the
// scenario block is a simulated-outcome knob (distinct keys per scenario,
// scale and seed), scheduling knobs stay excluded, and both the non-scenario
// and fleet key structures are untouched by the scenario machinery.
func TestScenarioKeyMatrix(t *testing.T) {
	mk := func(mut func(*ReplaySpec)) string {
		sp := ReplaySpec{Type: "replay", Scheme: "Across-FTL", Scale: 0.001,
			Scenario: &ScenarioSpec{Name: "burst"}}
		if mut != nil {
			mut(&sp)
		}
		sp.normalise()
		if err := sp.validate(); err != nil {
			t.Fatal(err)
		}
		key, err := sp.Key()
		if err != nil {
			t.Fatal(err)
		}
		return key
	}
	base := mk(nil)
	if mk(nil) != base {
		t.Error("identical scenario specs produced different keys")
	}
	for name, mut := range map[string]func(*ReplaySpec){
		"scenario": func(sp *ReplaySpec) { sp.Scenario.Name = "daynight" },
		"scale":    func(sp *ReplaySpec) { sp.Scale = 0.002 },
		"seed":     func(sp *ReplaySpec) { sp.Seed = 7 },
		"qd":       func(sp *ReplaySpec) { sp.QD = 8 },
		"age":      func(sp *ReplaySpec) { sp.Age = true },
		"fleet":    func(sp *ReplaySpec) { sp.Fleet = &FleetSpec{Devices: 2, Layout: "raid0"} },
	} {
		if mk(mut) == base {
			t.Errorf("%s change did not change the key", name)
		}
	}
	for name, mut := range map[string]func(*ReplaySpec){
		"workers":  func(sp *ReplaySpec) { sp.Workers = 8 },
		"priority": func(sp *ReplaySpec) { sp.Priority = 3 },
		"timeout":  func(sp *ReplaySpec) { sp.TimeoutMs = 1000 },
	} {
		if mk(mut) != base {
			t.Errorf("scheduling knob %s leaked into the key", name)
		}
	}
	// A non-scenario spec must hash exactly as before the scenario layer
	// existed (the same guarantee the fleet layer gives).
	nf := ReplaySpec{Type: "replay", Scheme: "Across-FTL", Profile: "lun1", Scale: 0.001}
	nf.normalise()
	nfKey, err := nf.Key()
	if err != nil {
		t.Fatal(err)
	}
	if nfKey != legacyReplayKey(t, &nf) {
		t.Error("non-scenario key structure drifted — cached results would be orphaned")
	}
}

// TestScenarioTraceKeyTracksFileContent submits the same trace file under two
// paths and a mutated copy under one: content-equal files share a key,
// changed content changes it.
func TestScenarioTraceKeyTracksFileContent(t *testing.T) {
	data, err := os.ReadFile(msrFixture)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	if err := os.WriteFile(a, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, data, 0o644); err != nil {
		t.Fatal(err)
	}
	keyAt := func(path string, scale float64) string {
		sp := ReplaySpec{Type: "replay", Scheme: "FTL", Scale: scale,
			Scenario: &ScenarioSpec{TracePath: path}}
		sp.normalise()
		if err := sp.validate(); err != nil {
			t.Fatal(err)
		}
		k, err := sp.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	key := func(path string) string { return keyAt(path, 1) }
	if key(a) != key(b) {
		t.Error("identical trace bytes under different paths fragmented the key")
	}
	// Scale truncates a trace cohort at generation time, and the requests
	// themselves are excluded from the scenario's JSON — the resolved
	// counts must keep scaled variants of the same file apart.
	if keyAt(a, 0.5) == keyAt(a, 1) {
		t.Error("trace specs differing only in scale collided on one key")
	}
	// Append one more request: the key must change.
	line := "128166372003061629,src1,0,Write,1303441408,8192,1322\n"
	if err := os.WriteFile(b, append(data, line...), 0o644); err != nil {
		t.Fatal(err)
	}
	if key(a) == key(b) {
		t.Error("changed trace content kept the old key — stale results would be served")
	}
}

// TestScenarioSpecValidation covers submit-time rejection of bad scenario
// blocks.
func TestScenarioSpecValidation(t *testing.T) {
	for name, mut := range map[string]func(*ReplaySpec){
		"unknown-builtin":  func(sp *ReplaySpec) { sp.Scenario.Name = "nope" },
		"missing-name":     func(sp *ReplaySpec) { sp.Scenario.Name = "" },
		"missing-file":     func(sp *ReplaySpec) { sp.Scenario = &ScenarioSpec{TracePath: "/does/not/exist.csv"} },
		"profile-conflict": func(sp *ReplaySpec) { sp.Profile = "lun1" },
	} {
		sp := ReplaySpec{Type: "replay", Scheme: "FTL", Scale: 0.001,
			Scenario: &ScenarioSpec{Name: "burst"}}
		mut(&sp)
		sp.normalise()
		if err := sp.validate(); err == nil {
			t.Errorf("%s: validate accepted the spec", name)
		}
	}
}

// TestScenarioJobEndToEnd submits a scenario replay over HTTP, polls it to
// completion, checks the stored digest, and confirms dedup on resubmit.
func TestScenarioJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	body := `{"type":"replay","scheme":"Across-FTL","scale":0.002,` +
		`"scenario":{"name":"mixed"},"workers":2}`
	code, st := postJSON(t, ts.URL+"/api/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := pollState(t, ts.URL, st.ID, 60*time.Second)
	if jobs.State(final.State) != jobs.StateSucceeded {
		t.Fatalf("job finished %s (error %q)", final.State, final.Error)
	}
	code, doc := fetchResult(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d, want 200", code)
	}
	var res ReplayResult
	if err := json.Unmarshal(doc["result"], &res); err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Writes == 0 {
		t.Fatalf("digest looks wrong: %+v", res)
	}

	code, st2 := postJSON(t, ts.URL+"/api/v1/jobs", body)
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 (deduped)", code)
	}
	if st2.Key != st.Key {
		t.Fatalf("resubmit key %s != %s", st2.Key, st.Key)
	}
}

// TestScenarioJobReusesAgingCheckpoint runs a profile job and then a
// scenario job with the same scheme/config: the scenario job must fork from
// the stored checkpoint instead of aging again (AgingKey is
// workload-independent, and a scenario is just another workload).
func TestScenarioJobReusesAgingCheckpoint(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir())
	profileBody := `{"type":"replay","scheme":"FTL","profile":"lun1","scale":0.001,"age":true}`
	_, st := postJSON(t, ts.URL+"/api/v1/jobs", profileBody)
	if f := pollState(t, ts.URL, st.ID, 60*time.Second); jobs.State(f.State) != jobs.StateSucceeded {
		t.Fatalf("profile job finished %s (error %q)", f.State, f.Error)
	}
	if got := s.counterValue("snapshot_ages"); got != 1 {
		t.Fatalf("snapshot_ages = %d after profile job, want 1", got)
	}

	scenarioBody := `{"type":"replay","scheme":"FTL","scale":0.001,"age":true,` +
		`"scenario":{"name":"burst"}}`
	_, st2 := postJSON(t, ts.URL+"/api/v1/jobs", scenarioBody)
	if f := pollState(t, ts.URL, st2.ID, 60*time.Second); jobs.State(f.State) != jobs.StateSucceeded {
		t.Fatalf("scenario job finished %s (error %q)", f.State, f.Error)
	}
	if got := s.counterValue("snapshot_ages"); got != 1 {
		t.Errorf("snapshot_ages = %d after scenario job, want 1 (should fork, not re-age)", got)
	}
	if got := s.counterValue("snapshot_restores"); got < 1 {
		t.Errorf("snapshot_restores = %d, want >= 1", got)
	}
}

// TestScenarioTraceJobEndToEnd drives the MSR Cambridge real-trace path
// through the daemon: the checked-in fixture wrapped as a trace cohort.
func TestScenarioTraceJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	abs, err := filepath.Abs(msrFixture)
	if err != nil {
		t.Fatal(err)
	}
	body := `{"type":"replay","scheme":"Across-FTL","scale":1,` +
		`"scenario":{"trace_path":"` + abs + `"}}`
	code, st := postJSON(t, ts.URL+"/api/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := pollState(t, ts.URL, st.ID, 60*time.Second)
	if jobs.State(final.State) != jobs.StateSucceeded {
		t.Fatalf("job finished %s (error %q)", final.State, final.Error)
	}
	var res ReplayResult
	_, doc := fetchResult(t, ts.URL, st.ID)
	if err := json.Unmarshal(doc["result"], &res); err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatalf("trace job replayed no requests: %+v", res)
	}
}

// Package service exposes the simulator as a long-running HTTP service:
// submit replay and experiment jobs, poll their status, stream per-job
// progress as NDJSON, fetch results and artifacts, scrape service metrics.
// It composes the three layers the acrossd daemon is built from:
//
//   - internal/jobs: a bounded worker pool with priority FIFO queueing,
//     per-job timeouts, transient-failure retry, and graceful drain;
//   - internal/store: a content-addressed on-disk result store, so a job
//     submitted twice runs once and completed results survive restarts;
//   - internal/obs: the Sampler feeds each replay's progress stream and the
//     Registry backs /metrics.
//
// API (all JSON):
//
//	POST   /api/v1/jobs                       submit {"type":"replay",...} or {"type":"experiment",...}
//	GET    /api/v1/jobs                       list jobs
//	GET    /api/v1/jobs/{id}                  job status
//	POST   /api/v1/jobs/{id}/cancel           cancel (also DELETE /api/v1/jobs/{id})
//	GET    /api/v1/jobs/{id}/result           result document (once succeeded)
//	GET    /api/v1/jobs/{id}/progress         NDJSON stream of metric samples (live + history)
//	GET    /api/v1/jobs/{id}/artifacts/metrics stored sample series (NDJSON)
//	GET    /api/v1/jobs/{id}/trace            per-job span log as Chrome trace_event JSON
//	GET    /api/v1/store                      stored result keys
//	GET    /metrics                           Prometheus text exposition (counters, scheduler, store)
//	GET    /healthz                           liveness + occupancy (Retry-After when saturated)
//
// With Config.EnablePprof the net/http/pprof profiling endpoints are also
// mounted under /debug/pprof/.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"across/internal/jobs"
	"across/internal/obs"
	"across/internal/sim"
	"across/internal/store"
)

// Config sizes the service.
type Config struct {
	// StoreDir roots the content-addressed result store.
	StoreDir string
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueCap bounds queued jobs (default 1024).
	QueueCap int
	// DefaultTimeout bounds each job unless its spec overrides (0 = none).
	DefaultTimeout time.Duration
	// Retries and Backoff configure transient-failure retry (store writes).
	Retries int
	Backoff time.Duration
	// SampleIntervalMs is the progress-sampling interval in simulated ms
	// (default 50).
	SampleIntervalMs float64
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — off by
	// default because the profiling endpoints expose process internals.
	EnablePprof bool
}

// jobRecord is the service-level view of one submission.
type jobRecord struct {
	id   string
	key  string
	kind string
	spec json.RawMessage

	job    *jobs.Job    // nil for cache-served records
	cached bool         // served from the store without running
	hub    *progressHub // nil for experiment jobs
	spans  *spanLog     // nil for experiment and cache-served jobs

	submitted time.Time
}

// Server is the HTTP simulation service.
type Server struct {
	cfg   Config
	sched *jobs.Scheduler
	store *store.Store

	regMu sync.Mutex // obs.Registry is not goroutine-safe
	reg   *obs.Registry

	mu      sync.Mutex
	records map[string]*jobRecord
	byKey   map[string]*jobRecord
	order   []string
	nextID  uint64

	// flightMu guards aging: one lock per aging-checkpoint key, so
	// concurrent jobs that share a warm state age it exactly once and the
	// rest fork from the stored snapshot (see ReplaySpec.AgingKey).
	flightMu sync.Mutex
	aging    map[string]*sync.Mutex
}

// New builds a Server (opening or creating its store) and starts its worker
// pool.
func New(cfg Config) (*Server, error) {
	if cfg.SampleIntervalMs <= 0 {
		cfg.SampleIntervalMs = 50
	}
	st, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg,
		sched: jobs.New(jobs.Options{
			Workers:        cfg.Workers,
			QueueCap:       cfg.QueueCap,
			DefaultTimeout: cfg.DefaultTimeout,
			Retries:        cfg.Retries,
			Backoff:        cfg.Backoff,
		}),
		store:   st,
		reg:     obs.NewRegistry(),
		records: make(map[string]*jobRecord),
		byKey:   make(map[string]*jobRecord),
		aging:   make(map[string]*sync.Mutex),
	}
	// Pre-register so /metrics always shows every series, zeroed.
	for _, name := range []string{
		"jobs_submitted", "jobs_deduped", "jobs_cached",
		"jobs_succeeded", "jobs_failed", "jobs_cancelled",
		"snapshot_ages", "snapshot_restores",
	} {
		s.counter(name, 0)
	}
	return s, nil
}

// agingFlight serialises work on one aging-checkpoint key and returns the
// release function. Per-key mutexes live for the server's lifetime; the
// key space is one entry per distinct (scheme, config, aging) tuple, so
// the map stays small.
func (s *Server) agingFlight(key string) func() {
	s.flightMu.Lock()
	m, ok := s.aging[key]
	if !ok {
		m = &sync.Mutex{}
		s.aging[key] = m
	}
	s.flightMu.Unlock()
	m.Lock()
	return m.Unlock
}

// loadAgingSnapshot fetches a stored warm-state checkpoint, or nil when the
// key is absent or the entry is not a usable snapshot for the scheme.
func (s *Server) loadAgingSnapshot(key, scheme string) []byte {
	var e SnapshotEntry
	ok, err := s.store.Get(key, &e)
	if err != nil || !ok {
		return nil
	}
	if e.Kind != "snapshot" || e.Scheme != scheme || len(e.Blob) == 0 {
		return nil
	}
	return e.Blob
}

// ageAndStore runs the aging phase and checkpoints the warm state under the
// aging key. Snapshot or store failures are deliberately non-fatal: the job
// still has its aged device in hand, later jobs just re-age.
func (s *Server) ageAndStore(ctx context.Context, r *sim.Runner, key, scheme string) error {
	if err := r.AgeCtx(ctx, sim.DefaultAging()); err != nil {
		return err
	}
	s.counter("snapshot_ages", 1)
	if blob, err := r.Snapshot(); err == nil {
		_ = s.store.Put(key, &SnapshotEntry{Key: key, Kind: "snapshot", Scheme: scheme, Blob: blob})
	}
	return nil
}

// Store returns the server's result store.
func (s *Server) Store() *store.Store { return s.store }

// Drain stops accepting jobs and waits (bounded by ctx) for outstanding
// ones to finish.
func (s *Server) Drain(ctx context.Context) error {
	return s.sched.Drain(ctx)
}

// Close cancels outstanding jobs and stops the pool.
func (s *Server) Close() { s.sched.Close() }

func (s *Server) counter(name string, delta int64) {
	s.regMu.Lock()
	s.reg.Counter(name).Add(delta)
	s.regMu.Unlock()
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /api/v1/jobs/{id}/artifacts/metrics", s.handleMetricsArtifact)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /api/v1/store", s.handleStoreKeys)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// jobStatus is the wire representation of a job.
type jobStatus struct {
	ID      string `json:"id"`
	Key     string `json:"key"`
	Kind    string `json:"kind"`
	State   string `json:"state"`
	Cached  bool   `json:"cached"`
	Deduped bool   `json:"deduped,omitempty"`
	Error   string `json:"error,omitempty"`

	Attempts    int     `json:"attempts,omitempty"`
	SubmittedAt string  `json:"submitted_at,omitempty"`
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	DurationMs  float64 `json:"duration_ms,omitempty"`

	Spec  json.RawMessage `json:"spec,omitempty"`
	Spans []Span          `json:"spans,omitempty"`
}

func (s *Server) status(rec *jobRecord, deduped bool) jobStatus {
	st := jobStatus{
		ID:          rec.id,
		Key:         rec.key,
		Kind:        rec.kind,
		Cached:      rec.cached,
		Deduped:     deduped,
		Spec:        rec.spec,
		SubmittedAt: rec.submitted.UTC().Format(time.RFC3339Nano),
	}
	if rec.spans != nil {
		st.Spans = rec.spans.Spans()
	}
	if rec.cached {
		st.State = string(jobs.StateSucceeded)
		return st
	}
	j := rec.job
	st.State = string(j.State())
	st.Attempts = j.Attempts()
	if _, err := j.Result(); err != nil {
		st.Error = err.Error()
	}
	_, started, finished := j.Times()
	if !started.IsZero() {
		st.StartedAt = started.UTC().Format(time.RFC3339Nano)
	}
	if !finished.IsZero() {
		st.FinishedAt = finished.UTC().Format(time.RFC3339Nano)
		if !started.IsZero() {
			st.DurationMs = float64(finished.Sub(started)) / float64(time.Millisecond)
		}
	}
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a replay or experiment spec, deduplicates against
// live jobs and the store, and queues a new job when neither hits.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var head struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(body, &head); err != nil {
		writeError(w, http.StatusBadRequest, "parsing spec: %v", err)
		return
	}

	var (
		key       string
		kind      string
		priority  int
		timeoutMs int64
		weight    int
		run       func(ctx context.Context, key string, hub *progressHub) (*Entry, error)
		hub       *progressHub
		spl       *spanLog
	)
	switch head.Type {
	case "replay":
		var sp ReplaySpec
		if err := strictUnmarshal(body, &sp); err != nil {
			writeError(w, http.StatusBadRequest, "parsing replay spec: %v", err)
			return
		}
		sp.normalise()
		if err := sp.validate(); err != nil {
			writeError(w, http.StatusBadRequest, "invalid replay spec: %v", err)
			return
		}
		if key, err = sp.Key(); err != nil {
			writeError(w, http.StatusInternalServerError, "keying spec: %v", err)
			return
		}
		kind, priority, timeoutMs = "replay", sp.Priority, sp.TimeoutMs
		weight = sp.Workers
		hub = newProgressHub()
		spl = newSpanLog(time.Now())
		run = func(ctx context.Context, key string, hub *progressHub) (*Entry, error) {
			return s.runReplay(ctx, key, sp, hub, spl)
		}
	case "experiment":
		var sp ExperimentSpec
		if err := strictUnmarshal(body, &sp); err != nil {
			writeError(w, http.StatusBadRequest, "parsing experiment spec: %v", err)
			return
		}
		if err := sp.validate(); err != nil {
			writeError(w, http.StatusBadRequest, "invalid experiment spec: %v", err)
			return
		}
		if key, err = sp.Key(); err != nil {
			writeError(w, http.StatusInternalServerError, "keying spec: %v", err)
			return
		}
		kind, priority, timeoutMs = "experiment", sp.Priority, sp.TimeoutMs
		run = func(ctx context.Context, key string, _ *progressHub) (*Entry, error) {
			return s.runExperiment(ctx, key, sp)
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown job type %q (want replay or experiment)", head.Type)
		return
	}

	s.mu.Lock()
	// Dedup against a live (or completed-in-memory) record first.
	if prev, ok := s.byKey[key]; ok {
		state := jobs.StateSucceeded
		if prev.job != nil {
			state = prev.job.State()
		}
		if state != jobs.StateFailed && state != jobs.StateCancelled {
			st := s.status(prev, true)
			s.mu.Unlock()
			s.counter("jobs_deduped", 1)
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	// Then against the store: identical work already completed — possibly
	// by a previous daemon process — is served without running.
	if s.store.Has(key) {
		rec := s.newRecordLocked(key, kind, body, nil, nil, nil)
		rec.cached = true
		st := s.status(rec, false)
		s.mu.Unlock()
		s.counter("jobs_cached", 1)
		writeJSON(w, http.StatusOK, st)
		return
	}

	job, deduped, err := s.sched.Submit(jobs.SubmitOpts{
		Key:      key,
		Priority: priority,
		Timeout:  time.Duration(timeoutMs) * time.Millisecond,
		Weight:   weight,
	}, func(ctx context.Context) (any, error) {
		return run(ctx, key, hub)
	})
	if err != nil {
		s.mu.Unlock()
		code := http.StatusServiceUnavailable
		if errors.Is(err, jobs.ErrQueueFull) {
			code = http.StatusTooManyRequests
		}
		writeError(w, code, "%v", err)
		return
	}
	rec := s.newRecordLocked(key, kind, body, job, hub, spl)
	st := s.status(rec, deduped)
	s.mu.Unlock()

	s.counter("jobs_submitted", 1)
	go s.watch(rec)
	writeJSON(w, http.StatusAccepted, st)
}

// strictUnmarshal rejects unknown fields so spec typos fail loudly instead
// of silently running a default job.
func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// newRecordLocked registers a record; caller holds s.mu.
func (s *Server) newRecordLocked(key, kind string, spec []byte, job *jobs.Job, hub *progressHub, spl *spanLog) *jobRecord {
	s.nextID++
	rec := &jobRecord{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		key:       key,
		kind:      kind,
		spec:      json.RawMessage(spec),
		job:       job,
		hub:       hub,
		spans:     spl,
		submitted: time.Now(),
	}
	s.records[rec.id] = rec
	s.byKey[key] = rec
	s.order = append(s.order, rec.id)
	return rec
}

// watch finalises a record when its job finishes: counters tick over and
// the progress hub closes so every stream ends — including jobs cancelled
// while still queued, whose run function never executed.
func (s *Server) watch(rec *jobRecord) {
	<-rec.job.Done()
	switch rec.job.State() {
	case jobs.StateSucceeded:
		s.counter("jobs_succeeded", 1)
	case jobs.StateFailed:
		s.counter("jobs_failed", 1)
	case jobs.StateCancelled:
		s.counter("jobs_cancelled", 1)
	}
	if rec.hub != nil {
		rec.hub.Close()
	}
}

func (s *Server) record(id string) *jobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]jobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.status(s.records[id], false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	st := s.status(rec, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if rec.job == nil {
		writeError(w, http.StatusConflict, "job %s was served from the store; nothing to cancel", rec.id)
		return
	}
	cancelled := s.sched.Cancel(rec.job.ID)
	s.mu.Lock()
	st := s.status(rec, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": cancelled, "job": st})
}

// entry loads a record's stored Entry, preferring the in-memory job result
// (identical content, no disk round trip).
func (s *Server) entry(rec *jobRecord) (*Entry, error) {
	if rec.job != nil {
		if res, err := rec.job.Result(); err == nil && res != nil {
			if e, ok := res.(*Entry); ok {
				return e, nil
			}
		}
	}
	var e Entry
	ok, err := s.store.Get(rec.key, &e)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return &e, nil
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if rec.job != nil {
		switch st := rec.job.State(); st {
		case jobs.StateSucceeded:
		case jobs.StateFailed, jobs.StateCancelled:
			_, err := rec.job.Result()
			writeError(w, http.StatusConflict, "job %s %s: %v", rec.id, st, err)
			return
		default:
			writeError(w, http.StatusConflict, "job %s is %s; result not ready", rec.id, st)
			return
		}
	}
	e, err := s.entry(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading result: %v", err)
		return
	}
	if e == nil {
		writeError(w, http.StatusNotFound, "no stored result for job %s", rec.id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     rec.id,
		"key":    rec.key,
		"kind":   e.Kind,
		"cached": rec.cached,
		"result": e.Result,
	})
}

// handleProgress streams a job's metric samples as NDJSON: first the
// retained history, then live samples until the job finishes. For finished
// (or cache-served) jobs the stored series is replayed and the stream ends.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	if rec.hub == nil {
		// Experiment job or cache-served record: replay the stored series.
		if e, err := s.entry(rec); err == nil && e != nil {
			for i := range e.Samples {
				enc.Encode(&e.Samples[i])
			}
		}
		flush()
		return
	}
	history, live, cancel := rec.hub.Subscribe()
	defer cancel()
	for i := range history {
		enc.Encode(&history[i])
	}
	flush()
	clientGone := r.Context().Done()
	for {
		select {
		case sm, ok := <-live:
			if !ok {
				return
			}
			enc.Encode(&sm)
			flush()
		case <-clientGone:
			return
		}
	}
}

func (s *Server) handleMetricsArtifact(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	e, err := s.entry(rec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading artifact: %v", err)
		return
	}
	if e == nil {
		writeError(w, http.StatusNotFound, "no stored artifact for job %s", rec.id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range e.Samples {
		enc.Encode(&e.Samples[i])
	}
}

func (s *Server) handleStoreKeys(w http.ResponseWriter, r *http.Request) {
	keys, err := s.store.Keys()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"keys": keys, "count": len(keys)})
}

// metricHelp documents the registry-backed series on the /metrics page;
// names missing here fall back to a generic line rather than an empty HELP.
var metricHelp = map[string]string{
	"jobs_submitted":    "Jobs accepted and queued for execution.",
	"jobs_deduped":      "Submissions answered by a live job with the same content key.",
	"jobs_cached":       "Submissions served from the result store without running.",
	"jobs_succeeded":    "Jobs that finished successfully.",
	"jobs_failed":       "Jobs that exhausted their retries and failed.",
	"jobs_cancelled":    "Jobs cancelled before completion.",
	"snapshot_ages":     "Aging runs executed and checkpointed (one per aging key).",
	"snapshot_restores": "Replay jobs forked from a stored aging checkpoint.",
}

// handleMetrics renders the service metrics in Prometheus text exposition
// format 0.0.4: every obs.Registry series (counters suffixed _total), then
// scheduler occupancy and store size as gauges, all under the acrossd_
// namespace. Registry series render in sorted name order so scrapes diff
// cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p := obs.NewPromText()
	s.regMu.Lock()
	names := append([]string(nil), s.reg.Names()...)
	snap := s.reg.Snapshot(nil)
	counters := make(map[string]bool, len(names))
	for _, n := range names {
		counters[n] = s.reg.IsCounter(n)
	}
	s.regMu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		help := metricHelp[n]
		if help == "" {
			help = "Service series " + n + "."
		}
		if counters[n] {
			p.Counter("acrossd_"+n, help, snap[n])
		} else {
			p.Gauge("acrossd_"+n, help, snap[n])
		}
	}
	st := s.sched.Stats()
	p.Gauge("acrossd_scheduler_queued", "Jobs queued but not yet running.", float64(st.Queued))
	p.Gauge("acrossd_scheduler_queue_cap", "Queue capacity; submissions beyond it are rejected.", float64(st.QueueCap))
	p.Gauge("acrossd_scheduler_running", "Jobs currently executing.", float64(st.Running))
	p.Gauge("acrossd_scheduler_workers", "Worker-pool size bounding concurrent jobs.", float64(st.Workers))
	p.Gauge("acrossd_scheduler_cpu_tokens", "CPU-token budget weighted jobs draw parallelism from.", float64(st.CPUTokens))
	p.Gauge("acrossd_scheduler_granted_tokens", "CPU tokens currently held by running jobs.", float64(st.GrantedTokens))
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	p.Gauge("acrossd_scheduler_draining", "1 while the scheduler is draining and rejecting submissions.", draining)
	p.Gauge("acrossd_store_entries", "Entries in the content-addressed result store.", float64(s.store.Len()))
	if err := p.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, "rendering metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.WriteTo(w)
}

// healthz is the wire shape of /healthz: liveness plus enough occupancy to
// steer a load balancer — queue depth against capacity and CPU-token
// occupancy. Saturated means new submissions would be rejected right now
// (queue full or draining); the response then carries a Retry-After hint.
type healthz struct {
	Status        string  `json:"status"` // ok | saturated | draining
	Queued        int     `json:"queued"`
	QueueCap      int     `json:"queue_cap"`
	QueueFill     float64 `json:"queue_fill"`
	Running       int     `json:"running"`
	Workers       int     `json:"workers"`
	CPUTokens     int     `json:"cpu_tokens"`
	GrantedTokens int     `json:"granted_tokens"`
	TokenFill     float64 `json:"token_fill"`
	Saturated     bool    `json:"saturated"`
	Draining      bool    `json:"draining"`
}

// healthzRetryAfterSeconds is the backoff hint sent with a saturated or
// draining health response.
const healthzRetryAfterSeconds = "5"

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	h := healthz{
		Status:        "ok",
		Queued:        st.Queued,
		QueueCap:      st.QueueCap,
		Running:       st.Running,
		Workers:       st.Workers,
		CPUTokens:     st.CPUTokens,
		GrantedTokens: st.GrantedTokens,
		Draining:      st.Draining,
	}
	if st.QueueCap > 0 {
		h.QueueFill = float64(st.Queued) / float64(st.QueueCap)
	}
	if st.CPUTokens > 0 {
		h.TokenFill = float64(st.GrantedTokens) / float64(st.CPUTokens)
	}
	h.Saturated = st.Queued >= st.QueueCap || st.Draining
	switch {
	case st.Draining:
		h.Status = "draining"
	case h.Saturated:
		h.Status = "saturated"
	}
	if h.Saturated {
		w.Header().Set("Retry-After", healthzRetryAfterSeconds)
	}
	writeJSON(w, http.StatusOK, h)
}

// handleJobTrace renders a replay job's span log as a Chrome trace_event
// document, loadable in Perfetto alongside the simulated-timeline trace the
// replay itself can emit.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.record(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if rec.spans == nil {
		writeError(w, http.StatusConflict, "job %s has no span log (experiment or cache-served job)", rec.id)
		return
	}
	writeChromeSpans(w, rec.id, rec.spans.Spans())
}

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"across/internal/jobs"
	"across/internal/obs"
)

// newTestServer spins up a Server over dir behind an httptest listener.
func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		StoreDir: dir,
		Workers:  4,
		QueueCap: 512,
		Retries:  1,
		Backoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, jobStatus) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st jobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("parsing response %q: %v", raw, err)
	}
	return resp.StatusCode, st
}

// pollState polls a job's status until it reaches a terminal state or the
// deadline passes, returning the final status.
func pollState(t *testing.T, base, id string, deadline time.Duration) jobStatus {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch jobs.State(st.State) {
		case jobs.StateSucceeded, jobs.StateFailed, jobs.StateCancelled:
			return st
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s still %s after %v", id, st.State, deadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetchResult(t *testing.T, base, id string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing result %q: %v", raw, err)
	}
	return resp.StatusCode, doc
}

const tinyReplay = `{"type":"replay","scheme":"Across-FTL","profile":"lun1","scale":0.001,"seed":%d}`

// TestSubmitPollFetch is the end-to-end happy path: submit, poll to
// completion, fetch the result document, and confirm the digest is sane.
func TestSubmitPollFetch(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	code, st := postJSON(t, ts.URL+"/api/v1/jobs", fmt.Sprintf(tinyReplay, 1))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if st.ID == "" || st.Key == "" || st.Kind != "replay" {
		t.Fatalf("submit status = %+v", st)
	}
	final := pollState(t, ts.URL, st.ID, 30*time.Second)
	if jobs.State(final.State) != jobs.StateSucceeded {
		t.Fatalf("job finished %s (error %q)", final.State, final.Error)
	}
	code, doc := fetchResult(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d, want 200", code)
	}
	var res ReplayResult
	if err := json.Unmarshal(doc["result"], &res); err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "Across-FTL" || res.Requests == 0 || res.AvgWriteMs <= 0 {
		t.Fatalf("result digest looks wrong: %+v", res)
	}
}

// TestDoubleSubmitRunsOnce submits the identical spec twice: the second
// submission must be deduplicated (200, not 202) and the simulator must
// have run exactly once (jobs_submitted stays at 1).
func TestDoubleSubmitRunsOnce(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	spec := fmt.Sprintf(tinyReplay, 2)
	code, first := postJSON(t, ts.URL+"/api/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	code, second := postJSON(t, ts.URL+"/api/v1/jobs", spec)
	if code != http.StatusOK {
		t.Fatalf("second submit = %d, want 200", code)
	}
	if !second.Deduped && !second.Cached {
		t.Fatalf("second submit not deduplicated: %+v", second)
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", first.Key, second.Key)
	}
	pollState(t, ts.URL, first.ID, 30*time.Second)
	// A third submission after completion is served without a new run too.
	code, third := postJSON(t, ts.URL+"/api/v1/jobs", spec)
	if code != http.StatusOK || (!third.Deduped && !third.Cached) {
		t.Fatalf("post-completion submit = %d %+v", code, third)
	}

	m := scrapeMetrics(t, ts.URL)
	if m["acrossd_jobs_submitted_total"] != 1 {
		t.Fatalf("acrossd_jobs_submitted_total = %v, want 1 (dedup must not re-run)", m["acrossd_jobs_submitted_total"])
	}
	if m["acrossd_jobs_deduped_total"]+m["acrossd_jobs_cached_total"] < 2 {
		t.Fatalf("deduped+cached = %v, want >= 2", m["acrossd_jobs_deduped_total"]+m["acrossd_jobs_cached_total"])
	}
}

// scrapeMetrics fetches /metrics, validates it as Prometheus text exposition
// format, and returns the sample values by metric name.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want text exposition 0.0.4", ct)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateProm(page); err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\npage:\n%s", err, page)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(page), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unexpected sample line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[fields[0]] = v
	}
	return out
}

// TestMetricsExposition checks the /metrics page itself: every pre-registered
// counter appears zeroed with the acrossd_ namespace and _total suffix, and
// the scheduler and store gauges reflect the configuration.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	m := scrapeMetrics(t, ts.URL)
	for _, name := range []string{
		"acrossd_jobs_submitted_total", "acrossd_jobs_deduped_total",
		"acrossd_jobs_cached_total", "acrossd_jobs_succeeded_total",
		"acrossd_jobs_failed_total", "acrossd_jobs_cancelled_total",
	} {
		if v, ok := m[name]; !ok || v != 0 {
			t.Errorf("%s = %v, %v; want present and 0 on a fresh server", name, v, ok)
		}
	}
	if m["acrossd_scheduler_workers"] != 4 || m["acrossd_scheduler_queue_cap"] != 512 {
		t.Errorf("scheduler gauges wrong: workers=%v queue_cap=%v", m["acrossd_scheduler_workers"], m["acrossd_scheduler_queue_cap"])
	}
	if _, ok := m["acrossd_store_entries"]; !ok {
		t.Error("acrossd_store_entries missing")
	}
}

// TestCancelMidReplay submits a deliberately long job, waits for it to be
// running, cancels it, and requires the replay to stop quickly rather than
// run to completion.
func TestCancelMidReplay(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	long := `{"type":"replay","scheme":"Across-FTL","profile":"lun1","scale":1.0,"age":true}`
	code, st := postJSON(t, ts.URL+"/api/v1/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	// Wait for the worker to pick it up.
	stop := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur jobStatus
		json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if jobs.State(cur.State) == jobs.StateRunning {
			break
		}
		if cur.State != string(jobs.StateQueued) {
			t.Fatalf("job reached %s before cancel", cur.State)
		}
		if time.Now().After(stop) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancelled := time.Now()
	resp, err := http.Post(ts.URL+"/api/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := pollState(t, ts.URL, st.ID, 5*time.Second)
	if jobs.State(final.State) != jobs.StateCancelled {
		t.Fatalf("job finished %s, want cancelled (error %q)", final.State, final.Error)
	}
	if took := time.Since(cancelled); took > 5*time.Second {
		t.Fatalf("cancel took %v, want prompt mid-replay stop", took)
	}
	// The result endpoint must report the cancellation, not a document.
	code, _ = fetchResult(t, ts.URL, st.ID)
	if code != http.StatusConflict {
		t.Fatalf("result after cancel = %d, want 409", code)
	}
}

// TestJobTimeout gives a long job a tiny per-job timeout and expects a
// failed state carrying the deadline error.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	long := `{"type":"replay","scheme":"FTL","profile":"lun2","scale":1.0,"age":true,"timeout_ms":50}`
	code, st := postJSON(t, ts.URL+"/api/v1/jobs", long)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := pollState(t, ts.URL, st.ID, 15*time.Second)
	if jobs.State(final.State) != jobs.StateFailed {
		t.Fatalf("job finished %s, want failed (error %q)", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", final.Error)
	}
}

// TestRestartServesFromStore runs a job to completion on one server, then
// opens a second server over the same store directory: the same spec must
// be served from disk without running the simulator again.
func TestRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	spec := fmt.Sprintf(tinyReplay, 3)
	{
		_, ts := newTestServer(t, dir)
		_, st := postJSON(t, ts.URL+"/api/v1/jobs", spec)
		final := pollState(t, ts.URL, st.ID, 30*time.Second)
		if jobs.State(final.State) != jobs.StateSucceeded {
			t.Fatalf("first run finished %s", final.State)
		}
	}
	_, ts2 := newTestServer(t, dir)
	code, st := postJSON(t, ts2.URL+"/api/v1/jobs", spec)
	if code != http.StatusOK || !st.Cached {
		t.Fatalf("after restart: code=%d status=%+v, want 200 cached", code, st)
	}
	if jobs.State(st.State) != jobs.StateSucceeded {
		t.Fatalf("cached job state = %s, want succeeded", st.State)
	}
	code, doc := fetchResult(t, ts2.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("cached result = %d, want 200", code)
	}
	var res ReplayResult
	if err := json.Unmarshal(doc["result"], &res); err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatalf("cached result digest empty: %+v", res)
	}
	// Cancelling a cache-served record is meaningless and must say so.
	resp, err := http.Post(ts2.URL+"/api/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of cached job = %d, want 409", resp.StatusCode)
	}
}

// TestExperimentJob submits a (cheap) experiment artifact job and checks
// the rendered output comes back.
func TestExperimentJob(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	code, st := postJSON(t, ts.URL+"/api/v1/jobs", `{"type":"experiment","id":"table1","scale":0.05,"no_age":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := pollState(t, ts.URL, st.ID, 30*time.Second)
	if jobs.State(final.State) != jobs.StateSucceeded {
		t.Fatalf("experiment finished %s (error %q)", final.State, final.Error)
	}
	code, doc := fetchResult(t, ts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d, want 200", code)
	}
	var res ExperimentResult
	if err := json.Unmarshal(doc["result"], &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != "table1" || !strings.Contains(res.Output, "Table 1") {
		t.Fatalf("experiment output looks wrong: id=%q output=%q", res.ID, res.Output)
	}
}

// TestProgressStream reads a job's NDJSON progress stream and checks it
// carries well-formed, time-ordered samples and terminates when the job
// does.
func TestProgressStream(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	code, st := postJSON(t, ts.URL+"/api/v1/jobs",
		`{"type":"replay","scheme":"Across-FTL","profile":"lun3","scale":0.05,"seed":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("progress Content-Type = %q", ct)
	}
	var n int
	last := -1.0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sm obs.Sample
		if err := json.Unmarshal(line, &sm); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if sm.TimeMs < last {
			t.Fatalf("samples out of order: %v after %v", sm.TimeMs, last)
		}
		last = sm.TimeMs
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("progress stream carried no samples")
	}
	final := pollState(t, ts.URL, st.ID, 30*time.Second)
	if jobs.State(final.State) != jobs.StateSucceeded {
		t.Fatalf("job finished %s", final.State)
	}
	// The stored artifact replays the same series for later readers.
	resp2, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/artifacts/metrics")
	if err != nil {
		t.Fatal(err)
	}
	stored, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if lines := bytes.Count(bytes.TrimSpace(stored), []byte("\n")) + 1; lines < 1 || len(bytes.TrimSpace(stored)) == 0 {
		t.Fatalf("stored metrics artifact empty")
	}
}

// TestManyConcurrentJobs floods the service with distinct jobs from many
// goroutines and requires every one to finish successfully with a stored
// result — no deadlocks, no lost jobs.
func TestManyConcurrentJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, ts := newTestServer(t, t.TempDir())
	const jobsN = 120
	ids := make([]string, jobsN)
	var wg sync.WaitGroup
	errs := make(chan error, jobsN)
	for i := 0; i < jobsN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, st := postJSON(t, ts.URL+"/api/v1/jobs", fmt.Sprintf(tinyReplay, 1000+i))
			if code != http.StatusAccepted {
				errs <- fmt.Errorf("job %d: submit = %d", i, code)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, id := range ids {
		final := pollState(t, ts.URL, id, 60*time.Second)
		if jobs.State(final.State) != jobs.StateSucceeded {
			t.Fatalf("job %d (%s) finished %s (error %q)", i, id, final.State, final.Error)
		}
	}
	if got := srv.Store().Len(); got != jobsN {
		t.Fatalf("store holds %d entries, want %d", got, jobsN)
	}
}

// TestBadRequests covers the submit-validation surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	cases := []struct {
		name, body string
	}{
		{"not json", `{{`},
		{"unknown type", `{"type":"mystery"}`},
		{"unknown scheme", `{"type":"replay","scheme":"LISA","profile":"lun1"}`},
		{"unknown profile", `{"type":"replay","scheme":"FTL","profile":"lun99"}`},
		{"bad scale", `{"type":"replay","scheme":"FTL","profile":"lun1","scale":7}`},
		{"unknown field", `{"type":"replay","scheme":"FTL","profile":"lun1","scael":0.1}`},
		{"unknown experiment", `{"type":"experiment","id":"fig99"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// Unknown job lookups 404 across the read endpoints.
	for _, path := range []string{"/api/v1/jobs/nope", "/api/v1/jobs/nope/result", "/api/v1/jobs/nope/progress"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHealthzAndStoreKeys sanity-checks the liveness and store-listing
// endpoints.
func TestHealthzAndStoreKeys(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthz
	err = json.NewDecoder(resp.Body).Decode(&hz)
	if err != nil || hz.Status != "ok" {
		t.Fatalf("healthz: %v %+v", err, hz)
	}
	if hz.Workers != 4 || hz.QueueCap != 512 || hz.CPUTokens != 4 {
		t.Fatalf("healthz capacities wrong: %+v", hz)
	}
	if hz.Saturated || hz.Draining || resp.Header.Get("Retry-After") != "" {
		t.Fatalf("idle server reports saturation: %+v Retry-After=%q", hz, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	_, st := postJSON(t, ts.URL+"/api/v1/jobs", fmt.Sprintf(tinyReplay, 5))
	pollState(t, ts.URL, st.ID, 30*time.Second)
	resp, err = http.Get(ts.URL + "/api/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	var keys struct {
		Keys  []string `json:"keys"`
		Count int      `json:"count"`
	}
	err = json.NewDecoder(resp.Body).Decode(&keys)
	resp.Body.Close()
	if err != nil || keys.Count != 1 || len(keys.Keys) != 1 || keys.Keys[0] != st.Key {
		t.Fatalf("store listing: %v %+v (want key %s)", err, keys, st.Key)
	}
}

// TestDrainFinishesOutstanding checks graceful drain: queued work finishes,
// new submissions are refused with 503.
func TestDrainFinishesOutstanding(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())
	_, st := postJSON(t, ts.URL+"/api/v1/jobs", fmt.Sprintf(tinyReplay, 6))
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	final := pollState(t, ts.URL, st.ID, time.Second)
	if jobs.State(final.State) != jobs.StateSucceeded {
		t.Fatalf("drained job finished %s", final.State)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(tinyReplay, 7)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d, want 503", resp.StatusCode)
	}
}

// TestParallelWorkersReplay submits the same simulated work twice — once on
// the serial engine, once with workers=4 — into separate stores, and
// requires byte-identical result documents: the workers knob is a
// scheduling choice, not a semantic one. It also confirms the two specs
// share a content key (a cached serial result can serve a parallel request
// and vice versa).
func TestParallelWorkersReplay(t *testing.T) {
	run := func(spec string) (string, json.RawMessage) {
		t.Helper()
		_, ts := newTestServer(t, t.TempDir())
		defer ts.Close()
		code, st := postJSON(t, ts.URL+"/api/v1/jobs", spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit = %d, want 202", code)
		}
		final := pollState(t, ts.URL, st.ID, 30*time.Second)
		if jobs.State(final.State) != jobs.StateSucceeded {
			t.Fatalf("job finished %s (error %q)", final.State, final.Error)
		}
		code, doc := fetchResult(t, ts.URL, st.ID)
		if code != http.StatusOK {
			t.Fatalf("result = %d, want 200", code)
		}
		return st.Key, doc["result"]
	}
	serialKey, serial := run(`{"type":"replay","scheme":"MRSM","profile":"lun2","scale":0.002,"seed":9}`)
	parKey, par := run(`{"type":"replay","scheme":"MRSM","profile":"lun2","scale":0.002,"seed":9,"workers":4}`)
	if serialKey != parKey {
		t.Fatalf("workers changed the content key: %s vs %s", serialKey, parKey)
	}
	if string(serial) != string(par) {
		t.Fatalf("parallel result diverged from serial:\n serial: %s\n parallel: %s", serial, par)
	}
}

// fetchBytes GETs a path and returns code and body.
func fetchBytes(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestParallelReplayProgressAndArtifact is the service half of the
// deterministic-telemetry guarantee: a parallel replay job streams progress
// samples and stores a metrics artifact — byte-identical to the artifact a
// serial run of the same work stores.
func TestParallelReplayProgressAndArtifact(t *testing.T) {
	run := func(spec string) (progress, artifact []byte) {
		t.Helper()
		_, ts := newTestServer(t, t.TempDir())
		defer ts.Close()
		code, st := postJSON(t, ts.URL+"/api/v1/jobs", spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit = %d, want 202", code)
		}
		final := pollState(t, ts.URL, st.ID, 30*time.Second)
		if jobs.State(final.State) != jobs.StateSucceeded {
			t.Fatalf("job finished %s (error %q)", final.State, final.Error)
		}
		// The progress stream replays the full retained history after the
		// job finished, then ends.
		_, progress = fetchBytes(t, ts.URL+"/api/v1/jobs/"+st.ID+"/progress")
		code, artifact = fetchBytes(t, ts.URL+"/api/v1/jobs/"+st.ID+"/artifacts/metrics")
		if code != http.StatusOK {
			t.Fatalf("artifact = %d, want 200", code)
		}
		return progress, artifact
	}
	spec := `{"type":"replay","scheme":"Across-FTL","profile":"lun3","scale":0.05,"seed":11}`
	parSpec := `{"type":"replay","scheme":"Across-FTL","profile":"lun3","scale":0.05,"seed":11,"workers":4}`
	serialProg, serialArt := run(spec)
	parProg, parArt := run(parSpec)
	if len(bytes.TrimSpace(parProg)) == 0 {
		t.Fatal("parallel job streamed no progress samples")
	}
	if !bytes.Equal(serialProg, parProg) {
		t.Errorf("parallel progress stream diverged from serial (%d vs %d bytes)", len(serialProg), len(parProg))
	}
	if !bytes.Equal(serialArt, parArt) {
		t.Errorf("parallel metrics artifact diverged from serial (%d vs %d bytes)", len(serialArt), len(parArt))
	}
}

// TestJobSpansAndTrace checks the per-job span log: a finished parallel
// replay reports its phases in the job status and renders them as a Chrome
// trace_event document, while jobs without a span log (experiments) say so.
func TestJobSpansAndTrace(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	spec := `{"type":"replay","scheme":"FTL","profile":"lun1","scale":0.002,"seed":12,"age":true,"workers":2}`
	code, st := postJSON(t, ts.URL+"/api/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	final := pollState(t, ts.URL, st.ID, 30*time.Second)
	if jobs.State(final.State) != jobs.StateSucceeded {
		t.Fatalf("job finished %s (error %q)", final.State, final.Error)
	}
	got := map[string]Span{}
	for _, sp := range final.Spans {
		got[sp.Name] = sp
		if sp.EndMs < sp.StartMs {
			t.Errorf("span %s ends before it starts: %+v", sp.Name, sp)
		}
	}
	for _, name := range []string{"queued", "generate", "age", "replay", "store"} {
		if _, ok := got[name]; !ok {
			t.Errorf("span %q missing; have %+v", name, final.Spans)
		}
	}
	if rp := got["replay"]; rp.Attrs["engine"] != "parallel" || rp.Attrs["workers"] != "2" || rp.Attrs["epoch_span_ms"] == "" {
		t.Errorf("replay span attrs = %+v, want parallel engine with workers=2 and epoch sizing", rp.Attrs)
	}

	code, body := fetchBytes(t, ts.URL+"/api/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace = %d, want 200", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, body)
	}
	if len(doc.TraceEvents) < 5 {
		t.Fatalf("trace has %d events, want the full phase log", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 {
			t.Errorf("bad trace event %+v", ev)
		}
	}

	// An experiment job has no span log; the endpoint says so rather than
	// rendering an empty trace.
	code, est := postJSON(t, ts.URL+"/api/v1/jobs", `{"type":"experiment","id":"table1","scale":0.05,"no_age":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("experiment submit = %d", code)
	}
	pollState(t, ts.URL, est.ID, 30*time.Second)
	if code, _ := fetchBytes(t, ts.URL+"/api/v1/jobs/"+est.ID+"/trace"); code != http.StatusConflict {
		t.Errorf("experiment trace = %d, want 409", code)
	}
}

// TestHealthzSaturation fills a one-slot queue behind a one-worker pool and
// requires /healthz to flip to saturated with a Retry-After hint, then to
// draining once Drain begins.
func TestHealthzSaturation(t *testing.T) {
	s, err := New(Config{
		StoreDir: t.TempDir(),
		Workers:  1,
		QueueCap: 1,
		Backoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	long := `{"type":"replay","scheme":"Across-FTL","profile":"lun1","scale":1.0,"age":true,"seed":%d}`
	if code, _ := postJSON(t, ts.URL+"/api/v1/jobs", fmt.Sprintf(long, 13)); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	// Wait until the worker picks the first job up, then occupy the queue.
	stop := time.Now().Add(10 * time.Second)
	for s.sched.Stats().Running == 0 {
		if time.Now().After(stop) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ := postJSON(t, ts.URL+"/api/v1/jobs", fmt.Sprintf(long, 14)); code != http.StatusAccepted {
		t.Fatalf("second submit = %d", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthz
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !hz.Saturated || hz.Status != "saturated" || hz.Queued < hz.QueueCap {
		t.Fatalf("healthz with full queue: %+v", hz)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("saturated healthz carries no Retry-After")
	}
	if hz.QueueFill < 1 {
		t.Errorf("queue_fill = %v, want >= 1", hz.QueueFill)
	}
	// Close cancels both jobs (so the test never waits out two full
	// replays) and leaves the scheduler draining.
	s.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "draining" || !hz.Draining || resp.Header.Get("Retry-After") == "" {
		t.Errorf("healthz after close: %+v Retry-After=%q", hz, resp.Header.Get("Retry-After"))
	}
}

// TestPprofGate: the profiling endpoints exist only when enabled.
func TestPprofGate(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	if code, _ := fetchBytes(t, ts.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof on default server = %d, want 404", code)
	}
	s, err := New(Config{StoreDir: t.TempDir(), Workers: 1, EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s.Handler())
	defer func() {
		ts2.Close()
		s.Close()
	}()
	code, body := fetchBytes(t, ts2.URL+"/debug/pprof/")
	if code != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index = %d, body %d bytes", code, len(body))
	}
}

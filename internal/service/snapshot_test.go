package service

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"across/internal/jobs"
)

// agedReplay is a tiny aged FTL replay; %d slots the queue depth so two
// submissions get distinct content keys while sharing one aging key.
const agedReplay = `{"type":"replay","scheme":"FTL","profile":"lun1","scale":0.001,"age":true,"qd":%d,"workers":%d,"priority":%d}`

func agingKeyOf(t *testing.T, sp ReplaySpec) string {
	t.Helper()
	sp.normalise()
	key, err := sp.AgingKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// The aging key must capture exactly what shapes the warm state — scheme,
// device config, aging recipe — and nothing else. Workload knobs (aging is
// workload-independent), measurement knobs (qd) and scheduling knobs
// (workers, priority, timeout) must not fragment checkpoint reuse.
func TestAgingKeyExcludesWorkloadAndSchedulingKnobs(t *testing.T) {
	base := ReplaySpec{Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true}
	want := agingKeyOf(t, base)

	same := map[string]ReplaySpec{
		"workers":  {Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true, Workers: 7},
		"priority": {Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true, Priority: 9},
		"timeout":  {Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true, TimeoutMs: 5000},
		"qd":       {Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true, QD: 16},
		"profile":  {Type: "replay", Scheme: "FTL", Profile: "lun4", Age: true},
		"scale":    {Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true, Scale: 0.5},
		"seed":     {Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true, Seed: 42},
	}
	for name, sp := range same {
		if got := agingKeyOf(t, sp); got != want {
			t.Errorf("spec differing only in %s changed the aging key", name)
		}
	}

	diff := map[string]ReplaySpec{
		"scheme": {Type: "replay", Scheme: "Across-FTL", Profile: "lun1", Age: true},
		"page":   {Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true, Page: 4096},
		"full":   {Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true, Full: true},
	}
	for name, sp := range diff {
		if got := agingKeyOf(t, sp); got == want {
			t.Errorf("spec differing in %s (which changes warm state) kept the aging key", name)
		}
	}
}

func submitAndWait(t *testing.T, base, body string) jobStatus {
	t.Helper()
	code, st := postJSON(t, base+"/api/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202 (status %+v)", code, st)
	}
	final := pollState(t, base, st.ID, 60*time.Second)
	if jobs.State(final.State) != jobs.StateSucceeded {
		t.Fatalf("job finished %s (error %q)", final.State, final.Error)
	}
	return final
}

func spanNames(st jobStatus) []string {
	names := make([]string, 0, len(st.Spans))
	for _, sp := range st.Spans {
		names = append(names, sp.Name)
	}
	return names
}

func hasSpan(st jobStatus, name string) bool {
	for _, sp := range st.Spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

func counterValue(s *Server, name string) float64 {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.reg.Snapshot(nil)[name]
}

// Two aged jobs that differ only in measurement and scheduling knobs (qd,
// workers, priority — distinct content keys, identical aging key) must share
// one aging run: the first ages and checkpoints, the second forks from the
// stored snapshot and records a "restore" span instead of "age".
func TestJobsForkFromSharedAgingCheckpoint(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())

	first := submitAndWait(t, ts.URL, fmt.Sprintf(agedReplay, 0, 1, 0))
	if !hasSpan(first, "age") || hasSpan(first, "restore") {
		t.Fatalf("first job spans = %v, want an age span and no restore", spanNames(first))
	}

	second := submitAndWait(t, ts.URL, fmt.Sprintf(agedReplay, 8, 3, 5))
	if second.Key == first.Key {
		t.Fatal("jobs deduplicated — the test needs two real runs")
	}
	if !hasSpan(second, "restore") || hasSpan(second, "age") {
		t.Fatalf("second job spans = %v, want a restore span and no age", spanNames(second))
	}
	// The aging_key attribute lands on the span that ended the aging phase.
	for _, st := range []jobStatus{first, second} {
		found := false
		for _, sp := range st.Spans {
			if sp.Attrs["aging_key"] != "" {
				found = true
			}
		}
		if !found {
			t.Errorf("job %s spans carry no aging_key attribute: %+v", st.ID, st.Spans)
		}
	}

	// The checkpoint itself is a first-class store entry under the aging key.
	akey := agingKeyOf(t, ReplaySpec{Type: "replay", Scheme: "FTL", Profile: "lun1", Age: true})
	var entry SnapshotEntry
	ok, err := srv.Store().Get(akey, &entry)
	if err != nil || !ok {
		t.Fatalf("aging checkpoint missing from store: ok=%v err=%v", ok, err)
	}
	if entry.Kind != "snapshot" || entry.Scheme != "FTL" || len(entry.Blob) == 0 {
		t.Fatalf("checkpoint entry = {kind %q, scheme %q, %d blob bytes}", entry.Kind, entry.Scheme, len(entry.Blob))
	}

	if ages := counterValue(srv, "snapshot_ages"); ages != 1 {
		t.Errorf("snapshot_ages = %v, want 1", ages)
	}
	if restores := counterValue(srv, "snapshot_restores"); restores != 1 {
		t.Errorf("snapshot_restores = %v, want 1", restores)
	}

	// And the counters surface on /metrics in Prometheus exposition format.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{"acrossd_snapshot_ages_total 1", "acrossd_snapshot_restores_total 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// Concurrent aged jobs sharing an aging key must queue on the per-key
// flight lock: exactly one ages, the rest fork from its checkpoint.
func TestConcurrentJobsAgeOnce(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir())

	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(agedReplay, i+1, 1, 0) // distinct qd → distinct content keys
			code, st := postJSON(t, ts.URL+"/api/v1/jobs", body)
			if code != http.StatusAccepted {
				t.Errorf("submit %d = %d, want 202", i, code)
				return
			}
			ids[i] = st.ID
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	aged := 0
	for _, id := range ids {
		final := pollState(t, ts.URL, id, 60*time.Second)
		if jobs.State(final.State) != jobs.StateSucceeded {
			t.Fatalf("job %s finished %s (error %q)", id, final.State, final.Error)
		}
		if hasSpan(final, "age") {
			aged++
		}
	}
	if aged != 1 {
		t.Errorf("%d jobs ran the aging phase, want exactly 1", aged)
	}
	if ages := counterValue(srv, "snapshot_ages"); ages != 1 {
		t.Errorf("snapshot_ages = %v, want 1", ages)
	}
	if restores := counterValue(srv, "snapshot_restores"); restores != n-1 {
		t.Errorf("snapshot_restores = %v, want %d", restores, n-1)
	}
}

package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"across/internal/experiments"
	"across/internal/fleet"
	"across/internal/ftl"
	"across/internal/jobs"
	"across/internal/obs"
	"across/internal/scenario"
	"across/internal/sim"
	"across/internal/ssdconf"
	"across/internal/store"
	"across/internal/trace"
	"across/internal/workload"
)

// keyVersion is baked into every job key: bump it when the simulator's
// semantics change enough that cached results should stop being served.
const keyVersion = 1

// scenarioKeyVersion versions the scenario branch of Key on its own, so the
// scenario layer can evolve without orphaning every non-scenario cache
// entry. v2 added TraceReqs: Cohort.Trace is excluded from the scenario's
// JSON and TraceSHA hashes the original file bytes, so without the resolved
// per-cohort counts, trace specs differing only in Scale collided on one
// key and served each other's truncated results.
const scenarioKeyVersion = 2

// ReplaySpec is the submit-body of a replay job: one trace replayed against
// one scheme on one device. Priority and TimeoutMs steer scheduling only
// and are excluded from the content key.
type ReplaySpec struct {
	Type    string  `json:"type"` // "replay"
	Scheme  string  `json:"scheme"`
	Profile string  `json:"profile"`              // lun1..lun6
	Scale   float64 `json:"scale,omitempty"`      // fraction of the profile's requests (default 0.05)
	Seed    int64   `json:"seed,omitempty"`       // workload seed offset
	Page    int     `json:"page_bytes,omitempty"` // flash page size (default 8192)
	QD      int     `json:"qd,omitempty"`         // queue-depth bound (0 = open loop)
	Age     bool    `json:"age,omitempty"`        // §4.1 warm-up before measuring
	Full    bool    `json:"full,omitempty"`       // full Table 1 geometry (default: scaled)

	// Fleet composes N devices into one logical volume and replays the
	// trace through its layout instead of against a single device. Fleet
	// jobs reuse the single-device AgingKey checkpoints: one device ages
	// (or a stored checkpoint is found) and every device forks from it.
	Fleet *FleetSpec `json:"fleet,omitempty"`

	// Scenario replaces the Profile workload with a scenario-engine stream
	// (temporal patterns, multi-tenant cohorts, or a real trace file).
	// Scale and Seed apply to the scenario's cohorts; Profile must be left
	// empty. The resolved scenario joins the content key under its own Kind
	// string, while AgingKey is unchanged — scenario jobs fork from the
	// same aging checkpoints as every other job of the scheme/config.
	Scenario *ScenarioSpec `json:"scenario,omitempty"`

	Priority  int   `json:"priority,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Workers sizes the replay's internal worker pool: 0 lets the
	// scheduler's CPU-token grant decide, 1 forces the serial engine, >1
	// requests the parallel engine. A scheduling knob only — the parallel
	// engine is bit-identical to the serial one — so it is excluded from
	// the content key, and cached results serve any Workers value.
	Workers int `json:"workers,omitempty"`
}

// FleetSpec is the fleet block of a replay submit-body: device count,
// layout name (concat | raid0 | raid10, default raid0) and stripe chunk in
// KB (0 = the 64 KiB default; ignored by concat). All three are simulated-
// outcome knobs and join the content key.
type FleetSpec struct {
	Devices int    `json:"devices"`
	Layout  string `json:"layout,omitempty"`
	ChunkKB int    `json:"chunk_kb,omitempty"`
}

// ScenarioSpec is the scenario block of a replay submit-body: a builtin
// scenario name (stationary | burst | daynight | mixed), or a real-trace
// file on the daemon host wrapped as a single-cohort scenario. With
// TracePath set, Name defaults to "trace" and the file's content joins the
// content key by SHA-256 — two daemons caching the same bytes dedupe, a
// changed file re-runs. Note the spec's Scale (default 0.05) truncates a
// trace cohort to its first fraction of requests; submit "scale": 1 to
// replay the whole file.
type ScenarioSpec struct {
	Name      string `json:"name,omitempty"`
	TracePath string `json:"trace_path,omitempty"`
}

// baseScenario resolves the scenario block into a scenario plus the
// SHA-256 of the trace file's bytes ("" for builtins).
func (sp *ReplaySpec) baseScenario() (scenario.Scenario, string, error) {
	if sp.Scenario.TracePath != "" {
		data, err := os.ReadFile(sp.Scenario.TracePath)
		if err != nil {
			return scenario.Scenario{}, "", err
		}
		reqs, err := trace.ReadAllAuto(bytes.NewReader(data))
		if err != nil {
			return scenario.Scenario{}, "", err
		}
		sum := sha256.Sum256(data)
		return scenario.FromTrace(sp.Scenario.Name, reqs), hex.EncodeToString(sum[:]), nil
	}
	sc, err := scenario.Builtin(sp.Scenario.Name)
	return sc, "", err
}

// resolvedScenario applies the spec's Scale and Seed knobs — the exact
// generator input, which is what the content key must capture.
func (sp *ReplaySpec) resolvedScenario() (scenario.Scenario, string, error) {
	sc, traceSHA, err := sp.baseScenario()
	if err != nil {
		return scenario.Scenario{}, "", err
	}
	return sc.Scale(sp.Scale).WithSeedOffset(sp.Seed), traceSHA, nil
}

// requests produces the job's request stream: the scenario engine when a
// scenario block is present, the profile generator otherwise.
func (sp *ReplaySpec) requests(logicalSectors int64) ([]trace.Request, error) {
	if sp.Scenario != nil {
		sc, _, err := sp.resolvedScenario()
		if err != nil {
			return nil, err
		}
		st, err := sc.Generate(logicalSectors)
		if err != nil {
			return nil, err
		}
		return st.Requests, nil
	}
	prof, err := sp.profile()
	if err != nil {
		return nil, err
	}
	return workload.Generate(prof, logicalSectors)
}

// fleetSpec resolves the JSON block into the fleet package's spec.
func (sp *ReplaySpec) fleetSpec() fleet.Spec {
	return fleet.Spec{
		Devices:      sp.Fleet.Devices,
		Layout:       fleet.Layout(sp.Fleet.Layout),
		ChunkSectors: int64(sp.Fleet.ChunkKB) * 1024 / ssdconf.SectorBytes,
	}
}

func (sp *ReplaySpec) normalise() {
	if sp.Scale == 0 {
		sp.Scale = 0.05
	}
	if sp.Page == 0 {
		sp.Page = 8192
	}
	if sp.Scheme == "" {
		sp.Scheme = string(sim.KindAcross)
	}
	if sp.Scenario != nil && sp.Scenario.Name == "" && sp.Scenario.TracePath != "" {
		sp.Scenario.Name = "trace"
	}
	if sp.Fleet != nil {
		if sp.Fleet.Layout == "" {
			sp.Fleet.Layout = string(fleet.LayoutRAID0)
		}
		// Canonicalise the chunk so equivalent specs share one content key:
		// concat ignores it entirely, and zero means the fleet default.
		if sp.Fleet.Layout == string(fleet.LayoutConcat) {
			sp.Fleet.ChunkKB = 0
		} else if sp.Fleet.ChunkKB == 0 {
			sp.Fleet.ChunkKB = fleet.DefaultChunkKB
		}
	}
}

func (sp *ReplaySpec) validate() error {
	switch sim.SchemeKind(sp.Scheme) {
	case sim.KindFTL, sim.KindMRSM, sim.KindAcross, sim.KindDFTL:
	default:
		return fmt.Errorf("unknown scheme %q", sp.Scheme)
	}
	if sp.Scenario != nil {
		if sp.Profile != "" {
			return fmt.Errorf("profile %q and scenario are mutually exclusive", sp.Profile)
		}
		if sp.Scenario.Name == "" {
			return fmt.Errorf("scenario needs a name or a trace_path")
		}
	} else if _, err := workload.LunProfile(sp.Profile); err != nil {
		return err
	}
	if sp.Scale <= 0 || sp.Scale > 1 {
		return fmt.Errorf("scale %v out of (0,1]", sp.Scale)
	}
	if sp.Workers < 0 {
		return fmt.Errorf("workers %d negative", sp.Workers)
	}
	conf := sp.config()
	if err := conf.Validate(); err != nil {
		return err
	}
	if sp.Scenario != nil {
		// Resolve now so unknown builtins, unreadable trace files and bad
		// partitions fail at submit time, not inside a scheduled job. A
		// single-device check is conservative for fleet jobs: the volume's
		// logical space is never smaller than one device's.
		sc, _, err := sp.resolvedScenario()
		if err != nil {
			return err
		}
		if err := sc.Validate(conf.LogicalSectors()); err != nil {
			return err
		}
	}
	if sp.Fleet != nil {
		if _, err := fleet.ParseLayout(sp.Fleet.Layout); err != nil {
			return err
		}
		if err := sp.fleetSpec().Validate(conf); err != nil {
			return err
		}
	}
	return nil
}

func (sp *ReplaySpec) config() ssdconf.Config {
	conf := ssdconf.Experiment()
	if sp.Full {
		conf = ssdconf.Table1()
	}
	return conf.WithPageBytes(sp.Page)
}

// profile resolves the fully-scaled, seed-offset workload profile — the
// exact generator input, which is what the content key must capture.
func (sp *ReplaySpec) profile() (workload.Profile, error) {
	p, err := workload.LunProfile(sp.Profile)
	if err != nil {
		return workload.Profile{}, err
	}
	p = p.Scale(sp.Scale)
	p.Seed += sp.Seed
	return p, nil
}

// Key is the canonical content address of the work: a hash over the scheme,
// the full device configuration, the fully-resolved workload profile
// (request count, ratios, seed), the queue depth and the aging switch.
// Everything that changes the simulated outcome is in here; anything that
// only changes scheduling (priority, timeout) is not. Fleet jobs hash an
// extended structure under a distinct Kind string; the non-fleet structure
// is untouched so results cached before the fleet layer existed keep their
// addresses. Scenario jobs hash the fully-resolved scenario (cohorts,
// partitions, patterns, seeds — trace cohorts represented by the SHA-256 of
// the trace file's bytes plus their resolved post-Scale request counts)
// under scenario-specific Kinds, so equivalent spellings dedupe and a
// changed trace file or a different scale re-runs.
func (sp *ReplaySpec) Key() (string, error) {
	if sp.Scenario != nil {
		sc, traceSHA, err := sp.resolvedScenario()
		if err != nil {
			return "", err
		}
		// Trace cohorts serialise without their requests (TraceSHA stands in
		// for the bytes), but Scale truncates them at generation time — the
		// resolved counts are the only scale-dependent input left to hash.
		var traceReqs []int
		for i := range sc.Cohorts {
			if n := len(sc.Cohorts[i].Trace); n > 0 {
				traceReqs = append(traceReqs, n)
			}
		}
		kind := "scenario-replay/" + sp.Scheme
		var fspec *fleet.Spec
		if sp.Fleet != nil {
			kind = "scenario-fleet-replay/" + sp.Scheme
			f := sp.fleetSpec()
			fspec = &f
		}
		return store.HashJSON(struct {
			V         int
			SV        int
			Kind      string
			Conf      ssdconf.Config
			Scenario  scenario.Scenario
			TraceSHA  string `json:",omitempty"`
			TraceReqs []int  `json:",omitempty"`
			QD        int
			Age       bool
			Fleet     *fleet.Spec `json:",omitempty"`
		}{keyVersion, scenarioKeyVersion, kind, sp.config(), sc, traceSHA, traceReqs, sp.QD, sp.Age, fspec})
	}
	prof, err := sp.profile()
	if err != nil {
		return "", err
	}
	if sp.Fleet != nil {
		fspec := sp.fleetSpec()
		return store.HashJSON(struct {
			V       int
			Kind    string
			Conf    ssdconf.Config
			Profile workload.Profile
			QD      int
			Age     bool
			Fleet   fleet.Spec
		}{keyVersion, "fleet-replay/" + sp.Scheme, sp.config(), prof, sp.QD, sp.Age, fspec})
	}
	return store.HashJSON(struct {
		V       int
		Kind    string
		Conf    ssdconf.Config
		Profile workload.Profile
		QD      int
		Age     bool
	}{keyVersion, "replay/" + sp.Scheme, sp.config(), prof, sp.QD, sp.Age})
}

// AgingKey is the content address of the warm state this spec's aging
// phase produces: a hash over the scheme, the full device configuration and
// the aging recipe — and nothing else. Aging (sim.DefaultAging) is
// workload-independent, so profile/scale/seed do not belong here; neither
// do measurement knobs (qd) nor scheduling knobs (workers, priority,
// timeout), which must never fragment checkpoint reuse. Every job whose
// AgingKey matches forks from one cached checkpoint instead of re-aging.
func (sp *ReplaySpec) AgingKey() (string, error) {
	return store.HashJSON(struct {
		V     int
		Kind  string
		Conf  ssdconf.Config
		Aging sim.Aging
	}{keyVersion, "aging/" + sp.Scheme, sp.config(), sim.DefaultAging()})
}

// SnapshotEntry is one stored aging checkpoint: the warm-state container
// (sim.Snapshot) for a (scheme, config, aging) tuple, keyed by AgingKey in
// the same content-addressed store as job results.
type SnapshotEntry struct {
	Key    string `json:"key"`
	Kind   string `json:"kind"` // "snapshot"
	Scheme string `json:"scheme"`
	Blob   []byte `json:"blob"`
}

// ExperimentSpec is the submit-body of an experiment job: one paper
// artifact (table/figure id) regenerated through an experiments.Session.
type ExperimentSpec struct {
	Type   string  `json:"type"` // "experiment"
	ID     string  `json:"id"`   // table1, fig9, ext-tail, ...
	Scale  float64 `json:"scale,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	NoAge  bool    `json:"no_age,omitempty"`
	Format string  `json:"format,omitempty"` // text | markdown | csv

	Priority  int   `json:"priority,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

func (sp *ExperimentSpec) sessionConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	if sp.Scale > 0 {
		cfg.Scale = sp.Scale
	}
	cfg.SeedOffset = sp.Seed
	cfg.Age = !sp.NoAge
	if sp.Format != "" {
		cfg.Format = sp.Format
	}
	return cfg
}

func (sp *ExperimentSpec) validate() error {
	if _, err := experiments.ByID(sp.ID); err != nil {
		return err
	}
	cfg := sp.sessionConfig()
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return fmt.Errorf("scale %v out of (0,1]", cfg.Scale)
	}
	return nil
}

// Key hashes the artifact id plus every session knob that changes its
// content.
func (sp *ExperimentSpec) Key() (string, error) {
	cfg := sp.sessionConfig()
	return store.HashJSON(struct {
		V      int
		Kind   string
		Conf   ssdconf.Config
		Scale  float64
		Seed   int64
		Age    bool
		Format string
	}{keyVersion, "experiment/" + sp.ID, cfg.SSD, cfg.Scale, cfg.SeedOffset, cfg.Age, cfg.Format})
}

// ReplayResult is the stored, JSON-serialisable digest of a sim.Result
// (the Result itself holds struct-keyed maps and histograms that do not
// marshal).
type ReplayResult struct {
	Scheme   string `json:"scheme"`
	Requests int64  `json:"requests"`
	Reads    int64  `json:"reads"`
	Writes   int64  `json:"writes"`

	AvgReadMs  float64 `json:"avg_read_ms"`
	AvgWriteMs float64 `json:"avg_write_ms"`
	ReadP50Ms  float64 `json:"read_p50_ms"`
	ReadP99Ms  float64 `json:"read_p99_ms"`
	WriteP50Ms float64 `json:"write_p50_ms"`
	WriteP99Ms float64 `json:"write_p99_ms"`
	TotalIOMs  float64 `json:"total_io_ms"`

	Counters   ftl.Counters    `json:"counters"`
	Wear       sim.WearSummary `json:"wear"`
	TableBytes int64           `json:"table_bytes"`
	UtilMin    float64         `json:"utilisation_min"`
	UtilMax    float64         `json:"utilisation_max"`

	TraceSpanMs    float64 `json:"trace_span_ms"`
	MeasuredSpanMs float64 `json:"measured_span_ms"`
	WarmupWrites   int64   `json:"warmup_writes"`

	AcrossAreas     int64   `json:"across_areas,omitempty"`
	AcrossRollbacks float64 `json:"across_rollback_ratio,omitempty"`
}

func replayResultDoc(res *sim.Result) *ReplayResult {
	umin, umax := res.UtilisationSpread()
	doc := &ReplayResult{
		Scheme:         res.Scheme,
		Requests:       res.Requests,
		Reads:          res.ReadCount,
		Writes:         res.WriteCount,
		AvgReadMs:      res.AvgReadLatency(),
		AvgWriteMs:     res.AvgWriteLatency(),
		ReadP50Ms:      res.ReadLat.P50(),
		ReadP99Ms:      res.ReadLat.P99(),
		WriteP50Ms:     res.WriteLat.P50(),
		WriteP99Ms:     res.WriteLat.P99(),
		TotalIOMs:      res.TotalIOTime(),
		Counters:       res.Counters,
		Wear:           res.Wear,
		TableBytes:     res.TableBytes,
		UtilMin:        umin,
		UtilMax:        umax,
		TraceSpanMs:    res.TraceSpanMs,
		MeasuredSpanMs: res.MeasuredSpanMs,
		WarmupWrites:   res.WarmupWrites,
	}
	if res.Across != nil {
		doc.AcrossAreas = res.Across.AreasTouched()
		doc.AcrossRollbacks = res.Across.RollbackRatio()
	}
	return doc
}

// FleetReplayResult is the stored digest of a fleet.Result: volume shape,
// logical-request latencies and throughput, the layout's fan-out and
// re-fragmentation ratios, fleet-wide counters, the device utilisation
// spread, and the full per-device reports.
type FleetReplayResult struct {
	Scheme  string `json:"scheme"`
	Layout  string `json:"layout"`
	Devices int    `json:"devices"`
	ChunkKB int64  `json:"chunk_kb"`

	Requests int64 `json:"requests"`
	Reads    int64 `json:"reads"`
	Writes   int64 `json:"writes"`

	AvgReadMs  float64 `json:"avg_read_ms"`
	AvgWriteMs float64 `json:"avg_write_ms"`
	ReadP50Ms  float64 `json:"read_p50_ms"`
	ReadP99Ms  float64 `json:"read_p99_ms"`
	WriteP50Ms float64 `json:"write_p50_ms"`
	WriteP99Ms float64 `json:"write_p99_ms"`

	ThroughputRPS float64 `json:"throughput_rps"`
	Fanout        float64 `json:"fanout"`
	SubRequests   int64   `json:"sub_requests"`

	LogicalAcrossRatio float64 `json:"logical_across_ratio"`
	SubAcrossRatio     float64 `json:"sub_across_ratio"`
	SubUnalignedRatio  float64 `json:"sub_unaligned_ratio"`

	Counters ftl.Counters `json:"counters"`
	UtilMin  float64      `json:"utilisation_min"`
	UtilMax  float64      `json:"utilisation_max"`

	PerDevice []fleet.DeviceReport `json:"per_device"`

	TraceSpanMs    float64 `json:"trace_span_ms"`
	MeasuredSpanMs float64 `json:"measured_span_ms"`
	WarmupWrites   int64   `json:"warmup_writes"`
}

func fleetResultDoc(res *fleet.Result, chips int) *FleetReplayResult {
	umin, umax := res.UtilisationSpread(chips)
	return &FleetReplayResult{
		Scheme:             res.Scheme,
		Layout:             string(res.Layout),
		Devices:            res.Devices,
		ChunkKB:            res.ChunkSectors * ssdconf.SectorBytes / 1024,
		Requests:           res.Requests,
		Reads:              res.ReadCount,
		Writes:             res.WriteCount,
		AvgReadMs:          res.AvgReadLatency(),
		AvgWriteMs:         res.AvgWriteLatency(),
		ReadP50Ms:          res.ReadLat.P50(),
		ReadP99Ms:          res.ReadLat.P99(),
		WriteP50Ms:         res.WriteLat.P50(),
		WriteP99Ms:         res.WriteLat.P99(),
		ThroughputRPS:      res.Throughput(),
		Fanout:             res.Fanout(),
		SubRequests:        res.SubRequests,
		LogicalAcrossRatio: res.LogicalClasses.Ratio(trace.ClassAcross),
		SubAcrossRatio:     res.SubClasses.Ratio(trace.ClassAcross),
		SubUnalignedRatio:  res.SubClasses.Ratio(trace.ClassUnaligned),
		Counters:           res.Counters(),
		UtilMin:            umin,
		UtilMax:            umax,
		PerDevice:          res.PerDevice,
		TraceSpanMs:        res.TraceSpanMs,
		MeasuredSpanMs:     res.MeasuredSpanMs,
		WarmupWrites:       res.WarmupWrites,
	}
}

// ExperimentResult is the stored outcome of an experiment job: the rendered
// artifact.
type ExperimentResult struct {
	ID     string `json:"id"`
	Output string `json:"output"`
}

// Entry is one stored job outcome: the spec that produced it, the result
// document, and (for replay jobs) the sampled progress series as a
// retrievable artifact.
type Entry struct {
	Key     string          `json:"key"`
	Kind    string          `json:"kind"` // "replay" | "experiment"
	Spec    json.RawMessage `json:"spec"`
	Result  json.RawMessage `json:"result"`
	Samples []obs.Sample    `json:"samples,omitempty"`
}

// runReplay executes one replay job: generate (or regenerate) the trace,
// build and optionally age the device, replay with the job's context so
// cancellation and timeouts stop the simulator mid-trace, then persist the
// entry. Store failures are marked Transient so the scheduler's
// retry-with-backoff gets a chance to ride out disk hiccups.
//
// The engine is chosen by the spec's Workers knob, defaulting to the
// scheduler's CPU-token grant: more than one worker selects the parallel
// engine. Both engines host the progress sampler — the parallel engine
// drives it from its merge stage with the serial call sequence — so every
// replay job streams progress and stores its sampled series, bit-identical
// for any worker count. Each phase is recorded in the job's span log.
func (s *Server) runReplay(ctx context.Context, key string, sp ReplaySpec, hub *progressHub, spl *spanLog) (*Entry, error) {
	if sp.Fleet != nil {
		return s.runFleetReplay(ctx, key, sp, spl)
	}
	spl.next("generate")
	conf := sp.config()
	reqs, err := sp.requests(conf.LogicalSectors())
	if err != nil {
		return nil, err
	}
	r, err := sim.NewRunner(sim.SchemeKind(sp.Scheme), conf)
	if err != nil {
		return nil, err
	}
	var agingAttrs []string
	if sp.Age {
		akey, err := sp.AgingKey()
		if err != nil {
			return nil, err
		}
		agingAttrs = []string{"aging_key", akey}
		// One aging run per checkpoint key: concurrent jobs sharing the
		// key queue on the flight lock, and all but the first find the
		// stored snapshot and fork from it.
		unlock := s.agingFlight(akey)
		restored := false
		if warm := s.loadAgingSnapshot(akey, sp.Scheme); warm != nil {
			spl.next("restore")
			// An unusable checkpoint (decode error, scheme/config drift)
			// is not fatal — the job falls back to aging from scratch.
			if r2, err := sim.Restore(warm); err == nil && r2.Kind == sim.SchemeKind(sp.Scheme) && *r2.Conf == conf {
				r = r2
				restored = true
				s.counter("snapshot_restores", 1)
			}
		}
		if !restored {
			spl.next("age")
			if err := s.ageAndStore(ctx, r, akey, sp.Scheme); err != nil {
				unlock()
				return nil, err
			}
		}
		unlock()
	}
	workers := sp.Workers
	if workers == 0 {
		workers = jobs.Parallelism(ctx)
	}
	smp, err := obs.NewSampler(s.cfg.SampleIntervalMs)
	if err != nil {
		return nil, err
	}
	smp.SetSink(hub)
	r.SetSampler(smp)
	spl.next("replay", agingAttrs...)
	var res *sim.Result
	replayAttrs := []string{"engine", "serial", "workers", "1"}
	if workers > 1 {
		opt := sim.ParallelOptions{Workers: workers}
		res, err = r.ReplayParallelCtx(ctx, reqs, sp.QD, opt)
		replayAttrs = []string{
			"engine", "parallel",
			"workers", fmt.Sprint(workers),
			"epoch_span_ms", fmt.Sprint(sim.DefaultEpochSpanMs),
			"epoch_max_requests", fmt.Sprint(sim.DefaultEpochMaxRequests),
		}
	} else {
		res, err = r.ReplayQDCtx(ctx, reqs, sp.QD)
	}
	if err != nil {
		return nil, err
	}
	spl.next("store", replayAttrs...)
	entry, err := buildEntry(key, "replay", sp, replayResultDoc(res), smp.Samples())
	if err != nil {
		return nil, err
	}
	if err := s.store.Put(key, entry); err != nil {
		return nil, jobs.Transient(err)
	}
	spl.next("")
	return entry, nil
}

// runFleetReplay executes one fleet replay job: build the N-device volume,
// warm it by forking every device from the single-device AgingKey
// checkpoint (aging device 0 and storing the checkpoint if none exists —
// the same store entry non-fleet jobs use), then replay the trace through
// the layout. Fleet replays have no per-request progress sampler yet, so
// the stored entry carries no sample series; determinism still holds — the
// fleet engines are bit-identical for every worker count.
func (s *Server) runFleetReplay(ctx context.Context, key string, sp ReplaySpec, spl *spanLog) (*Entry, error) {
	spl.next("generate")
	conf := sp.config()
	fspec := sp.fleetSpec()
	v, err := fleet.New(sim.SchemeKind(sp.Scheme), conf, fspec)
	if err != nil {
		return nil, err
	}
	reqs, err := sp.requests(v.LogicalSectors())
	if err != nil {
		return nil, err
	}
	var agingAttrs []string
	if sp.Age {
		akey, err := sp.AgingKey()
		if err != nil {
			return nil, err
		}
		agingAttrs = []string{"aging_key", akey}
		// Same flight lock and store entry as single-device jobs: the first
		// job ages once, everyone else — fleet or not — forks from the blob.
		unlock := s.agingFlight(akey)
		restored := false
		if warm := s.loadAgingSnapshot(akey, sp.Scheme); warm != nil {
			spl.next("restore")
			if err := v.RestoreWarm(warm); err == nil {
				restored = true
				s.counter("snapshot_restores", int64(fspec.Devices))
			}
		}
		if !restored {
			spl.next("age")
			if err := s.ageAndStore(ctx, v.Runners[0], akey, sp.Scheme); err != nil {
				unlock()
				return nil, err
			}
			blob, err := v.WarmSnapshot()
			if err != nil {
				unlock()
				return nil, err
			}
			if err := v.RestoreWarm(blob); err != nil {
				unlock()
				return nil, err
			}
		}
		unlock()
	}
	workers := sp.Workers
	if workers == 0 {
		workers = jobs.Parallelism(ctx)
	}
	spl.next("replay", agingAttrs...)
	res, err := v.ReplayQDCtx(ctx, reqs, sp.QD, fleet.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	engine := "fleet-serial"
	if sp.QD <= 0 && workers > 1 && fspec.Devices > 1 {
		engine = "fleet-parallel"
	}
	spl.next("store",
		"engine", engine,
		"workers", fmt.Sprint(workers),
		"devices", fmt.Sprint(v.Devices()),
		"layout", string(v.Layout()),
		"chunk_sectors", fmt.Sprint(v.ChunkSectors()))
	entry, err := buildEntry(key, "replay", sp, fleetResultDoc(res, conf.Chips()), nil)
	if err != nil {
		return nil, err
	}
	if err := s.store.Put(key, entry); err != nil {
		return nil, jobs.Transient(err)
	}
	spl.next("")
	return entry, nil
}

// runExperiment executes one experiment job: a fresh session (scoped to the
// job's context so cancellation stops its replay pool) renders the artifact
// into a buffer, which is stored as the result.
func (s *Server) runExperiment(ctx context.Context, key string, sp ExperimentSpec) (*Entry, error) {
	sess, err := experiments.NewSession(sp.sessionConfig())
	if err != nil {
		return nil, err
	}
	sess.WithContext(ctx)
	var buf bytes.Buffer
	if err := experiments.RunOne(sp.ID, sess, &buf); err != nil {
		return nil, err
	}
	entry, err := buildEntry(key, "experiment", sp, &ExperimentResult{ID: sp.ID, Output: buf.String()}, nil)
	if err != nil {
		return nil, err
	}
	if err := s.store.Put(key, entry); err != nil {
		return nil, jobs.Transient(err)
	}
	return entry, nil
}

func buildEntry(key, kind string, spec, result any, samples []obs.Sample) (*Entry, error) {
	sb, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("service: encoding spec: %w", err)
	}
	rb, err := json.Marshal(result)
	if err != nil {
		return nil, fmt.Errorf("service: encoding result: %w", err)
	}
	return &Entry{Key: key, Kind: kind, Spec: sb, Result: rb, Samples: samples}, nil
}

package service

import (
	"sync"

	"across/internal/obs"
)

// progressHub fans one job's sampled metrics out to any number of HTTP
// progress streams. It implements obs.MetricsSink, so it plugs straight
// into the replay's Sampler: the simulator pushes samples as simulated time
// advances, subscribers receive the full history then live updates, and
// closing the hub (job finished) ends every stream.
type progressHub struct {
	mu      sync.Mutex
	samples []obs.Sample
	subs    map[chan obs.Sample]struct{}
	closed  bool
}

func newProgressHub() *progressHub {
	return &progressHub{subs: make(map[chan obs.Sample]struct{})}
}

// WriteSample implements obs.MetricsSink. A slow subscriber never blocks
// the simulator: its channel send is dropped when full (the subscriber
// still has the retained history for catch-up).
func (h *progressHub) WriteSample(s *obs.Sample) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.samples = append(h.samples, *s)
	for ch := range h.subs {
		select {
		case ch <- *s:
		default:
		}
	}
	return nil
}

// Subscribe returns the history so far plus a channel of future samples.
// The channel is closed when the hub closes; cancel detaches early.
func (h *progressHub) Subscribe() (history []obs.Sample, ch <-chan obs.Sample, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	history = append([]obs.Sample(nil), h.samples...)
	c := make(chan obs.Sample, 256)
	if h.closed {
		close(c)
		return history, c, func() {}
	}
	h.subs[c] = struct{}{}
	return history, c, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[c]; ok {
			delete(h.subs, c)
			close(c)
		}
	}
}

// Samples returns a copy of the retained series.
func (h *progressHub) Samples() []obs.Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]obs.Sample(nil), h.samples...)
}

// Close ends every subscription; further WriteSamples are dropped.
func (h *progressHub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

package service

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Span is one phase of a job's lifecycle — queued, generate, age, replay,
// store — with wall-clock bounds relative to submission and a few
// explanatory attributes (engine, worker count, epoch sizing). Spans are the
// per-job execution trace: they render inline in the job status and as a
// Chrome trace_event document at /api/v1/jobs/{id}/trace, so a replay's
// phase breakdown can be eyeballed in Perfetto next to the simulated
// timeline the replay itself emits.
type Span struct {
	Name    string            `json:"name"`
	StartMs float64           `json:"start_ms"`
	EndMs   float64           `json:"end_ms"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// spanLog collects a job's spans. It is created at submission with the
// "queued" span already open; the job body closes it when it starts running
// and opens one span per phase after that. Reads (status, trace endpoint)
// may race the run, so the log copies under a lock.
type spanLog struct {
	mu   sync.Mutex
	base time.Time
	open Span
	done []Span
}

func newSpanLog(base time.Time) *spanLog {
	return &spanLog{base: base, open: Span{Name: "queued"}}
}

func (l *spanLog) sinceBase() float64 {
	return float64(time.Since(l.base)) / float64(time.Millisecond)
}

// next closes the open span and opens a new one; kv pairs attach to the span
// being closed. An empty name just closes (end of the last phase).
func (l *spanLog) next(name string, kv ...string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.sinceBase()
	l.open.EndMs = now
	for i := 0; i+1 < len(kv); i += 2 {
		if l.open.Attrs == nil {
			l.open.Attrs = make(map[string]string)
		}
		l.open.Attrs[kv[i]] = kv[i+1]
	}
	l.done = append(l.done, l.open)
	l.open = Span{Name: name, StartMs: now}
}

// Spans copies the completed spans.
func (l *spanLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, len(l.done))
	copy(out, l.done)
	return out
}

// chromeSpan is one complete ("ph":"X") Chrome trace_event; timestamps are
// microseconds, as the format requires.
type chromeSpan struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// writeChromeSpans renders a span log as a Chrome trace_event JSON document
// (the object form, so Perfetto and chrome://tracing both load it).
func writeChromeSpans(w http.ResponseWriter, id string, spans []Span) {
	events := make([]chromeSpan, 0, len(spans))
	for _, sp := range spans {
		events = append(events, chromeSpan{
			Name: sp.Name,
			Ph:   "X",
			Ts:   sp.StartMs * 1000,
			Dur:  (sp.EndMs - sp.StartMs) * 1000,
			Pid:  1,
			Tid:  1,
			Args: sp.Attrs,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"otherData":       map[string]string{"job": id},
		"traceEvents":     events,
	})
}

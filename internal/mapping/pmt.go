// Package mapping implements the address-translation data structures of the
// paper: the page mapping table (PMT) shared by all schemes — extended with
// the AIdx sidecar that Across-FTL adds (§3.2) — and the across-page mapping
// table (AMT) that records remapped across-page areas.
package mapping

import (
	"fmt"

	"across/internal/flash"
)

// NoAIdx marks a PMT entry whose logical page has no across-page remapping
// ("-1" in the paper).
const NoAIdx int32 = -1

// PMTEntry is one logical page's translation state.
type PMTEntry struct {
	PPN  flash.PPN // current physical page (NilPPN if never written)
	AIdx int32     // index into the AMT, or NoAIdx
}

// PMT is the page mapping table: a dense array indexed by LPN. The baseline
// FTL and MRSM ignore the AIdx field; Across-FTL uses it as the first level
// of its two-level table.
type PMT struct {
	entries []PMTEntry
}

// NewPMT creates a PMT for n logical pages, all unmapped.
func NewPMT(n int64) *PMT {
	e := make([]PMTEntry, n)
	for i := range e {
		e[i] = PMTEntry{PPN: flash.NilPPN, AIdx: NoAIdx}
	}
	return &PMT{entries: e}
}

// Len returns the number of logical pages.
func (t *PMT) Len() int64 { return int64(len(t.entries)) }

func (t *PMT) check(lpn int64) {
	if lpn < 0 || lpn >= int64(len(t.entries)) {
		panic(fmt.Sprintf("mapping: LPN %d out of range [0,%d)", lpn, len(t.entries)))
	}
}

// Get returns the entry for an LPN.
func (t *PMT) Get(lpn int64) PMTEntry {
	t.check(lpn)
	return t.entries[lpn]
}

// PPNOf returns the mapped physical page of an LPN (NilPPN if unmapped).
func (t *PMT) PPNOf(lpn int64) flash.PPN {
	t.check(lpn)
	return t.entries[lpn].PPN
}

// SetPPN updates the physical mapping of an LPN, returning the previous PPN
// so the caller can invalidate it.
func (t *PMT) SetPPN(lpn int64, ppn flash.PPN) (old flash.PPN) {
	t.check(lpn)
	old = t.entries[lpn].PPN
	t.entries[lpn].PPN = ppn
	return old
}

// AIdxOf returns the across-table index of an LPN (NoAIdx if not remapped).
func (t *PMT) AIdxOf(lpn int64) int32 {
	t.check(lpn)
	return t.entries[lpn].AIdx
}

// SetAIdx points an LPN at an AMT entry.
func (t *PMT) SetAIdx(lpn int64, idx int32) {
	t.check(lpn)
	t.entries[lpn].AIdx = idx
}

// ClearAIdx removes an LPN's across-page remapping (used by ARollback).
func (t *PMT) ClearAIdx(lpn int64) {
	t.check(lpn)
	t.entries[lpn].AIdx = NoAIdx
}

// MappedPages counts LPNs with a physical mapping; used by aging checks.
func (t *PMT) MappedPages() int64 {
	var n int64
	for i := range t.entries {
		if t.entries[i].PPN != flash.NilPPN {
			n++
		}
	}
	return n
}
